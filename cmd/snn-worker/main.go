// Command snn-worker executes one shard of a campaign's missing cells
// against a shared content store (cmd/cached) — the worker side of the
// distributed fabric.
//
// Every process launched with the same attack flags, the same -shards
// count and a distinct -shard index derives the identical audit from
// the store manifest, takes the missing cells whose round-robin slot
// matches its index, trains them, and writes the results through the
// store. No coordination channel exists or is needed: cells are pure
// functions of their content address, so the only shared state is the
// store itself. When every shard exits, a coordinator run
// (snn-attack with the same flags and -store) finds the store warm,
// trains nothing, and emits sinks byte-identical to a single-process
// run.
//
//	cached -dir store -addr-file store.addr &
//	snn-worker -store http://$(cat store.addr) -attack 3 -change -20,-10,10,20 -shards 2 -shard 0 &
//	snn-worker -store http://$(cat store.addr) -attack 3 -change -20,-10,10,20 -shards 2 -shard 1 &
//	wait
//	snn-attack  -store http://$(cat store.addr) -attack 3 -change -20,-10,10,20 -jsonl merged.jsonl
//
// The shared attack-free baseline is elected, not raced: shard 0
// trains it when missing; other shards poll the store until it
// appears (bounded by -baseline-wait, after which they train it
// themselves — wasted work, never wrong results).
package main

import (
	"flag"
	"fmt"
	"os"
	"slices"
	"time"

	"snnfi/internal/cli"
	"snnfi/internal/core"
	"snnfi/internal/fabric"
	"snnfi/internal/runner"
	"snnfi/internal/snn"
	"snnfi/internal/spice"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "snn-worker:", err)
		os.Exit(1)
	}
}

func run() (retErr error) {
	var (
		nImages      = flag.Int("n", 1000, "training images")
		dataDir      = flag.String("data", "", "optional real-MNIST directory")
		shards       = flag.Int("shards", 1, "total number of worker processes over this scenario")
		shard        = flag.Int("shard", 0, "this process's shard index (0-based)")
		baselineWait = flag.Duration("baseline-wait", 10*time.Minute, "how long a non-zero shard waits for shard 0's baseline before training its own")
	)
	attackFlags := cli.AddAttackFlags(flag.CommandLine)
	shared := cli.AddFlags(cli.Worker)
	flag.Parse()
	if shared.Store == "" {
		return fmt.Errorf("-store is required: a worker's whole job is writing cells through the shared store")
	}
	if *shards < 1 || *shard < 0 || *shard >= *shards {
		return fmt.Errorf("bad shard geometry %d/%d (want 0 <= shard < shards)", *shard, *shards)
	}

	scn, err := attackFlags.Scenario()
	if err != nil {
		return err
	}

	sess, err := shared.Start(fmt.Sprintf("snn-worker[%d/%d]", *shard, *shards))
	if err != nil {
		return err
	}
	defer sess.CloseInto(&retErr)

	exp, err := core.NewExperiment(*dataDir, *nImages, snn.DefaultConfig())
	if err != nil {
		return err
	}
	exp.Workers = shared.Workers
	exp.OnProgress = sess.OnProgress()
	exp.Obs = sess.Registry
	if mem, ok := exp.Cache.(*runner.MemoryCache[*core.Result]); ok {
		mem.Instrument(sess.Registry, "cache.network.mem")
	}
	spice.Instrument(sess.Registry)

	cache, _, store, err := cli.Tiers[*core.Result](sess, exp.Cache, "network")
	if err != nil {
		return err
	}
	exp.Cache = cache

	// The shard assignment input: audit the scenario against the store
	// manifest. Every worker derives the same ordered missing list.
	held, err := store.Manifest()
	if err != nil {
		return err
	}
	audit, err := exp.AuditScenario(scn, core.HeldSet(held))
	if err != nil {
		return err
	}
	baseline := audit.Cells[0]
	var missing []string
	for _, c := range audit.Cells[1:] {
		if !c.Present {
			missing = append(missing, c.Key)
		}
	}
	mine := fabric.Shard(missing, *shard, *shards)
	fmt.Printf("shard %d/%d: %d of %d missing cells assigned (%d already in store)\n",
		*shard, *shards, len(mine), len(missing), audit.Present)

	// Baseline election: exactly one shard trains the shared baseline,
	// the rest read it from the store. Shard 0 trains it eagerly even
	// when its shard is otherwise empty — someone must.
	if !baseline.Present {
		if *shard == 0 {
			if _, err := exp.Baseline(); err != nil {
				return err
			}
		} else if err := awaitKey(store, baseline.Key, *baselineWait); err != nil {
			fmt.Fprintf(os.Stderr, "snn-worker: %v; training the baseline locally\n", err)
		}
	}

	if len(mine) == 0 {
		fmt.Println("executed cells: 0")
		fmt.Printf("trained networks: %d\n", exp.TrainCount())
		return nil
	}
	keep := func(_ int, key string) bool { return slices.Contains(mine, key) }
	pts, err := exp.RunScenarioSubset(scn, keep)
	if err != nil {
		return err
	}
	fmt.Printf("executed cells: %d\n", len(pts))
	fmt.Printf("trained networks: %d\n", exp.TrainCount())
	return nil
}

// awaitKey polls the store manifest until key appears or the wait
// budget runs out. Polling the manifest (not Get) keeps the typed
// cache's hit/miss accounting clean. The caller treats exhaustion as
// "train it yourself": with -baseline-wait 0 a shard skips the
// election entirely and duplicates the (deterministic, byte-identical)
// baseline on its own cores — the right trade when cores are free and
// wall-clock is the goal.
func awaitKey(store *runner.HTTPCache[*core.Result], key string, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	for {
		keys, err := store.Manifest()
		if err == nil && slices.Contains(keys, key) {
			return nil
		}
		if !time.Now().Before(deadline) {
			return fmt.Errorf("baseline %s… not in store after %v", key[:12], wait)
		}
		time.Sleep(250 * time.Millisecond)
	}
}
