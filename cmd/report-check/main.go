// Command report-check validates a campaign report written by
// snn-attack's -report flag: the JSON must parse against the current
// schema and the cell accounting must reconcile (trained + cached ==
// total). CI's telemetry-smoke job runs it after a cold and a warm
// campaign:
//
//	report-check -report cold.json
//	report-check -report warm.json -require-trained 0 -require-hit-rate 1
//
// -require-counter name=value pins a telemetry counter in the same
// report — the MC warm rerun uses it to assert the circuit tier served
// every mismatch sample from cache (spice.solves=0).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"snnfi/internal/core"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "report-check:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		path       = flag.String("report", "", "campaign report JSON to validate")
		reqTrained = flag.Int64("require-trained", -1, "require exactly this many trained cells (-1 = any)")
		reqHitRate = flag.Float64("require-hit-rate", -1, "require exactly this hit rate (-1 = any)")
		reqCounter = flag.String("require-counter", "", "require a telemetry counter to hold exactly a value, as name=value")
	)
	flag.Parse()
	if *path == "" {
		return fmt.Errorf("-report is required")
	}
	data, err := os.ReadFile(*path)
	if err != nil {
		return err
	}
	var r core.Report
	if err := json.Unmarshal(data, &r); err != nil {
		return fmt.Errorf("%s: %w", *path, err)
	}
	if r.Schema != core.ReportSchema {
		return fmt.Errorf("%s: schema %q, want %q", *path, r.Schema, core.ReportSchema)
	}
	if r.Cells.Total <= 0 {
		return fmt.Errorf("%s: no cells recorded", *path)
	}
	if r.Cells.Trained+r.Cells.Cached != r.Cells.Total {
		return fmt.Errorf("%s: cells do not reconcile: trained %d + cached %d != total %d",
			*path, r.Cells.Trained, r.Cells.Cached, r.Cells.Total)
	}
	if r.Cells.Trained < 0 || r.Cells.Cached < 0 {
		return fmt.Errorf("%s: negative cell counts: %+v", *path, r.Cells)
	}
	if *reqTrained >= 0 && r.Cells.Trained != *reqTrained {
		return fmt.Errorf("%s: trained %d cells, required %d", *path, r.Cells.Trained, *reqTrained)
	}
	if *reqHitRate >= 0 && r.HitRate != *reqHitRate {
		return fmt.Errorf("%s: hit rate %g, required %g", *path, r.HitRate, *reqHitRate)
	}
	if *reqCounter != "" {
		name, want, ok := strings.Cut(*reqCounter, "=")
		if !ok {
			return fmt.Errorf("-require-counter %q: want name=value", *reqCounter)
		}
		wantN, err := strconv.ParseInt(want, 10, 64)
		if err != nil {
			return fmt.Errorf("-require-counter %q: %w", *reqCounter, err)
		}
		got, recorded := r.Telemetry.Counters[name]
		if !recorded {
			return fmt.Errorf("%s: counter %q not in report", *path, name)
		}
		if got != wantN {
			return fmt.Errorf("%s: counter %s = %d, required %d", *path, name, got, wantN)
		}
	}
	fmt.Printf("%s: ok — %s, %d cells (%d trained, %d cached), hit rate %.2f, %.2fs wall\n",
		*path, r.Name, r.Cells.Total, r.Cells.Trained, r.Cells.Cached, r.HitRate, r.WallSeconds)
	return nil
}
