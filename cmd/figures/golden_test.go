package main

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"snnfi/internal/suite"
)

// TestPaperSuiteMatchesGoldens proves the suite interpreter reproduces
// the paper artifacts byte-for-byte. The goldens under testdata/golden
// were captured from the pre-suite per-figure functions (the hand-coded
// implementations this interpreter replaced) at the reduced scale
// n=60 images, 32 neurons/layer, 100 steps/image — so this test pins
// the interpreter to the legacy behavior even though that code is gone.
// There is deliberately no -update flag: regenerating the goldens from
// the interpreter itself would turn the equivalence proof into a
// tautology. If an intentional physics/model change shifts the numbers,
// recapture by running `go run ./cmd/figures -n 60 -neurons 32
// -steps 100 -out cmd/figures/testdata/golden` and say so in the
// commit.
func TestPaperSuiteMatchesGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full paper suite (~4 s single-core)")
	}
	su, err := suite.Load("../../suites/paper.json")
	if err != nil {
		t.Fatal(err)
	}
	out := t.TempDir()
	r := &suite.Runner{
		Suite:   su,
		Name:    "golden",
		OutDir:  out,
		Stdout:  io.Discard,
		Images:  60,
		Neurons: 32,
		Steps:   100,
	}
	if err := r.Run(nil); err != nil {
		t.Fatal(err)
	}

	goldens, err := filepath.Glob("testdata/golden/*.csv")
	if err != nil {
		t.Fatal(err)
	}
	if len(goldens) != 25 {
		t.Fatalf("expected 25 golden artifacts, found %d", len(goldens))
	}
	for _, golden := range goldens {
		name := filepath.Base(golden)
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(out, name))
		if err != nil {
			t.Errorf("%s: interpreter did not write it: %v", name, err)
			continue
		}
		if string(got) != string(want) {
			t.Errorf("%s: bytes differ from the legacy capture", name)
		}
	}

	// The suite must not write anything the goldens don't cover — a new
	// artifact needs a new golden, not a silent pass.
	produced, err := filepath.Glob(filepath.Join(out, "*.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(produced) != len(goldens) {
		t.Errorf("suite wrote %d artifacts, goldens cover %d", len(produced), len(goldens))
	}
}
