// Command figures regenerates every table and figure of the paper's
// evaluation. Each experiment (see DESIGN.md's index) prints its series
// as a text table and writes a CSV next to it.
//
// Usage:
//
//	figures [-exp all|F3,F5b,F8b,...] [-n 1000] [-data DIR] [-out results]
//	        [-workers N] [-jsonl FILE] [-progress]
//
// Experiment IDs: F3 F4 F5b F5c F6a F6b F6c F7b F8a F8b F8c F9a F9b F9c
// F10a F10c D1 D2.
//
// Network sweeps execute on internal/runner's worker pool: -workers
// sizes it (0 = all CPUs), -progress logs each completed sweep cell to
// stderr, and -jsonl streams every sweep point to a JSON-lines file in
// addition to the per-figure CSVs. Repeated attack configurations
// (shared baselines, re-run figures) are served from the result cache
// instead of retraining.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"snnfi/internal/core"
	"snnfi/internal/defense"
	"snnfi/internal/diag"
	"snnfi/internal/neuron"
	"snnfi/internal/obs"
	"snnfi/internal/power"
	"snnfi/internal/runner"
	"snnfi/internal/snn"
	"snnfi/internal/spice"
	"snnfi/internal/xfer"
)

func main() {
	var (
		expFlag  = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		nImages  = flag.Int("n", 1000, "training images per attack configuration")
		dataDir  = flag.String("data", "", "optional real-MNIST directory (IDX files)")
		outDir   = flag.String("out", "results", "output directory for CSV series")
		workers  = flag.Int("workers", 0, "sweep worker-pool size (0 = all CPUs)")
		jsonl    = flag.String("jsonl", "", "optional JSONL file streaming every sweep point")
		progress = flag.Bool("progress", false, "log each completed sweep cell to stderr")
		cacheDir = flag.String("cache-dir", "", "optional directory persisting trained/measured results, so a killed run resumes with only the missing cells recomputed")
		report   = flag.String("report", "", "write the end-of-run campaign report (JSON) to this file")
		quiet    = flag.Bool("quiet", false, "suppress the live progress line and the stderr report summary")
	)
	prof := diag.AddFlags()
	flag.Parse()
	stopProf, err := prof.Start()
	if err != nil {
		fatal(err)
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	r := &figRunner{nImages: *nImages, dataDir: *dataDir, outDir: *outDir, workers: *workers, cacheDir: *cacheDir}
	// One registry spans both tiers: circuit sweeps and spice solves
	// record into it immediately; the network experiment adopts it when
	// lazily built (see experiment()).
	r.reg = obs.NewRegistry()
	spice.Instrument(r.reg)
	if *progress {
		r.progress = func(p runner.Progress) {
			note := ""
			if p.CacheHit {
				note = " (cached)"
			}
			fmt.Fprintf(os.Stderr, "  [%d/%d] %s%s\n", p.Done, p.Total, p.Label, note)
		}
	}
	// The live status line shares stderr with -progress logging; enable
	// it only when neither explicit logging nor -quiet is in effect
	// (and only on a terminal).
	line := runner.NewProgressLine(os.Stderr, !*progress && !*quiet)
	r.progress = runner.ChainProgress(r.progress, line.Observe)
	var sink *runner.JSONLSink
	if *jsonl != "" {
		f, err := os.Create(*jsonl)
		if err != nil {
			fatal(err)
		}
		sink = runner.NewJSONLSink(f)
		r.sinks = []runner.Sink{sink}
	}
	// Circuit-tier characterizations run on the same worker pool
	// settings as the network sweeps; the shared point cache serves
	// repeated circuit recipes across figures (e.g. the stock driver
	// sweep appears in both F5b and F9b).
	r.char = neuron.NewCharacterizer()
	r.char.Workers = r.workers
	r.char.OnProgress = r.progress
	r.char.Sinks = r.sinks
	r.char.Obs = r.reg
	if *cacheDir != "" {
		// Circuit measurements persist beside the network results
		// (separate subdirectory, same lifecycle): repeated figure runs
		// re-measure nothing.
		disk, err := runner.NewDiskCache[float64](filepath.Join(*cacheDir, "circuit"))
		if err != nil {
			fatal(err)
		}
		disk.Instrument(r.reg, "cache.circuit")
		disk.OnFirstWriteError = warnWriteError("circuit")
		r.char.Cache = runner.NewTiered[float64](r.char.Cache, disk)
		r.circuitDisk = disk
	}

	all := []string{"F3", "F4", "F5b", "F5c", "F6a", "F6b", "F6c", "F7b", "F8a", "F8b", "F8c", "F9a", "F9b", "F9c", "F10a", "F10c", "D1", "D2", "D3", "E1", "E2"}
	want := map[string]bool{}
	if *expFlag == "all" {
		for _, id := range all {
			want[id] = true
		}
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	err = runExperiments(r, all, want)
	line.Finish()
	if sink != nil {
		// Close even when an experiment failed, so records streamed by
		// the sweeps that did complete reach disk.
		if cerr := sink.Close(); err == nil {
			err = cerr
		}
	}
	if r.mon != nil {
		rep := r.mon.Report()
		if *report != "" {
			if werr := rep.WriteFile(*report); err == nil {
				err = werr
			}
		}
		if !*quiet {
			rep.Summarize(os.Stderr)
		}
	} else if *report != "" {
		fmt.Fprintln(os.Stderr, "figures: no network campaign ran; -report not written")
	}
	if perr := stopProf(); err == nil {
		err = perr
	}
	// A campaign whose results failed to persist is not resumable —
	// say so instead of exiting 0.
	if cerr := r.circuitDisk.Err(); err == nil && cerr != nil {
		err = fmt.Errorf("circuit cache: %w", cerr)
	}
	if cerr := r.networkDisk.Err(); err == nil && cerr != nil {
		err = fmt.Errorf("network cache: %w", cerr)
	}
	if err != nil {
		fatal(err)
	}
}

func runExperiments(r *figRunner, all []string, want map[string]bool) error {
	for _, id := range all {
		if !want[id] {
			continue
		}
		fmt.Printf("\n===== %s =====\n", id)
		if err := r.run(id); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}

// warnWriteError builds a DiskCache.OnFirstWriteError callback: one
// line, on the first failure only, the moment resumability degrades.
func warnWriteError(tier string) func(error) {
	return func(err error) {
		fmt.Fprintf(os.Stderr, "figures: warning: %s results are no longer being persisted: %v\n", tier, err)
	}
}

type figRunner struct {
	nImages  int
	dataDir  string
	outDir   string
	workers  int
	cacheDir string
	progress func(runner.Progress)
	sinks    []runner.Sink
	char     *neuron.Characterizer // circuit-tier sweep pool

	// Disk tiers under -cache-dir, kept so persistence failures
	// (Err) surface at exit; nil receivers are fine without one.
	circuitDisk *runner.DiskCache[float64]
	networkDisk *runner.DiskCache[*core.Result]

	reg *obs.Registry // shared telemetry registry, both tiers
	mon *core.Monitor // attached when the network experiment is built

	exp *core.Experiment // lazily built, shared across network experiments
}

func (r *figRunner) experiment() (*core.Experiment, error) {
	if r.exp != nil {
		return r.exp, nil
	}
	e, err := core.NewExperiment(r.dataDir, r.nImages, snn.DefaultConfig())
	if err != nil {
		return nil, err
	}
	e.Workers = r.workers
	e.OnProgress = r.progress
	e.Sinks = r.sinks
	e.Obs = r.reg
	r.mon = core.NewMonitor(e, "figures")
	if mem, ok := e.Cache.(*runner.MemoryCache[*core.Result]); ok {
		mem.Instrument(r.reg, "cache.network.mem")
	}
	if r.cacheDir != "" {
		disk, err := runner.NewDiskCache[*core.Result](filepath.Join(r.cacheDir, "network"))
		if err != nil {
			return nil, err
		}
		disk.Instrument(r.reg, "cache.network")
		disk.OnFirstWriteError = warnWriteError("network")
		e.Cache = runner.NewTiered[*core.Result](e.Cache, disk)
		r.networkDisk = disk
	}
	base, err := e.Baseline()
	if err != nil {
		return nil, err
	}
	fmt.Printf("attack-free baseline accuracy: %.2f%% (%d images)\n", 100*base, r.nImages)
	r.exp = e
	return e, nil
}

func (r *figRunner) csv(name, header string, rows [][]float64) error {
	f, err := os.Create(filepath.Join(r.outDir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, header)
	for _, row := range rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = fmt.Sprintf("%g", v)
		}
		fmt.Fprintln(f, strings.Join(parts, ","))
	}
	return nil
}

func (r *figRunner) run(id string) error {
	switch id {
	case "F3":
		return r.fig3()
	case "F4":
		return r.fig4()
	case "F5b":
		return r.fig5b()
	case "F5c":
		return r.fig5c()
	case "F6a":
		return r.fig6a()
	case "F6b":
		return r.fig6b()
	case "F6c":
		return r.fig6c()
	case "F7b":
		return r.fig7b()
	case "F8a":
		return r.layerGrid("F8a", core.Excitatory)
	case "F8b":
		return r.layerGrid("F8b", core.Inhibitory)
	case "F8c":
		return r.fig8c()
	case "F9a":
		return r.fig9a()
	case "F9b":
		return r.fig9b()
	case "F9c":
		return r.fig9c()
	case "F10a":
		return r.fig10a()
	case "F10c":
		return r.fig10c()
	case "D1":
		return r.tableD1()
	case "D2":
		return r.tableD2()
	case "D3":
		return r.tableD3()
	case "E1":
		return r.extWeightFault()
	case "E2":
		return r.extLearningRate()
	default:
		return fmt.Errorf("unknown experiment id %q", id)
	}
}

// fig3: Axon Hillock transient waveforms (Iin, Vmem, Vout).
func (r *figRunner) fig3() error {
	ah := neuron.NewAxonHillock()
	res, err := ah.Simulate(20e-6, 10e-9)
	if err != nil {
		return err
	}
	vmem, vout := res.V("vmem"), res.V("vout")
	spikes := spice.SpikeCount(res.Time, vout, ah.VDD/2)
	period, _ := spice.SpikePeriod(res.Time, vout, ah.VDD/2)
	fmt.Printf("AH waveform: %d output spikes in 20 µs, steady period %.3g µs\n", spikes, period*1e6)
	rows := make([][]float64, 0, len(res.Time)/20)
	for i := 0; i < len(res.Time); i += 20 {
		rows = append(rows, []float64{res.Time[i], vmem[i], vout[i]})
	}
	return r.csv("fig3_ah_waveform.csv", "t_s,vmem_V,vout_V", rows)
}

// fig4: I&F transient waveforms (Vmem).
func (r *figRunner) fig4() error {
	n := neuron.NewIAF()
	res, err := n.Simulate(150e-6, 10e-9)
	if err != nil {
		return err
	}
	vmem := res.V("vmem")
	tts, err := spice.FirstCrossing(res.Time, vmem, 0.5, true)
	if err != nil {
		return err
	}
	fmt.Printf("I&F waveform: first threshold crossing at %.3g µs, membrane peak %.3f V\n",
		tts*1e6, spice.Peak(res.Time, vmem, 0, 150e-6))
	rows := make([][]float64, 0, len(res.Time)/50)
	for i := 0; i < len(res.Time); i += 50 {
		rows = append(rows, []float64{res.Time[i], vmem[i]})
	}
	return r.csv("fig4_iaf_waveform.csv", "t_s,vmem_V", rows)
}

func vddSweep() []float64 { return []float64{0.8, 0.9, 1.0, 1.1, 1.2} }

// fig5b: driver amplitude vs VDD, spice-measured and paper-anchored.
func (r *figRunner) fig5b() error {
	pts, err := r.char.DriverAmplitudeVsVDD(vddSweep())
	if err != nil {
		return err
	}
	anchor := xfer.DriverAmplitudeRatio()
	ref := pts[2].Y
	fmt.Println("VDD    I_spice(nA)  Δ_spice%   Δ_paper%")
	rows := [][]float64{}
	for _, p := range pts {
		dSpice := neuron.PercentChange(p.Y, ref)
		dPaper := 100 * (anchor.At(p.X) - 1)
		fmt.Printf("%.2f   %8.1f    %+7.1f    %+7.1f\n", p.X, p.Y*1e9, dSpice, dPaper)
		rows = append(rows, []float64{p.X, p.Y * 1e9, dSpice, dPaper})
	}
	return r.csv("fig5b_driver_amplitude.csv", "vdd_V,i_nA,delta_spice_pc,delta_paper_pc", rows)
}

// fig5c: time-to-spike vs input amplitude for both neurons.
func (r *figRunner) fig5c() error {
	amps := []float64{136e-9, 168e-9, 200e-9, 232e-9, 264e-9}
	ah, err := r.char.AHTimeToSpikeVsAmplitude(amps)
	if err != nil {
		return err
	}
	iaf, err := r.char.IAFTimeToSpikeVsAmplitude(amps)
	if err != nil {
		return err
	}
	fmt.Println("I(nA)  AH Δtts%   I&F Δtts%   (paper AH: +53.7/−24.7, I&F: +14.5/−6.7 at extremes)")
	rows := [][]float64{}
	for i := range amps {
		dAH := neuron.PercentChange(ah[i].Y, ah[2].Y)
		dIAF := neuron.PercentChange(iaf[i].Y, iaf[2].Y)
		fmt.Printf("%5.0f  %+8.1f  %+9.1f\n", amps[i]*1e9, dAH, dIAF)
		rows = append(rows, []float64{amps[i] * 1e9, dAH, dIAF})
	}
	return r.csv("fig5c_tts_vs_amplitude.csv", "i_nA,ah_delta_pc,iaf_delta_pc", rows)
}

// fig6a: membrane threshold vs VDD for both neurons.
func (r *figRunner) fig6a() error {
	ah, err := r.char.AHThresholdVsVDD(vddSweep())
	if err != nil {
		return err
	}
	iaf, err := r.char.IAFThresholdVsVDD(vddSweep())
	if err != nil {
		return err
	}
	fmt.Println("VDD    AH thr(V)  Δ%       I&F thr(V)  Δ%      (paper: ±18/17)")
	rows := [][]float64{}
	for i := range ah {
		dAH := neuron.PercentChange(ah[i].Y, ah[2].Y)
		dIAF := neuron.PercentChange(iaf[i].Y, iaf[2].Y)
		fmt.Printf("%.2f   %7.4f  %+7.2f   %8.4f  %+7.2f\n", ah[i].X, ah[i].Y, dAH, iaf[i].Y, dIAF)
		rows = append(rows, []float64{ah[i].X, ah[i].Y, dAH, iaf[i].Y, dIAF})
	}
	return r.csv("fig6a_threshold_vs_vdd.csv", "vdd_V,ah_thr_V,ah_delta_pc,iaf_thr_V,iaf_delta_pc", rows)
}

// fig6b/fig6c: time-to-spike vs VDD.
func (r *figRunner) fig6b() error { return r.ttsVsVDD("F6b", xfer.AxonHillock) }
func (r *figRunner) fig6c() error { return r.ttsVsVDD("F6c", xfer.IAF) }

func (r *figRunner) ttsVsVDD(id string, kind xfer.NeuronKind) error {
	var pts []neuron.Point
	var err error
	if kind == xfer.IAF {
		pts, err = r.char.IAFTimeToSpikeVsVDD(vddSweep())
	} else {
		pts, err = r.char.AHTimeToSpikeVsVDD(vddSweep())
	}
	if err != nil {
		return err
	}
	anchor := xfer.TimeToSpikeVsVDDRatio(kind)
	fmt.Printf("VDD    tts(µs)   Δ_spice%%   Δ_paper%%  (%v)\n", kind)
	rows := [][]float64{}
	for _, p := range pts {
		d := neuron.PercentChange(p.Y, pts[2].Y)
		dp := 100 * (anchor.At(p.X) - 1)
		fmt.Printf("%.2f  %8.3f  %+8.1f  %+8.1f\n", p.X, p.Y*1e6, d, dp)
		rows = append(rows, []float64{p.X, p.Y * 1e6, d, dp})
	}
	return r.csv(fmt.Sprintf("fig%s_tts_vs_vdd.csv", strings.ToLower(id[1:])), "vdd_V,tts_us,delta_spice_pc,delta_paper_pc", rows)
}

// fig7b: Attack 1 theta sweep.
func (r *figRunner) fig7b() error {
	e, err := r.experiment()
	if err != nil {
		return err
	}
	pts, err := e.Attack1Sweep([]float64{-20, -10, 0, 10, 20})
	if err != nil {
		return err
	}
	fmt.Println("θ change%   accuracy%   rel-change%  (paper: within ±2%, worst −1.5%)")
	rows := [][]float64{}
	for _, p := range pts {
		fmt.Printf("%+8.0f   %8.2f   %+10.2f\n", p.ScalePc, 100*p.Result.Accuracy, p.Result.RelChangePc)
		rows = append(rows, []float64{p.ScalePc, 100 * p.Result.Accuracy, p.Result.RelChangePc})
	}
	return r.csv("fig7b_attack1_theta.csv", "theta_change_pc,accuracy_pc,rel_change_pc", rows)
}

// layerGrid: Attack 2 (F8a) / Attack 3 (F8b) grids.
func (r *figRunner) layerGrid(id string, layer core.Layer) error {
	e, err := r.experiment()
	if err != nil {
		return err
	}
	changes := []float64{-20, -10, 10, 20}
	fractions := []float64{0, 25, 50, 75, 100}
	pts, err := e.LayerGrid(layer, changes, fractions)
	if err != nil {
		return err
	}
	fmt.Printf("%v threshold grid (rows: Δthr%%, cols: fraction%%), cell = rel-change%%\n", layer)
	fmt.Printf("        %8.0f %8.0f %8.0f %8.0f %8.0f\n", fractions[0], fractions[1], fractions[2], fractions[3], fractions[4])
	rows := [][]float64{}
	for i, c := range changes {
		fmt.Printf("%+6.0f  ", c)
		for j := range fractions {
			p := pts[i*len(fractions)+j]
			fmt.Printf("%+8.2f ", p.Result.RelChangePc)
			rows = append(rows, []float64{p.ScalePc, p.FractionPc, 100 * p.Result.Accuracy, p.Result.RelChangePc})
		}
		fmt.Println()
	}
	if worst, ok := core.WorstCase(pts); ok {
		fmt.Printf("worst case: %+.2f%% at Δthr=%+.0f%%, fraction=%.0f%%\n",
			worst.Result.RelChangePc, worst.ScalePc, worst.FractionPc)
	}
	return r.csv(fmt.Sprintf("fig%s_attack_%v_grid.csv", strings.ToLower(id[1:]), layer),
		"thr_change_pc,fraction_pc,accuracy_pc,rel_change_pc", rows)
}

// fig8c: Attack 4 both-layer sweep.
func (r *figRunner) fig8c() error {
	e, err := r.experiment()
	if err != nil {
		return err
	}
	pts, err := e.Attack4Sweep([]float64{-20, -10, 0, 10, 20})
	if err != nil {
		return err
	}
	fmt.Println("Δthr%   accuracy%   rel-change%  (paper worst: −85.65% at −20%)")
	rows := [][]float64{}
	for _, p := range pts {
		fmt.Printf("%+5.0f   %8.2f   %+10.2f\n", p.ScalePc, 100*p.Result.Accuracy, p.Result.RelChangePc)
		rows = append(rows, []float64{p.ScalePc, 100 * p.Result.Accuracy, p.Result.RelChangePc})
	}
	return r.csv("fig8c_attack4_both_layers.csv", "thr_change_pc,accuracy_pc,rel_change_pc", rows)
}

// fig9a: Attack 5 VDD sweep.
func (r *figRunner) fig9a() error {
	e, err := r.experiment()
	if err != nil {
		return err
	}
	pts, err := e.Attack5Sweep(vddSweep(), xfer.IAF)
	if err != nil {
		return err
	}
	fmt.Println("VDD    accuracy%   rel-change%  (paper worst: −84.93%)")
	rows := [][]float64{}
	for _, p := range pts {
		fmt.Printf("%.2f   %8.2f   %+10.2f\n", p.VDD, 100*p.Result.Accuracy, p.Result.RelChangePc)
		rows = append(rows, []float64{p.VDD, 100 * p.Result.Accuracy, p.Result.RelChangePc})
	}
	return r.csv("fig9a_attack5_vdd.csv", "vdd_V,accuracy_pc,rel_change_pc", rows)
}

// fig9b: robust driver amplitude vs VDD.
func (r *figRunner) fig9b() error {
	unsec, err := r.char.DriverAmplitudeVsVDD(vddSweep())
	if err != nil {
		return err
	}
	rob, err := r.char.RobustDriverAmplitudeVsVDD(vddSweep())
	if err != nil {
		return err
	}
	fmt.Println("VDD    unsecured(nA)  Δ%       robust(nA)  Δ%")
	rows := [][]float64{}
	for i := range unsec {
		dU := neuron.PercentChange(unsec[i].Y, unsec[2].Y)
		dR := neuron.PercentChange(rob[i].Y, rob[2].Y)
		fmt.Printf("%.2f   %10.1f  %+7.1f   %9.1f  %+7.2f\n", unsec[i].X, unsec[i].Y*1e9, dU, rob[i].Y*1e9, dR)
		rows = append(rows, []float64{unsec[i].X, unsec[i].Y * 1e9, dU, rob[i].Y * 1e9, dR})
	}
	return r.csv("fig9b_robust_driver.csv", "vdd_V,unsecured_nA,unsecured_delta_pc,robust_nA,robust_delta_pc", rows)
}

// fig9c: sizing sweep + defended accuracy at 0.8 V.
func (r *figRunner) fig9c() error {
	ratios := []float64{1, 2, 4, 8, 16, 32}
	pts, err := r.char.AHThresholdVsSizing(0.8, ratios)
	if err != nil {
		return err
	}
	nominal := neuron.NewAxonHillock()
	thr0, err := nominal.Threshold()
	if err != nil {
		return err
	}
	fmt.Println("W/L×   thr@0.8V   Δ_spice%   Δ_paper-model%")
	rows := [][]float64{}
	for _, p := range pts {
		d := neuron.PercentChange(p.Y, thr0)
		dp := 100 * xfer.SizingResidualShift(0.8, p.X)
		fmt.Printf("%4.0f   %7.4f   %+8.2f   %+8.2f\n", p.X, p.Y, d, dp)
		rows = append(rows, []float64{p.X, p.Y, d, dp})
	}
	// Defended accuracy: Attack 4 at the 0.8 V equivalent threshold
	// shift, replayed undefended and hardened by 32× sizing as one
	// scenario (shared pool run, shared baseline, detector alongside).
	e, err := r.experiment()
	if err != nil {
		return err
	}
	pts2, err := e.RunScenario(&core.Scenario{
		Name:     "fig9c-sizing-defended",
		Attack:   core.Attack4,
		Axes:     core.Axes{ChangesPc: []float64{100 * (xfer.ThresholdRatio(xfer.AxonHillock).At(0.8) - 1)}},
		Defenses: []core.Hardening{defense.Sizing{WLMultiple: 32}},
		Detector: defense.NewDetector(xfer.AxonHillock),
	})
	if err != nil {
		return err
	}
	undef, def := pts2[0].Result, pts2[1].Result
	fmt.Printf("accuracy at VDD=0.8: undefended %+.2f%%, 32× sizing %+.2f%% (paper: −85.65%% → −3.49%%), detector: %v\n",
		undef.RelChangePc, def.RelChangePc, pts2[0].Detected)
	return r.csv("fig9c_sizing.csv", "wl_multiple,thr_V,delta_spice_pc,delta_model_pc", rows)
}

// fig10a: comparator neuron threshold and timing vs VDD.
func (r *figRunner) fig10a() error {
	vdds := []float64{0.8, 1.0, 1.2}
	thr, err := r.char.ComparatorMeasuredThresholdVsVDD(vdds)
	if err != nil {
		return err
	}
	tts, err := r.char.ComparatorTimeToSpikeVsVDD(vdds)
	if err != nil {
		return err
	}
	fmt.Println("VDD    thr(V)    Δthr%    tts(µs)   Δtts%   (undefended AH: ±20%)")
	rows := [][]float64{}
	for i, vdd := range vdds {
		dThr := neuron.PercentChange(thr[i].Y, thr[1].Y)
		dTts := neuron.PercentChange(tts[i].Y, tts[1].Y)
		fmt.Printf("%.2f   %.4f   %+6.2f   %7.3f  %+7.2f\n", vdd, thr[i].Y, dThr, tts[i].Y*1e6, dTts)
		rows = append(rows, []float64{vdd, thr[i].Y, dThr, tts[i].Y * 1e6, dTts})
	}
	return r.csv("fig10a_comparator.csv", "vdd_V,thr_V,dthr_pc,tts_us,dtts_pc", rows)
}

// fig10c: dummy-neuron detection sweep.
func (r *figRunner) fig10c() error {
	for _, kind := range []xfer.NeuronKind{xfer.AxonHillock, xfer.IAF} {
		det := defense.NewDetector(kind)
		fmt.Printf("dummy %v (window %.0f ms, trigger ±%.0f%%):\n", kind, det.WindowMs, det.ThresholdPc)
		rows := [][]float64{}
		for _, v := range det.DetectionSweep([]float64{0.8, 0.85, 0.9, 0.95, 1.0, 1.05, 1.1, 1.15, 1.2}) {
			fmt.Println("  ", v)
			detected := 0.0
			if v.Detected {
				detected = 1
			}
			rows = append(rows, []float64{v.VDD, float64(v.Count), v.DeviationPc, detected})
			rec := neuron.PointRecord(fmt.Sprintf("dummy-%v-detection", kind),
				neuron.Point{X: v.VDD, Y: v.DeviationPc})
			for _, s := range r.sinks {
				if err := s.Write(rec); err != nil {
					return err
				}
			}
		}
		if err := r.csv(fmt.Sprintf("fig10c_dummy_%v.csv", kind), "vdd_V,count,deviation_pc,detected", rows); err != nil {
			return err
		}
	}
	return nil
}

// tableD1: defense overhead table.
func (r *figRunner) tableD1() error {
	fmt.Println("defense overheads for the paper's 200-neuron implementation (100/layer):")
	rows := [][]float64{}
	for i, row := range power.OverheadTable(200, 100) {
		fmt.Println("  ", row)
		rows = append(rows, []float64{float64(i), row.PowerPc, row.AreaPc})
	}
	fmt.Println("bandgap area amortization at larger scales:")
	for _, n := range []int{200, 2000, 20000} {
		base := power.BaselineSystem(n)
		sys := power.DefendedSystem(n, power.DefenseSelection{SharedBandgap: true})
		fmt.Printf("   %6d neurons: area %+6.2f%%\n", n,
			100*(sys.AreaUm2()-base.AreaUm2())/base.AreaUm2())
	}
	return r.csv("d1_overheads.csv", "row,power_pc,area_pc", rows)
}

// tableD3: dummy-neuron detection coverage of the black-box attack —
// does the detector flag every VDD point that damages accuracy?
func (r *figRunner) tableD3() error {
	e, err := r.experiment()
	if err != nil {
		return err
	}
	det := defense.NewDetector(xfer.IAF)
	rows, err := defense.DetectionCoverage(e, det, vddSweep())
	if err != nil {
		return err
	}
	csvRows := [][]float64{}
	for _, row := range rows {
		fmt.Println("  ", row)
		detected := 0.0
		if row.Verdict.Detected {
			detected = 1
		}
		csvRows = append(csvRows, []float64{row.VDD, row.RelChangePc, row.Verdict.DeviationPc, detected})
	}
	blind := defense.UncoveredDamage(rows, -10)
	fmt.Printf("blind spots (>10%% damage, undetected): %d\n", len(blind))
	return r.csv("d3_detection_coverage.csv", "vdd_V,rel_change_pc,count_dev_pc,detected", csvRows)
}

// extWeightFault: extension experiment E1 — synaptic-weight drift, the
// first asset §IV-E1 lists but does not study.
func (r *figRunner) extWeightFault() error {
	e, err := r.experiment()
	if err != nil {
		return err
	}
	fmt.Println("weight drift (scale×fraction, one-shot vs persistent every 50 images):")
	// All four configurations are independent cells: batch them through
	// the pool instead of training serially.
	var specs []core.WeightFaultSpec
	for _, scale := range []float64{0.7, 0.5} {
		for _, cadence := range []int{0, 50} {
			specs = append(specs, core.WeightFaultSpec{
				Scale: scale, Fraction: 0.5, EveryNImages: cadence, Seed: 11,
			})
		}
	}
	results, err := e.RunWeightFaults(specs)
	if err != nil {
		return err
	}
	csvRows := [][]float64{}
	for i, res := range results {
		fmt.Printf("  scale %.1f cadence %3d: accuracy %.2f%% (%+.2f%%)\n",
			specs[i].Scale, specs[i].EveryNImages, 100*res.Accuracy, res.RelChangePc)
		csvRows = append(csvRows, []float64{specs[i].Scale, float64(specs[i].EveryNImages), 100 * res.Accuracy, res.RelChangePc})
	}
	return r.csv("e1_weight_fault.csv", "scale,cadence_images,accuracy_pc,rel_change_pc", csvRows)
}

// extLearningRate: extension experiment E2 — STDP learning-rate
// corruption, the second unstudied asset of §IV-E1.
func (r *figRunner) extLearningRate() error {
	e, err := r.experiment()
	if err != nil {
		return err
	}
	fmt.Println("learning-rate scaling:")
	scales := []float64{0, 0.25, 0.5, 1, 2}
	specs := make([]core.LearningRateFaultSpec, len(scales))
	for i, scale := range scales {
		specs[i] = core.LearningRateFaultSpec{Scale: scale}
	}
	results, err := e.RunLearningRateFaults(specs)
	if err != nil {
		return err
	}
	csvRows := [][]float64{}
	for i, res := range results {
		fmt.Printf("  ×%.2f: accuracy %.2f%% (%+.2f%%)\n", scales[i], 100*res.Accuracy, res.RelChangePc)
		csvRows = append(csvRows, []float64{scales[i], 100 * res.Accuracy, res.RelChangePc})
	}
	return r.csv("e2_learning_rate.csv", "scale,accuracy_pc,rel_change_pc", csvRows)
}

// tableD2: bandgap defense accuracy recovery.
func (r *figRunner) tableD2() error {
	e, err := r.experiment()
	if err != nil {
		return err
	}
	pts, err := e.RunScenario(&core.Scenario{
		Name:     "d2-bandgap-defended",
		Attack:   core.Attack4,
		Axes:     core.Axes{ChangesPc: []float64{100 * (xfer.ThresholdRatio(xfer.IAF).At(0.8) - 1)}},
		Defenses: []core.Hardening{defense.BandgapThreshold{Kind: xfer.IAF}},
		Detector: defense.NewDetector(xfer.IAF),
	})
	if err != nil {
		return err
	}
	undef, def := pts[0].Result, pts[1].Result
	fmt.Printf("Attack 4 at VDD=0.8 equivalent: undefended %+.2f%%, bandgap %+.2f%% (paper: degradation → ~0%%), detector: %v\n",
		undef.RelChangePc, def.RelChangePc, pts[0].Detected)
	return r.csv("d2_bandgap.csv", "config,rel_change_pc", [][]float64{{0, undef.RelChangePc}, {1, def.RelChangePc}})
}
