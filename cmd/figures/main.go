// Command figures reproduces the paper's artifacts by interpreting a
// declarative suite file (suites/paper.json checks in the whole paper:
// every figure and table of Nagarajan et al., DATE 2022, as data).
// Each suite entry names a circuit characterization, attack scenario,
// defense evaluation or extension-fault sweep plus the CSV artifact it
// writes; the binary itself is only the interpreter — new
// attack×defense×axis compositions are authored in JSON, with zero Go
// changes.
//
// Usage:
//
//	figures [-suite suites/paper.json] [-only F3,F8b,...] [-list] [-validate]
//	        [-n N] [-neurons N] [-steps N] [-data DIR] [-out results]
//	        [-workers N] [-jsonl FILE] [-cache-dir DIR] [-report FILE]
//	        [-progress] [-quiet]
//
// Scale knobs (-n/-neurons/-steps) override the suite's network spec
// for fast runs; -only restricts the run to selected entry IDs; -list
// and -validate inspect a suite without running anything. The CSV
// bytes are identical at any -workers count, and -cache-dir makes a
// repeated run retrain zero networks.
package main

import (
	"flag"
	"fmt"
	"os"

	"snnfi/internal/cli"
)

func main() {
	var (
		suitePath = flag.String("suite", "suites/paper.json", "suite file to interpret")
		only      = flag.String("only", "", "comma-separated entry ids (default: all)")
		list      = flag.Bool("list", false, "print the suite's entries and exit")
		validate  = flag.Bool("validate", false, "check the suite file and exit")
		nImages   = flag.Int("n", 0, "override training images per attack configuration (0 = suite value)")
		neurons   = flag.Int("neurons", 0, "override excitatory/inhibitory neurons per layer (0 = suite value)")
		steps     = flag.Int("steps", 0, "override presentation steps per image (0 = suite value)")
		dataDir   = flag.String("data", "", "optional real-MNIST directory (IDX files)")
		outDir    = flag.String("out", "results", "output directory for CSV series")
	)
	shared := cli.AddFlags(cli.Campaign)
	flag.Parse()

	opts := cli.SuiteOptions{
		Path:     *suitePath,
		Only:     *only,
		List:     *list,
		Validate: *validate,
		OutDir:   *outDir,
		DataDir:  *dataDir,
		Images:   *nImages,
		Neurons:  *neurons,
		Steps:    *steps,
	}
	if err := run(shared, opts); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(shared *cli.Flags, opts cli.SuiteOptions) (retErr error) {
	sess, err := shared.Start("figures")
	if err != nil {
		return err
	}
	defer sess.CloseInto(&retErr)
	return sess.RunSuite(opts)
}
