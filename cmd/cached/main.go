// Command cached serves a campaign content store over HTTP: the
// server side of the fabric that lets any number of snn-attack /
// snn-worker / figures processes — on any number of machines — share
// one content-addressed result namespace (see internal/fabric and
// runner.HTTPCache; wire format runner.StoreProtocol).
//
// The store directory uses the exact -cache-dir layout (network/,
// circuit/ tier subdirectories of one-JSON-file-per-cell), so an
// existing warm cache directory can be served as-is, and a store
// directory can be mounted back as a plain -cache-dir.
//
// Usage:
//
//	cached -dir store                          # serve ./store on a random port
//	cached -dir store -addr 0.0.0.0:8475       # fixed address
//	cached -dir store -addr-file store.addr    # write the bound address (CI/scripts)
//
// Long-lived campaign service: POST a suite JSON to /campaign and poll
// GET /campaign/{id} for live present/missing progress against the
// store manifest; GET /campaign/{id}/cells serves the sweep points
// already computed. GET /metrics exports the obs registry (request
// counters, per-tier cache counters, request-duration histograms);
// GET /healthz reports liveness and the store protocol version.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"snnfi/internal/fabric"
	"snnfi/internal/obs"
	"snnfi/internal/runner"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cached:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dir      = flag.String("dir", "store", "store directory (per-tier subdirectories, the -cache-dir layout)")
		addr     = flag.String("addr", "127.0.0.1:0", "listen address (port 0 = pick a free port)")
		addrFile = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts that cannot race a fixed port)")
		dataDir  = flag.String("data", "", "optional real-MNIST directory for campaign audits (must match what workers train from)")
		quiet    = flag.Bool("quiet", false, "suppress the startup line")
	)
	flag.Parse()

	reg := obs.NewRegistry()
	srv, err := fabric.NewServer(*dir, reg)
	if err != nil {
		return err
	}
	srv.DataDir = *dataDir

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *addrFile != "" {
		// Atomic write: a script polling for this file must never read
		// a half-written address.
		tmp := *addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, *addrFile); err != nil {
			return err
		}
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "cached: serving %s on http://%s (%s)\n", *dir, ln.Addr(), runner.StoreProtocol)
	}

	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case <-sig:
		// Workers degrade to recompute-on-miss when the store goes
		// away, so a plain close loses nothing durable — cells already
		// written are safe on disk (temp-file + rename).
		return httpSrv.Close()
	}
}
