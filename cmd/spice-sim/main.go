// Command spice-sim runs the circuit-level characterizations on the
// built-in analog neuron netlists: transient waveforms, threshold and
// time-to-spike sweeps versus VDD, driver amplitude sweeps, sizing
// sweeps, and dummy-neuron counts.
//
// Usage:
//
//	spice-sim -circuit ah|iaf|driver|robust-driver|comparator|dummy-ah|dummy-iaf [-vdd 1.0]
//	spice-sim -circuit ah -sweep vdd [-workers N] [-jsonl FILE]
//	spice-sim -circuit ah -sweep sizing
//	spice-sim -netlist deck.sp -tran 20u -dt 10n -node vout
//
// Sweeps run their independent points on internal/runner's worker pool:
// -workers sizes it (0 = all CPUs; output is identical at any width)
// and -jsonl streams every sweep point to a JSON-lines file.
package main

import (
	"flag"
	"fmt"
	"os"

	"snnfi/internal/neuron"
	"snnfi/internal/runner"
	"snnfi/internal/spice"
)

func main() {
	var (
		circuit = flag.String("circuit", "ah", "ah|iaf|driver|robust-driver|comparator|dummy-ah|dummy-iaf")
		vdd     = flag.Float64("vdd", 1.0, "supply voltage")
		sweep   = flag.String("sweep", "", "optional sweep: vdd|sizing|amplitude")
		netlist = flag.String("netlist", "", "simulate a SPICE text deck instead of a built-in circuit")
		tranArg = flag.String("tran", "20u", "transient stop time for -netlist")
		dtArg   = flag.String("dt", "10n", "transient step for -netlist")
		node    = flag.String("node", "", "node to report for -netlist (default: spike-count every node)")
		workers = flag.Int("workers", 0, "sweep worker-pool size (0 = all CPUs)")
		jsonl   = flag.String("jsonl", "", "optional JSONL file streaming every sweep point")
	)
	flag.Parse()

	if *netlist != "" {
		if err := runNetlist(*netlist, *tranArg, *dtArg, *node); err != nil {
			fatal(err)
		}
		return
	}
	if *sweep != "" {
		ch := neuron.NewCharacterizer()
		ch.Workers = *workers
		var sink *runner.JSONLSink
		if *jsonl != "" {
			f, err := os.Create(*jsonl)
			if err != nil {
				fatal(err)
			}
			sink = runner.NewJSONLSink(f)
			ch.Sinks = []runner.Sink{sink}
		}
		err := runSweep(ch, *circuit, *sweep)
		if sink != nil {
			if cerr := sink.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fatal(err)
		}
		return
	}
	if err := runSingle(*circuit, *vdd); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spice-sim:", err)
	os.Exit(1)
}

// runNetlist parses a text deck, runs a transient, and summarizes the
// requested node (or all nodes).
func runNetlist(path, tranStr, dtStr, node string) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	c, err := spice.ParseNetlist(string(src))
	if err != nil {
		return err
	}
	if err := c.Validate(); err != nil {
		return err
	}
	stop, err := spice.ParseValue(tranStr)
	if err != nil {
		return fmt.Errorf("-tran: %w", err)
	}
	dt, err := spice.ParseValue(dtStr)
	if err != nil {
		return fmt.Errorf("-dt: %w", err)
	}
	res, err := c.Tran(spice.TranOptions{Dt: dt, Stop: stop, UIC: true})
	if err != nil {
		return err
	}
	nodes := c.NodeNames()
	if node != "" {
		nodes = []string{node}
	}
	for _, n := range nodes {
		v := res.V(n)
		if v == nil {
			return fmt.Errorf("no node %q in deck", n)
		}
		peak := spice.Peak(res.Time, v, 0, stop)
		final := spice.SettledValue(res.Time, v, 0.1)
		spikes := spice.SpikeCount(res.Time, v, peak/2)
		fmt.Printf("%-10s peak %.4f V  settled %.4f V  spikes(>half-peak) %d\n", n, peak, final, spikes)
	}
	return nil
}

func runSingle(circuit string, vdd float64) error {
	switch circuit {
	case "ah":
		n := neuron.NewAxonHillock()
		n.VDD = vdd
		res, err := n.Simulate(40e-6, 10e-9)
		if err != nil {
			return err
		}
		thr, err := n.Threshold()
		if err != nil {
			return err
		}
		tts, err := spice.FirstCrossing(res.Time, res.V("vout"), vdd/2, true)
		if err != nil {
			return err
		}
		period, _ := spice.SpikePeriod(res.Time, res.V("vout"), vdd/2)
		fmt.Printf("axon hillock @ VDD=%.2f: threshold %.4f V, time-to-spike %.3g µs, period %.3g µs, %d spikes/40 µs\n",
			vdd, thr, tts*1e6, period*1e6, spice.SpikeCount(res.Time, res.V("vout"), vdd/2))
	case "iaf":
		n := neuron.NewIAF()
		n.VDD = vdd
		thr, err := n.MeasuredThreshold(250e-6, 10e-9)
		if err != nil {
			return err
		}
		tts, err := n.TimeToSpike(250e-6, 10e-9)
		if err != nil {
			return err
		}
		fmt.Printf("voltage-amplifier I&F @ VDD=%.2f: threshold %.4f V (divider %.4f), time-to-spike %.3g µs\n",
			vdd, thr, n.ThresholdVoltage(), tts*1e6)
	case "driver":
		d := neuron.NewDriver()
		d.VDD = vdd
		amp, err := d.Amplitude()
		if err != nil {
			return err
		}
		fmt.Printf("current-mirror driver @ VDD=%.2f: output spike amplitude %.1f nA\n", vdd, amp*1e9)
	case "robust-driver":
		d := neuron.NewRobustDriver()
		d.VDD = vdd
		amp, err := d.Amplitude()
		if err != nil {
			return err
		}
		fmt.Printf("robust driver @ VDD=%.2f: output amplitude %.1f nA\n", vdd, amp*1e9)
	case "comparator":
		n := neuron.NewComparatorAH()
		n.VDD = vdd
		thr, err := n.MeasuredThreshold(40e-6, 10e-9)
		if err != nil {
			return err
		}
		tts, err := n.TimeToSpike(40e-6, 10e-9)
		if err != nil {
			return err
		}
		fmt.Printf("comparator AH @ VDD=%.2f: threshold %.4f V, time-to-spike %.3g µs\n", vdd, thr, tts*1e6)
	case "dummy-ah", "dummy-iaf":
		kind := neuron.DummyAxonHillock
		if circuit == "dummy-iaf" {
			kind = neuron.DummyIAF
		}
		d := neuron.NewDummyNeuron(kind)
		d.VDD = vdd
		count, err := d.SpikeCount(100e-3)
		if err != nil {
			return err
		}
		fmt.Printf("dummy %v @ VDD=%.2f: %d output spikes per 100 ms window\n", kind, vdd, count)
	default:
		return fmt.Errorf("unknown circuit %q", circuit)
	}
	return nil
}

func runSweep(ch *neuron.Characterizer, circuit, sweep string) error {
	vdds := []float64{0.8, 0.9, 1.0, 1.1, 1.2}
	switch {
	case circuit == "ah" && sweep == "vdd":
		thr, err := ch.AHThresholdVsVDD(vdds)
		if err != nil {
			return err
		}
		tts, err := ch.AHTimeToSpikeVsVDD(vdds)
		if err != nil {
			return err
		}
		fmt.Println("VDD    threshold(V)  tts(µs)")
		for i := range vdds {
			fmt.Printf("%.2f   %9.4f   %8.3f\n", vdds[i], thr[i].Y, tts[i].Y*1e6)
		}
	case circuit == "iaf" && sweep == "vdd":
		tts, err := ch.IAFTimeToSpikeVsVDD(vdds)
		if err != nil {
			return err
		}
		thr, err := ch.IAFThresholdVsVDD(vdds)
		if err != nil {
			return err
		}
		fmt.Println("VDD    threshold(V)  tts(µs)")
		for i := range vdds {
			fmt.Printf("%.2f   %9.4f   %8.3f\n", vdds[i], thr[i].Y, tts[i].Y*1e6)
		}
	case circuit == "comparator" && sweep == "vdd":
		thr, err := ch.ComparatorMeasuredThresholdVsVDD(vdds)
		if err != nil {
			return err
		}
		tts, err := ch.ComparatorTimeToSpikeVsVDD(vdds)
		if err != nil {
			return err
		}
		fmt.Println("VDD    threshold(V)  tts(µs)")
		for i := range vdds {
			fmt.Printf("%.2f   %9.4f   %8.3f\n", vdds[i], thr[i].Y, tts[i].Y*1e6)
		}
	case (circuit == "dummy-ah" || circuit == "dummy-iaf") && sweep == "vdd":
		kind := neuron.DummyAxonHillock
		if circuit == "dummy-iaf" {
			kind = neuron.DummyIAF
		}
		pts, err := ch.DummyCountVsVDD(kind, 100e-3, vdds)
		if err != nil {
			return err
		}
		fmt.Println("VDD    spikes/100ms")
		for _, p := range pts {
			fmt.Printf("%.2f   %8.0f\n", p.X, p.Y)
		}
	case circuit == "ah" && sweep == "sizing":
		pts, err := ch.AHThresholdVsSizing(0.8, []float64{1, 2, 4, 8, 16, 32})
		if err != nil {
			return err
		}
		fmt.Println("W/L×   threshold @0.8V (V)")
		for _, p := range pts {
			fmt.Printf("%4.0f   %.4f\n", p.X, p.Y)
		}
	case circuit == "driver" && sweep == "vdd":
		pts, err := ch.DriverAmplitudeVsVDD(vdds)
		if err != nil {
			return err
		}
		fmt.Println("VDD    amplitude(nA)")
		for _, p := range pts {
			fmt.Printf("%.2f   %8.1f\n", p.X, p.Y*1e9)
		}
	case circuit == "robust-driver" && sweep == "vdd":
		pts, err := ch.RobustDriverAmplitudeVsVDD(vdds)
		if err != nil {
			return err
		}
		fmt.Println("VDD    amplitude(nA)")
		for _, p := range pts {
			fmt.Printf("%.2f   %8.1f\n", p.X, p.Y*1e9)
		}
	case (circuit == "ah" || circuit == "iaf") && sweep == "amplitude":
		amps := []float64{136e-9, 168e-9, 200e-9, 232e-9, 264e-9}
		var pts []neuron.Point
		var err error
		if circuit == "ah" {
			pts, err = ch.AHTimeToSpikeVsAmplitude(amps)
		} else {
			pts, err = ch.IAFTimeToSpikeVsAmplitude(amps)
		}
		if err != nil {
			return err
		}
		fmt.Println("I(nA)  tts(µs)")
		for _, p := range pts {
			fmt.Printf("%5.0f  %8.3f\n", p.X*1e9, p.Y*1e6)
		}
	default:
		return fmt.Errorf("unsupported sweep %q for circuit %q", sweep, circuit)
	}
	return nil
}
