// Command snn-attack runs one of the paper's five power attacks against
// the Diehl&Cook digit classifier and reports accuracy relative to the
// attack-free baseline, optionally with a defense applied.
//
// Usage:
//
//	snn-attack -attack 3 -change -20 -fraction 100 [-n 1000]
//	snn-attack -attack 5 -vdd 0.8 [-defense bandgap]
//	snn-attack -attack 4 -change -20 -defense sizing
//
// Attacks: 1 (driver theta), 2 (excitatory threshold), 3 (inhibitory
// threshold), 4 (both layers), 5 (black-box VDD).
// Defenses: none, robust-driver, bandgap, sizing, comparator.
//
// Execution routes through internal/runner's campaign pool: -workers
// sizes it and -jsonl appends the result as a JSON-lines record.
package main

import (
	"flag"
	"fmt"
	"os"

	"snnfi/internal/core"
	"snnfi/internal/defense"
	"snnfi/internal/runner"
	"snnfi/internal/snn"
	"snnfi/internal/xfer"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "snn-attack:", err)
		os.Exit(1)
	}
}

// run returns instead of exiting so deferred cleanup (flushing the
// JSONL sink) executes on every path.
func run() (retErr error) {
	var (
		attack   = flag.Int("attack", 3, "attack number (1-5)")
		changePc = flag.Float64("change", -20, "parameter change in percent (attacks 1-4)")
		fraction = flag.Float64("fraction", 100, "percent of the layer affected (attacks 2-3)")
		vdd      = flag.Float64("vdd", 0.8, "supply voltage (attack 5)")
		nImages  = flag.Int("n", 1000, "training images")
		dataDir  = flag.String("data", "", "optional real-MNIST directory")
		defName  = flag.String("defense", "none", "defense: none|robust-driver|bandgap|sizing|comparator")
		workers  = flag.Int("workers", 0, "campaign worker-pool size (0 = all CPUs)")
		jsonl    = flag.String("jsonl", "", "optional JSONL file recording the result")
	)
	flag.Parse()

	var plan *core.FaultPlan
	switch *attack {
	case 1:
		plan = core.NewAttack1(1 + *changePc/100)
	case 2:
		plan = core.NewAttack2(1+*changePc/100, *fraction/100, 99)
	case 3:
		plan = core.NewAttack3(1+*changePc/100, *fraction/100, 99)
	case 4:
		plan = core.NewAttack4(1 + *changePc/100)
	case 5:
		plan = core.NewAttack5(*vdd, xfer.IAF)
	default:
		return fmt.Errorf("unknown attack %d (want 1-5)", *attack)
	}

	var def defense.Defense
	switch *defName {
	case "none":
	case "robust-driver":
		def = defense.RobustDriver{ResidualPc: 0.1}
	case "bandgap":
		def = defense.BandgapThreshold{Kind: xfer.IAF}
	case "sizing":
		def = defense.Sizing{WLMultiple: 32}
	case "comparator":
		def = defense.ComparatorNeuron{}
	default:
		return fmt.Errorf("unknown defense %q", *defName)
	}
	if def != nil {
		plan = def.Harden(plan)
	}

	exp, err := core.NewExperiment(*dataDir, *nImages, snn.DefaultConfig())
	if err != nil {
		return err
	}
	exp.Workers = *workers
	if *jsonl != "" {
		f, err := os.Create(*jsonl)
		if err != nil {
			return err
		}
		sink := runner.NewJSONLSink(f)
		defer func() {
			if err := sink.Close(); retErr == nil {
				retErr = err
			}
		}()
		exp.Sinks = []runner.Sink{sink}
	}
	base, err := exp.Baseline()
	if err != nil {
		return err
	}
	fmt.Printf("plan: %s\n", plan.Name)
	for _, f := range plan.Faults {
		fmt.Printf("  %-12v scale %.4f over %.0f%% of the layer\n", f.Layer, f.Scale, 100*f.Fraction)
	}
	results, err := exp.RunPlans([]*core.FaultPlan{plan})
	if err != nil {
		return err
	}
	res := results[0]
	fmt.Printf("baseline accuracy: %.2f%%\n", 100*base)
	fmt.Printf("attacked accuracy: %.2f%%\n", 100*res.Accuracy)
	fmt.Printf("relative change:   %+.2f%%\n", res.RelChangePc)
	return nil
}
