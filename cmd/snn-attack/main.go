// Command snn-attack runs one of the paper's five power attacks against
// the Diehl&Cook digit classifier and reports accuracy relative to the
// attack-free baseline, with optional defended replays and the
// dummy-neuron detector judging alongside. With -suite it instead
// interprets a declarative suite file (see internal/suite and
// suites/paper.json), so arbitrary attack×defense×axis compositions run
// without recompiling.
//
// Usage:
//
//	snn-attack -attack 3 -change -20 -fraction 100 [-n 1000]
//	snn-attack -attack 3 -change -20,-10,10,20 -defense sizing
//	snn-attack -attack 5 -vdd 0.8 [-defense bandgap] [-cache-dir DIR]
//	snn-attack -attack 4 -change -20 -cache-dir DIR -audit
//	snn-attack -attack 3 -change -20,10 -store http://HOST:PORT -audit-json -
//	snn-attack -suite my-suite.json [-only S1,S2] [-out results]
//	snn-attack -suite my-suite.json -list
//
// Attacks: 1 (driver theta), 2 (excitatory threshold), 3 (inhibitory
// threshold), 4 (both layers), 5 (black-box VDD).
// Defenses: none, robust-driver, bandgap, sizing, comparator.
//
// The attack compiles into a core.Scenario — the axis coordinates
// crossed with the undefended column and any requested defense — and
// executes on internal/runner's campaign pool: -workers sizes it,
// -jsonl streams every cell as a JSON-lines record, and -cache-dir /
// -store persist trained results (memory→disk→store chain) so a
// repeated invocation (same data, same configuration) retrains
// nothing; with -store that holds across machines. -audit prints
// which of the scenario's cells the cache tiers already hold and
// exits without training anything; -audit-json writes the same audit
// machine-readably (the fabric's shard-assignment input, see
// cmd/snn-worker).
package main

import (
	"flag"
	"fmt"
	"os"

	"snnfi/internal/cli"
	"snnfi/internal/core"
	"snnfi/internal/runner"
	"snnfi/internal/snn"
	"snnfi/internal/spice"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "snn-attack:", err)
		os.Exit(1)
	}
}

// run returns instead of exiting so deferred cleanup (flushing the
// JSONL sink) executes on every path.
func run() (retErr error) {
	var (
		nImages   = flag.Int("n", 1000, "training images")
		dataDir   = flag.String("data", "", "optional real-MNIST directory")
		audit     = flag.Bool("audit", false, "report which cells -cache-dir/-store already hold, without training anything")
		auditJSON = flag.String("audit-json", "", "write the audit as JSON to this file ('-' = stdout); implies -audit")

		suitePath = flag.String("suite", "", "interpret a declarative suite file instead of building one scenario from the flags")
		only      = flag.String("only", "", "comma-separated suite entry ids (with -suite)")
		list      = flag.Bool("list", false, "print the suite's entries and exit (with -suite)")
		validate  = flag.Bool("validate", false, "check the suite file and exit (with -suite)")
		outDir    = flag.String("out", "", "output directory for suite CSV artifacts (with -suite)")
	)
	attackFlags := cli.AddAttackFlags(flag.CommandLine)
	shared := cli.AddFlags(cli.Campaign)
	flag.Parse()
	if *auditJSON != "" {
		*audit = true
	}
	if *audit && shared.CacheDir == "" && shared.Store == "" {
		return fmt.Errorf("-audit needs -cache-dir or -store to inspect")
	}
	if (*only != "" || *list || *validate || *outDir != "") && *suitePath == "" {
		return fmt.Errorf("-only/-list/-validate/-out need -suite")
	}

	sess, err := shared.Start("snn-attack")
	if err != nil {
		return err
	}
	defer sess.CloseInto(&retErr)

	if *suitePath != "" {
		// -n keeps its single-attack default; only an explicit value
		// overrides the suite's own network spec.
		images := 0
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "n" {
				images = *nImages
			}
		})
		return sess.RunSuite(cli.SuiteOptions{
			Path:     *suitePath,
			Only:     *only,
			List:     *list,
			Validate: *validate,
			OutDir:   *outDir,
			DataDir:  *dataDir,
			Images:   images,
		})
	}

	scn, err := attackFlags.Scenario()
	if err != nil {
		return err
	}

	exp, err := core.NewExperiment(*dataDir, *nImages, snn.DefaultConfig())
	if err != nil {
		return err
	}
	exp.Workers = shared.Workers
	exp.OnProgress = sess.OnProgress()
	exp.Sinks = sess.Sinks()
	exp.Obs = sess.Registry

	// Telemetry: the monitor adopts the session registry and counts
	// cells; instrument the memory tier before it disappears inside the
	// chain, then the slower tiers, then the circuit solver. None of
	// this changes what the campaign computes.
	mon := core.NewMonitor(exp, fmt.Sprintf("attack%d", *attackFlags.Attack))
	if mem, ok := exp.Cache.(*runner.MemoryCache[*core.Result]); ok {
		mem.Instrument(sess.Registry, "cache.network.mem")
	}
	spice.Instrument(sess.Registry)

	// Same tier layout as suite mode and cmd/figures (network/ under
	// -cache-dir, the "network" store tier), so one cache warms every
	// binary — and with -store, every machine.
	cache, disk, store, err := cli.Tiers[*core.Result](sess, exp.Cache, "network")
	if err != nil {
		return err
	}
	exp.Cache = cache

	if *audit {
		held, source, err := heldCells(disk, store)
		if err != nil {
			return err
		}
		a, err := exp.AuditScenario(scn, core.HeldSet(held))
		if err != nil {
			return err
		}
		if *auditJSON != "" {
			w := os.Stdout
			if *auditJSON != "-" {
				f, err := os.Create(*auditJSON)
				if err != nil {
					return err
				}
				defer f.Close()
				w = f
			}
			return a.WriteJSON(w)
		}
		fmt.Printf("audit of %s against %s (%d keys held):\n", a.Name, source, len(held))
		for _, c := range a.Cells {
			status := "MISSING"
			if c.Present {
				status = "present"
			}
			fmt.Printf("  %-8s %s\n", status, c.Desc)
		}
		fmt.Printf("%d/%d cells held; a resume would recompute %d cells\n",
			a.Present, a.Present+a.Missing, a.Missing)
		return nil
	}

	base, err := exp.Baseline()
	if err != nil {
		return err
	}
	pts, err := exp.RunScenario(scn)
	if err != nil {
		return err
	}
	fmt.Printf("baseline accuracy: %.2f%%\n", 100*base)
	for _, p := range pts {
		col := "undefended"
		if p.Defense != "" {
			col = p.Defense
		}
		fmt.Printf("%-28s plan %s\n", col+":", p.Result.Plan.Name)
		for _, f := range p.Result.Plan.Faults {
			fmt.Printf("  %-12v scale %.4f over %.0f%% of the layer\n", f.Layer, f.Scale, 100*f.Fraction)
		}
		fmt.Printf("  accuracy %.2f%%  relative change %+.2f%%  detector: %s\n",
			100*p.Result.Accuracy, p.Result.RelChangePc, verdict(p.Detected))
	}
	// The count the cache chain exists to drive to zero: a repeated
	// invocation against a warm -cache-dir or -store must print 0.
	fmt.Printf("trained networks: %d\n", exp.TrainCount())

	return sess.FinishReport(mon)
}

// heldCells merges the manifests of whichever slow tiers are
// configured — an audit reflects what a resume's chain would find,
// and a resume probes disk and store alike.
func heldCells(disk *runner.DiskCache[*core.Result], store *runner.HTTPCache[*core.Result]) ([]string, string, error) {
	var held []string
	var sources []string
	if disk != nil {
		keys, err := disk.Manifest()
		if err != nil {
			return nil, "", err
		}
		held = append(held, keys...)
		sources = append(sources, disk.Dir())
	}
	if store != nil {
		keys, err := store.Manifest()
		if err != nil {
			return nil, "", err
		}
		held = append(held, keys...)
		sources = append(sources, "the store")
	}
	source := ""
	for i, s := range sources {
		if i > 0 {
			source += " + "
		}
		source += s
	}
	return held, source, nil
}

func verdict(detected bool) string {
	if detected {
		return "ATTACK DETECTED"
	}
	return "silent"
}
