// Command snn-attack runs one of the paper's five power attacks against
// the Diehl&Cook digit classifier and reports accuracy relative to the
// attack-free baseline, with optional defended replays and the
// dummy-neuron detector judging alongside. With -suite it instead
// interprets a declarative suite file (see internal/suite and
// suites/paper.json), so arbitrary attack×defense×axis compositions run
// without recompiling.
//
// Usage:
//
//	snn-attack -attack 3 -change -20 -fraction 100 [-n 1000]
//	snn-attack -attack 5 -vdd 0.8 [-defense bandgap] [-cache-dir DIR]
//	snn-attack -attack 4 -change -20 -defense sizing
//	snn-attack -attack 4 -change -20 -cache-dir DIR -audit
//	snn-attack -suite my-suite.json [-only S1,S2] [-out results]
//	snn-attack -suite my-suite.json -list
//
// Attacks: 1 (driver theta), 2 (excitatory threshold), 3 (inhibitory
// threshold), 4 (both layers), 5 (black-box VDD).
// Defenses: none, robust-driver, bandgap, sizing, comparator.
//
// The attack compiles into a core.Scenario — one coordinate crossed
// with the undefended column and any requested defense — and executes
// on internal/runner's campaign pool: -workers sizes it, -jsonl
// streams every cell as a JSON-lines record, and -cache-dir persists
// trained results so a repeated invocation (same data, same
// configuration) retrains nothing. -audit (with -cache-dir) prints
// which of the scenario's cells the directory already holds and exits
// without training anything.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"snnfi/internal/cli"
	"snnfi/internal/core"
	"snnfi/internal/defense"
	"snnfi/internal/runner"
	"snnfi/internal/snn"
	"snnfi/internal/spice"
	"snnfi/internal/xfer"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "snn-attack:", err)
		os.Exit(1)
	}
}

// run returns instead of exiting so deferred cleanup (flushing the
// JSONL sink) executes on every path.
func run() (retErr error) {
	var (
		attack   = flag.Int("attack", 3, "attack number (1-5)")
		changePc = flag.Float64("change", -20, "parameter change in percent (attacks 1-4)")
		fraction = flag.Float64("fraction", 100, "percent of the layer affected (attacks 2-3)")
		vdd      = flag.Float64("vdd", 0.8, "supply voltage (attack 5)")
		nImages  = flag.Int("n", 1000, "training images")
		dataDir  = flag.String("data", "", "optional real-MNIST directory")
		defName  = flag.String("defense", "none", "defense: none|robust-driver|bandgap|sizing|comparator")
		audit    = flag.Bool("audit", false, "report which cells -cache-dir already holds, without training anything")

		suitePath = flag.String("suite", "", "interpret a declarative suite file instead of building one scenario from the flags")
		only      = flag.String("only", "", "comma-separated suite entry ids (with -suite)")
		list      = flag.Bool("list", false, "print the suite's entries and exit (with -suite)")
		validate  = flag.Bool("validate", false, "check the suite file and exit (with -suite)")
		outDir    = flag.String("out", "", "output directory for suite CSV artifacts (with -suite)")
	)
	shared := cli.AddFlags(cli.Campaign)
	flag.Parse()
	if *audit && shared.CacheDir == "" {
		return fmt.Errorf("-audit needs -cache-dir to inspect")
	}
	if (*only != "" || *list || *validate || *outDir != "") && *suitePath == "" {
		return fmt.Errorf("-only/-list/-validate/-out need -suite")
	}

	sess, err := shared.Start("snn-attack")
	if err != nil {
		return err
	}
	defer sess.CloseInto(&retErr)

	if *suitePath != "" {
		// -n keeps its single-attack default; only an explicit value
		// overrides the suite's own network spec.
		images := 0
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "n" {
				images = *nImages
			}
		})
		return sess.RunSuite(cli.SuiteOptions{
			Path:     *suitePath,
			Only:     *only,
			List:     *list,
			Validate: *validate,
			OutDir:   *outDir,
			DataDir:  *dataDir,
			Images:   images,
		})
	}

	scn := &core.Scenario{Detector: defense.NewDetector(xfer.IAF)}
	switch *attack {
	case 1, 4:
		scn.Attack = core.AttackID(*attack)
		scn.Axes = core.Axes{ChangesPc: []float64{*changePc}}
	case 2, 3:
		scn.Attack = core.AttackID(*attack)
		scn.Axes = core.Axes{ChangesPc: []float64{*changePc}, FractionsPc: []float64{*fraction}}
	case 5:
		scn.Attack = core.Attack5
		scn.Axes = core.Axes{VDDs: []float64{*vdd}, Kind: xfer.IAF}
	default:
		return fmt.Errorf("unknown attack %d (want 1-5)", *attack)
	}

	switch *defName {
	case "none":
	case "robust-driver":
		scn.Defenses = []core.Hardening{defense.RobustDriver{ResidualPc: 0.1}}
	case "bandgap":
		scn.Defenses = []core.Hardening{defense.BandgapThreshold{Kind: xfer.IAF}}
	case "sizing":
		scn.Defenses = []core.Hardening{defense.Sizing{WLMultiple: 32}}
	case "comparator":
		scn.Defenses = []core.Hardening{defense.ComparatorNeuron{}}
	default:
		return fmt.Errorf("unknown defense %q", *defName)
	}

	exp, err := core.NewExperiment(*dataDir, *nImages, snn.DefaultConfig())
	if err != nil {
		return err
	}
	exp.Workers = shared.Workers
	exp.OnProgress = sess.OnProgress()
	exp.Sinks = sess.Sinks()
	exp.Obs = sess.Registry

	// Telemetry: the monitor adopts the session registry and counts
	// cells; instrument the memory tier before it disappears inside
	// Tiered, then the disk tier, then the circuit solver. None of this
	// changes what the campaign computes.
	mon := core.NewMonitor(exp, fmt.Sprintf("attack%d", *attack))
	if mem, ok := exp.Cache.(*runner.MemoryCache[*core.Result]); ok {
		mem.Instrument(sess.Registry, "cache.network.mem")
	}
	spice.Instrument(sess.Registry)

	var disk *runner.DiskCache[*core.Result]
	if shared.CacheDir != "" {
		// Same layout as suite mode and cmd/figures (network/ under the
		// cache dir), so one -cache-dir warms every binary.
		disk, err = cli.Disk[*core.Result](sess, filepath.Join(shared.CacheDir, "network"), "cache.network", "network")
		if err != nil {
			return err
		}
		exp.Cache = runner.NewTiered[*core.Result](exp.Cache, disk)
	}

	if *audit {
		keys, err := disk.Manifest()
		if err != nil {
			return err
		}
		a, err := exp.AuditScenario(scn, core.HeldSet(keys))
		if err != nil {
			return err
		}
		fmt.Printf("audit of %s against %s (%d keys held):\n", a.Name, shared.CacheDir, len(keys))
		for _, c := range a.Cells {
			status := "MISSING"
			if c.Present {
				status = "present"
			}
			fmt.Printf("  %-8s %s\n", status, c.Desc)
		}
		fmt.Printf("%d/%d cells on disk; a resume would recompute %d cells\n",
			a.Present, a.Present+a.Missing, a.Missing)
		return nil
	}

	base, err := exp.Baseline()
	if err != nil {
		return err
	}
	pts, err := exp.RunScenario(scn)
	if err != nil {
		return err
	}
	fmt.Printf("baseline accuracy: %.2f%%\n", 100*base)
	for _, p := range pts {
		col := "undefended"
		if p.Defense != "" {
			col = p.Defense
		}
		fmt.Printf("%-28s plan %s\n", col+":", p.Result.Plan.Name)
		for _, f := range p.Result.Plan.Faults {
			fmt.Printf("  %-12v scale %.4f over %.0f%% of the layer\n", f.Layer, f.Scale, 100*f.Fraction)
		}
		fmt.Printf("  accuracy %.2f%%  relative change %+.2f%%  detector: %s\n",
			100*p.Result.Accuracy, p.Result.RelChangePc, verdict(p.Detected))
	}
	// The count the disk cache exists to drive to zero: a repeated
	// invocation against a warm -cache-dir must print 0.
	fmt.Printf("trained networks: %d\n", exp.TrainCount())

	return sess.FinishReport(mon)
}

func verdict(detected bool) string {
	if detected {
		return "ATTACK DETECTED"
	}
	return "silent"
}
