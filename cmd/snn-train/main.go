// Command snn-train trains the Diehl&Cook network on the digit corpus
// without any fault injection and reports the baseline classification
// accuracy (the reference every attack is measured against; the paper
// reports 75.92% on 1000 training images).
//
// Usage:
//
//	snn-train [-n 1000] [-data DIR] [-neurons 100] [-steps 250] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"snnfi/internal/encoding"
	"snnfi/internal/mnist"
	"snnfi/internal/snn"
)

func main() {
	var (
		nImages = flag.Int("n", 1000, "training images")
		dataDir = flag.String("data", "", "optional real-MNIST directory (IDX files)")
		neurons = flag.Int("neurons", 100, "excitatory/inhibitory neurons per layer")
		steps   = flag.Int("steps", 250, "presentation steps per image (ms)")
		seed    = flag.Int64("seed", 1, "weight-initialization seed")
	)
	flag.Parse()

	images, err := mnist.Load(*dataDir, *nImages, 7)
	if err != nil {
		fatal(err)
	}
	cfg := snn.DefaultConfig()
	cfg.NExc, cfg.NInh = *neurons, *neurons
	cfg.Steps = *steps
	cfg.Seed = *seed

	net, err := snn.NewDiehlCook(cfg)
	if err != nil {
		fatal(err)
	}
	enc := encoding.NewPoissonEncoder(42)
	res, err := snn.Train(net, images, enc)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("images: %d   neurons: %d+%d   steps/image: %d\n",
		len(images), cfg.NExc, cfg.NInh, cfg.Steps)
	fmt.Printf("baseline accuracy: %.2f%%   (paper baseline: 75.92%%)\n", 100*res.Accuracy)
	fmt.Printf("total excitatory spikes: %.0f (%.1f per image)\n",
		res.TotalSpikes, res.TotalSpikes/float64(len(images)))

	var perClass [10]int
	for _, a := range res.Assignments {
		if a >= 0 {
			perClass[a]++
		}
	}
	fmt.Printf("neurons assigned per class: %v\n", perClass)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "snn-train:", err)
	os.Exit(1)
}
