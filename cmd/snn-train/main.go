// Command snn-train trains the Diehl&Cook network on the digit corpus
// without any fault injection and reports the baseline classification
// accuracy (the reference every attack is measured against; the paper
// reports 75.92% on 1000 training images).
//
// Usage:
//
//	snn-train [-n 1000] [-data DIR] [-neurons 100] [-steps 250] [-seed 1]
//	          [-batch 1] [-workers N] [-cache-dir DIR]
//
// The post-training label-assignment pass runs on the intra-cell
// evaluation pool: -workers sizes it (0 = all CPUs) and results are
// bit-identical at every width. -batch > 1 additionally parallelizes
// the learning pass itself with minibatch STDP (deterministic, but a
// different protocol than serial training — see snn.TrainOptions.Batch
// — so the batch width is part of the cache key). -cache-dir persists
// the trained result by content address, so a repeated invocation with
// identical data and configuration trains nothing.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"snnfi/internal/cli"
	"snnfi/internal/encoding"
	"snnfi/internal/mnist"
	"snnfi/internal/runner"
	"snnfi/internal/snn"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "snn-train:", err)
		os.Exit(1)
	}
}

func run() (retErr error) {
	var (
		nImages = flag.Int("n", 1000, "training images")
		dataDir = flag.String("data", "", "optional real-MNIST directory (IDX files)")
		neurons = flag.Int("neurons", 100, "excitatory/inhibitory neurons per layer")
		steps   = flag.Int("steps", 250, "presentation steps per image (ms)")
		seed    = flag.Int64("seed", 1, "weight-initialization seed")
		batch   = flag.Int("batch", 1, "STDP minibatch width (1 = the paper's serial protocol)")
	)
	shared := cli.AddFlags(cli.Training)
	flag.Parse()
	sess, err := shared.Start("snn-train")
	if err != nil {
		return err
	}
	defer sess.CloseInto(&retErr)

	images, err := mnist.Load(*dataDir, *nImages, 7)
	if err != nil {
		return err
	}
	cfg := snn.DefaultConfig()
	cfg.NExc, cfg.NInh = *neurons, *neurons
	cfg.Steps = *steps
	cfg.Seed = *seed

	const encSeed = 42
	var (
		disk *runner.DiskCache[*snn.TrainResult]
		key  string
	)
	if shared.CacheDir != "" {
		disk, err = cli.Disk[*snn.TrainResult](sess, shared.CacheDir, "cache.train", "training")
		if err != nil {
			return err
		}
		// Batch > 1 trains under a different (minibatch) protocol, so it
		// keys separately; 0 and 1 are both the serial path and share an
		// address.
		kb := *batch
		if kb < 1 {
			kb = 1
		}
		key = runner.KeyOf("snn-train", snn.ProtocolVersion, cfg, int64(encSeed), len(images), mnist.Digest(images), kb)
	}

	trained := 0
	res, cached := disk.Get(key)
	if !cached {
		net, err := snn.NewDiehlCook(cfg)
		if err != nil {
			return err
		}
		enc := encoding.NewPoissonEncoder(encSeed)
		// The session's live line treats each learning-pass image as one
		// unit of progress (serial and minibatch STDP both report per
		// image, in order: Index tracks Done, never a hit).
		start := time.Now()
		opt := snn.TrainOptions{Workers: shared.Workers, Batch: *batch}
		opt.OnProgress = func(done, total int) {
			sess.Line.Observe(runner.Progress{
				Done: done, Total: total, Index: done - 1,
				Label: "stdp", Elapsed: time.Since(start),
			})
		}
		res, err = snn.TrainWith(net, images, enc, opt)
		sess.Line.Finish()
		if err != nil {
			return err
		}
		trained = 1
		disk.Put(key, res)
	}

	fmt.Printf("images: %d   neurons: %d+%d   steps/image: %d\n",
		len(images), cfg.NExc, cfg.NInh, cfg.Steps)
	fmt.Printf("baseline accuracy: %.2f%%   (paper baseline: 75.92%%)\n", 100*res.Accuracy)
	fmt.Printf("total excitatory spikes: %.0f (%.1f per image)\n",
		res.TotalSpikes, res.TotalSpikes/float64(len(images)))

	var perClass [10]int
	for _, a := range res.Assignments {
		if a >= 0 {
			perClass[a]++
		}
	}
	fmt.Printf("neurons assigned per class: %v\n", perClass)
	// The count -cache-dir drives to zero on a warm repeat.
	fmt.Printf("trained networks: %d\n", trained)
	return nil
}
