// Package snnfi reproduces "Analysis of Power-Oriented Fault Injection
// Attacks on Spiking Neural Networks" (Nagarajan et al., DATE 2022) in
// pure-stdlib Go: a SPICE-class analog circuit simulator for the
// neuron-level characterization, a Diehl&Cook spiking-network simulator
// for the system-level attack evaluation, the five power attacks, and
// the §V defenses.
//
// The implementation lives under internal/; the supported entry points
// are the commands under cmd/ (figures, snn-train, snn-attack,
// spice-sim) and the runnable examples under examples/. Campaign
// sweeps execute on internal/runner's parallel worker pool with a
// content-addressed result cache and streaming JSONL/CSV sinks;
// results are identical at any worker count. bench_test.go in this
// directory regenerates every figure and table as a testing.B
// benchmark; see DESIGN.md for the experiment index and the runner
// design, and EXPERIMENTS.md for paper-versus-measured numbers.
package snnfi
