// Attack sweep: a white-box campaign over layers × threshold change ×
// fraction-of-layer, the reduced-scale analogue of the paper's Figs.
// 8a/8b. The whole campaign is declared in the embedded suite.json —
// this program only decodes and interprets it, so editing the JSON
// (different attacks, axes, defenses) re-shapes the sweep with zero Go
// changes. Entries without an output spec print their tables instead of
// writing CSV artifacts.
//
// Run with: go run ./examples/attack-sweep
package main

import (
	_ "embed"
	"log"
	"runtime"
	"strings"

	"snnfi/internal/suite"
)

//go:embed suite.json
var suiteJSON string

func main() {
	su, err := suite.Decode(strings.NewReader(suiteJSON))
	if err != nil {
		log.Fatal(err)
	}
	r := &suite.Runner{Suite: su, Name: "attack-sweep", Workers: runtime.GOMAXPROCS(0)}
	if err := r.Run(nil); err != nil {
		log.Fatal(err)
	}
}
