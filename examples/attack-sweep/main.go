// Attack sweep: a white-box campaign over layers × threshold change ×
// fraction-of-layer, the reduced-scale analogue of the paper's Figs.
// 8a/8b. Shows the asymmetry between excitatory- and inhibitory-layer
// vulnerability and the dilution effect of partial-layer glitches.
//
// The grids execute on internal/runner's worker pool, one worker per
// CPU: each cell trains an independent network, so the sweep scales
// with cores while the printed results stay identical to serial.
//
// Run with: go run ./examples/attack-sweep
package main

import (
	"fmt"
	"log"
	"runtime"

	"snnfi/internal/core"
	"snnfi/internal/snn"
)

func main() {
	cfg := snn.DefaultConfig()
	cfg.NExc, cfg.NInh = 40, 40
	cfg.Steps = 150

	exp, err := core.NewExperiment("", 300, cfg)
	if err != nil {
		log.Fatal(err)
	}
	exp.Workers = runtime.GOMAXPROCS(0)
	base, err := exp.Baseline()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline: %.1f%%\n\n", 100*base)

	changes := []float64{-20, 20}
	fractions := []float64{50, 100}
	for _, layer := range []core.Layer{core.Excitatory, core.Inhibitory} {
		fmt.Printf("--- %v layer ---\n", layer)
		pts, err := exp.LayerGrid(layer, changes, fractions)
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range pts {
			fmt.Printf("  Δthr %+3.0f%%, %3.0f%% of layer: accuracy %.1f%% (%+.1f%%)\n",
				p.ScalePc, p.FractionPc, 100*p.Result.Accuracy, p.Result.RelChangePc)
		}
		if worst, ok := core.WorstCase(pts); ok {
			fmt.Printf("  worst: %+.1f%% at Δthr %+0.f%%, fraction %.0f%%\n\n",
				worst.Result.RelChangePc, worst.ScalePc, worst.FractionPc)
		}
	}
}
