// Quickstart: train a small Diehl&Cook digit classifier, hit its
// inhibitory layer with the paper's worst-case power fault (Attack 3,
// −20% threshold), and compare accuracies.
//
// Run with: go run ./examples/quickstart [-workers N] [-cache-dir DIR]
//
// -workers sizes both the campaign pool and each cell's intra-cell
// evaluation pass (0 = all CPUs; results are identical at every
// width); -cache-dir persists the two trained cells so a repeated run
// trains nothing.
package main

import (
	"flag"
	"fmt"
	"log"

	"snnfi/internal/core"
	"snnfi/internal/runner"
	"snnfi/internal/snn"
)

func main() {
	var (
		workers  = flag.Int("workers", 0, "worker-pool size (0 = all CPUs)")
		cacheDir = flag.String("cache-dir", "", "optional directory persisting trained results across runs")
	)
	flag.Parse()

	// A reduced configuration so the example finishes in seconds: 300
	// images, 40+40 neurons, 150 ms presentations. cmd/figures runs the
	// full paper-scale campaign.
	cfg := snn.DefaultConfig()
	cfg.NExc, cfg.NInh = 40, 40
	cfg.Steps = 150

	exp, err := core.NewExperiment("", 300, cfg)
	if err != nil {
		log.Fatal(err)
	}
	exp.Workers = *workers
	var disk *runner.DiskCache[*core.Result]
	if *cacheDir != "" {
		disk, err = runner.NewDiskCache[*core.Result](*cacheDir)
		if err != nil {
			log.Fatal(err)
		}
		exp.Cache = runner.NewTiered[*core.Result](exp.Cache, disk)
	}

	base, err := exp.Baseline()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attack-free baseline: %.1f%% accuracy\n", 100*base)

	// Attack 3: laser-induced local VDD drop lowers every inhibitory
	// neuron's membrane threshold voltage by 20% (the paper's worst
	// case, Fig. 8b).
	plan := core.NewAttack3(0.8, 1.0, 1)
	res, err := exp.Run(plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("under %s: %.1f%% accuracy (%+.1f%% vs baseline)\n",
		plan.Name, 100*res.Accuracy, res.RelChangePc)
	fmt.Println("the inhibitory layer is the soft spot: losing winner-take-all")
	fmt.Println("competition destroys STDP specialization, exactly as the paper reports.")
	fmt.Printf("trained networks: %d\n", exp.TrainCount())
	if disk != nil {
		if err := disk.Err(); err != nil {
			log.Fatal(err)
		}
	}
}
