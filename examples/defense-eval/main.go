// Defense evaluation: replay the worst-case black-box attack (Attack 5
// at VDD = 0.8 V) against the undefended network and against each of
// the paper's §V countermeasures, and print the recovered accuracy next
// to the defense's power/area overhead.
//
// Run with: go run ./examples/defense-eval
package main

import (
	"fmt"
	"log"

	"snnfi/internal/core"
	"snnfi/internal/defense"
	"snnfi/internal/power"
	"snnfi/internal/snn"
	"snnfi/internal/xfer"
)

func main() {
	cfg := snn.DefaultConfig()
	cfg.NExc, cfg.NInh = 40, 40
	cfg.Steps = 150

	exp, err := core.NewExperiment("", 300, cfg)
	if err != nil {
		log.Fatal(err)
	}
	base, err := exp.Baseline()
	if err != nil {
		log.Fatal(err)
	}

	attack := core.NewAttack5(0.8, xfer.IAF)
	undefended, err := exp.Run(attack)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline: %.1f%%   under black-box VDD=0.8 attack: %.1f%% (%+.1f%%)\n\n",
		100*base, 100*undefended.Accuracy, undefended.RelChangePc)

	defenses := []defense.Defense{
		defense.RobustDriver{ResidualPc: 0.1},
		defense.BandgapThreshold{Kind: xfer.IAF},
		defense.Sizing{WLMultiple: 32},
		defense.ComparatorNeuron{},
	}
	for _, d := range defenses {
		res, err := exp.Run(d.Harden(attack))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s accuracy %.1f%% (%+.1f%%)\n", d.Name(), 100*res.Accuracy, res.RelChangePc)
	}

	fmt.Println("\noverheads (200-neuron system, 100 per layer):")
	for _, row := range power.OverheadTable(200, 100) {
		fmt.Println("  ", row)
	}

	fmt.Println("\ndummy-neuron detector response (Fig. 10c):")
	det := defense.NewDetector(xfer.AxonHillock)
	for _, v := range det.DetectionSweep([]float64{0.85, 0.95, 1.0, 1.05, 1.15}) {
		fmt.Println("  ", v)
	}
}
