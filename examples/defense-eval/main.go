// Defense evaluation: replay the worst-case black-box attack (Attack 5
// at VDD = 0.8 V) against the undefended network and against each of
// the paper's §V countermeasures, next to the defenses' power/area
// overheads and the dummy-neuron detector's response curve.
//
// The whole matrix is the embedded suite.json — one scenario entry
// (the attack coordinate crossed with the defense columns, the
// detector judging alongside) plus an overhead and a detection entry —
// and this program only interprets it. All five attack configurations
// (undefended + four defenses) share one worker-pool run and one
// trained baseline.
//
// Run with: go run ./examples/defense-eval
package main

import (
	_ "embed"
	"log"
	"runtime"
	"strings"

	"snnfi/internal/suite"
)

//go:embed suite.json
var suiteJSON string

func main() {
	su, err := suite.Decode(strings.NewReader(suiteJSON))
	if err != nil {
		log.Fatal(err)
	}
	r := &suite.Runner{Suite: su, Name: "defense-eval", Workers: runtime.GOMAXPROCS(0)}
	if err := r.Run(nil); err != nil {
		log.Fatal(err)
	}
}
