// Defense evaluation: replay the worst-case black-box attack (Attack 5
// at VDD = 0.8 V) against the undefended network and against each of
// the paper's §V countermeasures, and print the recovered accuracy next
// to the defense's power/area overhead.
//
// The whole matrix is one declarative core.Scenario — the attack
// coordinate crossed with the defense columns, the dummy-neuron
// detector judging alongside — so all five configurations (undefended
// + four defenses) share one worker-pool run and one trained baseline.
//
// Run with: go run ./examples/defense-eval
package main

import (
	"fmt"
	"log"
	"runtime"

	"snnfi/internal/core"
	"snnfi/internal/defense"
	"snnfi/internal/power"
	"snnfi/internal/snn"
	"snnfi/internal/xfer"
)

func main() {
	cfg := snn.DefaultConfig()
	cfg.NExc, cfg.NInh = 40, 40
	cfg.Steps = 150

	exp, err := core.NewExperiment("", 300, cfg)
	if err != nil {
		log.Fatal(err)
	}
	exp.Workers = runtime.GOMAXPROCS(0)
	base, err := exp.Baseline()
	if err != nil {
		log.Fatal(err)
	}

	pts, err := exp.RunScenario(&core.Scenario{
		Name:   "defense-eval",
		Attack: core.Attack5,
		Axes:   core.Axes{VDDs: []float64{0.8}, Kind: xfer.IAF},
		Defenses: []core.Hardening{
			defense.RobustDriver{ResidualPc: 0.1},
			defense.BandgapThreshold{Kind: xfer.IAF},
			defense.Sizing{WLMultiple: 32},
			defense.ComparatorNeuron{},
		},
		Detector: defense.NewDetector(xfer.IAF),
	})
	if err != nil {
		log.Fatal(err)
	}
	undefended := pts[0].Result
	fmt.Printf("baseline: %.1f%%   under black-box VDD=0.8 attack: %.1f%% (%+.1f%%, detector fired: %v)\n\n",
		100*base, 100*undefended.Accuracy, undefended.RelChangePc, pts[0].Detected)
	for _, p := range pts[1:] {
		fmt.Printf("%-28s accuracy %.1f%% (%+.1f%%)\n", p.Defense, 100*p.Result.Accuracy, p.Result.RelChangePc)
	}

	fmt.Println("\noverheads (200-neuron system, 100 per layer):")
	for _, row := range power.OverheadTable(200, 100) {
		fmt.Println("  ", row)
	}

	fmt.Println("\ndummy-neuron detector response (Fig. 10c):")
	det := defense.NewDetector(xfer.AxonHillock)
	for _, v := range det.DetectionSweep([]float64{0.85, 0.95, 1.0, 1.05, 1.15}) {
		fmt.Println("  ", v)
	}
}
