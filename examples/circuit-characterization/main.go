// Circuit characterization: drive the SPICE substrate directly —
// simulate both analog neuron circuits and extract the transfer curves
// the attacks exploit (threshold vs VDD, time-to-spike vs VDD, driver
// amplitude vs VDD), the circuit-level half of the paper (Figs. 3–6).
//
// Run with: go run ./examples/circuit-characterization
package main

import (
	"fmt"
	"log"

	"snnfi/internal/neuron"
	"snnfi/internal/spice"
)

func main() {
	// Transient of the Axon Hillock neuron: membrane sawtooth + output
	// spikes (Fig. 3).
	ah := neuron.NewAxonHillock()
	res, err := ah.Simulate(20e-6, 10e-9)
	if err != nil {
		log.Fatal(err)
	}
	spikes := spice.SpikeCount(res.Time, res.V("vout"), 0.5)
	tts, err := spice.FirstCrossing(res.Time, res.V("vout"), 0.5, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Axon Hillock: first spike at %.2f µs, %d spikes in 20 µs\n", tts*1e6, spikes)

	// Threshold vs supply (Fig. 6a) — the attack surface.
	vdds := []float64{0.8, 0.9, 1.0, 1.1, 1.2}
	thr, err := neuron.AHThresholdVsVDD(vdds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nAH membrane threshold vs VDD (paper: −17.91% … +16.76%):")
	for _, p := range thr {
		fmt.Printf("  VDD %.2f → %.4f V (%+.2f%%)\n", p.X, p.Y, neuron.PercentChange(p.Y, thr[2].Y))
	}

	// Driver amplitude vs supply (Fig. 5b).
	amps, err := neuron.DriverAmplitudeVsVDD(vdds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndriver spike amplitude vs VDD (paper: −32% … +32%):")
	for _, p := range amps {
		fmt.Printf("  VDD %.2f → %.1f nA (%+.1f%%)\n", p.X, p.Y*1e9, neuron.PercentChange(p.Y, amps[2].Y))
	}

	// I&F time-to-spike vs supply (Fig. 6c).
	tt, err := neuron.IAFTimeToSpikeVsVDD([]float64{0.8, 1.0, 1.2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nI&F time-to-spike vs VDD (paper: −17.05% … +23.53%):")
	for _, p := range tt {
		fmt.Printf("  VDD %.2f → %.2f µs (%+.1f%%)\n", p.X, p.Y*1e6, neuron.PercentChange(p.Y, tt[1].Y))
	}
}
