module snnfi

go 1.24
