#!/usr/bin/env bash
# bench.sh — run the tier benchmarks and emit a machine-readable bench
# record (BENCH_PR5.json by default). The checked-in copy pins the
# numbers measured when the intra-cell engine landed; CI regenerates
# the file on every push and uploads it as an artifact, so the bench
# trajectory is recorded per-commit without gating merges on timing.
#
# Usage: scripts/bench.sh [OUT.json]
#   BENCHTIME=1s    override -benchtime (default 2x: cheap but real)
#   BENCH_PATTERN=… override the bench selection regexp
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR5.json}"
benchtime="${BENCHTIME:-2x}"
pattern="${BENCH_PATTERN:-BenchmarkEvaluate|BenchmarkCountsParallel|BenchmarkStep_|BenchmarkTrainImageStream|BenchmarkEncode_|BenchmarkSpiceTransientStep|BenchmarkCharacterize_AHThresholdVsVDD}"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT
go test -run='^$' -bench="$pattern" -benchtime="$benchtime" . | tee "$raw" >&2

{
  printf '{\n'
  printf '  "suite": "snnfi tier benches",\n'
  printf '  "go": "%s",\n' "$(go env GOVERSION)"
  printf '  "cpus": %s,\n' "$(nproc)"
  printf '  "benchtime": "%s",\n' "$benchtime"
  printf '  "benches": [\n'
  awk '
    /^Benchmark/ {
      entry = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", $1, $2, $3)
      for (i = 5; i + 1 <= NF; i += 2)
        entry = entry sprintf(", \"%s\": %s", $(i + 1), $i)
      entry = entry "}"
      if (n++) printf(",\n")
      printf("%s", entry)
    }
    END { printf("\n") }
  ' "$raw"
  printf '  ]\n'
  printf '}\n'
} > "$out"
echo "wrote $out" >&2
