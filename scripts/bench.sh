#!/usr/bin/env bash
# bench.sh — run the tier benchmarks and emit a machine-readable bench
# record. The checked-in copy (BENCH_PR10.json) pins the numbers
# measured when the campaign fabric landed; CI regenerates the file on
# every push and uploads it as an artifact, so the bench trajectory is
# recorded per-commit without gating merges on timing.
#
# Besides the micro-benches, the record embeds the full campaign report
# (phase histograms, cache counters, utilization) of one quickstart
# campaign — the defended attack-4 cell the cache-smoke job runs — and
# a "fabric" section timing one full-scale campaign cold through a
# shared cached store as one process vs two snn-worker shards (each
# -workers 2), plus the warm-merge GET latency p50/p95 from the
# cache.http.rt histogram. The speedup is only meaningful with >=4
# CPUs (the fabric-smoke CI job gates it at 1.7x on such a runner);
# the record keeps whatever this machine measured, alongside "cpus".
#
# Usage: scripts/bench.sh OUT.json
#   BENCHTIME=1s      override -benchtime (default 2x: cheap but real)
#   BENCH_PATTERN=…   override the bench selection regexp
#   SKIP_CAMPAIGN=1   skip the quickstart campaign report
#   SKIP_FABRIC=1     skip the one-vs-two-process fabric timing
set -euo pipefail
cd "$(dirname "$0")/.."

# The output name comes from the argument alone — each PR's record is
# named explicitly at the call site, so a stale default can't silently
# overwrite an older pinned record.
if [ $# -lt 1 ]; then
  echo "usage: scripts/bench.sh OUT.json" >&2
  exit 2
fi
out="$1"
benchtime="${BENCHTIME:-2x}"
pattern="${BENCH_PATTERN:-BenchmarkEvaluate|BenchmarkCountsParallel|BenchmarkStep_|BenchmarkTrainImage|BenchmarkTrainMinibatch|BenchmarkEncode_|BenchmarkSpiceTransientStep|BenchmarkCharacterize_AHThresholdVsVDD|BenchmarkMonteCarloThreshold}"

raw="$(mktemp)"
work="$(mktemp -d)"
trap 'kill $(jobs -p) 2>/dev/null || true; rm -f "$raw"; rm -rf "$work"' EXIT
go test -run='^$' -bench="$pattern" -benchtime="$benchtime" . | tee "$raw" >&2

if [ "${SKIP_CAMPAIGN:-0}" != "1" ] || [ "${SKIP_FABRIC:-0}" != "1" ]; then
  go build -o "$work/snn-attack" ./cmd/snn-attack
fi
if [ "${SKIP_CAMPAIGN:-0}" != "1" ]; then
  "$work/snn-attack" -attack 4 -change -20 -n 60 -defense sizing \
    -quiet -report "$work/report.json" >/dev/null
fi

if [ "${SKIP_FABRIC:-0}" != "1" ]; then
  go build -o "$work/snn-worker" ./cmd/snn-worker
  go build -o "$work/cached" ./cmd/cached
  fabric_args=(-attack 3
    -change -20,-17.5,-15,-12.5,-10,-7.5,-5,-2.5,2.5,5,7.5,10,12.5,15
    -n 1000 -defense sizing)

  # One process through its own cold store.
  "$work/cached" -dir "$work/ref-store" -addr-file "$work/ref.addr" -quiet &
  ref_pid=$!
  until [ -s "$work/ref.addr" ]; do sleep 0.1; done
  t0=$(date +%s%N)
  "$work/snn-attack" "${fabric_args[@]}" -store "http://$(cat "$work/ref.addr")" \
    -workers 2 -quiet >/dev/null
  t1=$(date +%s%N)
  one_ns=$((t1 - t0))
  kill "$ref_pid" 2>/dev/null || true

  # Two shard workers over a second cold store, then the coordinator
  # merge — whose report carries the warm GET latency histogram.
  "$work/cached" -dir "$work/fab-store" -addr-file "$work/fab.addr" -quiet &
  fab_pid=$!
  until [ -s "$work/fab.addr" ]; do sleep 0.1; done
  store="http://$(cat "$work/fab.addr")"
  t0=$(date +%s%N)
  "$work/snn-worker" "${fabric_args[@]}" -store "$store" -shards 2 -shard 0 \
    -workers 2 -quiet >/dev/null &
  w0=$!
  "$work/snn-worker" "${fabric_args[@]}" -store "$store" -shards 2 -shard 1 \
    -workers 2 -baseline-wait 0 -quiet >/dev/null 2>&1 &
  w1=$!
  wait "$w0" "$w1"
  "$work/snn-attack" "${fabric_args[@]}" -store "$store" -workers 2 \
    -quiet -report "$work/fabric-warm.json" >/dev/null
  t1=$(date +%s%N)
  two_ns=$((t1 - t0))
  kill "$fab_pid" 2>/dev/null || true

  fabric_json=$(python3 - "$one_ns" "$two_ns" "$work/fabric-warm.json" <<'EOF'
import json, sys
one, two = int(sys.argv[1]) / 1e9, int(sys.argv[2]) / 1e9
rt = json.load(open(sys.argv[3]))["telemetry"]["histograms"]["cache.http.rt"]
print(json.dumps({
    "scenario": "attack-3 sizing, 28 cells + baseline, n=1000",
    "cold_one_process_s": round(one, 3),
    "cold_two_process_s": round(two, 3),
    "speedup": round(one / two, 2),
    "warm_get_p50_ms": rt["p50_ms"],
    "warm_get_p95_ms": rt["p95_ms"],
    "warm_get_count": rt["count"],
}))
EOF
  )
  echo "fabric: $fabric_json" >&2
fi

{
  printf '{\n'
  printf '  "suite": "snnfi tier benches",\n'
  printf '  "go": "%s",\n' "$(go env GOVERSION)"
  printf '  "cpus": %s,\n' "$(nproc)"
  printf '  "benchtime": "%s",\n' "$benchtime"
  printf '  "benches": [\n'
  awk '
    /^Benchmark/ {
      entry = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", $1, $2, $3)
      for (i = 5; i + 1 <= NF; i += 2)
        entry = entry sprintf(", \"%s\": %s", $(i + 1), $i)
      entry = entry "}"
      if (n++) printf(",\n")
      printf("%s", entry)
    }
    END { printf("\n") }
  ' "$raw"
  printf '  ]'
  if [ -n "${fabric_json:-}" ]; then
    printf ',\n  "fabric": %s' "$fabric_json"
  fi
  if [ -f "$work/report.json" ]; then
    printf ',\n  "campaign_report": '
    cat "$work/report.json"
  else
    printf '\n'
  fi
  printf '}\n'
} > "$out"
echo "wrote $out" >&2
