#!/usr/bin/env bash
# bench.sh — run the tier benchmarks and emit a machine-readable bench
# record. The checked-in copy (BENCH_PR9.json) pins the numbers
# measured when the Monte-Carlo process-variation engine landed; CI
# regenerates the file on every push and uploads it as an artifact, so
# the bench trajectory is recorded per-commit without gating merges on
# timing.
#
# Besides the micro-benches, the record embeds the full campaign report
# (phase histograms, cache counters, utilization) of one quickstart
# campaign — the defended attack-4 cell the cache-smoke job runs — so
# every bench artifact also carries real end-to-end phase timings.
#
# Usage: scripts/bench.sh OUT.json
#   BENCHTIME=1s      override -benchtime (default 2x: cheap but real)
#   BENCH_PATTERN=…   override the bench selection regexp
#   SKIP_CAMPAIGN=1   skip the quickstart campaign report
set -euo pipefail
cd "$(dirname "$0")/.."

# The output name comes from the argument alone — each PR's record is
# named explicitly at the call site, so a stale default can't silently
# overwrite an older pinned record.
if [ $# -lt 1 ]; then
  echo "usage: scripts/bench.sh OUT.json" >&2
  exit 2
fi
out="$1"
benchtime="${BENCHTIME:-2x}"
pattern="${BENCH_PATTERN:-BenchmarkEvaluate|BenchmarkCountsParallel|BenchmarkStep_|BenchmarkTrainImage|BenchmarkTrainMinibatch|BenchmarkEncode_|BenchmarkSpiceTransientStep|BenchmarkCharacterize_AHThresholdVsVDD|BenchmarkMonteCarloThreshold}"

raw="$(mktemp)"
work="$(mktemp -d)"
trap 'rm -f "$raw"; rm -rf "$work"' EXIT
go test -run='^$' -bench="$pattern" -benchtime="$benchtime" . | tee "$raw" >&2

if [ "${SKIP_CAMPAIGN:-0}" != "1" ]; then
  go build -o "$work/snn-attack" ./cmd/snn-attack
  "$work/snn-attack" -attack 4 -change -20 -n 60 -defense sizing \
    -quiet -report "$work/report.json" >/dev/null
fi

{
  printf '{\n'
  printf '  "suite": "snnfi tier benches",\n'
  printf '  "go": "%s",\n' "$(go env GOVERSION)"
  printf '  "cpus": %s,\n' "$(nproc)"
  printf '  "benchtime": "%s",\n' "$benchtime"
  printf '  "benches": [\n'
  awk '
    /^Benchmark/ {
      entry = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", $1, $2, $3)
      for (i = 5; i + 1 <= NF; i += 2)
        entry = entry sprintf(", \"%s\": %s", $(i + 1), $i)
      entry = entry "}"
      if (n++) printf(",\n")
      printf("%s", entry)
    }
    END { printf("\n") }
  ' "$raw"
  printf '  ]'
  if [ -f "$work/report.json" ]; then
    printf ',\n  "campaign_report": '
    cat "$work/report.json"
  else
    printf '\n'
  fi
  printf '}\n'
} > "$out"
echo "wrote $out" >&2
