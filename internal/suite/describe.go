package suite

import (
	"fmt"
	"io"
)

// Describe renders the suite's table of contents — one line per entry
// with its kind and artifact — the -list view.
func (s *Suite) Describe(w io.Writer) {
	fmt.Fprintf(w, "%s — %d entries\n", s.Name, len(s.Entries))
	if s.Description != "" {
		fmt.Fprintln(w, s.Description)
	}
	if n := s.Network; n != nil {
		fmt.Fprintf(w, "network: %d images, %d neurons/layer, %d steps/image\n", n.Images, n.Neurons, n.Steps)
	}
	for i := range s.Entries {
		e := &s.Entries[i]
		line := fmt.Sprintf("  %-6s %-12s", e.ID, e.Kind())
		if e.Title != "" {
			line += " " + e.Title
		}
		if e.Output != nil {
			line += fmt.Sprintf("  → %s", e.Output.CSV)
		}
		fmt.Fprintln(w, line)
	}
}
