package suite

import (
	"strings"
	"testing"

	"snnfi/internal/core"
)

// TestAuditCells: the suite-level audit enumerates exactly the network
// cells the scenario entries would compute — the shared baseline once
// and first, then entry order — attributes them correctly, dedups
// cells shared across entries, and agrees with core.ScenarioKeys on
// every content address. Nothing trains.
func TestAuditCells(t *testing.T) {
	doc := `{
	  "name": "audit",
	  "network": {"images": 8, "neurons": 16, "steps": 40},
	  "entries": [
	    {"id": "C1", "circuit": [{"recipe": "iaf-threshold-vs-vdd", "xs": [1.0]}]},
	    {"id": "S1", "scenario": {"attack": 3, "changes_pc": [-20, 10]}},
	    {"id": "S2", "scenario": {"attack": 3, "changes_pc": [10, 20]}}
	  ]
	}`
	su, err := Decode(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Suite: su}

	cells, err := r.AuditCells(func(string) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	// baseline + S1{-20,10} + S2{20}: S2's +10% cell is S1's, deduped.
	if len(cells) != 4 {
		t.Fatalf("audit listed %d cells, want 4: %+v", len(cells), cells)
	}
	if cells[0].Entry != "" || cells[0].Desc != "baseline (attack-free)" {
		t.Fatalf("cells[0] = %+v, want the shared baseline with no entry", cells[0])
	}
	wantEntries := []string{"", "S1", "S1", "S2"}
	for i, c := range cells {
		if c.Entry != wantEntries[i] {
			t.Fatalf("cells[%d] attributed to %q, want %q", i, c.Entry, wantEntries[i])
		}
		if c.Present {
			t.Fatalf("cells[%d] present against an empty manifest", i)
		}
	}

	// Every key must be the canonical content address the campaign
	// would probe the cache with.
	cfg, images := r.Config()
	e, err := core.NewExperiment("", images, cfg)
	if err != nil {
		t.Fatal(err)
	}
	scn, err := su.Entries[1].Scenario.Compile()
	if err != nil {
		t.Fatal(err)
	}
	keys, err := e.ScenarioKeys(scn)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if cells[1+i].Key != k {
			t.Fatalf("cell key %d disagrees with ScenarioKeys", i)
		}
	}

	// A held set flips standings without reordering.
	warm, err := r.AuditCells(core.HeldSet([]string{cells[0].Key, cells[2].Key}))
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range warm {
		want := i == 0 || i == 2
		if c.Present != want || c.Key != cells[i].Key {
			t.Fatalf("warm cells[%d] = %+v, want present=%v, same key", i, c, want)
		}
	}
}
