package suite

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"snnfi/internal/core"
	"snnfi/internal/defense"
	"snnfi/internal/neuron"
	"snnfi/internal/obs"
	"snnfi/internal/power"
	"snnfi/internal/runner"
	"snnfi/internal/snn"
	"snnfi/internal/spice"
	"snnfi/internal/xfer"
)

// Runner interprets a suite: entries run in order, each printing its
// results and (with an output spec) writing a CSV artifact whose bytes
// are identical at any worker count.
type Runner struct {
	Suite *Suite
	// Name labels the campaign report ("figures", "snn-attack").
	Name string
	// OutDir receives CSV artifacts; required only when an entry has an
	// output spec.
	OutDir string
	// Stdout receives the printed tables (defaults to os.Stdout).
	Stdout io.Writer
	// DataDir optionally points at a real-MNIST directory.
	DataDir string
	// Images/Neurons/Steps override the suite's network spec when >0
	// (the CLI's reduced-scale knobs).
	Images  int
	Neurons int
	Steps   int
	// Workers sizes the worker pools (0 = all CPUs).
	Workers int
	// Char runs the circuit-tier sweeps; a fresh Characterizer is built
	// on first use when nil. Callers wire its cache/progress/sinks.
	Char *neuron.Characterizer
	// OnProgress/Sinks/Obs wire the network experiment like the
	// circuit tier: one progress stream, one record stream, one
	// telemetry registry across the whole suite.
	OnProgress func(runner.Progress)
	Sinks      []runner.Sink
	Obs        *obs.Registry
	// OnExperiment, when non-nil, runs once after the shared experiment
	// is built and before anything trains — the hook where commands
	// compose a disk cache tier under it.
	OnExperiment func(*core.Experiment) error

	exp *core.Experiment
	mon *core.Monitor
}

// Monitor returns the campaign monitor, nil until a network entry ran.
func (r *Runner) Monitor() *core.Monitor { return r.mon }

// Config resolves the network configuration the suite's scenario
// entries train: the suite's network spec over snn.DefaultConfig, then
// the runner's explicit overrides.
func (r *Runner) Config() (snn.DiehlCookConfig, int) {
	cfg := snn.DefaultConfig()
	images := 1000
	if n := r.Suite.Network; n != nil {
		if n.Images > 0 {
			images = n.Images
		}
		if n.Neurons > 0 {
			cfg.NExc, cfg.NInh = n.Neurons, n.Neurons
		}
		if n.Steps > 0 {
			cfg.Steps = n.Steps
		}
	}
	if r.Images > 0 {
		images = r.Images
	}
	if r.Neurons > 0 {
		cfg.NExc, cfg.NInh = r.Neurons, r.Neurons
	}
	if r.Steps > 0 {
		cfg.Steps = r.Steps
	}
	return cfg, images
}

func (r *Runner) stdout() io.Writer {
	if r.Stdout != nil {
		return r.Stdout
	}
	return os.Stdout
}

func (r *Runner) char() *neuron.Characterizer {
	if r.Char == nil {
		r.Char = neuron.NewCharacterizer()
		r.Char.Workers = r.Workers
		r.Char.OnProgress = r.OnProgress
		r.Char.Sinks = r.Sinks
		r.Char.Obs = r.Obs
	}
	return r.Char
}

// Experiment lazily builds the shared network experiment: circuit-only
// suites never load the corpus or train anything.
func (r *Runner) Experiment() (*core.Experiment, error) {
	if r.exp != nil {
		return r.exp, nil
	}
	cfg, images := r.Config()
	e, err := core.NewExperiment(r.DataDir, images, cfg)
	if err != nil {
		return nil, err
	}
	e.Workers = r.Workers
	e.OnProgress = r.OnProgress
	e.Sinks = r.Sinks
	e.Obs = r.Obs
	name := r.Name
	if name == "" {
		name = r.Suite.Name
	}
	r.mon = core.NewMonitor(e, name)
	if mem, ok := e.Cache.(*runner.MemoryCache[*core.Result]); ok {
		mem.Instrument(r.mon.Registry(), "cache.network.mem")
	}
	if r.OnExperiment != nil {
		if err := r.OnExperiment(e); err != nil {
			return nil, err
		}
	}
	base, err := e.Baseline()
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(r.stdout(), "attack-free baseline accuracy: %.2f%% (%d images)\n", 100*base, images)
	r.exp = e
	return e, nil
}

// Run interprets the suite. only, when non-empty, restricts execution
// to the listed entry IDs (which must all exist). After the last entry
// the trained-network count is printed — the number a warm disk cache
// drives to zero.
func (r *Runner) Run(only []string) error {
	if err := r.Suite.Validate(); err != nil {
		return err
	}
	want := map[string]bool{}
	for _, id := range only {
		found := false
		for i := range r.Suite.Entries {
			if r.Suite.Entries[i].ID == id {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("suite: unknown entry id %q", id)
		}
		want[id] = true
	}
	for i := range r.Suite.Entries {
		e := &r.Suite.Entries[i]
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		fmt.Fprintf(r.stdout(), "\n===== %s =====\n", e.ID)
		if e.Title != "" {
			fmt.Fprintln(r.stdout(), e.Title)
		}
		if e.Note != "" {
			fmt.Fprintln(r.stdout(), e.Note)
		}
		if err := r.runEntry(e); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	if r.exp != nil {
		// The count the disk cache exists to drive to zero: a repeated
		// run against a warm -cache-dir must print 0.
		fmt.Fprintf(r.stdout(), "\ntrained networks: %d\n", r.exp.TrainCount())
	}
	return nil
}

func (r *Runner) runEntry(e *Entry) error {
	switch {
	case e.Waveform != nil:
		return r.runWaveform(e)
	case len(e.Circuit) > 0:
		if err := r.runCircuit(e); err != nil {
			return err
		}
		if e.Scenario != nil {
			// The combined form: the circuit series owned the output;
			// the scenario replay is print-only.
			return r.runScenario(e.Scenario, nil)
		}
		return nil
	case e.Scenario != nil:
		return r.runScenario(e.Scenario, e.Output)
	case e.MonteCarlo != nil:
		return r.runMonteCarlo(e)
	case len(e.WeightFaults) > 0:
		return r.runWeightFaults(e)
	case len(e.LearningRateFaults) > 0:
		return r.runLearningRateFaults(e)
	case e.Detection != nil:
		return r.runDetection(e)
	case e.Coverage != nil:
		return r.runCoverage(e)
	case e.Overhead != nil:
		return r.runOverhead(e)
	}
	return fmt.Errorf("empty entry")
}

// writeOut writes an entry's artifact under its own CSV name; entries
// without an output spec are print-only.
func (r *Runner) writeOut(out *OutputSpec, rows [][]float64) error {
	if out == nil {
		return nil
	}
	return r.csv(out, out.CSV, rows)
}

// csv writes one artifact in the repo's established layout: the header
// line, then %g-formatted comma-joined rows — the float-value identity
// that makes byte identity checkable.
func (r *Runner) csv(out *OutputSpec, name string, rows [][]float64) error {
	if out == nil {
		return nil
	}
	if r.OutDir == "" {
		return fmt.Errorf("entry writes %s but the runner has no output directory", name)
	}
	f, err := os.Create(filepath.Join(r.OutDir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, out.Header)
	for _, row := range rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = fmt.Sprintf("%g", v)
		}
		fmt.Fprintln(f, strings.Join(parts, ","))
	}
	return nil
}

// table prints the rows as a plain text table under the CSV header (or
// nothing when the entry has no output spec and rows were shown some
// other way).
func (r *Runner) table(header string, rows [][]float64) {
	w := r.stdout()
	fmt.Fprintln(w, header)
	for _, row := range rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = fmt.Sprintf("%g", v)
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
}

func (r *Runner) runWaveform(e *Entry) error {
	w := e.Waveform
	kind, err := xfer.KindByName(w.Neuron)
	if err != nil {
		return err
	}
	var (
		res *spice.TranResult
		vdd float64
	)
	if kind == xfer.IAF {
		n := neuron.NewIAF()
		vdd = n.VDD
		res, err = n.Simulate(w.StopS, w.StepS)
	} else {
		n := neuron.NewAxonHillock()
		vdd = n.VDD
		res, err = n.Simulate(w.StopS, w.StepS)
	}
	if err != nil {
		return err
	}
	signals := make([][]float64, len(w.Signals))
	for i, name := range w.Signals {
		signals[i] = res.V(name)
		if signals[i] == nil {
			return fmt.Errorf("waveform has no signal %q", name)
		}
	}
	if s := w.Summary; s != nil {
		if err := r.printWaveformSummary(w, s, res, vdd); err != nil {
			return err
		}
	}
	stride := w.Stride
	if stride <= 0 {
		stride = 1
	}
	rows := make([][]float64, 0, len(res.Time)/stride)
	for i := 0; i < len(res.Time); i += stride {
		row := make([]float64, 1+len(signals))
		row[0] = res.Time[i]
		for j, sig := range signals {
			row[1+j] = sig[i]
		}
		rows = append(rows, row)
	}
	return r.writeOut(e.Output, rows)
}

func (r *Runner) printWaveformSummary(w *WaveformSpec, s *WaveformSummary, res *spice.TranResult, vdd float64) error {
	sig := res.V(s.Signal)
	if sig == nil {
		return fmt.Errorf("waveform summary has no signal %q", s.Signal)
	}
	level := s.Threshold
	if s.ThresholdFracVDD != 0 {
		level = s.ThresholdFracVDD * vdd
	}
	switch s.Kind {
	case "spikes":
		count := spice.SpikeCount(res.Time, sig, level)
		period, _ := spice.SpikePeriod(res.Time, sig, level)
		fmt.Fprintf(r.stdout(), "%s waveform: %d output spikes in %g µs, steady period %.3g µs\n",
			w.Neuron, count, w.StopS*1e6, period*1e6)
	case "first-crossing":
		tts, err := spice.FirstCrossing(res.Time, sig, level, true)
		if err != nil {
			return err
		}
		fmt.Fprintf(r.stdout(), "%s waveform: first threshold crossing at %.3g µs, peak %.3f V\n",
			w.Neuron, tts*1e6, spice.Peak(res.Time, sig, 0, w.StopS))
	}
	return nil
}

func (r *Runner) runCircuit(e *Entry) error {
	series := make([][]neuron.Point, len(e.Circuit))
	for i, ref := range e.Circuit {
		spec, err := ref.Compile()
		if err != nil {
			return err
		}
		pts, err := r.char().Measure(spec)
		if err != nil {
			return err
		}
		series[i] = pts
	}
	if e.Output == nil {
		return nil
	}
	rows := make([][]float64, len(series[0]))
	for i := range rows {
		row := make([]float64, len(e.Output.Columns))
		for j, c := range e.Output.Columns {
			row[j] = columnValue(c, series, i)
		}
		rows[i] = row
	}
	r.table(e.Output.Header, rows)
	return r.csv(e.Output, e.Output.CSV, rows)
}

// columnValue computes one circuit CSV cell; the specs were validated
// in-range at load time.
func columnValue(c ColumnSpec, series [][]neuron.Point, row int) float64 {
	scale := c.Scale
	if scale == 0 {
		scale = 1
	}
	p := series[c.Series][row]
	switch c.From {
	case "x":
		return p.X * scale
	case "y":
		return p.Y * scale
	case "delta-pc":
		ref := c.Series
		if c.RefSeries != nil {
			ref = *c.RefSeries
		}
		return neuron.PercentChange(p.Y, series[ref][c.RefIndex].Y)
	case "anchor-pc":
		return c.Anchor.Percent(p.X)
	}
	return 0
}

func (r *Runner) runScenario(spec *ScenarioSpec, out *OutputSpec) error {
	scn, err := spec.Compile()
	if err != nil {
		return err
	}
	e, err := r.Experiment()
	if err != nil {
		return err
	}
	pts, err := e.RunScenario(scn)
	if err != nil {
		return err
	}
	w := r.stdout()
	for _, p := range pts {
		col := "undefended"
		if p.Defense != "" {
			col = p.Defense
		}
		coord := fmt.Sprintf("Δ%+g%%/%g%%", p.ScalePc, p.FractionPc)
		if scn.Attack == core.Attack5 {
			coord = fmt.Sprintf("VDD=%.2f", p.VDD)
			if scn.Axes.Variation != nil {
				coord = fmt.Sprintf("VDD=%.2f p%g", p.VDD, p.QuantilePc)
			}
		}
		line := fmt.Sprintf("  %-12s %-28s accuracy %.2f%% (%+.2f%%)",
			coord, col, 100*p.Result.Accuracy, p.Result.RelChangePc)
		if scn.Detector != nil {
			state := "silent"
			if p.Detected {
				state = "ATTACK DETECTED"
			}
			line += "  detector: " + state
		}
		fmt.Fprintln(w, line)
	}
	if worst, ok := core.WorstCase(pts); ok && len(pts) > 1 {
		fmt.Fprintf(w, "worst case: %+.2f%% at Δthr=%+.0f%%, fraction=%.0f%%\n",
			worst.Result.RelChangePc, worst.ScalePc, worst.FractionPc)
	}
	if out == nil {
		return nil
	}
	if out.Pivot != nil {
		return r.csv(out, out.CSV, pivotRows(out.Pivot, scn.Axes.Variation, pts))
	}
	rows := make([][]float64, len(pts))
	for i, p := range pts {
		row := make([]float64, len(out.Fields))
		for j, f := range out.Fields {
			row[j] = scenarioField(f, i, p)
		}
		rows[i] = row
	}
	return r.csv(out, out.CSV, rows)
}

// pivotRows reshapes a variation scenario's cells (supply-major,
// quantile-minor, undefended only — validated at load) into one row
// per supply: vdd_v, then each pivot field at every quantile.
func pivotRows(p *PivotSpec, v *core.VariationAxis, pts []core.SweepPoint) [][]float64 {
	nq := len(v.QuantilesPc)
	rows := make([][]float64, 0, len(pts)/nq)
	for base := 0; base+nq <= len(pts); base += nq {
		row := make([]float64, 0, 1+len(p.Fields)*nq)
		row = append(row, pts[base].VDD)
		for _, f := range p.Fields {
			for k := 0; k < nq; k++ {
				row = append(row, scenarioField(f, base+k, pts[base+k]))
			}
		}
		rows = append(rows, row)
	}
	return rows
}

func scenarioField(name string, index int, p core.SweepPoint) float64 {
	switch name {
	case "column_index":
		return float64(index)
	case "scale_pc":
		return p.ScalePc
	case "fraction_pc":
		return p.FractionPc
	case "vdd_v":
		return p.VDD
	case "quantile_pc":
		return p.QuantilePc
	case "accuracy_pc":
		return 100 * p.Result.Accuracy
	case "rel_change_pc":
		return p.Result.RelChangePc
	case "detected":
		if p.Detected {
			return 1
		}
		return 0
	}
	return 0
}

func (r *Runner) runMonteCarlo(en *Entry) error {
	mc := en.MonteCarlo.compile()
	samples, err := r.char().MonteCarloThresholds(mc)
	if err != nil {
		return err
	}
	w := r.stdout()
	mean, sigma := neuron.Spread(samples)
	fmt.Fprintf(w, "mismatch threshold over %d samples (σ_Vth %.0f mV, VDD %.2f V):\n",
		mc.N, 1e3*mc.SigmaVth, mc.VDD)
	fmt.Fprintf(w, "  mean %.4f V, sigma %.4f V (%.2f%% relative)\n",
		mean, sigma, 100*sigma/mean)
	if qs := en.MonteCarlo.QuantilesPc; len(qs) > 0 {
		vals := neuron.Quantiles(samples, qs)
		for i, q := range qs {
			fmt.Fprintf(w, "  p%-4g %.4f V\n", q, vals[i])
		}
	}
	if trig := en.MonteCarlo.TriggerPc; trig > 0 {
		fmt.Fprintf(w, "  detector false-positive rate at ±%g%% trigger: %.4f\n",
			trig, neuron.DetectorFalsePositiveRate(samples, trig))
	}
	rows := make([][]float64, len(samples))
	for i, s := range samples {
		rows[i] = []float64{float64(i), s}
	}
	return r.writeOut(en.Output, rows)
}

func (r *Runner) runWeightFaults(en *Entry) error {
	e, err := r.Experiment()
	if err != nil {
		return err
	}
	specs := make([]core.WeightFaultSpec, len(en.WeightFaults))
	for i, w := range en.WeightFaults {
		specs[i] = w.compile()
	}
	results, err := e.RunWeightFaults(specs)
	if err != nil {
		return err
	}
	rows := make([][]float64, len(results))
	for i, res := range results {
		s := specs[i]
		fmt.Fprintf(r.stdout(), "  scale %.2f fraction %.2f cadence %3d: accuracy %.2f%% (%+.2f%%)\n",
			s.Scale, s.Fraction, s.EveryNImages, 100*res.Accuracy, res.RelChangePc)
		if en.Output != nil {
			row := make([]float64, len(en.Output.Fields))
			for j, f := range en.Output.Fields {
				switch f {
				case "scale":
					row[j] = s.Scale
				case "fraction":
					row[j] = s.Fraction
				case "cadence_images":
					row[j] = float64(s.EveryNImages)
				case "seed":
					row[j] = float64(s.Seed)
				case "accuracy_pc":
					row[j] = 100 * res.Accuracy
				case "rel_change_pc":
					row[j] = res.RelChangePc
				}
			}
			rows[i] = row
		}
	}
	if en.Output == nil {
		return nil
	}
	return r.csv(en.Output, en.Output.CSV, rows)
}

func (r *Runner) runLearningRateFaults(en *Entry) error {
	e, err := r.Experiment()
	if err != nil {
		return err
	}
	specs := make([]core.LearningRateFaultSpec, len(en.LearningRateFaults))
	for i, l := range en.LearningRateFaults {
		specs[i] = l.compile()
	}
	results, err := e.RunLearningRateFaults(specs)
	if err != nil {
		return err
	}
	rows := make([][]float64, len(results))
	for i, res := range results {
		fmt.Fprintf(r.stdout(), "  ×%.2f: accuracy %.2f%% (%+.2f%%)\n",
			specs[i].Scale, 100*res.Accuracy, res.RelChangePc)
		if en.Output != nil {
			row := make([]float64, len(en.Output.Fields))
			for j, f := range en.Output.Fields {
				switch f {
				case "scale":
					row[j] = specs[i].Scale
				case "accuracy_pc":
					row[j] = 100 * res.Accuracy
				case "rel_change_pc":
					row[j] = res.RelChangePc
				}
			}
			rows[i] = row
		}
	}
	if en.Output == nil {
		return nil
	}
	return r.csv(en.Output, en.Output.CSV, rows)
}

func (r *Runner) runDetection(en *Entry) error {
	for _, name := range en.Detection.Neurons {
		kind, err := xfer.KindByName(name)
		if err != nil {
			return err
		}
		det := defense.NewDetector(kind)
		fmt.Fprintf(r.stdout(), "dummy %v (window %.0f ms, trigger ±%.0f%%):\n", kind, det.WindowMs, det.ThresholdPc)
		var rows [][]float64
		for _, v := range det.DetectionSweep(en.Detection.VDDs) {
			fmt.Fprintln(r.stdout(), "  ", v)
			detected := 0.0
			if v.Detected {
				detected = 1
			}
			rows = append(rows, []float64{v.VDD, float64(v.Count), v.DeviationPc, detected})
			rec := neuron.PointRecord(fmt.Sprintf("dummy-%v-detection", kind),
				neuron.Point{X: v.VDD, Y: v.DeviationPc})
			for _, s := range r.Sinks {
				if err := s.Write(rec); err != nil {
					return err
				}
			}
		}
		if en.Output != nil {
			name := strings.ReplaceAll(en.Output.CSV, "{neuron}", kind.String())
			if err := r.csv(en.Output, name, rows); err != nil {
				return err
			}
		}
	}
	return nil
}

func (r *Runner) runCoverage(en *Entry) error {
	e, err := r.Experiment()
	if err != nil {
		return err
	}
	kind, err := xfer.KindByName(en.Coverage.Neuron)
	if err != nil {
		return err
	}
	det := defense.NewDetector(kind)
	rows, err := defense.DetectionCoverage(e, det, en.Coverage.VDDs)
	if err != nil {
		return err
	}
	var csvRows [][]float64
	for _, row := range rows {
		fmt.Fprintln(r.stdout(), "  ", row)
		detected := 0.0
		if row.Verdict.Detected {
			detected = 1
		}
		csvRows = append(csvRows, []float64{row.VDD, row.RelChangePc, row.Verdict.DeviationPc, detected})
	}
	blind := defense.UncoveredDamage(rows, en.Coverage.DamageThresholdPc)
	fmt.Fprintf(r.stdout(), "blind spots (damage beyond %g%%, undetected): %d\n",
		en.Coverage.DamageThresholdPc, len(blind))
	return r.writeOut(en.Output, csvRows)
}

func (r *Runner) runOverhead(en *Entry) error {
	o := en.Overhead
	fmt.Fprintf(r.stdout(), "defense overheads for a %d-neuron implementation (%d/layer):\n", o.Neurons, o.PerLayer)
	var rows [][]float64
	for i, row := range power.OverheadTable(o.Neurons, o.PerLayer) {
		fmt.Fprintln(r.stdout(), "  ", row)
		rows = append(rows, []float64{float64(i), row.PowerPc, row.AreaPc})
	}
	if len(o.Amortize) > 0 {
		fmt.Fprintln(r.stdout(), "bandgap area amortization at larger scales:")
		for _, n := range o.Amortize {
			base := power.BaselineSystem(n)
			sys := power.DefendedSystem(n, power.DefenseSelection{SharedBandgap: true})
			fmt.Fprintf(r.stdout(), "   %6d neurons: area %+6.2f%%\n", n,
				100*(sys.AreaUm2()-base.AreaUm2())/base.AreaUm2())
		}
	}
	return r.writeOut(en.Output, rows)
}
