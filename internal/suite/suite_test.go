package suite

import (
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

const paperSuite = "../../suites/paper.json"

func TestPaperSuiteLoadsAndValidates(t *testing.T) {
	s, err := Load(paperSuite)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Entries) != 24 {
		t.Fatalf("paper suite has %d entries, want 24", len(s.Entries))
	}
}

func TestDecodeRejectsUnknownFields(t *testing.T) {
	cases := []struct {
		name, doc, wantErr string
	}{
		{
			"top level",
			`{"name":"x","bogus":1,"entries":[]}`,
			"bogus",
		},
		{
			"entry scoped",
			`{"name":"x","entries":[{"id":"F1","overhead":{"neurons":10,"per_layer":5}},{"id":"F2","scenario":{"name":"s","attack":1,"changes_pc":[1],"typo_field":true}}]}`,
			"entry 1 (F2)",
		},
		{
			"nested spec",
			`{"name":"x","entries":[{"id":"A","waveform":{"neuron":"ah","stop_s":1e-6,"step_s":1e-9,"signals":["vout"],"wrong":1}}]}`,
			"entry 0 (A)",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Decode(strings.NewReader(c.doc))
			if err == nil {
				t.Fatal("strict decode accepted an unknown field")
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

func TestAxisValueForms(t *testing.T) {
	var s ScenarioSpec
	doc := `{"name":"s","attack":4,"changes_pc":[-10, {"vdd_equivalent":{"neuron":"iaf","vdd":0.8}}]}`
	if err := strictUnmarshal([]byte(doc), &s); err != nil {
		t.Fatal(err)
	}
	v0, err := s.ChangesPc[0].Resolve()
	if err != nil || v0 != -10 {
		t.Fatalf("bare number resolved to %g, %v", v0, err)
	}
	v1, err := s.ChangesPc[1].Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if v1 >= 0 {
		t.Fatalf("VDD=0.8-equivalent threshold change should be negative, got %g", v1)
	}

	var bad AxisValue
	if err := strictUnmarshal([]byte(`{"vdd_equivalent":{"neuron":"iaf","vdd":0.8},"extra":1}`), &bad); err == nil {
		t.Fatal("axis value object accepted an unknown sibling field")
	}
	if err := strictUnmarshal([]byte(`"ten"`), &bad); err == nil {
		t.Fatal("axis value accepted a string")
	}
}

func TestValidateCatchesSpecErrors(t *testing.T) {
	mk := func(e Entry) *Suite { return &Suite{Name: "t", Entries: []Entry{e}} }
	out := &OutputSpec{CSV: "x.csv", Header: "a,b"}
	cases := []struct {
		name    string
		s       *Suite
		wantErr string
	}{
		{"no entries", &Suite{Name: "t"}, "no entries"},
		{"duplicate ids", &Suite{Name: "t", Entries: []Entry{
			{ID: "A", Overhead: &OverheadSpec{Neurons: 10, PerLayer: 5}, Output: out},
			{ID: "A", Overhead: &OverheadSpec{Neurons: 10, PerLayer: 5}, Output: out},
		}}, "duplicate"},
		{"empty entry", mk(Entry{ID: "A"}), "no experiment specified"},
		{"two experiments", mk(Entry{ID: "A",
			Overhead:  &OverheadSpec{Neurons: 10, PerLayer: 5},
			Detection: &DetectionSpec{Neurons: []string{"ah"}, VDDs: []float64{1}},
			Output:    out,
		}), "conflicting"},
		{"unknown attack", mk(Entry{ID: "A",
			Scenario: &ScenarioSpec{Name: "s", Attack: 9, ChangesPc: []AxisValue{{Value: 1}}},
			Output:   &OutputSpec{CSV: "x.csv", Header: "h", Fields: []string{"scale_pc"}},
		}), "attack"},
		{"unknown field name", mk(Entry{ID: "A",
			Scenario: &ScenarioSpec{Name: "s", Attack: 1, ChangesPc: []AxisValue{{Value: 1}}},
			Output:   &OutputSpec{CSV: "x.csv", Header: "h", Fields: []string{"watts"}},
		}), "watts"},
		{"column out of range", mk(Entry{ID: "A",
			Circuit: []RecipeRef{{Recipe: "iaf-threshold-vs-vdd", Xs: []float64{1}}},
			Output: &OutputSpec{CSV: "x.csv", Header: "h",
				Columns: []ColumnSpec{{From: "y", Series: 3}}},
		}), "series"},
		{"unknown recipe", mk(Entry{ID: "A",
			Circuit: []RecipeRef{{Recipe: "nope", Xs: []float64{1}}},
			Output: &OutputSpec{CSV: "x.csv", Header: "h",
				Columns: []ColumnSpec{{From: "x"}}},
		}), "unknown recipe"},
		{"unknown defense", mk(Entry{ID: "A",
			Scenario: &ScenarioSpec{Name: "s", Attack: 1, ChangesPc: []AxisValue{{Value: 1}},
				Defenses: []DefenseSpec{{Kind: "tinfoil"}}},
			Output: &OutputSpec{CSV: "x.csv", Header: "h", Fields: []string{"scale_pc"}},
		}), "tinfoil"},
		{"multi-neuron detection needs placeholder", mk(Entry{ID: "A",
			Detection: &DetectionSpec{Neurons: []string{"ah", "iaf"}, VDDs: []float64{1}},
			Output:    &OutputSpec{CSV: "same.csv", Header: "h"},
		}), "{neuron}"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.s.Validate()
			if err == nil {
				t.Fatal("validation accepted a broken suite")
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

// TestScenarioCompileDeterministic proves the suite→scenario lowering
// is pure: two independent loads compile to deeply equal scenarios, so
// cache keys (derived from the compiled plans) are stable across runs.
func TestScenarioCompileDeterministic(t *testing.T) {
	load := func() []interface{} {
		s, err := Load(paperSuite)
		if err != nil {
			t.Fatal(err)
		}
		var out []interface{}
		for i := range s.Entries {
			spec := s.Entries[i].Scenario
			if spec == nil {
				continue
			}
			scn, err := spec.Compile()
			if err != nil {
				t.Fatalf("%s: %v", s.Entries[i].ID, err)
			}
			out = append(out, scn)
		}
		return out
	}
	a, b := load(), load()
	if len(a) == 0 {
		t.Fatal("paper suite compiled zero scenarios")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two loads compiled different scenarios")
	}
}

// TestRunnerWorkerInvariance proves the artifact bytes do not depend on
// the worker count: network cells and circuit sweeps may complete in
// any order, but the rendered CSVs are ordered by the suite, not by
// completion.
func TestRunnerWorkerInvariance(t *testing.T) {
	doc := `{
	  "name": "tiny",
	  "network": {"images": 12, "neurons": 8, "steps": 40},
	  "entries": [
	    {"id": "C1",
	     "circuit": [{"recipe": "iaf-threshold-vs-vdd", "xs": [0.9, 1.0, 1.1]}],
	     "output": {"csv": "c1.csv", "header": "vdd,thr,d",
	       "columns": [{"from": "x"}, {"from": "y"}, {"from": "delta-pc", "ref_index": 1}]}},
	    {"id": "S1",
	     "scenario": {"name": "tiny-attack1", "attack": 1, "changes_pc": [-10, 0, 10]},
	     "output": {"csv": "s1.csv", "header": "scale,acc,rel",
	       "fields": ["scale_pc", "accuracy_pc", "rel_change_pc"]}}
	  ]
	}`
	run := func(workers int) map[string]string {
		su, err := Decode(strings.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		out := t.TempDir()
		r := &Runner{Suite: su, Name: "test", OutDir: out, Stdout: io.Discard, Workers: workers}
		if err := r.Run(nil); err != nil {
			t.Fatal(err)
		}
		files, _ := filepath.Glob(filepath.Join(out, "*.csv"))
		got := map[string]string{}
		for _, f := range files {
			b, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			got[filepath.Base(f)] = string(b)
		}
		return got
	}
	serial, pooled := run(1), run(3)
	if len(serial) != 2 {
		t.Fatalf("suite wrote %d artifacts, want 2", len(serial))
	}
	if !reflect.DeepEqual(serial, pooled) {
		t.Fatal("artifact bytes changed with the worker count")
	}
}

// TestRunnerOnlyFiltersEntries checks -only semantics: listed IDs run,
// unknown IDs are an error (a typo must not silently skip a figure).
func TestRunnerOnlyFiltersEntries(t *testing.T) {
	doc := `{
	  "name": "two",
	  "entries": [
	    {"id": "A", "overhead": {"neurons": 10, "per_layer": 5},
	     "output": {"csv": "a.csv", "header": "row,p,a"}},
	    {"id": "B", "overhead": {"neurons": 20, "per_layer": 10},
	     "output": {"csv": "b.csv", "header": "row,p,a"}}
	  ]
	}`
	su, err := Decode(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	out := t.TempDir()
	r := &Runner{Suite: su, OutDir: out, Stdout: io.Discard}
	if err := r.Run([]string{"B"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(out, "a.csv")); !os.IsNotExist(err) {
		t.Fatal("filtered-out entry A still wrote its artifact")
	}
	if _, err := os.Stat(filepath.Join(out, "b.csv")); err != nil {
		t.Fatal("selected entry B wrote nothing")
	}
	if err := r.Run([]string{"nope"}); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("unknown -only id: got %v, want an error naming it", err)
	}
}
