package suite

import (
	"fmt"
	"strings"

	"snnfi/internal/core"
	"snnfi/internal/defense"
	"snnfi/internal/neuron"
	"snnfi/internal/xfer"
)

// This file lowers suite specifications onto the executable layers:
// ScenarioSpec → core.Scenario, DefenseSpec → core.Hardening,
// DetectorSpec → defense.DetectorConfig, RecipeRef →
// neuron.RecipeSpec. Compilation is pure — the same spec always
// yields the same value — which is what makes a suite's cell keys
// (core.ScenarioKeys) stable across runs and processes.

// Kind names the entry's primary experiment family.
func (e *Entry) Kind() string {
	kinds := e.kinds()
	if len(kinds) == 0 {
		return "empty"
	}
	return strings.Join(kinds, "+")
}

func (e *Entry) kinds() []string {
	var k []string
	if e.Waveform != nil {
		k = append(k, "waveform")
	}
	if len(e.Circuit) > 0 {
		k = append(k, "circuit")
	}
	if e.Scenario != nil {
		k = append(k, "scenario")
	}
	if e.MonteCarlo != nil {
		k = append(k, "montecarlo")
	}
	if len(e.WeightFaults) > 0 {
		k = append(k, "weight_faults")
	}
	if len(e.LearningRateFaults) > 0 {
		k = append(k, "learning_rate_faults")
	}
	if e.Detection != nil {
		k = append(k, "detection")
	}
	if e.Coverage != nil {
		k = append(k, "coverage")
	}
	if e.Overhead != nil {
		k = append(k, "overhead")
	}
	return k
}

// Validate checks the whole suite without running anything: every
// entry must compile, and every output spec must be renderable against
// its entry's statically-known series shapes. Errors carry the entry's
// index and ID.
func (s *Suite) Validate() error {
	if len(s.Entries) == 0 {
		return fmt.Errorf("suite: no entries")
	}
	if n := s.Network; n != nil {
		if n.Images < 0 || n.Neurons < 0 || n.Steps < 0 {
			return fmt.Errorf("suite: network scale fields must be ≥0")
		}
	}
	seen := make(map[string]bool, len(s.Entries))
	for i := range s.Entries {
		e := &s.Entries[i]
		if err := e.validate(); err != nil {
			return fmt.Errorf("suite: entry %d (%s): %w", i, orUnnamed(e.ID), err)
		}
		if seen[e.ID] {
			return fmt.Errorf("suite: entry %d: duplicate id %q", i, e.ID)
		}
		seen[e.ID] = true
	}
	return nil
}

func (e *Entry) validate() error {
	if e.ID == "" {
		return fmt.Errorf("missing id")
	}
	kinds := e.kinds()
	switch {
	case len(kinds) == 0:
		return fmt.Errorf("no experiment specified (want one of waveform, circuit, scenario, montecarlo, weight_faults, learning_rate_faults, detection, coverage, overhead)")
	case len(kinds) == 1:
	case len(kinds) == 2 && kinds[0] == "circuit" && kinds[1] == "scenario":
		// The sanctioned combination: a characterization whose entry
		// also replays a defended accuracy point (Fig. 9c).
	default:
		return fmt.Errorf("conflicting experiments %v (only circuit+scenario may combine)", kinds)
	}
	if e.Waveform != nil {
		if err := e.Waveform.validate(); err != nil {
			return err
		}
	}
	for i, ref := range e.Circuit {
		if _, err := ref.Compile(); err != nil {
			return fmt.Errorf("circuit series %d: %w", i, err)
		}
	}
	if e.Scenario != nil {
		if _, err := e.Scenario.Compile(); err != nil {
			return err
		}
	}
	if mc := e.MonteCarlo; mc != nil {
		if err := mc.validate(); err != nil {
			return err
		}
	}
	for i, w := range e.WeightFaults {
		if err := w.compile().Validate(); err != nil {
			return fmt.Errorf("weight fault %d: %w", i, err)
		}
	}
	for i, l := range e.LearningRateFaults {
		if err := l.compile().Validate(); err != nil {
			return fmt.Errorf("learning-rate fault %d: %w", i, err)
		}
	}
	if d := e.Detection; d != nil {
		if len(d.Neurons) == 0 || len(d.VDDs) == 0 {
			return fmt.Errorf("detection needs neurons and vdds")
		}
		for _, n := range d.Neurons {
			if _, err := xfer.KindByName(n); err != nil {
				return err
			}
		}
	}
	if c := e.Coverage; c != nil {
		if _, err := xfer.KindByName(c.Neuron); err != nil {
			return err
		}
		if len(c.VDDs) == 0 {
			return fmt.Errorf("coverage needs vdds")
		}
	}
	if o := e.Overhead; o != nil {
		if o.Neurons <= 0 || o.PerLayer <= 0 {
			return fmt.Errorf("overhead needs positive neurons and per_layer")
		}
	}
	return e.validateOutput()
}

func (w *WaveformSpec) validate() error {
	if _, err := xfer.KindByName(w.Neuron); err != nil {
		return err
	}
	if w.StopS <= 0 || w.StepS <= 0 {
		return fmt.Errorf("waveform needs positive stop_s and step_s")
	}
	if w.Stride < 0 {
		return fmt.Errorf("waveform stride must be ≥0, got %d", w.Stride)
	}
	if len(w.Signals) == 0 {
		return fmt.Errorf("waveform needs at least one signal")
	}
	if s := w.Summary; s != nil {
		switch s.Kind {
		case "spikes", "first-crossing":
		default:
			return fmt.Errorf("unknown waveform summary kind %q (want spikes|first-crossing)", s.Kind)
		}
		if s.Signal == "" {
			return fmt.Errorf("waveform summary needs a signal")
		}
		if (s.Threshold == 0) == (s.ThresholdFracVDD == 0) {
			return fmt.Errorf("waveform summary needs exactly one of threshold, threshold_frac_vdd")
		}
	}
	return nil
}

// validateOutput checks the output spec against the entry's series
// shape: column specs only for circuit entries (with in-range series
// and reference indices), field lists only for row-shaped entries.
func (e *Entry) validateOutput() error {
	out := e.Output
	if out == nil {
		return nil
	}
	if out.CSV == "" || out.Header == "" {
		return fmt.Errorf("output needs csv and header")
	}
	if len(out.Columns) > 0 && len(out.Fields) > 0 {
		return fmt.Errorf("output cannot mix columns and fields")
	}
	if out.Pivot != nil && (len(out.Columns) > 0 || len(out.Fields) > 0) {
		return fmt.Errorf("output cannot mix pivot with columns or fields")
	}
	if out.Pivot != nil && e.Scenario == nil {
		return fmt.Errorf("pivot output needs a scenario entry")
	}
	switch {
	case len(e.Circuit) > 0:
		if len(out.Columns) == 0 {
			return fmt.Errorf("circuit output needs columns")
		}
		return validateColumns(out.Columns, e.Circuit)
	case e.Waveform != nil, e.MonteCarlo != nil, e.Detection != nil, e.Coverage != nil, e.Overhead != nil:
		// Fixed row shapes; the header is the only declarative part.
		if len(out.Columns) > 0 || len(out.Fields) > 0 {
			return fmt.Errorf("%s output takes only csv and header", e.Kind())
		}
		if e.Detection != nil && len(e.Detection.Neurons) > 1 && !strings.Contains(out.CSV, "{neuron}") {
			return fmt.Errorf("detection over %d neuron flavors needs a {neuron} placeholder in csv", len(e.Detection.Neurons))
		}
		return nil
	case e.Scenario != nil:
		if p := out.Pivot; p != nil {
			if e.Scenario.Variation == nil {
				return fmt.Errorf("pivot output needs a scenario variation axis")
			}
			if len(e.Scenario.Defenses) > 0 {
				return fmt.Errorf("pivot output supports undefended scenarios only")
			}
			return validateFields(p.Fields, pivotFields)
		}
		return validateFields(out.Fields, scenarioFields)
	case len(e.WeightFaults) > 0:
		return validateFields(out.Fields, weightFaultFields)
	case len(e.LearningRateFaults) > 0:
		return validateFields(out.Fields, learningRateFields)
	}
	return nil
}

func validateColumns(cols []ColumnSpec, series []RecipeRef) error {
	rows := len(series[0].Xs)
	for i, c := range cols {
		if c.Series < 0 || c.Series >= len(series) {
			return fmt.Errorf("column %d: series %d out of range (have %d)", i, c.Series, len(series))
		}
		switch c.From {
		case "x", "y":
			if len(series[c.Series].Xs) != rows {
				return fmt.Errorf("column %d: series %d has %d points, rows need %d", i, c.Series, len(series[c.Series].Xs), rows)
			}
		case "delta-pc":
			if len(series[c.Series].Xs) != rows {
				return fmt.Errorf("column %d: series %d has %d points, rows need %d", i, c.Series, len(series[c.Series].Xs), rows)
			}
			ref := c.Series
			if c.RefSeries != nil {
				ref = *c.RefSeries
			}
			if ref < 0 || ref >= len(series) {
				return fmt.Errorf("column %d: ref_series %d out of range (have %d)", i, ref, len(series))
			}
			if c.RefIndex < 0 || c.RefIndex >= len(series[ref].Xs) {
				return fmt.Errorf("column %d: ref_index %d out of range (series %d has %d points)", i, c.RefIndex, ref, len(series[ref].Xs))
			}
		case "anchor-pc":
			if c.Anchor == nil {
				return fmt.Errorf("column %d: anchor-pc needs an anchor", i)
			}
			if err := c.Anchor.validate(); err != nil {
				return fmt.Errorf("column %d: %w", i, err)
			}
			if len(series[c.Series].Xs) != rows {
				return fmt.Errorf("column %d: series %d has %d points, rows need %d", i, c.Series, len(series[c.Series].Xs), rows)
			}
		default:
			return fmt.Errorf("column %d: unknown from %q (want x|y|delta-pc|anchor-pc)", i, c.From)
		}
		if c.Scale != 0 && c.From != "x" && c.From != "y" {
			return fmt.Errorf("column %d: scale applies only to x/y columns", i)
		}
	}
	return nil
}

func (a *AnchorSpec) validate() error {
	switch a.Curve {
	case "driver-amplitude":
	case "tts-vs-vdd":
		if _, err := xfer.KindByName(a.Neuron); err != nil {
			return fmt.Errorf("anchor %s: %w", a.Curve, err)
		}
	case "sizing-residual":
		if a.VDD <= 0 {
			return fmt.Errorf("anchor sizing-residual needs a positive vdd")
		}
	default:
		return fmt.Errorf("unknown anchor curve %q (want driver-amplitude|tts-vs-vdd|sizing-residual)", a.Curve)
	}
	return nil
}

// Percent evaluates the anchor at x: the percent change the published
// transfer curves predict.
func (a *AnchorSpec) Percent(x float64) float64 {
	switch a.Curve {
	case "driver-amplitude":
		return 100 * (xfer.DriverAmplitudeRatio().At(x) - 1)
	case "tts-vs-vdd":
		kind, _ := xfer.KindByName(a.Neuron)
		return 100 * (xfer.TimeToSpikeVsVDDRatio(kind).At(x) - 1)
	case "sizing-residual":
		return 100 * xfer.SizingResidualShift(a.VDD, x)
	}
	return 0
}

// Field vocabularies for row-shaped outputs.
var (
	scenarioFields     = []string{"column_index", "scale_pc", "fraction_pc", "vdd_v", "quantile_pc", "accuracy_pc", "rel_change_pc", "detected"}
	pivotFields        = []string{"accuracy_pc", "rel_change_pc", "detected"}
	weightFaultFields  = []string{"scale", "fraction", "cadence_images", "seed", "accuracy_pc", "rel_change_pc"}
	learningRateFields = []string{"scale", "accuracy_pc", "rel_change_pc"}
)

func validateFields(fields, known []string) error {
	if len(fields) == 0 {
		return fmt.Errorf("output needs fields")
	}
	for _, f := range fields {
		found := false
		for _, k := range known {
			if f == k {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("unknown output field %q (want one of %v)", f, known)
		}
	}
	return nil
}

// Compile lowers the recipe reference to the executable spec.
func (r RecipeRef) Compile() (neuron.RecipeSpec, error) {
	spec := neuron.RecipeSpec{Name: r.Recipe, Xs: r.Xs, VDD: r.VDD, Window: r.WindowS}
	if err := spec.Validate(); err != nil {
		return neuron.RecipeSpec{}, err
	}
	return spec, nil
}

// Resolve evaluates the axis value to a percent change.
func (a AxisValue) Resolve() (float64, error) {
	if a.VDDEquivalent == nil {
		return a.Value, nil
	}
	kind, err := xfer.KindByName(a.VDDEquivalent.Neuron)
	if err != nil {
		return 0, err
	}
	if a.VDDEquivalent.VDD <= 0 {
		return 0, fmt.Errorf("vdd_equivalent needs a positive vdd")
	}
	return 100 * (xfer.ThresholdRatio(kind).At(a.VDDEquivalent.VDD) - 1), nil
}

// Compile lowers the scenario spec to a validated core.Scenario.
func (s *ScenarioSpec) Compile() (*core.Scenario, error) {
	attack, err := core.AttackByNumber(s.Attack)
	if err != nil {
		return nil, err
	}
	scn := &core.Scenario{Name: s.Name, Attack: attack}
	scn.Axes.FractionsPc = s.FractionsPc
	scn.Axes.VDDs = s.VDDs
	scn.Axes.MaskSeed = s.MaskSeed
	if v := s.Variation; v != nil {
		scn.Axes.Variation = &core.VariationAxis{
			RelSigmaPc:  v.RelSigmaPc,
			QuantilesPc: v.QuantilesPc,
		}
	}
	for _, a := range s.ChangesPc {
		v, err := a.Resolve()
		if err != nil {
			return nil, err
		}
		scn.Axes.ChangesPc = append(scn.Axes.ChangesPc, v)
	}
	if s.Neuron != "" {
		kind, err := xfer.KindByName(s.Neuron)
		if err != nil {
			return nil, err
		}
		scn.Axes.Kind = kind
	} else if attack == core.Attack5 {
		return nil, fmt.Errorf("attack 5 needs a neuron (the transfer curves mapping VDD to corruption)")
	}
	for i, d := range s.Defenses {
		h, err := d.Compile()
		if err != nil {
			return nil, fmt.Errorf("defense %d: %w", i, err)
		}
		scn.Defenses = append(scn.Defenses, h)
	}
	if s.Detector != nil {
		det, err := s.Detector.Compile()
		if err != nil {
			return nil, err
		}
		scn.Detector = det
	}
	if err := scn.Validate(); err != nil {
		return nil, err
	}
	return scn, nil
}

// Compile lowers the defense spec to its hardening implementation.
func (d DefenseSpec) Compile() (core.Hardening, error) {
	reject := func(field string, set bool) error {
		if set {
			return fmt.Errorf("defense %s does not take %s", d.Kind, field)
		}
		return nil
	}
	switch d.Kind {
	case "robust-driver":
		if err := firstErr(reject("neuron", d.Neuron != ""), reject("wl_multiple", d.WLMultiple != 0)); err != nil {
			return nil, err
		}
		if d.ResidualPc < 0 {
			return nil, fmt.Errorf("robust-driver residual_pc must be ≥0, got %g", d.ResidualPc)
		}
		return defense.RobustDriver{ResidualPc: d.ResidualPc}, nil
	case "bandgap":
		if err := firstErr(reject("residual_pc", d.ResidualPc != 0), reject("wl_multiple", d.WLMultiple != 0)); err != nil {
			return nil, err
		}
		kind, err := xfer.KindByName(d.Neuron)
		if err != nil {
			return nil, fmt.Errorf("bandgap: %w", err)
		}
		return defense.BandgapThreshold{Kind: kind}, nil
	case "sizing":
		if err := firstErr(reject("neuron", d.Neuron != ""), reject("residual_pc", d.ResidualPc != 0)); err != nil {
			return nil, err
		}
		if d.WLMultiple < 1 {
			return nil, fmt.Errorf("sizing wl_multiple must be ≥1, got %g", d.WLMultiple)
		}
		return defense.Sizing{WLMultiple: d.WLMultiple}, nil
	case "comparator":
		if err := firstErr(reject("neuron", d.Neuron != ""), reject("residual_pc", d.ResidualPc != 0), reject("wl_multiple", d.WLMultiple != 0)); err != nil {
			return nil, err
		}
		return defense.ComparatorNeuron{}, nil
	default:
		return nil, fmt.Errorf("unknown defense kind %q (want robust-driver|bandgap|sizing|comparator)", d.Kind)
	}
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Compile lowers the detector spec: the paper's configuration for the
// neuron flavor, with explicit overrides applied.
func (d *DetectorSpec) Compile() (defense.DetectorConfig, error) {
	kind, err := xfer.KindByName(d.Neuron)
	if err != nil {
		return defense.DetectorConfig{}, fmt.Errorf("detector: %w", err)
	}
	cfg := defense.NewDetector(kind)
	if d.WindowMs != 0 {
		cfg.WindowMs = d.WindowMs
	}
	if d.ThresholdPc != 0 {
		cfg.ThresholdPc = d.ThresholdPc
	}
	return cfg, nil
}

func (w WeightFaultSpec) compile() core.WeightFaultSpec {
	return core.WeightFaultSpec{Scale: w.Scale, Fraction: w.Fraction, EveryNImages: w.EveryNImages, Seed: w.Seed}
}

func (l LearningRateFaultSpec) compile() core.LearningRateFaultSpec {
	return core.LearningRateFaultSpec{Scale: l.Scale}
}

func (mc *MonteCarloSpec) validate() error {
	if mc.N <= 0 {
		return fmt.Errorf("montecarlo needs n > 0, got %d", mc.N)
	}
	if mc.SigmaVthV < 0 {
		return fmt.Errorf("montecarlo sigma_vth_v must be ≥0, got %g", mc.SigmaVthV)
	}
	if mc.VDD < 0 {
		return fmt.Errorf("montecarlo vdd must be ≥0, got %g", mc.VDD)
	}
	if mc.TriggerPc < 0 {
		return fmt.Errorf("montecarlo trigger_pc must be ≥0, got %g", mc.TriggerPc)
	}
	for _, q := range mc.QuantilesPc {
		if q < 0 || q > 100 {
			return fmt.Errorf("montecarlo quantile %g out of range [0, 100]", q)
		}
	}
	return nil
}

// compile lowers the spec onto the neuron tier, filling the 65nm-class
// defaults for omitted fields.
func (mc *MonteCarloSpec) compile() neuron.MonteCarlo {
	out := neuron.NewMonteCarlo(mc.N)
	if mc.SigmaVthV > 0 {
		out.SigmaVth = mc.SigmaVthV
	}
	if mc.Seed != 0 {
		out.Seed = mc.Seed
	}
	if mc.VDD > 0 {
		out.VDD = mc.VDD
	}
	return out
}
