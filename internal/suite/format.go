// Package suite implements the declarative scenario-suite format: a
// whole evaluation campaign — the paper's every figure and table, or a
// user's custom attack×defense study — as one JSON file, interpreted
// down to the existing experiment layers (core.Scenario for network
// campaigns, neuron.Characterizer recipes for circuit sweeps, the
// defense package's detector and coverage analyses, power's overhead
// inventory).
//
// A suite is an ordered list of entries. Each entry names one artifact
// (a figure or table ID), describes what to run as pure data, and
// optionally where the rendered CSV goes. Decoding is strict — unknown
// fields are rejected, with errors scoped to the offending entry — so
// a typo'd suite fails loudly instead of silently dropping an axis.
package suite

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Suite is one campaign specification: shared network scale plus the
// ordered entries to interpret.
type Suite struct {
	// Name labels the suite in listings and reports.
	Name string `json:"name"`
	// Description is free text shown by -list.
	Description string `json:"description,omitempty"`
	// Network sets the shared network scale for every scenario and
	// extension entry; nil uses the interpreter's defaults.
	Network *NetworkSpec `json:"network,omitempty"`
	// Entries run in order.
	Entries []Entry `json:"entries"`
}

// NetworkSpec scales the shared experiment. Zero fields keep the
// snn.DefaultConfig value (and 1000 images).
type NetworkSpec struct {
	// Images is the number of training images per attack configuration.
	Images int `json:"images,omitempty"`
	// Neurons sets the excitatory (and matching inhibitory) layer size.
	Neurons int `json:"neurons,omitempty"`
	// Steps is the presentation steps per image.
	Steps int `json:"steps,omitempty"`
}

// Entry is one artifact of the suite: an ID, exactly one primary
// experiment kind (waveform | circuit | scenario | montecarlo |
// weight_faults | learning_rate_faults | detection | coverage |
// overhead), and an
// optional output spec. The one sanctioned combination is circuit +
// scenario (a characterization whose entry also replays a defended
// accuracy point, Fig. 9c); the output then renders the circuit series
// and the scenario is print-only.
type Entry struct {
	// ID names the artifact ("F7b", "D2", ...); unique within the suite.
	ID string `json:"id"`
	// Title is a one-line description for listings.
	Title string `json:"title,omitempty"`
	// Note is free text printed when the entry runs (paper anchors,
	// expected worst cases).
	Note string `json:"note,omitempty"`

	Waveform           *WaveformSpec           `json:"waveform,omitempty"`
	Circuit            []RecipeRef             `json:"circuit,omitempty"`
	Scenario           *ScenarioSpec           `json:"scenario,omitempty"`
	MonteCarlo         *MonteCarloSpec         `json:"montecarlo,omitempty"`
	WeightFaults       []WeightFaultSpec       `json:"weight_faults,omitempty"`
	LearningRateFaults []LearningRateFaultSpec `json:"learning_rate_faults,omitempty"`
	Detection          *DetectionSpec          `json:"detection,omitempty"`
	Coverage           *CoverageSpec           `json:"coverage,omitempty"`
	Overhead           *OverheadSpec           `json:"overhead,omitempty"`

	// Output, when present, renders the entry's series as a CSV file.
	// Entries without one print their results and write nothing.
	Output *OutputSpec `json:"output,omitempty"`
}

// WaveformSpec is a single-neuron transient simulation (Figs. 3, 4).
type WaveformSpec struct {
	// Neuron is the circuit: "ah" (axon-hillock) or "iaf".
	Neuron string `json:"neuron"`
	// StopS and StepS are the transient horizon and solver step, in
	// seconds.
	StopS float64 `json:"stop_s"`
	StepS float64 `json:"step_s"`
	// Stride thins the stored trace: every Stride-th sample becomes one
	// CSV row (0 or 1 keeps them all).
	Stride int `json:"stride,omitempty"`
	// Signals are the node voltages recorded after the time column.
	Signals []string `json:"signals"`
	// Summary, when present, prints one derived measurement.
	Summary *WaveformSummary `json:"summary,omitempty"`
}

// WaveformSummary is the entry's printed one-line measurement.
type WaveformSummary struct {
	// Kind is "spikes" (count + steady period above a level) or
	// "first-crossing" (latency to a rising level + peak).
	Kind string `json:"kind"`
	// Signal names the measured node.
	Signal string `json:"signal"`
	// Threshold is the absolute crossing level in volts; alternatively
	// ThresholdFracVDD expresses it as a fraction of the circuit's VDD.
	Threshold        float64 `json:"threshold,omitempty"`
	ThresholdFracVDD float64 `json:"threshold_frac_vdd,omitempty"`
}

// RecipeRef names one circuit-characterization sweep from the
// neuron recipe registry (neuron.RecipeNames).
type RecipeRef struct {
	// Recipe selects the sweep family.
	Recipe string `json:"recipe"`
	// Xs are the swept independent values.
	Xs []float64 `json:"xs"`
	// VDD fixes the supply for sweeps whose axis is not the supply.
	VDD float64 `json:"vdd,omitempty"`
	// WindowS is the sampling window in seconds for dummy-count sweeps.
	WindowS float64 `json:"window_s,omitempty"`
}

// ScenarioSpec is a declarative core.Scenario: an attack family swept
// over axis grids, replayed against defense columns, with the
// dummy-neuron detector judging alongside.
type ScenarioSpec struct {
	// Name labels streamed records; empty derives it from the attack.
	Name string `json:"name,omitempty"`
	// Attack is the paper's attack number (1-5).
	Attack int `json:"attack"`
	// ChangesPc sweeps the parameter change in percent (attacks 1-4).
	// Each value is a plain number or a vdd_equivalent object resolving
	// through the circuit transfer curves.
	ChangesPc []AxisValue `json:"changes_pc,omitempty"`
	// FractionsPc sweeps layer coverage in percent (attacks 2-3).
	FractionsPc []float64 `json:"fractions_pc,omitempty"`
	// VDDs sweeps the supply (attack 5).
	VDDs []float64 `json:"vdds,omitempty"`
	// Neuron selects the transfer curves for attack 5 ("ah" | "iaf").
	Neuron string `json:"neuron,omitempty"`
	// MaskSeed fixes which neurons partial-layer glitches hit; 0 keeps
	// the campaign default so fractions nest across entry points.
	MaskSeed int64 `json:"mask_seed,omitempty"`
	// Defenses are the hardened replay columns (undefended is implicit).
	Defenses []DefenseSpec `json:"defenses,omitempty"`
	// Detector, when present, judges every coordinate.
	Detector *DetectorSpec `json:"detector,omitempty"`
	// Variation expands every attack-5 supply coordinate into one cell
	// per mismatch quantile (core.VariationAxis).
	Variation *VariationSpec `json:"variation,omitempty"`
}

// VariationSpec adds the process-variation axis to an attack-5 sweep:
// the threshold transfer curve is shifted to each listed quantile of a
// normal mismatch distribution with the given relative sigma.
type VariationSpec struct {
	// RelSigmaPc is the relative threshold sigma in percent (100·σ/μ),
	// anchored on the suite's montecarlo entry.
	RelSigmaPc float64 `json:"rel_sigma_pc"`
	// QuantilesPc are the sampled quantiles in percent (e.g. 5, 50, 95).
	QuantilesPc []float64 `json:"quantiles_pc"`
}

// MonteCarloSpec is a pooled mismatch characterization of the inverter
// switching threshold (neuron.MonteCarlo on the Characterizer): N
// content-addressed samples, printed spread/quantile/false-positive
// summaries, and one CSV row per sample.
type MonteCarloSpec struct {
	// N is the number of mismatch samples.
	N int `json:"n"`
	// SigmaVthV is the per-device threshold-voltage sigma in volts;
	// 0 keeps the 65nm-class default (15 mV).
	SigmaVthV float64 `json:"sigma_vth_v,omitempty"`
	// Seed is the sample-stream base seed; 0 keeps the default (1).
	Seed int64 `json:"seed,omitempty"`
	// VDD is the supply; 0 keeps nominal (1.0 V).
	VDD float64 `json:"vdd,omitempty"`
	// TriggerPc, when >0, prints the detector false-positive rate at
	// this count-deviation trigger.
	TriggerPc float64 `json:"trigger_pc,omitempty"`
	// QuantilesPc, when present, prints these threshold quantiles.
	QuantilesPc []float64 `json:"quantiles_pc,omitempty"`
}

// AxisValue is one changes_pc entry: either a literal percent change
// or the change equivalent to a supply excursion, resolved through the
// named circuit's VDD→threshold transfer curve.
type AxisValue struct {
	Value         float64
	VDDEquivalent *VDDEquivalent
}

// VDDEquivalent resolves to 100·(ThresholdRatio(neuron).At(vdd) − 1).
type VDDEquivalent struct {
	Neuron string  `json:"neuron"`
	VDD    float64 `json:"vdd"`
}

// UnmarshalJSON accepts a bare number or {"vdd_equivalent": {...}}.
func (a *AxisValue) UnmarshalJSON(data []byte) error {
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) == 0 || trimmed[0] != '{' {
		return json.Unmarshal(data, &a.Value)
	}
	var obj struct {
		VDDEquivalent *VDDEquivalent `json:"vdd_equivalent"`
	}
	if err := strictUnmarshal(data, &obj); err != nil {
		return err
	}
	if obj.VDDEquivalent == nil {
		return fmt.Errorf("axis value object needs a vdd_equivalent field")
	}
	a.VDDEquivalent = obj.VDDEquivalent
	return nil
}

// MarshalJSON round-trips the two forms.
func (a AxisValue) MarshalJSON() ([]byte, error) {
	if a.VDDEquivalent != nil {
		return json.Marshal(map[string]*VDDEquivalent{"vdd_equivalent": a.VDDEquivalent})
	}
	return json.Marshal(a.Value)
}

// DefenseSpec names one hardened replay column.
type DefenseSpec struct {
	// Kind is robust-driver | bandgap | sizing | comparator.
	Kind string `json:"kind"`
	// ResidualPc is robust-driver's remaining amplitude error in percent.
	ResidualPc float64 `json:"residual_pc,omitempty"`
	// Neuron selects bandgap's threshold curve ("ah" | "iaf").
	Neuron string `json:"neuron,omitempty"`
	// WLMultiple is sizing's MP1 W/L relative to baseline.
	WLMultiple float64 `json:"wl_multiple,omitempty"`
}

// DetectorSpec configures the dummy-neuron detector. Zero overrides
// keep the paper's configuration (100 ms window, ±10% trigger).
type DetectorSpec struct {
	Neuron      string  `json:"neuron"`
	WindowMs    float64 `json:"window_ms,omitempty"`
	ThresholdPc float64 `json:"threshold_pc,omitempty"`
}

// WeightFaultSpec mirrors core.WeightFaultSpec as suite data.
type WeightFaultSpec struct {
	Scale        float64 `json:"scale"`
	Fraction     float64 `json:"fraction"`
	EveryNImages int     `json:"every_n_images,omitempty"`
	Seed         int64   `json:"seed,omitempty"`
}

// LearningRateFaultSpec mirrors core.LearningRateFaultSpec.
type LearningRateFaultSpec struct {
	Scale float64 `json:"scale"`
}

// DetectionSpec sweeps the dummy-neuron detector over a supply range
// for each listed neuron flavor (Fig. 10c).
type DetectionSpec struct {
	Neurons []string  `json:"neurons"`
	VDDs    []float64 `json:"vdds"`
}

// CoverageSpec runs the black-box attack over a supply sweep and
// checks each point against the detector (experiment D3).
type CoverageSpec struct {
	Neuron string    `json:"neuron"`
	VDDs   []float64 `json:"vdds"`
	// DamageThresholdPc defines a blind spot: relative accuracy change
	// below this with the detector silent (0 counts any degradation).
	DamageThresholdPc float64 `json:"damage_threshold_pc,omitempty"`
}

// OverheadSpec renders the defense power/area overhead table (D1).
type OverheadSpec struct {
	// Neurons is the system size, PerLayer the layer organization.
	Neurons  int `json:"neurons"`
	PerLayer int `json:"per_layer"`
	// Amortize additionally prints the shared-bandgap area overhead at
	// these system sizes.
	Amortize []int `json:"amortize,omitempty"`
}

// OutputSpec renders an entry's series as a CSV artifact.
type OutputSpec struct {
	// CSV is the file name under the output directory. Detection
	// entries with several neuron flavors use a "{neuron}" placeholder.
	CSV string `json:"csv"`
	// Header is written verbatim as the first line.
	Header string `json:"header"`
	// Columns compute circuit-entry values per sweep row.
	Columns []ColumnSpec `json:"columns,omitempty"`
	// Fields select scenario/extension row values by name (see
	// DESIGN.md's field vocabulary).
	Fields []string `json:"fields,omitempty"`
	// Pivot renders a variation scenario with one row per supply and
	// one column per (field, quantile) pair instead of one row per cell.
	Pivot *PivotSpec `json:"pivot,omitempty"`
}

// PivotSpec reshapes a variation scenario's cells into distributional
// rows: each supply coordinate becomes one row of vdd_v followed by
// every listed field evaluated at each variation quantile in axis
// order (field-major, quantile-minor) — the p5/p50/p95 figure layout.
type PivotSpec struct {
	// Fields are the pivoted values: accuracy_pc | rel_change_pc |
	// detected.
	Fields []string `json:"fields"`
}

// ColumnSpec computes one circuit-series CSV column.
type ColumnSpec struct {
	// From is x | y | delta-pc | anchor-pc.
	From string `json:"from"`
	// Series indexes the entry's circuit list (default 0).
	Series int `json:"series,omitempty"`
	// Scale multiplies x/y values (0 means 1; e.g. 1e9 renders nA).
	Scale float64 `json:"scale,omitempty"`
	// RefSeries/RefIndex locate delta-pc's reference point; RefSeries
	// defaults to Series.
	RefSeries *int `json:"ref_series,omitempty"`
	RefIndex  int  `json:"ref_index,omitempty"`
	// Anchor evaluates a published transfer curve at the row's x.
	Anchor *AnchorSpec `json:"anchor,omitempty"`
}

// AnchorSpec is a paper-anchored reference column: the percent change
// the published transfer curves predict at the row's x value.
type AnchorSpec struct {
	// Curve is driver-amplitude | tts-vs-vdd | sizing-residual.
	Curve string `json:"curve"`
	// Neuron selects the flavor for tts-vs-vdd.
	Neuron string `json:"neuron,omitempty"`
	// VDD is sizing-residual's fixed supply (the row's x is the W/L).
	VDD float64 `json:"vdd,omitempty"`
}

// strictUnmarshal decodes one JSON value rejecting unknown fields.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after value")
	}
	return nil
}

// Decode reads one suite, strictly. Unknown fields anywhere are
// errors; entry-level problems are reported with the entry's index and
// ID so a 21-entry file pinpoints the broken one.
func Decode(r io.Reader) (*Suite, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	// Two-pass decode: the envelope first with raw entries, then each
	// entry on its own strict decoder, so an unknown field inside entry
	// 13 names entry 13 instead of the whole file.
	var shadow struct {
		Name        string            `json:"name"`
		Description string            `json:"description"`
		Network     *NetworkSpec      `json:"network"`
		Entries     []json.RawMessage `json:"entries"`
	}
	if err := strictUnmarshal(data, &shadow); err != nil {
		return nil, fmt.Errorf("suite: %w", err)
	}
	s := &Suite{Name: shadow.Name, Description: shadow.Description, Network: shadow.Network}
	s.Entries = make([]Entry, len(shadow.Entries))
	for i, raw := range shadow.Entries {
		if err := strictUnmarshal(raw, &s.Entries[i]); err != nil {
			id := s.Entries[i].ID
			if id == "" {
				// The strict decode may fail before reaching the id
				// field; recover it leniently for the error message.
				var probe struct {
					ID string `json:"id"`
				}
				_ = json.Unmarshal(raw, &probe)
				id = probe.ID
			}
			return nil, fmt.Errorf("suite: entry %d (%s): %w", i, orUnnamed(id), err)
		}
	}
	return s, nil
}

// Load reads and strictly decodes a suite file.
func Load(path string) (*Suite, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

func orUnnamed(id string) string {
	if id == "" {
		return "unnamed"
	}
	return id
}
