package suite

import (
	"snnfi/internal/core"
)

// Suite-level cell enumeration: the campaign service answers "how far
// along is this suite?" by comparing the cells the suite would compute
// against a store manifest — without building networks or touching
// SPICE. Scenario entries are the shardable network tier; other entry
// kinds (waveforms, circuit sweeps, weight faults) run locally in the
// coordinator and are deliberately outside this audit.

// CellRef is one network-tier cell a suite would compute, attributed
// to the entry that compiles it ("" for the shared attack-free
// baseline every scenario reuses).
type CellRef struct {
	Entry   string `json:"entry"`
	Desc    string `json:"desc"`
	Key     string `json:"key"`
	Present bool   `json:"present"`
}

// AuditCells compiles every scenario entry of the suite and reports
// each distinct network cell's standing against held (a membership
// predicate over a store manifest, core.HeldSet). Pure key arithmetic:
// nothing is trained, the corpus is loaded only for its fingerprint.
// The shared baseline appears exactly once, first; after it, cells
// follow entry order then compile order, so the listing is
// deterministic and directly shardable.
func (r *Runner) AuditCells(held func(key string) bool) ([]CellRef, error) {
	if err := r.Suite.Validate(); err != nil {
		return nil, err
	}
	cfg, images := r.Config()
	e, err := core.NewExperiment(r.DataDir, images, cfg)
	if err != nil {
		return nil, err
	}
	var cells []CellRef
	seen := map[string]bool{}
	for i := range r.Suite.Entries {
		en := &r.Suite.Entries[i]
		if en.Scenario == nil {
			continue
		}
		scn, err := en.Scenario.Compile()
		if err != nil {
			return nil, err
		}
		audit, err := e.AuditScenario(scn, held)
		if err != nil {
			return nil, err
		}
		for j, c := range audit.Cells {
			if seen[c.Key] {
				continue
			}
			seen[c.Key] = true
			entry := en.ID
			if j == 0 { // the shared baseline leads every scenario audit
				entry = ""
			}
			cells = append(cells, CellRef{Entry: entry, Desc: c.Desc, Key: c.Key, Present: c.Present})
		}
	}
	return cells, nil
}
