package defense

import (
	"math"
	"testing"

	"snnfi/internal/core"
	"snnfi/internal/xfer"
)

func attack5Plan() *core.FaultPlan { return core.NewAttack5(0.8, xfer.IAF) }

func findFault(p *core.FaultPlan, layer core.Layer) (core.FaultSpec, bool) {
	for _, f := range p.Faults {
		if f.Layer == layer {
			return f, true
		}
	}
	return core.FaultSpec{}, false
}

func TestRobustDriverNeutralizesDriverFault(t *testing.T) {
	plan := attack5Plan()
	hardened := RobustDriver{ResidualPc: 0.1}.Harden(plan)
	f, ok := findFault(hardened, core.Drivers)
	if !ok {
		t.Fatal("driver fault missing from hardened plan")
	}
	if math.Abs(f.Scale-0.999) > 1e-9 {
		t.Fatalf("hardened driver scale = %v, want 0.999", f.Scale)
	}
	// Threshold faults untouched.
	thr, _ := findFault(hardened, core.Inhibitory)
	orig, _ := findFault(plan, core.Inhibitory)
	if thr.Scale != orig.Scale {
		t.Fatal("robust driver must not alter threshold faults")
	}
}

func TestHardenDoesNotMutateOriginal(t *testing.T) {
	plan := attack5Plan()
	before := make([]core.FaultSpec, len(plan.Faults))
	copy(before, plan.Faults)
	BandgapThreshold{Kind: xfer.IAF}.Harden(plan)
	for i := range before {
		if plan.Faults[i] != before[i] {
			t.Fatal("Harden mutated the input plan")
		}
	}
}

func TestBandgapCollapsesThresholdFault(t *testing.T) {
	plan := attack5Plan()
	hardened := BandgapThreshold{Kind: xfer.IAF}.Harden(plan)
	for _, layer := range []core.Layer{core.Excitatory, core.Inhibitory} {
		f, ok := findFault(hardened, layer)
		if !ok {
			t.Fatalf("%v fault missing", layer)
		}
		if dev := math.Abs(f.Scale - 1); dev > 0.01 {
			t.Fatalf("%v residual %v, want ≤1%% (bandgap ±0.56%%)", layer, dev)
		}
	}
	// Driver fault untouched by the threshold defense.
	d, _ := findFault(hardened, core.Drivers)
	if math.Abs(d.Scale-0.68) > 1e-9 {
		t.Fatal("bandgap must not alter driver faults")
	}
}

func TestSizingAttenuatesThresholdFault(t *testing.T) {
	plan := core.NewAttack4(xfer.ThresholdRatio(xfer.AxonHillock).At(0.8))
	hardened := Sizing{WLMultiple: 32}.Harden(plan)
	f, _ := findFault(hardened, core.Inhibitory)
	// Fig. 9c: ×32 leaves −5.23% at 0.8 V versus −17.91% undefended.
	if math.Abs(f.Scale-(1-0.0523)) > 1e-6 {
		t.Fatalf("hardened scale = %v, want 0.9477", f.Scale)
	}
	weaker := Sizing{WLMultiple: 2}.Harden(plan)
	f2, _ := findFault(weaker, core.Inhibitory)
	if math.Abs(f2.Scale-1) <= math.Abs(f.Scale-1) {
		t.Fatal("smaller upsizing must leave a larger residual")
	}
}

func TestComparatorNeuronLikeBandgap(t *testing.T) {
	plan := core.NewAttack4(xfer.ThresholdRatio(xfer.AxonHillock).At(0.8))
	hardened := ComparatorNeuron{}.Harden(plan)
	f, _ := findFault(hardened, core.Excitatory)
	if dev := math.Abs(f.Scale - 1); dev > 0.01 {
		t.Fatalf("comparator residual %v, want ≤1%%", dev)
	}
}

func TestDefenseNames(t *testing.T) {
	names := map[string]Defense{
		"robust-current-driver":       RobustDriver{},
		"bandgap-threshold-reference": BandgapThreshold{},
		"transistor-sizing-32x":       Sizing{WLMultiple: 32},
		"comparator-neuron":           ComparatorNeuron{},
	}
	for want, d := range names {
		if d.Name() != want {
			t.Fatalf("Name() = %q, want %q", d.Name(), want)
		}
	}
}

func TestDetectorNominalQuiet(t *testing.T) {
	for _, kind := range []xfer.NeuronKind{xfer.AxonHillock, xfer.IAF} {
		det := NewDetector(kind)
		v := det.Check(1.0)
		if v.Detected {
			t.Fatalf("%v: nominal supply must not trigger: %v", kind, v)
		}
		if v.DeviationPc != 0 {
			t.Fatalf("%v: nominal deviation = %v", kind, v.DeviationPc)
		}
	}
}

func TestDetectorFlagsLargeGlitches(t *testing.T) {
	for _, kind := range []xfer.NeuronKind{xfer.AxonHillock, xfer.IAF} {
		det := NewDetector(kind)
		for _, vdd := range []float64{0.8, 1.2} {
			if v := det.Check(vdd); !v.Detected {
				t.Fatalf("%v: ±20%% glitch must be detected: %v", kind, v)
			}
		}
	}
}

func TestDetectorCountDirection(t *testing.T) {
	// Lower VDD → lower threshold → faster firing → more spikes.
	det := NewDetector(xfer.AxonHillock)
	low := det.ExpectedCount(0.8)
	nom := det.ExpectedCount(1.0)
	high := det.ExpectedCount(1.2)
	if !(low > nom && nom > high) {
		t.Fatalf("count ordering wrong: %d / %d / %d", low, nom, high)
	}
}

func TestDetectionSweepShape(t *testing.T) {
	det := NewDetector(xfer.IAF)
	sweep := det.DetectionSweep([]float64{0.8, 1.0, 1.2})
	if len(sweep) != 3 {
		t.Fatalf("sweep length %d", len(sweep))
	}
	if !sweep[0].Detected || sweep[1].Detected || !sweep[2].Detected {
		t.Fatalf("sweep verdicts wrong: %v", sweep)
	}
}

func TestVerdictString(t *testing.T) {
	det := NewDetector(xfer.AxonHillock)
	s := det.Check(0.8).String()
	if s == "" || !contains(s, "ATTACK DETECTED") {
		t.Fatalf("verdict string = %q", s)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
