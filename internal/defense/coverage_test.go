package defense

import (
	"testing"

	"snnfi/internal/core"
	"snnfi/internal/snn"
	"snnfi/internal/xfer"
)

func coverageExperiment(t *testing.T) *core.Experiment {
	t.Helper()
	cfg := snn.DefaultConfig()
	cfg.NExc, cfg.NInh = 40, 40
	cfg.Steps = 150
	e, err := core.NewExperiment("", 300, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestDetectionCoverageNoBlindSpots(t *testing.T) {
	// The system-level defense claim: every VDD excursion that damages
	// the classifier is flagged by the dummy-neuron detector.
	e := coverageExperiment(t)
	det := NewDetector(xfer.IAF)
	rows, err := DetectionCoverage(e, det, []float64{0.8, 1.0, 1.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	blind := UncoveredDamage(rows, -10)
	if len(blind) != 0 {
		t.Fatalf("detector blind spots: %v", blind)
	}
	// The 0.8 V point must be both damaging and detected.
	if rows[0].RelChangePc > -50 {
		t.Fatalf("VDD=0.8 should be damaging, got %+.1f%%", rows[0].RelChangePc)
	}
	if !rows[0].Verdict.Detected {
		t.Fatal("VDD=0.8 must be detected")
	}
	// Nominal point: harmless and quiet.
	if rows[1].Verdict.Detected {
		t.Fatal("nominal supply must not trigger the detector")
	}
}

func TestCoverageRowSemantics(t *testing.T) {
	harmlessQuiet := CoverageRow{RelChangePc: -1}
	if !harmlessQuiet.Covered(-10) {
		t.Fatal("harmless + quiet is covered")
	}
	damagingQuiet := CoverageRow{RelChangePc: -50}
	if damagingQuiet.Covered(-10) {
		t.Fatal("damaging + quiet is a blind spot")
	}
	damagingFlagged := CoverageRow{RelChangePc: -50, Verdict: Verdict{Detected: true}}
	if !damagingFlagged.Covered(-10) {
		t.Fatal("damaging + flagged is covered")
	}
	if damagingQuiet.String() == "" {
		t.Fatal("empty row rendering")
	}
}

func TestUncoveredDamageFilters(t *testing.T) {
	rows := []CoverageRow{
		{VDD: 0.8, RelChangePc: -80},
		{VDD: 0.9, RelChangePc: -80, Verdict: Verdict{Detected: true}},
		{VDD: 1.0, RelChangePc: 0},
	}
	blind := UncoveredDamage(rows, -10)
	if len(blind) != 1 || blind[0].VDD != 0.8 {
		t.Fatalf("blind spots = %v", blind)
	}
}
