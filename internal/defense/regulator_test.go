package defense

import (
	"testing"

	"snnfi/internal/core"
	"snnfi/internal/snn"
)

// TestLearningRateRegulatorMatrix runs an extension learning-rate cell
// undefended and behind the regulator hardening in one matrix. The
// assertions are exact rather than directional (at test scale the
// accuracy impact of a rate fault is noisy): a regulator with zero
// residual holds the rates at nominal — the defended cell must train
// to the attack-free baseline bit for bit — and the defended column
// must be the same content-addressed cell a direct run of the hardened
// spec produces, so replaying it retrains nothing.
func TestLearningRateRegulatorMatrix(t *testing.T) {
	cfg := snn.DefaultConfig()
	cfg.NExc, cfg.NInh = 16, 16
	cfg.Steps = 60
	e, err := core.NewExperiment("", 40, cfg)
	if err != nil {
		t.Fatal(err)
	}

	reg := LearningRateRegulator{ResidualPc: 0}
	spec := core.LearningRateFaultSpec{Scale: 0.2}
	pts, err := e.RunLearningRateFaultMatrix(
		[]core.LearningRateFaultSpec{spec},
		[]core.Hardening{reg},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d matrix cells, want undefended + defended", len(pts))
	}
	undef, def := pts[0], pts[1]
	if undef.Defense != "" || def.Defense != "learning-rate-regulator" {
		t.Fatalf("defense columns wrong: %q / %q", undef.Defense, def.Defense)
	}
	// Zero residual means the surviving rate scale is exactly 1 — an
	// identity corruption — so the defended training run IS the
	// attack-free run.
	if def.Result.Accuracy != def.Result.Baseline || def.Result.RelChangePc != 0 {
		t.Fatalf("zero-residual regulator should recover the baseline exactly, got %+v", *def.Result)
	}

	// The defended cell is canonical: directly running the hardened
	// spec is served from the matrix's cache without retraining.
	trained := e.TrainCount()
	direct, err := e.RunLearningRateFault(reg.HardenLearningRateFault(spec))
	if err != nil {
		t.Fatal(err)
	}
	if e.TrainCount() != trained {
		t.Fatal("direct hardened replay retrained: matrix cells are not canonically addressed")
	}
	if direct.Accuracy != def.Result.Accuracy {
		t.Fatal("direct hardened run disagrees with the matrix cell")
	}

	// A partial residual attenuates rather than erases.
	hs := LearningRateRegulator{ResidualPc: 10}.HardenLearningRateFault(spec)
	if want := 1 + (spec.Scale-1)*10/100; hs.Scale != want {
		t.Fatalf("10%% residual scale = %v, want %v", hs.Scale, want)
	}

	// The plan-side Harden is a pass-through: a threshold attack is not
	// programming-peripheral state.
	plan := core.NewAttack3(0.8, 1, 1)
	if got := reg.Harden(plan); got != plan {
		t.Fatal("Harden must pass plan faults through unchanged")
	}

	// A defense without learning-rate support is rejected, not silently
	// skipped.
	if _, err := e.RunLearningRateFaultMatrix(
		[]core.LearningRateFaultSpec{spec},
		[]core.Hardening{RobustDriver{ResidualPc: 0.1}},
	); err == nil {
		t.Fatal("plan-only defense must be rejected for learning-rate cells")
	}
}
