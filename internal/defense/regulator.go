package defense

import (
	"snnfi/internal/core"
)

// LearningRateRegulator is the defense analogue for the extension
// learning-rate experiments (core.LearningRateFaultSpec): a local
// regulator on the weight-programming peripheral holds the programming
// pulse energy — and with it the effective STDP rates — near nominal
// while the shared supply is glitched. Like the bandgap reference of
// §V-B1 it is not perfect: ResidualPc models the surviving rate
// excursion as a percentage of the injected one (0 = ideal regulation,
// 100 = no regulator at all).
//
// As a core.Hardening it leaves plan-based attacks untouched —
// regulating the programming supply does nothing for threshold or
// driver faults — and as a core.LearningRateFaultHardening it
// attenuates the rate scale of learning-rate cells, so it can be
// listed in a learning-rate matrix (core.RunLearningRateFaultMatrix)
// like any paper defense in a scenario.
type LearningRateRegulator struct {
	// ResidualPc is the surviving rate excursion in percent of the
	// injected one.
	ResidualPc float64
}

// Name implements core.Hardening.
func (LearningRateRegulator) Name() string { return "learning-rate-regulator" }

// Harden implements core.Hardening: plan faults (thresholds, drivers)
// are not programming-peripheral state and pass through unchanged.
func (LearningRateRegulator) Harden(plan *core.FaultPlan) *core.FaultPlan { return plan }

// HardenLearningRateFault implements core.LearningRateFaultHardening:
// the rate scale collapses toward nominal, leaving the residual
// excursion.
func (r LearningRateRegulator) HardenLearningRateFault(s core.LearningRateFaultSpec) core.LearningRateFaultSpec {
	s.Scale = 1 + (s.Scale-1)*r.ResidualPc/100
	return s
}

var _ core.LearningRateFaultHardening = LearningRateRegulator{}
