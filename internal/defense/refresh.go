package defense

import (
	"snnfi/internal/core"
)

// WeightRefresh is the defense analogue for the extension weight-fault
// experiments (core.WeightFaultSpec): the synapse array is periodically
// reprogrammed from the digital shadow copy the training algorithm
// already maintains, so conductance drift accumulated since the last
// refresh is erased. Only the drift landing between a corruption event
// and the next refresh survives; ResidualPc models that surviving
// excursion as a percentage of the injected one (0 = refresh beats
// every drift event, 100 = no refresh at all).
//
// As a core.Hardening it leaves plan-based attacks untouched —
// reprogramming synapses does nothing for threshold or driver faults —
// and as a core.WeightFaultHardening it attenuates the drift scale of
// weight-fault cells, so it can be listed in a weight-fault matrix
// (core.RunWeightFaultMatrix) like any paper defense in a scenario.
type WeightRefresh struct {
	// ResidualPc is the surviving drift excursion in percent of the
	// injected one.
	ResidualPc float64
}

// Name implements core.Hardening.
func (WeightRefresh) Name() string { return "weight-refresh" }

// Harden implements core.Hardening: plan faults (thresholds, drivers)
// are not synaptic state and pass through unchanged.
func (WeightRefresh) Harden(plan *core.FaultPlan) *core.FaultPlan { return plan }

// HardenWeightFault implements core.WeightFaultHardening: the drift
// scale collapses toward nominal, leaving the residual excursion.
func (r WeightRefresh) HardenWeightFault(s core.WeightFaultSpec) core.WeightFaultSpec {
	s.Scale = 1 + (s.Scale-1)*r.ResidualPc/100
	return s
}

var _ core.WeightFaultHardening = WeightRefresh{}
