// Package defense implements the paper's countermeasures (§V) and the
// machinery to evaluate them: each defense is a transformation on a
// fault plan that models how the hardened circuit attenuates the
// injected parameter corruption, so the identical attack campaign can
// be replayed against defended and undefended models.
//
// Defenses:
//   - RobustDriver (§V-A, Fig. 9b): op-amp-regulated current source;
//     driver amplitude becomes supply-independent.
//   - BandgapThreshold (§V-B1): the I&F threshold reference comes from
//     a bandgap instead of a VDD divider; residual ±0.56%.
//   - Sizing (§V-B2, Fig. 9c): upsized AH first-inverter PMOS limits the
//     threshold shift (−18.01% → −5.23% at 0.8 V for 32:1).
//   - ComparatorNeuron (§V-B2, Fig. 10a): AH first inverter replaced by
//     a bandgap-referenced comparator; threshold decoupled from VDD.
//   - DummyNeuronDetector (§V-C, Fig. 10b/c): per-layer canary neuron
//     whose output spike count shifts under local VDD glitches;
//     deviation ≥10% flags an attack.
package defense

import (
	"fmt"

	"snnfi/internal/core"
	"snnfi/internal/xfer"
)

// Defense hardens a fault plan: it returns the plan that results when
// the same physical attack hits the defended circuit. The interface is
// identical to core.Hardening, so any Defense can be listed as a
// scenario's defended column (core.Scenario.Defenses) directly.
type Defense interface {
	// Name identifies the defense in reports.
	Name() string
	// Harden maps an attack plan onto the defended implementation.
	Harden(plan *core.FaultPlan) *core.FaultPlan
}

// Every defense doubles as a scenario hardening column.
var _ = []core.Hardening{
	RobustDriver{}, BandgapThreshold{}, Sizing{}, ComparatorNeuron{},
}

// clonePlan deep-copies a plan for mutation.
func clonePlan(p *core.FaultPlan, suffix string) *core.FaultPlan {
	out := &core.FaultPlan{Name: p.Name + "+" + suffix}
	out.Faults = append([]core.FaultSpec(nil), p.Faults...)
	return out
}

// RobustDriver is the regulated current driver: driver-amplitude faults
// are eliminated up to a small regulation residual.
type RobustDriver struct {
	// ResidualPc is the remaining amplitude error in percent across the
	// attack range (op-amp finite gain and channel-length modulation);
	// our spice model of Fig. 9b measures ≤0.1%.
	ResidualPc float64
}

// Name implements Defense.
func (RobustDriver) Name() string { return "robust-current-driver" }

// Harden implements Defense: driver faults collapse to the residual.
func (d RobustDriver) Harden(plan *core.FaultPlan) *core.FaultPlan {
	out := clonePlan(plan, "robust-driver")
	for i, f := range out.Faults {
		if f.Layer != core.Drivers {
			continue
		}
		direction := 1.0
		if f.Scale < 1 {
			direction = -1
		}
		out.Faults[i].Scale = 1 + direction*d.ResidualPc/100
	}
	return out
}

// BandgapThreshold replaces VDD-derived threshold references with a
// bandgap: threshold faults collapse to the bandgap's residual supply
// sensitivity (±0.56% over the swept range, §V-B1 citing [24]).
type BandgapThreshold struct {
	Kind xfer.NeuronKind // which circuit's VDD→threshold curve to invert
}

// Name implements Defense.
func (BandgapThreshold) Name() string { return "bandgap-threshold-reference" }

// Harden implements Defense.
func (d BandgapThreshold) Harden(plan *core.FaultPlan) *core.FaultPlan {
	out := clonePlan(plan, "bandgap")
	curve := xfer.ThresholdRatio(d.Kind)
	for i, f := range out.Faults {
		if f.Layer != core.Excitatory && f.Layer != core.Inhibitory {
			continue
		}
		// Recover the supply excursion that produced this threshold
		// scale, then apply the bandgap's residual at that VDD.
		vdd := curve.Inverse(f.Scale)
		out.Faults[i].Scale = xfer.BandgapResidualRatio(vdd)
	}
	return out
}

// Sizing is the Axon Hillock transistor-upsizing defense: threshold
// faults are attenuated to the residual shift of the enlarged device
// (Fig. 9c).
type Sizing struct {
	WLMultiple float64 // MP1 W/L relative to baseline (paper evaluates 32)
}

// Name implements Defense.
func (s Sizing) Name() string { return fmt.Sprintf("transistor-sizing-%gx", s.WLMultiple) }

// Harden implements Defense.
func (s Sizing) Harden(plan *core.FaultPlan) *core.FaultPlan {
	out := clonePlan(plan, s.Name())
	curve := xfer.ThresholdRatio(xfer.AxonHillock)
	for i, f := range out.Faults {
		if f.Layer != core.Excitatory && f.Layer != core.Inhibitory {
			continue
		}
		vdd := curve.Inverse(f.Scale)
		out.Faults[i].Scale = 1 + xfer.SizingResidualShift(vdd, s.WLMultiple)
	}
	return out
}

// ComparatorNeuron is the bandgap-referenced comparator replacement for
// the AH first inverter: like BandgapThreshold, the threshold decouples
// from VDD (our spice model of Fig. 10a measures ≤±0.7% across the
// attack range).
type ComparatorNeuron struct{}

// Name implements Defense.
func (ComparatorNeuron) Name() string { return "comparator-neuron" }

// Harden implements Defense.
func (ComparatorNeuron) Harden(plan *core.FaultPlan) *core.FaultPlan {
	out := clonePlan(plan, "comparator")
	curve := xfer.ThresholdRatio(xfer.AxonHillock)
	for i, f := range out.Faults {
		if f.Layer != core.Excitatory && f.Layer != core.Inhibitory {
			continue
		}
		vdd := curve.Inverse(f.Scale)
		out.Faults[i].Scale = xfer.BandgapResidualRatio(vdd)
	}
	return out
}
