package defense

import (
	"bytes"
	"testing"

	"snnfi/internal/core"
	"snnfi/internal/runner"
	"snnfi/internal/snn"
	"snnfi/internal/xfer"
)

// TestDefendedSweepThroughScenario is the acceptance matrix: Attack 5
// crossed with the 32× sizing defense, judged by the dummy-neuron
// detector, runs as one scenario whose records are byte-identical at
// -workers 1 and 4 with the defense and detected fields populated.
func TestDefendedSweepThroughScenario(t *testing.T) {
	cfg := snn.DefaultConfig()
	cfg.NExc, cfg.NInh = 16, 16
	cfg.Steps = 60
	e, err := core.NewExperiment("", 60, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := &core.Scenario{
		Name:     "attack5-sizing",
		Attack:   core.Attack5,
		Axes:     core.Axes{VDDs: []float64{0.8, 1.0}, Kind: xfer.AxonHillock},
		Defenses: []core.Hardening{Sizing{WLMultiple: 32}},
		Detector: NewDetector(xfer.AxonHillock),
	}
	var ref []core.SweepPoint
	var refJSONL []byte
	for _, workers := range []int{1, 4} {
		e.Cache = runner.NewMemoryCache[*core.Result]()
		e.Workers = workers
		var buf bytes.Buffer
		sink := runner.NewJSONLSink(&buf)
		e.Sinks = []runner.Sink{sink}
		pts, err := e.RunScenario(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
		if workers == 1 {
			ref, refJSONL = pts, buf.Bytes()
			continue
		}
		if !bytes.Equal(buf.Bytes(), refJSONL) {
			t.Fatalf("workers=%d: streamed JSONL differs from serial:\n%s\nvs\n%s",
				workers, buf.Bytes(), refJSONL)
		}
		for i := range pts {
			g, w := pts[i], ref[i]
			if g.VDD != w.VDD || g.Defense != w.Defense || g.Detected != w.Detected ||
				g.Result.Accuracy != w.Result.Accuracy ||
				g.Result.RelChangePc != w.Result.RelChangePc ||
				g.Result.Plan.Name != w.Result.Plan.Name {
				t.Fatalf("workers=%d: point %d differs: %+v vs %+v", workers, i, g, w)
			}
		}
	}
	if len(ref) != 4 { // 2 VDDs × (undefended + sizing)
		t.Fatalf("%d points, want 4", len(ref))
	}
	wantDefense := Sizing{WLMultiple: 32}.Name()
	if ref[0].Defense != "" || ref[1].Defense != wantDefense {
		t.Fatalf("defense columns wrong: %q, %q", ref[0].Defense, ref[1].Defense)
	}
	// The detector sees the physical glitch: 0.8 V flagged on both
	// columns, nominal 1.0 V silent.
	if !ref[0].Detected || !ref[1].Detected {
		t.Fatal("VDD=0.8 cells must be detected")
	}
	if ref[2].Detected || ref[3].Detected {
		t.Fatal("nominal-supply cells must stay silent")
	}
	if !bytes.Contains(refJSONL, []byte(`"defense":"`+wantDefense+`"`)) ||
		!bytes.Contains(refJSONL, []byte(`"detected":true`)) {
		t.Fatalf("records lack populated defense/detected fields:\n%s", refJSONL)
	}
	// Hardening must help: the defended 0.8 V cell cannot be worse
	// than the undefended one.
	if ref[1].Result.RelChangePc < ref[0].Result.RelChangePc {
		t.Fatalf("sizing made the attack worse: %+.2f%% vs %+.2f%%",
			ref[1].Result.RelChangePc, ref[0].Result.RelChangePc)
	}
}

// TestDetectorJudgesWhiteBoxCells: DetectorConfig recovers the implied
// supply excursion of threshold-only (Attack 4) and driver-only
// (Attack 1) plans and applies the paper's ±10% count rule.
func TestDetectorJudgesWhiteBoxCells(t *testing.T) {
	det := NewDetector(xfer.AxonHillock)

	deep := core.NewAttack4(xfer.ThresholdRatio(xfer.AxonHillock).At(0.8))
	if !det.Judge(core.SweepPoint{ScalePc: -18}, deep) {
		t.Fatal("a -18% threshold plan implies a 0.8 V glitch and must be flagged")
	}
	nominal := core.NewAttack4(1.0)
	if det.Judge(core.SweepPoint{}, nominal) {
		t.Fatal("a nominal-scale plan implies no glitch")
	}
	driver := core.NewAttack1(xfer.DriverAmplitudeRatio().At(0.8))
	if !det.Judge(core.SweepPoint{ScalePc: -20}, driver) {
		t.Fatal("a driver-amplitude plan implying 0.8 V must be flagged")
	}
	if det.Judge(core.SweepPoint{}, nil) {
		t.Fatal("a nil plan (baseline cell) must never be flagged")
	}
}
