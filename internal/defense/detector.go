package defense

import (
	"fmt"

	"snnfi/internal/core"
	"snnfi/internal/xfer"
)

// DetectorConfig parametrizes the dummy-neuron VFI detector (§V-C):
// one canary neuron per layer, driven by a fixed input-independent
// spike train; its output spike count over a sampling window is
// constant under nominal supply and shifts when the layer's local VDD
// is glitched.
type DetectorConfig struct {
	Kind xfer.NeuronKind
	// WindowMs is the sampling window (paper: 100 ms).
	WindowMs float64
	// ThresholdPc is the count-deviation trigger (paper: ≥10%).
	ThresholdPc float64
	// NominalPeriodUs is the dummy cell's firing period at VDD = 1 V in
	// microseconds; the circuit-level value comes from
	// neuron.DummyNeuron, and the behavioral default below matches it.
	NominalPeriodUs float64
}

// NewDetector returns the paper's detector configuration for a neuron
// flavor. The nominal firing periods come from our circuit simulation
// of the dummy cell (internal/neuron: ~10.8 µs for AH, ~43 µs for I&F
// under the 200 nA / 100 ns / 200 ns stimulus).
func NewDetector(kind xfer.NeuronKind) DetectorConfig {
	period := 10.8
	if kind == xfer.IAF {
		period = 43.0
	}
	return DetectorConfig{
		Kind:            kind,
		WindowMs:        100,
		ThresholdPc:     10,
		NominalPeriodUs: period,
	}
}

// ExpectedCount returns the dummy neuron's output spike count in the
// sampling window at the given supply: the firing period scales with
// the circuit's time-to-spike transfer (Fig. 6b/6c), so the count
// scales inversely.
func (d DetectorConfig) ExpectedCount(vdd float64) int {
	ratio := xfer.TimeToSpikeVsVDDRatio(d.Kind).At(vdd)
	period := d.NominalPeriodUs * ratio
	return int(d.WindowMs * 1000 / period)
}

// Verdict is one detection decision.
type Verdict struct {
	VDD         float64
	Count       int
	Nominal     int
	DeviationPc float64
	Detected    bool
}

func (v Verdict) String() string {
	state := "ok"
	if v.Detected {
		state = "ATTACK DETECTED"
	}
	return fmt.Sprintf("vdd=%.2f count=%d nominal=%d deviation=%+.1f%% → %s",
		v.VDD, v.Count, v.Nominal, v.DeviationPc, state)
}

// Check runs the detection rule against the dummy cell's count at the
// given (possibly glitched) local supply.
func (d DetectorConfig) Check(vdd float64) Verdict {
	nominal := d.ExpectedCount(1.0)
	count := d.ExpectedCount(vdd)
	dev := 100 * float64(count-nominal) / float64(nominal)
	detected := dev >= d.ThresholdPc || dev <= -d.ThresholdPc
	return Verdict{VDD: vdd, Count: count, Nominal: nominal, DeviationPc: dev, Detected: detected}
}

// DetectionSweep evaluates the detector over a supply sweep (Fig. 10c).
func (d DetectorConfig) DetectionSweep(vdds []float64) []Verdict {
	out := make([]Verdict, 0, len(vdds))
	for _, v := range vdds {
		out = append(out, d.Check(v))
	}
	return out
}

// DetectorConfig judges scenario cells alongside the attack matrix.
var _ core.CellJudge = DetectorConfig{}

// Judge implements core.CellJudge: it recovers the local supply
// excursion the attack cell implies and runs the detection rule at
// that VDD. Black-box cells carry the supply directly in their sweep
// coordinate; white-box cells imply it through the circuit transfer
// curves — the VDD that would have produced the injected threshold
// (or, for driver-only attacks, amplitude) corruption. Cells implying
// no supply excursion (an ad-hoc nil plan, a pure baseline) are never
// flagged.
func (d DetectorConfig) Judge(p core.SweepPoint, plan *core.FaultPlan) bool {
	vdd, ok := impliedVDD(d.Kind, p, plan)
	if !ok {
		return false
	}
	return d.Check(vdd).Detected
}

// impliedVDD recovers the supply excursion behind one attack cell.
func impliedVDD(kind xfer.NeuronKind, p core.SweepPoint, plan *core.FaultPlan) (float64, bool) {
	if p.VDD != 0 {
		return p.VDD, true
	}
	if plan == nil {
		return 0, false
	}
	for _, f := range plan.Faults {
		if f.Layer == core.Excitatory || f.Layer == core.Inhibitory {
			return xfer.ThresholdRatio(kind).Inverse(f.Scale), true
		}
	}
	for _, f := range plan.Faults {
		if f.Layer == core.Drivers {
			return xfer.DriverAmplitudeRatio().Inverse(f.Scale), true
		}
	}
	return 0, false
}
