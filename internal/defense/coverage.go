package defense

import (
	"fmt"

	"snnfi/internal/core"
)

// CoverageRow relates, for one supply excursion, the damage the
// black-box attack does to the classifier and whether the dummy-neuron
// detector would have flagged the glitch — the system-level question
// §V-C leaves implicit: does the detector cover every configuration
// that actually hurts?
type CoverageRow struct {
	VDD         float64
	RelChangePc float64
	Verdict     Verdict
}

// Covered reports whether the row is safe: either the attack is
// harmless (relative change above damageThresholdPc) or the detector
// fires.
func (r CoverageRow) Covered(damageThresholdPc float64) bool {
	return r.RelChangePc >= damageThresholdPc || r.Verdict.Detected
}

func (r CoverageRow) String() string {
	return fmt.Sprintf("vdd=%.2f accuracy %+7.2f%% | %s", r.VDD, r.RelChangePc, r.Verdict)
}

// DetectionCoverage runs the black-box attack (Attack 5) across a VDD
// sweep and checks each point against the detector. It returns one row
// per supply point.
func DetectionCoverage(e *core.Experiment, det DetectorConfig, vdds []float64) ([]CoverageRow, error) {
	rows := make([]CoverageRow, 0, len(vdds))
	for _, vdd := range vdds {
		res, err := e.Run(core.NewAttack5(vdd, det.Kind))
		if err != nil {
			return nil, fmt.Errorf("defense: coverage at VDD=%.2f: %w", vdd, err)
		}
		rows = append(rows, CoverageRow{
			VDD:         vdd,
			RelChangePc: res.RelChangePc,
			Verdict:     det.Check(vdd),
		})
	}
	return rows, nil
}

// UncoveredDamage returns the rows where the attack degrades accuracy
// beyond the damage threshold yet the detector stays silent — the
// detector's blind spots.
func UncoveredDamage(rows []CoverageRow, damageThresholdPc float64) []CoverageRow {
	var out []CoverageRow
	for _, r := range rows {
		if !r.Covered(damageThresholdPc) {
			out = append(out, r)
		}
	}
	return out
}
