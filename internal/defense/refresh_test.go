package defense

import (
	"testing"

	"snnfi/internal/core"
	"snnfi/internal/snn"
)

// TestWeightRefreshMatrix runs an extension weight-fault cell
// undefended and behind the weight-refresh hardening in one matrix.
// The assertions are exact rather than directional (at test scale the
// accuracy impact of a drift is noisy): a refresh with zero residual
// erases the drift entirely — the defended cell must train to the
// attack-free baseline bit for bit — and the defended column must be
// the same content-addressed cell a direct run of the hardened spec
// produces, so replaying it retrains nothing.
func TestWeightRefreshMatrix(t *testing.T) {
	cfg := snn.DefaultConfig()
	cfg.NExc, cfg.NInh = 16, 16
	cfg.Steps = 60
	e, err := core.NewExperiment("", 40, cfg)
	if err != nil {
		t.Fatal(err)
	}

	refresh := WeightRefresh{ResidualPc: 0}
	spec := core.WeightFaultSpec{Scale: 0.3, Fraction: 0.5, EveryNImages: 5, Seed: 11}
	pts, err := e.RunWeightFaultMatrix(
		[]core.WeightFaultSpec{spec},
		[]core.Hardening{refresh},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d matrix cells, want undefended + defended", len(pts))
	}
	undef, def := pts[0], pts[1]
	if undef.Defense != "" || def.Defense != "weight-refresh" {
		t.Fatalf("defense columns wrong: %q / %q", undef.Defense, def.Defense)
	}
	// Zero residual means the surviving drift scale is exactly 1 — an
	// identity corruption — so the defended training run IS the
	// attack-free run.
	if def.Result.Accuracy != def.Result.Baseline || def.Result.RelChangePc != 0 {
		t.Fatalf("zero-residual refresh should recover the baseline exactly, got %+v", *def.Result)
	}

	// The defended cell is canonical: directly running the hardened
	// spec is served from the matrix's cache without retraining.
	trained := e.TrainCount()
	direct, err := e.RunWeightFault(refresh.HardenWeightFault(spec))
	if err != nil {
		t.Fatal(err)
	}
	if e.TrainCount() != trained {
		t.Fatal("direct hardened replay retrained: matrix cells are not canonically addressed")
	}
	if direct.Accuracy != def.Result.Accuracy {
		t.Fatal("direct hardened run disagrees with the matrix cell")
	}

	// A partial residual attenuates rather than erases.
	hs := WeightRefresh{ResidualPc: 10}.HardenWeightFault(spec)
	if want := 1 + (spec.Scale-1)*10/100; hs.Scale != want {
		t.Fatalf("10%% residual scale = %v, want %v", hs.Scale, want)
	}

	// The plan-side Harden is a pass-through: a threshold attack is not
	// synaptic state.
	plan := core.NewAttack3(0.8, 1, 1)
	if got := refresh.Harden(plan); got != plan {
		t.Fatal("Harden must pass plan faults through unchanged")
	}

	// A defense without weight-fault support is rejected, not silently
	// skipped.
	if _, err := e.RunWeightFaultMatrix(
		[]core.WeightFaultSpec{spec},
		[]core.Hardening{RobustDriver{ResidualPc: 0.1}},
	); err == nil {
		t.Fatal("plan-only defense must be rejected for weight-fault cells")
	}
}
