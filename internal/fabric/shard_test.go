package fabric

import (
	"sort"
	"testing"
)

// TestShardPartition: every geometry covers the key list exactly —
// disjoint shards, union equals the input, near-equal sizes — and the
// assignment is a pure function of (keys, shard, shards) so every
// worker derives it independently.
func TestShardPartition(t *testing.T) {
	keys := []string{"a", "b", "c", "d", "e", "f", "g"}
	for shards := 1; shards <= 9; shards++ {
		var union []string
		sizes := make([]int, shards)
		for i := 0; i < shards; i++ {
			part := Shard(keys, i, shards)
			sizes[i] = len(part)
			union = append(union, part...)
		}
		if len(union) != len(keys) {
			t.Fatalf("%d shards covered %d keys, want %d", shards, len(union), len(keys))
		}
		sorted := append([]string(nil), union...)
		sort.Strings(sorted)
		for i, k := range sorted {
			if k != keys[i] {
				t.Fatalf("%d shards: union = %v, want a permutation of %v", shards, union, keys)
			}
		}
		for _, n := range sizes {
			if n > (len(keys)+shards-1)/shards {
				t.Fatalf("%d shards: unbalanced sizes %v", shards, sizes)
			}
		}
	}
	if got := Shard(nil, 0, 2); len(got) != 0 {
		t.Fatalf("empty key list sharded to %v", got)
	}
}

func TestShardRejectsBadGeometry(t *testing.T) {
	for _, g := range []struct{ shard, shards int }{{0, 0}, {-1, 2}, {2, 2}, {5, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Shard(keys, %d, %d) must panic", g.shard, g.shards)
				}
			}()
			Shard([]string{"a"}, g.shard, g.shards)
		}()
	}
}
