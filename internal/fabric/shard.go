package fabric

// Shard assignment. Cells are pure functions of their content
// address, so distribution is scheduling, not correctness: any
// partition of the missing-cell list produces the same store contents
// once every worker finishes. Round-robin over the audit-ordered list
// is the simplest partition that is deterministic (every worker
// derives its own shard from the same audit, no coordination
// channel), covers every key exactly once, and balances well because
// neighboring cells cost about the same (one training each).

// Shard returns the subset of keys that worker `shard` of `shards`
// executes: keys[i] with i % shards == shard. Callers pass the
// missing-cell list in audit order; all shards together cover it
// exactly. Panics on an impossible geometry — a worker launched with
// a bad -shard flag must fail loudly, not quietly compute nothing.
func Shard(keys []string, shard, shards int) []string {
	if shards < 1 || shard < 0 || shard >= shards {
		panic("fabric: shard index out of range")
	}
	var out []string
	for i := shard; i < len(keys); i += shards {
		out = append(out, keys[i])
	}
	return out
}
