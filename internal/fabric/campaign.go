package fabric

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"

	"snnfi/internal/core"
	"snnfi/internal/runner"
	"snnfi/internal/suite"
)

// The campaign service: the long-lived front that answers "how far
// along is this suite, and what has it already computed?" without
// training anything. A campaign is registered once (POST /campaign, a
// suite JSON) and audited forever after against the live store
// manifest — registration compiles the suite's network cells into
// content addresses exactly once; every status read is pure set
// membership against the manifest. Sweep points workers have already
// pushed are served back as cells, so a dashboard (or a warm
// coordinator) reads results at store latency.

// CampaignSchema names the campaign status wire format.
const CampaignSchema = "snnfi-campaign-v1"

// networkTier is the store tier scenario cells live in (matching the
// -cache-dir layout cli.Tiers composes).
const networkTier = "network"

type campaign struct {
	ID    string          `json:"id"`
	Name  string          `json:"name"`
	cells []suite.CellRef // key set fixed at registration; presence is live
}

// campaignStatus is the GET /campaign/{id} body.
type campaignStatus struct {
	Schema   string          `json:"schema"`
	ID       string          `json:"id"`
	Name     string          `json:"name"`
	Cells    []suite.CellRef `json:"cells"`
	Present  int             `json:"present"`
	Missing  int             `json:"missing"`
	Complete bool            `json:"complete"`
}

// campaignOverrides mirrors the CLI's reduced-scale knobs; they are
// part of the campaign identity because they change every fingerprint.
type campaignOverrides struct {
	images, neurons, steps int
}

func parseOverrides(r *http.Request) (campaignOverrides, error) {
	var o campaignOverrides
	for _, f := range []struct {
		name string
		dst  *int
	}{{"images", &o.images}, {"neurons", &o.neurons}, {"steps", &o.steps}} {
		s := r.URL.Query().Get(f.name)
		if s == "" {
			continue
		}
		if _, err := fmt.Sscanf(s, "%d", f.dst); err != nil || *f.dst <= 0 {
			return o, fmt.Errorf("bad %s=%q", f.name, s)
		}
	}
	return o, nil
}

// handlePostCampaign registers a suite. The id is content-addressed
// over the suite document and the scale overrides, so re-posting the
// same campaign is idempotent and two coordinators watching the same
// suite share one id.
func (s *Server) handlePostCampaign(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter("store.campaigns").Inc()
	body, err := readBody(r, 16<<20)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ov, err := parseOverrides(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	su, err := suite.Decode(bytes.NewReader(body))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	run := &suite.Runner{
		Suite:   su,
		DataDir: s.DataDir,
		Images:  ov.images,
		Neurons: ov.neurons,
		Steps:   ov.steps,
	}
	cells, err := run.AuditCells(func(string) bool { return false })
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	id := runner.KeyOf("campaign", string(body), ov.images, ov.neurons, ov.steps)
	c := &campaign{ID: id, Name: su.Name, cells: cells}
	s.mu.Lock()
	s.campaigns[id] = c
	s.mu.Unlock()
	writeJSON(w, map[string]any{"id": id, "name": su.Name, "cells": len(cells)})
}

func (s *Server) campaign(id string) *campaign {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.campaigns[id]
}

// status re-audits the campaign's fixed key set against the live
// network-tier manifest.
func (s *Server) status(c *campaign) (*campaignStatus, error) {
	t, err := s.tier(networkTier)
	if err != nil {
		return nil, err
	}
	keys, err := t.dc.Manifest()
	if err != nil {
		return nil, err
	}
	held := core.HeldSet(keys)
	st := &campaignStatus{
		Schema: CampaignSchema,
		ID:     c.ID,
		Name:   c.Name,
		Cells:  make([]suite.CellRef, len(c.cells)),
	}
	for i, cell := range c.cells {
		cell.Present = held(cell.Key)
		if cell.Present {
			st.Present++
		} else {
			st.Missing++
		}
		st.Cells[i] = cell
	}
	st.Complete = st.Missing == 0
	return st, nil
}

func (s *Server) handleGetCampaign(w http.ResponseWriter, r *http.Request) {
	c := s.campaign(r.PathValue("id"))
	if c == nil {
		http.NotFound(w, r)
		return
	}
	st, err := s.status(c)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, st)
}

// handleCampaignCells serves the sweep points already in the store:
// every present cell with its payload, in audit order. Missing cells
// are simply absent — the reader compares against /campaign/{id} to
// see what is still cooking.
func (s *Server) handleCampaignCells(w http.ResponseWriter, r *http.Request) {
	c := s.campaign(r.PathValue("id"))
	if c == nil {
		http.NotFound(w, r)
		return
	}
	t, err := s.tier(networkTier)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	type cellOut struct {
		Entry  string          `json:"entry"`
		Desc   string          `json:"desc"`
		Key    string          `json:"key"`
		Result json.RawMessage `json:"result"`
	}
	out := make([]cellOut, 0, len(c.cells))
	for _, cell := range c.cells {
		raw, ok := t.dc.Get(cell.Key)
		if !ok {
			continue
		}
		out = append(out, cellOut{Entry: cell.Entry, Desc: cell.Desc, Key: cell.Key, Result: raw})
	}
	writeJSON(w, out)
}
