package fabric

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"snnfi/internal/obs"
	"snnfi/internal/runner"
)

type cell struct {
	Name string  `json:"name"`
	Acc  float64 `json:"acc"`
}

func newTestServer(t *testing.T) (*Server, string, *obs.Registry) {
	t.Helper()
	dir := t.TempDir()
	reg := obs.NewRegistry()
	s, err := NewServer(dir, reg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return s, srv.URL, reg
}

func newClient[T any](t *testing.T, url, tier string) *runner.HTTPCache[T] {
	t.Helper()
	c := runner.NewHTTPCache[T](url, tier)
	c.Backoff = time.Millisecond
	return c
}

// TestStoreRoundTrip drives the real client (runner.HTTPCache) against
// the real server: the integration the two in-package unit suites
// stub out.
func TestStoreRoundTrip(t *testing.T) {
	s, url, _ := newTestServer(t)
	c := newClient[cell](t, url, "network")

	if _, ok := c.Get("k1"); ok {
		t.Fatal("empty store must miss")
	}
	want := cell{Name: "n", Acc: 0.8125}
	c.Put("k1", want)
	got, ok := c.Get("k1")
	if !ok || got != want {
		t.Fatalf("round trip = %+v, %v; want %+v", got, ok, want)
	}
	keys, err := c.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != "k1" {
		t.Fatalf("manifest = %v, want [k1]", keys)
	}
	if c.Err() != nil {
		t.Fatalf("unexpected persistence error: %v", c.Err())
	}

	// The store's layout IS the -cache-dir layout: a plain DiskCache
	// over the same tier subdirectory reads cells the fabric wrote.
	dc, err := runner.NewDiskCache[cell](filepath.Join(s.Dir(), "network"))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := dc.Get("k1"); !ok || v != want {
		t.Fatalf("disk view of the store = %+v, %v; want %+v", v, ok, want)
	}

	// Tiers are independent namespaces.
	if _, ok := newClient[cell](t, url, "circuit").Get("k1"); ok {
		t.Fatal("tier namespaces must not alias")
	}
}

// TestStoreRejectsBadRequests: malformed cells and tier names never
// reach disk; an invalid-JSON PUT is a client error the cache
// remembers, not a poisoned entry every future Get trips over.
func TestStoreRejectsBadRequests(t *testing.T) {
	_, url, _ := newTestServer(t)

	req, _ := http.NewRequest(http.MethodPut, url+"/cell/network/bad", strings.NewReader("{not json"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid JSON PUT: %s, want 400", resp.Status)
	}
	c := newClient[cell](t, url, "network")
	if _, ok := c.Get("bad"); ok {
		t.Fatal("rejected cell must not be stored")
	}

	for _, path := range []string{"/cell/..%2Fescape/k", "/manifest/No.Such.Tier"} {
		resp, err := http.Get(url + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: %s, want rejection", path, resp.Status)
		}
	}
}

// TestStoreHealthAndMetrics: the health probe names the protocol both
// sides embed, and /metrics exports the request counters plus the
// per-tier disk counters.
func TestStoreHealthAndMetrics(t *testing.T) {
	_, url, _ := newTestServer(t)
	c := newClient[cell](t, url, "network")
	c.Put("k", cell{Name: "v"})
	c.Get("k")
	c.Get("absent")

	var health struct {
		OK       bool   `json:"ok"`
		Protocol string `json:"protocol"`
	}
	getJSON(t, url+"/healthz", &health)
	if !health.OK || health.Protocol != runner.StoreProtocol {
		t.Fatalf("health = %+v, want ok with protocol %q", health, runner.StoreProtocol)
	}

	var snap obs.Snapshot
	getJSON(t, url+"/metrics", &snap)
	if snap.Counters["store.gets"] != 2 || snap.Counters["store.puts"] != 1 {
		t.Fatalf("request counters = %v, want 2 gets / 1 put", snap.Counters)
	}
	if snap.Counters["store.disk.network.hits"] != 1 || snap.Counters["store.disk.network.misses"] != 1 {
		t.Fatalf("disk counters = %v, want 1 hit / 1 miss", snap.Counters)
	}
	if snap.Histograms["store.get"].Count != 2 {
		t.Fatalf("store.get histogram count = %d, want 2", snap.Histograms["store.get"].Count)
	}
}

// TestConcurrentPutsSameKey: many writers racing one content address
// (every worker that missed it computes the identical value) must end
// with a readable, uncorrupted cell and no write errors.
func TestConcurrentPutsSameKey(t *testing.T) {
	_, url, _ := newTestServer(t)
	done := make(chan *runner.HTTPCache[cell], 8)
	for i := 0; i < 8; i++ {
		go func() {
			c := newClient[cell](t, url, "network")
			for j := 0; j < 10; j++ {
				c.Put("hot", cell{Name: "same", Acc: 0.5})
			}
			done <- c
		}()
	}
	for i := 0; i < 8; i++ {
		if c := <-done; c.Err() != nil {
			t.Fatalf("racing writer failed: %v", c.Err())
		}
	}
	c := newClient[cell](t, url, "network")
	if v, ok := c.Get("hot"); !ok || v != (cell{Name: "same", Acc: 0.5}) {
		t.Fatalf("racing writers left %+v, %v", v, ok)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// TestCampaignService walks the service front end to end: register a
// suite, watch the audit flip as a worker pushes cells, read the
// cached sweep points back.
func TestCampaignService(t *testing.T) {
	_, url, _ := newTestServer(t)
	doc := `{
	  "name": "svc",
	  "network": {"images": 8, "neurons": 16, "steps": 40},
	  "entries": [
	    {"id": "S1", "scenario": {"attack": 3, "changes_pc": [-20, 10]}}
	  ]
	}`
	post := func() (id string, n int) {
		resp, err := http.Post(url+"/campaign", "application/json", strings.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /campaign: %s", resp.Status)
		}
		var out struct {
			ID    string `json:"id"`
			Cells int    `json:"cells"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out.ID, out.Cells
	}
	id, n := post()
	if n != 3 { // baseline + 2 grid cells
		t.Fatalf("campaign registered %d cells, want 3", n)
	}
	if id2, _ := post(); id2 != id {
		t.Fatal("re-registering the same suite must be idempotent")
	}

	var cold campaignStatus
	getJSON(t, url+"/campaign/"+id, &cold)
	if cold.Schema != CampaignSchema || cold.Present != 0 || cold.Missing != 3 || cold.Complete {
		t.Fatalf("cold status = %+v, want 0/3 incomplete", cold)
	}
	if cold.Cells[0].Entry != "" || cold.Cells[1].Entry != "S1" {
		t.Fatalf("attribution = %q,%q, want baseline then S1", cold.Cells[0].Entry, cold.Cells[1].Entry)
	}

	// A worker pushes one computed cell; the audit flips live.
	worker := newClient[cell](t, url, "network")
	worker.Put(cold.Cells[1].Key, cell{Name: "computed", Acc: 0.75})
	var warm campaignStatus
	getJSON(t, url+"/campaign/"+id, &warm)
	if warm.Present != 1 || warm.Missing != 2 {
		t.Fatalf("warm status = %d/%d, want 1 present / 2 missing", warm.Present, warm.Missing)
	}
	if !warm.Cells[1].Present || warm.Cells[0].Present {
		t.Fatal("presence attributed to the wrong cell")
	}

	var cells []struct {
		Key    string `json:"key"`
		Result cell   `json:"result"`
	}
	getJSON(t, url+"/campaign/"+id+"/cells", &cells)
	if len(cells) != 1 || cells[0].Key != cold.Cells[1].Key || cells[0].Result.Acc != 0.75 {
		t.Fatalf("served cells = %+v, want the one pushed point", cells)
	}

	resp, err := http.Get(url + "/campaign/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown campaign: %s, want 404", resp.Status)
	}
}

// TestCampaignOverridesChangeIdentity: the reduced-scale knobs are
// part of every fingerprint, so they must be part of the campaign id.
func TestCampaignOverridesChangeIdentity(t *testing.T) {
	_, url, _ := newTestServer(t)
	doc := `{"name":"svc","network":{"images":8,"neurons":16,"steps":40},
	  "entries":[{"id":"S1","scenario":{"attack":3,"changes_pc":[10]}}]}`
	post := func(q string) string {
		resp, err := http.Post(url+"/campaign"+q, "application/json", strings.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /campaign%s: %s", q, resp.Status)
		}
		var out struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out.ID
	}
	if post("") == post("?images=4") {
		t.Fatal("scale overrides must change the campaign id")
	}
	resp, err := http.Post(url+"/campaign?images=x", "application/json", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad override: %s, want 400", resp.Status)
	}
}
