// Package fabric is the server side of the distributed campaign
// fabric: an HTTP content store over DiskCache tiers (the wire format
// runner.HTTPCache speaks, runner.StoreProtocol) plus a thin campaign
// service that audits suite progress against the store — the
// north-star shape where cold campaigns fan out across worker
// processes and warm ones are cache-hit reads at web latency.
//
// The store holds content-addressed result cells: the key is a
// runner.KeyOf digest of everything that determines the value, so
// cells never conflict, never need invalidation, and any number of
// workers may PUT the same key concurrently (last rename wins,
// byte-identical payloads). Correctness therefore never depends on
// the store — a lost cell is recomputed by whoever misses it.
package fabric

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"sync"

	"snnfi/internal/obs"
	"snnfi/internal/runner"
)

// tierPat bounds tier names to DiskCache-safe directory names; cell
// keys need no check because DiskCache.path re-hashes anything unsafe.
var tierPat = regexp.MustCompile(`^[a-z0-9_-]{1,32}$`)

// Server serves one store directory (per-tier DiskCache
// subdirectories, the exact -cache-dir layout) and the campaign
// service. Create with NewServer, mount via Handler.
type Server struct {
	dir string
	reg *obs.Registry
	mux *http.ServeMux

	mu        sync.Mutex
	tiers     map[string]*tier
	campaigns map[string]*campaign

	// DataDir optionally points campaign audits at a real-MNIST
	// directory; it must match what the workers train from, or the
	// fingerprints (and so every key) disagree.
	DataDir string
}

// tier wraps one DiskCache with a put lock: PUTs are serialized per
// tier so a write failure can be attributed to the request that
// caused it (DiskCache.Put reports errors only cumulatively). Cell
// writes are seconds apart — one training each — so the lock is never
// contended in practice.
type tier struct {
	dc    *runner.DiskCache[json.RawMessage]
	putMu sync.Mutex
}

// NewServer opens (creating if needed) a store over dir. The registry
// backs /metrics and the per-tier cache counters; nil disables
// telemetry but keeps every route working.
func NewServer(dir string, reg *obs.Registry) (*Server, error) {
	s := &Server{
		dir:       dir,
		reg:       reg,
		tiers:     map[string]*tier{},
		campaigns: map[string]*campaign{},
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /cell/{tier}/{key}", s.handleGetCell)
	mux.HandleFunc("PUT /cell/{tier}/{key}", s.handlePutCell)
	mux.HandleFunc("GET /manifest/{tier}", s.handleManifest)
	mux.HandleFunc("POST /campaign", s.handlePostCampaign)
	mux.HandleFunc("GET /campaign/{id}", s.handleGetCampaign)
	mux.HandleFunc("GET /campaign/{id}/cells", s.handleCampaignCells)
	s.mux = mux
	// Seed the request counters so /metrics shows the full shape from
	// the first scrape.
	for _, n := range []string{"store.gets", "store.puts", "store.manifests", "store.campaigns"} {
		reg.Counter(n)
	}
	return s, nil
}

// Handler returns the store's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Dir returns the store's root directory.
func (s *Server) Dir() string { return s.dir }

// tier returns (creating if needed) the DiskCache for one tier name,
// or nil if the name is outside the sanctioned alphabet.
func (s *Server) tier(name string) (*tier, error) {
	if !tierPat.MatchString(name) {
		return nil, fmt.Errorf("invalid tier %q", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tiers[name]; ok {
		return t, nil
	}
	dc, err := runner.NewDiskCache[json.RawMessage](s.dir + "/" + name)
	if err != nil {
		return nil, err
	}
	dc.Instrument(s.reg, "store.disk."+name)
	s.tiers[name] = &tier{dc: dc}
	return s.tiers[name], nil
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"ok": true, "protocol": runner.StoreProtocol})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.reg.Snapshot())
}

func (s *Server) handleGetCell(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter("store.gets").Inc()
	defer obs.Span(s.reg, "store.get").End()
	t, err := s.tier(r.PathValue("tier"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	raw, ok := t.dc.Get(r.PathValue("key"))
	if !ok {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(raw)
}

func (s *Server) handlePutCell(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter("store.puts").Inc()
	defer obs.Span(s.reg, "store.put").End()
	t, err := s.tier(r.PathValue("tier"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	body, err := readBody(r, 64<<20)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// A cell that does not parse would poison every future Get into a
	// corrupt-miss; reject it at the door instead.
	if !json.Valid(body) {
		http.Error(w, "cell body is not valid JSON", http.StatusBadRequest)
		return
	}
	t.putMu.Lock()
	before := t.dc.WriteErrors()
	t.dc.Put(r.PathValue("key"), json.RawMessage(body))
	failed := t.dc.WriteErrors() > before
	t.putMu.Unlock()
	if failed {
		// 5xx so the client's bounded retry gets a chance; DiskCache
		// already remembered the error for the operator.
		http.Error(w, "store write failed", http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleManifest(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter("store.manifests").Inc()
	t, err := s.tier(r.PathValue("tier"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	keys, err := t.dc.Manifest()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if keys == nil {
		keys = []string{}
	}
	writeJSON(w, keys)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func readBody(r *http.Request, limit int64) ([]byte, error) {
	defer r.Body.Close()
	data, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		return nil, err
	}
	if int64(len(data)) > limit {
		return nil, fmt.Errorf("body exceeds %d bytes", limit)
	}
	return data, nil
}
