package cli

import (
	"flag"
	"fmt"
	"path/filepath"
	"strconv"
	"strings"

	"snnfi/internal/core"
	"snnfi/internal/defense"
	"snnfi/internal/runner"
	"snnfi/internal/xfer"
)

// Fabric-side CLI plumbing: the list-valued axis flags, the shared
// single-scenario builder (cmd/snn-attack and cmd/snn-worker MUST
// compile the identical core.Scenario from the same flags, or their
// cells get different content addresses and the fabric shards
// nothing), and the cache-chain composition for -cache-dir/-store.

// Floats is a flag.Value holding a comma-separated float64 list. The
// default survives until the first explicit -flag value, which
// replaces it (repeated flags append), so `-change -20` keeps its
// single-value meaning while `-change -20,-10,10` sweeps an axis.
type Floats struct {
	vals []float64
	set  bool
}

// FloatsFlag registers a Floats flag with a default list.
func FloatsFlag(fs *flag.FlagSet, name string, def []float64, usage string) *Floats {
	f := &Floats{vals: def}
	fs.Var(f, name, usage)
	return f
}

// String renders the current list, comma-separated.
func (f *Floats) String() string {
	if f == nil {
		return ""
	}
	parts := make([]string, len(f.vals))
	for i, v := range f.vals {
		parts[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	return strings.Join(parts, ",")
}

// Set parses one comma-separated value; the first Set discards the
// default.
func (f *Floats) Set(s string) error {
	if !f.set {
		f.vals, f.set = nil, true
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return fmt.Errorf("bad value %q: want a comma-separated number list", part)
		}
		f.vals = append(f.vals, v)
	}
	if len(f.vals) == 0 {
		return fmt.Errorf("empty list")
	}
	return nil
}

// Values returns the parsed list (the default if the flag never
// appeared).
func (f *Floats) Values() []float64 { return f.vals }

// AttackFlags is the single-scenario flag surface shared by
// cmd/snn-attack and cmd/snn-worker.
type AttackFlags struct {
	Attack    *int
	Changes   *Floats
	Fractions *Floats
	VDDs      *Floats
	Defense   *string
}

// AddAttackFlags registers the scenario flags on fs.
func AddAttackFlags(fs *flag.FlagSet) *AttackFlags {
	return &AttackFlags{
		Attack:    fs.Int("attack", 3, "attack number (1-5)"),
		Changes:   FloatsFlag(fs, "change", []float64{-20}, "parameter change(s) in percent, comma-separated (attacks 1-4)"),
		Fractions: FloatsFlag(fs, "fraction", []float64{100}, "percent(s) of the layer affected, comma-separated (attacks 2-3)"),
		VDDs:      FloatsFlag(fs, "vdd", []float64{0.8}, "supply voltage(s), comma-separated (attack 5)"),
		Defense:   fs.String("defense", "none", "defense: none|robust-driver|bandgap|sizing|comparator"),
	}
}

// Scenario compiles the flags into the canonical core.Scenario — the
// one deterministic mapping both the coordinator and every worker run,
// so a cell's content address is identical in every process.
func (a *AttackFlags) Scenario() (*core.Scenario, error) {
	scn := &core.Scenario{Detector: defense.NewDetector(xfer.IAF)}
	switch *a.Attack {
	case 1, 4:
		scn.Attack = core.AttackID(*a.Attack)
		scn.Axes = core.Axes{ChangesPc: a.Changes.Values()}
	case 2, 3:
		scn.Attack = core.AttackID(*a.Attack)
		scn.Axes = core.Axes{ChangesPc: a.Changes.Values(), FractionsPc: a.Fractions.Values()}
	case 5:
		scn.Attack = core.Attack5
		scn.Axes = core.Axes{VDDs: a.VDDs.Values(), Kind: xfer.IAF}
	default:
		return nil, fmt.Errorf("unknown attack %d (want 1-5)", *a.Attack)
	}
	switch *a.Defense {
	case "none":
	case "robust-driver":
		scn.Defenses = []core.Hardening{defense.RobustDriver{ResidualPc: 0.1}}
	case "bandgap":
		scn.Defenses = []core.Hardening{defense.BandgapThreshold{Kind: xfer.IAF}}
	case "sizing":
		scn.Defenses = []core.Hardening{defense.Sizing{WLMultiple: 32}}
	case "comparator":
		scn.Defenses = []core.Hardening{defense.ComparatorNeuron{}}
	default:
		return nil, fmt.Errorf("unknown defense %q", *a.Defense)
	}
	return scn, nil
}

// httpObsName names an HTTP tier's instruments: the network tier (the
// primary result namespace) owns the plain "cache.http" prefix, other
// tiers qualify it.
func httpObsName(tier string) string {
	if tier == "network" {
		return "cache.http"
	}
	return "cache.http." + tier
}

// Tiers composes one result tier's cache chain under the session's
// lifecycle: memory → disk (-cache-dir, when set) → store (-store,
// when set), each slower level instrumented, warned on first write
// failure and surfaced at Close exactly like the classic disk tier.
// With neither flag set, mem is returned untouched. The typed disk
// and HTTP tiers come back too (nil when absent) for callers that
// need Manifest().
func Tiers[T any](s *Session, mem runner.Cache[T], tier string) (runner.Cache[T], *runner.DiskCache[T], *runner.HTTPCache[T], error) {
	levels := []runner.Cache[T]{mem}
	var disk *runner.DiskCache[T]
	if s.Flags.CacheDir != "" {
		var err error
		disk, err = Disk[T](s, filepath.Join(s.Flags.CacheDir, tier), "cache."+tier, tier)
		if err != nil {
			return nil, nil, nil, err
		}
		levels = append(levels, disk)
	}
	var store *runner.HTTPCache[T]
	if s.Flags.Store != "" {
		store = runner.NewHTTPCache[T](s.Flags.Store, tier)
		store.Instrument(s.Registry, httpObsName(tier))
		store.OnFirstWriteError = s.WarnWriteError(tier + " store")
		s.TrackDisk(store)
		levels = append(levels, store)
	}
	if len(levels) == 1 {
		return mem, nil, nil, nil
	}
	chain := runner.NewChain[T](levels...)
	chain.Instrument(s.Registry, "cache."+tier+".chain")
	return chain, disk, store, nil
}
