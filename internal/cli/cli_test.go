package cli

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestGroupsGateFlagRegistration(t *testing.T) {
	reg := func(g Group) map[string]bool {
		fs := flag.NewFlagSet("t", flag.ContinueOnError)
		AddFlagsTo(fs, g)
		got := map[string]bool{}
		fs.VisitAll(func(f *flag.Flag) { got[f.Name] = true })
		return got
	}
	campaign := reg(Campaign)
	for _, name := range []string{"workers", "jsonl", "cache-dir", "report", "quiet", "progress", "pprof", "cpuprofile", "memprofile"} {
		if !campaign[name] {
			t.Errorf("Campaign group is missing -%s", name)
		}
	}
	training := reg(Training)
	for _, name := range []string{"workers", "cache-dir", "quiet", "pprof"} {
		if !training[name] {
			t.Errorf("Training group is missing -%s", name)
		}
	}
	for _, name := range []string{"jsonl", "report", "progress"} {
		if training[name] {
			t.Errorf("Training group registers -%s it does not honor", name)
		}
	}
}

func TestSplitIDs(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"F3", []string{"F3"}},
		{"F3, F8b ,,E1", []string{"F3", "F8b", "E1"}},
	}
	for _, c := range cases {
		if got := SplitIDs(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("SplitIDs(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSessionCloseIdempotent(t *testing.T) {
	f := &Flags{Quiet: true}
	s, err := f.Start("test")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestRunSuiteColdWarm drives the whole CLI path twice against one
// -cache-dir: the warm run must retrain zero networks (its campaign
// report says so) and reproduce the cold run's artifact bytes.
func TestRunSuiteColdWarm(t *testing.T) {
	dir := t.TempDir()
	suitePath := filepath.Join(dir, "tiny.json")
	doc := `{
	  "name": "tiny",
	  "network": {"images": 12, "neurons": 8, "steps": 40},
	  "entries": [
	    {"id": "S1",
	     "scenario": {"name": "tiny-attack1", "attack": 1, "changes_pc": [-10, 10]},
	     "output": {"csv": "s1.csv", "header": "scale,acc,rel",
	       "fields": ["scale_pc", "accuracy_pc", "rel_change_pc"]}}
	  ]
	}`
	if err := os.WriteFile(suitePath, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}

	run := func(tag string) (csv []byte, trained int64) {
		report := filepath.Join(dir, tag+".json")
		out := filepath.Join(dir, "out-"+tag)
		f := &Flags{Quiet: true, CacheDir: filepath.Join(dir, "cache"), Report: report}
		s, err := f.Start("test")
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if err := s.RunSuite(SuiteOptions{Path: suitePath, OutDir: out}); err != nil {
			t.Fatalf("%s run: %v", tag, err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("%s close: %v", tag, err)
		}
		csv, err = os.ReadFile(filepath.Join(out, "s1.csv"))
		if err != nil {
			t.Fatal(err)
		}
		var rep struct {
			NetworksTrained int64 `json:"networks_trained"`
		}
		b, err := os.ReadFile(report)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(b, &rep); err != nil {
			t.Fatal(err)
		}
		return csv, rep.NetworksTrained
	}

	coldCSV, coldTrained := run("cold")
	if coldTrained == 0 {
		t.Fatal("cold run trained no networks — the cache-dir test is vacuous")
	}
	warmCSV, warmTrained := run("warm")
	if warmTrained != 0 {
		t.Fatalf("warm run trained %d networks, want 0", warmTrained)
	}
	if string(coldCSV) != string(warmCSV) {
		t.Fatal("warm artifact bytes differ from the cold run")
	}
}

func TestRunSuiteValidateAndListModes(t *testing.T) {
	f := &Flags{Quiet: true}
	s, err := f.Start("test")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, opts := range []SuiteOptions{
		{Path: "../../suites/paper.json", Validate: true},
		{Path: "../../suites/paper.json", List: true},
	} {
		if err := s.RunSuite(opts); err != nil {
			t.Errorf("inspection mode %+v: %v", opts, err)
		}
	}
	if err := s.RunSuite(SuiteOptions{Path: "does-not-exist.json", Validate: true}); err == nil {
		t.Error("validate mode accepted a missing file")
	}
}
