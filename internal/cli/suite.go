package cli

import (
	"fmt"
	"os"
	"strings"

	"snnfi/internal/core"
	"snnfi/internal/neuron"
	"snnfi/internal/spice"
	"snnfi/internal/suite"
)

// SuiteOptions carries the suite-mode knobs shared by cmd/figures and
// cmd/snn-attack: which file to interpret, which entries, where the
// artifacts go, and the reduced-scale overrides.
type SuiteOptions struct {
	// Path is the suite file (-suite).
	Path string
	// Only restricts the run to a comma-separated list of entry IDs.
	Only string
	// List prints the table of contents and exits; Validate checks the
	// file and exits. Both run the full strict decode + validation.
	List     bool
	Validate bool
	// OutDir receives the CSV artifacts of entries with an output spec.
	OutDir string
	// DataDir optionally points at a real-MNIST directory.
	DataDir string
	// Images/Neurons/Steps override the suite's network spec when >0.
	Images  int
	Neurons int
	Steps   int
}

// RunSuite loads, validates and interprets a suite under the session's
// lifecycle: one telemetry registry, progress line and JSONL stream
// across the circuit and network tiers, with -cache-dir persisting both
// (circuit/ and network/ subdirectories) exactly as the pre-suite
// binaries did.
func (s *Session) RunSuite(opts SuiteOptions) error {
	su, err := suite.Load(opts.Path)
	if err != nil {
		return err
	}
	if err := su.Validate(); err != nil {
		return err
	}
	if opts.List {
		su.Describe(os.Stdout)
		return nil
	}
	if opts.Validate {
		fmt.Printf("%s: %d entries, valid\n", opts.Path, len(su.Entries))
		return nil
	}
	// One registry spans both tiers: circuit sweeps and spice solves
	// record into it immediately; the network experiment adopts it when
	// lazily built.
	spice.Instrument(s.Registry)
	char := neuron.NewCharacterizer()
	char.Workers = s.Flags.Workers
	char.OnProgress = s.OnProgress()
	char.Sinks = s.Sinks()
	char.Obs = s.Registry
	// Circuit measurements persist beside the network results (separate
	// tier subdirectory/namespace, same lifecycle): repeated runs
	// re-measure nothing, and with -store the fabric shares them too.
	circuitCache, _, _, err := Tiers[float64](s, char.Cache, "circuit")
	if err != nil {
		return err
	}
	char.Cache = circuitCache
	if opts.OutDir != "" {
		if err := os.MkdirAll(opts.OutDir, 0o755); err != nil {
			return err
		}
	}
	r := &suite.Runner{
		Suite:      su,
		Name:       s.Name,
		OutDir:     opts.OutDir,
		DataDir:    opts.DataDir,
		Images:     opts.Images,
		Neurons:    opts.Neurons,
		Steps:      opts.Steps,
		Workers:    s.Flags.Workers,
		Char:       char,
		OnProgress: s.OnProgress(),
		Sinks:      s.Sinks(),
		Obs:        s.Registry,
	}
	r.OnExperiment = func(e *core.Experiment) error {
		cache, _, _, err := Tiers[*core.Result](s, e.Cache, "network")
		if err != nil {
			return err
		}
		e.Cache = cache
		return nil
	}
	only := SplitIDs(opts.Only)
	if err := r.Run(only); err != nil {
		return err
	}
	return s.FinishReport(r.Monitor())
}

// SplitIDs parses a comma-separated -only value, dropping empty parts.
func SplitIDs(list string) []string {
	var out []string
	for _, id := range strings.Split(list, ",") {
		if id = strings.TrimSpace(id); id != "" {
			out = append(out, id)
		}
	}
	return out
}
