// Package cli holds the flag wiring and run-session lifecycle shared
// by the campaign binaries (cmd/figures, cmd/snn-attack, cmd/snn-train):
// the -workers/-jsonl/-cache-dir/-report/-quiet/-progress flags, the
// pprof flags, the live progress line, JSONL sink setup/teardown, disk
// cache instrumentation with first-write-error warnings, and
// end-of-run report writing. Before this package each binary carried
// its own copy of this plumbing; the suite interpreter would have been
// the fourth.
package cli

import (
	"flag"
	"fmt"
	"io"
	"os"

	"snnfi/internal/core"
	"snnfi/internal/diag"
	"snnfi/internal/obs"
	"snnfi/internal/runner"
)

// Group selects which shared flags a binary registers. Binaries differ
// (snn-train has no JSONL stream or campaign report), so the groups
// keep each command's flag surface honest: a flag is only present when
// the session actually honors it.
type Group uint

// Flag groups.
const (
	Workers Group = 1 << iota
	JSONL
	CacheDir
	Report
	Quiet
	Progress
	Pprof
	Store

	// Campaign is the full surface of the sweep-running binaries.
	Campaign = Workers | JSONL | CacheDir | Report | Quiet | Progress | Pprof | Store
	// Training is snn-train's surface: no sweep stream, no campaign
	// report, no per-cell progress logging.
	Training = Workers | CacheDir | Quiet | Pprof
	// Worker is cmd/snn-worker's surface: a fabric worker streams no
	// JSONL and writes no campaign report (the coordinator merge owns
	// both), but shares everything else including the store.
	Worker = Workers | CacheDir | Quiet | Progress | Pprof | Store
)

// Flags holds the shared flag values after flag.Parse.
type Flags struct {
	Workers  int
	JSONL    string
	CacheDir string
	Report   string
	Quiet    bool
	Progress bool
	Store    string

	prof *diag.Flags
}

// AddFlags registers the group's flags on the default flag set. Call
// before flag.Parse.
func AddFlags(g Group) *Flags {
	return AddFlagsTo(flag.CommandLine, g)
}

// AddFlagsTo registers the group's flags on an explicit flag set.
func AddFlagsTo(fs *flag.FlagSet, g Group) *Flags {
	f := &Flags{}
	if g&Workers != 0 {
		fs.IntVar(&f.Workers, "workers", 0, "worker-pool size (0 = all CPUs)")
	}
	if g&JSONL != 0 {
		fs.StringVar(&f.JSONL, "jsonl", "", "optional JSONL file streaming every sweep point")
	}
	if g&CacheDir != 0 {
		fs.StringVar(&f.CacheDir, "cache-dir", "", "optional directory persisting trained/measured results, so a killed run resumes with only the missing cells recomputed")
	}
	if g&Report != 0 {
		fs.StringVar(&f.Report, "report", "", "write the end-of-run campaign report (JSON) to this file")
	}
	if g&Quiet != 0 {
		fs.BoolVar(&f.Quiet, "quiet", false, "suppress the live progress line and the stderr report summary")
	}
	if g&Progress != 0 {
		fs.BoolVar(&f.Progress, "progress", false, "log each completed sweep cell to stderr")
	}
	if g&Store != 0 {
		fs.StringVar(&f.Store, "store", "", "base URL of a shared campaign content store (cmd/cached); results are read from and written through it, composing with -cache-dir as memory→disk→store")
	}
	if g&Pprof != 0 {
		f.prof = diag.AddFlagsTo(fs)
	}
	return f
}

// Session is one command invocation's shared run state: profiling
// started, progress line built, JSONL sink opened, telemetry registry
// ready. Close (or Finish) must run on every exit path — it flushes
// the sink, stops the profiler and surfaces persistence failures.
type Session struct {
	// Name prefixes warnings ("figures: warning: ...").
	Name string
	// Flags are the parsed shared flags the session was built from.
	Flags *Flags
	// Registry spans the whole invocation; instrument caches, pools and
	// the spice solver into it so one report covers every tier.
	Registry *obs.Registry
	// Line is the live \r-redrawn status line (enabled only on a
	// terminal, and only when neither -progress nor -quiet asked for
	// different stderr traffic).
	Line *runner.ProgressLine
	// Sink is the -jsonl stream; nil when none was requested.
	Sink *runner.JSONLSink

	progress func(runner.Progress)
	stopProf func() error
	disks    []interface{ Err() error }
	closed   bool
}

// Start builds the session after flag.Parse: it starts the requested
// profiles, opens the JSONL sink and wires the progress chain.
func (f *Flags) Start(name string) (*Session, error) {
	s := &Session{Name: name, Flags: f, Registry: obs.NewRegistry()}
	if f.prof != nil {
		stop, err := f.prof.Start()
		if err != nil {
			return nil, err
		}
		s.stopProf = stop
	}
	if f.Progress {
		s.progress = func(p runner.Progress) {
			note := ""
			if p.CacheHit {
				note = " (cached)"
			}
			fmt.Fprintf(os.Stderr, "  [%d/%d] %s%s\n", p.Done, p.Total, p.Label, note)
		}
	}
	// The live status line shares stderr with -progress logging; enable
	// it only when neither explicit logging nor -quiet is in effect
	// (and only on a terminal).
	s.Line = runner.NewProgressLine(os.Stderr, !f.Progress && !f.Quiet)
	s.progress = runner.ChainProgress(s.progress, s.Line.Observe)
	if f.JSONL != "" {
		file, err := os.Create(f.JSONL)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.Sink = runner.NewJSONLSink(file)
	}
	return s, nil
}

// OnProgress returns the chained progress observer (the optional
// -progress logger followed by the live line).
func (s *Session) OnProgress() func(runner.Progress) { return s.progress }

// Sinks returns the session's sink list (empty without -jsonl), in the
// shape Experiment/Characterizer take.
func (s *Session) Sinks() []runner.Sink {
	if s.Sink == nil {
		return nil
	}
	return []runner.Sink{s.Sink}
}

// WarnWriteError builds a DiskCache.OnFirstWriteError callback: one
// line, on the first failure only, the moment resumability degrades.
func (s *Session) WarnWriteError(tier string) func(error) {
	return func(err error) {
		fmt.Fprintf(os.Stderr, "%s: warning: %s results are no longer being persisted: %v\n", s.Name, tier, err)
	}
}

// TrackDisk registers a disk tier whose write failures must fail the
// command at Close — a campaign whose results did not persist is not
// resumable, and exiting 0 would hide that.
func (s *Session) TrackDisk(d interface{ Err() error }) { s.disks = append(s.disks, d) }

// Disk opens a DiskCache under the session's lifecycle: instrumented
// into the registry, first write failure warned once, persistent
// failure surfaced at Close.
func Disk[T any](s *Session, dir, name, tier string) (*runner.DiskCache[T], error) {
	d, err := runner.NewDiskCache[T](dir)
	if err != nil {
		return nil, err
	}
	d.Instrument(s.Registry, name)
	d.OnFirstWriteError = s.WarnWriteError(tier)
	s.TrackDisk(d)
	return d, nil
}

// Tier composes a session-tracked disk tier under an in-memory cache
// (write-through), the standard -cache-dir wiring.
func Tier[T any](s *Session, mem runner.Cache[T], dir, name, tier string) (runner.Cache[T], error) {
	d, err := Disk[T](s, dir, name, tier)
	if err != nil {
		return nil, err
	}
	return runner.NewTiered[T](mem, d), nil
}

// FinishReport ends the live line and emits the campaign report: JSON
// to -report when requested, and the stderr digest unless -quiet. A
// nil monitor (no campaign ran) is tolerated — the -report request is
// then declined loudly instead of writing an empty file.
func (s *Session) FinishReport(mon *core.Monitor) error {
	s.Line.Finish()
	if mon == nil {
		if s.Flags.Report != "" {
			fmt.Fprintf(os.Stderr, "%s: no network campaign ran; -report not written\n", s.Name)
		}
		return nil
	}
	rep := mon.Report()
	if s.Flags.Report != "" {
		if err := rep.WriteFile(s.Flags.Report); err != nil {
			return err
		}
	}
	if !s.Flags.Quiet {
		rep.Summarize(os.Stderr)
	}
	return nil
}

// Close tears the session down: finishes the line, flushes the sink,
// stops profiling and reports the first persistence failure of any
// tracked disk tier. Safe to call more than once; later calls are
// no-ops.
func (s *Session) Close() (err error) {
	if s.closed {
		return nil
	}
	s.closed = true
	s.Line.Finish()
	if s.Sink != nil {
		// Close even after a failed run, so records streamed by the
		// sweeps that did complete reach disk.
		if cerr := s.Sink.Close(); err == nil {
			err = cerr
		}
	}
	if s.stopProf != nil {
		if perr := s.stopProf(); err == nil {
			err = perr
		}
	}
	for _, d := range s.disks {
		if derr := d.Err(); err == nil && derr != nil {
			err = fmt.Errorf("result cache: %w", derr)
		}
	}
	return err
}

// CloseInto folds Close's error into a command's named return — the
// defer-friendly form: defer sess.CloseInto(&retErr).
func (s *Session) CloseInto(retErr *error) {
	if err := s.Close(); *retErr == nil {
		*retErr = err
	}
}

var _ io.Closer = (*Session)(nil)
