package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a.b") != c {
		t.Fatal("same name must return the same counter")
	}
	g := r.Gauge("a.u")
	g.Set(0.75)
	if got := g.Value(); got != 0.75 {
		t.Fatalf("gauge = %g, want 0.75", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	// Every instrument off a nil registry must accept its full API.
	c := r.Counter("x")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter must read 0")
	}
	g := r.Gauge("x")
	g.Set(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge must read 0")
	}
	h := r.Histogram("x")
	h.Observe(time.Second)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram must read 0")
	}
	if s := h.Summary(); s.Count != 0 {
		t.Fatal("nil histogram summary must be zero")
	}
	r.RegisterCounter("x", &Counter{})
	Span(r, "x").End()
	h.Span().End()
	snap := r.Snapshot()
	if snap.Counters != nil || snap.Histograms != nil {
		t.Fatal("nil registry snapshot must be empty")
	}
	if r.HistogramNames() != nil {
		t.Fatal("nil registry has no histogram names")
	}
}

func TestHistogramExactFields(t *testing.T) {
	var h Histogram
	for _, d := range []time.Duration{3 * time.Millisecond, 1 * time.Millisecond, 8 * time.Millisecond} {
		h.Observe(d)
	}
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
	if h.Sum() != 12*time.Millisecond {
		t.Fatalf("sum = %v, want 12ms", h.Sum())
	}
	s := h.Summary()
	if s.MinMs != 1 || s.MaxMs != 8 {
		t.Fatalf("min/max = %g/%g, want 1/8", s.MinMs, s.MaxMs)
	}
	if s.MeanMs != 4 {
		t.Fatalf("mean = %g, want 4", s.MeanMs)
	}
}

func TestHistogramQuantileEstimates(t *testing.T) {
	var h Histogram
	// 100 observations at 1ms, 1 outlier at 1s: p50 must stay near 1ms
	// (within the 2× bucket resolution), max exact.
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	h.Observe(time.Second)
	p50 := h.Quantile(0.50)
	if p50 < 500*time.Microsecond || p50 > 2*time.Millisecond {
		t.Fatalf("p50 = %v, want within 2x of 1ms", p50)
	}
	if h.Quantile(1) != time.Second {
		t.Fatalf("p100 = %v, want exactly the max", h.Quantile(1))
	}
	if h.Quantile(0) < 500*time.Microsecond {
		t.Fatalf("p0 = %v, must clamp to observed min", h.Quantile(0))
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	prev := time.Duration(-1)
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.95, 0.99, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile %g = %v < previous %v", q, v, prev)
		}
		prev = v
	}
}

func TestSpanRecordsIntoHistogram(t *testing.T) {
	r := NewRegistry()
	sp := Span(r, "tier.phase")
	time.Sleep(2 * time.Millisecond)
	sp.End()
	h := r.Histogram("tier.phase")
	if h.Count() != 1 {
		t.Fatalf("span did not record (count %d)", h.Count())
	}
	if h.Sum() < time.Millisecond {
		t.Fatalf("span recorded %v, want ≥1ms", h.Sum())
	}
}

func TestRegisterCounterSharesAtomics(t *testing.T) {
	// The cache-stats contract: a component-owned counter published
	// into the registry IS the registry's counter, so Stats() and the
	// exported snapshot can never disagree.
	r := NewRegistry()
	var own Counter
	r.RegisterCounter("cache.fast.hits", &own)
	own.Add(7)
	if got := r.Counter("cache.fast.hits").Value(); got != 7 {
		t.Fatalf("registry sees %d, owner wrote 7", got)
	}
	r.Counter("cache.fast.hits").Inc()
	if own.Value() != 8 {
		t.Fatalf("owner sees %d after registry increment, want 8", own.Value())
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(2)
	r.Counter("a").Add(1)
	r.Gauge("u").Set(0.5)
	r.Histogram("h").Observe(time.Millisecond)
	j1, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Fatalf("snapshot JSON not deterministic:\n%s\n%s", j1, j2)
	}
	var back Snapshot
	if err := json.Unmarshal(j1, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["a"] != 1 || back.Counters["b"] != 2 {
		t.Fatalf("round-trip lost counters: %v", back.Counters)
	}
}

func TestConcurrentObserve(t *testing.T) {
	// Exercised under -race in CI: many workers hammer one registry.
	r := NewRegistry()
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := r.Histogram("h")
			c := r.Counter("c")
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(i%7) * time.Microsecond)
				c.Inc()
				if i%100 == 0 {
					r.Gauge("g").Set(float64(w))
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := r.Histogram("h").Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
}

// TestDisabledTelemetryAllocationFree pins the "disabled means free"
// contract (the analogue of spice's TestSolveNewtonAllocationFree):
// with a nil registry, counters, gauges, histograms and spans must add
// zero allocations to whatever loop they instrument.
func TestDisabledTelemetryAllocationFree(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x")
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(2)
		g.Set(1)
		h.Observe(time.Millisecond)
		Span(r, "x").End()
		h.Span().End()
	})
	if allocs != 0 {
		t.Fatalf("disabled telemetry allocated %.1f objects per op, want 0", allocs)
	}
}

// TestEnabledInstrumentsAllocationFree pins the steady-state cost of
// live telemetry: once an instrument exists, observing into it
// allocates nothing either (creation allocates, use does not).
func TestEnabledInstrumentsAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	h := r.Histogram("x")
	r.Gauge("x") // pre-create so the lookup inside the loop is warm
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		h.Observe(time.Millisecond)
		h.Span().End()
		r.Gauge("x").Set(2)
		Span(r, "x").End()
	})
	if allocs != 0 {
		t.Fatalf("live telemetry allocated %.1f objects per op, want 0", allocs)
	}
}
