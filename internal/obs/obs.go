// Package obs is the campaign telemetry substrate: a dependency-free
// (stdlib-only) registry of named counters, gauges and streaming
// duration histograms, plus lightweight spans that time a phase into a
// histogram.
//
// Design constraints, in priority order:
//
//   - Observation-free. Nothing in this package influences what a
//     campaign computes: no randomness, no ordering, no shared state
//     the instrumented code reads back. Figure and sink bytes are
//     identical with telemetry on or off (test-enforced in
//     internal/core).
//   - Disabled means free. Every entry point is nil-safe — a nil
//     *Registry, *Counter, *Gauge or *Histogram accepts the full API
//     as a no-op — so instrumented code calls unconditionally and a
//     campaign without a registry pays one predictable branch, zero
//     allocations (see the allocation tests). Hot loops hoist the
//     instrument (reg.Histogram(...) once, h.Observe(...) per event)
//     instead of looking names up per event.
//   - Streaming. Histograms keep power-of-two duration buckets, not
//     samples: p50/p95/max come from the bucket counts, so a
//     million-cell campaign costs the same fixed few hundred bytes per
//     phase as a ten-cell one. Count, sum, min and max are exact;
//     quantiles are bucket-resolution estimates (within 2×, clamped to
//     the observed min/max).
//
// Metric names follow the tier.phase scheme ("snn.stdp",
// "core.cells.run", "cache.slow.hits"); see DESIGN.md "Telemetry".
package obs

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic count. The zero value
// is ready to use, and a nil *Counter accepts Add/Inc as a no-op, so
// instruments can be declared as struct fields and published into a
// Registry later (see Registry.RegisterCounter).
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 instantaneous value (a utilization, a
// worker count). The zero value is ready; nil is a no-op.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last stored value (0 before any Set).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the bucket count of a Histogram: bucket i holds
// durations whose nanosecond count has bit length i, i.e. [2^(i-1),
// 2^i), so 64 buckets span sub-nanosecond to centuries.
const histBuckets = 64

// Histogram is a streaming duration histogram: exact count/sum/min/
// max plus power-of-two buckets for quantile estimates, all updated
// atomically so any number of workers may Observe concurrently
// without locks. The zero value is ready; nil is a no-op.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64 // nanoseconds
	min     atomic.Int64 // nanoseconds; valid only when count > 0
	minInit atomic.Bool
	buckets [histBuckets]atomic.Int64
}

// Observe records one duration. Negative durations clamp to zero (the
// clock went backwards; dropping them would skew counts).
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sum.Add(ns)
	h.buckets[bits.Len64(uint64(ns))].Add(1)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
	if !h.minInit.Load() && h.min.CompareAndSwap(0, ns) {
		h.minInit.Store(true)
	}
	for {
		cur := h.min.Load()
		if ns >= cur || h.min.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Count returns how many durations have been observed.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the exact total of all observed durations.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket
// counts: the geometric midpoint of the bucket where the cumulative
// count crosses q·total, clamped to the exact observed min and max.
// The estimate is within the 2× bucket resolution of the true value.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank >= total {
		// The top rank is the exact observed maximum — no need for a
		// bucket estimate.
		return time.Duration(h.max.Load())
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			est := bucketMid(i)
			if min := h.min.Load(); est < min {
				est = min
			}
			if max := h.max.Load(); est > max {
				est = max
			}
			return time.Duration(est)
		}
	}
	return time.Duration(h.max.Load())
}

// bucketMid is the geometric midpoint of bucket i's [2^(i-1), 2^i)
// nanosecond range.
func bucketMid(i int) int64 {
	if i <= 0 {
		return 0
	}
	lo := int64(1) << (i - 1)
	return lo + lo/2
}

// HistSummary is the exportable digest of one histogram, durations in
// milliseconds (the natural unit of campaign phases).
type HistSummary struct {
	Count   int64   `json:"count"`
	TotalMs float64 `json:"total_ms"`
	MeanMs  float64 `json:"mean_ms"`
	MinMs   float64 `json:"min_ms"`
	P50Ms   float64 `json:"p50_ms"`
	P95Ms   float64 `json:"p95_ms"`
	MaxMs   float64 `json:"max_ms"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Summary digests the histogram's current state.
func (h *Histogram) Summary() HistSummary {
	if h == nil {
		return HistSummary{}
	}
	n := h.count.Load()
	s := HistSummary{
		Count:   n,
		TotalMs: ms(time.Duration(h.sum.Load())),
		MinMs:   ms(time.Duration(h.min.Load())),
		P50Ms:   ms(h.Quantile(0.50)),
		P95Ms:   ms(h.Quantile(0.95)),
		MaxMs:   ms(time.Duration(h.max.Load())),
	}
	if n > 0 {
		s.MeanMs = s.TotalMs / float64(n)
	}
	return s
}

// Registry is a named collection of instruments. Lookups create on
// first use, so instrumented code never registers up front; the same
// name always returns the same instrument. A nil *Registry returns
// nil instruments, whose whole API no-ops — the disabled-telemetry
// path.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// RegisterCounter publishes an existing counter under name, replacing
// any instrument previously there. Components that keep their own
// counters (the caches' hit/miss accounting behind Stats()) use this
// so the registry exports the very same atomics Stats() reads —
// registry values and Stats() can never disagree.
func (r *Registry) RegisterCounter(name string, c *Counter) {
	if r == nil || c == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters[name] = c
}

// RegisterHistogram publishes an existing histogram under name,
// replacing any instrument previously there — the histogram analogue
// of RegisterCounter, for components that keep their own duration
// accounting (the HTTP cache's round-trip histogram) and want the
// registry to export the very same buckets.
func (r *Registry) RegisterHistogram(name string, h *Histogram) {
	if r == nil || h == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hists[name] = h
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time export of a registry, JSON-ready.
// encoding/json renders map keys sorted, so marshaling a snapshot is
// deterministic for a given set of values.
type Snapshot struct {
	Counters   map[string]int64       `json:"counters,omitempty"`
	Gauges     map[string]float64     `json:"gauges,omitempty"`
	Histograms map[string]HistSummary `json:"histograms,omitempty"`
}

// Snapshot exports every instrument's current value. Instruments
// still being written concurrently are read atomically one by one;
// the snapshot is not a single consistent cut, which is fine for
// end-of-run reporting (writers have quiesced) and close enough for
// live inspection.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistSummary, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.Summary()
		}
	}
	return s
}

// HistogramNames returns the registered histogram names, sorted.
func (r *Registry) HistogramNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.hists))
	for name := range r.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Timer is a started span: End records the elapsed time into the
// span's histogram. It is a value type — starting and ending a span
// allocates nothing.
type Timer struct {
	h     *Histogram
	start time.Time
}

// Span starts a span named name (the tier.phase scheme):
//
//	defer obs.Span(reg, "snn.stdp").End()
//
// With a nil registry the span is inert and costs one branch.
func Span(r *Registry, name string) Timer {
	if r == nil {
		return Timer{}
	}
	return Timer{h: r.Histogram(name), start: time.Now()}
}

// Span starts a span on an already-resolved histogram — the hoisted
// form for code that times many events against one phase.
func (h *Histogram) Span() Timer {
	if h == nil {
		return Timer{}
	}
	return Timer{h: h, start: time.Now()}
}

// End records the span's elapsed time. Ending an inert span is a
// no-op.
func (t Timer) End() {
	if t.h != nil {
		t.h.Observe(time.Since(t.start))
	}
}
