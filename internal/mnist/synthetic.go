package mnist

import (
	"math"
	"math/rand"
)

// Synthetic generates n deterministic MNIST-like digit images. Each
// digit class is a hand-designed stroke skeleton (polylines and
// ellipses in a normalized box), rasterized at 28×28 with per-sample
// random affine jitter (shift, scale, rotation, shear), stroke-width
// variation, intensity variation, and speckle noise. Classes cycle
// round-robin so any prefix is class-balanced.
func Synthetic(n int, seed int64) []Image {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Image, n)
	for i := range out {
		label := uint8(i % 10)
		out[i] = renderDigit(label, rng)
	}
	return out
}

// SyntheticClass generates n jittered samples of a single digit class.
func SyntheticClass(label uint8, n int, seed int64) []Image {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Image, n)
	for i := range out {
		out[i] = renderDigit(label, rng)
	}
	return out
}

type point struct{ x, y float64 }

type stroke []point // polyline in normalized [0,1]² coordinates, y down

// ellipsePath approximates an ellipse as a closed polyline.
func ellipsePath(cx, cy, rx, ry float64, segments int) stroke {
	s := make(stroke, segments+1)
	for i := 0; i <= segments; i++ {
		a := 2 * math.Pi * float64(i) / float64(segments)
		s[i] = point{cx + rx*math.Cos(a), cy + ry*math.Sin(a)}
	}
	return s
}

// arcPath approximates an elliptic arc from angle a0 to a1 (radians).
func arcPath(cx, cy, rx, ry, a0, a1 float64, segments int) stroke {
	s := make(stroke, segments+1)
	for i := 0; i <= segments; i++ {
		a := a0 + (a1-a0)*float64(i)/float64(segments)
		s[i] = point{cx + rx*math.Cos(a), cy + ry*math.Sin(a)}
	}
	return s
}

// glyphs returns the stroke skeleton of each digit in the normalized
// box (x∈[0.25,0.75], y∈[0.12,0.88], y growing downward).
func glyphs(label uint8) []stroke {
	switch label {
	case 0:
		return []stroke{ellipsePath(0.5, 0.5, 0.19, 0.33, 24)}
	case 1:
		return []stroke{
			{{0.38, 0.28}, {0.52, 0.13}},
			{{0.52, 0.13}, {0.52, 0.87}},
			{{0.38, 0.87}, {0.66, 0.87}},
		}
	case 2:
		return []stroke{
			arcPath(0.5, 0.32, 0.2, 0.19, math.Pi, 2.25*math.Pi, 12),
			{{0.68, 0.45}, {0.30, 0.87}},
			{{0.30, 0.87}, {0.72, 0.87}},
		}
	case 3:
		return []stroke{
			arcPath(0.48, 0.31, 0.19, 0.18, 1.1*math.Pi, 2.4*math.Pi, 12),
			arcPath(0.48, 0.68, 0.21, 0.20, 1.6*math.Pi, 2.9*math.Pi, 12),
		}
	case 4:
		return []stroke{
			{{0.62, 0.13}, {0.28, 0.60}},
			{{0.28, 0.60}, {0.75, 0.60}},
			{{0.62, 0.34}, {0.62, 0.87}},
		}
	case 5:
		return []stroke{
			{{0.70, 0.13}, {0.32, 0.13}},
			{{0.32, 0.13}, {0.31, 0.45}},
			arcPath(0.49, 0.65, 0.21, 0.22, 1.3*math.Pi, 2.85*math.Pi, 14),
		}
	case 6:
		return []stroke{
			{{0.64, 0.14}, {0.40, 0.42}},
			ellipsePath(0.49, 0.64, 0.18, 0.22, 20),
		}
	case 7:
		return []stroke{
			{{0.28, 0.15}, {0.72, 0.15}},
			{{0.72, 0.15}, {0.44, 0.87}},
		}
	case 8:
		return []stroke{
			ellipsePath(0.5, 0.32, 0.16, 0.17, 20),
			ellipsePath(0.5, 0.68, 0.19, 0.19, 20),
		}
	default: // 9
		return []stroke{
			ellipsePath(0.52, 0.35, 0.17, 0.20, 20),
			{{0.69, 0.37}, {0.58, 0.87}},
		}
	}
}

// affine is a 2D affine transform applied to glyph coordinates.
type affine struct {
	a, b, c float64 // x' = a·x + b·y + c
	d, e, f float64 // y' = d·x + e·y + f
}

func (t affine) apply(p point) point {
	return point{t.a*p.x + t.b*p.y + t.c, t.d*p.x + t.e*p.y + t.f}
}

// jitterTransform samples a random affine transform around the glyph
// center: scale 0.85–1.15, rotation ±0.2 rad, shear ±0.15, shift ±2 px.
func jitterTransform(rng *rand.Rand) affine {
	scale := 0.85 + 0.3*rng.Float64()
	rot := (rng.Float64() - 0.5) * 0.4
	shear := (rng.Float64() - 0.5) * 0.3
	dx := (rng.Float64() - 0.5) * 4 / Side
	dy := (rng.Float64() - 0.5) * 4 / Side
	cosr, sinr := math.Cos(rot), math.Sin(rot)
	// Compose: translate to center, scale+rotate+shear, translate back
	// plus jitter shift.
	const cx, cy = 0.5, 0.5
	a := scale * cosr
	b := scale * (shear*cosr - sinr)
	d := scale * sinr
	e := scale * (shear*sinr + cosr)
	return affine{
		a: a, b: b, c: cx - a*cx - b*cy + dx,
		d: d, e: e, f: cy - d*cx - e*cy + dy,
	}
}

// distToSegment returns the distance from p to segment ab.
func distToSegment(p, a, b point) float64 {
	abx, aby := b.x-a.x, b.y-a.y
	apx, apy := p.x-a.x, p.y-a.y
	den := abx*abx + aby*aby
	t := 0.0
	if den > 0 {
		t = (apx*abx + apy*aby) / den
		if t < 0 {
			t = 0
		} else if t > 1 {
			t = 1
		}
	}
	dx, dy := p.x-(a.x+t*abx), p.y-(a.y+t*aby)
	return math.Sqrt(dx*dx + dy*dy)
}

// renderDigit rasterizes one jittered sample of a digit class.
func renderDigit(label uint8, rng *rand.Rand) Image {
	t := jitterTransform(rng)
	var segs [][2]point
	for _, s := range glyphs(label) {
		prev := t.apply(s[0])
		for _, p := range s[1:] {
			cur := t.apply(p)
			segs = append(segs, [2]point{prev, cur})
			prev = cur
		}
	}
	// Stroke half-width in normalized units (≈1.6–2.6 px full width).
	halfW := (0.8 + 0.5*rng.Float64()) / Side
	softness := 0.6 / Side
	peak := 200 + rng.Float64()*55

	var img Image
	img.Label = label
	for y := 0; y < Side; y++ {
		for x := 0; x < Side; x++ {
			p := point{(float64(x) + 0.5) / Side, (float64(y) + 0.5) / Side}
			d := math.Inf(1)
			for _, s := range segs {
				if v := distToSegment(p, s[0], s[1]); v < d {
					d = v
				}
			}
			// Smooth falloff from the stroke centerline.
			v := (halfW - d) / softness
			var in float64
			switch {
			case v > 4:
				in = 1
			case v < -4:
				in = 0
			default:
				in = 1 / (1 + math.Exp(-2*v))
			}
			val := peak * in
			// Speckle noise on lit pixels and a faint background floor.
			if in > 0.02 {
				val += (rng.Float64() - 0.5) * 30 * in
			}
			if val < 0 {
				val = 0
			} else if val > 255 {
				val = 255
			}
			img.Pixels[y*Side+x] = uint8(val)
		}
	}
	return img
}
