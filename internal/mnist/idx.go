// Package mnist provides the digit-classification corpus used by the
// network-level attack experiments: a reader/writer for the standard
// IDX (ubyte) MNIST file format when the real dataset is available, and
// a deterministic synthetic 28×28 digit generator used by default,
// since the dataset cannot be bundled in an offline build.
//
// The attack experiments measure *relative* accuracy degradation versus
// an attack-free baseline on the same data, so any classifiable
// 10-class digit task of the same dimensionality exercises identical
// code paths; DESIGN.md records the substitution.
package mnist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Image is a 28×28 grayscale digit with its class label.
type Image struct {
	Pixels [Side * Side]uint8
	Label  uint8
}

// Side is the image edge length in pixels.
const Side = 28

// IDX magic numbers for the MNIST distribution files.
const (
	magicImages = 0x00000803
	magicLabels = 0x00000801
)

// ReadIDX loads an MNIST image file and its label file in the standard
// IDX format (as distributed at yann.lecun.com, already gunzipped).
func ReadIDX(imagePath, labelPath string) ([]Image, error) {
	imgs, err := readIDXImages(imagePath)
	if err != nil {
		return nil, err
	}
	labels, err := readIDXLabels(labelPath)
	if err != nil {
		return nil, err
	}
	if len(imgs) != len(labels) {
		return nil, fmt.Errorf("mnist: %d images but %d labels", len(imgs), len(labels))
	}
	for i := range imgs {
		imgs[i].Label = labels[i]
	}
	return imgs, nil
}

func readIDXImages(path string) ([]Image, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var hdr [4]uint32
	for i := range hdr {
		if err := binary.Read(r, binary.BigEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("mnist: reading %s header: %w", path, err)
		}
	}
	if hdr[0] != magicImages {
		return nil, fmt.Errorf("mnist: %s has magic %#x, want %#x", path, hdr[0], magicImages)
	}
	if hdr[2] != Side || hdr[3] != Side {
		return nil, fmt.Errorf("mnist: %s is %dx%d, want %dx%d", path, hdr[2], hdr[3], Side, Side)
	}
	n := int(hdr[1])
	imgs := make([]Image, n)
	for i := 0; i < n; i++ {
		if _, err := io.ReadFull(r, imgs[i].Pixels[:]); err != nil {
			return nil, fmt.Errorf("mnist: reading image %d: %w", i, err)
		}
	}
	return imgs, nil
}

func readIDXLabels(path string) ([]uint8, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var magic, count uint32
	if err := binary.Read(r, binary.BigEndian, &magic); err != nil {
		return nil, err
	}
	if magic != magicLabels {
		return nil, fmt.Errorf("mnist: %s has magic %#x, want %#x", path, magic, magicLabels)
	}
	if err := binary.Read(r, binary.BigEndian, &count); err != nil {
		return nil, err
	}
	labels := make([]uint8, count)
	if _, err := io.ReadFull(r, labels); err != nil {
		return nil, err
	}
	return labels, nil
}

// WriteIDX saves images in the IDX pair format, the inverse of ReadIDX.
// Useful for exporting the synthetic corpus for inspection by standard
// MNIST tooling.
func WriteIDX(images []Image, imagePath, labelPath string) error {
	imgF, err := os.Create(imagePath)
	if err != nil {
		return err
	}
	defer imgF.Close()
	w := bufio.NewWriter(imgF)
	for _, v := range []uint32{magicImages, uint32(len(images)), Side, Side} {
		if err := binary.Write(w, binary.BigEndian, v); err != nil {
			return err
		}
	}
	for i := range images {
		if _, err := w.Write(images[i].Pixels[:]); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}

	lblF, err := os.Create(labelPath)
	if err != nil {
		return err
	}
	defer lblF.Close()
	lw := bufio.NewWriter(lblF)
	for _, v := range []uint32{magicLabels, uint32(len(images))} {
		if err := binary.Write(lw, binary.BigEndian, v); err != nil {
			return err
		}
	}
	for i := range images {
		if err := lw.WriteByte(images[i].Label); err != nil {
			return err
		}
	}
	return lw.Flush()
}

// Load returns n training digits: real MNIST from dir when it contains
// the standard files (train-images-idx3-ubyte / train-labels-idx1-ubyte),
// otherwise the deterministic synthetic corpus with the given seed.
func Load(dir string, n int, seed int64) ([]Image, error) {
	if dir != "" {
		imgPath := dir + "/train-images-idx3-ubyte"
		lblPath := dir + "/train-labels-idx1-ubyte"
		if _, err := os.Stat(imgPath); err == nil {
			imgs, err := ReadIDX(imgPath, lblPath)
			if err != nil {
				return nil, err
			}
			if n > 0 && n < len(imgs) {
				imgs = imgs[:n]
			}
			return imgs, nil
		}
	}
	return Synthetic(n, seed), nil
}
