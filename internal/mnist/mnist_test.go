package mnist

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic(20, 9)
	b := Synthetic(20, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("image %d differs across same-seed generations", i)
		}
	}
	c := Synthetic(20, 10)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should give different corpora")
	}
}

func TestSyntheticClassBalance(t *testing.T) {
	imgs := Synthetic(100, 3)
	var count [10]int
	for i := range imgs {
		count[imgs[i].Label]++
	}
	for c, n := range count {
		if n != 10 {
			t.Fatalf("class %d has %d samples, want 10 (round-robin)", c, n)
		}
	}
}

func TestSyntheticPixelsInRangeAndInk(t *testing.T) {
	imgs := Synthetic(50, 4)
	for i := range imgs {
		ink := 0
		for _, p := range imgs[i].Pixels {
			if p > 0 {
				ink++
			}
		}
		// A digit should light a plausible fraction of the 784 pixels.
		if ink < 30 || ink > 500 {
			t.Fatalf("image %d (label %d) has %d lit pixels", i, imgs[i].Label, ink)
		}
	}
}

func TestSyntheticClassSingle(t *testing.T) {
	imgs := SyntheticClass(7, 12, 5)
	for i := range imgs {
		if imgs[i].Label != 7 {
			t.Fatalf("SyntheticClass produced label %d", imgs[i].Label)
		}
	}
}

func TestSyntheticSeparability(t *testing.T) {
	// The corpus must be classifiable: nearest-centroid accuracy well
	// above chance is the substitution's fitness criterion (DESIGN.md).
	train := Synthetic(500, 1)
	test := Synthetic(200, 2)
	var cent [10][Side * Side]float64
	var cnt [10]float64
	for i := range train {
		c := train[i].Label
		cnt[c]++
		for j, p := range train[i].Pixels {
			cent[c][j] += float64(p)
		}
	}
	for c := range cent {
		for j := range cent[c] {
			cent[c][j] /= cnt[c]
		}
	}
	correct := 0
	for i := range test {
		best, bestD := -1, 1e300
		for c := 0; c < 10; c++ {
			d := 0.0
			for j, p := range test[i].Pixels {
				diff := float64(p) - cent[c][j]
				d += diff * diff
			}
			if d < bestD {
				bestD, best = d, c
			}
		}
		if best == int(test[i].Label) {
			correct++
		}
	}
	acc := float64(correct) / float64(len(test))
	if acc < 0.75 {
		t.Fatalf("nearest-centroid accuracy %.3f, want ≥0.75 (corpus too hard or broken)", acc)
	}
}

func TestIDXRoundTrip(t *testing.T) {
	dir := t.TempDir()
	imgPath := filepath.Join(dir, "imgs")
	lblPath := filepath.Join(dir, "lbls")
	orig := Synthetic(30, 11)
	if err := WriteIDX(orig, imgPath, lblPath); err != nil {
		t.Fatal(err)
	}
	back, err := ReadIDX(imgPath, lblPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(orig) {
		t.Fatalf("round trip count %d != %d", len(back), len(orig))
	}
	for i := range orig {
		if back[i] != orig[i] {
			t.Fatalf("image %d corrupted in round trip", i)
		}
	}
}

func TestIDXRejectsBadMagic(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad")
	if err := os.WriteFile(bad, []byte{0, 0, 8, 1, 0, 0, 0, 0}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readIDXImages(bad); err == nil {
		t.Fatal("expected magic error for label file read as images")
	}
}

func TestLoadFallsBackToSynthetic(t *testing.T) {
	imgs, err := Load(t.TempDir(), 40, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(imgs) != 40 {
		t.Fatalf("got %d images", len(imgs))
	}
}

func TestLoadReadsRealIDXWhenPresent(t *testing.T) {
	dir := t.TempDir()
	orig := Synthetic(25, 13)
	if err := WriteIDX(orig,
		filepath.Join(dir, "train-images-idx3-ubyte"),
		filepath.Join(dir, "train-labels-idx1-ubyte")); err != nil {
		t.Fatal(err)
	}
	imgs, err := Load(dir, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(imgs) != 10 {
		t.Fatalf("got %d images, want truncation to 10", len(imgs))
	}
	if imgs[0] != orig[0] {
		t.Fatal("loaded images differ from written ones")
	}
}

// Property: every generated image keeps its label in 0..9 and pixels
// are deterministic functions of (label index, seed).
func TestSyntheticLabelProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%40) + 1
		imgs := Synthetic(n, seed)
		for i := range imgs {
			if imgs[i].Label != uint8(i%10) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}
