package mnist

import (
	"crypto/sha256"
	"encoding/hex"
)

// Digest content-addresses an image corpus (pixels and labels, in
// order). Both campaign fingerprints (internal/core) and the
// standalone trainer's result cache (cmd/snn-train) build their keys
// from this one digest, so the two can never disagree about what "the
// same data" means.
func Digest(images []Image) string {
	h := sha256.New()
	for i := range images {
		h.Write(images[i].Pixels[:])
		h.Write([]byte{images[i].Label})
	}
	return hex.EncodeToString(h.Sum(nil))
}
