package neuron

import (
	"math"
	"testing"
)

func TestMonteCarloValidation(t *testing.T) {
	mc := NewMonteCarlo(0)
	if _, err := mc.ThresholdSamples(); err == nil {
		t.Fatal("N=0 must fail")
	}
}

func TestMonteCarloThresholdSpread(t *testing.T) {
	mc := NewMonteCarlo(24)
	samples, err := mc.ThresholdSamples()
	if err != nil {
		t.Fatal(err)
	}
	mean, sigma := Spread(samples)
	// Mean must sit near the nominal 0.5 V switching point.
	if math.Abs(mean-0.5) > 0.05 {
		t.Fatalf("MC mean threshold %.4f, want ≈0.5", mean)
	}
	// 15 mV per-device sigma maps to roughly half that at the switching
	// point (two devices pull opposite ways); require a sane band.
	if sigma < 0.002 || sigma > 0.05 {
		t.Fatalf("MC threshold sigma %.4f V outside plausible band", sigma)
	}
	// Mismatch spread must stay far below the ±20% attack signal — the
	// separation that makes the detector workable at all.
	if sigma/mean > 0.05 {
		t.Fatalf("mismatch spread %.1f%% rivals the attack signal", 100*sigma/mean)
	}
}

func TestMonteCarloDeterministic(t *testing.T) {
	a, err := NewMonteCarlo(6).ThresholdSamples()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMonteCarlo(6).ThresholdSamples()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce samples")
		}
	}
}

func TestDetectorFalsePositiveRate(t *testing.T) {
	mc := NewMonteCarlo(24)
	samples, err := mc.ThresholdSamples()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's 10% trigger must be silent under pure mismatch.
	if fp := DetectorFalsePositiveRate(samples, 10); fp != 0 {
		t.Fatalf("10%% trigger false-positive rate %.2f, want 0", fp)
	}
	// A trigger tightened into the mismatch spread must start flagging.
	if fp := DetectorFalsePositiveRate(samples, 0.1); fp == 0 {
		t.Fatal("0.1% trigger should be swamped by mismatch")
	}
}

func TestSpreadEdgeCases(t *testing.T) {
	if m, s := Spread(nil); m != 0 || s != 0 {
		t.Fatal("empty spread should be zeros")
	}
	m, s := Spread([]float64{2, 2, 2})
	if m != 2 || s != 0 {
		t.Fatalf("constant spread = (%v, %v)", m, s)
	}
}
