package neuron

import (
	"fmt"

	"snnfi/internal/spice"
)

// DummyKind selects which neuron circuit backs a dummy detector cell.
type DummyKind int

// Dummy neuron flavors (the paper evaluates both, Fig. 10c).
const (
	DummyAxonHillock DummyKind = iota
	DummyIAF
)

func (k DummyKind) String() string {
	if k == DummyIAF {
		return "iaf"
	}
	return "axon-hillock"
}

// DummyNeuron is the §V-C detection cell (Fig. 10b): a neuron of the
// layer's type fed by a fixed, input-independent spike train (200 nA
// amplitude, 100 ns width, 200 ns period). Under nominal VDD its output
// spike count over a sampling window is constant; a supply glitch in
// the layer shifts the count, and a deviation of ≥10% flags an attack.
type DummyNeuron struct {
	Kind DummyKind
	VDD  float64

	// Fixed stimulus (paper values).
	IAmp        float64
	SpikeWidth  float64
	SpikePeriod float64
}

// NewDummyNeuron returns the paper's nominal dummy-neuron cell.
func NewDummyNeuron(kind DummyKind) *DummyNeuron {
	return &DummyNeuron{
		Kind:        kind,
		VDD:         1.0,
		IAmp:        200e-9,
		SpikeWidth:  100e-9,
		SpikePeriod: 200e-9,
	}
}

// firingPeriod simulates the cell and measures its steady output period.
func (d *DummyNeuron) firingPeriod(stop, dt float64) (float64, error) {
	switch d.Kind {
	case DummyIAF:
		n := NewIAF()
		n.VDD = d.VDD
		n.IAmp, n.SpikeWidth, n.SpikePeriod = d.IAmp, d.SpikeWidth, d.SpikePeriod
		res, err := n.Simulate(stop, dt)
		if err != nil {
			return 0, err
		}
		return spice.SpikePeriod(res.Time, res.V("aout"), d.VDD/2)
	default:
		n := NewAxonHillock()
		n.VDD = d.VDD
		n.IAmp, n.SpikeWidth, n.SpikePeriod = d.IAmp, d.SpikeWidth, d.SpikePeriod
		res, err := n.Simulate(stop, dt)
		if err != nil {
			return 0, err
		}
		return spice.SpikePeriod(res.Time, res.V("vout"), d.VDD/2)
	}
}

// SpikeCount estimates the number of output spikes in a sampling window
// (paper: 100 ms) by simulating enough of the periodic steady state to
// measure the firing period and extrapolating. Simulating the full
// 100 ms at circuit resolution would be wasteful: the cell is strictly
// periodic, so count = window/period.
func (d *DummyNeuron) SpikeCount(window float64) (int, error) {
	stop, dt := d.simWindow()
	period, err := d.firingPeriod(stop, dt)
	if err != nil {
		return 0, fmt.Errorf("neuron: dummy %v at VDD=%.2f: %w", d.Kind, d.VDD, err)
	}
	return int(window / period), nil
}

// simWindow picks a transient length long enough to capture several
// output spikes for either neuron flavor.
func (d *DummyNeuron) simWindow() (stop, dt float64) {
	if d.Kind == DummyIAF {
		// 10 pF membrane at ~100 nA average: tens of microseconds per spike.
		return 300e-6, 10e-9
	}
	// 1 pF membrane: a few microseconds per spike.
	return 40e-6, 10e-9
}
