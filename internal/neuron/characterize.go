package neuron

import (
	"fmt"

	"snnfi/internal/obs"
	"snnfi/internal/runner"
)

// Point is one characterization sample: an independent value (VDD,
// amplitude, W/L, ...) and the measured dependent value.
type Point struct {
	X, Y float64
}

// PercentChange returns 100·(y−yRef)/yRef.
func PercentChange(y, yRef float64) float64 { return 100 * (y - yRef) / yRef }

// Characterizer runs neuron characterization sweeps on the campaign
// worker pool (internal/runner). Every sweep point is an independent
// circuit build + simulation from a value-only recipe, so points run
// concurrently under the pool's determinism contract — output is
// identical at any worker width — and each point is content-addressed
// by its circuit recipe and measurement, so a cache-equipped
// Characterizer simulates a given circuit point at most once even
// across different figures (e.g. F5b and F9b both measure the stock
// driver sweep).
type Characterizer struct {
	// Workers sizes the worker pool; ≤0 uses all CPUs.
	Workers int
	// Cache, when non-nil, memoizes measured values by recipe address.
	// Only the dependent value is cached — the independent value is a
	// sweep-axis coordinate, not a circuit property, and two sweeps can
	// reach the same recipe from different axes (sizing ratio ×1 at
	// VDD 1.0 is the nominal threshold circuit).
	Cache runner.Cache[float64]
	// OnProgress, when non-nil, observes each completed point.
	OnProgress func(runner.Progress)
	// Sinks receive one record per point, streamed in sweep order
	// regardless of worker count.
	Sinks []runner.Sink
	// Obs, when non-nil, receives the sweep pool's telemetry under
	// "neuron.sweep.*" (per-point run/wait histograms, job and hit
	// counters). Observation only; sweep output is unaffected.
	Obs *obs.Registry
}

// NewCharacterizer returns a pool-wide Characterizer with a fresh
// measurement cache.
func NewCharacterizer() *Characterizer {
	return &Characterizer{Cache: runner.NewMemoryCache[float64]()}
}

// defaultChar backs the package-level characterization functions: all
// CPUs, deterministic, no cross-call cache (benchmarks rely on every
// call re-simulating).
var defaultChar = &Characterizer{}

// charPoint is one sweep point before execution: the independent
// value, the content-address of (recipe, measurement), and the
// measurement itself.
type charPoint struct {
	x    float64
	key  string
	eval func() (float64, error)
}

// sweep runs the points as runner jobs, collecting results in sweep
// order and streaming one record per point to the sinks. The pool
// carries only the measured Y values; each sweep reattaches its own
// X axis, so cached measurements are reusable across sweeps whose axes
// differ.
func (ch *Characterizer) sweep(name string, pts []charPoint) ([]Point, error) {
	jobs := make([]runner.Job[float64], len(pts))
	for i, p := range pts {
		p := p
		jobs[i] = runner.Job[float64]{
			Label: fmt.Sprintf("%s @ %g", name, p.x),
			Key:   p.key,
			Run: func() (float64, error) {
				y, err := p.eval()
				if err != nil {
					return 0, fmt.Errorf("neuron: %s at %g: %w", name, p.x, err)
				}
				return y, nil
			},
		}
	}
	pool := &runner.Pool[float64]{
		Workers:    ch.Workers,
		Cache:      ch.Cache,
		OnProgress: ch.OnProgress,
		Obs:        ch.Obs,
		Name:       "neuron.sweep",
	}
	if len(ch.Sinks) > 0 {
		pool.OnResult = func(i int, y float64, _ bool) error {
			rec := PointRecord(name, Point{X: pts[i].x, Y: y})
			for _, s := range ch.Sinks {
				if err := s.Write(rec); err != nil {
					return err
				}
			}
			return nil
		}
	}
	ys, err := pool.Run(jobs)
	if err != nil {
		return nil, err
	}
	out := make([]Point, len(pts))
	for i, y := range ys {
		out[i] = Point{X: pts[i].x, Y: y}
	}
	return out, nil
}

// PointRecord renders one characterization point as the streamed sink
// record shape shared by every circuit-tier sweep.
func PointRecord(sweep string, p Point) runner.Record {
	return runner.Record{
		{Name: "sweep", Value: sweep},
		{Name: "x", Value: p.X},
		{Name: "y", Value: p.Y},
	}
}

// AHThresholdVsVDD sweeps the Axon Hillock membrane threshold (first
// inverter switching point) against VDD. This regenerates the AH series
// of Fig. 6a.
func (ch *Characterizer) AHThresholdVsVDD(vdds []float64) ([]Point, error) {
	pts := make([]charPoint, len(vdds))
	for i, v := range vdds {
		n := NewAxonHillock()
		n.VDD = v
		pts[i] = charPoint{x: v, key: runner.KeyOf("neuron/ah-threshold-v1", *n), eval: n.Threshold}
	}
	return ch.sweep("ah-threshold-vs-vdd", pts)
}

// AHThresholdVsSizing sweeps the AH threshold against the MP1 W/L
// multiple at a fixed VDD. Ratio r multiplies the nominal MP1 width.
// This regenerates Fig. 9c.
func (ch *Characterizer) AHThresholdVsSizing(vdd float64, ratios []float64) ([]Point, error) {
	pts := make([]charPoint, len(ratios))
	for i, r := range ratios {
		n := NewAxonHillock()
		n.VDD = vdd
		n.WP1 = r * 2e-6
		pts[i] = charPoint{x: r, key: runner.KeyOf("neuron/ah-threshold-v1", *n), eval: n.Threshold}
	}
	return ch.sweep("ah-threshold-vs-sizing", pts)
}

// IAFThresholdVsVDD sweeps the I&F threshold reference against VDD
// (the I&F series of Fig. 6a). The threshold is the resistive-divider
// reference actually presented to the amplifier.
func (ch *Characterizer) IAFThresholdVsVDD(vdds []float64) ([]Point, error) {
	pts := make([]charPoint, len(vdds))
	for i, v := range vdds {
		n := NewIAF()
		n.VDD = v
		pts[i] = charPoint{
			x:    v,
			key:  runner.KeyOf("neuron/iaf-threshold-v1", *n),
			eval: func() (float64, error) { return n.ThresholdVoltage(), nil },
		}
	}
	return ch.sweep("iaf-threshold-vs-vdd", pts)
}

// DriverAmplitudeVsVDD sweeps the current-mirror driver output spike
// amplitude against VDD (Fig. 5b).
func (ch *Characterizer) DriverAmplitudeVsVDD(vdds []float64) ([]Point, error) {
	pts := make([]charPoint, len(vdds))
	for i, v := range vdds {
		d := NewDriver()
		d.VDD = v
		pts[i] = charPoint{x: v, key: runner.KeyOf("neuron/driver-amplitude-v1", *d), eval: d.Amplitude}
	}
	return ch.sweep("driver-amplitude-vs-vdd", pts)
}

// RobustDriverAmplitudeVsVDD sweeps the defended driver (Fig. 9b).
func (ch *Characterizer) RobustDriverAmplitudeVsVDD(vdds []float64) ([]Point, error) {
	pts := make([]charPoint, len(vdds))
	for i, v := range vdds {
		d := NewRobustDriver()
		d.VDD = v
		pts[i] = charPoint{x: v, key: runner.KeyOf("neuron/robust-driver-amplitude-v1", *d), eval: d.Amplitude}
	}
	return ch.sweep("robust-driver-amplitude-vs-vdd", pts)
}

// AHTimeToSpikeVsVDD sweeps the AH first-spike latency against VDD
// (Fig. 6b mechanism).
func (ch *Characterizer) AHTimeToSpikeVsVDD(vdds []float64) ([]Point, error) {
	pts := make([]charPoint, len(vdds))
	for i, v := range vdds {
		n := NewAxonHillock()
		n.VDD = v
		pts[i] = charPoint{
			x:    v,
			key:  runner.KeyOf("neuron/ah-tts-v1", *n, 40e-6, 10e-9),
			eval: func() (float64, error) { return n.TimeToSpike(40e-6, 10e-9) },
		}
	}
	return ch.sweep("ah-tts-vs-vdd", pts)
}

// AHTimeToSpikeVsAmplitude sweeps the AH first-spike latency against
// input spike amplitude at nominal VDD (Fig. 5c mechanism).
func (ch *Characterizer) AHTimeToSpikeVsAmplitude(amps []float64) ([]Point, error) {
	pts := make([]charPoint, len(amps))
	for i, a := range amps {
		n := NewAxonHillock()
		n.IAmp = a
		pts[i] = charPoint{
			x:    a,
			key:  runner.KeyOf("neuron/ah-tts-v1", *n, 80e-6, 10e-9),
			eval: func() (float64, error) { return n.TimeToSpike(80e-6, 10e-9) },
		}
	}
	return ch.sweep("ah-tts-vs-amplitude", pts)
}

// IAFTimeToSpikeVsAmplitude sweeps the I&F first-spike latency against
// input spike amplitude at nominal VDD (Fig. 5c mechanism).
func (ch *Characterizer) IAFTimeToSpikeVsAmplitude(amps []float64) ([]Point, error) {
	pts := make([]charPoint, len(amps))
	for i, a := range amps {
		n := NewIAF()
		n.IAmp = a
		pts[i] = charPoint{
			x:    a,
			key:  runner.KeyOf("neuron/iaf-tts-v1", *n, 200e-6, 10e-9),
			eval: func() (float64, error) { return n.TimeToSpike(200e-6, 10e-9) },
		}
	}
	return ch.sweep("iaf-tts-vs-amplitude", pts)
}

// IAFTimeToSpikeVsVDD sweeps the I&F first-spike latency against VDD
// (Fig. 6c mechanism): higher VDD raises the divider threshold and
// slows firing.
func (ch *Characterizer) IAFTimeToSpikeVsVDD(vdds []float64) ([]Point, error) {
	pts := make([]charPoint, len(vdds))
	for i, v := range vdds {
		n := NewIAF()
		n.VDD = v
		pts[i] = charPoint{
			x:    v,
			key:  runner.KeyOf("neuron/iaf-tts-v1", *n, 200e-6, 10e-9),
			eval: func() (float64, error) { return n.TimeToSpike(200e-6, 10e-9) },
		}
	}
	return ch.sweep("iaf-tts-vs-vdd", pts)
}

// ComparatorMeasuredThresholdVsVDD sweeps the comparator neuron's
// measured firing threshold against VDD (Fig. 10a).
func (ch *Characterizer) ComparatorMeasuredThresholdVsVDD(vdds []float64) ([]Point, error) {
	pts := make([]charPoint, len(vdds))
	for i, v := range vdds {
		n := NewComparatorAH()
		n.VDD = v
		pts[i] = charPoint{
			x:    v,
			key:  runner.KeyOf("neuron/comparator-threshold-v1", *n, 40e-6, 10e-9),
			eval: func() (float64, error) { return n.MeasuredThreshold(40e-6, 10e-9) },
		}
	}
	return ch.sweep("comparator-threshold-vs-vdd", pts)
}

// ComparatorTimeToSpikeVsVDD sweeps the comparator neuron's first-spike
// latency against VDD (Fig. 10a).
func (ch *Characterizer) ComparatorTimeToSpikeVsVDD(vdds []float64) ([]Point, error) {
	pts := make([]charPoint, len(vdds))
	for i, v := range vdds {
		n := NewComparatorAH()
		n.VDD = v
		pts[i] = charPoint{
			x:    v,
			key:  runner.KeyOf("neuron/comparator-tts-v1", *n, 40e-6, 10e-9),
			eval: func() (float64, error) { return n.TimeToSpike(40e-6, 10e-9) },
		}
	}
	return ch.sweep("comparator-tts-vs-vdd", pts)
}

// DummyCountVsVDD sweeps the dummy detector cell's output spike count
// per sampling window against VDD (Fig. 10c circuit tier).
func (ch *Characterizer) DummyCountVsVDD(kind DummyKind, window float64, vdds []float64) ([]Point, error) {
	pts := make([]charPoint, len(vdds))
	for i, v := range vdds {
		d := NewDummyNeuron(kind)
		d.VDD = v
		pts[i] = charPoint{
			x:   v,
			key: runner.KeyOf("neuron/dummy-count-v1", *d, window),
			eval: func() (float64, error) {
				n, err := d.SpikeCount(window)
				return float64(n), err
			},
		}
	}
	return ch.sweep(fmt.Sprintf("dummy-%v-count-vs-vdd", kind), pts)
}

// The package-level sweep functions keep the original serial API,
// executing on the default Characterizer (all CPUs, uncached).

// AHThresholdVsVDD sweeps the AH membrane threshold against VDD (Fig. 6a).
func AHThresholdVsVDD(vdds []float64) ([]Point, error) { return defaultChar.AHThresholdVsVDD(vdds) }

// AHThresholdVsSizing sweeps the AH threshold against MP1 sizing (Fig. 9c).
func AHThresholdVsSizing(vdd float64, ratios []float64) ([]Point, error) {
	return defaultChar.AHThresholdVsSizing(vdd, ratios)
}

// IAFThresholdVsVDD sweeps the I&F threshold reference against VDD (Fig. 6a).
func IAFThresholdVsVDD(vdds []float64) ([]Point, error) {
	return defaultChar.IAFThresholdVsVDD(vdds)
}

// DriverAmplitudeVsVDD sweeps the driver spike amplitude against VDD (Fig. 5b).
func DriverAmplitudeVsVDD(vdds []float64) ([]Point, error) {
	return defaultChar.DriverAmplitudeVsVDD(vdds)
}

// RobustDriverAmplitudeVsVDD sweeps the defended driver (Fig. 9b).
func RobustDriverAmplitudeVsVDD(vdds []float64) ([]Point, error) {
	return defaultChar.RobustDriverAmplitudeVsVDD(vdds)
}

// AHTimeToSpikeVsVDD sweeps the AH first-spike latency against VDD (Fig. 6b).
func AHTimeToSpikeVsVDD(vdds []float64) ([]Point, error) {
	return defaultChar.AHTimeToSpikeVsVDD(vdds)
}

// AHTimeToSpikeVsAmplitude sweeps the AH latency against input amplitude (Fig. 5c).
func AHTimeToSpikeVsAmplitude(amps []float64) ([]Point, error) {
	return defaultChar.AHTimeToSpikeVsAmplitude(amps)
}

// IAFTimeToSpikeVsAmplitude sweeps the I&F latency against input amplitude (Fig. 5c).
func IAFTimeToSpikeVsAmplitude(amps []float64) ([]Point, error) {
	return defaultChar.IAFTimeToSpikeVsAmplitude(amps)
}

// IAFTimeToSpikeVsVDD sweeps the I&F first-spike latency against VDD (Fig. 6c).
func IAFTimeToSpikeVsVDD(vdds []float64) ([]Point, error) {
	return defaultChar.IAFTimeToSpikeVsVDD(vdds)
}
