package neuron

import "fmt"

// Point is one characterization sample: an independent value (VDD,
// amplitude, W/L, ...) and the measured dependent value.
type Point struct {
	X, Y float64
}

// PercentChange returns 100·(y−yRef)/yRef.
func PercentChange(y, yRef float64) float64 { return 100 * (y - yRef) / yRef }

// AHThresholdVsVDD sweeps the Axon Hillock membrane threshold (first
// inverter switching point) against VDD. This regenerates the AH series
// of Fig. 6a.
func AHThresholdVsVDD(vdds []float64) ([]Point, error) {
	out := make([]Point, 0, len(vdds))
	for _, v := range vdds {
		n := NewAxonHillock()
		n.VDD = v
		thr, err := n.Threshold()
		if err != nil {
			return nil, fmt.Errorf("neuron: AH threshold at VDD=%.2f: %w", v, err)
		}
		out = append(out, Point{X: v, Y: thr})
	}
	return out, nil
}

// AHThresholdVsSizing sweeps the AH threshold against the MP1 W/L
// multiple at a fixed VDD. Ratio r multiplies the nominal MP1 width.
// This regenerates Fig. 9c.
func AHThresholdVsSizing(vdd float64, ratios []float64) ([]Point, error) {
	out := make([]Point, 0, len(ratios))
	for _, r := range ratios {
		n := NewAxonHillock()
		n.VDD = vdd
		n.WP1 = r * 2e-6
		thr, err := n.Threshold()
		if err != nil {
			return nil, fmt.Errorf("neuron: AH threshold at W/L×%.0f: %w", r, err)
		}
		out = append(out, Point{X: r, Y: thr})
	}
	return out, nil
}

// IAFThresholdVsVDD sweeps the I&F threshold reference against VDD
// (the I&F series of Fig. 6a). The threshold is the resistive-divider
// reference actually presented to the amplifier.
func IAFThresholdVsVDD(vdds []float64) []Point {
	out := make([]Point, 0, len(vdds))
	for _, v := range vdds {
		n := NewIAF()
		n.VDD = v
		out = append(out, Point{X: v, Y: n.ThresholdVoltage()})
	}
	return out
}

// DriverAmplitudeVsVDD sweeps the current-mirror driver output spike
// amplitude against VDD (Fig. 5b).
func DriverAmplitudeVsVDD(vdds []float64) ([]Point, error) {
	out := make([]Point, 0, len(vdds))
	for _, v := range vdds {
		d := NewDriver()
		d.VDD = v
		amp, err := d.Amplitude()
		if err != nil {
			return nil, fmt.Errorf("neuron: driver amplitude at VDD=%.2f: %w", v, err)
		}
		out = append(out, Point{X: v, Y: amp})
	}
	return out, nil
}

// RobustDriverAmplitudeVsVDD sweeps the defended driver (Fig. 9b).
func RobustDriverAmplitudeVsVDD(vdds []float64) ([]Point, error) {
	out := make([]Point, 0, len(vdds))
	for _, v := range vdds {
		d := NewRobustDriver()
		d.VDD = v
		amp, err := d.Amplitude()
		if err != nil {
			return nil, fmt.Errorf("neuron: robust driver amplitude at VDD=%.2f: %w", v, err)
		}
		out = append(out, Point{X: v, Y: amp})
	}
	return out, nil
}

// AHTimeToSpikeVsVDD sweeps the AH first-spike latency against VDD
// (Fig. 6b mechanism).
func AHTimeToSpikeVsVDD(vdds []float64) ([]Point, error) {
	out := make([]Point, 0, len(vdds))
	for _, v := range vdds {
		n := NewAxonHillock()
		n.VDD = v
		tts, err := n.TimeToSpike(40e-6, 10e-9)
		if err != nil {
			return nil, fmt.Errorf("neuron: AH time-to-spike at VDD=%.2f: %w", v, err)
		}
		out = append(out, Point{X: v, Y: tts})
	}
	return out, nil
}

// AHTimeToSpikeVsAmplitude sweeps the AH first-spike latency against
// input spike amplitude at nominal VDD (Fig. 5c mechanism).
func AHTimeToSpikeVsAmplitude(amps []float64) ([]Point, error) {
	out := make([]Point, 0, len(amps))
	for _, a := range amps {
		n := NewAxonHillock()
		n.IAmp = a
		tts, err := n.TimeToSpike(80e-6, 10e-9)
		if err != nil {
			return nil, fmt.Errorf("neuron: AH time-to-spike at I=%.3g: %w", a, err)
		}
		out = append(out, Point{X: a, Y: tts})
	}
	return out, nil
}

// IAFTimeToSpikeVsAmplitude sweeps the I&F first-spike latency against
// input spike amplitude at nominal VDD (Fig. 5c mechanism).
func IAFTimeToSpikeVsAmplitude(amps []float64) ([]Point, error) {
	out := make([]Point, 0, len(amps))
	for _, a := range amps {
		n := NewIAF()
		n.IAmp = a
		tts, err := n.TimeToSpike(200e-6, 10e-9)
		if err != nil {
			return nil, fmt.Errorf("neuron: I&F time-to-spike at I=%.3g: %w", a, err)
		}
		out = append(out, Point{X: a, Y: tts})
	}
	return out, nil
}

// IAFTimeToSpikeVsVDD sweeps the I&F first-spike latency against VDD
// (Fig. 6c mechanism): higher VDD raises the divider threshold and
// slows firing.
func IAFTimeToSpikeVsVDD(vdds []float64) ([]Point, error) {
	out := make([]Point, 0, len(vdds))
	for _, v := range vdds {
		n := NewIAF()
		n.VDD = v
		tts, err := n.TimeToSpike(200e-6, 10e-9)
		if err != nil {
			return nil, fmt.Errorf("neuron: I&F time-to-spike at VDD=%.2f: %w", v, err)
		}
		out = append(out, Point{X: v, Y: tts})
	}
	return out, nil
}
