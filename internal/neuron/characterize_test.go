package neuron

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"snnfi/internal/runner"
)

// TestCharacterizerDeterministicAcrossWorkers pins the pool contract on
// the circuit tier: a characterization sweep produces bit-identical
// points — and bit-identical sink bytes — at every worker width.
func TestCharacterizerDeterministicAcrossWorkers(t *testing.T) {
	vdds := []float64{0.8, 1.0, 1.2}
	type outcome struct {
		pts  []Point
		json string
	}
	run := func(workers int) outcome {
		var buf bytes.Buffer
		sink := runner.NewJSONLSink(&buf)
		ch := &Characterizer{Workers: workers, Sinks: []runner.Sink{sink}}
		pts, err := ch.AHThresholdVsVDD(vdds)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := sink.Close(); err != nil {
			t.Fatalf("workers=%d: close sink: %v", workers, err)
		}
		return outcome{pts: pts, json: buf.String()}
	}
	ref := run(1)
	for _, w := range []int{2, 4} {
		got := run(w)
		for i := range ref.pts {
			if got.pts[i] != ref.pts[i] {
				t.Fatalf("workers=%d: point %d = %+v, workers=1 got %+v", w, i, got.pts[i], ref.pts[i])
			}
		}
		if got.json != ref.json {
			t.Fatalf("workers=%d: sink bytes differ from workers=1", w)
		}
	}
}

// TestCharacterizeParallelSpeedup is the circuit-tier wall-clock bar,
// mirroring core's TestLayerGridParallelSpeedup: with ≥4 workers an
// 8-point time-to-spike sweep runs ≥2× faster than serial while
// producing identical results. Circuit simulation is CPU-bound, so the
// test needs real cores; on smaller machines the sleep-bound pool test
// in internal/runner still enforces the concurrency.
func TestCharacterizeParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test skipped in -short mode")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("need ≥4 CPUs for a CPU-bound speedup, have %d", runtime.GOMAXPROCS(0))
	}
	vdds := []float64{0.8, 0.85, 0.9, 0.95, 1.05, 1.1, 1.15, 1.2}
	run := func(workers int) ([]Point, time.Duration) {
		ch := &Characterizer{Workers: workers}
		start := time.Now()
		pts, err := ch.AHTimeToSpikeVsVDD(vdds)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return pts, time.Since(start)
	}
	serialPts, serial := run(1)
	parallelPts, parallel := run(4)
	for i := range serialPts {
		if serialPts[i] != parallelPts[i] {
			t.Fatalf("point %d differs: %+v vs %+v", i, serialPts[i], parallelPts[i])
		}
	}
	if parallel > serial/2 {
		t.Fatalf("4 workers took %v, serial took %v — want ≥2× speedup", parallel, serial)
	}
}

// TestCharacterizerCachesByRecipe verifies that a cache-equipped
// Characterizer simulates each circuit recipe once: re-running a sweep
// is pure cache hits, and a different sweep sharing recipe points
// (sizing ratio 1 at VDD = 1.0 is exactly the nominal threshold
// circuit) reuses them.
func TestCharacterizerCachesByRecipe(t *testing.T) {
	ch := NewCharacterizer()
	cache := ch.Cache.(*runner.MemoryCache[float64])
	first, err := ch.AHThresholdVsVDD([]float64{0.9, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	_, misses0 := cache.Stats()
	again, err := ch.AHThresholdVsVDD([]float64{0.9, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	_, misses1 := cache.Stats()
	if misses1 != misses0 {
		t.Fatalf("re-run missed the cache: %d misses before, %d after", misses0, misses1)
	}
	for i := range first {
		if first[i] != again[i] {
			t.Fatalf("cached point %d = %+v, first run %+v", i, again[i], first[i])
		}
	}
	// Sizing ratio 1 at VDD 1.0 builds the identical AxonHillock recipe,
	// so the cross-sweep point must be served from the cache too.
	siz, err := ch.AHThresholdVsSizing(1.0, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	_, misses2 := cache.Stats()
	if misses2 != misses1 {
		t.Fatalf("cross-sweep shared recipe missed the cache: %d misses before, %d after", misses1, misses2)
	}
	if siz[0].Y != first[1].Y {
		t.Fatalf("cross-sweep threshold %.17g != cached %.17g", siz[0].Y, first[1].Y)
	}
	// Regression: the cache must carry only the measured value, never
	// the sweep coordinate — a cache hit from another sweep's axis must
	// not leak that axis's X (here: the hit comes from the VDD sweep at
	// 1.0 V, but this sweep's coordinate is the ratio ×1).
	if siz[0].X != 1 {
		t.Fatalf("cross-sweep cache hit leaked foreign X: got %v, want ratio 1", siz[0].X)
	}
}

// TestCharacterizerCacheKeepsSweepAxis reproduces the cross-axis
// collision directly at a point where the two axes disagree
// numerically: VDD sweep at 0.8 V first, then sizing ratio ×1 at
// VDD = 0.8 — same circuit recipe, different sweep coordinate.
func TestCharacterizerCacheKeepsSweepAxis(t *testing.T) {
	ch := NewCharacterizer()
	vddPts, err := ch.AHThresholdVsVDD([]float64{0.8})
	if err != nil {
		t.Fatal(err)
	}
	siz, err := ch.AHThresholdVsSizing(0.8, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if siz[0].X != 1 {
		t.Fatalf("sizing sweep X = %v, want ratio 1 (cache hit leaked VDD axis)", siz[0].X)
	}
	if siz[0].Y != vddPts[0].Y {
		t.Fatalf("shared recipe must share Y: %.17g vs %.17g", siz[0].Y, vddPts[0].Y)
	}
}
