// Package neuron builds the paper's analog circuits on top of the spice
// substrate and extracts the quantities the attack analysis needs:
// membrane thresholds, output time-to-spike, driver spike amplitudes,
// and dummy-neuron spike counts, all as functions of the supply voltage
// VDD (the adversary's knob).
//
// Circuit topologies follow Fig. 2a (Axon Hillock), Fig. 2b (voltage
// amplifier I&F), Fig. 5a (current-mirror driver), Fig. 9b (robust
// driver), Fig. 10a (comparator neuron) and Fig. 10b (dummy neuron) of
// the paper. Component values are the paper's where given (Cmem/Cfb =
// 1 pF for AH, Cmem = 10 pF and Ck = 20 pF for I&F, 200 nA / 25 ns
// input spikes, VDD = 1 V nominal).
package neuron

import (
	"fmt"

	"snnfi/internal/spice"
)

// AxonHillock parametrizes the Axon Hillock neuron circuit (Fig. 2a):
// a membrane capacitor integrating the input current, a two-inverter
// amplifier, capacitive positive feedback, and a gated reset path.
type AxonHillock struct {
	VDD float64 // supply voltage (V), nominal 1.0

	CMem float64 // membrane capacitance (F), paper: 1 pF
	CFb  float64 // feedback capacitance (F), paper: 1 pF

	// Input current spike train (paper: 200 nA, 25 ns width, 40 MHz).
	IAmp        float64
	SpikeWidth  float64
	SpikePeriod float64

	VPw float64 // reset-current control gate voltage (V)

	// First-inverter geometry. WP1/LP1 is the paper's defense knob
	// (Fig. 9c sweeps the MP1 W/L ratio).
	WP1, LP1 float64
	WN3, LN3 float64

	// Second-inverter geometry.
	WP2, LP2 float64
	WN4, LN4 float64

	// Reset transistor geometry (MN1 gate driven by Vout, MN2 by VPw).
	WN1, LN1 float64
	WN2, LN2 float64
}

// NewAxonHillock returns the paper's nominal Axon Hillock configuration.
func NewAxonHillock() *AxonHillock {
	return &AxonHillock{
		VDD:         1.0,
		CMem:        1e-12,
		CFb:         1e-12,
		IAmp:        200e-9,
		SpikeWidth:  25e-9,
		SpikePeriod: 25e-9,
		VPw:         0.42,
		WP1:         2e-6, LP1: 100e-9,
		WN3: 1e-6, LN3: 100e-9,
		WP2: 2e-6, LP2: 100e-9,
		WN4: 1e-6, LN4: 100e-9,
		WN1: 2e-6, LN1: 100e-9,
		WN2: 1e-6, LN2: 200e-9,
	}
}

// Build constructs the netlist. Node names: "vmem" (membrane), "n1"
// (first inverter output), "vout" (spike output), "r" (reset path).
func (a *AxonHillock) Build() *spice.Circuit {
	c := spice.New()
	c.V("VDD", "vdd", "0", spice.DC(a.VDD))
	c.V("VPW", "vpw", "0", spice.DC(a.VPw))
	c.I("IIN", "0", "vmem", spice.SpikeTrain{
		Amp: a.IAmp, Width: a.SpikeWidth, Period: a.SpikePeriod,
	})
	c.C("CMEM", "vmem", "0", a.CMem)
	c.C("CFB", "vout", "vmem", a.CFb)

	// Amplifier: two inverters in series.
	c.PMOSDev("MP1", "n1", "vmem", "vdd", a.WP1, a.LP1, spice.PMOS65())
	c.NMOSDev("MN3", "n1", "vmem", "0", a.WN3, a.LN3, spice.NMOS65())
	c.PMOSDev("MP2", "vout", "n1", "vdd", a.WP2, a.LP2, spice.PMOS65())
	c.NMOSDev("MN4", "vout", "n1", "0", a.WN4, a.LN4, spice.NMOS65())

	// Reset path: MN1 gated by the output, MN2 limits the reset current.
	c.NMOSDev("MN1", "vmem", "vout", "r", a.WN1, a.LN1, spice.NMOS65())
	c.NMOSDev("MN2", "r", "vpw", "0", a.WN2, a.LN2, spice.NMOS65())

	// Parasitic node capacitances (gate + junction, ~fF scale) keep the
	// regenerative switching transition numerically continuous.
	c.C("CPN1", "n1", "0", 5e-15)
	c.C("CPR", "r", "0", 2e-15)
	return c
}

// Simulate runs a transient from a discharged membrane.
func (a *AxonHillock) Simulate(stop, dt float64) (*spice.TranResult, error) {
	c := a.Build()
	return c.Tran(spice.TranOptions{Dt: dt, Stop: stop, UIC: true})
}

// TimeToSpike returns the time of the first output spike (first rising
// crossing of VDD/2 on vout).
func (a *AxonHillock) TimeToSpike(stop, dt float64) (float64, error) {
	res, err := a.Simulate(stop, dt)
	if err != nil {
		return 0, err
	}
	return spice.FirstCrossing(res.Time, res.V("vout"), a.VDD/2, true)
}

// SpikePeriodOut returns the steady-state firing period of the output.
func (a *AxonHillock) SpikePeriodOut(stop, dt float64) (float64, error) {
	res, err := a.Simulate(stop, dt)
	if err != nil {
		return 0, err
	}
	return spice.SpikePeriod(res.Time, res.V("vout"), a.VDD/2)
}

// Threshold measures the membrane threshold: the switching point of the
// first inverter, found by a DC transfer sweep of an isolated inverter
// with the same devices and supply (the membrane voltage at which the
// amplifier flips, per §III-C of the paper).
func (a *AxonHillock) Threshold() (float64, error) {
	c := spice.New()
	c.V("VDD", "vdd", "0", spice.DC(a.VDD))
	c.V("VIN", "in", "0", spice.DC(0))
	c.PMOSDev("MP1", "out", "in", "vdd", a.WP1, a.LP1, spice.PMOS65())
	c.NMOSDev("MN3", "out", "in", "0", a.WN3, a.LN3, spice.NMOS65())
	var sweep []float64
	for v := 0.0; v <= a.VDD+1e-9; v += a.VDD / 400 {
		sweep = append(sweep, v)
	}
	res, err := c.DCSweep("VIN", sweep)
	if err != nil {
		return 0, fmt.Errorf("neuron: AH threshold sweep: %w", err)
	}
	vout := res.V("out")
	for i := range sweep {
		if vout[i] <= sweep[i] {
			return sweep[i], nil
		}
	}
	return 0, fmt.Errorf("neuron: AH inverter never switched below VDD=%.3g", a.VDD)
}
