package neuron

import (
	"math"
	"testing"
)

// Golden characterization anchors, captured from the engine BEFORE the
// incremental-stamping/workspace refactor (PR 3) at the paper's anchor
// points: the Fig. 5b driver amplitude at 0.8 V and nominal VDD, the
// Fig. 6a threshold endpoints, the defended driver, and the AH
// time-to-spike at nominal supply. They pin the solver refactor as
// behavior-preserving where the paper's transfer maps are anchored.
//
// Threshold goldens are exact: the measurement returns a DC-sweep grid
// point, which only moves if convergence flips a whole grid cell.
// Amplitude/timing goldens are interpolated/peak measurements of
// converged transients; the tolerance (1 part in 1e9) is ~1000× the
// drift Newton convergence noise could produce while being far below
// any physical effect.
const goldenRelTol = 1e-9

func relClose(got, want float64) bool {
	if want == 0 {
		return got == 0
	}
	return math.Abs(got-want) <= goldenRelTol*math.Abs(want)
}

func TestGoldenDriverAmplitude(t *testing.T) {
	want := map[float64]float64{
		0.8: 1.5749450805378025e-07,
		1.0: 2.1514137498572537e-07,
		1.2: 2.7354772069126285e-07,
	}
	pts, err := DriverAmplitudeVsVDD([]float64{0.8, 1.0, 1.2})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if !relClose(p.Y, want[p.X]) {
			t.Errorf("driver amplitude at VDD=%.1f: got %.17g, want %.17g", p.X, p.Y, want[p.X])
		}
	}
	// The paper's Fig. 5b headline: ~ −27% at 0.8 V, ~ +27% here (the
	// level-1 model swings slightly less than the 32 nm kit's ±32%).
	if dev := PercentChange(pts[0].Y, pts[1].Y); dev > -20 || dev < -40 {
		t.Errorf("driver amplitude swing at 0.8 V = %+.1f%%, want ≈ −27%%", dev)
	}
}

func TestGoldenThresholdEndpoints(t *testing.T) {
	wantAH := map[float64]float64{
		0.8: 0.4020000000000003,
		1.0: 0.50250000000000028,
		1.2: 0.60300000000000042,
	}
	ah, err := AHThresholdVsVDD([]float64{0.8, 1.0, 1.2})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ah {
		if p.Y != wantAH[p.X] {
			t.Errorf("AH threshold at VDD=%.1f: got %.17g, want %.17g (grid-exact)", p.X, p.Y, wantAH[p.X])
		}
	}
	iaf, err := IAFThresholdVsVDD([]float64{0.8, 1.0, 1.2})
	if err != nil {
		t.Fatal(err)
	}
	wantIAF := map[float64]float64{0.8: 0.4, 1.0: 0.5, 1.2: 0.6}
	for _, p := range iaf {
		if !relClose(p.Y, wantIAF[p.X]) {
			t.Errorf("I&F threshold at VDD=%.1f: got %.17g, want %.17g", p.X, p.Y, wantIAF[p.X])
		}
	}
}

func TestGoldenRobustDriver(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: robust-driver transients are slow")
	}
	want := map[float64]float64{
		0.8: 2.0002930198309619e-07,
		1.0: 2.0007496326064341e-07,
		1.2: 2.0012388571258688e-07,
	}
	pts, err := RobustDriverAmplitudeVsVDD([]float64{0.8, 1.0, 1.2})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if !relClose(p.Y, want[p.X]) {
			t.Errorf("robust driver at VDD=%.1f: got %.17g, want %.17g", p.X, p.Y, want[p.X])
		}
	}
}

func TestGoldenAHTimeToSpike(t *testing.T) {
	n := NewAxonHillock()
	tts, err := n.TimeToSpike(40e-6, 10e-9)
	if err != nil {
		t.Fatal(err)
	}
	const want = 5.2650065850230343e-06
	if !relClose(tts, want) {
		t.Errorf("AH time-to-spike at nominal VDD: got %.17g, want %.17g", tts, want)
	}
}
