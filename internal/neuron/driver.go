package neuron

import (
	"fmt"

	"snnfi/internal/spice"
)

// Driver parametrizes the current-mirror input driver (Fig. 5a): a
// resistor-programmed diode-connected reference copied by a mirror
// transistor, with a series switch gated by incoming voltage spikes.
// Its output spike amplitude tracks VDD — the vulnerability behind
// Attack 1.
type Driver struct {
	VDD float64 // supply voltage (V), nominal 1.0
	R1  float64 // reference resistor (Ω), sized for 200 nA at VDD = 1 V

	// Control spike train on the switch gate.
	CtrlHigh   float64
	CtrlWidth  float64
	CtrlPeriod float64

	// Sense voltage emulating the neuron membrane the driver feeds.
	VSense float64

	WRef, LRef float64 // mirror reference/output device geometry
}

// NewDriver returns the paper's nominal driver configuration.
func NewDriver() *Driver {
	return &Driver{
		VDD:        1.0,
		R1:         3.3e6,
		CtrlHigh:   1.0,
		CtrlWidth:  25e-9,
		CtrlPeriod: 50e-9,
		VSense:     0.5,
		WRef:       1e-6, LRef: 200e-9,
	}
}

// Build constructs the netlist. The output leg sinks current from a
// sense voltage source "VL" holding node "out" at VSense; the branch
// current of VL is the driver output current.
func (d *Driver) Build() *spice.Circuit {
	c := spice.New()
	c.V("VDD", "vdd", "0", spice.DC(d.VDD))
	c.R("R1", "vdd", "x", d.R1)
	c.NMOSDev("MN2", "x", "x", "0", d.WRef, d.LRef, spice.NMOS65())
	// Output leg: MN3 mirrors the reference; MN1 switches it.
	c.NMOSDev("MN3", "out", "x", "sw", d.WRef, d.LRef, spice.NMOS65())
	c.NMOSDev("MN1", "sw", "vctr", "0", 2e-6, 100e-9, spice.NMOS65())
	c.V("VCTR", "vctr", "0", spice.Pulse{
		Low: 0, High: d.CtrlHigh, Rise: 1e-9, Fall: 1e-9,
		Width: d.CtrlWidth, Period: d.CtrlPeriod,
	})
	c.V("VL", "out", "0", spice.DC(d.VSense))
	return c
}

// Amplitude returns the steady-state output spike amplitude: the peak
// current sunk from the sense source while the switch is on.
func (d *Driver) Amplitude() (float64, error) {
	c := d.Build()
	res, err := c.Tran(spice.TranOptions{Dt: 0.5e-9, Stop: 5 * d.CtrlPeriod, UIC: false})
	if err != nil {
		return 0, fmt.Errorf("neuron: driver transient: %w", err)
	}
	// Current flows from VL's + terminal into the mirror when the switch
	// is on; the branch current is negative then. Amplitude = |min|,
	// measured after the first full period to skip start-up.
	iv := res.I("VL")
	tmin := d.CtrlPeriod
	amp := 0.0
	for i, tm := range res.Time {
		if tm < tmin {
			continue
		}
		if cur := -iv[i]; cur > amp {
			amp = cur
		}
	}
	if amp <= 0 {
		return 0, fmt.Errorf("neuron: driver produced no output current")
	}
	return amp, nil
}

// RobustDriver parametrizes the §V-A defense (Fig. 9b): an op-amp
// regulating a PMOS current source against a supply-independent
// reference, mirrored to the output. Output amplitude is VRef/R1 to
// first order, independent of VDD.
type RobustDriver struct {
	VDD    float64
	VRef   float64 // bandgap reference (V), supply-independent
	R1     float64 // programming resistor (Ω)
	VSense float64 // sense voltage at the output node

	WP, LP float64 // PMOS source/mirror geometry (long channel per §V-A)
}

// NewRobustDriver returns the nominal robust-driver configuration
// producing 200 nA.
func NewRobustDriver() *RobustDriver {
	return &RobustDriver{
		VDD:    1.0,
		VRef:   0.5,
		R1:     2.5e6,
		VSense: 0.5,
		WP:     2e-6, LP: 400e-9,
	}
}

// Build constructs the netlist. The op-amp output node "g" drives the
// gates of MP1 (regulation leg, node "fb") and MP2 (output leg feeding
// the sense source "VL"). The supply soft-starts over 2 µs and a
// compensation capacitor at the feedback node stabilizes the loop, so
// the regulated point is reached by a well-behaved transient rather
// than a cold DC solve of a high-gain feedback loop.
func (d *RobustDriver) Build() *spice.Circuit {
	c := spice.New()
	ramp, _ := spice.NewPWL([]float64{0, 2e-6}, []float64{0, d.VDD})
	c.V("VDD", "vdd", "0", ramp)
	c.V("VREF", "vref", "0", spice.DC(d.VRef))
	c.R("RREFK", "vref", "0", 10e6) // keeps the reference node multi-connected
	// Regulation: fb is forced to VRef by feedback, so I(MP1) = VRef/R1.
	// Moderate gain keeps Newton iteration well-conditioned; the residual
	// regulation error (~VRef/gain) is far below the paper's 3% budget.
	c.OpAmp("U1", "fb", "vref", "g", 1e3, 0, d.VDD)
	c.PMOSDev("MP1", "fb", "g", "vdd", d.WP, d.LP, spice.PMOS65())
	c.R("R1", "fb", "0", d.R1)
	c.C("CC", "fb", "0", 1e-12)
	// Output mirror leg.
	c.PMOSDev("MP2", "out", "g", "vdd", d.WP, d.LP, spice.PMOS65())
	c.V("VL", "out", "0", spice.DC(d.VSense))
	return c
}

// Amplitude returns the settled output current sourced into the sense
// node after the supply soft-start.
func (d *RobustDriver) Amplitude() (float64, error) {
	c := d.Build()
	res, err := c.Tran(spice.TranOptions{Dt: 20e-9, Stop: 30e-6, UIC: true})
	if err != nil {
		return 0, fmt.Errorf("neuron: robust driver transient: %w", err)
	}
	// MP2 sources current into "out"; it flows into VL's + terminal, so
	// the branch current is positive in the + → − direction.
	amp := spice.SettledValue(res.Time, res.I("VL"), 0.1)
	if amp <= 0 {
		return 0, fmt.Errorf("neuron: robust driver produced no output current (%.3g)", amp)
	}
	return amp, nil
}
