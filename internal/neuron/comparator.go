package neuron

import (
	"fmt"

	"snnfi/internal/spice"
)

// ComparatorAH parametrizes the §V-B2 comparator defense (Fig. 10a):
// the Axon Hillock neuron with its first inverter replaced by a
// five-transistor comparator referenced to a bandgap-derived threshold,
// so the firing threshold no longer depends on VDD or inverter sizing.
type ComparatorAH struct {
	VDD float64

	CMem float64
	CFb  float64

	IAmp        float64
	SpikeWidth  float64
	SpikePeriod float64

	VPw float64

	// VThr is the comparator reference (paper: IN± biased at 600 mV, VB
	// at 400 mV; we expose the effective threshold directly and derive
	// it from a bandgap model with the given residual sensitivity).
	VThr            float64
	BandgapResidual float64
	VB              float64
}

// NewComparatorAH returns the nominal comparator-neuron configuration.
func NewComparatorAH() *ComparatorAH {
	return &ComparatorAH{
		VDD:             1.0,
		CMem:            1e-12,
		CFb:             1e-12,
		IAmp:            200e-9,
		SpikeWidth:      25e-9,
		SpikePeriod:     25e-9,
		VPw:             0.42,
		VThr:            0.5,
		BandgapResidual: 0.0056 / 0.15,
		VB:              0.4,
	}
}

// EffectiveThreshold returns the comparator reference voltage at the
// configured VDD, including the bandgap's residual supply sensitivity.
func (n *ComparatorAH) EffectiveThreshold() float64 {
	return n.VThr * (1 + n.BandgapResidual*(n.VDD-1.0))
}

// Build constructs the netlist. Node names mirror AxonHillock.Build,
// with "vthr" as the comparator reference.
func (n *ComparatorAH) Build() *spice.Circuit {
	c := spice.New()
	c.V("VDD", "vdd", "0", spice.DC(n.VDD))
	c.V("VPW", "vpw", "0", spice.DC(n.VPw))
	c.V("VB", "vb", "0", spice.DC(n.VB))
	c.V("VTHR", "vthr", "0", spice.DC(n.EffectiveThreshold()))
	c.R("RTHRK", "vthr", "0", 10e6)
	c.I("IIN", "0", "vmem", spice.SpikeTrain{
		Amp: n.IAmp, Width: n.SpikeWidth, Period: n.SpikePeriod,
	})
	c.C("CMEM", "vmem", "0", n.CMem)
	c.C("CFB", "vout", "vmem", n.CFb)

	// Comparator (replaces the first inverter): the membrane drives the
	// output-side device M2 directly, so "n1" falls as vmem rises past
	// vthr — matching the inverting first stage it replaces. Long
	// channels give the stage the gain a decisive comparison needs.
	nLong, pLong := spice.NMOS65(), spice.PMOS65()
	nLong.Lambda, pLong.Lambda = 0.02, 0.02
	c.NMOSDev("M1", "x1", "vthr", "tail", 2e-6, 400e-9, nLong)
	c.NMOSDev("M2", "n1", "vmem", "tail", 2e-6, 400e-9, nLong)
	c.PMOSDev("M3", "x1", "x1", "vdd", 2e-6, 400e-9, pLong)
	c.PMOSDev("M4", "n1", "x1", "vdd", 2e-6, 400e-9, pLong)
	c.NMOSDev("M5", "tail", "vb", "0", 2e-6, 400e-9, nLong)
	c.C("CPX1", "x1", "0", 5e-15)
	c.C("CPTAIL", "tail", "0", 5e-15)
	c.C("CPN1", "n1", "0", 5e-15)

	// Second inverter and reset path as in the stock Axon Hillock.
	c.PMOSDev("MP2", "vout", "n1", "vdd", 2e-6, 100e-9, spice.PMOS65())
	c.NMOSDev("MN4", "vout", "n1", "0", 1e-6, 100e-9, spice.NMOS65())
	c.NMOSDev("MN1", "vmem", "vout", "r", 2e-6, 100e-9, spice.NMOS65())
	c.NMOSDev("MN2", "r", "vpw", "0", 1e-6, 200e-9, spice.NMOS65())
	return c
}

// Simulate runs a transient from a discharged membrane.
func (n *ComparatorAH) Simulate(stop, dt float64) (*spice.TranResult, error) {
	c := n.Build()
	return c.Tran(spice.TranOptions{Dt: dt, Stop: stop, UIC: true})
}

// TimeToSpike returns the first output spike time.
func (n *ComparatorAH) TimeToSpike(stop, dt float64) (float64, error) {
	res, err := n.Simulate(stop, dt)
	if err != nil {
		return 0, err
	}
	return spice.FirstCrossing(res.Time, res.V("vout"), n.VDD/2, true)
}

// MeasuredThreshold extracts the membrane voltage just before the
// regenerative output latch engages (first upward membrane jump much
// faster than the charging slope; the Cfb feedback kick makes the
// at-crossing sample overshoot, so the pre-jump sample is the honest
// threshold).
func (n *ComparatorAH) MeasuredThreshold(stop, dt float64) (float64, error) {
	res, err := n.Simulate(stop, dt)
	if err != nil {
		return 0, err
	}
	vmem := res.V("vmem")
	const jump = 0.02 // V per step: far above the ~1 mV/step charge slope
	for i := 1; i < len(vmem); i++ {
		if vmem[i]-vmem[i-1] > jump {
			return vmem[i-1], nil
		}
	}
	return 0, fmt.Errorf("neuron: comparator neuron never latched within %.3g s", stop)
}
