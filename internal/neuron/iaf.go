package neuron

import (
	"fmt"

	"snnfi/internal/spice"
)

// IAF parametrizes the voltage-amplifier integrate-and-fire neuron
// (Fig. 2b): membrane capacitor with a gate-controlled leak, a
// five-transistor amplifier comparing the membrane against an explicit
// threshold Vthr (derived from VDD by resistive division), a pull-up
// latch, and a capacitor-timed reset/refractory path.
type IAF struct {
	VDD float64 // supply voltage (V), nominal 1.0

	CMem float64 // membrane capacitance (F), paper: 10 pF
	CK   float64 // refractory timing capacitance (F), paper: 20 pF

	// Input current spike train (paper: 200 nA, 25 ns width, 25 ns gap).
	IAmp        float64
	SpikeWidth  float64
	SpikePeriod float64

	VLk float64 // leak transistor gate voltage (V), paper: 0.2
	VB  float64 // amplifier tail bias voltage (V)

	// ThrDividerRatio sets Vthr = ThrDividerRatio·VDD (paper: 0.5, a
	// simple resistive division, which is why Vthr tracks VDD and the
	// threshold attack works).
	ThrDividerRatio float64

	// UseBandgapThr replaces the resistive divider with a
	// supply-independent reference (the §V-B1 bandgap defense). The
	// residual supply sensitivity is BandgapResidual per volt of VDD
	// deviation from nominal (paper: ±0.56% over the swept range).
	UseBandgapThr   bool
	BandgapResidual float64
	ThrNominal      float64
}

// NewIAF returns the paper's nominal I&F configuration.
func NewIAF() *IAF {
	return &IAF{
		VDD:             1.0,
		CMem:            10e-12,
		CK:              20e-12,
		IAmp:            200e-9,
		SpikeWidth:      25e-9,
		SpikePeriod:     50e-9,
		VLk:             0.15,
		VB:              0.5,
		ThrDividerRatio: 0.5,
		BandgapResidual: 0.0056 / 0.15, // ±0.56% across a 150 mV supply excursion
		ThrNominal:      0.5,
	}
}

// ThresholdVoltage returns the threshold reference Vthr presented to
// the amplifier at the configured VDD.
func (n *IAF) ThresholdVoltage() float64 {
	if n.UseBandgapThr {
		return n.ThrNominal * (1 + n.BandgapResidual*(n.VDD-1.0))
	}
	return n.ThrDividerRatio * n.VDD
}

// Build constructs the netlist. Key nodes: "vmem" (membrane), "vthr"
// (threshold reference), "aout" (amplifier output), "n1", "nck"
// (refractory capacitor).
func (n *IAF) Build() *spice.Circuit {
	c := spice.New()
	c.V("VDD", "vdd", "0", spice.DC(n.VDD))
	c.V("VLK", "vlk", "0", spice.DC(n.VLk))
	c.V("VB", "vb", "0", spice.DC(n.VB))
	c.I("IIN", "0", "vmem", spice.SpikeTrain{
		Amp: n.IAmp, Width: n.SpikeWidth, Period: n.SpikePeriod,
	})
	c.C("CMEM", "vmem", "0", n.CMem)

	// Threshold reference.
	if n.UseBandgapThr {
		c.V("VTHR", "vthr", "0", spice.DC(n.ThresholdVoltage()))
		// Keep the node multiply-connected for Validate.
		c.R("RTHR", "vthr", "0", 10e6)
	} else {
		r := 1e6
		c.R("RT1", "vdd", "vthr", r*(1-n.ThrDividerRatio)/n.ThrDividerRatio)
		c.R("RT2", "vthr", "0", r)
	}

	// Leak transistor MN4: sized/biased for a subthreshold leak well
	// below the input drive so the membrane integrates upward (a ~1 µA
	// leak would pin a 100 nA-average input at ground).
	c.NMOSDev("MN4", "vmem", "vlk", "0", 0.2e-6, 400e-9, spice.NMOS65())

	// Five-transistor amplifier: diff pair M1/M2, PMOS mirror M3/M4,
	// tail M5. Output rises when vmem exceeds vthr. Long-channel cards
	// (low channel-length modulation) give the stage enough gain that
	// the comparison is decisive within a few millivolts — without it
	// the circuit finds a spurious analog equilibrium at the threshold
	// instead of firing.
	nLong, pLong := spice.NMOS65(), spice.PMOS65()
	nLong.Lambda, pLong.Lambda = 0.02, 0.02
	c.NMOSDev("M1", "x1", "vmem", "tail", 2e-6, 400e-9, nLong)
	c.NMOSDev("M2", "aout", "vthr", "tail", 2e-6, 400e-9, nLong)
	c.PMOSDev("M3", "x1", "x1", "vdd", 2e-6, 400e-9, pLong)
	c.PMOSDev("M4", "aout", "x1", "vdd", 2e-6, 400e-9, pLong)
	c.NMOSDev("M5", "tail", "vb", "0", 2e-6, 400e-9, nLong)

	// First inverter; its output gates the membrane pull-up MPU.
	c.PMOSDev("MP5", "n1", "aout", "vdd", 2e-6, 100e-9, spice.PMOS65())
	c.NMOSDev("MN5", "n1", "aout", "0", 1e-6, 100e-9, spice.NMOS65())
	c.PMOSDev("MPU", "vmem", "n1", "vdd", 0.5e-6, 100e-9, spice.PMOS65())

	// Second inverter charges the refractory capacitor CK, whose node
	// voltage gates the reset transistor MN1. MN1 is sized to win the
	// contention against MPU (4× stronger) but no bigger, to bound its
	// subthreshold leak into the membrane.
	c.PMOSDev("MP6", "nck", "n1", "vdd", 0.4e-6, 100e-9, spice.PMOS65())
	c.NMOSDev("MN6", "nck", "n1", "0", 0.2e-6, 100e-9, spice.NMOS65())
	c.C("CK", "nck", "0", n.CK)
	c.NMOSDev("MN1", "vmem", "nck", "0", 1e-6, 200e-9, spice.NMOS65())

	// Parasitic node capacitances (gate + junction, ~fF scale). They are
	// physically present on every internal net and matter numerically:
	// they give the regenerative firing transition a continuous
	// trajectory that timestep subdivision can follow.
	c.C("CPX1", "x1", "0", 5e-15)
	c.C("CPTAIL", "tail", "0", 5e-15)
	c.C("CPAOUT", "aout", "0", 5e-15)
	c.C("CPN1", "n1", "0", 5e-15)
	return c
}

// Simulate runs a transient from a discharged membrane.
func (n *IAF) Simulate(stop, dt float64) (*spice.TranResult, error) {
	c := n.Build()
	return c.Tran(spice.TranOptions{Dt: dt, Stop: stop, UIC: true})
}

// TimeToSpike returns the time at which the membrane first reaches the
// amplifier threshold and the output fires (first rising crossing of
// VDD/2 on the amplifier output).
func (n *IAF) TimeToSpike(stop, dt float64) (float64, error) {
	res, err := n.Simulate(stop, dt)
	if err != nil {
		return 0, err
	}
	return spice.FirstCrossing(res.Time, res.V("aout"), n.VDD/2, true)
}

// MeasuredThreshold extracts the effective firing threshold: the
// membrane voltage just before the regenerative pull-up latch engages
// (detected as the first upward membrane jump much faster than the
// input-driven charging slope). It exceeds the divider reference by the
// amplifier's transition overdrive, so it is the *dynamic* threshold; the
// designed threshold is ThresholdVoltage().
func (n *IAF) MeasuredThreshold(stop, dt float64) (float64, error) {
	res, err := n.Simulate(stop, dt)
	if err != nil {
		return 0, err
	}
	vmem := res.V("vmem")
	const jump = 0.02 // V per step: far above the ~9.5 mV/µs charge slope
	for i := 1; i < len(vmem); i++ {
		if vmem[i]-vmem[i-1] > jump {
			return vmem[i-1], nil
		}
	}
	return 0, fmt.Errorf("neuron: I&F never latched within %.3g s", stop)
}
