package neuron

import (
	"math"
	"testing"

	"snnfi/internal/spice"
)

// --- Axon Hillock neuron (Fig. 2a / Fig. 3) ---

func TestAHFiresRepeatedly(t *testing.T) {
	ah := NewAxonHillock()
	res, err := ah.Simulate(40e-6, 10e-9)
	if err != nil {
		t.Fatal(err)
	}
	n := spice.SpikeCount(res.Time, res.V("vout"), ah.VDD/2)
	if n < 3 {
		t.Fatalf("AH neuron should fire repeatedly, got %d spikes", n)
	}
}

func TestAHMembraneSawtooth(t *testing.T) {
	ah := NewAxonHillock()
	res, err := ah.Simulate(40e-6, 10e-9)
	if err != nil {
		t.Fatal(err)
	}
	vmem := res.V("vmem")
	peak := spice.Peak(res.Time, vmem, 0, 40e-6)
	if peak < 0.4 || peak > 1.4 {
		t.Fatalf("membrane peak %.3f outside plausible range", peak)
	}
	// After the first spike the membrane must come back down: find a
	// sample after 1 µs that is below 0.2 V.
	reset := false
	for i, tm := range res.Time {
		if tm > 1e-6 && vmem[i] < 0.2 {
			reset = true
			break
		}
	}
	if !reset {
		t.Fatal("membrane never reset after firing")
	}
}

func TestAHOutputSwingsRailToRail(t *testing.T) {
	ah := NewAxonHillock()
	res, err := ah.Simulate(40e-6, 10e-9)
	if err != nil {
		t.Fatal(err)
	}
	vout := res.V("vout")
	hi := spice.Peak(res.Time, vout, 0, 40e-6)
	lo, _ := minOf(vout)
	if hi < 0.9*ah.VDD {
		t.Fatalf("output never reached the high rail: peak %.3f", hi)
	}
	if lo > 0.1*ah.VDD {
		t.Fatalf("output never reached the low rail: min %.3f", lo)
	}
}

func TestAHThresholdNominal(t *testing.T) {
	ah := NewAxonHillock()
	thr, err := ah.Threshold()
	if err != nil {
		t.Fatal(err)
	}
	// Symmetric inverter at VDD=1: threshold designed at 0.5 V (paper).
	if math.Abs(thr-0.5) > 0.05 {
		t.Fatalf("AH nominal threshold = %.4f, want ≈0.5", thr)
	}
}

func TestAHThresholdTracksVDD(t *testing.T) {
	pts, err := AHThresholdVsVDD([]float64{0.8, 1.0, 1.2})
	if err != nil {
		t.Fatal(err)
	}
	ref := pts[1].Y
	lo := PercentChange(pts[0].Y, ref)
	hi := PercentChange(pts[2].Y, ref)
	// Paper Fig. 6a: −17.91% at 0.8 V, +16.76% at 1.2 V. Accept the
	// square-law-model band around those values.
	if lo > -14 || lo < -25 {
		t.Fatalf("AH threshold change at 0.8 V = %.2f%%, want ≈−18%%", lo)
	}
	if hi < 14 || hi > 25 {
		t.Fatalf("AH threshold change at 1.2 V = %.2f%%, want ≈+17%%", hi)
	}
}

func TestAHTimeToSpikeFasterAtLowVDD(t *testing.T) {
	// Fig. 6b: lower VDD lowers the inverter threshold, so the neuron
	// fires earlier; higher VDD delays it.
	pts, err := AHTimeToSpikeVsVDD([]float64{0.8, 1.0, 1.2})
	if err != nil {
		t.Fatal(err)
	}
	if !(pts[0].Y < pts[1].Y && pts[1].Y < pts[2].Y) {
		t.Fatalf("time-to-spike should increase with VDD, got %v", pts)
	}
	lo := PercentChange(pts[0].Y, pts[1].Y)
	if lo > -10 || lo < -30 {
		t.Fatalf("AH tts change at 0.8 V = %.1f%%, want ≈−18%%", lo)
	}
}

func TestAHTimeToSpikeVsAmplitude(t *testing.T) {
	// Fig. 5c: lower input amplitude slows the first spike, higher
	// amplitude speeds it up (paper: +53.7% at 136 nA, −24.7% at 264 nA).
	pts, err := AHTimeToSpikeVsAmplitude([]float64{136e-9, 200e-9, 264e-9})
	if err != nil {
		t.Fatal(err)
	}
	slow := PercentChange(pts[0].Y, pts[1].Y)
	fast := PercentChange(pts[2].Y, pts[1].Y)
	if slow < 20 || slow > 90 {
		t.Fatalf("AH tts at 136 nA = %+.1f%%, want ≈+50%%", slow)
	}
	if fast > -10 || fast < -40 {
		t.Fatalf("AH tts at 264 nA = %+.1f%%, want ≈−25%%", fast)
	}
}

// --- Voltage-amplifier I&F neuron (Fig. 2b / Fig. 4) ---

func TestIAFFiresAndResets(t *testing.T) {
	n := NewIAF()
	res, err := n.Simulate(150e-6, 10e-9)
	if err != nil {
		t.Fatal(err)
	}
	vmem := res.V("vmem")
	peak := spice.Peak(res.Time, vmem, 0, 150e-6)
	if peak < 0.5 {
		t.Fatalf("membrane never reached threshold: peak %.3f", peak)
	}
	// The reset must bring the membrane back below 0.2 V after firing.
	fired, err := spice.FirstCrossing(res.Time, vmem, 0.5, true)
	if err != nil {
		t.Fatal(err)
	}
	reset := false
	for i, tm := range res.Time {
		if tm > fired+2e-6 && vmem[i] < 0.2 {
			reset = true
			break
		}
	}
	if !reset {
		t.Fatal("membrane never reset after firing")
	}
}

func TestIAFMeasuredThresholdMatchesDivider(t *testing.T) {
	for _, vdd := range []float64{0.8, 1.0, 1.2} {
		n := NewIAF()
		n.VDD = vdd
		thr, err := n.MeasuredThreshold(250e-6, 10e-9)
		if err != nil {
			t.Fatalf("VDD=%.1f: %v", vdd, err)
		}
		want := n.ThresholdVoltage()
		if math.Abs(thr-want)/want > 0.05 {
			t.Fatalf("VDD=%.1f: measured threshold %.4f, divider %.4f", vdd, thr, want)
		}
	}
}

func TestIAFThresholdScalesLinearlyWithVDD(t *testing.T) {
	pts, err := IAFThresholdVsVDD([]float64{0.8, 1.0, 1.2})
	if err != nil {
		t.Fatal(err)
	}
	ref := pts[1].Y
	if lo := PercentChange(pts[0].Y, ref); math.Abs(lo+20) > 0.5 {
		t.Fatalf("divider threshold at 0.8 V: %+.2f%%, want −20%%", lo)
	}
	if hi := PercentChange(pts[2].Y, ref); math.Abs(hi-20) > 0.5 {
		t.Fatalf("divider threshold at 1.2 V: %+.2f%%, want +20%%", hi)
	}
}

func TestIAFBandgapThresholdNearlyConstant(t *testing.T) {
	// §V-B1 defense: with a bandgap reference the threshold moves ≤±0.6%
	// across the attack range instead of ±20%.
	for _, vdd := range []float64{0.8, 1.0, 1.2} {
		n := NewIAF()
		n.VDD = vdd
		n.UseBandgapThr = true
		dev := math.Abs(PercentChange(n.ThresholdVoltage(), n.ThrNominal))
		if dev > 0.8 {
			t.Fatalf("bandgap threshold deviates %.2f%% at VDD=%.1f", dev, vdd)
		}
	}
}

func TestIAFTimeToSpikeSlowerAtHighVDD(t *testing.T) {
	// Fig. 6c: higher VDD raises the divider threshold, slowing firing.
	pts, err := IAFTimeToSpikeVsVDD([]float64{0.8, 1.0, 1.2})
	if err != nil {
		t.Fatal(err)
	}
	if !(pts[0].Y < pts[1].Y && pts[1].Y < pts[2].Y) {
		t.Fatalf("I&F time-to-spike should increase with VDD, got %v", pts)
	}
}

func TestIAFTimeToSpikeVsAmplitude(t *testing.T) {
	pts, err := IAFTimeToSpikeVsAmplitude([]float64{136e-9, 264e-9})
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Y <= pts[1].Y {
		t.Fatalf("lower amplitude must fire slower: %v", pts)
	}
}

// --- Current drivers (Fig. 5a / Fig. 9b) ---

func TestDriverNominalAmplitude(t *testing.T) {
	d := NewDriver()
	amp, err := d.Amplitude()
	if err != nil {
		t.Fatal(err)
	}
	// Paper designs for 200 nA at VDD=1 V; our mirror lands within ~15%.
	if amp < 150e-9 || amp > 260e-9 {
		t.Fatalf("driver amplitude %.4g A, want ≈200 nA", amp)
	}
}

func TestDriverAmplitudeTracksVDD(t *testing.T) {
	pts, err := DriverAmplitudeVsVDD([]float64{0.8, 1.0, 1.2})
	if err != nil {
		t.Fatal(err)
	}
	ref := pts[1].Y
	lo := PercentChange(pts[0].Y, ref)
	hi := PercentChange(pts[2].Y, ref)
	// Paper Fig. 5b: −32% at 0.8 V, +32% at 1.2 V.
	if lo > -15 || lo < -45 {
		t.Fatalf("driver amplitude change at 0.8 V = %.1f%%, want ≈−32%%", lo)
	}
	if hi < 15 || hi > 45 {
		t.Fatalf("driver amplitude change at 1.2 V = %.1f%%, want ≈+32%%", hi)
	}
}

func TestRobustDriverConstantAmplitude(t *testing.T) {
	// §V-A defense: the regulated driver holds its amplitude across the
	// whole attack range.
	pts, err := RobustDriverAmplitudeVsVDD([]float64{0.8, 1.0, 1.2})
	if err != nil {
		t.Fatal(err)
	}
	ref := pts[1].Y
	for _, p := range pts {
		if dev := math.Abs(PercentChange(p.Y, ref)); dev > 2 {
			t.Fatalf("robust driver deviates %.2f%% at VDD=%.2f", dev, p.X)
		}
	}
	if ref < 180e-9 || ref > 220e-9 {
		t.Fatalf("robust driver nominal amplitude %.4g, want ≈200 nA", ref)
	}
}

// --- Sizing defense (Fig. 9c) ---

func TestSizingDefenseReducesThresholdShift(t *testing.T) {
	pts, err := AHThresholdVsSizing(0.8, []float64{1, 32})
	if err != nil {
		t.Fatal(err)
	}
	nominal := NewAxonHillock()
	thr0, err := nominal.Threshold()
	if err != nil {
		t.Fatal(err)
	}
	shift1 := math.Abs(PercentChange(pts[0].Y, thr0))
	shift32 := math.Abs(PercentChange(pts[1].Y, thr0))
	// Paper: −18.01% baseline → −5.23% at 32:1. Require a ≥3× reduction.
	if shift32 > shift1/3 {
		t.Fatalf("32:1 sizing shift %.2f%% should be ≤ a third of baseline %.2f%%", shift32, shift1)
	}
}

func TestSizingMonotone(t *testing.T) {
	pts, err := AHThresholdVsSizing(0.8, []float64{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if !(pts[0].Y < pts[1].Y && pts[1].Y < pts[2].Y) {
		t.Fatalf("upsizing MP1 at low VDD should raise the threshold: %v", pts)
	}
}

// --- Comparator neuron defense (Fig. 10a) ---

func TestComparatorNeuronThresholdVDDIndependent(t *testing.T) {
	var thr [3]float64
	for i, vdd := range []float64{0.8, 1.0, 1.2} {
		n := NewComparatorAH()
		n.VDD = vdd
		v, err := n.MeasuredThreshold(40e-6, 10e-9)
		if err != nil {
			t.Fatalf("VDD=%.1f: %v", vdd, err)
		}
		thr[i] = v
	}
	for _, v := range thr {
		if dev := math.Abs(PercentChange(v, thr[1])); dev > 3 {
			t.Fatalf("comparator threshold varies %.2f%% with VDD: %v", dev, thr)
		}
	}
}

func TestComparatorNeuronTimingVDDIndependent(t *testing.T) {
	var tts [3]float64
	for i, vdd := range []float64{0.8, 1.0, 1.2} {
		n := NewComparatorAH()
		n.VDD = vdd
		v, err := n.TimeToSpike(40e-6, 10e-9)
		if err != nil {
			t.Fatalf("VDD=%.1f: %v", vdd, err)
		}
		tts[i] = v
	}
	for _, v := range tts {
		if dev := math.Abs(PercentChange(v, tts[1])); dev > 5 {
			t.Fatalf("comparator time-to-spike varies %.2f%% with VDD (undefended: ±20%%): %v", dev, tts)
		}
	}
}

// --- Dummy-neuron detector (Fig. 10b/10c) ---

func TestDummyNeuronCountShiftsWithVDD(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-sim sweep")
	}
	for _, kind := range []DummyKind{DummyAxonHillock, DummyIAF} {
		base := NewDummyNeuron(kind)
		n0, err := base.SpikeCount(100e-3)
		if err != nil {
			t.Fatalf("%v nominal: %v", kind, err)
		}
		low := NewDummyNeuron(kind)
		low.VDD = 0.9
		nLow, err := low.SpikeCount(100e-3)
		if err != nil {
			t.Fatalf("%v at 0.9 V: %v", kind, err)
		}
		// Fig. 10c: a 10% supply drop shifts the count by ≥10% (the
		// detection rule's trigger), in the faster direction.
		shift := PercentChange(float64(nLow), float64(n0))
		if shift < 8 {
			t.Fatalf("%v: count shift at 0.9 V = %.1f%%, want ≥ ~10%%", kind, shift)
		}
	}
}

// --- characterization helpers ---

func TestPercentChange(t *testing.T) {
	if got := PercentChange(1.2, 1.0); math.Abs(got-20) > 1e-9 {
		t.Fatalf("PercentChange(1.2,1.0) = %v", got)
	}
	if got := PercentChange(0.8, 1.0); math.Abs(got+20) > 1e-9 {
		t.Fatalf("PercentChange(0.8,1.0) = %v", got)
	}
}

func minOf(v []float64) (float64, int) {
	best, idx := math.Inf(1), -1
	for i, x := range v {
		if x < best {
			best, idx = x, i
		}
	}
	return best, idx
}
