package neuron

import (
	"fmt"
	"math"
	"math/rand"

	"snnfi/internal/spice"
)

// MonteCarlo samples the Axon Hillock membrane threshold under device
// mismatch: each sample perturbs the first-inverter transistor
// threshold voltages by N(0, SigmaVth). This quantifies the process
// floor under the dummy-neuron detector — its trigger must sit above
// the count spread that mismatch alone produces, which is what bounds
// how far the paper's ≥10% rule could be tightened to close the
// VDD≈0.9 blind spot found in experiment D3.
type MonteCarlo struct {
	N        int     // number of mismatch samples
	SigmaVth float64 // per-device threshold-voltage sigma (V), ~10-30 mV at 65nm
	Seed     int64
	VDD      float64
}

// NewMonteCarlo returns a 65nm-class mismatch configuration.
func NewMonteCarlo(n int) MonteCarlo {
	return MonteCarlo{N: n, SigmaVth: 0.015, Seed: 1, VDD: 1.0}
}

// ThresholdSamples measures the inverter switching threshold for each
// mismatch sample via a DC transfer sweep.
func (mc MonteCarlo) ThresholdSamples() ([]float64, error) {
	if mc.N <= 0 {
		return nil, fmt.Errorf("neuron: Monte Carlo needs N > 0, got %d", mc.N)
	}
	rng := rand.New(rand.NewSource(mc.Seed))
	out := make([]float64, 0, mc.N)
	for i := 0; i < mc.N; i++ {
		pp := spice.PMOS65()
		np := spice.NMOS65()
		pp.Vth += rng.NormFloat64() * mc.SigmaVth
		np.Vth += rng.NormFloat64() * mc.SigmaVth

		c := spice.New()
		c.V("VDD", "vdd", "0", spice.DC(mc.VDD))
		c.V("VIN", "in", "0", spice.DC(0))
		c.PMOSDev("MP1", "out", "in", "vdd", 2e-6, 100e-9, pp)
		c.NMOSDev("MN3", "out", "in", "0", 1e-6, 100e-9, np)
		var sweep []float64
		for v := 0.0; v <= mc.VDD+1e-9; v += mc.VDD / 200 {
			sweep = append(sweep, v)
		}
		res, err := c.DCSweep("VIN", sweep)
		if err != nil {
			return nil, fmt.Errorf("neuron: MC sample %d: %w", i, err)
		}
		vout := res.V("out")
		found := false
		for j := range sweep {
			if vout[j] <= sweep[j] {
				out = append(out, sweep[j])
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("neuron: MC sample %d: inverter never switched", i)
		}
	}
	return out, nil
}

// Spread returns the mean and standard deviation of samples.
func Spread(samples []float64) (mean, sigma float64) {
	if len(samples) == 0 {
		return 0, 0
	}
	for _, s := range samples {
		mean += s
	}
	mean /= float64(len(samples))
	for _, s := range samples {
		d := s - mean
		sigma += d * d
	}
	sigma = math.Sqrt(sigma / float64(len(samples)))
	return mean, sigma
}

// DetectorFalsePositiveRate estimates the fraction of mismatch samples
// a count-deviation trigger would wrongly flag under nominal supply.
// The dummy cell's firing period is proportional to its threshold
// (integrate-to-threshold), so its spike count deviates by approximately
// the negative of the threshold deviation.
func DetectorFalsePositiveRate(samples []float64, triggerPc float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	mean, _ := Spread(samples)
	flagged := 0
	for _, s := range samples {
		countDevPc := -100 * (s - mean) / mean
		if countDevPc >= triggerPc || countDevPc <= -triggerPc {
			flagged++
		}
	}
	return float64(flagged) / float64(len(samples))
}
