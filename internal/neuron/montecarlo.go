package neuron

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"snnfi/internal/runner"
	"snnfi/internal/spice"
)

// MonteCarlo samples the Axon Hillock membrane threshold under device
// mismatch: each sample perturbs the first-inverter transistor
// threshold voltages by N(0, SigmaVth). This quantifies the process
// floor under the dummy-neuron detector — its trigger must sit above
// the count spread that mismatch alone produces, which is what bounds
// how far the paper's ≥10% rule could be tightened to close the
// VDD≈0.9 blind spot found in experiment D3.
type MonteCarlo struct {
	N        int     // number of mismatch samples
	SigmaVth float64 // per-device threshold-voltage sigma (V), ~10-30 mV at 65nm
	Seed     int64
	VDD      float64
}

// NewMonteCarlo returns a 65nm-class mismatch configuration.
func NewMonteCarlo(n int) MonteCarlo {
	return MonteCarlo{N: n, SigmaVth: 0.015, Seed: 1, VDD: 1.0}
}

// thresholdGridSteps divides the [0, VDD] input range; the threshold
// is reported on this grid, so scan and bisection agree bit-for-bit.
const thresholdGridSteps = 200

// ThresholdGrid returns the 201-point DC input grid for a supply,
// built by index (v = vdd·j/200) so no float accumulation drifts the
// upper points. Both the linear scan and the bisected prober resolve
// thresholds onto this grid, which is what makes their results
// byte-identical.
func ThresholdGrid(vdd float64) []float64 {
	grid := make([]float64, thresholdGridSteps+1)
	for j := range grid {
		grid[j] = vdd * float64(j) / thresholdGridSteps
	}
	return grid
}

// errNeverSwitched reports an inverter whose output never crossed the
// input — no threshold exists on the grid.
var errNeverSwitched = errors.New("inverter never switched")

// scanThreshold is the serial-port reference measurement: a fresh
// inverter build and a full 201-point DC transfer sweep, returning the
// first grid point where vout <= vin. The bisected ThresholdProbe must
// reproduce its results exactly; it exists as the oracle for that
// property and as the benchmark baseline.
func scanThreshold(vdd, dpVth, dnVth float64) (float64, error) {
	pp := spice.PMOS65()
	np := spice.NMOS65()
	pp.Vth += dpVth
	np.Vth += dnVth

	c := spice.New()
	c.V("VDD", "vdd", "0", spice.DC(vdd))
	c.V("VIN", "in", "0", spice.DC(0))
	c.PMOSDev("MP1", "out", "in", "vdd", 2e-6, 100e-9, pp)
	c.NMOSDev("MN3", "out", "in", "0", 1e-6, 100e-9, np)
	grid := ThresholdGrid(vdd)
	res, err := c.DCSweep("VIN", grid)
	if err != nil {
		return 0, err
	}
	vout := res.V("out")
	for j := range grid {
		if vout[j] <= grid[j] {
			return grid[j], nil
		}
	}
	return 0, errNeverSwitched
}

// ThresholdProbe measures inverter switching thresholds under
// per-sample Vth mismatch without rebuilding anything: one circuit
// template whose transistor model cards and source waveforms are
// patched in place between solves (iterate- and step-tier stamps pick
// the patches up automatically; see spice.DCSolver), and a bisection
// over the ThresholdGrid indices instead of a linear scan. The
// vout[j] <= grid[j] crossing predicate is monotone in j, so ≤8 DC
// solves land on the same grid point the 201-solve scan finds —
// bit-identical, ~25× fewer solves. Across samples at one supply the
// bisection revisits mostly the same grid indices, so the probe keeps
// one converged state per index and warm-starts each revisit from it:
// only the ~15 mV Vth perturbation separates the iterate from the
// solution. Probes are not safe for concurrent use; pool them per
// worker.
type ThresholdProbe struct {
	c          *spice.Circuit
	solver     *spice.DCSolver
	vdd, vin   *spice.VSource
	mp, mn     *spice.MOSFET
	pNom, nNom spice.MOSParams
	warmVDD    float64   // supply the held per-index states belong to; 0 = none
	grid       []float64 // ThresholdGrid(warmVDD)
	states     [thresholdGridSteps + 1][]float64
}

// NewThresholdProbe builds the inverter template once. No circuit is
// solved until the first Threshold call.
func NewThresholdProbe() *ThresholdProbe {
	c := spice.New()
	p := &ThresholdProbe{
		c:    c,
		vdd:  c.V("VDD", "vdd", "0", spice.DC(1)),
		vin:  c.V("VIN", "in", "0", spice.DC(0)),
		pNom: spice.PMOS65(),
		nNom: spice.NMOS65(),
	}
	p.mp = c.PMOSDev("MP1", "out", "in", "vdd", 2e-6, 100e-9, p.pNom)
	p.mn = c.NMOSDev("MN3", "out", "in", "0", 1e-6, 100e-9, p.nNom)
	p.solver = c.BeginDC()
	return p
}

// Threshold measures the switching threshold at the given supply with
// the transistor Vth values offset from nominal by dpVth (PMOS) and
// dnVth (NMOS). The first call at a supply establishes the nominal
// solution robustly; later calls warm-start every probed grid index
// from the converged state the last sample left there, so each sample
// is a handful of one- or two-iteration Newton continuations.
func (p *ThresholdProbe) Threshold(vdd, dpVth, dnVth float64) (float64, error) {
	p.mp.P = p.pNom
	p.mp.P.Vth += dpVth
	p.mn.P = p.nNom
	p.mn.P.Vth += dnVth
	p.vdd.W = spice.DC(vdd)

	if p.warmVDD != vdd {
		// New supply: saved states describe the wrong operating
		// region. Establish one robust solution and drop them.
		p.vin.W = spice.DC(0)
		if err := p.solver.SolveRobust(); err != nil {
			return 0, err
		}
		for j := range p.states {
			p.states[j] = nil
		}
		p.warmVDD = vdd
		p.grid = ThresholdGrid(vdd)
	}
	grid := p.grid

	// switched(j) evaluates the scan's crossing predicate at one grid
	// index; it is monotone false→true in j.
	switched := func(j int) (bool, error) {
		p.vin.W = spice.DC(grid[j])
		if s := p.states[j]; s != nil {
			p.solver.LoadState(s)
		}
		if err := p.solver.Solve(); err != nil {
			return false, fmt.Errorf("at vin=%g: %w", grid[j], err)
		}
		p.states[j] = p.solver.SaveState(p.states[j])
		return p.solver.V("out") <= grid[j], nil
	}

	// First-true binary search over the full grid. Endpoints are not
	// pre-probed: lo carries "every index below lo tested false", hi
	// carries "hi tested true, or hi is the untested top of the grid".
	lo, hi := 0, thresholdGridSteps
	hiTested := false
	for lo < hi {
		mid := (lo + hi) / 2
		ok, err := switched(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
			hiTested = true
		} else {
			lo = mid + 1
		}
	}
	// Only the all-false descent leaves the top of the grid untested.
	if !hiTested {
		ok, err := switched(hi)
		if err != nil {
			return 0, err
		}
		if !ok {
			return 0, errNeverSwitched
		}
	}
	return grid[hi], nil
}

// ThresholdSamples measures the inverter switching threshold for each
// mismatch sample via a full DC transfer sweep on a fresh circuit per
// sample. This is the original serial port of the measurement, kept as
// the reference and benchmark baseline; campaign workloads should use
// Characterizer.MonteCarloThresholds, which is pooled, cached, and
// bisected.
func (mc MonteCarlo) ThresholdSamples() ([]float64, error) {
	if mc.N <= 0 {
		return nil, fmt.Errorf("neuron: Monte Carlo needs N > 0, got %d", mc.N)
	}
	rng := rand.New(rand.NewSource(mc.Seed))
	out := make([]float64, 0, mc.N)
	for i := 0; i < mc.N; i++ {
		dp := rng.NormFloat64() * mc.SigmaVth
		dn := rng.NormFloat64() * mc.SigmaVth
		th, err := scanThreshold(mc.VDD, dp, dn)
		if err != nil {
			return nil, fmt.Errorf("neuron: MC sample %d: %w", i, err)
		}
		out = append(out, th)
	}
	return out, nil
}

// SampleVthDraws returns the (PMOS, NMOS) threshold-voltage offsets of
// one content-addressed mismatch sample. Each sample owns a derived
// seed, so any subset of samples is computable independently — the
// property that makes samples cacheable cells rather than positions in
// one serial RNG stream. The seed is expanded by a splitmix64 chain
// and mapped through the normal inverse CDF rather than a seeded
// math/rand source: reseeding Go's lagged-Fibonacci source costs a
// 607-word warm-up per sample, which at bisected solve speeds would
// cost as much as the threshold measurement itself.
func (mc MonteCarlo) SampleVthDraws(i int) (dpVth, dnVth float64) {
	s := uint64(runner.DeriveSeed(mc.Seed, "mc", i))
	u1, s := splitmixUniform(s)
	u2, _ := splitmixUniform(s)
	return mc.SigmaVth * normalFromUniform(u1), mc.SigmaVth * normalFromUniform(u2)
}

// splitmixUniform advances a splitmix64 state and maps the output word
// to a uniform in the open interval (0, 1) — the +0.5 offset on the
// 53-bit mantissa keeps both endpoints out, so the inverse CDF below
// never sees ±1.
func splitmixUniform(s uint64) (float64, uint64) {
	s += 0x9e3779b97f4a7c15
	z := s
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return (float64(z>>11) + 0.5) / (1 << 53), s
}

// normalFromUniform maps a uniform (0,1) draw to a standard normal via
// the inverse CDF: Φ⁻¹(u) = √2·erfinv(2u−1).
func normalFromUniform(u float64) float64 {
	return math.Sqrt2 * math.Erfinv(2*u-1)
}

// MonteCarloThresholds runs the mismatch samples as pooled,
// content-addressed jobs on the sweep fabric: per-sample seeds via
// runner.DeriveSeed (so sample i is the same cell at any worker count
// and in any batch composition), each cell cached under
// "neuron/mc-threshold-v1", and each measurement a bisected probe
// solve instead of a full sweep. Sample order in the result and in the
// sinks is worker-invariant. Probes are recycled through a per-call
// pool, so an N-sample run builds at most one circuit per worker.
func (ch *Characterizer) MonteCarloThresholds(mc MonteCarlo) ([]float64, error) {
	if mc.N <= 0 {
		return nil, fmt.Errorf("neuron: Monte Carlo needs N > 0, got %d", mc.N)
	}
	probes := sync.Pool{New: func() any { return NewThresholdProbe() }}
	pts := make([]charPoint, mc.N)
	for i := range pts {
		i := i
		dp, dn := mc.SampleVthDraws(i)
		pts[i] = charPoint{
			x: float64(i),
			key: runner.KeyOf("neuron/mc-threshold-v1", mc.VDD,
				runner.DeriveSeed(mc.Seed, "mc", i), dp, dn),
			eval: func() (float64, error) {
				p := probes.Get().(*ThresholdProbe)
				defer probes.Put(p)
				return p.Threshold(mc.VDD, dp, dn)
			},
		}
	}
	points, err := ch.sweep("mc-threshold", pts)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(points))
	for i, p := range points {
		out[i] = p.Y
	}
	return out, nil
}

// MonteCarloThresholds runs mc on the default Characterizer (all CPUs,
// uncached).
func MonteCarloThresholds(mc MonteCarlo) ([]float64, error) {
	return defaultChar.MonteCarloThresholds(mc)
}

// Spread returns the mean and standard deviation of samples.
func Spread(samples []float64) (mean, sigma float64) {
	if len(samples) == 0 {
		return 0, 0
	}
	for _, s := range samples {
		mean += s
	}
	mean /= float64(len(samples))
	for _, s := range samples {
		d := s - mean
		sigma += d * d
	}
	sigma = math.Sqrt(sigma / float64(len(samples)))
	return mean, sigma
}

// Quantile returns the pc-th percentile of samples by linear
// interpolation between order statistics (the rank pc/100·(n−1)
// definition). Samples are not modified.
func Quantile(samples []float64, pc float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, pc)
}

// Quantiles returns one percentile per entry of pcs, sharing a single
// sort of the samples.
func Quantiles(samples []float64, pcs []float64) []float64 {
	out := make([]float64, len(pcs))
	if len(samples) == 0 {
		return out
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	for i, pc := range pcs {
		out[i] = quantileSorted(sorted, pc)
	}
	return out
}

func quantileSorted(sorted []float64, pc float64) float64 {
	r := pc / 100 * float64(len(sorted)-1)
	if r <= 0 {
		return sorted[0]
	}
	if r >= float64(len(sorted)-1) {
		return sorted[len(sorted)-1]
	}
	j := int(r)
	frac := r - float64(j)
	return sorted[j] + frac*(sorted[j+1]-sorted[j])
}

// DetectorFalsePositiveRate estimates the fraction of mismatch samples
// a count-deviation trigger would wrongly flag under nominal supply.
// The dummy cell's firing period is proportional to its threshold
// (integrate-to-threshold), so its spike count deviates by approximately
// the negative of the threshold deviation.
func DetectorFalsePositiveRate(samples []float64, triggerPc float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	mean, _ := Spread(samples)
	flagged := 0
	for _, s := range samples {
		countDevPc := -100 * (s - mean) / mean
		if countDevPc >= triggerPc || countDevPc <= -triggerPc {
			flagged++
		}
	}
	return float64(flagged) / float64(len(samples))
}
