package neuron

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"snnfi/internal/runner"
	"snnfi/internal/spice"
)

// TestBisectionMatchesScan is the bisected prober's contract: across
// random Vth perturbations and supplies, ThresholdProbe.Threshold must
// return the bit-identical grid point the 201-solve linear scan finds.
func TestBisectionMatchesScan(t *testing.T) {
	perSupply := 12
	if testing.Short() {
		perSupply = 4
	}
	rng := rand.New(rand.NewSource(7))
	probe := NewThresholdProbe()
	for _, vdd := range []float64{0.8, 0.9, 1.0, 1.1, 1.2} {
		for k := 0; k < perSupply; k++ {
			dp := rng.NormFloat64() * 0.03
			dn := rng.NormFloat64() * 0.03
			want, err := scanThreshold(vdd, dp, dn)
			if err != nil {
				t.Fatalf("scan vdd=%g dp=%g dn=%g: %v", vdd, dp, dn, err)
			}
			got, err := probe.Threshold(vdd, dp, dn)
			if err != nil {
				t.Fatalf("bisect vdd=%g dp=%g dn=%g: %v", vdd, dp, dn, err)
			}
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("vdd=%g dp=%g dn=%g: bisected %v != scanned %v",
					vdd, dp, dn, got, want)
			}
		}
	}
}

// TestThresholdProbeReuse pins template reuse across supplies: one
// probe interleaving supplies must agree with fresh scans every time
// (the in-place patches may not leak state between samples).
func TestThresholdProbeReuse(t *testing.T) {
	probe := NewThresholdProbe()
	cases := []struct{ vdd, dp, dn float64 }{
		{1.0, 0, 0}, {0.8, 0.02, -0.01}, {1.0, -0.03, 0.03},
		{1.2, 0.01, 0.01}, {0.8, 0, 0}, {1.0, 0, 0},
	}
	for i, c := range cases {
		want, err := scanThreshold(c.vdd, c.dp, c.dn)
		if err != nil {
			t.Fatalf("case %d scan: %v", i, err)
		}
		got, err := probe.Threshold(c.vdd, c.dp, c.dn)
		if err != nil {
			t.Fatalf("case %d bisect: %v", i, err)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("case %d (vdd=%g dp=%g dn=%g): got %v want %v",
				i, c.vdd, c.dp, c.dn, got, want)
		}
	}
}

// mcTestSink records the streamed sample records so worker-invariance
// can compare sink order, not just the returned slice.
type mcTestSink struct{ lines []string }

func (s *mcTestSink) Write(rec runner.Record) error {
	s.lines = append(s.lines, fmt.Sprintf("%v", rec))
	return nil
}
func (s *mcTestSink) Close() error { return nil }

func mcRun(t *testing.T, mc MonteCarlo, workers int, cache runner.Cache[float64]) ([]float64, []string) {
	t.Helper()
	sink := &mcTestSink{}
	ch := &Characterizer{Workers: workers, Cache: cache, Sinks: []runner.Sink{sink}}
	samples, err := ch.MonteCarloThresholds(mc)
	if err != nil {
		t.Fatalf("MonteCarloThresholds(workers=%d): %v", workers, err)
	}
	return samples, sink.lines
}

// TestMonteCarloWorkerInvariance: the N-sample distribution — values
// and streamed sink order — must be byte-identical at 1 and 4 workers.
func TestMonteCarloWorkerInvariance(t *testing.T) {
	mc := NewMonteCarlo(256)
	if testing.Short() {
		mc.N = 24
	}
	s1, lines1 := mcRun(t, mc, 1, runner.NewMemoryCache[float64]())
	s4, lines4 := mcRun(t, mc, 4, runner.NewMemoryCache[float64]())
	if len(s1) != mc.N || len(s4) != mc.N {
		t.Fatalf("sample counts %d / %d, want %d", len(s1), len(s4), mc.N)
	}
	for i := range s1 {
		if math.Float64bits(s1[i]) != math.Float64bits(s4[i]) {
			t.Fatalf("sample %d differs: workers=1 %v, workers=4 %v", i, s1[i], s4[i])
		}
	}
	if len(lines1) != len(lines4) {
		t.Fatalf("sink line counts %d / %d", len(lines1), len(lines4))
	}
	for i := range lines1 {
		if lines1[i] != lines4[i] {
			t.Fatalf("sink line %d differs:\n  workers=1: %s\n  workers=4: %s",
				i, lines1[i], lines4[i])
		}
	}
}

// TestMonteCarloColdWarmSolves: a warm rerun against the same cache
// must serve every sample without solving a single circuit (the
// spice.solves counter delta is zero) and return identical bytes.
func TestMonteCarloColdWarmSolves(t *testing.T) {
	mc := NewMonteCarlo(32)
	if testing.Short() {
		mc.N = 8
	}
	cache := runner.NewMemoryCache[float64]()
	cold, _ := mcRun(t, mc, 4, cache)

	before, _, _ := spice.SolverCounts()
	warm, _ := mcRun(t, mc, 4, cache)
	after, _, _ := spice.SolverCounts()

	if solves := after - before; solves != 0 {
		t.Fatalf("warm rerun solved %d circuits, want 0", solves)
	}
	for i := range cold {
		if math.Float64bits(cold[i]) != math.Float64bits(warm[i]) {
			t.Fatalf("sample %d differs cold/warm: %v vs %v", i, cold[i], warm[i])
		}
	}
}

// TestMonteCarloSampleIndependence: any subset of samples is the same
// cell regardless of batch composition — sample i of an N-run equals
// sample i of an M-run (per-sample derived seeds, not one RNG stream).
func TestMonteCarloSampleIndependence(t *testing.T) {
	small := NewMonteCarlo(4)
	big := NewMonteCarlo(12)
	s, _ := mcRun(t, small, 2, runner.NewMemoryCache[float64]())
	b, _ := mcRun(t, big, 2, runner.NewMemoryCache[float64]())
	for i := range s {
		if math.Float64bits(s[i]) != math.Float64bits(b[i]) {
			t.Fatalf("sample %d differs across batch sizes: %v vs %v", i, s[i], b[i])
		}
	}
}

func TestQuantiles(t *testing.T) {
	samples := []float64{4, 1, 3, 2} // sorted: 1 2 3 4
	cases := []struct{ pc, want float64 }{
		{0, 1}, {100, 4}, {50, 2.5}, {25, 1.75}, {-5, 1}, {110, 4},
	}
	for _, c := range cases {
		if got := Quantile(samples, c.pc); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Quantile(%g) = %v, want %v", c.pc, got, c.want)
		}
	}
	qs := Quantiles(samples, []float64{0, 50, 100})
	want := []float64{1, 2.5, 4}
	for i := range qs {
		if math.Abs(qs[i]-want[i]) > 1e-12 {
			t.Fatalf("Quantiles[%d] = %v, want %v", i, qs[i], want[i])
		}
	}
	if got := Quantile(nil, 50); got != 0 {
		t.Fatalf("Quantile(nil) = %v, want 0", got)
	}
}
