package neuron

import (
	"fmt"
	"sort"
)

// RecipeSpec names one characterization sweep as pure data: which
// sweep family to run (a key of the recipe registry below) and the
// independent-axis values, plus the fixed parameters some recipes
// take. It is what declarative suite files (internal/suite) compile
// circuit entries down to, so arbitrary circuit characterizations can
// be composed without recompiling.
type RecipeSpec struct {
	// Name selects the sweep family; RecipeNames lists the registry.
	Name string
	// Xs are the swept independent values (VDD, amplitude, W/L ratio).
	Xs []float64
	// VDD is the fixed supply for sweeps whose axis is not the supply
	// (ah-threshold-vs-sizing). 0 means the recipe's nominal value.
	VDD float64
	// Window is the sampling window in seconds for the dummy-cell count
	// sweeps. 0 means 100 ms (the paper's detector window).
	Window float64
}

// Validate reports specification errors against the registry.
func (r RecipeSpec) Validate() error {
	rec, ok := recipes[r.Name]
	if !ok {
		return fmt.Errorf("neuron: unknown recipe %q (known: %v)", r.Name, RecipeNames())
	}
	if len(r.Xs) == 0 {
		return fmt.Errorf("neuron: recipe %q needs at least one sweep value", r.Name)
	}
	if r.VDD != 0 && !rec.usesVDD {
		return fmt.Errorf("neuron: recipe %q does not take a fixed vdd", r.Name)
	}
	if r.Window != 0 && !rec.usesWindow {
		return fmt.Errorf("neuron: recipe %q does not take a sampling window", r.Name)
	}
	if r.VDD < 0 {
		return fmt.Errorf("neuron: recipe %q vdd must be positive, got %g", r.Name, r.VDD)
	}
	if r.Window < 0 {
		return fmt.Errorf("neuron: recipe %q window must be positive, got %g", r.Name, r.Window)
	}
	return nil
}

// Measure runs the named sweep on the characterizer's pool: points are
// content-addressed and cached exactly like the method-based sweeps
// (they share keys — a suite-driven sweep hits the same cache entries
// as the figure methods that motivated it).
func (ch *Characterizer) Measure(spec RecipeSpec) ([]Point, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return recipes[spec.Name].run(ch, spec)
}

// recipe is one registry row: the executable sweep plus which fixed
// parameters the spec may set.
type recipe struct {
	run        func(*Characterizer, RecipeSpec) ([]Point, error)
	usesVDD    bool
	usesWindow bool
}

// recipes maps sweep names to the Characterizer methods; the names
// double as the "sweep" field of streamed point records.
var recipes = map[string]recipe{
	"ah-threshold-vs-vdd": {run: func(ch *Characterizer, s RecipeSpec) ([]Point, error) {
		return ch.AHThresholdVsVDD(s.Xs)
	}},
	"iaf-threshold-vs-vdd": {run: func(ch *Characterizer, s RecipeSpec) ([]Point, error) {
		return ch.IAFThresholdVsVDD(s.Xs)
	}},
	"ah-threshold-vs-sizing": {usesVDD: true, run: func(ch *Characterizer, s RecipeSpec) ([]Point, error) {
		vdd := s.VDD
		if vdd == 0 {
			vdd = 1.0
		}
		return ch.AHThresholdVsSizing(vdd, s.Xs)
	}},
	"driver-amplitude-vs-vdd": {run: func(ch *Characterizer, s RecipeSpec) ([]Point, error) {
		return ch.DriverAmplitudeVsVDD(s.Xs)
	}},
	"robust-driver-amplitude-vs-vdd": {run: func(ch *Characterizer, s RecipeSpec) ([]Point, error) {
		return ch.RobustDriverAmplitudeVsVDD(s.Xs)
	}},
	"ah-tts-vs-vdd": {run: func(ch *Characterizer, s RecipeSpec) ([]Point, error) {
		return ch.AHTimeToSpikeVsVDD(s.Xs)
	}},
	"iaf-tts-vs-vdd": {run: func(ch *Characterizer, s RecipeSpec) ([]Point, error) {
		return ch.IAFTimeToSpikeVsVDD(s.Xs)
	}},
	"ah-tts-vs-amplitude": {run: func(ch *Characterizer, s RecipeSpec) ([]Point, error) {
		return ch.AHTimeToSpikeVsAmplitude(s.Xs)
	}},
	"iaf-tts-vs-amplitude": {run: func(ch *Characterizer, s RecipeSpec) ([]Point, error) {
		return ch.IAFTimeToSpikeVsAmplitude(s.Xs)
	}},
	"comparator-threshold-vs-vdd": {run: func(ch *Characterizer, s RecipeSpec) ([]Point, error) {
		return ch.ComparatorMeasuredThresholdVsVDD(s.Xs)
	}},
	"comparator-tts-vs-vdd": {run: func(ch *Characterizer, s RecipeSpec) ([]Point, error) {
		return ch.ComparatorTimeToSpikeVsVDD(s.Xs)
	}},
	"dummy-ah-count-vs-vdd": {usesWindow: true, run: func(ch *Characterizer, s RecipeSpec) ([]Point, error) {
		return ch.DummyCountVsVDD(DummyAxonHillock, dummyWindow(s), s.Xs)
	}},
	"dummy-iaf-count-vs-vdd": {usesWindow: true, run: func(ch *Characterizer, s RecipeSpec) ([]Point, error) {
		return ch.DummyCountVsVDD(DummyIAF, dummyWindow(s), s.Xs)
	}},
}

func dummyWindow(s RecipeSpec) float64 {
	if s.Window == 0 {
		return 100e-3
	}
	return s.Window
}

// RecipeNames lists the registered sweep families, sorted.
func RecipeNames() []string {
	names := make([]string, 0, len(recipes))
	for name := range recipes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
