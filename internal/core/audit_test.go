package core

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// TestAuditJSONGolden pins the -audit-json wire format byte-for-byte:
// the schema line, cell order (baseline first, then compile order),
// the content addresses themselves, and the present/missing rollup.
// Keys are deterministic — the synthetic corpus, the canonical KeyOf
// rendering and the fixed seeds make the same specification hash
// identically in every process — so this golden holds on any
// platform. It moves only when something that SHOULD move it does
// (a protocol-version bump, a fingerprint ingredient change); re-pin
// with `go test ./internal/core -run AuditJSONGolden -update` and say
// so in the commit.
func TestAuditJSONGolden(t *testing.T) {
	e := tinyExperiment(t, 8)
	scn := &Scenario{
		Name:     "audit-golden",
		Attack:   Attack3,
		Axes:     Axes{ChangesPc: []float64{-20, 10}, FractionsPc: []float64{50}},
		Defenses: []Hardening{attenuator{"atten", 0.2}},
	}

	// First pass learns the keys; the golden audit then marks the
	// baseline and one grid cell present, exercising both standings.
	probe, err := e.AuditScenario(scn, func(string) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if len(probe.Cells) != 5 { // baseline + 2 coords × (undefended + atten)
		t.Fatalf("compiled %d cells, want 5", len(probe.Cells))
	}
	held := HeldSet([]string{probe.Cells[0].Key, probe.Cells[1].Key})
	audit, err := e.AuditScenario(scn, held)
	if err != nil {
		t.Fatal(err)
	}
	if audit.Present != 2 || audit.Missing != 3 || audit.Complete() {
		t.Fatalf("rollup = %d present / %d missing / complete=%v, want 2/3/false",
			audit.Present, audit.Missing, audit.Complete())
	}

	var buf bytes.Buffer
	if err := audit.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "audit_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (re-pin with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("audit JSON drifted from golden:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}
