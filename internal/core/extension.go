package core

import (
	"fmt"
	"math/rand"

	"snnfi/internal/encoding"
	"snnfi/internal/runner"
	"snnfi/internal/snn"
)

// This file implements extension experiments beyond the paper's five
// attacks, targeting the two SNN assets §IV-E1 lists but does not
// study: the strength of synaptic weights between neurons and the SNN
// learning rate. Both are plausible power-fault targets in memristive
// or charge-based synapse implementations, where the stored conductance
// and the programming pulse energy track the supply.
//
// Extension faults are campaign cells like any attack cell: they run
// on the worker pool, are content-addressed into the result cache
// (a repeated specification retrains nothing, in this process or a
// resumed one), count toward TrainCount, and stream to the
// experiment's sinks.

// WeightFaultSpec corrupts the learned input→excitatory synaptic
// weights: a fraction of synapses is scaled (conductance drift under
// supply droop) at a given cadence during training.
type WeightFaultSpec struct {
	// Scale multiplies affected weights (e.g. 0.7 for a −30% drift).
	Scale float64
	// Fraction of synapses affected, in [0, 1].
	Fraction float64
	// EveryNImages re-applies the drift each N presentations,
	// modeling a persistent glitch rather than a one-shot upset.
	// 0 applies it once, before training.
	EveryNImages int
	Seed         int64
}

// Validate reports specification errors.
func (s WeightFaultSpec) Validate() error {
	if s.Scale <= 0 {
		return fmt.Errorf("core: weight-fault scale must be positive, got %g", s.Scale)
	}
	if s.Fraction < 0 || s.Fraction > 1 {
		return fmt.Errorf("core: weight-fault fraction must be in [0,1], got %g", s.Fraction)
	}
	if s.EveryNImages < 0 {
		return fmt.Errorf("core: weight-fault cadence must be ≥0, got %d", s.EveryNImages)
	}
	return nil
}

// apply scales a random subset of the weight matrix in place. The
// subset is drawn without replacement (a permutation prefix, as
// applyMasked does for neurons), so exactly Fraction·total distinct
// synapses are hit — sampling with replacement would double-scale
// some synapses and cover fewer than advertised.
func (s WeightFaultSpec) apply(n *snn.DiehlCook, rng *rand.Rand) {
	total := len(n.W.Data)
	k := int(s.Fraction*float64(total) + 0.5)
	if k <= 0 {
		return
	}
	if k >= total {
		for i := range n.W.Data {
			n.W.Data[i] *= s.Scale
		}
		return
	}
	perm := rng.Perm(total)
	for _, i := range perm[:k] {
		n.W.Data[i] *= s.Scale
	}
}

// cell compiles the spec into a campaign cell: a content-addressed
// job that trains through snn.TrainWith's BeforeImage hook,
// re-applying the drift at the spec's cadence.
func (s WeightFaultSpec) cell(e *Experiment) campaignJob {
	return campaignJob{
		plan: &FaultPlan{Name: fmt.Sprintf("ext-weight-fault-%.2fx-%.0f%%", s.Scale, 100*s.Fraction)},
		desc: fmt.Sprintf("weight fault ×%.2f over %.0f%% every %d images", s.Scale, 100*s.Fraction, s.EveryNImages),
		// The plan above is a display name only (it omits cadence and
		// seed); the cell is addressed by the full specification.
		keyOverride: runner.KeyOf(e.fingerprint(), "ext-weight-fault-v1", s),
		train: func(evalWorkers int) (*snn.TrainResult, error) {
			n, err := snn.NewDiehlCook(e.Cfg)
			if err != nil {
				return nil, err
			}
			rng := rand.New(rand.NewSource(s.Seed))
			enc := encoding.NewPoissonEncoder(e.EncSeed)
			return snn.TrainWith(n, e.Images, enc, snn.TrainOptions{
				Workers: evalWorkers,
				Obs:     e.Obs,
				BeforeImage: func(i int) {
					if i == 0 || (s.EveryNImages > 0 && i%s.EveryNImages == 0) {
						s.apply(n, rng)
					}
				},
			})
		},
	}
}

// RunWeightFaults evaluates several weight-fault specifications on the
// worker pool, one result per spec in input order.
func (e *Experiment) RunWeightFaults(specs []WeightFaultSpec) ([]*Result, error) {
	cells := make([]campaignJob, len(specs))
	for i, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		cells[i] = s.cell(e)
	}
	return e.runExtension("ext-weight-fault", cells)
}

// WeightFaultHardening is a Hardening that additionally knows how to
// defend extension weight-fault cells: HardenWeightFault returns the
// spec that results when the same physical drift hits the hardened
// synapse array (e.g. defense.WeightRefresh's periodic reprogramming
// from the digital shadow copy).
type WeightFaultHardening interface {
	Hardening
	HardenWeightFault(WeightFaultSpec) WeightFaultSpec
}

// RunWeightFaultMatrix replays each weight-fault spec undefended and
// against every listed defense — the extension analogue of a scenario
// matrix. All cells share one pool run, one baseline and one ordered
// sink stream; records carry the defense column. Every defense must
// implement WeightFaultHardening (a plain plan Hardening has no
// meaning for a corruption that is not a FaultPlan).
func (e *Experiment) RunWeightFaultMatrix(specs []WeightFaultSpec, defenses []Hardening) ([]SweepPoint, error) {
	var cells []campaignJob
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		cells = append(cells, s.cell(e))
		for _, d := range defenses {
			wh, ok := d.(WeightFaultHardening)
			if !ok {
				if d == nil {
					return nil, fmt.Errorf("core: weight-fault matrix defense list contains nil")
				}
				return nil, fmt.Errorf("core: defense %q cannot harden weight-fault cells", d.Name())
			}
			hs := wh.HardenWeightFault(s)
			if err := hs.Validate(); err != nil {
				return nil, fmt.Errorf("core: defense %q hardened spec invalid: %w", d.Name(), err)
			}
			cell := hs.cell(e)
			cell.point.Defense = d.Name()
			cell.desc = fmt.Sprintf("%s [%s]", cell.desc, d.Name())
			cells = append(cells, cell)
		}
	}
	return e.runCampaign(campaignMeta{name: "ext-weight-fault", matrix: len(defenses) > 0}, cells)
}

// RunWeightFault trains a fresh network while injecting the weight
// fault and returns the result relative to the experiment baseline.
func (e *Experiment) RunWeightFault(spec WeightFaultSpec) (*Result, error) {
	res, err := e.RunWeightFaults([]WeightFaultSpec{spec})
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// LearningRateFaultSpec corrupts the STDP learning rates — the
// network-level image of a supply fault in the weight-programming
// peripheral (programming pulse energy scales with VDD).
type LearningRateFaultSpec struct {
	// Scale multiplies both STDP rates (0 freezes learning entirely).
	Scale float64
}

// Validate reports specification errors.
func (s LearningRateFaultSpec) Validate() error {
	if s.Scale < 0 {
		return fmt.Errorf("core: learning-rate scale must be ≥0, got %g", s.Scale)
	}
	return nil
}

// cell compiles the spec into a campaign cell that trains under the
// scaled learning rates.
func (s LearningRateFaultSpec) cell(e *Experiment) campaignJob {
	return campaignJob{
		plan:        &FaultPlan{Name: fmt.Sprintf("ext-learning-rate-%.2fx", s.Scale)},
		desc:        fmt.Sprintf("learning-rate fault ×%.2f", s.Scale),
		keyOverride: runner.KeyOf(e.fingerprint(), "ext-learning-rate-v1", s),
		train: func(evalWorkers int) (*snn.TrainResult, error) {
			cfg := e.Cfg
			cfg.NuPre *= s.Scale
			cfg.NuPost *= s.Scale
			n, err := snn.NewDiehlCook(cfg)
			if err != nil {
				return nil, err
			}
			enc := encoding.NewPoissonEncoder(e.EncSeed)
			return snn.TrainWith(n, e.Images, enc, snn.TrainOptions{Workers: evalWorkers, Obs: e.Obs})
		},
	}
}

// RunLearningRateFaults evaluates several learning-rate faults on the
// worker pool, one result per spec in input order.
func (e *Experiment) RunLearningRateFaults(specs []LearningRateFaultSpec) ([]*Result, error) {
	cells := make([]campaignJob, len(specs))
	for i, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		cells[i] = s.cell(e)
	}
	return e.runExtension("ext-learning-rate", cells)
}

// LearningRateFaultHardening is a Hardening that additionally knows
// how to defend extension learning-rate cells: HardenLearningRateFault
// returns the spec that results when the same supply fault hits the
// hardened weight-programming peripheral (e.g. a regulator that holds
// the programming pulse energy near nominal).
type LearningRateFaultHardening interface {
	Hardening
	HardenLearningRateFault(LearningRateFaultSpec) LearningRateFaultSpec
}

// RunLearningRateFaultMatrix replays each learning-rate spec
// undefended and against every listed defense — the extension analogue
// of a scenario matrix, mirroring RunWeightFaultMatrix. All cells
// share one pool run, one baseline and one ordered sink stream;
// records carry the defense column. Every defense must implement
// LearningRateFaultHardening.
func (e *Experiment) RunLearningRateFaultMatrix(specs []LearningRateFaultSpec, defenses []Hardening) ([]SweepPoint, error) {
	var cells []campaignJob
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		cells = append(cells, s.cell(e))
		for _, d := range defenses {
			lh, ok := d.(LearningRateFaultHardening)
			if !ok {
				if d == nil {
					return nil, fmt.Errorf("core: learning-rate matrix defense list contains nil")
				}
				return nil, fmt.Errorf("core: defense %q cannot harden learning-rate cells", d.Name())
			}
			hs := lh.HardenLearningRateFault(s)
			if err := hs.Validate(); err != nil {
				return nil, fmt.Errorf("core: defense %q hardened spec invalid: %w", d.Name(), err)
			}
			cell := hs.cell(e)
			cell.point.Defense = d.Name()
			cell.desc = fmt.Sprintf("%s [%s]", cell.desc, d.Name())
			cells = append(cells, cell)
		}
	}
	return e.runCampaign(campaignMeta{name: "ext-learning-rate", matrix: len(defenses) > 0}, cells)
}

// RunLearningRateFault trains with scaled STDP rates.
func (e *Experiment) RunLearningRateFault(spec LearningRateFaultSpec) (*Result, error) {
	res, err := e.RunLearningRateFaults([]LearningRateFaultSpec{spec})
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// runExtension executes extension cells like any campaign and returns
// bare results (extension specs carry no sweep coordinates).
func (e *Experiment) runExtension(name string, cells []campaignJob) ([]*Result, error) {
	pts, err := e.runCampaign(campaignMeta{name: name}, cells)
	if err != nil {
		return nil, err
	}
	out := make([]*Result, len(pts))
	for i, p := range pts {
		out[i] = p.Result
	}
	return out, nil
}
