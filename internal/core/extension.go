package core

import (
	"fmt"
	"math/rand"

	"snnfi/internal/encoding"
	"snnfi/internal/snn"
	"snnfi/internal/tensor"
)

// This file implements extension experiments beyond the paper's five
// attacks, targeting the two SNN assets §IV-E1 lists but does not
// study: the strength of synaptic weights between neurons and the SNN
// learning rate. Both are plausible power-fault targets in memristive
// or charge-based synapse implementations, where the stored conductance
// and the programming pulse energy track the supply.

// WeightFaultSpec corrupts the learned input→excitatory synaptic
// weights: a fraction of synapses is scaled (conductance drift under
// supply droop) at a given cadence during training.
type WeightFaultSpec struct {
	// Scale multiplies affected weights (e.g. 0.7 for a −30% drift).
	Scale float64
	// Fraction of synapses affected, in [0, 1].
	Fraction float64
	// EveryNImages re-applies the drift each N presentations,
	// modeling a persistent glitch rather than a one-shot upset.
	// 0 applies it once, before training.
	EveryNImages int
	Seed         int64
}

// Validate reports specification errors.
func (s WeightFaultSpec) Validate() error {
	if s.Scale <= 0 {
		return fmt.Errorf("core: weight-fault scale must be positive, got %g", s.Scale)
	}
	if s.Fraction < 0 || s.Fraction > 1 {
		return fmt.Errorf("core: weight-fault fraction must be in [0,1], got %g", s.Fraction)
	}
	if s.EveryNImages < 0 {
		return fmt.Errorf("core: weight-fault cadence must be ≥0, got %d", s.EveryNImages)
	}
	return nil
}

// apply scales a random subset of the weight matrix in place.
func (s WeightFaultSpec) apply(n *snn.DiehlCook, rng *rand.Rand) {
	total := len(n.W.Data)
	k := int(s.Fraction*float64(total) + 0.5)
	if k <= 0 {
		return
	}
	if k >= total {
		for i := range n.W.Data {
			n.W.Data[i] *= s.Scale
		}
		return
	}
	for i := 0; i < k; i++ {
		n.W.Data[rng.Intn(total)] *= s.Scale
	}
}

// RunWeightFault trains a fresh network while injecting the weight
// fault and returns the result relative to the experiment baseline.
func (e *Experiment) RunWeightFault(spec WeightFaultSpec) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	n, err := snn.NewDiehlCook(e.Cfg)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	enc := encoding.NewPoissonEncoder(e.EncSeed)

	spec.apply(n, rng)
	perImage := make([]tensor.Vector, 0, len(e.Images))
	labels := make([]uint8, 0, len(e.Images))
	total := 0.0
	for i := range e.Images {
		if spec.EveryNImages > 0 && i > 0 && i%spec.EveryNImages == 0 {
			spec.apply(n, rng)
		}
		enc.Begin(&e.Images[i])
		counts := n.RunImageStream(enc.EncodeStep, true)
		total += counts.Sum()
		perImage = append(perImage, counts)
		labels = append(labels, e.Images[i].Label)
	}
	assignments := snn.AssignLabels(perImage, labels, e.Cfg.NExc)
	correct := 0
	for i := range perImage {
		if snn.Classify(perImage[i], assignments) == int(labels[i]) {
			correct++
		}
	}
	acc := float64(correct) / float64(len(perImage))

	base, err := e.Baseline()
	if err != nil {
		return nil, err
	}
	r := &Result{
		Plan:     &FaultPlan{Name: fmt.Sprintf("ext-weight-fault-%.2fx-%.0f%%", spec.Scale, 100*spec.Fraction)},
		Accuracy: acc, Baseline: base, TotalSpikes: total,
	}
	if base > 0 {
		r.RelChangePc = 100 * (acc - base) / base
	}
	return r, nil
}

// LearningRateFaultSpec corrupts the STDP learning rates — the
// network-level image of a supply fault in the weight-programming
// peripheral (programming pulse energy scales with VDD).
type LearningRateFaultSpec struct {
	// Scale multiplies both STDP rates (0 freezes learning entirely).
	Scale float64
}

// Validate reports specification errors.
func (s LearningRateFaultSpec) Validate() error {
	if s.Scale < 0 {
		return fmt.Errorf("core: learning-rate scale must be ≥0, got %g", s.Scale)
	}
	return nil
}

// RunLearningRateFault trains with scaled STDP rates.
func (e *Experiment) RunLearningRateFault(spec LearningRateFaultSpec) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cfg := e.Cfg
	cfg.NuPre *= spec.Scale
	cfg.NuPost *= spec.Scale
	n, err := snn.NewDiehlCook(cfg)
	if err != nil {
		return nil, err
	}
	enc := encoding.NewPoissonEncoder(e.EncSeed)
	res, err := snn.Train(n, e.Images, enc)
	if err != nil {
		return nil, err
	}
	base, err := e.Baseline()
	if err != nil {
		return nil, err
	}
	r := &Result{
		Plan:     &FaultPlan{Name: fmt.Sprintf("ext-learning-rate-%.2fx", spec.Scale)},
		Accuracy: res.Accuracy, Baseline: base, TotalSpikes: res.TotalSpikes,
	}
	if base > 0 {
		r.RelChangePc = 100 * (res.Accuracy - base) / base
	}
	return r, nil
}
