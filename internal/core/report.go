package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"snnfi/internal/obs"
	"snnfi/internal/runner"
	"snnfi/internal/snn"
)

// ReportSchema names the campaign-report JSON layout. Consumers (CI's
// report validation, scripts/bench.sh) match on it; bump it when a
// field changes meaning.
const ReportSchema = "snnfi-campaign-report-v1"

// CellStats partitions a campaign's sweep cells by how their result
// was obtained. Total = Cached + Trained always holds: every completed
// cell either came out of the cache/dedup layer or was trained here.
type CellStats struct {
	Total   int64 `json:"total"`
	Cached  int64 `json:"cached"`
	Trained int64 `json:"trained"`
}

// Report is the structured end-of-run record of one campaign process:
// wall time, cell accounting, and the full telemetry snapshot (phase
// histograms like "snn.stdp"/"snn.assign", pool metrics, cache tiers,
// spice solver counters — whatever was registered).
type Report struct {
	Schema   string `json:"schema"`
	Name     string `json:"name"`
	Protocol string `json:"protocol"`
	// WallSeconds covers monitor creation to Report() — the observed
	// campaign, not the whole process.
	WallSeconds float64   `json:"wall_seconds"`
	Workers     int       `json:"workers"`
	Cells       CellStats `json:"cells"`
	// HitRate is Cells.Cached / Cells.Total (0 for an empty campaign).
	HitRate float64 `json:"hit_rate"`
	// NetworksTrained counts actual snn training runs, baseline
	// included — Cells.Trained's denominator-free cousin (a cell-level
	// count excludes the baseline, which trains before the pool runs).
	NetworksTrained int64        `json:"networks_trained"`
	Telemetry       obs.Snapshot `json:"telemetry"`
}

// Monitor observes one campaign for reporting: it ensures the
// experiment has a telemetry registry, chains itself onto the
// experiment's progress stream to count cells and cache hits, and
// renders a Report on demand. Attach it before the sweep runs; the
// experiment's own OnProgress (if any) keeps firing unchanged.
type Monitor struct {
	name  string
	exp   *Experiment
	reg   *obs.Registry
	start time.Time

	cells obs.Counter
	hits  obs.Counter
}

// NewMonitor attaches a monitor to e under the given campaign name.
// If e.Obs is nil a fresh registry is installed, so downstream layers
// (pools, training spans, instrumented caches) start recording.
func NewMonitor(e *Experiment, name string) *Monitor {
	if e.Obs == nil {
		e.Obs = obs.NewRegistry()
	}
	m := &Monitor{name: name, exp: e, reg: e.Obs, start: time.Now()}
	e.OnProgress = runner.ChainProgress(e.OnProgress, m.observe)
	return m
}

// Registry returns the registry the monitor records into (the
// experiment's), for wiring additional instruments — disk cache tiers,
// spice.Instrument — into the same report.
func (m *Monitor) Registry() *obs.Registry { return m.reg }

func (m *Monitor) observe(p runner.Progress) {
	m.cells.Inc()
	if p.CacheHit {
		m.hits.Inc()
	}
}

// Report renders the campaign's end-of-run record. Callable once per
// campaign milestone — each call snapshots the registry at that moment.
func (m *Monitor) Report() *Report {
	workers := m.exp.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	total, cached := m.cells.Value(), m.hits.Value()
	r := &Report{
		Schema:      ReportSchema,
		Name:        m.name,
		Protocol:    snn.ProtocolVersion,
		WallSeconds: time.Since(m.start).Seconds(),
		Workers:     workers,
		Cells: CellStats{
			Total:   total,
			Cached:  cached,
			Trained: total - cached,
		},
		NetworksTrained: m.exp.TrainCount(),
		Telemetry:       m.reg.Snapshot(),
	}
	if total > 0 {
		r.HitRate = float64(cached) / float64(total)
	}
	return r
}

// WriteFile writes the report as indented JSON (atomically enough for
// its purpose: a report is written once, at exit).
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Summarize prints the human-facing digest: one headline line plus the
// phase histograms worth reading at a glance.
func (r *Report) Summarize(w io.Writer) {
	fmt.Fprintf(w, "campaign %s: %d cells (%d cached, %d trained, hit rate %.0f%%) in %.2fs on %d workers; %d networks trained\n",
		r.Name, r.Cells.Total, r.Cells.Cached, r.Cells.Trained,
		100*r.HitRate, r.WallSeconds, r.Workers, r.NetworksTrained)
	names := make([]string, 0, len(r.Telemetry.Histograms))
	for name := range r.Telemetry.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := r.Telemetry.Histograms[name]
		if h.Count == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-16s %5d× total %8.1fms  p50 %7.2fms  p95 %7.2fms  max %7.2fms\n",
			name, h.Count, h.TotalMs, h.P50Ms, h.P95Ms, h.MaxMs)
	}
}
