package core

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"snnfi/internal/runner"
	"snnfi/internal/snn"
)

// tinyExperiment builds a small but non-degenerate campaign: big
// enough that parallel training has real work per cell, small enough
// that a handful of sweeps stays in test budget.
func tinyExperiment(t *testing.T, nImages int) *Experiment {
	t.Helper()
	cfg := snn.DefaultConfig()
	cfg.NExc, cfg.NInh = 16, 16
	cfg.Steps = 60
	e, err := NewExperiment("", nImages, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func samePoints(t *testing.T, workers int, got, want []SweepPoint) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("workers=%d: %d points, want %d", workers, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.ScalePc != w.ScalePc || g.FractionPc != w.FractionPc || g.VDD != w.VDD ||
			g.Defense != w.Defense || g.Detected != w.Detected {
			t.Fatalf("workers=%d: point %d coords %+v, want %+v", workers, i, g, w)
		}
		if g.Result.Accuracy != w.Result.Accuracy ||
			g.Result.Baseline != w.Result.Baseline ||
			g.Result.RelChangePc != w.Result.RelChangePc ||
			g.Result.TotalSpikes != w.Result.TotalSpikes {
			t.Fatalf("workers=%d: point %d result %+v, want %+v", workers, i, *g.Result, *w.Result)
		}
		if (g.Result.Plan == nil) != (w.Result.Plan == nil) ||
			(g.Result.Plan != nil && g.Result.Plan.Name != w.Result.Plan.Name) {
			t.Fatalf("workers=%d: point %d plan mismatch", workers, i)
		}
	}
}

// TestSweepDeterministicAcrossWorkers is the runner's core contract:
// the same campaign at 1, 4 and 8 workers yields identical SweepPoint
// sequences and byte-identical streamed JSONL.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	e := tinyExperiment(t, 60)
	changes := []float64{-20, 10}
	fractions := []float64{50, 100}

	var ref []SweepPoint
	var refJSONL []byte
	for _, workers := range []int{1, 4, 8} {
		// Fresh cache each round so every width really executes the
		// cells (a warm cache would trivially return equal results).
		e.Cache = runner.NewMemoryCache[*Result]()
		e.Workers = workers
		var buf bytes.Buffer
		sink := runner.NewJSONLSink(&buf)
		e.Sinks = []runner.Sink{sink}

		pts, err := e.LayerGrid(Inhibitory, changes, fractions)
		if err != nil {
			t.Fatal(err)
		}
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
		if workers == 1 {
			ref, refJSONL = pts, buf.Bytes()
			continue
		}
		samePoints(t, workers, pts, ref)
		if !bytes.Equal(buf.Bytes(), refJSONL) {
			t.Fatalf("workers=%d: streamed JSONL differs from serial:\n%s\nvs\n%s",
				workers, buf.Bytes(), refJSONL)
		}
	}
	if len(refJSONL) == 0 {
		t.Fatal("sink saw no records")
	}
}

// TestSweepBaselineTrainsOnce asserts the cache contract: across a
// whole sweep the shared attack-free baseline is trained exactly once,
// and re-running the sweep trains nothing at all.
func TestSweepBaselineTrainsOnce(t *testing.T) {
	e := tinyExperiment(t, 40)
	e.Workers = 4
	pts, err := e.LayerGrid(Excitatory, []float64{-20, 20}, []float64{50, 100})
	if err != nil {
		t.Fatal(err)
	}
	wantTrains := int64(len(pts) + 1) // 4 cells + 1 baseline
	if got := e.TrainCount(); got != wantTrains {
		t.Fatalf("first sweep trained %d networks, want %d (cells + baseline once)", got, wantTrains)
	}
	again, err := e.LayerGrid(Excitatory, []float64{-20, 20}, []float64{50, 100})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.TrainCount(); got != wantTrains {
		t.Fatalf("repeated sweep trained %d more networks, want 0", got-wantTrains)
	}
	samePoints(t, 4, again, pts)
	if hits, _ := e.Cache.(*runner.MemoryCache[*Result]).Stats(); hits < int64(len(pts)) {
		t.Fatalf("cache hits = %d, want ≥%d", hits, len(pts))
	}
}

// TestRunPlansOrdered routes ad-hoc plan lists (cmd/snn-attack,
// examples/defense-eval) through the pool and keeps input order.
func TestRunPlansOrdered(t *testing.T) {
	e := tinyExperiment(t, 40)
	e.Workers = 3
	plans := []*FaultPlan{
		NewAttack1(1.2),
		NewAttack3(0.8, 1, 1),
		NewAttack4(0.9),
	}
	results, err := e.RunPlans(plans)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(plans) {
		t.Fatalf("%d results for %d plans", len(results), len(plans))
	}
	for i, r := range results {
		if r.Plan.Name != plans[i].Name {
			t.Fatalf("result %d is %q, want %q", i, r.Plan.Name, plans[i].Name)
		}
	}
}

// TestRunIsCached: two Runs of one configuration train once.
func TestRunIsCached(t *testing.T) {
	e := tinyExperiment(t, 40)
	r1, err := e.Run(NewAttack4(0.8))
	if err != nil {
		t.Fatal(err)
	}
	before := e.TrainCount()
	r2, err := e.Run(NewAttack4(0.8))
	if err != nil {
		t.Fatal(err)
	}
	if e.TrainCount() != before {
		t.Fatal("identical plan must be served from the cache")
	}
	if r1.Accuracy != r2.Accuracy || r1.RelChangePc != r2.RelChangePc {
		t.Fatal("cached result differs")
	}
	// A different configuration is a different content address.
	if _, err := e.Run(NewAttack4(0.9)); err != nil {
		t.Fatal(err)
	}
	if e.TrainCount() == before {
		t.Fatal("distinct plan must retrain")
	}
}

// TestLayerGridParallelSpeedup is the wall-clock acceptance bar: with
// ≥4 workers a LayerGrid sweep runs ≥2× faster than serial while
// producing identical results. Training is CPU-bound, so the test
// needs real cores; on smaller machines the sleep-bound equivalent in
// internal/runner still enforces the pool's concurrency.
func TestLayerGridParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test skipped in -short mode")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("need ≥4 CPUs for a CPU-bound speedup, have %d", runtime.GOMAXPROCS(0))
	}
	e := tinyExperiment(t, 80)
	changes := []float64{-20, -10, 10, 20}
	fractions := []float64{50, 100}
	if _, err := e.Baseline(); err != nil {
		t.Fatal(err)
	}

	e.Cache = runner.NewMemoryCache[*Result]()
	e.Workers = 1
	start := time.Now()
	serialPts, err := e.LayerGrid(Inhibitory, changes, fractions)
	if err != nil {
		t.Fatal(err)
	}
	serial := time.Since(start)

	e.Cache = runner.NewMemoryCache[*Result]()
	e.Workers = 4
	start = time.Now()
	parallelPts, err := e.LayerGrid(Inhibitory, changes, fractions)
	if err != nil {
		t.Fatal(err)
	}
	parallel := time.Since(start)

	samePoints(t, 4, parallelPts, serialPts)
	if parallel > serial/2 {
		t.Fatalf("4 workers took %v, serial took %v — want ≥2× speedup", parallel, serial)
	}
}
