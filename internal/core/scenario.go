package core

import (
	"fmt"

	"snnfi/internal/xfer"
)

// Hardening maps an attack plan onto a defended implementation: the
// plan that results when the same physical fault hits the hardened
// circuit. defense.Defense satisfies this interface; core defines it
// so scenarios can carry defense columns without importing the defense
// package (which imports core).
type Hardening interface {
	Name() string
	Harden(plan *FaultPlan) *FaultPlan
}

// CellJudge renders the dummy-neuron detector's verdict for one attack
// cell: given the cell's sweep coordinates and its *undefended* plan
// (the detector senses the physical glitch itself, which parameter
// hardening does not remove), it reports whether the detector fires.
// defense.DetectorConfig satisfies this interface.
type CellJudge interface {
	Judge(point SweepPoint, plan *FaultPlan) bool
}

// Axes spans the coordinate grid of a scenario's attack family. Which
// fields are read depends on the attack: ChangesPc for Attacks 1-4,
// FractionsPc additionally for Attacks 2-3 (defaulting to {100}), and
// VDDs (with Kind selecting the threshold transfer curve) for
// Attack 5.
type Axes struct {
	// ChangesPc are parameter changes in percent (-20 … +20).
	ChangesPc []float64
	// FractionsPc are layer coverages in percent; empty means {100}.
	FractionsPc []float64
	// VDDs are supply voltages for the black-box sweep.
	VDDs []float64
	// Kind selects the neuron circuit whose transfer curves map VDD to
	// parameter corruption (Attack 5).
	Kind xfer.NeuronKind
	// MaskSeed fixes which neurons a partial-layer glitch hits
	// (Attacks 2-3); 0 uses the campaign default so fractions nest
	// across every entry point.
	MaskSeed int64
	// Variation, when non-nil, expands every Attack 5 supply coordinate
	// into one cell per mismatch quantile, sampling the threshold
	// transfer map from the process-variation band instead of the
	// nominal curve — distributional attack severity and detector ROC
	// instead of single points.
	Variation *VariationAxis
}

// VariationAxis adds a process-variation dimension to an Attack 5
// sweep: the per-cell threshold transfer curve is shifted to each
// listed quantile of a normal mismatch distribution whose relative
// sigma (100·σ/μ) comes from the Monte-Carlo threshold
// characterization.
type VariationAxis struct {
	// RelSigmaPc is the relative threshold sigma in percent (σ/μ·100),
	// anchored on neuron.Spread over MonteCarloThresholds samples.
	RelSigmaPc float64
	// QuantilesPc are the sampled quantiles in percent (e.g. 5, 50, 95).
	QuantilesPc []float64
}

// Scenario declaratively specifies one campaign matrix: an attack
// family swept over a coordinate grid, replayed undefended and against
// each listed defense, with the dummy-neuron detector judging
// alongside — the paper's §IV-§V evaluation protocol as a value.
//
// Compiling a scenario yields one flat job list, so all cells —
// defended and undefended alike — share a single pool run, a single
// trained baseline, and a single ordered sink stream. When Defenses or
// a Detector are present, streamed records gain "defense" and
// "detected" fields.
type Scenario struct {
	// Name labels records ("sweep" field); empty derives it from the
	// attack family.
	Name string
	// Attack selects the swept family (Attack1 … Attack5). Zero means
	// the scenario enumerates explicit Plans instead.
	Attack AttackID
	// Plans are ad-hoc cells for attack-less scenarios (the RunPlans
	// path); a nil plan stands for the attack-free baseline.
	Plans []*FaultPlan
	// Axes spans the attack family's coordinate grid.
	Axes Axes
	// Defenses are the hardened replays. The undefended column is
	// always included first; each defense adds one column per
	// coordinate.
	Defenses []Hardening
	// Detector, when non-nil, judges every coordinate's undefended
	// plan and stamps the verdict on all of that coordinate's cells.
	Detector CellJudge
}

// Validate reports specification errors.
func (s *Scenario) Validate() error {
	if s.Attack == 0 && len(s.Plans) == 0 {
		return fmt.Errorf("core: scenario needs an attack family or explicit plans")
	}
	if s.Attack != 0 && len(s.Plans) > 0 {
		return fmt.Errorf("core: scenario cannot mix an attack family with explicit plans")
	}
	switch s.Attack {
	case 0: // explicit plans
	case Attack1, Attack2, Attack3, Attack4:
		if len(s.Axes.ChangesPc) == 0 {
			return fmt.Errorf("core: scenario %v needs Axes.ChangesPc", s.Attack)
		}
	case Attack5:
		if len(s.Axes.VDDs) == 0 {
			return fmt.Errorf("core: scenario %v needs Axes.VDDs", s.Attack)
		}
	default:
		return fmt.Errorf("core: unknown attack %v", s.Attack)
	}
	if v := s.Axes.Variation; v != nil {
		if s.Attack != Attack5 {
			return fmt.Errorf("core: Axes.Variation applies only to %v (the transfer-map attack), got %v", Attack5, s.Attack)
		}
		if len(v.QuantilesPc) == 0 {
			return fmt.Errorf("core: Axes.Variation needs QuantilesPc")
		}
		if v.RelSigmaPc < 0 {
			return fmt.Errorf("core: Axes.Variation.RelSigmaPc must be >= 0, got %g", v.RelSigmaPc)
		}
		for _, q := range v.QuantilesPc {
			if q <= 0 || q >= 100 {
				return fmt.Errorf("core: Axes.Variation quantile %g out of range (0, 100)", q)
			}
		}
	}
	for _, d := range s.Defenses {
		if d == nil {
			return fmt.Errorf("core: scenario defense list contains nil (the undefended column is implicit)")
		}
	}
	return nil
}

// name resolves the record label.
func (s *Scenario) name() string {
	if s.Name != "" {
		return s.Name
	}
	if s.Attack == 0 {
		return "plans"
	}
	return s.Attack.String()
}

// baseCells enumerates the undefended coordinate grid of the attack
// family, one cell per coordinate, in deterministic sweep order.
func (s *Scenario) baseCells() []campaignJob {
	maskSeed := s.Axes.MaskSeed
	if maskSeed == 0 {
		maskSeed = gridMaskSeed
	}
	fractions := s.Axes.FractionsPc
	if len(fractions) == 0 {
		fractions = []float64{100}
	}
	var cells []campaignJob
	switch s.Attack {
	case 0:
		for _, p := range s.Plans {
			desc := "plan (baseline)"
			if p != nil {
				desc = fmt.Sprintf("plan %q", p.Name)
			}
			cells = append(cells, campaignJob{plan: p, desc: desc})
		}
	case Attack1:
		for _, c := range s.Axes.ChangesPc {
			cells = append(cells, campaignJob{
				point: SweepPoint{ScalePc: c, FractionPc: 100},
				plan:  NewAttack1(1 + c/100),
				desc:  fmt.Sprintf("attack 1 at %+.0f%%", c),
			})
		}
	case Attack2, Attack3:
		layer := Excitatory
		build := NewAttack2
		if s.Attack == Attack3 {
			layer, build = Inhibitory, NewAttack3
		}
		for _, c := range s.Axes.ChangesPc {
			for _, f := range fractions {
				cells = append(cells, campaignJob{
					point: SweepPoint{ScalePc: c, FractionPc: f},
					plan:  build(1+c/100, f/100, maskSeed),
					desc:  fmt.Sprintf("%v grid at %+.0f%%/%.0f%%", layer, c, f),
				})
			}
		}
	case Attack4:
		for _, c := range s.Axes.ChangesPc {
			cells = append(cells, campaignJob{
				point: SweepPoint{ScalePc: c, FractionPc: 100},
				plan:  NewAttack4(1 + c/100),
				desc:  fmt.Sprintf("attack 4 at %+.0f%%", c),
			})
		}
	case Attack5:
		for _, v := range s.Axes.VDDs {
			if vr := s.Axes.Variation; vr != nil {
				// Supply-major, quantile-minor: each supply's band reads
				// as consecutive rows, which is the order the pivoted
				// p5/p50/p95 outputs consume.
				for _, q := range vr.QuantilesPc {
					cells = append(cells, campaignJob{
						point: SweepPoint{VDD: v, FractionPc: 100, QuantilePc: q},
						plan:  NewAttack5Variation(v, s.Axes.Kind, q, vr.RelSigmaPc),
						desc:  fmt.Sprintf("attack 5 at VDD=%.2f p%g", v, q),
					})
				}
				continue
			}
			cells = append(cells, campaignJob{
				point: SweepPoint{VDD: v, FractionPc: 100},
				plan:  NewAttack5(v, s.Axes.Kind),
				desc:  fmt.Sprintf("attack 5 at VDD=%.2f", v),
			})
		}
	}
	return cells
}

// compile lowers the scenario to its flat job list: the coordinate
// grid crossed with the defense columns (undefended first), each
// coordinate judged once by the detector. The expansion is pure — the
// same scenario always compiles to the same cells in the same order,
// which is what makes campaign output independent of worker count.
func (s *Scenario) compile() ([]campaignJob, campaignMeta, error) {
	meta := campaignMeta{
		name:      s.name(),
		coords:    s.Attack != 0,
		matrix:    len(s.Defenses) > 0 || s.Detector != nil,
		variation: s.Axes.Variation != nil,
	}
	if err := s.Validate(); err != nil {
		return nil, meta, err
	}
	base := s.baseCells()
	if !meta.matrix {
		return base, meta, nil
	}
	cells := make([]campaignJob, 0, len(base)*(1+len(s.Defenses)))
	for _, b := range base {
		detected := false
		if s.Detector != nil {
			judged := b.point
			if meta.variation {
				// A variation cell's nominal supply would mask its
				// quantile: the detector's dummy neuron is built from the
				// same mismatched wafer, so what it senses is the cell's
				// *effective* corruption. Blanking VDD makes the judge
				// invert the quantile-shifted threshold scale instead —
				// marginal supplies drift across the trigger with process
				// corner, which is the distributional-ROC story.
				judged.VDD = 0
			}
			detected = s.Detector.Judge(judged, b.plan)
		}
		b.point.Detected = detected
		cells = append(cells, b)
		for _, d := range s.Defenses {
			cell := b
			cell.point.Defense = d.Name()
			if b.plan != nil {
				cell.plan = d.Harden(b.plan)
			}
			cell.desc = fmt.Sprintf("%s [%s]", b.desc, d.Name())
			cells = append(cells, cell)
		}
	}
	return cells, meta, nil
}

// RunScenario compiles the scenario and executes every cell on the
// experiment's worker pool: defended and undefended replays of the
// same attack share one pool run, one trained baseline, and one
// ordered sink stream, and each cell is served from the result cache
// when its configuration was already trained — in this process or (with
// a disk-backed cache) a previous one. Results arrive in compile
// order: coordinate-major, the undefended column before each
// coordinate's defended replays.
func (e *Experiment) RunScenario(s *Scenario) ([]SweepPoint, error) {
	cells, meta, err := s.compile()
	if err != nil {
		return nil, err
	}
	return e.runCampaign(meta, cells)
}

// RunScenarioSubset compiles the scenario and executes only the cells
// the filter keeps (called with each cell's compile-order index and
// content address), returning their points in compile order. This is
// the fabric worker's entry point: a shard executes exactly its
// assigned cells, writing each result through the experiment's cache
// chain into the shared store, and discards nothing else — the
// coordinator later re-runs the full scenario against the warmed
// store, where every cell is a cache hit, to emit the merged sinks.
// Because a cell's result is a pure function of its content address,
// which process computed it is unobservable in the merged output.
//
// An empty selection returns immediately without training anything —
// the shared baseline included, so a fully-warm shard costs nothing.
func (e *Experiment) RunScenarioSubset(s *Scenario, keep func(index int, key string) bool) ([]SweepPoint, error) {
	cells, meta, err := s.compile()
	if err != nil {
		return nil, err
	}
	kept := make([]campaignJob, 0, len(cells))
	for i, c := range cells {
		if keep(i, c.key(e)) {
			kept = append(kept, c)
		}
	}
	return e.runCampaign(meta, kept)
}

// ScenarioKeys returns the content addresses of every cell the
// scenario compiles to, in compile order — the keys a disk cache will
// be probed with. Campaign tooling uses it to audit which cells of a
// resumable campaign are already on disk.
func (e *Experiment) ScenarioKeys(s *Scenario) ([]string, error) {
	cells, _, err := s.compile()
	if err != nil {
		return nil, err
	}
	keys := make([]string, len(cells))
	for i, c := range cells {
		keys[i] = c.key(e)
	}
	return keys, nil
}
