// Package core implements the paper's contribution: the five
// power-oriented fault-injection attacks on spiking neural networks,
// expressed as parameter-corruption plans applied to a Diehl&Cook
// network, plus the campaign runner that reproduces the paper's
// accuracy-degradation sweeps (Figs. 7b, 8a, 8b, 8c, 9a).
//
// Threat model (paper §I): an adversary with control of the external
// supply (black box, Attack 5) or with laser-localized glitching
// capability (white box, Attacks 1–4) corrupts the input-driver spike
// amplitude and/or the neuron membrane thresholds. The circuit-level
// transfer from VDD to those parameters comes from internal/xfer
// (anchored on the paper's HSPICE characterization) and is reproduced
// independently by internal/neuron.
package core

import (
	"fmt"
	"math/rand"

	"snnfi/internal/snn"
)

// Layer identifies a fault target within the Diehl&Cook network.
type Layer int

// Attackable layers.
const (
	// Drivers are the input current drivers (theta / membrane charge
	// per input spike).
	Drivers Layer = iota
	// Excitatory is the excitatory neuron layer (EL).
	Excitatory
	// Inhibitory is the inhibitory neuron layer (IL).
	Inhibitory
)

func (l Layer) String() string {
	switch l {
	case Drivers:
		return "drivers"
	case Excitatory:
		return "excitatory"
	case Inhibitory:
		return "inhibitory"
	default:
		return fmt.Sprintf("layer(%d)", int(l))
	}
}

// FaultSpec describes one parameter corruption: which layer, what
// multiplicative scale, and what fraction of the layer's neurons are
// affected (the paper's model of laser-glitch locality — a fraction of
// a layer's physically interleaved neurons sits inside the glitched
// region).
type FaultSpec struct {
	Layer Layer
	// Scale multiplies the target parameter. For Excitatory/Inhibitory
	// it scales the membrane threshold value (paper convention: a "−20%
	// threshold change" is Scale = 0.8); for Drivers it scales the
	// membrane charge delivered per input spike.
	Scale float64
	// Fraction of the layer's neurons affected, in [0, 1]. The affected
	// subset is sampled uniformly with Seed.
	Fraction float64
	Seed     int64
}

// Validate reports specification errors.
func (f FaultSpec) Validate() error {
	if f.Scale <= 0 {
		return fmt.Errorf("core: fault scale must be positive, got %g", f.Scale)
	}
	if f.Fraction < 0 || f.Fraction > 1 {
		return fmt.Errorf("core: fault fraction must be in [0,1], got %g", f.Fraction)
	}
	return nil
}

// FaultPlan is a set of corruptions applied together — one attack
// configuration. Plans are applied to a network before training and can
// be reverted, so defended and undefended models can replay identical
// plans.
type FaultPlan struct {
	Name   string
	Faults []FaultSpec
}

// Validate reports the first invalid fault in the plan.
func (p *FaultPlan) Validate() error {
	for i, f := range p.Faults {
		if err := f.Validate(); err != nil {
			return fmt.Errorf("fault %d: %w", i, err)
		}
	}
	return nil
}

// Apply installs the plan's corruptions on a network. The network must
// be in the nominal state (fresh or reverted); Apply returns a revert
// function restoring nominal parameters.
func (p *FaultPlan) Apply(n *snn.DiehlCook) (revert func(), err error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("core: plan %q: %w", p.Name, err)
	}
	savedExc := n.Exc.ThreshScale.Copy()
	savedInh := n.Inh.ThreshScale.Copy()
	savedGain := n.Exc.InputGain.Copy()
	savedDrive := n.InputDriveScale

	for _, f := range p.Faults {
		switch f.Layer {
		case Drivers:
			applyMasked(n.Exc.InputGain, f, func(cur float64) float64 { return cur * f.Scale })
		case Excitatory:
			applyMasked(n.Exc.ThreshScale, f, func(cur float64) float64 { return cur * f.Scale })
		case Inhibitory:
			applyMasked(n.Inh.ThreshScale, f, func(cur float64) float64 { return cur * f.Scale })
		default:
			return nil, fmt.Errorf("core: plan %q: unknown layer %v", p.Name, f.Layer)
		}
	}
	return func() {
		copy(n.Exc.ThreshScale, savedExc)
		copy(n.Inh.ThreshScale, savedInh)
		copy(n.Exc.InputGain, savedGain)
		n.InputDriveScale = savedDrive
	}, nil
}

// applyMasked scales a random Fraction of the vector's entries.
func applyMasked(v []float64, f FaultSpec, apply func(float64) float64) {
	n := len(v)
	k := int(f.Fraction*float64(n) + 0.5)
	if k <= 0 {
		return
	}
	if k >= n {
		for i := range v {
			v[i] = apply(v[i])
		}
		return
	}
	rng := rand.New(rand.NewSource(f.Seed))
	perm := rng.Perm(n)
	for _, i := range perm[:k] {
		v[i] = apply(v[i])
	}
}

// AffectedCount returns how many of n neurons a fraction covers (the
// same rounding Apply uses).
func AffectedCount(n int, fraction float64) int {
	k := int(fraction*float64(n) + 0.5)
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}
