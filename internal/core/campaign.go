package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"snnfi/internal/encoding"
	"snnfi/internal/mnist"
	"snnfi/internal/obs"
	"snnfi/internal/runner"
	"snnfi/internal/snn"
	"snnfi/internal/xfer"
)

// Experiment fixes the data, network configuration and random seeds for
// a campaign, so every attack configuration trains an identical network
// on identical spike trains and differs only in the injected fault —
// the paper's protocol (train under attack, report accuracy relative to
// the attack-free baseline).
//
// Sweeps execute on a worker pool (internal/runner): each sweep cell is
// an independent job, results are collected in cell order, and a
// content-addressed cache keyed by (experiment fingerprint, plan)
// skips retraining for repeated configurations. Data fields must be
// fixed before the first Run/Baseline/sweep call; the runner knobs
// (Workers, OnProgress, Sinks) may be adjusted between sweeps.
type Experiment struct {
	Images  []mnist.Image
	Cfg     snn.DiehlCookConfig
	EncSeed int64

	// Workers sizes the total worker budget: the sweep cell pool, with
	// each in-flight cell's intra-cell assignment pass receiving an
	// equal share of the remaining width (a single-cell campaign runs
	// its read-only pass at full width; a wide campaign runs cells at
	// width 1 each). ≤0 uses all CPUs (runtime.GOMAXPROCS). Results
	// are identical at every width.
	Workers int
	// Batch is the STDP minibatch width (snn.TrainOptions.Batch): ≤1
	// trains serially (the paper's protocol), >1 presents each group of
	// Batch consecutive images against frozen parameters and merges the
	// updates deterministically. Unlike Workers, Batch changes what is
	// computed, so it is part of the experiment fingerprint — results
	// trained at different batch widths never alias in the cache. Must
	// be fixed before the first Run/Baseline/sweep call.
	Batch int
	// OnProgress, when non-nil, observes each completed sweep cell.
	OnProgress func(runner.Progress)
	// Sinks receive one record per sweep point, streamed in sweep
	// order regardless of worker count.
	Sinks []runner.Sink
	// Cache memoizes trained results by content address so repeated
	// configurations (the shared baseline, re-run sweeps) skip
	// retraining. NewExperiment installs an in-memory cache;
	// campaigns that must survive the process compose a
	// runner.DiskCache under it (runner.NewTiered), which lets a
	// fresh process resume with only the missing cells retrained.
	// Experiments over the same data may share a cache safely because
	// keys cover the full experiment fingerprint.
	Cache runner.Cache[*Result]
	// Obs, when non-nil, receives campaign telemetry: the sweep pool's
	// "core.cells.*" metrics, each cell's training spans ("snn.stdp",
	// "snn.assign") and the intra-cell evaluation pool's "snn.eval.*".
	// Purely observational — results and streamed records are
	// byte-identical with or without a registry (see report_test.go).
	Obs *obs.Registry

	baseMu  sync.Mutex
	baseRes *Result

	fpOnce sync.Once
	fp     string

	trains atomic.Int64
}

// NewExperiment prepares a campaign over n digit images. dataDir may
// point at a real MNIST directory; the synthetic corpus is used
// otherwise (see mnist.Load).
func NewExperiment(dataDir string, n int, cfg snn.DiehlCookConfig) (*Experiment, error) {
	images, err := mnist.Load(dataDir, n, 7)
	if err != nil {
		return nil, err
	}
	return &Experiment{
		Images:  images,
		Cfg:     cfg,
		EncSeed: 42,
		Cache:   runner.NewMemoryCache[*Result](),
	}, nil
}

// Result is one attack configuration's outcome.
type Result struct {
	Plan        *FaultPlan
	Accuracy    float64
	Baseline    float64
	RelChangePc float64 // 100·(acc−base)/base, the paper's reported metric
	TotalSpikes float64
}

// fingerprint content-addresses the experiment: the image corpus, the
// network configuration, the encoder seed, the training-protocol
// version (snn.ProtocolVersion, so caches written under older
// semantics miss rather than serve pre-engine values) and the STDP
// minibatch width (normalized so the equivalent serial widths 0 and 1
// share an address). Everything a trained result depends on besides
// the fault plan.
func (e *Experiment) fingerprint() string {
	e.fpOnce.Do(func() {
		batch := e.Batch
		if batch < 1 {
			batch = 1
		}
		e.fp = runner.KeyOf("experiment", snn.ProtocolVersion, e.Cfg, e.EncSeed, len(e.Images), mnist.Digest(e.Images), batch)
	})
	return e.fp
}

// planKey is the content address of one trained configuration.
func (e *Experiment) planKey(plan *FaultPlan) string {
	return runner.KeyOf(e.fingerprint(), plan)
}

// train trains one fresh network under plan (nil = attack-free) and
// returns its raw score. Safe for concurrent use: every call builds
// its own network and encoder from the experiment's fixed seeds, and
// the cell's read-only assignment pass runs on the intra-cell
// evaluation pool (snn.CountsParallel) at the given width — the full
// Workers for stand-alone runs, a campaign-divided share for sweep
// cells (see runCampaign), so cell-level and intra-cell parallelism
// compose instead of multiplying.
func (e *Experiment) train(plan *FaultPlan, evalWorkers int) (*snn.TrainResult, error) {
	e.trains.Add(1)
	n, err := snn.NewDiehlCook(e.Cfg)
	if err != nil {
		return nil, err
	}
	if plan != nil {
		revert, err := plan.Apply(n)
		if err != nil {
			return nil, err
		}
		defer revert()
	}
	enc := encoding.NewPoissonEncoder(e.EncSeed)
	return snn.TrainWith(n, e.Images, enc, snn.TrainOptions{Workers: evalWorkers, Batch: e.Batch, Obs: e.Obs})
}

// TrainCount reports how many networks the experiment has trained so
// far — the unit of work the result cache exists to avoid.
func (e *Experiment) TrainCount() int64 { return e.trains.Load() }

// Run trains a fresh network under the given plan (nil for the
// attack-free baseline) and scores it against the baseline. Results
// are served from the cache when the same configuration was already
// trained.
func (e *Experiment) Run(plan *FaultPlan) (*Result, error) {
	if plan == nil {
		return e.baselineResult()
	}
	key := e.planKey(plan)
	if r, ok := e.Cache.Get(key); ok {
		return r, nil
	}
	r, err := e.runUncached(plan, e.Workers)
	if err != nil {
		return nil, err
	}
	e.Cache.Put(key, r)
	return r, nil
}

// runUncached trains and scores one attacked configuration without
// consulting the cache. Sweep jobs call it directly: the campaign
// pool owns the single Get/Put for them, so a cell is looked up and
// stored exactly once per execution.
func (e *Experiment) runUncached(plan *FaultPlan, evalWorkers int) (*Result, error) {
	res, err := e.train(plan, evalWorkers)
	if err != nil {
		return nil, err
	}
	return e.score(plan, res)
}

// scoreTrained runs a custom training function (an extension-fault
// cell whose corruption is not a FaultPlan) and scores it like any
// plan cell: it counts toward TrainCount and is scored against the
// shared baseline. plan only names the configuration in the result.
func (e *Experiment) scoreTrained(plan *FaultPlan, train func(evalWorkers int) (*snn.TrainResult, error), evalWorkers int) (*Result, error) {
	e.trains.Add(1)
	res, err := train(evalWorkers)
	if err != nil {
		return nil, err
	}
	return e.score(plan, res)
}

// score relates one trained run to the attack-free baseline.
func (e *Experiment) score(plan *FaultPlan, res *snn.TrainResult) (*Result, error) {
	base, err := e.Baseline()
	if err != nil {
		return nil, err
	}
	r := &Result{
		Plan:        plan,
		Accuracy:    res.Accuracy,
		Baseline:    base,
		TotalSpikes: res.TotalSpikes,
	}
	if base > 0 {
		r.RelChangePc = 100 * (res.Accuracy - base) / base
	}
	return r, nil
}

// Baseline returns (computing once) the attack-free accuracy.
func (e *Experiment) Baseline() (float64, error) {
	r, err := e.baselineResult()
	if err != nil {
		return 0, err
	}
	return r.Accuracy, nil
}

// baselineResult memoizes the attack-free run. The lock is held across
// training so concurrent sweep workers wait for one computation
// instead of racing to retrain.
func (e *Experiment) baselineResult() (*Result, error) {
	e.baseMu.Lock()
	defer e.baseMu.Unlock()
	if e.baseRes != nil {
		return e.baseRes, nil
	}
	key := e.planKey(nil)
	if r, ok := e.Cache.Get(key); ok {
		e.baseRes = r
		return r, nil
	}
	// The baseline trains alone (runCampaign computes it before fanning
	// out), so its assignment pass gets the full pool width.
	res, err := e.train(nil, e.Workers)
	if err != nil {
		return nil, err
	}
	r := &Result{
		Accuracy:    res.Accuracy,
		Baseline:    res.Accuracy,
		TotalSpikes: res.TotalSpikes,
	}
	e.Cache.Put(key, r)
	e.baseRes = r
	return r, nil
}

// SweepPoint is one cell of a campaign sweep.
type SweepPoint struct {
	ScalePc    float64 // threshold/theta change in percent (−20 … +20)
	FractionPc float64 // portion of the layer affected in percent
	VDD        float64 // supply voltage (Attack 5 sweeps)
	QuantilePc float64 // mismatch quantile (variation sweeps; 0 = nominal corner)
	Defense    string  // hardening applied to the cell ("" = undefended)
	Detected   bool    // dummy-neuron detector verdict for the cell's attack
	Result     *Result
}

// campaignJob is one sweep cell before execution: the cell's
// coordinates, the fault plan built for them, and the description used
// in error wrapping. The encoder seed is deliberately NOT part of the
// cell — the paper's protocol trains every configuration on identical
// spike trains, so all cells share the experiment's EncSeed (a
// campaign needing per-cell randomness would derive child seeds with
// runner.DeriveSeed instead).
//
// Plan cells leave keyOverride and train nil: the cell is addressed by
// its plan and trained by applying it. Extension cells (weight and
// learning-rate faults, whose corruption is not expressible as a
// FaultPlan) set both — plan then only names the configuration in
// results — so they run, cache, and stream exactly like plan cells.
type campaignJob struct {
	point SweepPoint
	plan  *FaultPlan
	desc  string

	keyOverride string
	train       func(evalWorkers int) (*snn.TrainResult, error)
}

// key is the cell's content address.
func (c campaignJob) key(e *Experiment) string {
	if c.keyOverride != "" {
		return c.keyOverride
	}
	return e.planKey(c.plan)
}

// campaignMeta shapes the streamed records of one campaign: its sweep
// label, whether cells carry grid coordinates (ad-hoc plan lists do
// not, and zeroes would misreport them), and whether the campaign is a
// scenario matrix whose records carry the defense column and detector
// verdict.
type campaignMeta struct {
	name      string
	coords    bool
	matrix    bool
	variation bool
}

// gridMaskSeed fixes which neurons a partial-layer glitch hits, shared
// across all grid cells (and cmd/snn-attack) so fractions nest.
const gridMaskSeed = 99

// runCampaign executes the cells on the worker pool, collecting
// results in cell order, streaming one record per point to Sinks, and
// reporting completions to OnProgress. The output is byte-identical to
// serial execution at any worker count.
func (e *Experiment) runCampaign(meta campaignMeta, cells []campaignJob) ([]SweepPoint, error) {
	if len(cells) == 0 {
		return nil, nil
	}
	// Train the shared baseline before fanning out: every cell scores
	// against it, and computing it up front keeps workers from queueing
	// on the baseline lock (and keeps it trained exactly once).
	if _, err := e.Baseline(); err != nil {
		return nil, err
	}
	// Split the pool between the two levels of parallelism: with C
	// cells in flight, each cell's read-only assignment pass gets
	// width/C evaluation workers, so total presentation goroutines stay
	// ≈ Workers instead of multiplying to Workers². A single-cell
	// campaign therefore gets the whole pool inside the cell — the
	// intra-cell engine's motivating case.
	cellWidth := e.Workers
	if cellWidth <= 0 {
		cellWidth = runtime.GOMAXPROCS(0)
	}
	evalWorkers := cellWidth / min(cellWidth, len(cells))
	if evalWorkers < 1 {
		evalWorkers = 1
	}
	jobs := make([]runner.Job[*Result], len(cells))
	for i := range cells {
		c := cells[i]
		jobs[i] = runner.Job[*Result]{
			Label: c.desc,
			Key:   c.key(e),
			Run: func() (*Result, error) {
				// The pool already missed the cache for this key, so
				// compute without a second lookup (a nil plan is the
				// memoized baseline).
				var r *Result
				var err error
				switch {
				case c.train != nil:
					r, err = e.scoreTrained(c.plan, c.train, evalWorkers)
				case c.plan == nil:
					r, err = e.baselineResult()
				default:
					r, err = e.runUncached(c.plan, evalWorkers)
				}
				if err != nil {
					return nil, fmt.Errorf("core: %s: %w", c.desc, err)
				}
				return r, nil
			},
		}
	}
	pool := &runner.Pool[*Result]{
		Workers:    e.Workers,
		Cache:      e.Cache,
		OnProgress: e.OnProgress,
		Obs:        e.Obs,
		Name:       "core.cells",
	}
	if len(e.Sinks) > 0 {
		pool.OnResult = func(i int, r *Result, _ bool) error {
			rec := sweepRecord(meta, cells[i].point, r)
			for _, s := range e.Sinks {
				if err := s.Write(rec); err != nil {
					return err
				}
			}
			return nil
		}
	}
	results, err := pool.Run(jobs)
	if err != nil {
		return nil, err
	}
	out := make([]SweepPoint, len(cells))
	for i, r := range results {
		out[i] = cells[i].point
		out[i].Result = r
	}
	return out, nil
}

// sweepRecord renders one sweep point for the streaming sinks. The
// coordinate fields are included only for real sweeps — ad-hoc plan
// lists have no grid coordinates, and zeroes would misreport them —
// and the defense/detector fields only for scenario matrices, so
// plain sweeps keep their established record schema.
func sweepRecord(meta campaignMeta, p SweepPoint, r *Result) runner.Record {
	planName := ""
	if r.Plan != nil {
		planName = r.Plan.Name
	}
	rec := runner.Record{
		{Name: "sweep", Value: meta.name},
		{Name: "plan", Value: planName},
	}
	if meta.matrix {
		rec = append(rec, runner.Field{Name: "defense", Value: p.Defense})
	}
	if meta.coords {
		rec = append(rec,
			runner.Field{Name: "scale_pc", Value: p.ScalePc},
			runner.Field{Name: "fraction_pc", Value: p.FractionPc},
			runner.Field{Name: "vdd_v", Value: p.VDD},
		)
	}
	if meta.variation {
		rec = append(rec, runner.Field{Name: "quantile_pc", Value: p.QuantilePc})
	}
	rec = append(rec,
		runner.Field{Name: "accuracy", Value: r.Accuracy},
		runner.Field{Name: "baseline", Value: r.Baseline},
		runner.Field{Name: "rel_change_pc", Value: r.RelChangePc},
		runner.Field{Name: "total_spikes", Value: r.TotalSpikes},
	)
	if meta.matrix {
		rec = append(rec, runner.Field{Name: "detected", Value: p.Detected})
	}
	return rec
}

// RunPlans evaluates several fault plans through the worker pool and
// returns one result per plan, in input order. A nil plan stands for
// the attack-free baseline, as in Run.
func (e *Experiment) RunPlans(plans []*FaultPlan) ([]*Result, error) {
	pts, err := e.RunScenario(&Scenario{Name: "plans", Plans: plans})
	if err != nil {
		return nil, err
	}
	out := make([]*Result, len(pts))
	for i, p := range pts {
		out[i] = p.Result
	}
	return out, nil
}

// Attack1Sweep reproduces Fig. 7b: classification accuracy versus theta
// (per-input-spike membrane charge) change.
func (e *Experiment) Attack1Sweep(changesPc []float64) ([]SweepPoint, error) {
	return e.RunScenario(&Scenario{
		Name:   "attack1-theta",
		Attack: Attack1,
		Axes:   Axes{ChangesPc: changesPc},
	})
}

// LayerGrid reproduces Figs. 8a/8b: accuracy over threshold change ×
// fraction-of-layer for one layer (Excitatory → Attack 2, Inhibitory →
// Attack 3).
func (e *Experiment) LayerGrid(layer Layer, changesPc, fractionsPc []float64) ([]SweepPoint, error) {
	attack := Attack2
	if layer == Inhibitory {
		attack = Attack3
	} else if layer != Excitatory {
		return nil, fmt.Errorf("core: layer grid needs a neuron layer, got %v", layer)
	}
	return e.RunScenario(&Scenario{
		Name:   fmt.Sprintf("layer-grid-%v", layer),
		Attack: attack,
		Axes:   Axes{ChangesPc: changesPc, FractionsPc: fractionsPc},
	})
}

// Attack4Sweep reproduces Fig. 8c: accuracy versus threshold change
// with both layers fully affected.
func (e *Experiment) Attack4Sweep(changesPc []float64) ([]SweepPoint, error) {
	return e.RunScenario(&Scenario{
		Name:   "attack4-both-layers",
		Attack: Attack4,
		Axes:   Axes{ChangesPc: changesPc},
	})
}

// Attack5Sweep reproduces Fig. 9a: accuracy versus VDD for the whole
// shared-supply system.
func (e *Experiment) Attack5Sweep(vdds []float64, kind xfer.NeuronKind) ([]SweepPoint, error) {
	return e.RunScenario(&Scenario{
		Name:   "attack5-vdd",
		Attack: Attack5,
		Axes:   Axes{VDDs: vdds, Kind: kind},
	})
}

// WorstCase returns the sweep point with the most negative relative
// accuracy change. ok is false when points is empty (or no point
// carries a result), so callers never dereference a missing result.
func WorstCase(points []SweepPoint) (worst SweepPoint, ok bool) {
	for _, p := range points {
		if p.Result == nil {
			continue
		}
		if !ok || p.Result.RelChangePc < worst.Result.RelChangePc {
			worst, ok = p, true
		}
	}
	return worst, ok
}
