package core

import (
	"fmt"

	"snnfi/internal/encoding"
	"snnfi/internal/mnist"
	"snnfi/internal/snn"
	"snnfi/internal/xfer"
)

// Experiment fixes the data, network configuration and random seeds for
// a campaign, so every attack configuration trains an identical network
// on identical spike trains and differs only in the injected fault —
// the paper's protocol (train under attack, report accuracy relative to
// the attack-free baseline).
type Experiment struct {
	Images  []mnist.Image
	Cfg     snn.DiehlCookConfig
	EncSeed int64

	baseline float64
	haveBase bool
}

// NewExperiment prepares a campaign over n digit images. dataDir may
// point at a real MNIST directory; the synthetic corpus is used
// otherwise (see mnist.Load).
func NewExperiment(dataDir string, n int, cfg snn.DiehlCookConfig) (*Experiment, error) {
	images, err := mnist.Load(dataDir, n, 7)
	if err != nil {
		return nil, err
	}
	return &Experiment{Images: images, Cfg: cfg, EncSeed: 42}, nil
}

// Result is one attack configuration's outcome.
type Result struct {
	Plan        *FaultPlan
	Accuracy    float64
	Baseline    float64
	RelChangePc float64 // 100·(acc−base)/base, the paper's reported metric
	TotalSpikes float64
}

// Run trains a fresh network under the given plan (nil for the
// attack-free baseline) and scores it.
func (e *Experiment) Run(plan *FaultPlan) (*Result, error) {
	n, err := snn.NewDiehlCook(e.Cfg)
	if err != nil {
		return nil, err
	}
	if plan != nil {
		revert, err := plan.Apply(n)
		if err != nil {
			return nil, err
		}
		defer revert()
	}
	enc := encoding.NewPoissonEncoder(e.EncSeed)
	res, err := snn.Train(n, e.Images, enc)
	if err != nil {
		return nil, err
	}
	base, err := e.Baseline()
	if err != nil {
		return nil, err
	}
	r := &Result{
		Plan:        plan,
		Accuracy:    res.Accuracy,
		Baseline:    base,
		TotalSpikes: res.TotalSpikes,
	}
	if base > 0 {
		r.RelChangePc = 100 * (res.Accuracy - base) / base
	}
	return r, nil
}

// Baseline returns (computing once) the attack-free accuracy.
func (e *Experiment) Baseline() (float64, error) {
	if e.haveBase {
		return e.baseline, nil
	}
	n, err := snn.NewDiehlCook(e.Cfg)
	if err != nil {
		return 0, err
	}
	enc := encoding.NewPoissonEncoder(e.EncSeed)
	res, err := snn.Train(n, e.Images, enc)
	if err != nil {
		return 0, err
	}
	e.baseline = res.Accuracy
	e.haveBase = true
	return e.baseline, nil
}

// SweepPoint is one cell of a campaign sweep.
type SweepPoint struct {
	ScalePc    float64 // threshold/theta change in percent (−20 … +20)
	FractionPc float64 // portion of the layer affected in percent
	VDD        float64 // supply voltage (Attack 5 sweeps)
	Result     *Result
}

// Attack1Sweep reproduces Fig. 7b: classification accuracy versus theta
// (per-input-spike membrane charge) change.
func (e *Experiment) Attack1Sweep(changesPc []float64) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(changesPc))
	for _, c := range changesPc {
		res, err := e.Run(NewAttack1(1 + c/100))
		if err != nil {
			return nil, fmt.Errorf("core: attack 1 at %+.0f%%: %w", c, err)
		}
		out = append(out, SweepPoint{ScalePc: c, FractionPc: 100, Result: res})
	}
	return out, nil
}

// LayerGrid reproduces Figs. 8a/8b: accuracy over threshold change ×
// fraction-of-layer for one layer (Excitatory → Attack 2, Inhibitory →
// Attack 3).
func (e *Experiment) LayerGrid(layer Layer, changesPc, fractionsPc []float64) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, c := range changesPc {
		for _, f := range fractionsPc {
			var plan *FaultPlan
			switch layer {
			case Excitatory:
				plan = NewAttack2(1+c/100, f/100, 99)
			case Inhibitory:
				plan = NewAttack3(1+c/100, f/100, 99)
			default:
				return nil, fmt.Errorf("core: layer grid needs a neuron layer, got %v", layer)
			}
			res, err := e.Run(plan)
			if err != nil {
				return nil, fmt.Errorf("core: %v grid at %+.0f%%/%.0f%%: %w", layer, c, f, err)
			}
			out = append(out, SweepPoint{ScalePc: c, FractionPc: f, Result: res})
		}
	}
	return out, nil
}

// Attack4Sweep reproduces Fig. 8c: accuracy versus threshold change
// with both layers fully affected.
func (e *Experiment) Attack4Sweep(changesPc []float64) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(changesPc))
	for _, c := range changesPc {
		res, err := e.Run(NewAttack4(1 + c/100))
		if err != nil {
			return nil, fmt.Errorf("core: attack 4 at %+.0f%%: %w", c, err)
		}
		out = append(out, SweepPoint{ScalePc: c, FractionPc: 100, Result: res})
	}
	return out, nil
}

// Attack5Sweep reproduces Fig. 9a: accuracy versus VDD for the whole
// shared-supply system.
func (e *Experiment) Attack5Sweep(vdds []float64, kind xfer.NeuronKind) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(vdds))
	for _, v := range vdds {
		res, err := e.Run(NewAttack5(v, kind))
		if err != nil {
			return nil, fmt.Errorf("core: attack 5 at VDD=%.2f: %w", v, err)
		}
		out = append(out, SweepPoint{VDD: v, FractionPc: 100, Result: res})
	}
	return out, nil
}

// WorstCase returns the sweep point with the most negative relative
// accuracy change.
func WorstCase(points []SweepPoint) SweepPoint {
	worst := points[0]
	for _, p := range points[1:] {
		if p.Result.RelChangePc < worst.Result.RelChangePc {
			worst = p
		}
	}
	return worst
}
