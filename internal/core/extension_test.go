package core

import (
	"testing"
)

func TestWeightFaultSpecValidation(t *testing.T) {
	if err := (WeightFaultSpec{Scale: 0, Fraction: 0.5}).Validate(); err == nil {
		t.Fatal("zero scale must fail")
	}
	if err := (WeightFaultSpec{Scale: 0.5, Fraction: 2}).Validate(); err == nil {
		t.Fatal("fraction > 1 must fail")
	}
	if err := (WeightFaultSpec{Scale: 0.5, Fraction: 0.5, EveryNImages: -1}).Validate(); err == nil {
		t.Fatal("negative cadence must fail")
	}
	if err := (WeightFaultSpec{Scale: 0.7, Fraction: 0.3, EveryNImages: 10}).Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestLearningRateFaultSpecValidation(t *testing.T) {
	if err := (LearningRateFaultSpec{Scale: -1}).Validate(); err == nil {
		t.Fatal("negative scale must fail")
	}
	if err := (LearningRateFaultSpec{Scale: 0}).Validate(); err != nil {
		t.Fatal("zero scale (frozen learning) is a valid fault")
	}
}

func TestWeightFaultOneShotMild(t *testing.T) {
	// A one-shot pre-training drift is absorbed by STDP + normalization:
	// the fault hits random initial weights that learning overwrites.
	e := testExperiment(t, 200)
	res, err := e.RunWeightFault(WeightFaultSpec{Scale: 0.7, Fraction: 0.3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.RelChangePc < -35 {
		t.Fatalf("one-shot weight drift degraded %+.1f%%, expected mild", res.RelChangePc)
	}
}

func TestWeightFaultPersistentWorseThanOneShot(t *testing.T) {
	e := testExperiment(t, 200)
	once, err := e.RunWeightFault(WeightFaultSpec{Scale: 0.5, Fraction: 0.5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	persistent, err := e.RunWeightFault(WeightFaultSpec{Scale: 0.5, Fraction: 0.5, EveryNImages: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Re-applied drift keeps destroying what STDP learns; it must not do
	// better than the one-shot upset (generous margin for seed noise).
	if persistent.RelChangePc > once.RelChangePc+10 {
		t.Fatalf("persistent drift (%+.1f%%) should not beat one-shot (%+.1f%%)",
			persistent.RelChangePc, once.RelChangePc)
	}
}

func TestLearningRateFreezeDegrades(t *testing.T) {
	// Freezing STDP entirely leaves random weights: accuracy must fall
	// well below the trained baseline.
	e := testExperiment(t, 200)
	res, err := e.RunLearningRateFault(LearningRateFaultSpec{Scale: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.RelChangePc > -20 {
		t.Fatalf("frozen learning degraded only %+.1f%%, expected substantial loss", res.RelChangePc)
	}
}

func TestLearningRateNominalIsNoOp(t *testing.T) {
	e := testExperiment(t, 200)
	res, err := e.RunLearningRateFault(LearningRateFaultSpec{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.RelChangePc != 0 {
		t.Fatalf("scale 1 must reproduce the baseline exactly, got %+.2f%%", res.RelChangePc)
	}
}
