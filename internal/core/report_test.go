package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"snnfi/internal/runner"
	"snnfi/internal/snn"
)

// reportScenario is a small but real campaign: a theta sweep whose
// cells train 40+40-neuron networks on 60 synthetic images.
func reportScenario() *Scenario {
	return &Scenario{
		Name:   "report-smoke",
		Attack: Attack1,
		Axes:   Axes{ChangesPc: []float64{-10, 0, 10}},
	}
}

func reportExperiment(t *testing.T) *Experiment {
	t.Helper()
	cfg := snn.DefaultConfig()
	cfg.NExc, cfg.NInh = 40, 40
	cfg.Steps = 150
	e, err := NewExperiment("", 60, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestTelemetryDoesNotChangeOutput is the observation-free contract:
// the same scenario streamed to a JSONL sink produces byte-identical
// records with full telemetry attached and with none.
func TestTelemetryDoesNotChangeOutput(t *testing.T) {
	run := func(telemetry bool) []byte {
		e := reportExperiment(t)
		var buf bytes.Buffer
		sink := runner.NewJSONLSink(&buf)
		e.Sinks = []runner.Sink{sink}
		if telemetry {
			mon := NewMonitor(e, "report-smoke")
			if mem, ok := e.Cache.(*runner.MemoryCache[*Result]); ok {
				mem.Instrument(mon.Registry(), "cache.fast")
			}
		}
		if _, err := e.RunScenario(reportScenario()); err != nil {
			t.Fatal(err)
		}
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	plain := run(false)
	observed := run(true)
	if len(plain) == 0 {
		t.Fatal("scenario streamed no records")
	}
	if !bytes.Equal(plain, observed) {
		t.Fatalf("telemetry changed the streamed bytes:\nplain:    %q\nobserved: %q", plain, observed)
	}
}

// TestMonitorReportReconciles runs a campaign twice against one shared
// disk cache and checks the report's books: cell partitions sum, the
// warm rerun is all hits, phase time fits inside workers × wall, and
// the report's cache counters are the disk cache's own Stats.
func TestMonitorReportReconciles(t *testing.T) {
	dir := t.TempDir()
	run := func() (*Report, *runner.DiskCache[*Result]) {
		e := reportExperiment(t)
		disk, err := runner.NewDiskCache[*Result](dir)
		if err != nil {
			t.Fatal(err)
		}
		fast := runner.NewMemoryCache[*Result]()
		e.Cache = runner.NewTiered[*Result](fast, disk)
		mon := NewMonitor(e, "report-smoke")
		disk.Instrument(mon.Registry(), "cache.slow")
		fast.Instrument(mon.Registry(), "cache.fast")
		if _, err := e.RunScenario(reportScenario()); err != nil {
			t.Fatal(err)
		}
		return mon.Report(), disk
	}

	cold, disk := run()
	if cold.Schema != ReportSchema || cold.Protocol != snn.ProtocolVersion {
		t.Fatalf("report identity = %q/%q", cold.Schema, cold.Protocol)
	}
	if cold.Cells.Total != 3 {
		t.Fatalf("cold cells total = %d, want 3", cold.Cells.Total)
	}
	if cold.Cells.Cached+cold.Cells.Trained != cold.Cells.Total {
		t.Fatalf("cell partition does not sum: %+v", cold.Cells)
	}
	if cold.NetworksTrained < int64(cold.Cells.Trained) {
		t.Fatalf("networks trained %d < cells trained %d", cold.NetworksTrained, cold.Cells.Trained)
	}
	// Phase durations must fit inside the campaign's worker budget:
	// every span ran on one of Workers goroutines within WallSeconds.
	// (1.25 covers scheduling noise on loaded CI machines.)
	budget := cold.WallSeconds * float64(cold.Workers) * 1.25
	var phases float64
	for name, h := range cold.Telemetry.Histograms {
		if strings.HasPrefix(name, "snn.") && strings.HasSuffix(name, ".wait") {
			continue // queue time is waiting, not work
		}
		if name == "snn.stdp" || name == "snn.assign" {
			phases += h.TotalMs / 1000
		}
	}
	if phases == 0 {
		t.Fatal("no phase time recorded — spans not wired")
	}
	if phases > budget {
		t.Fatalf("phase time %.3fs exceeds budget %.3fs (wall %.3fs × %d workers)",
			phases, budget, cold.WallSeconds, cold.Workers)
	}
	// Report counters are the disk cache's own atomics.
	h, m := disk.Stats()
	if got := cold.Telemetry.Counters["cache.slow.hits"]; got != h {
		t.Fatalf("report slow hits %d != Stats %d", got, h)
	}
	if got := cold.Telemetry.Counters["cache.slow.misses"]; got != m {
		t.Fatalf("report slow misses %d != Stats %d", got, m)
	}

	warm, _ := run()
	if warm.Cells.Trained != 0 {
		t.Fatalf("warm rerun trained %d cells, want 0 (disk cache)", warm.Cells.Trained)
	}
	if warm.HitRate != 1.0 {
		t.Fatalf("warm hit rate = %g, want 1.0", warm.HitRate)
	}
	if warm.NetworksTrained != 0 {
		t.Fatalf("warm rerun trained %d networks, want 0 (baseline disk-cached too)", warm.NetworksTrained)
	}

	// The report round-trips through its JSON schema.
	data, err := json.Marshal(cold)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Cells != cold.Cells || back.Schema != cold.Schema {
		t.Fatalf("report did not round-trip: %+v vs %+v", back.Cells, cold.Cells)
	}
}

// TestMonitorPreservesExistingProgress: attaching a monitor must chain,
// not replace, the experiment's own observer.
func TestMonitorPreservesExistingProgress(t *testing.T) {
	e := reportExperiment(t)
	seen := 0
	e.OnProgress = func(runner.Progress) { seen++ }
	mon := NewMonitor(e, "chain")
	if _, err := e.RunScenario(reportScenario()); err != nil {
		t.Fatal(err)
	}
	if seen != 3 {
		t.Fatalf("original observer saw %d events, want 3", seen)
	}
	if r := mon.Report(); r.Cells.Total != 3 {
		t.Fatalf("monitor saw %d cells, want 3", r.Cells.Total)
	}
}
