package core

import (
	"fmt"

	"snnfi/internal/xfer"
)

// AttackID enumerates the paper's five attacks (§IV).
type AttackID int

// The paper's attack taxonomy.
const (
	// Attack1 corrupts only the input current drivers (white box,
	// §IV-B): the per-spike membrane charge scales with the driver's
	// VDD-dependent output amplitude.
	Attack1 AttackID = iota + 1
	// Attack2 corrupts the excitatory layer's membrane thresholds
	// (white box, §IV-C), over a fraction of the layer.
	Attack2
	// Attack3 corrupts the inhibitory layer's membrane thresholds
	// (white box, §IV-C), over a fraction of the layer.
	Attack3
	// Attack4 corrupts both neuron layers' thresholds at full coverage
	// (white box, §IV-C).
	Attack4
	// Attack5 is the black-box attack (§IV-D): one shared supply feeds
	// drivers and both neuron layers, so a VDD excursion corrupts spike
	// amplitude and both layers' thresholds simultaneously.
	Attack5
)

func (a AttackID) String() string {
	if a >= Attack1 && a <= Attack5 {
		return fmt.Sprintf("attack-%d", int(a))
	}
	return fmt.Sprintf("attack(%d)", int(a))
}

// AttackByNumber maps the paper's attack numbering (1–5), as written
// in declarative suite files and CLI flags, onto an AttackID.
func AttackByNumber(n int) (AttackID, error) {
	if n < int(Attack1) || n > int(Attack5) {
		return 0, fmt.Errorf("core: unknown attack %d (want 1-5)", n)
	}
	return AttackID(n), nil
}

// WhiteBox reports whether the attack needs layout/placement knowledge
// (everything except the shared-supply Attack 5... which the paper
// still counts as black box because only the external power port is
// touched).
func (a AttackID) WhiteBox() bool { return a != Attack5 }

// NewAttack1 builds the driver-corruption plan: thetaScale multiplies
// the membrane voltage change per input spike (paper sweeps ±20%).
func NewAttack1(thetaScale float64) *FaultPlan {
	return &FaultPlan{
		Name: "attack-1-driver-theta",
		Faults: []FaultSpec{
			{Layer: Drivers, Scale: thetaScale, Fraction: 1},
		},
	}
}

// NewAttack2 builds the excitatory-threshold plan: threshScale in the
// paper's convention (0.8 = "−20%"), fraction = portion of the EL under
// the glitch.
func NewAttack2(threshScale, fraction float64, seed int64) *FaultPlan {
	return &FaultPlan{
		Name: "attack-2-excitatory-threshold",
		Faults: []FaultSpec{
			{Layer: Excitatory, Scale: threshScale, Fraction: fraction, Seed: seed},
		},
	}
}

// NewAttack3 builds the inhibitory-threshold plan.
func NewAttack3(threshScale, fraction float64, seed int64) *FaultPlan {
	return &FaultPlan{
		Name: "attack-3-inhibitory-threshold",
		Faults: []FaultSpec{
			{Layer: Inhibitory, Scale: threshScale, Fraction: fraction, Seed: seed},
		},
	}
}

// NewAttack4 builds the both-layers plan at 100% coverage.
func NewAttack4(threshScale float64) *FaultPlan {
	return &FaultPlan{
		Name: "attack-4-both-layers-threshold",
		Faults: []FaultSpec{
			{Layer: Excitatory, Scale: threshScale, Fraction: 1},
			{Layer: Inhibitory, Scale: threshScale, Fraction: 1},
		},
	}
}

// NewAttack5 builds the black-box shared-supply plan for a given VDD:
// the driver amplitude ratio and the neuron threshold ratio both come
// from the circuit characterization (Figs. 5b and 6a via xfer). kind
// selects which neuron circuit's threshold curve to use.
func NewAttack5(vdd float64, kind xfer.NeuronKind) *FaultPlan {
	ampRatio := xfer.DriverAmplitudeRatio().At(vdd)
	thrRatio := xfer.ThresholdRatio(kind).At(vdd)
	return &FaultPlan{
		Name: fmt.Sprintf("attack-5-vdd-%.2f", vdd),
		Faults: []FaultSpec{
			{Layer: Drivers, Scale: ampRatio, Fraction: 1},
			{Layer: Excitatory, Scale: thrRatio, Fraction: 1},
			{Layer: Inhibitory, Scale: thrRatio, Fraction: 1},
		},
	}
}

// NewAttack5Variation builds the shared-supply plan for one process
// corner: the neuron threshold ratio is sampled from the mismatch
// band at the given quantile (relSigmaPc = 100·σ/μ from the
// Monte-Carlo threshold characterization), so a p5/p50/p95 triple of
// plans brackets where the attack lands across fabricated instances.
// The driver amplitude stays nominal — its mirror ratio is set by
// device matching inside one branch pair, while the threshold depends
// on the absolute Vth of the first inverter, which is what mismatch
// moves. The p50 plan equals NewAttack5 except in name; names carry
// the quantile so variation cells never alias the single-corner sweep.
func NewAttack5Variation(vdd float64, kind xfer.NeuronKind, quantilePc, relSigmaPc float64) *FaultPlan {
	v := xfer.Variation{RelSigma: relSigmaPc / 100}
	ampRatio := xfer.DriverAmplitudeRatio().At(vdd)
	thrRatio := v.RatioAt(xfer.ThresholdRatio(kind), vdd, quantilePc)
	return &FaultPlan{
		Name: fmt.Sprintf("attack-5-vdd-%.2f-p%g", vdd, quantilePc),
		Faults: []FaultSpec{
			{Layer: Drivers, Scale: ampRatio, Fraction: 1},
			{Layer: Excitatory, Scale: thrRatio, Fraction: 1},
			{Layer: Inhibitory, Scale: thrRatio, Fraction: 1},
		},
	}
}
