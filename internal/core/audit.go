package core

import (
	"encoding/json"
	"io"
)

// Campaign manifest audit: given a scenario and the set of keys a
// result cache holds (runner.DiskCache.Manifest or the HTTP store's
// manifest), report which cells are already computed and which a
// resume would retrain — without training anything. cmd/snn-attack
// surfaces this as -audit (human table) and -audit-json (the
// machine-readable form the fabric's shard assignment consumes).

// AuditSchema names the -audit-json layout. Consumers (cmd/snn-worker,
// fabric tooling, scripts) match on it; bump it when a field changes
// meaning.
const AuditSchema = "snnfi-audit-v1"

// CellStatus is one compiled cell's cache standing.
type CellStatus struct {
	Desc    string `json:"desc"` // human cell description (compile order)
	Key     string `json:"key"`  // content address the cache is probed with
	Present bool   `json:"present"`
}

// ScenarioAudit summarizes a scenario's resume status against a cache.
type ScenarioAudit struct {
	Name    string       `json:"scenario"`
	Cells   []CellStatus `json:"cells"` // baseline first, then compile order
	Present int          `json:"present"`
	Missing int          `json:"missing"`
}

// Complete reports whether a resume would retrain nothing.
func (a *ScenarioAudit) Complete() bool { return a.Missing == 0 }

// AuditScenario compiles the scenario and checks every cell's content
// address — plus the shared attack-free baseline's — against held,
// typically a set built from runner.DiskCache.Manifest. Nothing is
// trained or loaded; the audit is pure key arithmetic.
func (e *Experiment) AuditScenario(s *Scenario, held func(key string) bool) (*ScenarioAudit, error) {
	cells, meta, err := s.compile()
	if err != nil {
		return nil, err
	}
	audit := &ScenarioAudit{
		Name:  meta.name,
		Cells: make([]CellStatus, 0, len(cells)+1),
	}
	add := func(desc, key string) {
		st := CellStatus{Desc: desc, Key: key, Present: held(key)}
		if st.Present {
			audit.Present++
		} else {
			audit.Missing++
		}
		audit.Cells = append(audit.Cells, st)
	}
	add("baseline (attack-free)", e.planKey(nil))
	for _, c := range cells {
		add(c.desc, c.key(e))
	}
	return audit, nil
}

// WriteJSON renders the audit in the -audit-json wire format: the
// schema name, then the cells in compile order (baseline first) with
// their content addresses and standing. Keys appear exactly as the
// cache is probed with them, so the output is directly usable as the
// fabric's shard-assignment input — a worker executes the missing
// keys assigned to it and nothing else. The rendering is
// deterministic: same audit, same bytes.
func (a *ScenarioAudit) WriteJSON(w io.Writer) error {
	type auditJSON struct {
		Schema string `json:"schema"`
		*ScenarioAudit
		Complete bool `json:"complete"`
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(auditJSON{Schema: AuditSchema, ScenarioAudit: a, Complete: a.Complete()})
}

// HeldSet adapts a key list (runner.DiskCache.Manifest output) into
// the membership predicate AuditScenario consumes.
func HeldSet(keys []string) func(string) bool {
	set := make(map[string]bool, len(keys))
	for _, k := range keys {
		set[k] = true
	}
	return func(k string) bool { return set[k] }
}
