package core

// Campaign manifest audit: given a scenario and the set of keys a
// result cache holds (runner.DiskCache.Manifest), report which cells
// are already computed and which a resume would retrain — without
// training anything. cmd/snn-attack surfaces this as -audit.

// CellStatus is one compiled cell's cache standing.
type CellStatus struct {
	Desc    string // human cell description (compile order)
	Key     string // content address the cache is probed with
	Present bool
}

// ScenarioAudit summarizes a scenario's resume status against a cache.
type ScenarioAudit struct {
	Name    string
	Cells   []CellStatus // baseline first, then compile order
	Present int
	Missing int
}

// Complete reports whether a resume would retrain nothing.
func (a *ScenarioAudit) Complete() bool { return a.Missing == 0 }

// AuditScenario compiles the scenario and checks every cell's content
// address — plus the shared attack-free baseline's — against held,
// typically a set built from runner.DiskCache.Manifest. Nothing is
// trained or loaded; the audit is pure key arithmetic.
func (e *Experiment) AuditScenario(s *Scenario, held func(key string) bool) (*ScenarioAudit, error) {
	cells, meta, err := s.compile()
	if err != nil {
		return nil, err
	}
	audit := &ScenarioAudit{
		Name:  meta.name,
		Cells: make([]CellStatus, 0, len(cells)+1),
	}
	add := func(desc, key string) {
		st := CellStatus{Desc: desc, Key: key, Present: held(key)}
		if st.Present {
			audit.Present++
		} else {
			audit.Missing++
		}
		audit.Cells = append(audit.Cells, st)
	}
	add("baseline (attack-free)", e.planKey(nil))
	for _, c := range cells {
		add(c.desc, c.key(e))
	}
	return audit, nil
}

// HeldSet adapts a key list (runner.DiskCache.Manifest output) into
// the membership predicate AuditScenario consumes.
func HeldSet(keys []string) func(string) bool {
	set := make(map[string]bool, len(keys))
	for _, k := range keys {
		set[k] = true
	}
	return func(k string) bool { return set[k] }
}
