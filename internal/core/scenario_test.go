package core

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"regexp"
	"strings"
	"testing"

	"snnfi/internal/runner"
	"snnfi/internal/snn"
)

// attenuator is a test Hardening: it shrinks every fault's excursion
// around nominal by a residual factor, like the paper's parameter
// defenses do.
type attenuator struct {
	name     string
	residual float64
}

func (h attenuator) Name() string { return h.name }

func (h attenuator) Harden(p *FaultPlan) *FaultPlan {
	out := &FaultPlan{Name: p.Name + "+" + h.name}
	out.Faults = append([]FaultSpec(nil), p.Faults...)
	for i := range out.Faults {
		out.Faults[i].Scale = 1 + (out.Faults[i].Scale-1)*h.residual
	}
	return out
}

// bigExcursionJudge is a test CellJudge: it flags cells whose scale
// excursion is at least 15%.
type bigExcursionJudge struct{}

func (bigExcursionJudge) Judge(p SweepPoint, plan *FaultPlan) bool {
	return p.ScalePc >= 15 || p.ScalePc <= -15
}

func TestScenarioValidate(t *testing.T) {
	cases := []struct {
		name string
		s    Scenario
	}{
		{"empty", Scenario{}},
		{"attack and plans", Scenario{Attack: Attack1, Plans: []*FaultPlan{nil}, Axes: Axes{ChangesPc: []float64{1}}}},
		{"attack1 without changes", Scenario{Attack: Attack1}},
		{"attack5 without vdds", Scenario{Attack: Attack5}},
		{"unknown attack", Scenario{Attack: AttackID(9), Axes: Axes{ChangesPc: []float64{1}}}},
		{"nil defense", Scenario{Attack: Attack1, Axes: Axes{ChangesPc: []float64{1}}, Defenses: []Hardening{nil}}},
	}
	for _, c := range cases {
		if err := c.s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid scenario", c.name)
		}
	}
	ok := Scenario{Attack: Attack2, Axes: Axes{ChangesPc: []float64{-20}}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
}

// TestScenarioCompileDeterministic: compiling the same scenario twice
// yields the same cells — coordinates, plans, descriptions, content
// addresses — in the same order. This purity is what makes campaign
// output independent of worker count.
func TestScenarioCompileDeterministic(t *testing.T) {
	e := tinyExperiment(t, 10)
	s := &Scenario{
		Attack:   Attack3,
		Axes:     Axes{ChangesPc: []float64{-20, 10}, FractionsPc: []float64{50, 100}},
		Defenses: []Hardening{attenuator{"atten-a", 0.1}, attenuator{"atten-b", 0.5}},
		Detector: bigExcursionJudge{},
	}
	a, metaA, err := s.compile()
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := s.compile()
	if err != nil {
		t.Fatal(err)
	}
	if !metaA.matrix || !metaA.coords {
		t.Fatalf("matrix scenario compiled to meta %+v", metaA)
	}
	wantCells := 2 * 2 * 3 // coords × (undefended + 2 defenses)
	if len(a) != wantCells || len(b) != wantCells {
		t.Fatalf("compiled %d/%d cells, want %d", len(a), len(b), wantCells)
	}
	seen := map[string]bool{}
	for i := range a {
		if a[i].desc != b[i].desc || a[i].key(e) != b[i].key(e) ||
			a[i].point != b[i].point || a[i].plan.Name != b[i].plan.Name {
			t.Fatalf("cell %d differs between compilations: %+v vs %+v", i, a[i], b[i])
		}
		if seen[a[i].key(e)] {
			t.Fatalf("cell %d (%s) reuses a content address", i, a[i].desc)
		}
		seen[a[i].key(e)] = true
	}
	keys, err := e.ScenarioKeys(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != wantCells {
		t.Fatalf("ScenarioKeys returned %d keys, want %d", len(keys), wantCells)
	}
	for i, k := range keys {
		if k != a[i].key(e) {
			t.Fatalf("ScenarioKeys[%d] disagrees with compile", i)
		}
	}
}

// TestScenarioMatrixDeterministicAcrossWorkers runs a defended,
// detector-judged matrix at several pool widths: SweepPoints and the
// streamed JSONL must be byte-identical, with the defense and detected
// fields populated.
func TestScenarioMatrixDeterministicAcrossWorkers(t *testing.T) {
	e := tinyExperiment(t, 60)
	s := &Scenario{
		Name:     "matrix",
		Attack:   Attack3,
		Axes:     Axes{ChangesPc: []float64{-20, 10}},
		Defenses: []Hardening{attenuator{"atten", 0.2}},
		Detector: bigExcursionJudge{},
	}
	var ref []SweepPoint
	var refJSONL []byte
	for _, workers := range []int{1, 4} {
		e.Cache = runner.NewMemoryCache[*Result]()
		e.Workers = workers
		var buf bytes.Buffer
		sink := runner.NewJSONLSink(&buf)
		e.Sinks = []runner.Sink{sink}
		pts, err := e.RunScenario(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
		if workers == 1 {
			ref, refJSONL = pts, buf.Bytes()
			continue
		}
		samePoints(t, workers, pts, ref)
		if !bytes.Equal(buf.Bytes(), refJSONL) {
			t.Fatalf("workers=%d: streamed JSONL differs from serial:\n%s\nvs\n%s",
				workers, buf.Bytes(), refJSONL)
		}
	}
	// The matrix shape: per coordinate, undefended then defended.
	if len(ref) != 4 {
		t.Fatalf("%d points, want 4", len(ref))
	}
	if ref[0].Defense != "" || ref[1].Defense != "atten" || ref[2].Defense != "" || ref[3].Defense != "atten" {
		t.Fatalf("defense columns wrong: %+v", ref)
	}
	if !ref[0].Detected || !ref[1].Detected || ref[2].Detected || ref[3].Detected {
		t.Fatalf("detector verdicts wrong (want -20%% flagged, +10%% silent): %+v", ref)
	}
	if !bytes.Contains(refJSONL, []byte(`"defense":"atten"`)) ||
		!bytes.Contains(refJSONL, []byte(`"detected":true`)) ||
		!bytes.Contains(refJSONL, []byte(`"detected":false`)) {
		t.Fatalf("records lack populated defense/detected fields:\n%s", refJSONL)
	}
	// The defended replay really is the attenuated plan, not a copy of
	// the undefended cell.
	if ref[1].Result.Plan.Name != ref[0].Result.Plan.Name+"+atten" {
		t.Fatalf("defended plan %q does not derive from %q", ref[1].Result.Plan.Name, ref[0].Result.Plan.Name)
	}
}

// TestAttack1SweepGoldenRecords pins the pre-scenario record schema of
// the compatibility sweeps: same field names, same order, no matrix
// fields, values matching the returned points.
func TestAttack1SweepGoldenRecords(t *testing.T) {
	e := tinyExperiment(t, 40)
	var buf bytes.Buffer
	sink := runner.NewJSONLSink(&buf)
	e.Sinks = []runner.Sink{sink}
	pts, err := e.Attack1Sweep([]float64{-20, 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(pts) {
		t.Fatalf("%d records for %d points", len(lines), len(pts))
	}
	wantFields := []string{"sweep", "plan", "scale_pc", "fraction_pc", "vdd_v",
		"accuracy", "baseline", "rel_change_pc", "total_spikes"}
	fieldRe := regexp.MustCompile(`"([a-z_]+)":`)
	for i, line := range lines {
		var names []string
		for _, m := range fieldRe.FindAllStringSubmatch(line, -1) {
			names = append(names, m[1])
		}
		if strings.Join(names, ",") != strings.Join(wantFields, ",") {
			t.Fatalf("record %d fields %v, want legacy schema %v", i, names, wantFields)
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatal(err)
		}
		if rec["sweep"] != "attack1-theta" || rec["plan"] != pts[i].Result.Plan.Name {
			t.Fatalf("record %d mislabeled: %s", i, line)
		}
		if rec["accuracy"] != pts[i].Result.Accuracy || rec["scale_pc"] != pts[i].ScalePc {
			t.Fatalf("record %d values do not match point %+v: %s", i, pts[i], line)
		}
	}
}

// TestLayerGridEquivalentToDirectRuns: the scenario-compiled grid is
// the same campaign as direct Run calls over hand-built plans — same
// results AND same content addresses (the direct runs are all served
// from the sweep's cache, retraining nothing).
func TestLayerGridEquivalentToDirectRuns(t *testing.T) {
	e := tinyExperiment(t, 40)
	changes := []float64{-20, 10}
	fractions := []float64{50, 100}
	pts, err := e.LayerGrid(Excitatory, changes, fractions)
	if err != nil {
		t.Fatal(err)
	}
	trained := e.TrainCount()
	i := 0
	for _, c := range changes {
		for _, f := range fractions {
			direct, err := e.Run(NewAttack2(1+c/100, f/100, gridMaskSeed))
			if err != nil {
				t.Fatal(err)
			}
			p := pts[i]
			if p.ScalePc != c || p.FractionPc != f {
				t.Fatalf("cell %d coords (%g,%g), want (%g,%g)", i, p.ScalePc, p.FractionPc, c, f)
			}
			if direct.Accuracy != p.Result.Accuracy || direct.RelChangePc != p.Result.RelChangePc {
				t.Fatalf("cell %d: direct run %+v != grid %+v", i, *direct, *p.Result)
			}
			i++
		}
	}
	if e.TrainCount() != trained {
		t.Fatalf("direct replays retrained %d networks: the scenario compiler is not producing the canonical plans", e.TrainCount()-trained)
	}
}

// tieredExperiment gives an experiment a disk tier over dir.
func tieredExperiment(t *testing.T, nImages int, dir string) (*Experiment, *runner.DiskCache[*Result]) {
	t.Helper()
	e := tinyExperiment(t, nImages)
	disk, err := runner.NewDiskCache[*Result](dir)
	if err != nil {
		t.Fatal(err)
	}
	e.Cache = runner.NewTiered[*Result](e.Cache, disk)
	return e, disk
}

// TestColdProcessResume is the resumability contract: a second
// experiment (fresh memory cache — a new process) over a warm cache
// directory retrains only the cells the first run never computed, and
// a third run of the full campaign trains zero networks.
func TestColdProcessResume(t *testing.T) {
	dir := t.TempDir()
	e1, disk1 := tieredExperiment(t, 40, dir)
	e1.Workers = 4
	first, err := e1.LayerGrid(Inhibitory, []float64{-20}, []float64{50, 100})
	if err != nil {
		t.Fatal(err)
	}
	if got := e1.TrainCount(); got != 3 { // 2 cells + baseline
		t.Fatalf("first process trained %d, want 3", got)
	}
	if err := disk1.Err(); err != nil {
		t.Fatal(err)
	}

	// Second process: a superset campaign. Only the new coordinate's
	// cells are missing from disk — the baseline and the first run's
	// cells must come back without training.
	e2, _ := tieredExperiment(t, 40, dir)
	e2.Workers = 4
	second, err := e2.LayerGrid(Inhibitory, []float64{-20, 10}, []float64{50, 100})
	if err != nil {
		t.Fatal(err)
	}
	if got := e2.TrainCount(); got != 2 {
		t.Fatalf("resumed process trained %d networks, want only the 2-cell delta", got)
	}
	samePoints(t, 4, second[:2], first)

	// Third process, identical campaign: everything is on disk.
	e3, _ := tieredExperiment(t, 40, dir)
	e3.Workers = 4
	third, err := e3.LayerGrid(Inhibitory, []float64{-20, 10}, []float64{50, 100})
	if err != nil {
		t.Fatal(err)
	}
	if got := e3.TrainCount(); got != 0 {
		t.Fatalf("fully-warm process trained %d networks, want 0", got)
	}
	samePoints(t, 4, third, second)
}

// TestExtensionFaultsPooledAndCached is the extension port's contract:
// weight and learning-rate faults are content-addressed campaign cells
// — repeated runs retrain zero networks (in-process and across a disk
// resume), they count toward TrainCount, and they stream to sinks.
func TestExtensionFaultsPooledAndCached(t *testing.T) {
	dir := t.TempDir()
	e, _ := tieredExperiment(t, 40, dir)
	var buf bytes.Buffer
	sink := runner.NewJSONLSink(&buf)
	e.Sinks = []runner.Sink{sink}

	wspec := WeightFaultSpec{Scale: 0.7, Fraction: 0.5, EveryNImages: 10, Seed: 11}
	lspec := LearningRateFaultSpec{Scale: 0.5}
	w1, err := e.RunWeightFault(wspec)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.TrainCount(); got != 2 { // baseline + fault cell
		t.Fatalf("weight fault accounted %d trains, want 2", got)
	}
	l1, err := e.RunLearningRateFault(lspec)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.TrainCount(); got != 3 {
		t.Fatalf("learning-rate fault accounted %d trains, want 3", got)
	}

	// Repeated extension runs retrain zero times.
	w2, err := e.RunWeightFault(wspec)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := e.RunLearningRateFault(lspec)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.TrainCount(); got != 3 {
		t.Fatalf("repeated extension runs retrained %d networks, want 0", got-3)
	}
	if w1.Accuracy != w2.Accuracy || l1.Accuracy != l2.Accuracy {
		t.Fatal("cached extension results differ from the originals")
	}

	// A distinct cadence is a distinct content address.
	if _, err := e.RunWeightFault(WeightFaultSpec{Scale: 0.7, Fraction: 0.5, EveryNImages: 20, Seed: 11}); err != nil {
		t.Fatal(err)
	}
	if got := e.TrainCount(); got != 4 {
		t.Fatalf("distinct cadence trained %d networks, want 1 more", got-3)
	}

	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"sweep":"ext-weight-fault"`) || !strings.Contains(out, `"sweep":"ext-learning-rate"`) {
		t.Fatalf("extension cells did not stream to sinks:\n%s", out)
	}

	// Cold-process resume covers extensions too.
	e2, _ := tieredExperiment(t, 40, dir)
	w3, err := e2.RunWeightFault(wspec)
	if err != nil {
		t.Fatal(err)
	}
	if got := e2.TrainCount(); got != 0 {
		t.Fatalf("warm-disk extension run trained %d networks, want 0", got)
	}
	if w3.Accuracy != w1.Accuracy || w3.RelChangePc != w1.RelChangePc {
		t.Fatal("disk-resumed extension result drifted")
	}
}

// TestWeightFaultHitsDistinctSynapses: the drift must hit exactly
// Fraction·total distinct synapses, never double-scaling one (the old
// rng.Intn sampling drew with replacement).
func TestWeightFaultHitsDistinctSynapses(t *testing.T) {
	cfg := snn.DefaultConfig()
	cfg.NExc, cfg.NInh = 16, 16
	n, err := snn.NewDiehlCook(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range n.W.Data {
		n.W.Data[i] = 1
	}
	spec := WeightFaultSpec{Scale: 0.5, Fraction: 0.25, Seed: 3}
	spec.apply(n, rand.New(rand.NewSource(spec.Seed)))

	total := len(n.W.Data)
	want := int(spec.Fraction*float64(total) + 0.5)
	hit := 0
	for _, w := range n.W.Data {
		switch w {
		case 1: // untouched
		case 0.5: // scaled exactly once
			hit++
		default:
			t.Fatalf("synapse scaled more than once: weight %g", w)
		}
	}
	if hit != want {
		t.Fatalf("drift hit %d synapses, want exactly %d of %d", hit, want, total)
	}
}

// TestAuditScenario: the campaign manifest audit reports exactly which
// cells (plus the shared baseline) a cache directory holds, without
// training anything — and flips to complete after the campaign runs.
func TestAuditScenario(t *testing.T) {
	dir := t.TempDir()
	e, disk := tieredExperiment(t, 40, dir)
	s := &Scenario{
		Attack: Attack3,
		Axes:   Axes{ChangesPc: []float64{-20, 10}},
	}

	manifest := func() func(string) bool {
		keys, err := disk.Manifest()
		if err != nil {
			t.Fatal(err)
		}
		return HeldSet(keys)
	}

	cold, err := e.AuditScenario(s, manifest())
	if err != nil {
		t.Fatal(err)
	}
	if got := e.TrainCount(); got != 0 {
		t.Fatalf("audit trained %d networks, want 0", got)
	}
	if cold.Complete() || cold.Present != 0 || cold.Missing != 3 { // baseline + 2 cells
		t.Fatalf("cold audit = %+v, want 3 missing", cold)
	}
	if cold.Cells[0].Desc != "baseline (attack-free)" {
		t.Fatalf("audit must lead with the baseline, got %q", cold.Cells[0].Desc)
	}

	// Run half the campaign: one coordinate.
	if _, err := e.RunScenario(&Scenario{Attack: Attack3, Axes: Axes{ChangesPc: []float64{-20}}}); err != nil {
		t.Fatal(err)
	}
	half, err := e.AuditScenario(s, manifest())
	if err != nil {
		t.Fatal(err)
	}
	if half.Present != 2 || half.Missing != 1 {
		t.Fatalf("half audit = %d present / %d missing, want 2/1", half.Present, half.Missing)
	}
	for _, c := range half.Cells {
		if c.Desc == "attack 3 at +10%" && c.Present {
			t.Fatal("unrun coordinate reported present")
		}
	}

	// Finish the campaign: audit flips to complete, still zero training.
	if _, err := e.RunScenario(s); err != nil {
		t.Fatal(err)
	}
	trained := e.TrainCount()
	full, err := e.AuditScenario(s, manifest())
	if err != nil {
		t.Fatal(err)
	}
	if !full.Complete() {
		t.Fatalf("full audit still missing %d cells", full.Missing)
	}
	if e.TrainCount() != trained {
		t.Fatal("audit trained networks")
	}
	// The audit keys are the very keys the campaign would probe.
	keys, err := e.ScenarioKeys(s)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if full.Cells[i+1].Key != k { // +1: audit leads with the baseline
			t.Fatalf("audit key %d disagrees with ScenarioKeys", i)
		}
	}
}
