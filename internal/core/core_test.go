package core

import (
	"math"
	"testing"
	"testing/quick"

	"snnfi/internal/snn"
	"snnfi/internal/xfer"
)

func smallNet(t *testing.T) *snn.DiehlCook {
	t.Helper()
	cfg := snn.DefaultConfig()
	cfg.NExc, cfg.NInh = 20, 20
	cfg.Steps = 100
	n, err := snn.NewDiehlCook(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestFaultSpecValidation(t *testing.T) {
	if err := (FaultSpec{Scale: 0, Fraction: 1}).Validate(); err == nil {
		t.Fatal("zero scale must fail")
	}
	if err := (FaultSpec{Scale: 1, Fraction: 1.5}).Validate(); err == nil {
		t.Fatal("fraction > 1 must fail")
	}
	if err := (FaultSpec{Scale: 0.8, Fraction: 0.5}).Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestApplyAndRevert(t *testing.T) {
	n := smallNet(t)
	plan := NewAttack4(0.8)
	revert, err := plan.Apply(n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range n.Exc.ThreshScale {
		if n.Exc.ThreshScale[i] != 0.8 || n.Inh.ThreshScale[i] != 0.8 {
			t.Fatal("Attack 4 must scale both layers fully")
		}
	}
	revert()
	for i := range n.Exc.ThreshScale {
		if n.Exc.ThreshScale[i] != 1 || n.Inh.ThreshScale[i] != 1 {
			t.Fatal("revert must restore nominal scales")
		}
	}
}

func TestFractionMasking(t *testing.T) {
	n := smallNet(t)
	plan := NewAttack3(0.8, 0.5, 123)
	revert, err := plan.Apply(n)
	if err != nil {
		t.Fatal(err)
	}
	defer revert()
	affected := 0
	for _, s := range n.Inh.ThreshScale {
		if s != 1 {
			affected++
		}
	}
	if affected != 10 {
		t.Fatalf("50%% of 20 neurons should be affected, got %d", affected)
	}
	// Excitatory layer untouched by Attack 3.
	for _, s := range n.Exc.ThreshScale {
		if s != 1 {
			t.Fatal("Attack 3 must not touch the excitatory layer")
		}
	}
}

func TestFractionMaskDeterministicInSeed(t *testing.T) {
	pick := func(seed int64) []float64 {
		n := smallNet(t)
		revert, err := NewAttack2(0.9, 0.3, seed).Apply(n)
		if err != nil {
			t.Fatal(err)
		}
		defer revert()
		return n.Exc.ThreshScale.Copy()
	}
	a, b := pick(5), pick(5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must pick the same neurons")
		}
	}
}

func TestAttack1TargetsDriversOnly(t *testing.T) {
	n := smallNet(t)
	revert, err := NewAttack1(1.32).Apply(n)
	if err != nil {
		t.Fatal(err)
	}
	defer revert()
	for _, g := range n.Exc.InputGain {
		if math.Abs(g-1.32) > 1e-12 {
			t.Fatalf("driver gain = %v, want 1.32", g)
		}
	}
	for i := range n.Exc.ThreshScale {
		if n.Exc.ThreshScale[i] != 1 || n.Inh.ThreshScale[i] != 1 {
			t.Fatal("Attack 1 must not touch thresholds")
		}
	}
}

func TestAttack5ComposesCircuitCurves(t *testing.T) {
	plan := NewAttack5(0.8, xfer.IAF)
	if len(plan.Faults) != 3 {
		t.Fatalf("Attack 5 should corrupt drivers + both layers, got %d faults", len(plan.Faults))
	}
	var driverScale, thrScale float64
	for _, f := range plan.Faults {
		switch f.Layer {
		case Drivers:
			driverScale = f.Scale
		case Inhibitory:
			thrScale = f.Scale
		}
	}
	if math.Abs(driverScale-0.68) > 1e-9 {
		t.Fatalf("driver scale at 0.8 V = %v, want 0.68 (Fig. 5b)", driverScale)
	}
	if math.Abs(thrScale-(1-0.1801)) > 1e-9 {
		t.Fatalf("threshold scale at 0.8 V = %v, want 0.8199 (Fig. 6a)", thrScale)
	}
}

func TestAttack5NominalIsNoOp(t *testing.T) {
	plan := NewAttack5(1.0, xfer.AxonHillock)
	for _, f := range plan.Faults {
		if math.Abs(f.Scale-1) > 1e-9 {
			t.Fatalf("nominal VDD must not corrupt anything: %v", f)
		}
	}
}

func TestAttackIDMetadata(t *testing.T) {
	if Attack5.WhiteBox() {
		t.Fatal("Attack 5 is the black-box attack")
	}
	for _, a := range []AttackID{Attack1, Attack2, Attack3, Attack4} {
		if !a.WhiteBox() {
			t.Fatalf("%v should be white box", a)
		}
	}
	if Attack3.String() != "attack-3" {
		t.Fatalf("String = %q", Attack3.String())
	}
}

func TestAffectedCountRounding(t *testing.T) {
	cases := []struct {
		n        int
		fraction float64
		want     int
	}{
		{100, 0, 0}, {100, 1, 100}, {100, 0.5, 50}, {100, 0.254, 25}, {3, 0.5, 2},
	}
	for _, c := range cases {
		if got := AffectedCount(c.n, c.fraction); got != c.want {
			t.Fatalf("AffectedCount(%d, %v) = %d, want %d", c.n, c.fraction, got, c.want)
		}
	}
}

func TestPlanValidateRejectsBadFault(t *testing.T) {
	plan := &FaultPlan{Name: "bad", Faults: []FaultSpec{{Scale: -1, Fraction: 1}}}
	if err := plan.Validate(); err == nil {
		t.Fatal("negative scale must fail")
	}
	n := smallNet(t)
	if _, err := plan.Apply(n); err == nil {
		t.Fatal("Apply must reject invalid plans")
	}
}

func testExperiment(t *testing.T, nImages int) *Experiment {
	t.Helper()
	cfg := snn.DefaultConfig()
	cfg.NExc, cfg.NInh = 40, 40
	cfg.Steps = 150
	e, err := NewExperiment("", nImages, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestExperimentBaselineLearns(t *testing.T) {
	e := testExperiment(t, 300)
	base, err := e.Baseline()
	if err != nil {
		t.Fatal(err)
	}
	if base < 0.3 {
		t.Fatalf("baseline accuracy %.3f too close to chance", base)
	}
	// Cached second call.
	again, err := e.Baseline()
	if err != nil || again != base {
		t.Fatal("Baseline must be cached and stable")
	}
}

func TestAttack3CollapsesAccuracy(t *testing.T) {
	// The paper's headline: −20% inhibitory threshold at full coverage
	// destroys learning (−84.52% in the paper).
	e := testExperiment(t, 300)
	res, err := e.Run(NewAttack3(0.8, 1.0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.RelChangePc > -50 {
		t.Fatalf("Attack 3 relative change %+.1f%%, want ≤ −50%%", res.RelChangePc)
	}
}

func TestAttack1IsMild(t *testing.T) {
	// Fig. 7b: theta corruption stays within a few percent of baseline.
	e := testExperiment(t, 300)
	for _, scale := range []float64{0.8, 1.2} {
		res, err := e.Run(NewAttack1(scale))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.RelChangePc) > 15 {
			t.Fatalf("Attack 1 at ×%v moved accuracy %+.1f%%, expected mild", scale, res.RelChangePc)
		}
	}
}

func TestInhibitoryWorseThanExcitatory(t *testing.T) {
	// The paper's layer-sensitivity ordering (Figs. 8a vs 8b).
	e := testExperiment(t, 300)
	exc, err := e.Run(NewAttack2(0.8, 1.0, 1))
	if err != nil {
		t.Fatal(err)
	}
	inh, err := e.Run(NewAttack3(0.8, 1.0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if inh.RelChangePc >= exc.RelChangePc {
		t.Fatalf("IL attack (%+.1f%%) should dominate EL attack (%+.1f%%)",
			inh.RelChangePc, exc.RelChangePc)
	}
}

func TestWorstCase(t *testing.T) {
	pts := []SweepPoint{
		{ScalePc: -10, Result: &Result{RelChangePc: -5}},
		{ScalePc: -20, Result: &Result{RelChangePc: -80}},
		{ScalePc: 10, Result: &Result{RelChangePc: 2}},
	}
	w, ok := WorstCase(pts)
	if !ok || w.ScalePc != -20 {
		t.Fatalf("WorstCase picked %+v (ok=%v)", w, ok)
	}
}

func TestWorstCaseEmpty(t *testing.T) {
	if _, ok := WorstCase(nil); ok {
		t.Fatal("empty sweep must report ok=false")
	}
	// Points without results are skipped rather than dereferenced.
	if _, ok := WorstCase([]SweepPoint{{ScalePc: -20}}); ok {
		t.Fatal("result-less points must report ok=false")
	}
}

func TestLayerGridRejectsDrivers(t *testing.T) {
	e := testExperiment(t, 10)
	if _, err := e.LayerGrid(Drivers, []float64{-10}, []float64{100}); err == nil {
		t.Fatal("LayerGrid must reject the driver pseudo-layer")
	}
}

// Property: Apply followed by revert leaves the fault hooks exactly
// nominal for arbitrary valid plans.
func TestApplyRevertRoundTripProperty(t *testing.T) {
	f := func(scaleRaw, fracRaw float64, seed int64) bool {
		scale := 0.5 + math.Mod(math.Abs(scaleRaw), 1.0)
		frac := math.Mod(math.Abs(fracRaw), 1.0)
		cfg := snn.DefaultConfig()
		cfg.NExc, cfg.NInh = 10, 10
		cfg.Steps = 10
		n, err := snn.NewDiehlCook(cfg)
		if err != nil {
			return false
		}
		plan := &FaultPlan{Name: "prop", Faults: []FaultSpec{
			{Layer: Excitatory, Scale: scale, Fraction: frac, Seed: seed},
			{Layer: Inhibitory, Scale: scale, Fraction: 1 - frac, Seed: seed + 1},
			{Layer: Drivers, Scale: scale, Fraction: frac, Seed: seed + 2},
		}}
		revert, err := plan.Apply(n)
		if err != nil {
			return false
		}
		revert()
		for i := range n.Exc.ThreshScale {
			if n.Exc.ThreshScale[i] != 1 || n.Inh.ThreshScale[i] != 1 || n.Exc.InputGain[i] != 1 {
				return false
			}
		}
		return n.InputDriveScale == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
