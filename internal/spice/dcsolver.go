package spice

import "fmt"

// DCSolver is a reusable handle for repeated DC solves over one
// circuit. Where OP/DCSweep build a fresh assembly context (matrix
// workspace, tier partition, constant base system) per analysis, a
// DCSolver builds it once and keeps it across solves, so workloads
// that re-solve the same topology under patched element values — the
// Monte-Carlo mismatch prober re-bisecting an inverter's transfer
// crossing thousands of times — pay the setup exactly once.
//
// Which patches a Solve picks up follows the stamping tiers
// (circuit.go): iterate-tier values (MOSFET model cards via
// MOSFET.P, op-amp limits) and step-tier values (source waveforms via
// VSource.W / ISource.W) are re-stamped by every solve automatically.
// Constant-tier values (resistances, VCVS gains, topology) are baked
// into the base system — after changing those, call Rebase before the
// next Solve.
type DCSolver struct {
	c    *Circuit
	ctx  *Context
	snap []float64
	has  bool
}

// BeginDC returns a DC solver over the circuit's current topology.
// Devices must not be added to the circuit afterwards (the MNA system
// size is fixed here); element values may be patched between solves
// per the tier rules above.
func (c *Circuit) BeginDC() *DCSolver {
	ctx := c.newContext()
	ctx.DC = true
	ctx.Gmin = 1e-12
	ctx.SrcScale = 1
	return &DCSolver{c: c, ctx: ctx, snap: make([]float64, len(ctx.X))}
}

// Rebase rebuilds the analysis-constant base system from the
// circuit's current element values. Only needed after patching
// constant-tier values; Vth and waveform patches never require it.
func (s *DCSolver) Rebase() { s.c.prepareBase(s.ctx) }

// Solve computes the DC solution by Newton continuation from the
// current iterate — the cheap path when the system moved a little
// since the last solve (a sweep step, a mismatch perturbation). If
// plain Newton fails, the full robust ladder (gmin and source
// stepping) takes over, so Solve is safe from any starting point.
func (s *DCSolver) Solve() error {
	if err := s.c.solveNewton(s.ctx, NROptions{}); err == nil {
		return nil
	}
	if err := s.c.solveRobust(s.ctx, NROptions{}); err != nil {
		return fmt.Errorf("spice: DC solve: %w", err)
	}
	return nil
}

// SolveRobust runs the full fallback ladder unconditionally — the
// equivalent of OP on this context. Use it to establish the first
// solution a Solve continuation chain then walks from.
func (s *DCSolver) SolveRobust() error {
	if err := s.c.solveRobust(s.ctx, NROptions{}); err != nil {
		return fmt.Errorf("spice: DC solve: %w", err)
	}
	return nil
}

// V returns the solved voltage of the named node (0 for ground or an
// unknown name, matching Context.V's ground convention).
func (s *DCSolver) V(name string) float64 {
	i, ok := s.c.nodeIndex[name]
	if !ok {
		return 0
	}
	return s.ctx.X[i]
}

// Snapshot saves the current solution as the warm-start point.
func (s *DCSolver) Snapshot() {
	copy(s.snap, s.ctx.X)
	s.has = true
}

// Restore loads the warm-start point back into the iterate; a no-op
// before the first Snapshot. It reports whether a snapshot existed.
func (s *DCSolver) Restore() bool {
	if !s.has {
		return false
	}
	copy(s.ctx.X, s.snap)
	return true
}

// SaveState copies the current solution into dst (reallocating only
// if dst is too small) and returns it. Callers that re-solve the same
// operating points under slightly perturbed element values — the
// mismatch prober revisiting one grid index across samples — keep one
// saved state per point and hand it back via LoadState, turning each
// revisit into a one- or two-iteration Newton continuation.
func (s *DCSolver) SaveState(dst []float64) []float64 {
	if cap(dst) < len(s.ctx.X) {
		dst = make([]float64, len(s.ctx.X))
	}
	dst = dst[:len(s.ctx.X)]
	copy(dst, s.ctx.X)
	return dst
}

// LoadState sets the Newton iterate to a state previously captured by
// SaveState. States are only meaningful for the solver they came from.
func (s *DCSolver) LoadState(x []float64) { copy(s.ctx.X, x) }
