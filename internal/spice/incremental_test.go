package spice

import (
	"math"
	"testing"
)

// buildNeuronish constructs a small feedback-heavy MOS circuit with
// every element class the neuron netlists use (sources, caps, MOSFETs,
// resistor), mirroring the Axon Hillock topology: membrane capacitor,
// two-inverter amplifier, capacitive feedback, gated reset.
func buildNeuronish(full bool) *Circuit {
	c := New()
	c.fullRestamp = full
	c.V("VDD", "vdd", "0", DC(1.0))
	c.V("VPW", "vpw", "0", DC(0.42))
	c.I("IIN", "0", "vmem", SpikeTrain{Amp: 200e-9, Width: 25e-9, Period: 25e-9})
	c.C("CMEM", "vmem", "0", 1e-12)
	c.C("CFB", "vout", "vmem", 1e-12)
	c.PMOSDev("MP1", "n1", "vmem", "vdd", 2e-6, 100e-9, PMOS65())
	c.NMOSDev("MN3", "n1", "vmem", "0", 1e-6, 100e-9, NMOS65())
	c.PMOSDev("MP2", "vout", "n1", "vdd", 2e-6, 100e-9, PMOS65())
	c.NMOSDev("MN4", "vout", "n1", "0", 1e-6, 100e-9, NMOS65())
	c.NMOSDev("MN1", "vmem", "vout", "r", 2e-6, 100e-9, NMOS65())
	c.NMOSDev("MN2", "r", "vpw", "0", 1e-6, 200e-9, NMOS65())
	c.C("CPN1", "n1", "0", 5e-15)
	c.C("CPR", "r", "0", 2e-15)
	return c
}

// TestIncrementalMatchesFullRestamp_Tran pins the incremental solve
// pipeline (const/step/iter stamp tiers + workspace reuse) to the
// full-restamp reference on a regeneratively spiking transient.
func TestIncrementalMatchesFullRestamp_Tran(t *testing.T) {
	opt := TranOptions{Dt: 10e-9, Stop: 4e-6, UIC: true}
	inc, err := buildNeuronish(false).Tran(opt)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := buildNeuronish(true).Tran(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(inc.Time) != len(ref.Time) {
		t.Fatalf("point counts differ: %d vs %d", len(inc.Time), len(ref.Time))
	}
	for _, node := range []string{"vmem", "n1", "vout", "r"} {
		vi, vr := inc.V(node), ref.V(node)
		for k := range vi {
			if d := math.Abs(vi[k] - vr[k]); d > 1e-9 {
				t.Fatalf("%s at t=%g differs by %g (inc %g, ref %g)",
					node, inc.Time[k], d, vi[k], vr[k])
			}
		}
	}
}

// TestIncrementalMatchesFullRestamp_DCSweep compares an inverter VTC —
// the membrane-threshold measurement path — point by point.
func TestIncrementalMatchesFullRestamp_DCSweep(t *testing.T) {
	build := func(full bool) *Circuit {
		c := New()
		c.fullRestamp = full
		c.V("VDD", "vdd", "0", DC(1.0))
		c.V("VIN", "in", "0", DC(0))
		c.PMOSDev("MP", "out", "in", "vdd", 2e-6, 100e-9, PMOS65())
		c.NMOSDev("MN", "out", "in", "0", 1e-6, 100e-9, NMOS65())
		return c
	}
	var sweep []float64
	for v := 0.0; v <= 1.0001; v += 0.0025 {
		sweep = append(sweep, v)
	}
	inc, err := build(false).DCSweep("VIN", sweep)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := build(true).DCSweep("VIN", sweep)
	if err != nil {
		t.Fatal(err)
	}
	vi, vr := inc.V("out"), ref.V("out")
	for k := range sweep {
		if d := math.Abs(vi[k] - vr[k]); d > 1e-9 {
			t.Fatalf("VTC at vin=%g differs by %g", sweep[k], d)
		}
	}
}

// TestIncrementalMatchesFullRestamp_OpAmp covers the op-amp split
// (const topology rows vs iterate-dependent linearization) through the
// robust-driver regulation loop.
func TestIncrementalMatchesFullRestamp_OpAmp(t *testing.T) {
	build := func(full bool) *Circuit {
		c := New()
		c.fullRestamp = full
		ramp, _ := NewPWL([]float64{0, 2e-6}, []float64{0, 1.0})
		c.V("VDD", "vdd", "0", ramp)
		c.V("VREF", "vref", "0", DC(0.5))
		c.R("RREFK", "vref", "0", 10e6)
		c.OpAmp("U1", "fb", "vref", "g", 1e3, 0, 1.0)
		c.PMOSDev("MP1", "fb", "g", "vdd", 2e-6, 400e-9, PMOS65())
		c.R("R1", "fb", "0", 2.5e6)
		c.C("CC", "fb", "0", 1e-12)
		c.E("E1", "mon", "0", "fb", "0", 2.0)
		c.R("RMON", "mon", "0", 1e6)
		return c
	}
	opt := TranOptions{Dt: 20e-9, Stop: 5e-6, UIC: true}
	inc, err := build(false).Tran(opt)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := build(true).Tran(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range []string{"fb", "g", "mon"} {
		vi, vr := inc.V(node), ref.V(node)
		for k := range vi {
			if d := math.Abs(vi[k] - vr[k]); d > 1e-9 {
				t.Fatalf("%s at t=%g differs by %g", node, inc.Time[k], d)
			}
		}
	}
}

// TestSolveNewtonAllocationFree pins the workspace-reuse contract: once
// a context exists, Newton solves allocate nothing.
func TestSolveNewtonAllocationFree(t *testing.T) {
	c := buildNeuronish(false)
	ctx := c.newContext()
	ctx.DC = true
	ctx.Gmin = 1e-12
	if err := c.solveRobust(ctx, NROptions{}); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := c.solveNewton(ctx, NROptions{}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("solveNewton allocated %.1f objects per solve, want 0", allocs)
	}
}
