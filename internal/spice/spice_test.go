package spice

import (
	"math"
	"testing"
)

func almostEqual(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Fatalf("%s: got %.6g, want %.6g (tol %.2g)", msg, got, want, tol)
	}
}

func TestResistorDividerOP(t *testing.T) {
	c := New()
	c.V("V1", "in", "0", DC(1.0))
	c.R("R1", "in", "mid", 1e3)
	c.R("R2", "mid", "0", 1e3)
	ctx, err := c.OP()
	if err != nil {
		t.Fatal(err)
	}
	almostEqual(t, ctx.V(c.Node("mid")), 0.5, 1e-6, "divider midpoint")
	almostEqual(t, ctx.V(c.Node("in")), 1.0, 1e-9, "source node")
}

func TestVSourceBranchCurrent(t *testing.T) {
	c := New()
	v := c.V("V1", "in", "0", DC(2.0))
	c.R("R1", "in", "0", 1e3)
	ctx, err := c.OP()
	if err != nil {
		t.Fatal(err)
	}
	// 2 V across 1 kΩ: 2 mA flows out of + terminal into the resistor,
	// i.e. −2 mA through the source in the + → − internal direction.
	// Tolerance covers the global 1 nS node shunt.
	almostEqual(t, v.BranchCurrent(ctx), -2e-3, 1e-8, "source branch current")
}

func TestCurrentSourceIntoResistor(t *testing.T) {
	c := New()
	c.I("I1", "0", "out", DC(1e-3))
	c.R("R1", "out", "0", 2e3)
	ctx, err := c.OP()
	if err != nil {
		t.Fatal(err)
	}
	almostEqual(t, ctx.V(c.Node("out")), 2.0, 1e-5, "I·R node voltage")
}

func TestRCChargingTransient(t *testing.T) {
	// 1 kΩ / 1 µF step response: tau = 1 ms.
	c := New()
	c.V("V1", "in", "0", DC(1.0))
	c.R("R1", "in", "out", 1e3)
	c.C("C1", "out", "0", 1e-6)
	res, err := c.Tran(TranOptions{Dt: 10e-6, Stop: 5e-3, UIC: true})
	if err != nil {
		t.Fatal(err)
	}
	v := res.V("out")
	tt := res.Time
	// At t = tau the voltage should be ~1 − e⁻¹ = 0.632.
	idx := len(tt) / 5 // 1 ms of 5 ms
	almostEqual(t, v[idx], 1-math.Exp(-1), 0.01, "RC charge at tau")
	almostEqual(t, v[len(v)-1], 1.0, 0.01, "RC settled")
}

func TestRCTrapezoidalMatchesAnalytic(t *testing.T) {
	c := New()
	c.V("V1", "in", "0", DC(1.0))
	c.R("R1", "in", "out", 1e3)
	c.C("C1", "out", "0", 1e-6)
	res, err := c.Tran(TranOptions{Dt: 50e-6, Stop: 3e-3, UIC: true, Method: Trapezoidal})
	if err != nil {
		t.Fatal(err)
	}
	v := res.V("out")
	for i, tm := range res.Time {
		want := 1 - math.Exp(-tm/1e-3)
		if math.Abs(v[i]-want) > 0.01 {
			t.Fatalf("trap at t=%g: got %.4f want %.4f", tm, v[i], want)
		}
	}
}

func TestTrapezoidalMoreAccurateThanBE(t *testing.T) {
	run := func(m Integrator) float64 {
		c := New()
		c.V("V1", "in", "0", DC(1.0))
		c.R("R1", "in", "out", 1e3)
		c.C("C1", "out", "0", 1e-6)
		res, err := c.Tran(TranOptions{Dt: 100e-6, Stop: 2e-3, UIC: true, Method: m})
		if err != nil {
			t.Fatal(err)
		}
		v := res.V("out")
		var worst float64
		for i, tm := range res.Time {
			if e := math.Abs(v[i] - (1 - math.Exp(-tm/1e-3))); e > worst {
				worst = e
			}
		}
		return worst
	}
	be, tr := run(BackwardEuler), run(Trapezoidal)
	if tr >= be {
		t.Fatalf("trapezoidal error %.3g should beat backward Euler %.3g at coarse dt", tr, be)
	}
}

func TestCapacitorOpenAtDC(t *testing.T) {
	c := New()
	c.V("V1", "in", "0", DC(1.0))
	c.R("R1", "in", "out", 1e3)
	c.C("C1", "out", "0", 1e-9)
	ctx, err := c.OP()
	if err != nil {
		t.Fatal(err)
	}
	// No DC path except the global shunt: out floats to the source value.
	almostEqual(t, ctx.V(c.Node("out")), 1.0, 1e-3, "cap open at DC")
}

func TestNMOSSquareLawRegion(t *testing.T) {
	// Saturated NMOS: Id ≈ K(W/L)(Vgs−Vth)² with K = KP/2.
	p := NMOS65()
	m := &MOSFET{W: 1e-6, L: 100e-9, P: p}
	vgs, vds := 0.9, 1.0
	id, gm, gds := m.ids(vgs, vds)
	k := 0.5 * p.KP * m.W / m.L
	ideal := k * (vgs - p.Vth) * (vgs - p.Vth) * (1 + p.Lambda*vds)
	if math.Abs(id-ideal)/ideal > 0.15 {
		t.Fatalf("square-law mismatch: got %.4g want ≈%.4g", id, ideal)
	}
	if gm <= 0 || gds <= 0 {
		t.Fatalf("conductances must be positive in saturation: gm=%g gds=%g", gm, gds)
	}
}

func TestNMOSSubthresholdExponential(t *testing.T) {
	p := NMOS65()
	m := &MOSFET{W: 1e-6, L: 100e-9, P: p}
	i1, _, _ := m.ids(0.20, 0.5)
	i2, _, _ := m.ids(0.30, 0.5)
	// 100 mV of gate drive in subthreshold should multiply the current by
	// roughly exp(0.1/(N·Vt)) ≈ 14. Allow a broad band.
	ratio := i2 / i1
	if ratio < 5 || ratio > 40 {
		t.Fatalf("subthreshold ratio = %.3g, want ~14 (5..40)", ratio)
	}
}

func TestMOSFETZeroVdsZeroCurrent(t *testing.T) {
	m := &MOSFET{W: 1e-6, L: 100e-9, P: NMOS65()}
	id, _, _ := m.ids(0.8, 0)
	if math.Abs(id) > 1e-12 {
		t.Fatalf("Id at vds=0 should vanish, got %g", id)
	}
}

func TestMOSFETSymmetricReverse(t *testing.T) {
	// EKV symmetry: swapping source and drain flips the current sign when
	// the gate reference moves with it. With vgs at the new source:
	m := &MOSFET{W: 1e-6, L: 100e-9, P: NMOS65()}
	idF, _, _ := m.ids(0.9, 0.3)
	// Reverse operation: gate-source voltage seen from the other side.
	idR, _, _ := m.ids(0.9-0.3, -0.3)
	if math.Abs(idF+idR)/math.Abs(idF) > 0.1 {
		t.Fatalf("forward/reverse asymmetry: %.4g vs %.4g", idF, idR)
	}
}

func TestInverterVTC(t *testing.T) {
	// Symmetric inverter at VDD=1 V should switch near 0.5 V.
	c := New()
	c.V("VDD", "vdd", "0", DC(1.0))
	c.V("VIN", "in", "0", DC(0))
	c.PMOSDev("MP", "out", "in", "vdd", 2e-6, 100e-9, PMOS65())
	c.NMOSDev("MN", "out", "in", "0", 1e-6, 100e-9, NMOS65())
	var sweep []float64
	for v := 0.0; v <= 1.0001; v += 0.01 {
		sweep = append(sweep, v)
	}
	res, err := c.DCSweep("VIN", sweep)
	if err != nil {
		t.Fatal(err)
	}
	vout := res.V("out")
	if vout[0] < 0.95 {
		t.Fatalf("inverter output at vin=0 should be ≈VDD, got %.3f", vout[0])
	}
	if vout[len(vout)-1] > 0.05 {
		t.Fatalf("inverter output at vin=VDD should be ≈0, got %.3f", vout[len(vout)-1])
	}
	// Switching threshold: where vout crosses vin.
	sw := -1.0
	for i := range sweep {
		if vout[i] <= sweep[i] {
			sw = sweep[i]
			break
		}
	}
	if sw < 0.40 || sw > 0.60 {
		t.Fatalf("inverter switching threshold = %.3f, want ≈0.5", sw)
	}
}

func TestOpAmpUnityFollower(t *testing.T) {
	c := New()
	c.V("VIN", "in", "0", DC(0.6))
	c.OpAmp("U1", "in", "out", "out", 1e5, 0, 1)
	c.R("RL", "out", "0", 10e3)
	ctx, err := c.OP()
	if err != nil {
		t.Fatal(err)
	}
	almostEqual(t, ctx.V(c.Node("out")), 0.6, 1e-3, "unity follower")
}

func TestOpAmpSaturatesAtRails(t *testing.T) {
	c := New()
	c.V("VP", "p", "0", DC(0.9))
	c.V("VM", "m", "0", DC(0.1))
	c.OpAmp("U1", "p", "m", "out", 1e5, 0, 1)
	c.R("RL", "out", "0", 10e3)
	ctx, err := c.OP()
	if err != nil {
		t.Fatal(err)
	}
	if got := ctx.V(c.Node("out")); got < 0.99 {
		t.Fatalf("open-loop positive drive should rail high, got %.4f", got)
	}
}

func TestVCVSGain(t *testing.T) {
	c := New()
	c.V("VIN", "in", "0", DC(0.25))
	c.E("E1", "out", "0", "in", "0", 3.0)
	c.R("RL", "out", "0", 1e3)
	ctx, err := c.OP()
	if err != nil {
		t.Fatal(err)
	}
	almostEqual(t, ctx.V(c.Node("out")), 0.75, 1e-6, "VCVS output")
}

func TestAddDuplicateNamePanics(t *testing.T) {
	c := New()
	c.R("R1", "a", "0", 1e3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate element name")
		}
	}()
	c.R("R1", "a", "0", 1e3)
}

func TestElementLookup(t *testing.T) {
	c := New()
	v := c.V("V1", "in", "0", DC(1))
	r := c.R("R1", "in", "0", 1e3)
	if got := c.Element("V1"); got != Element(v) {
		t.Fatalf("Element(V1) = %v, want the registered source", got)
	}
	if got := c.Element("R1"); got != Element(r) {
		t.Fatalf("Element(R1) = %v, want the registered resistor", got)
	}
	if got := c.Element("nope"); got != nil {
		t.Fatalf("Element(nope) = %v, want nil", got)
	}
}

func TestValidateLonelyNode(t *testing.T) {
	c := New()
	c.V("V1", "in", "0", DC(1))
	c.R("R1", "in", "dangling", 1e3)
	if err := c.Validate(); err == nil {
		t.Fatal("expected lonely-node error")
	}
}

func TestValidateCleanCircuit(t *testing.T) {
	c := New()
	c.V("V1", "in", "0", DC(1))
	c.R("R1", "in", "out", 1e3)
	c.R("R2", "out", "0", 1e3)
	if err := c.Validate(); err != nil {
		t.Fatalf("clean circuit flagged: %v", err)
	}
}

func TestTranRejectsBadOptions(t *testing.T) {
	c := New()
	c.V("V1", "in", "0", DC(1))
	c.R("R1", "in", "0", 1e3)
	if _, err := c.Tran(TranOptions{Dt: 0, Stop: 1}); err == nil {
		t.Fatal("expected error for Dt=0")
	}
	if _, err := c.Tran(TranOptions{Dt: 1e-6, Stop: 0}); err == nil {
		t.Fatal("expected error for Stop=0")
	}
}

func TestDCSweepUnknownSource(t *testing.T) {
	c := New()
	c.V("V1", "in", "0", DC(1))
	c.R("R1", "in", "0", 1e3)
	if _, err := c.DCSweep("VX", []float64{0, 1}); err == nil {
		t.Fatal("expected unknown-source error")
	}
	if _, err := c.DCSweep("R1", []float64{0, 1}); err == nil {
		t.Fatal("expected not-a-source error")
	}
}

func TestSingularDetection(t *testing.T) {
	// Two voltage sources in parallel demanding different voltages is an
	// inconsistent system; with only ideal sources the matrix is not
	// singular but the shunt keeps it solvable — instead test an
	// unsolvable all-zero matrix directly.
	a := [][]float64{{0, 0}, {0, 0}}
	b := []float64{1, 1}
	if err := luSolve(a, b); err == nil {
		t.Fatal("expected singularity error")
	}
}

func TestCurrentMirrorCopiesCurrent(t *testing.T) {
	// Classic NMOS mirror: reference current through a diode-connected
	// device is copied to the output leg.
	c := New()
	c.V("VDD", "vdd", "0", DC(1.0))
	c.I("IREF", "vdd", "x", DC(0)) // placeholder to keep x well-connected
	c.R("RREF", "vdd", "x", 2e6)
	c.NMOSDev("M1", "x", "x", "0", 1e-6, 200e-9, NMOS65())
	c.NMOSDev("M2", "y", "x", "0", 1e-6, 200e-9, NMOS65())
	c.R("RL", "vdd", "y", 100e3)
	ctx, err := c.OP()
	if err != nil {
		t.Fatal(err)
	}
	iref := (1.0 - ctx.V(c.Node("x"))) / 2e6
	iout := (1.0 - ctx.V(c.Node("y"))) / 100e3
	if iref < 50e-9 {
		t.Fatalf("reference current too small: %g", iref)
	}
	if math.Abs(iout-iref)/iref > 0.30 {
		t.Fatalf("mirror mismatch: iref=%.4g iout=%.4g", iref, iout)
	}
}
