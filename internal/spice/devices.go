package spice

import "math"

// Resistor is a linear two-terminal resistance.
type Resistor struct {
	name string
	a, b int
	Ohms float64
}

// R adds a resistor between nodes a and b.
func (c *Circuit) R(name, a, b string, ohms float64) *Resistor {
	r := &Resistor{name: name, a: c.Node(a), b: c.Node(b), Ohms: ohms}
	c.Add(r)
	return r
}

// Name implements Element.
func (r *Resistor) Name() string { return r.name }

// Terminals returns the connected node indices.
func (r *Resistor) Terminals() []int { return []int{r.a, r.b} }

// StampConst implements constStamper: a resistance is fixed for the
// whole analysis.
func (r *Resistor) StampConst(ctx *Context) {
	ctx.StampConductance(r.a, r.b, 1/r.Ohms)
}

// Stamp implements Element.
func (r *Resistor) Stamp(ctx *Context) { r.StampConst(ctx) }

// Current returns the current flowing a→b for a solved vector x.
func (r *Resistor) Current(ctx *Context) float64 {
	return (ctx.V(r.a) - ctx.V(r.b)) / r.Ohms
}

// Capacitor is a linear two-terminal capacitance discretized with the
// analysis integrator (backward Euler or trapezoidal).
type Capacitor struct {
	name   string
	a, b   int
	Farads float64

	iPrev  float64 // accepted capacitor current (trapezoidal state)
	primed bool    // true once one accepted step has seeded iPrev
}

// C adds a capacitor between nodes a and b.
func (c *Circuit) C(name, a, b string, farads float64) *Capacitor {
	cap := &Capacitor{name: name, a: c.Node(a), b: c.Node(b), Farads: farads}
	c.Add(cap)
	return cap
}

// Name implements Element.
func (cp *Capacitor) Name() string { return cp.name }

// Terminals returns the connected node indices.
func (cp *Capacitor) Terminals() []int { return []int{cp.a, cp.b} }

// StampStep implements stepStamper: the companion conductance and
// equivalent current depend on Dt and the previous accepted solution,
// both fixed across the Newton iterates of one solve.
func (cp *Capacitor) StampStep(ctx *Context) {
	if ctx.DC || ctx.Dt <= 0 {
		return // open circuit at DC
	}
	vPrev := ctx.VPrev(cp.a) - ctx.VPrev(cp.b)
	// The very first trapezoidal step has no accepted capacitor current
	// yet, so it is taken with backward Euler (standard SPICE practice).
	if ctx.Method == Trapezoidal && cp.primed {
		g := 2 * cp.Farads / ctx.Dt
		ctx.StampConductance(cp.a, cp.b, g)
		// i = g·v − (g·vPrev + iPrev)
		ieq := g*vPrev + cp.iPrev
		ctx.StampCurrent(cp.a, cp.b, -ieq)
		return
	}
	g := cp.Farads / ctx.Dt
	ctx.StampConductance(cp.a, cp.b, g)
	ctx.StampCurrent(cp.a, cp.b, -g*vPrev)
}

// Stamp implements Element.
func (cp *Capacitor) Stamp(ctx *Context) { cp.StampStep(ctx) }

// accept implements stateful: records the capacitor current at the
// accepted solution for the trapezoidal method.
func (cp *Capacitor) accept(ctx *Context) {
	if ctx.Dt <= 0 {
		return
	}
	v := ctx.V(cp.a) - ctx.V(cp.b)
	vPrev := ctx.VPrev(cp.a) - ctx.VPrev(cp.b)
	if ctx.Method == Trapezoidal && cp.primed {
		g := 2 * cp.Farads / ctx.Dt
		cp.iPrev = g*(v-vPrev) - cp.iPrev
	} else {
		cp.iPrev = cp.Farads / ctx.Dt * (v - vPrev)
	}
	cp.primed = true
}

func (cp *Capacitor) reset() { cp.iPrev, cp.primed = 0, false }

// VSource is an independent voltage source carrying a branch-current
// unknown.
type VSource struct {
	name   string
	p, n   int
	W      Waveform
	branch int
}

// V adds an independent voltage source with + terminal p and − terminal n.
func (c *Circuit) V(name, p, n string, w Waveform) *VSource {
	v := &VSource{name: name, p: c.Node(p), n: c.Node(n), W: w}
	c.Add(v)
	return v
}

// Name implements Element.
func (v *VSource) Name() string { return v.name }

// Terminals returns the connected node indices.
func (v *VSource) Terminals() []int { return []int{v.p, v.n} }

func (v *VSource) setBranch(i int)  { v.branch = i }
func (v *VSource) numBranches() int { return 1 }

// StampConst implements constStamper: the branch-current topology rows
// are pure ±1 structure.
func (v *VSource) StampConst(ctx *Context) {
	k := ctx.BranchIndex(v.branch)
	ctx.AddA(v.p, k, 1)
	ctx.AddA(v.n, k, -1)
	ctx.AddA(k, v.p, 1)
	ctx.AddA(k, v.n, -1)
}

// StampStep implements stepStamper: the enforced voltage is the
// waveform value at the solve time, scaled by source stepping.
func (v *VSource) StampStep(ctx *Context) {
	ctx.AddB(ctx.BranchIndex(v.branch), v.W.At(ctx.Time)*ctx.SrcScale)
}

// Stamp implements Element.
func (v *VSource) Stamp(ctx *Context) {
	v.StampConst(ctx)
	v.StampStep(ctx)
}

// BranchCurrent returns the source branch current (flowing from the +
// terminal through the source to the − terminal) in a solved context.
func (v *VSource) BranchCurrent(ctx *Context) float64 {
	return ctx.X[ctx.BranchIndex(v.branch)]
}

// ISource is an independent current source pushing current from node a
// out of the source into node b (SPICE convention: positive current
// flows a→b through the source, i.e. it raises the potential of b).
type ISource struct {
	name string
	a, b int
	W    Waveform
}

// I adds an independent current source. Positive values force current
// from node a through the source into node b.
func (c *Circuit) I(name, a, b string, w Waveform) *ISource {
	i := &ISource{name: name, a: c.Node(a), b: c.Node(b), W: w}
	c.Add(i)
	return i
}

// Name implements Element.
func (i *ISource) Name() string { return i.name }

// Terminals returns the connected node indices.
func (i *ISource) Terminals() []int { return []int{i.a, i.b} }

// StampStep implements stepStamper.
//
// In transient mode the waveform is averaged over the step rather than
// point-sampled: pulse trains narrower than the timestep would
// otherwise alias (a spike train with period equal to dt can sample as
// identically zero), and the step average is exactly the charge the
// step delivers, which is what integrating nodes care about. Stamping
// at step cadence also evaluates the 32-sample average once per solve
// instead of once per Newton iterate.
func (i *ISource) StampStep(ctx *Context) {
	val := i.W.At(ctx.Time)
	if !ctx.DC && ctx.Dt > 0 {
		val = stepAverage(i.W, ctx.Time-ctx.Dt, ctx.Time)
	}
	ctx.StampCurrent(i.a, i.b, val*ctx.SrcScale)
}

// Stamp implements Element.
func (i *ISource) Stamp(ctx *Context) { i.StampStep(ctx) }

// stepAverage numerically averages a waveform over [t0, t1] with
// midpoint sampling. 32 samples resolve pulse edges to ~3% of a step.
func stepAverage(w Waveform, t0, t1 float64) float64 {
	if c, ok := w.(DC); ok {
		return float64(c)
	}
	const n = 32
	h := (t1 - t0) / n
	if h <= 0 {
		return w.At(t1)
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += w.At(t0 + (float64(i)+0.5)*h)
	}
	return sum / n
}

// OpAmp is a behavioral rail-limited operational amplifier: the output
// node is driven (through a branch unknown, like a voltage source) to
//
//	vout = RailLo + (RailHi−RailLo)·σ(Gain·(v+ − v−)·4/(RailHi−RailLo))
//
// which is a smooth saturating transfer with small-signal gain Gain
// around the midpoint. With negative feedback it behaves as an ideal
// virtual-short amplifier; open loop it saturates to the rails.
type OpAmp struct {
	name     string
	inP, inN int
	out      int
	Gain     float64
	RailLo   float64
	RailHi   float64
	branch   int
}

// OpAmp adds a behavioral op-amp. Rails default to [0, 1] V and gain to
// 1e5 when zero values are passed.
func (c *Circuit) OpAmp(name, inP, inN, out string, gain, railLo, railHi float64) *OpAmp {
	if gain == 0 {
		gain = 1e5
	}
	if railHi == railLo {
		railLo, railHi = 0, 1
	}
	o := &OpAmp{
		name: name,
		inP:  c.Node(inP), inN: c.Node(inN), out: c.Node(out),
		Gain: gain, RailLo: railLo, RailHi: railHi,
	}
	c.Add(o)
	return o
}

// Name implements Element.
func (o *OpAmp) Name() string { return o.name }

// Terminals returns the connected node indices.
func (o *OpAmp) Terminals() []int { return []int{o.inP, o.inN, o.out} }

func (o *OpAmp) setBranch(i int)  { o.branch = i }
func (o *OpAmp) numBranches() int { return 1 }

// transfer returns f(vd) and f'(vd).
func (o *OpAmp) transfer(vd float64) (f, df float64) {
	span := o.RailHi - o.RailLo
	z := 4 * o.Gain * vd / span
	var s float64
	switch {
	case z > 40:
		s = 1
	case z < -40:
		s = 0
	default:
		s = 1 / (1 + math.Exp(-z))
	}
	f = o.RailLo + span*s
	df = span * s * (1 - s) * 4 * o.Gain / span
	return f, df
}

// StampConst implements constStamper: the output-branch topology.
func (o *OpAmp) StampConst(ctx *Context) {
	k := ctx.BranchIndex(o.branch)
	// Branch current flows from the op-amp output stage into node out.
	ctx.AddA(o.out, k, 1)
	// Constraint row: V(out) − f(vd) = 0 — the V(out) coefficient is
	// structural; the linearized f(vd) terms are iterate-dependent.
	ctx.AddA(k, o.out, 1)
}

// StampIter implements iterStamper: the saturating transfer linearized
// at the current iterate.
func (o *OpAmp) StampIter(ctx *Context) {
	k := ctx.BranchIndex(o.branch)
	vd := ctx.V(o.inP) - ctx.V(o.inN)
	f, df := o.transfer(vd)
	ctx.AddA(k, o.inP, -df)
	ctx.AddA(k, o.inN, df)
	ctx.AddB(k, f-df*vd)
}

// Stamp implements Element.
func (o *OpAmp) Stamp(ctx *Context) {
	o.StampConst(ctx)
	o.StampIter(ctx)
}

// VCVS is a linear voltage-controlled voltage source:
// V(p)−V(n) = Gain·(V(cp)−V(cn)).
type VCVS struct {
	name         string
	p, n, cp, cn int
	Gain         float64
	branch       int
}

// E adds a voltage-controlled voltage source (SPICE "E" card).
func (c *Circuit) E(name, p, n, cp, cn string, gain float64) *VCVS {
	e := &VCVS{
		name: name,
		p:    c.Node(p), n: c.Node(n), cp: c.Node(cp), cn: c.Node(cn),
		Gain: gain,
	}
	c.Add(e)
	return e
}

// Name implements Element.
func (e *VCVS) Name() string { return e.name }

// Terminals returns the connected node indices.
func (e *VCVS) Terminals() []int { return []int{e.p, e.n, e.cp, e.cn} }

func (e *VCVS) setBranch(i int)  { e.branch = i }
func (e *VCVS) numBranches() int { return 1 }

// StampConst implements constStamper: a linear controlled source is
// pure constant structure.
func (e *VCVS) StampConst(ctx *Context) {
	k := ctx.BranchIndex(e.branch)
	ctx.AddA(e.p, k, 1)
	ctx.AddA(e.n, k, -1)
	ctx.AddA(k, e.p, 1)
	ctx.AddA(k, e.n, -1)
	ctx.AddA(k, e.cp, -e.Gain)
	ctx.AddA(k, e.cn, e.Gain)
}

// Stamp implements Element.
func (e *VCVS) Stamp(ctx *Context) { e.StampConst(ctx) }
