package spice

import (
	"fmt"
	"io"
	"math"
	"os"
)

// NROptions tunes Newton–Raphson iteration.
type NROptions struct {
	MaxIter int     // maximum Newton iterations per solve (default 200)
	AbsTol  float64 // absolute voltage tolerance (default 1e-6 V)
	RelTol  float64 // relative tolerance (default 1e-4)
	Damping float64 // maximum node-voltage change per iteration (default 0.4 V)
	// VMin/VMax clamp node-voltage iterates to a physically plausible
	// window, preventing Newton runaway through the flat regions of
	// device characteristics (the role of fetlim in SPICE). Defaults
	// [-1, +3] V, generous for the ≤1.2 V circuits simulated here.
	VMin, VMax float64
}

func (o NROptions) withDefaults() NROptions {
	if o.MaxIter == 0 {
		o.MaxIter = 200
	}
	if o.AbsTol == 0 {
		o.AbsTol = 1e-6
	}
	if o.RelTol == 0 {
		o.RelTol = 1e-4
	}
	if o.Damping == 0 {
		o.Damping = 0.4
	}
	if o.VMin == 0 && o.VMax == 0 {
		o.VMin, o.VMax = -1, 3
	}
	return o
}

// solveNewton runs damped Newton–Raphson from the iterate already in
// ctx.X. It returns nil when converged. The per-solve system (source
// waveform values, capacitor companions) is stamped once on entry; the
// loop re-stamps only iterate-dependent devices and reuses the context
// workspace, so iterating allocates nothing.
func (c *Circuit) solveNewton(ctx *Context, opt NROptions) error {
	opt = opt.withDefaults()
	c.beginStep(ctx)
	metrics.solves.Inc()
	iters := 0
	defer func() { metrics.newtonIters.Add(int64(iters)) }()
	n := c.NumUnknowns()
	xNew := ctx.ws.xNew
	damping := opt.Damping
	// Last iteration's worst unscaled Newton update, captured before
	// ctx.X absorbs the (scaled, clamped) step — the honest answer to
	// "how far was the solve from its fixed point". Computing it after
	// the update would report the residual (1−scale) fraction, which is
	// exactly zero at scale 1.
	lastWorst, lastWorstIdx := 0.0, -1
	for iter := 0; iter < opt.MaxIter; iter++ {
		// High-gain loops (inverter chains at their switching point) can
		// make full Newton steps flip-flop between rails; tightening the
		// damping after repeated failure walks the iterate in instead.
		if iter > 0 && iter%40 == 0 && damping > 0.05 {
			damping *= 0.5
		}
		iters = iter + 1
		metrics.restamps.Inc()
		c.assemble(ctx)
		copy(xNew, ctx.B)
		if err := luSolve(ctx.A, xNew); err != nil {
			return fmt.Errorf("%w (iteration %d)", err, iter)
		}
		// Damp: limit the largest node-voltage update. The damping
		// bound considers node voltages only; the diagnostic tracks all
		// unknowns (branch currents included).
		maxDelta := 0.0
		lastWorst, lastWorstIdx = 0.0, -1
		for i := 0; i < n; i++ {
			d := math.Abs(xNew[i] - ctx.X[i])
			if i < ctx.N && d > maxDelta {
				maxDelta = d
			}
			if d > lastWorst {
				lastWorst, lastWorstIdx = d, i
			}
		}
		scale := 1.0
		if maxDelta > damping {
			scale = damping / maxDelta
		}
		converged := true
		for i := 0; i < n; i++ {
			delta := (xNew[i] - ctx.X[i]) * scale
			ctx.X[i] += delta
			if i < ctx.N {
				// Clamp node voltages to the physical window.
				if ctx.X[i] < opt.VMin {
					ctx.X[i] = opt.VMin
				} else if ctx.X[i] > opt.VMax {
					ctx.X[i] = opt.VMax
				}
			}
			tol := opt.AbsTol + opt.RelTol*math.Abs(ctx.X[i])
			if math.Abs(delta) > tol {
				converged = false
			}
		}
		if converged && scale == 1 {
			return nil
		}
	}
	if debugNR {
		name := fmt.Sprintf("unknown %d", lastWorstIdx)
		if lastWorstIdx >= 0 && lastWorstIdx < len(c.nodeNames) {
			name = c.nodeNames[lastWorstIdx]
		}
		fmt.Fprintf(debugOut, "spice debug: NR stuck, worst delta %.3g at %s; X=%v\n", lastWorst, name, ctx.X)
	}
	return fmt.Errorf("spice: Newton–Raphson did not converge in %d iterations", opt.MaxIter)
}

// solveRobust runs the fallback ladder of production SPICE engines on
// the system already configured in ctx: plain Newton, then gmin
// stepping, then source stepping.
func (c *Circuit) solveRobust(ctx *Context, opt NROptions) error {
	ctx.SrcScale = 1
	ctx.Gmin = 1e-12
	if err := c.solveNewton(ctx, opt); err == nil {
		return nil
	}

	// gmin stepping: start with heavy shunting and relax decade by
	// decade, reusing the previous solution as the next initial guess.
	for i := range ctx.X {
		ctx.X[i] = 0
	}
	ok := true
	for _, g := range []float64{1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8, 1e-9, 1e-10, 1e-11, 1e-12} {
		ctx.Gmin = g
		if err := c.solveNewton(ctx, opt); err != nil {
			ok = false
			break
		}
	}
	if ok {
		return nil
	}

	// Source stepping: ramp all independent sources from 0 to full value.
	for i := range ctx.X {
		ctx.X[i] = 0
	}
	ctx.Gmin = 1e-12
	for s := 0.05; s <= 1.0001; s += 0.05 {
		ctx.SrcScale = s
		if err := c.solveNewton(ctx, opt); err != nil {
			return fmt.Errorf("spice: solve failed at source scale %.2f: %w", s, err)
		}
	}
	ctx.SrcScale = 1
	return nil
}

// OP computes the DC operating point at t=0.
func (c *Circuit) OP() (*Context, error) {
	ctx := c.newContext()
	ctx.DC = true
	if err := c.solveRobust(ctx, NROptions{}); err != nil {
		return nil, fmt.Errorf("spice: OP: %w", err)
	}
	return ctx, nil
}

// DCSweepResult holds a swept-source DC analysis: one solution per
// sweep value, with continuation between points.
type DCSweepResult struct {
	Values [][]float64 // Values[i] is the full solution at sweep point i
	Sweep  []float64
	names  map[string]int
}

// V returns the voltage series of node name over the sweep.
func (r *DCSweepResult) V(name string) []float64 {
	idx, ok := r.names[name]
	if !ok {
		return nil
	}
	out := make([]float64, len(r.Values))
	for i, x := range r.Values {
		out[i] = x[idx]
	}
	return out
}

// DCSweep sweeps the waveform of the named voltage or current source
// through the given values, solving the DC system at each point with
// continuation from the previous solution. The source's waveform is
// restored afterwards.
func (c *Circuit) DCSweep(srcName string, values []float64) (*DCSweepResult, error) {
	el := c.Element(srcName)
	if el == nil {
		return nil, fmt.Errorf("spice: no source named %q", srcName)
	}
	var restore func()
	setVal := func(v float64) {}
	switch s := el.(type) {
	case *VSource:
		old := s.W
		restore = func() { s.W = old }
		setVal = func(v float64) { s.W = DC(v) }
	case *ISource:
		old := s.W
		restore = func() { s.W = old }
		setVal = func(v float64) { s.W = DC(v) }
	default:
		return nil, fmt.Errorf("spice: element %q is not an independent source", srcName)
	}
	defer restore()

	if len(values) == 0 {
		return nil, fmt.Errorf("spice: empty DC sweep")
	}
	setVal(values[0])
	ctx, err := c.OP()
	if err != nil {
		return nil, fmt.Errorf("spice: DC sweep start: %w", err)
	}
	res := &DCSweepResult{
		Sweep: append([]float64(nil), values...),
		names: c.nodeIndex,
	}
	snapshot := func() {
		x := make([]float64, len(ctx.X))
		copy(x, ctx.X)
		res.Values = append(res.Values, x)
	}
	snapshot()
	opt := NROptions{}
	for _, v := range values[1:] {
		setVal(v)
		if err := c.solveNewton(ctx, opt); err != nil {
			return nil, fmt.Errorf("spice: DC sweep at %g: %w", v, err)
		}
		snapshot()
	}
	return res, nil
}

// TranOptions configures a transient analysis.
type TranOptions struct {
	Dt     float64 // fixed output timestep (required)
	Stop   float64 // stop time (required)
	Method Integrator
	// UIC skips the DC operating point and starts from all-zero node
	// voltages (SPICE "use initial conditions"). This is the right mode
	// for the neuron circuits, whose interesting state is the start-up
	// charge trajectory of the membrane capacitor.
	UIC bool
	// MaxSubdiv bounds how many times a non-converging step is halved
	// before the analysis fails (default 10).
	MaxSubdiv int
	// Record filters which node names are recorded; empty records all.
	Record []string
}

// TranResult is a recorded transient run.
type TranResult struct {
	Time  []float64
	nodes map[string][]float64
	// Branch currents of named sources (voltage sources and op-amps).
	branchCur map[string][]float64
}

// V returns the recorded voltage waveform of a node (nil if absent).
func (r *TranResult) V(name string) []float64 { return r.nodes[name] }

// I returns the recorded branch current of a named voltage source.
func (r *TranResult) I(name string) []float64 { return r.branchCur[name] }

// Tran runs a fixed-step transient analysis.
func (c *Circuit) Tran(opt TranOptions) (*TranResult, error) {
	if opt.Dt <= 0 || opt.Stop <= 0 {
		return nil, fmt.Errorf("spice: transient needs positive Dt and Stop (got %g, %g)", opt.Dt, opt.Stop)
	}
	if opt.MaxSubdiv == 0 {
		opt.MaxSubdiv = 10
	}
	// Reset dynamic element state from any previous run.
	for _, e := range c.elements {
		if s, ok := e.(stateful); ok {
			s.reset()
		}
	}

	var ctx *Context
	if opt.UIC {
		// The t=0 point under UIC is a cold DC-like solve: sources are at
		// their t=0 values while every capacitor holds its (zero) initial
		// charge. Solving it with a vanishing timestep turns the
		// capacitors into stiff clamps at their initial voltages, and the
		// full fallback ladder handles the nonlinear resistive rest.
		ctx = c.newContext()
		ctx.DC = false
		ctx.Time = 0
		ctx.Dt = 1e-18
		ctx.Method = BackwardEuler
		ctx.XPrev = make([]float64, len(ctx.X))
		if err := c.solveRobust(ctx, NROptions{}); err != nil {
			return nil, fmt.Errorf("spice: transient UIC start point: %w", err)
		}
	} else {
		op, err := c.OP()
		if err != nil {
			return nil, fmt.Errorf("spice: transient DC operating point: %w", err)
		}
		ctx = op
		ctx.XPrev = make([]float64, len(ctx.X))
	}
	ctx.DC = false
	ctx.Gmin = 1e-12
	ctx.SrcScale = 1
	ctx.Method = opt.Method
	copy(ctx.XPrev, ctx.X)

	recordSet := map[string]bool{}
	for _, n := range opt.Record {
		recordSet[n] = true
	}
	recording := func(name string) bool { return len(recordSet) == 0 || recordSet[name] }

	res := &TranResult{nodes: map[string][]float64{}, branchCur: map[string][]float64{}}
	record := func(t float64) {
		res.Time = append(res.Time, t)
		for name, idx := range c.nodeIndex {
			if !recording(name) {
				continue
			}
			res.nodes[name] = append(res.nodes[name], ctx.X[idx])
		}
		for _, e := range c.elements {
			switch src := e.(type) {
			case *VSource:
				if recording(src.name) {
					res.branchCur[src.name] = append(res.branchCur[src.name], src.BranchCurrent(ctx))
				}
			case *OpAmp:
				if recording(src.name) {
					res.branchCur[src.name] = append(res.branchCur[src.name], ctx.X[ctx.BranchIndex(src.branch)])
				}
			}
		}
	}

	ctx.Time = 0
	record(0)
	nrOpt := NROptions{}
	// Full Dt steps that fit before Stop (the epsilon absorbs float
	// division noise when Stop is an exact multiple of Dt), plus a
	// final short step to exactly Stop when it is not: rounding the
	// count would otherwise silently drop the last partial interval
	// (e.g. Stop=1.0, Dt=0.3 used to end at t=0.9) or overshoot Stop.
	nFull := int(opt.Stop/opt.Dt + 1e-9)
	t := 0.0
	for step := 1; step <= nFull; step++ {
		target := float64(step) * opt.Dt
		if err := c.advance(ctx, t, target, opt, nrOpt, 0); err != nil {
			return nil, fmt.Errorf("spice: transient at t=%.4g: %w", target, err)
		}
		t = target
		record(t)
	}
	if opt.Stop-t > 1e-9*opt.Dt {
		if err := c.advance(ctx, t, opt.Stop, opt, nrOpt, 0); err != nil {
			return nil, fmt.Errorf("spice: transient at t=%.4g: %w", opt.Stop, err)
		}
		record(opt.Stop)
	}
	return res, nil
}

// advance moves the solution from time t0 to t1, recursively halving on
// Newton failure.
func (c *Circuit) advance(ctx *Context, t0, t1 float64, opt TranOptions, nrOpt NROptions, depth int) error {
	ctx.Time = t1
	ctx.Dt = t1 - t0
	// Save state so a failed attempt can be retried on a finer grid. The
	// workspace slots are shared across subdivision depths, which is
	// safe: a depth restores from its saves (or abandons them by
	// returning the error) strictly before recursing, and never reads
	// them after the recursive calls begin.
	saveX, savePrev := ctx.ws.saveX, ctx.ws.savePrev
	copy(saveX, ctx.X)
	copy(savePrev, ctx.XPrev)

	err := c.solveNewton(ctx, nrOpt)
	if err != nil {
		// Regenerative switching events (both neuron circuits fire
		// through high-gain positive-feedback loops) can defeat plain
		// Newton at any timestep. gmin continuation — solving with a
		// heavy drain-source shunt and relaxing it decade by decade —
		// walks the iterate through the transition.
		copy(ctx.X, saveX)
		gminErr := error(nil)
		for _, g := range []float64{1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8, 1e-9, 1e-10, 1e-11, 1e-12} {
			ctx.Gmin = g
			if gminErr = c.solveNewton(ctx, nrOpt); gminErr != nil {
				break
			}
		}
		ctx.Gmin = 1e-12
		if gminErr == nil {
			err = nil
		}
	}
	if err == nil {
		// Accept: advance dynamic state.
		for _, e := range c.elements {
			if s, ok := e.(stateful); ok {
				s.accept(ctx)
			}
		}
		copy(ctx.XPrev, ctx.X)
		return nil
	}
	if depth >= opt.MaxSubdiv {
		return err
	}
	// Restore and retry in two half-steps.
	copy(ctx.X, saveX)
	copy(ctx.XPrev, savePrev)
	mid := 0.5 * (t0 + t1)
	if err := c.advance(ctx, t0, mid, opt, nrOpt, depth+1); err != nil {
		return err
	}
	return c.advance(ctx, mid, t1, opt, nrOpt, depth+1)
}

// debugNR enables NR failure diagnostics when the SPICE_DEBUG
// environment variable is set at process start. debugOut is where the
// diagnostics go (swapped by tests).
var (
	debugNR            = os.Getenv("SPICE_DEBUG") != ""
	debugOut io.Writer = os.Stdout
)
