package spice

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
)

// ParseNetlist reads a SPICE-style text deck and builds a Circuit. The
// supported subset covers everything the neuron circuits need:
//
//   - comment                      (also ; and // comments)
//     R<name> n+ n- value
//     C<name> n+ n- value
//     V<name> n+ n- DC value
//     V<name> n+ n- PULSE(lo hi delay rise fall width period)
//     V<name> n+ n- SIN(offset amp freq [delay])
//     V<name> n+ n- PWL(t1 v1 t2 v2 ...)
//     I<name> n+ n- DC value | PULSE(...) | SPIKE(amp width period [delay])
//     M<name> d g s nmos|pmos W=value L=value
//     E<name> p n cp cn gain
//     U<name> in+ in- out [GAIN=value] [LO=value] [HI=value]   (op-amp)
//     .end                           (optional, stops parsing)
//
// Values accept engineering suffixes (f p n u m k meg g t) and are
// case-insensitive, as in SPICE. Node "0" (or "gnd") is ground.
func ParseNetlist(src string) (*Circuit, error) {
	c := New()
	scanner := bufio.NewScanner(strings.NewReader(src))
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if i := strings.Index(line, "//"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if i := strings.Index(line, ";"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" || strings.HasPrefix(line, "*") {
			continue
		}
		lower := strings.ToLower(line)
		if strings.HasPrefix(lower, ".end") {
			break
		}
		if strings.HasPrefix(lower, ".") {
			return nil, fmt.Errorf("spice: line %d: unsupported directive %q", lineNo, firstField(line))
		}
		if err := parseCard(c, line); err != nil {
			return nil, fmt.Errorf("spice: line %d: %w", lineNo, err)
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	return c, nil
}

func firstField(s string) string {
	f := strings.Fields(s)
	if len(f) == 0 {
		return ""
	}
	return f[0]
}

// parseCard dispatches one element line on its leading letter.
func parseCard(c *Circuit, line string) error {
	fields := tokenize(line)
	if len(fields) == 0 {
		return nil
	}
	name := fields[0]
	// Add panics on duplicate names (a programming error when building
	// circuits in code); a text deck is user input, so report it as a
	// parse error instead.
	if c.Element(name) != nil {
		return fmt.Errorf("duplicate element name %q", name)
	}
	switch strings.ToUpper(name[:1]) {
	case "R":
		if len(fields) != 4 {
			return fmt.Errorf("resistor %s: want 'R n+ n- value', got %d fields", name, len(fields))
		}
		v, err := ParseValue(fields[3])
		if err != nil {
			return fmt.Errorf("resistor %s: %w", name, err)
		}
		if v <= 0 {
			return fmt.Errorf("resistor %s: non-positive value %g", name, v)
		}
		c.R(name, fields[1], fields[2], v)
	case "C":
		if len(fields) != 4 {
			return fmt.Errorf("capacitor %s: want 'C n+ n- value', got %d fields", name, len(fields))
		}
		v, err := ParseValue(fields[3])
		if err != nil {
			return fmt.Errorf("capacitor %s: %w", name, err)
		}
		if v <= 0 {
			return fmt.Errorf("capacitor %s: non-positive value %g", name, v)
		}
		c.C(name, fields[1], fields[2], v)
	case "V", "I":
		if len(fields) < 4 {
			return fmt.Errorf("source %s: too few fields", name)
		}
		w, err := parseWaveform(fields[3:])
		if err != nil {
			return fmt.Errorf("source %s: %w", name, err)
		}
		if strings.ToUpper(name[:1]) == "V" {
			c.V(name, fields[1], fields[2], w)
		} else {
			c.I(name, fields[1], fields[2], w)
		}
	case "M":
		return parseMOS(c, name, fields)
	case "E":
		if len(fields) != 6 {
			return fmt.Errorf("vcvs %s: want 'E p n cp cn gain'", name)
		}
		g, err := ParseValue(fields[5])
		if err != nil {
			return fmt.Errorf("vcvs %s: %w", name, err)
		}
		c.E(name, fields[1], fields[2], fields[3], fields[4], g)
	case "U":
		return parseOpAmp(c, name, fields)
	default:
		return fmt.Errorf("unknown element card %q", name)
	}
	return nil
}

// tokenize splits a card into fields, keeping function-call groups like
// PULSE(0 1 ...) as a single token.
func tokenize(line string) []string {
	var out []string
	depth := 0
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range line {
		switch {
		case r == '(':
			depth++
			cur.WriteRune(r)
		case r == ')':
			depth--
			cur.WriteRune(r)
		case (r == ' ' || r == '\t' || r == ',') && depth == 0:
			flush()
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return out
}

func parseMOS(c *Circuit, name string, fields []string) error {
	if len(fields) < 5 {
		return fmt.Errorf("mosfet %s: want 'M d g s nmos|pmos W=.. L=..'", name)
	}
	model := strings.ToLower(fields[4])
	var params MOSParams
	switch model {
	case "nmos":
		params = NMOS65()
	case "pmos":
		params = PMOS65()
	default:
		return fmt.Errorf("mosfet %s: unknown model %q (want nmos|pmos)", name, model)
	}
	w, l := 1e-6, 100e-9
	for _, f := range fields[5:] {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return fmt.Errorf("mosfet %s: bad parameter %q", name, f)
		}
		v, err := ParseValue(val)
		if err != nil {
			return fmt.Errorf("mosfet %s: %s: %w", name, key, err)
		}
		switch strings.ToUpper(key) {
		case "W":
			w = v
		case "L":
			l = v
		case "VTH":
			params.Vth = v
		case "KP":
			params.KP = v
		case "LAMBDA":
			params.Lambda = v
		default:
			return fmt.Errorf("mosfet %s: unknown parameter %q", name, key)
		}
	}
	if w <= 0 || l <= 0 {
		return fmt.Errorf("mosfet %s: non-positive geometry W=%g L=%g", name, w, l)
	}
	if model == "nmos" {
		c.NMOSDev(name, fields[1], fields[2], fields[3], w, l, params)
	} else {
		c.PMOSDev(name, fields[1], fields[2], fields[3], w, l, params)
	}
	return nil
}

func parseOpAmp(c *Circuit, name string, fields []string) error {
	if len(fields) < 4 {
		return fmt.Errorf("opamp %s: want 'U in+ in- out [GAIN=..] [LO=..] [HI=..]'", name)
	}
	gain, lo, hi := 1e5, 0.0, 1.0
	for _, f := range fields[4:] {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return fmt.Errorf("opamp %s: bad parameter %q", name, f)
		}
		v, err := ParseValue(val)
		if err != nil {
			return fmt.Errorf("opamp %s: %s: %w", name, key, err)
		}
		switch strings.ToUpper(key) {
		case "GAIN":
			gain = v
		case "LO":
			lo = v
		case "HI":
			hi = v
		default:
			return fmt.Errorf("opamp %s: unknown parameter %q", name, key)
		}
	}
	c.OpAmp(name, fields[1], fields[2], fields[3], gain, lo, hi)
	return nil
}

// parseWaveform interprets the source-value fields of a V/I card.
func parseWaveform(fields []string) (Waveform, error) {
	first := strings.ToUpper(fields[0])
	switch {
	case first == "DC":
		if len(fields) != 2 {
			return nil, fmt.Errorf("DC needs one value")
		}
		v, err := ParseValue(fields[1])
		if err != nil {
			return nil, err
		}
		return DC(v), nil
	case strings.HasPrefix(first, "PULSE("):
		args, err := parseArgs(fields[0])
		if err != nil {
			return nil, err
		}
		if len(args) != 7 {
			return nil, fmt.Errorf("PULSE wants 7 args (lo hi delay rise fall width period), got %d", len(args))
		}
		return Pulse{
			Low: args[0], High: args[1], Delay: args[2],
			Rise: args[3], Fall: args[4], Width: args[5], Period: args[6],
		}, nil
	case strings.HasPrefix(first, "SIN("):
		args, err := parseArgs(fields[0])
		if err != nil {
			return nil, err
		}
		if len(args) < 3 || len(args) > 4 {
			return nil, fmt.Errorf("SIN wants 3-4 args (offset amp freq [delay]), got %d", len(args))
		}
		s := Sine{Offset: args[0], Amp: args[1], Freq: args[2]}
		if len(args) == 4 {
			s.Delay = args[3]
		}
		return s, nil
	case strings.HasPrefix(first, "PWL("):
		args, err := parseArgs(fields[0])
		if err != nil {
			return nil, err
		}
		if len(args) < 2 || len(args)%2 != 0 {
			return nil, fmt.Errorf("PWL wants time/value pairs, got %d args", len(args))
		}
		ts := make([]float64, 0, len(args)/2)
		vs := make([]float64, 0, len(args)/2)
		for i := 0; i < len(args); i += 2 {
			ts = append(ts, args[i])
			vs = append(vs, args[i+1])
		}
		return NewPWL(ts, vs)
	case strings.HasPrefix(first, "SPIKE("):
		args, err := parseArgs(fields[0])
		if err != nil {
			return nil, err
		}
		if len(args) < 3 || len(args) > 4 {
			return nil, fmt.Errorf("SPIKE wants 3-4 args (amp width period [delay]), got %d", len(args))
		}
		s := SpikeTrain{Amp: args[0], Width: args[1], Period: args[2]}
		if len(args) == 4 {
			s.Delay = args[3]
		}
		return s, nil
	default:
		// Bare value is shorthand for DC.
		if len(fields) == 1 {
			v, err := ParseValue(fields[0])
			if err != nil {
				return nil, err
			}
			return DC(v), nil
		}
		return nil, fmt.Errorf("unrecognized waveform %q", fields[0])
	}
}

// parseArgs extracts the numeric arguments of "NAME(a b c)".
func parseArgs(tok string) ([]float64, error) {
	open := strings.Index(tok, "(")
	close := strings.LastIndex(tok, ")")
	if open < 0 || close < open {
		return nil, fmt.Errorf("malformed argument group %q", tok)
	}
	inner := tok[open+1 : close]
	parts := strings.FieldsFunc(inner, func(r rune) bool { return r == ' ' || r == ',' || r == '\t' })
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := ParseValue(p)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseValue parses a SPICE number with engineering suffix: 1k, 2.2meg,
// 100n, 1p, 0.5u, 3m, 1e-9, plain floats. Suffixes are case-insensitive
// and anything after a recognized suffix is ignored (so "10pF" works).
func ParseValue(s string) (float64, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	if s == "" {
		return 0, fmt.Errorf("empty value")
	}
	// Longest-suffix-first table; "meg" must precede "m".
	suffixes := []struct {
		suffix string
		mult   float64
	}{
		{"meg", 1e6}, {"t", 1e12}, {"g", 1e9}, {"k", 1e3},
		{"m", 1e-3}, {"u", 1e-6}, {"n", 1e-9}, {"p", 1e-12}, {"f", 1e-15},
	}
	// Split numeric prefix from the rest.
	i := 0
	for i < len(s) {
		ch := s[i]
		if (ch >= '0' && ch <= '9') || ch == '.' || ch == '+' || ch == '-' {
			i++
			continue
		}
		if (ch == 'e') && i+1 < len(s) && (s[i+1] == '-' || s[i+1] == '+' || (s[i+1] >= '0' && s[i+1] <= '9')) {
			// scientific notation exponent
			i += 2
			for i < len(s) && s[i] >= '0' && s[i] <= '9' {
				i++
			}
			continue
		}
		break
	}
	numPart, rest := s[:i], s[i:]
	base, err := strconv.ParseFloat(numPart, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	if rest == "" {
		return base, nil
	}
	for _, sf := range suffixes {
		if strings.HasPrefix(rest, sf.suffix) {
			return base * sf.mult, nil
		}
	}
	return 0, fmt.Errorf("unknown unit suffix %q in %q", rest, s)
}
