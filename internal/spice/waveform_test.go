package spice

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDCWaveform(t *testing.T) {
	w := DC(3.3)
	for _, tm := range []float64{0, 1e-9, 1} {
		if w.At(tm) != 3.3 {
			t.Fatalf("DC at %v = %v", tm, w.At(tm))
		}
	}
}

func TestPulseShape(t *testing.T) {
	p := Pulse{Low: 0, High: 1, Delay: 10e-9, Rise: 2e-9, Fall: 2e-9, Width: 20e-9, Period: 100e-9}
	cases := []struct{ tm, want float64 }{
		{0, 0},       // before delay
		{11e-9, 0.5}, // mid-rise
		{20e-9, 1},   // plateau
		{33e-9, 0.5}, // mid-fall
		{50e-9, 0},   // off
		{120e-9, 1},  // second period plateau
	}
	for _, c := range cases {
		if got := p.At(c.tm); math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("Pulse at %v = %v, want %v", c.tm, got, c.want)
		}
	}
}

func TestPulseOneShot(t *testing.T) {
	p := Pulse{Low: 0, High: 1, Rise: 1e-9, Fall: 1e-9, Width: 10e-9, Period: 0}
	if p.At(5e-9) != 1 {
		t.Fatal("one-shot pulse should be high inside width")
	}
	if p.At(1) != 0 {
		t.Fatal("one-shot pulse must stay low after the pulse")
	}
}

func TestSpikeTrainShape(t *testing.T) {
	s := SpikeTrain{Amp: 200e-9, Width: 25e-9, Period: 50e-9}
	if got := s.At(12e-9); math.Abs(got-200e-9) > 1e-15 {
		t.Fatalf("plateau = %v", got)
	}
	if got := s.At(40e-9); got != 0 {
		t.Fatalf("gap = %v", got)
	}
	// Periodicity.
	if math.Abs(s.At(12e-9)-s.At(62e-9)) > 1e-18 {
		t.Fatal("spike train must repeat")
	}
	// Delay shifts everything.
	d := SpikeTrain{Amp: 1, Width: 10e-9, Period: 100e-9, Delay: 50e-9}
	if d.At(20e-9) != 0 {
		t.Fatal("before delay must be zero")
	}
}

func TestSpikeTrainAverageMatchesDuty(t *testing.T) {
	s := SpikeTrain{Amp: 1, Width: 25e-9, Period: 50e-9}
	avg := stepAverage(s, 0, 500e-9)
	// Duty ≈ width/period with 5% edges: expect ≈0.475.
	if avg < 0.4 || avg > 0.55 {
		t.Fatalf("step average %v, want ≈0.475", avg)
	}
}

func TestStepAverageDCExact(t *testing.T) {
	if got := stepAverage(DC(2.5), 0, 1e-9); got != 2.5 {
		t.Fatalf("DC step average = %v", got)
	}
}

func TestPWLValidation(t *testing.T) {
	if _, err := NewPWL([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Fatal("non-increasing PWL times must fail")
	}
	if _, err := NewPWL([]float64{0}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch must fail")
	}
	if _, err := NewPWL(nil, nil); err == nil {
		t.Fatal("empty PWL must fail")
	}
}

func TestPWLInterpAndClamp(t *testing.T) {
	p, err := NewPWL([]float64{1e-6, 2e-6}, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.At(0) != 0 {
		t.Fatal("PWL must clamp before first point")
	}
	if p.At(3e-6) != 1 {
		t.Fatal("PWL must clamp after last point")
	}
	if got := p.At(1.5e-6); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("PWL midpoint = %v", got)
	}
}

func TestSineShape(t *testing.T) {
	s := Sine{Offset: 0.5, Amp: 0.2, Freq: 1e6}
	if got := s.At(0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("sine at 0 = %v", got)
	}
	if got := s.At(0.25e-6); math.Abs(got-0.7) > 1e-9 {
		t.Fatalf("sine at quarter period = %v", got)
	}
	d := Sine{Offset: 1, Amp: 1, Freq: 1e6, Delay: 1e-6}
	if d.At(0.5e-6) != 1 {
		t.Fatal("delayed sine must hold offset before delay")
	}
}

// Property: SpikeTrain is periodic: At(t) == At(t + k·Period) for t ≥ 0.
func TestSpikeTrainPeriodicityProperty(t *testing.T) {
	s := SpikeTrain{Amp: 1, Width: 20e-9, Period: 80e-9}
	f := func(raw float64, kRaw uint8) bool {
		tm := math.Mod(math.Abs(raw), 80e-9)
		k := float64(kRaw%10) + 1
		a := s.At(tm)
		b := s.At(tm + k*80e-9)
		return math.Abs(a-b) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Pulse output is always within [Low, High].
func TestPulseBoundedProperty(t *testing.T) {
	p := Pulse{Low: -0.2, High: 1.1, Delay: 5e-9, Rise: 3e-9, Fall: 7e-9, Width: 11e-9, Period: 37e-9}
	f := func(raw float64) bool {
		v := p.At(math.Abs(raw))
		return v >= p.Low-1e-12 && v <= p.High+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeasureCrossings(t *testing.T) {
	tm := []float64{0, 1, 2, 3, 4}
	v := []float64{0, 1, 0, 1, 0}
	rise := Crossings(tm, v, 0.5, true)
	fall := Crossings(tm, v, 0.5, false)
	if len(rise) != 2 || len(fall) != 2 {
		t.Fatalf("rise %v fall %v", rise, fall)
	}
	if math.Abs(rise[0]-0.5) > 1e-12 || math.Abs(fall[0]-1.5) > 1e-12 {
		t.Fatalf("interpolated crossings wrong: %v %v", rise, fall)
	}
	if _, err := FirstCrossing(tm, v, 2.0, true); err == nil {
		t.Fatal("crossing above the waveform must error")
	}
}

func TestMeasureSpikeCountAndPeriod(t *testing.T) {
	var tm, v []float64
	// Three clean spikes 10 units apart.
	for i := 0; i < 40; i++ {
		tm = append(tm, float64(i))
		if i%10 >= 3 && i%10 <= 5 {
			v = append(v, 1)
		} else {
			v = append(v, 0)
		}
	}
	if n := SpikeCount(tm, v, 0.5); n != 4 {
		t.Fatalf("SpikeCount = %d, want 4", n)
	}
	p, err := SpikePeriod(tm, v, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-10) > 0.01 {
		t.Fatalf("SpikePeriod = %v, want 10", p)
	}
	if _, err := SpikePeriod(tm[:12], v[:12], 0.5); err == nil {
		t.Fatal("too few spikes must error")
	}
}

func TestMeasurePeakMeanSettled(t *testing.T) {
	tm := []float64{0, 1, 2, 3, 4}
	v := []float64{0, 4, 2, 2, 2}
	if got := Peak(tm, v, 0, 4); got != 4 {
		t.Fatalf("Peak = %v", got)
	}
	if got := Peak(tm, v, 2, 4); got != 2 {
		t.Fatalf("windowed Peak = %v", got)
	}
	if got := Mean(tm, v, 2, 4); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
	if got := SettledValue(tm, v, 0.5); got != 2 {
		t.Fatalf("SettledValue = %v", got)
	}
	if got := Mean(nil, nil, 0, 1); got != 0 {
		t.Fatalf("empty Mean = %v", got)
	}
	if got := SettledValue(nil, nil, 0.1); got != 0 {
		t.Fatalf("empty SettledValue = %v", got)
	}
}
