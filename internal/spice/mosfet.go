package spice

import "math"

// DeviceType distinguishes NMOS and PMOS transistors.
type DeviceType int

// Transistor polarities.
const (
	NMOS DeviceType = iota
	PMOS
)

func (d DeviceType) String() string {
	if d == PMOS {
		return "pmos"
	}
	return "nmos"
}

// MOSParams is a transistor model card. The model is an EKV-style
// continuous interpolation: drain current is
//
//	Id = K·(W/L)·(F(vgs−Vth) − F(vgd−Vth))·(1 + Lambda·|vds|)
//	F(x) = s(x)², s(x) = 2·N·Vt·ln(1+exp(x/(2·N·Vt)))
//
// The factor 2 inside the softplus is the standard EKV interpolation
// constant: squaring s(x) would otherwise double the weak-inversion
// exponential slope, and with it the subthreshold current follows
// exp(x/(N·Vt)) as it should.
//
// which reduces to the square law in strong inversion, interpolates
// smoothly through moderate inversion, and gives an exponential
// subthreshold characteristic with slope factor N. The symmetric
// F(vgs)−F(vgd) form handles both triode and saturation (and reverse
// operation) with one continuous expression, which is what keeps
// Newton–Raphson convergent on feedback-heavy neuron circuits.
//
// The default cards approximate a 65nm low-power process: |Vth|≈0.42V,
// so a symmetric inverter at VDD=1.0V switches near 0.5V — the neuron
// threshold design point used throughout the paper.
type MOSParams struct {
	Type   DeviceType
	Vth    float64 // threshold voltage magnitude (V)
	KP     float64 // transconductance parameter µ·Cox (A/V²)
	Lambda float64 // channel-length modulation (1/V)
	N      float64 // subthreshold slope factor
	Vt     float64 // thermal voltage kT/q (V)
}

// NMOS65 returns the default 65nm-class NMOS card.
func NMOS65() MOSParams {
	return MOSParams{Type: NMOS, Vth: 0.423, KP: 400e-6, Lambda: 0.12, N: 1.45, Vt: 0.02585}
}

// PMOS65 returns the default 65nm-class PMOS card. Mobility is roughly
// half the NMOS value, so a symmetric inverter uses Wp ≈ 2·Wn.
func PMOS65() MOSParams {
	return MOSParams{Type: PMOS, Vth: 0.423, KP: 200e-6, Lambda: 0.14, N: 1.45, Vt: 0.02585}
}

// MOSFET is a three-terminal transistor (body tied to source).
type MOSFET struct {
	name    string
	d, g, s int
	W, L    float64
	P       MOSParams
}

// NMOSDev adds an n-channel transistor with the given geometry (meters).
func (c *Circuit) NMOSDev(name, d, g, s string, w, l float64, p MOSParams) *MOSFET {
	p.Type = NMOS
	m := &MOSFET{name: name, d: c.Node(d), g: c.Node(g), s: c.Node(s), W: w, L: l, P: p}
	c.Add(m)
	return m
}

// PMOSDev adds a p-channel transistor with the given geometry (meters).
func (c *Circuit) PMOSDev(name, d, g, s string, w, l float64, p MOSParams) *MOSFET {
	p.Type = PMOS
	m := &MOSFET{name: name, d: c.Node(d), g: c.Node(g), s: c.Node(s), W: w, L: l, P: p}
	c.Add(m)
	return m
}

// Name implements Element.
func (m *MOSFET) Name() string { return m.name }

// Terminals returns the connected node indices.
func (m *MOSFET) Terminals() []int { return []int{m.d, m.g, m.s} }

// softplus returns s(x) = a·ln(1+exp(x/a)) and its derivative σ(x/a),
// guarding against overflow.
func softplus(x, a float64) (s, ds float64) {
	z := x / a
	switch {
	case z > 40:
		return x, 1
	case z < -40:
		return 0, 0
	default:
		e := math.Exp(z)
		return a * math.Log1p(e), e / (1 + e)
	}
}

// ids evaluates the drain current and its partial derivatives with
// respect to vgs and vds, all in the NMOS reference direction.
func (m *MOSFET) ids(vgs, vds float64) (id, gm, gds float64) {
	p := m.P
	a := 2 * p.N * p.Vt
	k := 0.5 * p.KP * m.W / m.L
	sa, da := softplus(vgs-p.Vth, a)
	sb, db := softplus(vgs-vds-p.Vth, a)
	fa, fb := sa*sa, sb*sb
	dfa := 2 * sa * da
	dfb := 2 * sb * db
	i0 := k * (fa - fb)
	di0dg := k * (dfa - dfb)
	di0dd := k * dfb

	// Smooth |vds| for channel-length modulation so the expression stays
	// differentiable through vds = 0.
	const eps = 1e-8
	sab := math.Sqrt(vds*vds + eps)
	clm := 1 + p.Lambda*sab
	dclm := p.Lambda * vds / sab

	id = i0 * clm
	gm = di0dg * clm
	gds = di0dd*clm + i0*dclm
	return id, gm, gds
}

// Current returns the drain current (positive into the drain for NMOS,
// out of the drain for PMOS) at a solved context.
func (m *MOSFET) Current(ctx *Context) float64 {
	vd, vg, vs := ctx.V(m.d), ctx.V(m.g), ctx.V(m.s)
	pol := 1.0
	if m.P.Type == PMOS {
		pol = -1
	}
	id, _, _ := m.ids(pol*(vg-vs), pol*(vd-vs))
	return pol * id
}

// StampIter implements iterStamper: the transistor linearization is a
// function of the Newton iterate, so the whole stamp is per-iterate
// (including the gmin aid, which gmin stepping varies between solves).
func (m *MOSFET) StampIter(ctx *Context) {
	vd, vg, vs := ctx.V(m.d), ctx.V(m.g), ctx.V(m.s)
	pol := 1.0
	if m.P.Type == PMOS {
		pol = -1
	}
	vgs := pol * (vg - vs)
	vds := pol * (vd - vs)
	id, gm, gds := m.ids(vgs, vds)

	// Junction gmin between drain-source aids DC convergence.
	if ctx.Gmin > 0 {
		ctx.StampConductance(m.d, m.s, ctx.Gmin)
	}

	// Translate back to actual polarity: for PMOS the linearization in
	// terms of the real node voltages keeps the same conductance signs
	// because both the current direction and the controlling voltages
	// flip (pol² = 1); only the equivalent current keeps a pol factor.
	ieq := id - gm*vgs - gds*vds
	// Current pol·id flows drain→source externally.
	ctx.AddA(m.d, m.g, gm)
	ctx.AddA(m.d, m.s, -gm-gds)
	ctx.AddA(m.d, m.d, gds)
	ctx.AddA(m.s, m.g, -gm)
	ctx.AddA(m.s, m.s, gm+gds)
	ctx.AddA(m.s, m.d, -gds)
	ctx.StampCurrent(m.d, m.s, pol*ieq)
}

// Stamp implements Element.
func (m *MOSFET) Stamp(ctx *Context) { m.StampIter(ctx) }
