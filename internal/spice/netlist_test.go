package spice

import (
	"math"
	"strings"
	"testing"
)

func TestParseValue(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"1k", 1e3}, {"2.2meg", 2.2e6}, {"100n", 100e-9}, {"1p", 1e-12},
		{"0.5u", 0.5e-6}, {"3m", 3e-3}, {"1e-9", 1e-9}, {"42", 42},
		{"10pF", 10e-12}, {"1.5K", 1.5e3}, {"2f", 2e-15}, {"1g", 1e9},
		{"-0.4", -0.4}, {"1t", 1e12},
	}
	for _, c := range cases {
		got, err := ParseValue(c.in)
		if err != nil {
			t.Fatalf("ParseValue(%q): %v", c.in, err)
		}
		if math.Abs(got-c.want) > 1e-18*math.Max(1, math.Abs(c.want)) {
			t.Fatalf("ParseValue(%q) = %g, want %g", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "abc", "1x", "k1"} {
		if _, err := ParseValue(bad); err == nil {
			t.Fatalf("ParseValue(%q) should fail", bad)
		}
	}
}

func TestParseNetlistDivider(t *testing.T) {
	deck := `
* simple divider
V1 in 0 DC 1.0
R1 in mid 1k
R2 mid 0 1k   ; lower leg
.end
this line is never read
`
	c, err := ParseNetlist(deck)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := c.OP()
	if err != nil {
		t.Fatal(err)
	}
	almostEqual(t, ctx.V(c.Node("mid")), 0.5, 1e-6, "parsed divider midpoint")
}

func TestParseNetlistInverter(t *testing.T) {
	deck := `
VDD vdd 0 DC 1.0
VIN in 0 DC 0.2
MP out in vdd pmos W=2u L=100n
MN out in 0 nmos W=1u L=100n
`
	c, err := ParseNetlist(deck)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := c.OP()
	if err != nil {
		t.Fatal(err)
	}
	if got := ctx.V(c.Node("out")); got < 0.9 {
		t.Fatalf("inverter with low input should output high, got %.3f", got)
	}
}

func TestParseNetlistWaveforms(t *testing.T) {
	deck := `
V1 a 0 PULSE(0 1 10n 1n 1n 20n 50n)
V2 b 0 SIN(0.5 0.1 1meg)
V3 c 0 PWL(0 0 1u 1 2u 0.5)
I1 0 d SPIKE(200n 25n 50n)
R1 a 0 1k
R2 b 0 1k
R3 c 0 1k
R4 d 0 1k
`
	c, err := ParseNetlist(deck)
	if err != nil {
		t.Fatal(err)
	}
	v1 := c.Element("V1").(*VSource)
	if got := v1.W.At(20e-9); got != 1 {
		t.Fatalf("PULSE at plateau = %v", got)
	}
	v2 := c.Element("V2").(*VSource)
	if got := v2.W.At(0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("SIN offset = %v", got)
	}
	v3 := c.Element("V3").(*VSource)
	if got := v3.W.At(0.5e-6); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("PWL midpoint = %v", got)
	}
	i1 := c.Element("I1").(*ISource)
	if got := i1.W.At(10e-9); math.Abs(got-200e-9) > 1e-15 {
		t.Fatalf("SPIKE plateau = %v", got)
	}
}

func TestParseNetlistBareValueIsDC(t *testing.T) {
	c, err := ParseNetlist("V1 a 0 2.5\nR1 a 0 1k\n")
	if err != nil {
		t.Fatal(err)
	}
	v := c.Element("V1").(*VSource)
	if v.W.At(123) != 2.5 {
		t.Fatal("bare value should parse as DC")
	}
}

func TestParseNetlistOpAmpAndVCVS(t *testing.T) {
	deck := `
VIN in 0 DC 0.3
U1 in out out GAIN=1e4 LO=0 HI=1
E1 e 0 in 0 2.0
RL out 0 10k
RE e 0 10k
`
	c, err := ParseNetlist(deck)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := c.OP()
	if err != nil {
		t.Fatal(err)
	}
	almostEqual(t, ctx.V(c.Node("out")), 0.3, 1e-3, "parsed follower")
	almostEqual(t, ctx.V(c.Node("e")), 0.6, 1e-6, "parsed VCVS")
}

func TestParseNetlistErrors(t *testing.T) {
	cases := []string{
		"R1 a 0",                 // missing value
		"R1 a 0 -5",              // non-positive resistor
		"C1 a 0 0",               // non-positive capacitor
		"X1 a b c",               // unknown card
		"M1 d g s bjt W=1u L=1u", // unknown model
		"M1 d g s nmos W=1u L=0", // bad geometry
		"M1 d g s nmos FOO=1",    // unknown MOS param
		"V1 a 0 PULSE(0 1)",      // too few PULSE args
		"V1 a 0 TRIANGLE(0 1)",   // unknown waveform
		"V1 a 0 PWL(0 0 1u)",     // odd PWL args
		".tran 1n 1u",            // unsupported directive
		"U1 a b out BAD",         // malformed opamp param
	}
	for _, deck := range cases {
		if _, err := ParseNetlist(deck); err == nil {
			t.Fatalf("deck %q should fail to parse", deck)
		}
	}
}

func TestParseNetlistDuplicateName(t *testing.T) {
	// A deck is user input: a duplicate card must surface as a parse
	// error (with the offending line), never as Add's panic.
	deck := "V1 in 0 DC 1\nR1 in out 1k\nR1 out 0 1k\n"
	_, err := ParseNetlist(deck)
	if err == nil {
		t.Fatal("duplicate card should fail to parse")
	}
	if !strings.Contains(err.Error(), "line 3") || !strings.Contains(err.Error(), `"R1"`) {
		t.Fatalf("error should name the line and element, got: %v", err)
	}
}

func TestParseNetlistAxonHillockDeck(t *testing.T) {
	// The full Axon Hillock neuron as a text deck: same topology as
	// neuron.NewAxonHillock().Build(), exercising every card type the
	// neuron circuits need. It must fire.
	deck := `
* Axon Hillock neuron (Fig. 2a)
VDD vdd 0 DC 1.0
VPW vpw 0 DC 0.42
IIN 0 vmem SPIKE(200n 25n 25n)
CMEM vmem 0 1p
CFB vout vmem 1p
MP1 n1 vmem vdd pmos W=2u L=100n
MN3 n1 vmem 0 nmos W=1u L=100n
MP2 vout n1 vdd pmos W=2u L=100n
MN4 vout n1 0 nmos W=1u L=100n
MN1 vmem vout r nmos W=2u L=100n
MN2 r vpw 0 nmos W=1u L=200n
CPN1 n1 0 5f
CPR r 0 2f
.end
`
	c, err := ParseNetlist(deck)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := c.Tran(TranOptions{Dt: 10e-9, Stop: 20e-6, UIC: true})
	if err != nil {
		t.Fatal(err)
	}
	if n := SpikeCount(res.Time, res.V("vout"), 0.5); n < 2 {
		t.Fatalf("parsed AH deck should fire, got %d spikes", n)
	}
}

func TestTokenizeKeepsGroups(t *testing.T) {
	toks := tokenize("V1 a 0 PULSE(0 1, 2 3)")
	if len(toks) != 4 || !strings.HasPrefix(toks[3], "PULSE(") {
		t.Fatalf("tokenize = %v", toks)
	}
}
