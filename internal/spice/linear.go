package spice

import (
	"errors"
	"math"
)

// ErrSingular is returned when the MNA matrix cannot be factored, which
// usually indicates a floating node or an inconsistent netlist.
var ErrSingular = errors.New("spice: singular MNA matrix")

// luSolve solves A·x = b in place using LU decomposition with partial
// pivoting. A and b are overwritten; the solution is returned in b's
// storage, and row pivoting permutes A's row headers (callers that
// reuse A's backing array re-canonicalize the headers — see
// Circuit.assemble). The matrices involved are small (tens of
// unknowns), so a dense direct solve is the right tool. The routine
// allocates nothing: pivoting swaps row headers and b entries in
// place, so no separate pivot array is needed.
func luSolve(a [][]float64, b []float64) error {
	n := len(b)
	for col := 0; col < n; col++ {
		// Partial pivot: pick the largest magnitude in this column.
		pivRow, pivVal := col, math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r][col]); v > pivVal {
				pivRow, pivVal = r, v
			}
		}
		if pivVal < 1e-300 {
			return ErrSingular
		}
		if pivRow != col {
			a[pivRow], a[col] = a[col], a[pivRow]
			b[pivRow], b[col] = b[col], b[pivRow]
		}
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			a[r][col] = 0
			row, prow := a[r], a[col]
			for j := col + 1; j < n; j++ {
				row[j] -= f * prow[j]
			}
			b[r] -= f * b[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		row := a[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * b[j]
		}
		b[i] = s / row[i]
	}
	return nil
}
