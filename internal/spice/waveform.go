package spice

import (
	"fmt"
	"math"
	"sort"
)

// Waveform is a time-dependent source value. Implementations must be
// pure functions of time so that Newton iteration and step subdivision
// can re-evaluate them freely.
type Waveform interface {
	// At returns the source value at time t (seconds).
	At(t float64) float64
}

// DC is a constant waveform.
type DC float64

// At implements Waveform.
func (d DC) At(float64) float64 { return float64(d) }

// Pulse is a SPICE-style periodic pulse with linear rise/fall edges.
// A zero Period makes the pulse one-shot.
type Pulse struct {
	Low, High  float64
	Delay      float64
	Rise, Fall float64
	Width      float64
	Period     float64
}

// At implements Waveform.
func (p Pulse) At(t float64) float64 {
	t -= p.Delay
	if t < 0 {
		return p.Low
	}
	if p.Period > 0 {
		t = math.Mod(t, p.Period)
	}
	rise := p.Rise
	if rise <= 0 {
		rise = 1e-12
	}
	fall := p.Fall
	if fall <= 0 {
		fall = 1e-12
	}
	switch {
	case t < rise:
		return p.Low + (p.High-p.Low)*t/rise
	case t < rise+p.Width:
		return p.High
	case t < rise+p.Width+fall:
		return p.High - (p.High-p.Low)*(t-rise-p.Width)/fall
	default:
		return p.Low
	}
}

// SpikeTrain is a periodic rectangular spike train with short linear
// edges (5% of the width) to keep transient steps well-behaved. It
// models the current-spike stimulus used throughout the paper:
// amplitude Amp, spike width Width, repeating every Period after Delay.
type SpikeTrain struct {
	Amp    float64
	Width  float64
	Period float64
	Delay  float64
}

// At implements Waveform.
func (s SpikeTrain) At(t float64) float64 {
	t -= s.Delay
	if t < 0 {
		return 0
	}
	if s.Period > 0 {
		t = math.Mod(t, s.Period)
	}
	edge := 0.05 * s.Width
	switch {
	case t < edge:
		return s.Amp * t / edge
	case t < s.Width-edge:
		return s.Amp
	case t < s.Width:
		return s.Amp * (s.Width - t) / edge
	default:
		return 0
	}
}

// PWL is a piecewise-linear waveform through (T[i], V[i]) points. Before
// the first point it holds V[0]; after the last it holds V[n-1].
type PWL struct {
	T []float64
	V []float64
}

// NewPWL builds a PWL waveform, validating that times are strictly
// increasing.
func NewPWL(t, v []float64) (PWL, error) {
	if len(t) != len(v) || len(t) == 0 {
		return PWL{}, fmt.Errorf("spice: PWL needs equal non-empty T/V, got %d/%d", len(t), len(v))
	}
	for i := 1; i < len(t); i++ {
		if t[i] <= t[i-1] {
			return PWL{}, fmt.Errorf("spice: PWL times must be strictly increasing at index %d", i)
		}
	}
	return PWL{T: t, V: v}, nil
}

// At implements Waveform.
func (p PWL) At(t float64) float64 {
	n := len(p.T)
	if n == 0 {
		return 0
	}
	if t <= p.T[0] {
		return p.V[0]
	}
	if t >= p.T[n-1] {
		return p.V[n-1]
	}
	i := sort.SearchFloat64s(p.T, t)
	// p.T[i-1] < t <= p.T[i]
	f := (t - p.T[i-1]) / (p.T[i] - p.T[i-1])
	return p.V[i-1] + f*(p.V[i]-p.V[i-1])
}

// Sine is a sinusoidal waveform Offset + Amp·sin(2πf(t−Delay)).
type Sine struct {
	Offset, Amp, Freq, Delay float64
}

// At implements Waveform.
func (s Sine) At(t float64) float64 {
	if t < s.Delay {
		return s.Offset
	}
	return s.Offset + s.Amp*math.Sin(2*math.Pi*s.Freq*(t-s.Delay))
}
