// Package spice implements a small SPICE-class analog circuit simulator:
// Modified Nodal Analysis (MNA) assembly, Newton–Raphson iteration for
// nonlinear devices, dense LU solving, DC operating-point analysis with
// gmin and source stepping, and fixed-step transient analysis with
// backward-Euler or trapezoidal companion models.
//
// It is the substrate standing in for HSPICE in the paper reproduction:
// large enough to simulate the Axon Hillock and voltage-amplifier I&F
// neuron circuits, current-mirror drivers, comparators, and op-amp
// feedback loops, and no larger.
package spice

import (
	"fmt"
	"math"
	"sort"
)

// Ground is the canonical name of the reference node. The alias "gnd"
// is accepted by Node as well.
const Ground = "0"

// Circuit is a netlist under construction. Add devices with the R, C,
// V, I, NMOS, PMOS, OpAmp, ... builder methods, then run OP, DCSweep or
// Tran. Element values (resistances, geometries, model cards) must stay
// fixed for the duration of one analysis — only source waveforms vary,
// as functions of time. Change values between analyses freely; each
// analysis rebuilds its stamped base from the current values.
type Circuit struct {
	nodeIndex map[string]int
	nodeNames []string
	elements  []Element
	elemIndex map[string]Element
	branches  int

	// GShunt is a conductance added from every node to ground during
	// every analysis. It prevents floating-node singularities (e.g. a
	// membrane capacitor driven only by a current source). Default 1e-9.
	GShunt float64

	// fullRestamp disables the incremental stamping tiers: every element
	// re-stamps its full contribution on every Newton iterate, as the
	// pre-incremental engine did. Kept as a reference path for the
	// equivalence tests (see incremental_test.go).
	fullRestamp bool
}

// New returns an empty circuit.
func New() *Circuit {
	return &Circuit{
		nodeIndex: make(map[string]int),
		elemIndex: make(map[string]Element),
		GShunt:    1e-9,
	}
}

// Node interns a node name and returns its index, creating it on first
// use. Ground ("0" or "gnd", any case) maps to index -1.
func (c *Circuit) Node(name string) int {
	if name == Ground || name == "gnd" || name == "GND" {
		return -1
	}
	if i, ok := c.nodeIndex[name]; ok {
		return i
	}
	i := len(c.nodeNames)
	c.nodeIndex[name] = i
	c.nodeNames = append(c.nodeNames, name)
	return i
}

// NodeNames returns the non-ground node names in index order.
func (c *Circuit) NodeNames() []string {
	out := make([]string, len(c.nodeNames))
	copy(out, c.nodeNames)
	return out
}

// NumNodes returns the number of non-ground nodes.
func (c *Circuit) NumNodes() int { return len(c.nodeNames) }

// NumUnknowns returns the full MNA system size (nodes + branch currents).
func (c *Circuit) NumUnknowns() int { return len(c.nodeNames) + c.branches }

// Add registers an element. Elements that carry branch-current unknowns
// (voltage sources, op-amps) are assigned their branch index here.
// Duplicate element names panic: a shadowed device can never be looked
// up, measured, or swept, so registering one is a programming error
// (parsers should check Element(name) first and report their own error,
// as ParseNetlist does).
func (c *Circuit) Add(e Element) {
	name := e.Name()
	if _, dup := c.elemIndex[name]; dup {
		panic(fmt.Sprintf("spice: duplicate element name %q", name))
	}
	if b, ok := e.(branched); ok {
		b.setBranch(c.branches)
		c.branches += b.numBranches()
	}
	c.elements = append(c.elements, e)
	c.elemIndex[name] = e
}

// Elements returns the registered elements in insertion order.
func (c *Circuit) Elements() []Element { return c.elements }

// Element finds a registered element by name, or nil.
func (c *Circuit) Element(name string) Element { return c.elemIndex[name] }

// Element is anything that can stamp its (linearized) companion model
// into the MNA system.
type Element interface {
	// Name identifies the element for lookup and error messages.
	Name() string
	// Stamp adds the element's full contribution to ctx.A and ctx.B
	// using the current Newton iterate ctx.X and, in transient mode, the
	// previous accepted solution ctx.XPrev. Elements that also implement
	// the incremental tiers below must keep Stamp equal to the sum of
	// their tier stamps; the engine calls the tiers when available and
	// falls back to Stamp per Newton iterate otherwise.
	Stamp(ctx *Context)
}

// The incremental stamping tiers. The solve pipeline splits assembly
// into three levels so the Newton inner loop re-stamps only what can
// actually change:
//
//   - constStamper: contributions fixed for a whole analysis — pure
//     element values and source/branch topology (R, VCVS, the ±1 source
//     rows). Stamped once per analysis into the base system.
//   - stepStamper: contributions fixed across the Newton iterates of
//     one solve — functions of Time, Dt, XPrev and SrcScale but not of
//     the iterate X (capacitor companions, source waveform values).
//     Stamped once per solve on top of the base.
//   - iterStamper: contributions that depend on the Newton iterate X
//     (MOSFETs, op-amp limiting). Re-stamped every iterate.
//
// An element may implement any subset; each implemented tier is called
// exactly once per its cadence.
type constStamper interface{ StampConst(ctx *Context) }
type stepStamper interface{ StampStep(ctx *Context) }
type iterStamper interface{ StampIter(ctx *Context) }

// branched is implemented by elements that introduce extra MNA unknowns
// (branch currents).
type branched interface {
	setBranch(idx int)
	numBranches() int
}

// stateful is implemented by elements with internal dynamic state that
// must advance when a transient step is accepted (e.g. the trapezoidal
// capacitor's previous current).
type stateful interface {
	// accept is called once per accepted transient point with the
	// accepted solution.
	accept(ctx *Context)
	// reset restores the element to its pre-analysis state.
	reset()
}

// Context carries one MNA assembly: the system A·x = B plus the solver
// state visible to device stamps.
type Context struct {
	N     int // number of node unknowns
	A     [][]float64
	B     []float64
	X     []float64 // current Newton iterate
	XPrev []float64 // previous accepted transient solution (nil in DC)

	Time     float64 // evaluation time (s)
	Dt       float64 // timestep (s); 0 in DC analyses
	DC       bool    // true for operating-point / DC-sweep assembly
	Gmin     float64 // junction gmin added by nonlinear devices
	SrcScale float64 // independent-source scale factor (source stepping)
	Method   Integrator

	ws *workspace // solver workspace, reused across iterates and steps
}

// workspace holds every buffer the solve pipeline needs — the stamped
// base and step systems, Newton scratch vectors, and subdivision save
// slots — allocated once per analysis context so the Newton inner loop
// and the transient stepper are allocation-free.
type workspace struct {
	n int

	aBack []float64 // backing array of ctx.A (row headers are reset per iterate)

	// Analysis-constant stamps: GShunt + constStamper contributions.
	baseA, baseB []float64
	baseRows     [][]float64

	// base + stepStamper contributions, rebuilt at the top of each solve.
	stepA, stepB []float64
	stepRows     [][]float64

	// Newton scratch and transient-subdivision save slots.
	xNew, saveX, savePrev []float64

	// Element partition by stamping tier (legacy: elements implementing
	// no tier interface, re-stamped fully per iterate).
	consts, steps, iters, legacy []Element
}

func rowViews(back []float64, n int) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = back[i*n : (i+1)*n]
	}
	return rows
}

// Integrator selects the transient companion-model discretization.
type Integrator int

const (
	// BackwardEuler is robust and strongly damped (default).
	BackwardEuler Integrator = iota
	// Trapezoidal is second-order accurate but can ring on stiff steps.
	Trapezoidal
)

func (m Integrator) String() string {
	switch m {
	case BackwardEuler:
		return "backward-euler"
	case Trapezoidal:
		return "trapezoidal"
	default:
		return fmt.Sprintf("integrator(%d)", int(m))
	}
}

// V returns the node voltage of MNA index i in the current iterate
// (0 for ground).
func (ctx *Context) V(i int) float64 {
	if i < 0 {
		return 0
	}
	return ctx.X[i]
}

// VPrev returns the previous accepted node voltage (0 for ground or in
// DC analyses).
func (ctx *Context) VPrev(i int) float64 {
	if i < 0 || ctx.XPrev == nil {
		return 0
	}
	return ctx.XPrev[i]
}

// AddA accumulates A[i][j] += v, silently dropping ground rows/columns.
func (ctx *Context) AddA(i, j int, v float64) {
	if i < 0 || j < 0 {
		return
	}
	ctx.A[i][j] += v
}

// AddB accumulates B[i] += v, silently dropping the ground row.
func (ctx *Context) AddB(i int, v float64) {
	if i < 0 {
		return
	}
	ctx.B[i] += v
}

// StampConductance stamps a two-terminal conductance g between nodes a
// and b.
func (ctx *Context) StampConductance(a, b int, g float64) {
	ctx.AddA(a, a, g)
	ctx.AddA(b, b, g)
	ctx.AddA(a, b, -g)
	ctx.AddA(b, a, -g)
}

// StampCurrent stamps an independent current i flowing from node a to
// node b (leaving a, entering b).
func (ctx *Context) StampCurrent(a, b int, i float64) {
	ctx.AddB(a, -i)
	ctx.AddB(b, i)
}

// BranchIndex converts a branch number into its MNA unknown index.
func (ctx *Context) BranchIndex(branch int) int { return ctx.N + branch }

// newContext allocates an assembly context for the circuit, partitions
// the elements by stamping tier, and builds the analysis-constant base
// system from the circuit's current element values.
func (c *Circuit) newContext() *Context {
	n := c.NumUnknowns()
	ws := &workspace{
		n:     n,
		aBack: make([]float64, n*n),
		baseA: make([]float64, n*n),
		baseB: make([]float64, n),
		stepA: make([]float64, n*n),
		stepB: make([]float64, n),
		xNew:  make([]float64, n),
		saveX: make([]float64, n),
		// savePrev doubles as the XPrev save slot in transient
		// subdivision; allocate it with everything else.
		savePrev: make([]float64, n),
	}
	ws.baseRows = rowViews(ws.baseA, n)
	ws.stepRows = rowViews(ws.stepA, n)
	for _, e := range c.elements {
		split := false
		if !c.fullRestamp {
			if _, ok := e.(constStamper); ok {
				ws.consts, split = append(ws.consts, e), true
			}
			if _, ok := e.(stepStamper); ok {
				ws.steps, split = append(ws.steps, e), true
			}
			if _, ok := e.(iterStamper); ok {
				ws.iters, split = append(ws.iters, e), true
			}
		}
		if !split {
			ws.legacy = append(ws.legacy, e)
		}
	}
	ctx := &Context{
		N:        c.NumNodes(),
		A:        rowViews(ws.aBack, n),
		B:        make([]float64, n),
		X:        make([]float64, n),
		SrcScale: 1,
		ws:       ws,
	}
	c.prepareBase(ctx)
	return ctx
}

// stampInto redirects ctx's stamping target to the given system, runs
// the stamps, and restores the target. Stamp helpers (AddA, AddB, ...)
// always write through ctx.A/ctx.B, so tier stamps reuse them verbatim.
func (ctx *Context) stampInto(rows [][]float64, b []float64, stamp func()) {
	saveA, saveB := ctx.A, ctx.B
	ctx.A, ctx.B = rows, b
	stamp()
	ctx.A, ctx.B = saveA, saveB
}

// prepareBase (re)builds the analysis-constant system: the global
// ground shunt plus every constStamper contribution.
func (c *Circuit) prepareBase(ctx *Context) {
	ws := ctx.ws
	for i := range ws.baseA {
		ws.baseA[i] = 0
	}
	for i := range ws.baseB {
		ws.baseB[i] = 0
	}
	// Global shunt to ground keeps otherwise-floating nodes anchored.
	if c.GShunt > 0 {
		for i := 0; i < ctx.N; i++ {
			ws.baseA[i*ws.n+i] += c.GShunt
		}
	}
	ctx.stampInto(ws.baseRows, ws.baseB, func() {
		for _, e := range ws.consts {
			e.(constStamper).StampConst(ctx)
		}
	})
}

// beginStep rebuilds the per-solve system: the base plus every
// stepStamper contribution at the solve's (Time, Dt, XPrev, SrcScale).
// Called at the top of each Newton solve.
func (c *Circuit) beginStep(ctx *Context) {
	ws := ctx.ws
	copy(ws.stepA, ws.baseA)
	copy(ws.stepB, ws.baseB)
	ctx.stampInto(ws.stepRows, ws.stepB, func() {
		for _, e := range ws.steps {
			e.(stepStamper).StampStep(ctx)
		}
	})
}

// assemble loads the per-solve system into the iterate matrix and
// re-stamps only the iterate-dependent contributions. LU pivoting
// permutes ctx.A's row headers in place, so they are re-canonicalized
// against the backing array before the flat copy.
func (c *Circuit) assemble(ctx *Context) {
	ws := ctx.ws
	for i := range ctx.A {
		ctx.A[i] = ws.aBack[i*ws.n : (i+1)*ws.n]
	}
	copy(ws.aBack, ws.stepA)
	copy(ctx.B, ws.stepB)
	for _, e := range ws.iters {
		e.(iterStamper).StampIter(ctx)
	}
	for _, e := range ws.legacy {
		e.Stamp(ctx)
	}
}

// Validate performs basic netlist sanity checks: nodes that appear in
// only one device terminal (excluding ground). It returns nil when the
// netlist looks well-formed. (Duplicate element names are rejected at
// Add time and can no longer reach Validate.)
func (c *Circuit) Validate() error {
	degree := make(map[int]int)
	for _, e := range c.elements {
		if t, ok := e.(interface{ Terminals() []int }); ok {
			for _, n := range t.Terminals() {
				if n >= 0 {
					degree[n]++
				}
			}
		}
	}
	var lonely []string
	for name, idx := range c.nodeIndex {
		if degree[idx] < 2 {
			lonely = append(lonely, name)
		}
	}
	sort.Strings(lonely)
	if len(lonely) > 0 {
		return fmt.Errorf("spice: nodes with fewer than two connections: %v", lonely)
	}
	return nil
}

// maxAbs returns max(|v|) over the slice.
func maxAbs(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}
