// Package spice implements a small SPICE-class analog circuit simulator:
// Modified Nodal Analysis (MNA) assembly, Newton–Raphson iteration for
// nonlinear devices, dense LU solving, DC operating-point analysis with
// gmin and source stepping, and fixed-step transient analysis with
// backward-Euler or trapezoidal companion models.
//
// It is the substrate standing in for HSPICE in the paper reproduction:
// large enough to simulate the Axon Hillock and voltage-amplifier I&F
// neuron circuits, current-mirror drivers, comparators, and op-amp
// feedback loops, and no larger.
package spice

import (
	"fmt"
	"math"
	"sort"
)

// Ground is the canonical name of the reference node. The alias "gnd"
// is accepted by Node as well.
const Ground = "0"

// Circuit is a netlist under construction. Add devices with the R, C,
// V, I, NMOS, PMOS, OpAmp, ... builder methods, then run OP, DCSweep or
// Tran.
type Circuit struct {
	nodeIndex map[string]int
	nodeNames []string
	elements  []Element
	branches  int

	// GShunt is a conductance added from every node to ground during
	// every analysis. It prevents floating-node singularities (e.g. a
	// membrane capacitor driven only by a current source). Default 1e-9.
	GShunt float64
}

// New returns an empty circuit.
func New() *Circuit {
	return &Circuit{
		nodeIndex: make(map[string]int),
		GShunt:    1e-9,
	}
}

// Node interns a node name and returns its index, creating it on first
// use. Ground ("0" or "gnd", any case) maps to index -1.
func (c *Circuit) Node(name string) int {
	if name == Ground || name == "gnd" || name == "GND" {
		return -1
	}
	if i, ok := c.nodeIndex[name]; ok {
		return i
	}
	i := len(c.nodeNames)
	c.nodeIndex[name] = i
	c.nodeNames = append(c.nodeNames, name)
	return i
}

// NodeNames returns the non-ground node names in index order.
func (c *Circuit) NodeNames() []string {
	out := make([]string, len(c.nodeNames))
	copy(out, c.nodeNames)
	return out
}

// NumNodes returns the number of non-ground nodes.
func (c *Circuit) NumNodes() int { return len(c.nodeNames) }

// NumUnknowns returns the full MNA system size (nodes + branch currents).
func (c *Circuit) NumUnknowns() int { return len(c.nodeNames) + c.branches }

// Add registers an element. Elements that carry branch-current unknowns
// (voltage sources, op-amps) are assigned their branch index here.
func (c *Circuit) Add(e Element) {
	if b, ok := e.(branched); ok {
		b.setBranch(c.branches)
		c.branches += b.numBranches()
	}
	c.elements = append(c.elements, e)
}

// Elements returns the registered elements in insertion order.
func (c *Circuit) Elements() []Element { return c.elements }

// Element finds a registered element by name, or nil.
func (c *Circuit) Element(name string) Element {
	for _, e := range c.elements {
		if e.Name() == name {
			return e
		}
	}
	return nil
}

// Element is anything that can stamp its (linearized) companion model
// into the MNA system.
type Element interface {
	// Name identifies the element for lookup and error messages.
	Name() string
	// Stamp adds the element's contribution to ctx.A and ctx.B using the
	// current Newton iterate ctx.X and, in transient mode, the previous
	// accepted solution ctx.XPrev.
	Stamp(ctx *Context)
}

// branched is implemented by elements that introduce extra MNA unknowns
// (branch currents).
type branched interface {
	setBranch(idx int)
	numBranches() int
}

// stateful is implemented by elements with internal dynamic state that
// must advance when a transient step is accepted (e.g. the trapezoidal
// capacitor's previous current).
type stateful interface {
	// accept is called once per accepted transient point with the
	// accepted solution.
	accept(ctx *Context)
	// reset restores the element to its pre-analysis state.
	reset()
}

// Context carries one MNA assembly: the system A·x = B plus the solver
// state visible to device stamps.
type Context struct {
	N     int // number of node unknowns
	A     [][]float64
	B     []float64
	X     []float64 // current Newton iterate
	XPrev []float64 // previous accepted transient solution (nil in DC)

	Time     float64 // evaluation time (s)
	Dt       float64 // timestep (s); 0 in DC analyses
	DC       bool    // true for operating-point / DC-sweep assembly
	Gmin     float64 // junction gmin added by nonlinear devices
	SrcScale float64 // independent-source scale factor (source stepping)
	Method   Integrator
}

// Integrator selects the transient companion-model discretization.
type Integrator int

const (
	// BackwardEuler is robust and strongly damped (default).
	BackwardEuler Integrator = iota
	// Trapezoidal is second-order accurate but can ring on stiff steps.
	Trapezoidal
)

func (m Integrator) String() string {
	switch m {
	case BackwardEuler:
		return "backward-euler"
	case Trapezoidal:
		return "trapezoidal"
	default:
		return fmt.Sprintf("integrator(%d)", int(m))
	}
}

// V returns the node voltage of MNA index i in the current iterate
// (0 for ground).
func (ctx *Context) V(i int) float64 {
	if i < 0 {
		return 0
	}
	return ctx.X[i]
}

// VPrev returns the previous accepted node voltage (0 for ground or in
// DC analyses).
func (ctx *Context) VPrev(i int) float64 {
	if i < 0 || ctx.XPrev == nil {
		return 0
	}
	return ctx.XPrev[i]
}

// AddA accumulates A[i][j] += v, silently dropping ground rows/columns.
func (ctx *Context) AddA(i, j int, v float64) {
	if i < 0 || j < 0 {
		return
	}
	ctx.A[i][j] += v
}

// AddB accumulates B[i] += v, silently dropping the ground row.
func (ctx *Context) AddB(i int, v float64) {
	if i < 0 {
		return
	}
	ctx.B[i] += v
}

// StampConductance stamps a two-terminal conductance g between nodes a
// and b.
func (ctx *Context) StampConductance(a, b int, g float64) {
	ctx.AddA(a, a, g)
	ctx.AddA(b, b, g)
	ctx.AddA(a, b, -g)
	ctx.AddA(b, a, -g)
}

// StampCurrent stamps an independent current i flowing from node a to
// node b (leaving a, entering b).
func (ctx *Context) StampCurrent(a, b int, i float64) {
	ctx.AddB(a, -i)
	ctx.AddB(b, i)
}

// BranchIndex converts a branch number into its MNA unknown index.
func (ctx *Context) BranchIndex(branch int) int { return ctx.N + branch }

// newContext allocates an assembly context for the circuit.
func (c *Circuit) newContext() *Context {
	n := c.NumUnknowns()
	a := make([][]float64, n)
	backing := make([]float64, n*n)
	for i := range a {
		a[i] = backing[i*n : (i+1)*n]
	}
	return &Context{
		N:        c.NumNodes(),
		A:        a,
		B:        make([]float64, n),
		X:        make([]float64, n),
		SrcScale: 1,
	}
}

// assemble clears and re-stamps the full system for the current iterate.
func (c *Circuit) assemble(ctx *Context) {
	n := len(ctx.B)
	for i := 0; i < n; i++ {
		row := ctx.A[i]
		for j := range row {
			row[j] = 0
		}
		ctx.B[i] = 0
	}
	// Global shunt to ground keeps otherwise-floating nodes anchored.
	if c.GShunt > 0 {
		for i := 0; i < ctx.N; i++ {
			ctx.A[i][i] += c.GShunt
		}
	}
	for _, e := range c.elements {
		e.Stamp(ctx)
	}
}

// Validate performs basic netlist sanity checks: duplicate element
// names and nodes that appear in only one device terminal (excluding
// ground). It returns nil when the netlist looks well-formed.
func (c *Circuit) Validate() error {
	seen := make(map[string]bool, len(c.elements))
	for _, e := range c.elements {
		if seen[e.Name()] {
			return fmt.Errorf("spice: duplicate element name %q", e.Name())
		}
		seen[e.Name()] = true
	}
	degree := make(map[int]int)
	for _, e := range c.elements {
		if t, ok := e.(interface{ Terminals() []int }); ok {
			for _, n := range t.Terminals() {
				if n >= 0 {
					degree[n]++
				}
			}
		}
	}
	var lonely []string
	for name, idx := range c.nodeIndex {
		if degree[idx] < 2 {
			lonely = append(lonely, name)
		}
	}
	sort.Strings(lonely)
	if len(lonely) > 0 {
		return fmt.Errorf("spice: nodes with fewer than two connections: %v", lonely)
	}
	return nil
}

// maxAbs returns max(|v|) over the slice.
func maxAbs(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}
