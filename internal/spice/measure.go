package spice

import (
	"fmt"
	"math"
)

// Crossings returns the times at which waveform v crosses level in the
// given direction (rising when rising is true), linearly interpolated
// between samples.
func Crossings(t, v []float64, level float64, rising bool) []float64 {
	var out []float64
	for i := 1; i < len(v) && i < len(t); i++ {
		a, b := v[i-1], v[i]
		crossed := (rising && a < level && b >= level) || (!rising && a > level && b <= level)
		if !crossed {
			continue
		}
		f := 0.0
		if b != a {
			f = (level - a) / (b - a)
		}
		out = append(out, t[i-1]+f*(t[i]-t[i-1]))
	}
	return out
}

// FirstCrossing returns the first crossing time, or an error if the
// waveform never crosses the level.
func FirstCrossing(t, v []float64, level float64, rising bool) (float64, error) {
	xs := Crossings(t, v, level, rising)
	if len(xs) == 0 {
		dir := "falling"
		if rising {
			dir = "rising"
		}
		return 0, fmt.Errorf("spice: no %s crossing of %.4g", dir, level)
	}
	return xs[0], nil
}

// SpikeCount counts full output spikes: rising crossings of level that
// are each followed by a falling crossing.
func SpikeCount(t, v []float64, level float64) int {
	rise := Crossings(t, v, level, true)
	fall := Crossings(t, v, level, false)
	n := 0
	fi := 0
	for _, r := range rise {
		for fi < len(fall) && fall[fi] <= r {
			fi++
		}
		if fi < len(fall) {
			n++
			fi++
		}
	}
	return n
}

// SpikePeriod estimates the steady-state firing period from the median
// interval between successive rising crossings. It needs at least three
// spikes.
func SpikePeriod(t, v []float64, level float64) (float64, error) {
	rise := Crossings(t, v, level, true)
	if len(rise) < 3 {
		return 0, fmt.Errorf("spice: need ≥3 spikes to estimate period, got %d", len(rise))
	}
	intervals := make([]float64, 0, len(rise)-1)
	for i := 1; i < len(rise); i++ {
		intervals = append(intervals, rise[i]-rise[i-1])
	}
	// Median by selection (tiny slices).
	for i := 0; i < len(intervals); i++ {
		for j := i + 1; j < len(intervals); j++ {
			if intervals[j] < intervals[i] {
				intervals[i], intervals[j] = intervals[j], intervals[i]
			}
		}
	}
	return intervals[len(intervals)/2], nil
}

// Peak returns the maximum of v between times t0 and t1 (inclusive).
func Peak(t, v []float64, t0, t1 float64) float64 {
	peak := math.Inf(-1)
	for i := range v {
		if i >= len(t) || t[i] < t0 {
			continue
		}
		if t[i] > t1 {
			break
		}
		if v[i] > peak {
			peak = v[i]
		}
	}
	return peak
}

// Mean returns the average of v between times t0 and t1 (inclusive).
func Mean(t, v []float64, t0, t1 float64) float64 {
	sum, n := 0.0, 0
	for i := range v {
		if i >= len(t) || t[i] < t0 {
			continue
		}
		if t[i] > t1 {
			break
		}
		sum += v[i]
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// SettledValue returns the mean over the final fraction (e.g. 0.1 = last
// 10%) of the waveform, a robust "final value" estimate.
func SettledValue(t, v []float64, finalFraction float64) float64 {
	if len(t) == 0 {
		return 0
	}
	t1 := t[len(t)-1]
	t0 := t1 * (1 - finalFraction)
	return Mean(t, v, t0, t1)
}
