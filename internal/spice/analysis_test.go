package spice

import (
	"bytes"
	"math"
	"regexp"
	"strconv"
	"testing"
)

// rcCircuit builds the 1 kΩ / 1 µF step-response fixture used by the
// transient grid tests (tau = 1 ms).
func rcCircuit() *Circuit {
	c := New()
	c.V("V1", "in", "0", DC(1.0))
	c.R("R1", "in", "out", 1e3)
	c.C("C1", "out", "0", 1e-6)
	return c
}

// TestTranFinalPartialStep: a Stop that is not an integer multiple of
// Dt must end with a short step to exactly Stop instead of silently
// truncating the run (the old round(Stop/Dt)+1 grid ended Stop=1 ms,
// Dt=0.3 ms at t=0.9 ms).
func TestTranFinalPartialStep(t *testing.T) {
	res, err := rcCircuit().Tran(TranOptions{Dt: 0.3e-3, Stop: 1.0e-3, UIC: true})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0.3e-3, 0.6e-3, 0.9e-3, 1.0e-3}
	if len(res.Time) != len(want) {
		t.Fatalf("time grid %v, want %v", res.Time, want)
	}
	for i, w := range want {
		if math.Abs(res.Time[i]-w) > 1e-12 {
			t.Fatalf("time[%d] = %g, want %g (grid %v)", i, res.Time[i], w, res.Time)
		}
	}
	// The final point must carry a real solve: V(out) at t = tau is
	// 1 − e⁻¹ within integration error.
	v := res.V("out")
	if math.Abs(v[len(v)-1]-(1-math.Exp(-1))) > 0.05 {
		t.Fatalf("V(out) at Stop = %g, want ≈ %g", v[len(v)-1], 1-math.Exp(-1))
	}
}

// TestTranExactMultipleGrid: when Stop is an exact multiple of Dt the
// grid must end exactly at Stop with no extra sliver step.
func TestTranExactMultipleGrid(t *testing.T) {
	res, err := rcCircuit().Tran(TranOptions{Dt: 0.25e-3, Stop: 1.0e-3, UIC: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Time) != 5 {
		t.Fatalf("expected 5 points, got %d: %v", len(res.Time), res.Time)
	}
	if math.Abs(res.Time[4]-1.0e-3) > 1e-12 {
		t.Fatalf("last time %g, want 1e-3", res.Time[4])
	}
}

// TestTranNoOvershoot: the old rounding also overshot Stop when the
// ratio rounded up (Stop=0.8 ms, Dt=0.3 ms simulated to 0.9 ms); the
// grid must never step past Stop.
func TestTranNoOvershoot(t *testing.T) {
	res, err := rcCircuit().Tran(TranOptions{Dt: 0.3e-3, Stop: 0.8e-3, UIC: true})
	if err != nil {
		t.Fatal(err)
	}
	last := res.Time[len(res.Time)-1]
	if math.Abs(last-0.8e-3) > 1e-12 {
		t.Fatalf("last time %g, want exactly Stop=0.8e-3 (grid %v)", last, res.Time)
	}
	for _, tt := range res.Time {
		if tt > 0.8e-3+1e-12 {
			t.Fatalf("grid steps past Stop: %v", res.Time)
		}
	}
}

// TestDebugNRReportsUnscaledDelta: the non-convergence diagnostic must
// report the last *unscaled* Newton update, captured before the iterate
// absorbs it. The old code computed xNew − X after X was updated, which
// at damping scale 1 always printed ~0 — useless. Here a linear solve
// from a slightly perturbed start converges arithmetically in one
// iteration but fails the tolerance check at MaxIter=1, and the
// diagnostic must name the true ~1 mV delta.
func TestDebugNRReportsUnscaledDelta(t *testing.T) {
	c := New()
	c.V("V1", "in", "0", DC(1.0))
	c.R("R1", "in", "mid", 1e3)
	c.R("R2", "mid", "0", 1e3)
	ctx, err := c.OP()
	if err != nil {
		t.Fatal(err)
	}
	ctx.X[c.Node("mid")] += 1e-3

	var buf bytes.Buffer
	oldDebug, oldOut := debugNR, debugOut
	debugNR, debugOut = true, &buf
	defer func() { debugNR, debugOut = oldDebug, oldOut }()

	if err := c.solveNewton(ctx, NROptions{MaxIter: 1}); err == nil {
		t.Fatal("expected non-convergence at MaxIter=1")
	}
	m := regexp.MustCompile(`worst delta ([0-9.eE+-]+)`).FindStringSubmatch(buf.String())
	if m == nil {
		t.Fatalf("no worst-delta diagnostic in %q", buf.String())
	}
	worst, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("unparsable delta %q", m[1])
	}
	// The true unscaled update undoes the 1 mV perturbation; the stale
	// computation would report ~0 here.
	if worst < 1e-4 || worst > 1e-2 {
		t.Fatalf("diagnostic delta %g, want ≈ 1e-3 (stale post-update delta would be ~0)", worst)
	}
}
