package spice

import "snnfi/internal/obs"

// Solver activity counters, process-wide. The engine is used through
// free-standing Circuit values created deep inside characterization
// sweeps, so the counters live at package level (like debugNR) rather
// than threading a registry through every Circuit: Instrument publishes
// them into a campaign's registry once, at startup.
//
// They count work, not time — one atomic add per solve/iterate, no
// allocation — so TestSolveNewtonAllocationFree's zero-alloc contract
// holds with telemetry compiled in.
var metrics struct {
	// solves: completed solveNewton calls (converged or not). Each one
	// performed exactly one beginStep full stamp.
	solves obs.Counter
	// newtonIters: Newton iterations across all solves.
	newtonIters obs.Counter
	// restamps: per-iterate assemble passes (nonlinear-device restamps).
	restamps obs.Counter
}

// Instrument publishes the solver counters into r as "spice.solves",
// "spice.newton_iters" and "spice.restamps". Nil registry is a no-op;
// calling again with another registry re-publishes the same atomics.
func Instrument(r *obs.Registry) {
	r.RegisterCounter("spice.solves", &metrics.solves)
	r.RegisterCounter("spice.newton_iters", &metrics.newtonIters)
	r.RegisterCounter("spice.restamps", &metrics.restamps)
}

// SolverCounts reports the process-wide solver activity so far, for
// tests and callers without a registry.
func SolverCounts() (solves, newtonIters, restamps int64) {
	return metrics.solves.Value(), metrics.newtonIters.Value(), metrics.restamps.Value()
}
