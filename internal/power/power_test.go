package power

import (
	"math"
	"testing"
)

func TestComponentAnchors(t *testing.T) {
	// The paper's reported per-component overheads.
	base := AHNeuron()
	if r := AHNeuronUpsized().PowerUW / base.PowerUW; math.Abs(r-1.25) > 1e-9 {
		t.Fatalf("upsized neuron power ratio %v, want 1.25 (paper: 25%%)", r)
	}
	if r := AHNeuronComparator().PowerUW / base.PowerUW; math.Abs(r-1.11) > 1e-9 {
		t.Fatalf("comparator neuron power ratio %v, want 1.11 (paper: 11%%)", r)
	}
	if r := RobustDriver().PowerUW / Driver().PowerUW; math.Abs(r-1.03) > 1e-9 {
		t.Fatalf("robust driver power ratio %v, want 1.03 (paper: 3%%)", r)
	}
}

func TestNeuronAreaDominatedByCapacitors(t *testing.T) {
	// The paper's "negligible area overhead" claims rest on this.
	base := AHNeuron()
	up := AHNeuronUpsized()
	if inc := (up.AreaUm2 - base.AreaUm2) / base.AreaUm2; inc > 0.02 {
		t.Fatalf("upsized neuron area +%.1f%%, paper calls it negligible", 100*inc)
	}
	cmp := AHNeuronComparator()
	if inc := (cmp.AreaUm2 - base.AreaUm2) / base.AreaUm2; inc > 0.02 {
		t.Fatalf("comparator neuron area +%.1f%%, paper calls it negligible", 100*inc)
	}
}

func TestSystemTotals(t *testing.T) {
	s := BaselineSystem(10)
	if len(s.Components) != 20 {
		t.Fatalf("10 neurons + 10 drivers, got %d components", len(s.Components))
	}
	wantP := 10 * (AHNeuron().PowerUW + Driver().PowerUW)
	if math.Abs(s.PowerUW()-wantP) > 1e-9 {
		t.Fatalf("system power %v, want %v", s.PowerUW(), wantP)
	}
	if s.AreaUm2() <= 0 {
		t.Fatal("system area must be positive")
	}
}

func TestBandgapAreaAt200Neurons(t *testing.T) {
	// §V-B1: "the area overhead incurred by the bandgap circuit is 65%"
	// for the 200-neuron implementation; the capacitors also pull in the
	// driver area, so accept the low 60s.
	base := BaselineSystem(200)
	sys := DefendedSystem(200, DefenseSelection{SharedBandgap: true})
	overhead := 100 * (sys.AreaUm2() - base.AreaUm2()) / base.AreaUm2()
	if overhead < 55 || overhead > 70 {
		t.Fatalf("bandgap area overhead %.1f%%, want ≈65%%", overhead)
	}
}

func TestBandgapAmortizesWithScale(t *testing.T) {
	// §V-B1: "this can be significantly reduced ... if the SNNs are
	// implemented with 10s of thousands of neurons".
	small := overheadFor(200, DefenseSelection{SharedBandgap: true})
	large := overheadFor(20000, DefenseSelection{SharedBandgap: true})
	if large > small/50 {
		t.Fatalf("bandgap overhead should amortize: %.2f%% → %.2f%%", small, large)
	}
}

func TestDummyNeuronAboutOnePercent(t *testing.T) {
	// §V-C: ~1% power and area each for the 100-neuron-per-layer system.
	base := BaselineSystem(200)
	sys := DefendedSystem(200, DefenseSelection{DummyPerLayer: true, LayerSize: 100})
	p := 100 * (sys.PowerUW() - base.PowerUW()) / base.PowerUW()
	a := 100 * (sys.AreaUm2() - base.AreaUm2()) / base.AreaUm2()
	if math.Abs(p-1) > 0.3 || math.Abs(a-1) > 0.3 {
		t.Fatalf("dummy overhead power %.2f%%, area %.2f%%, want ≈1%%", p, a)
	}
}

func TestOverheadTableRows(t *testing.T) {
	rows := OverheadTable(200, 100)
	if len(rows) != 5 {
		t.Fatalf("table has %d rows, want 5", len(rows))
	}
	for _, r := range rows {
		if r.PowerPc < 0 || r.AreaPc < 0 {
			t.Fatalf("defense %s claims negative overhead: %v", r.Defense, r)
		}
		if r.String() == "" {
			t.Fatal("empty row rendering")
		}
	}
	// Sizing is the most power-hungry defense (paper: 25% per neuron).
	var sizing, robust OverheadRow
	for _, r := range rows {
		switch r.Defense {
		case "transistor-sizing-32x":
			sizing = r
		case "robust-current-driver":
			robust = r
		}
	}
	if sizing.PowerPc <= robust.PowerPc {
		t.Fatalf("sizing (%v) should cost more power than the robust driver (%v)", sizing.PowerPc, robust.PowerPc)
	}
}

func overheadFor(n int, sel DefenseSelection) float64 {
	base := BaselineSystem(n)
	sys := DefendedSystem(n, sel)
	return 100 * (sys.AreaUm2() - base.AreaUm2()) / base.AreaUm2()
}
