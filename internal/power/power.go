// Package power models the area and power bookkeeping behind the
// paper's defense-overhead claims (§V): the robust driver costs ~3%
// power, the upsized AH neuron ~25%, the comparator neuron ~11%, the
// shared bandgap 65% area for a 200-neuron system (shrinking as the
// system grows), and the dummy-neuron detector ~1% power and area.
//
// Component absolute numbers are first-order physical estimates
// (dynamic CV²f for neurons, I·VDD for current branches, capacitor-
// dominated area); the *relative* overheads are anchored to the paper's
// reported measurements, and the system-level percentages (bandgap
// amortization, dummy-neuron cost) emerge from the architecture rather
// than being hardcoded.
package power

import "fmt"

// Component is one circuit block's power and area.
type Component struct {
	Name    string
	PowerUW float64 // µW
	AreaUm2 float64 // µm²
}

// Circuit-block estimates at VDD = 1 V. Neuron power is dominated by
// charging its capacitors each firing cycle; neuron area by the
// capacitors themselves (the paper repeatedly notes the caps dominate,
// which is why its sizing/comparator defenses claim "negligible area").
const (
	capAreaUm2PerPF = 500.0 // MIM-cap density ≈ 2 fF/µm²
)

// AHNeuron returns the baseline Axon Hillock neuron block (2 pF of
// capacitance, ~1 µW at its nominal firing activity).
func AHNeuron() Component {
	return Component{Name: "ah-neuron", PowerUW: 1.0, AreaUm2: 2*capAreaUm2PerPF + 40}
}

// AHNeuronUpsized returns the §V-B2 sizing defense variant: +25% power
// (paper's reported overhead for the 32:1 device), area unchanged to
// first order because the capacitors dominate.
func AHNeuronUpsized() Component {
	c := AHNeuron()
	c.Name = "ah-neuron-32x"
	c.PowerUW *= 1.25
	c.AreaUm2 += 12 // enlarged MP1: tiny versus 1000 µm² of capacitor
	return c
}

// AHNeuronComparator returns the comparator-based AH variant: +11%
// power (the 5T comparator's static bias), negligible area.
func AHNeuronComparator() Component {
	c := AHNeuron()
	c.Name = "ah-neuron-comparator"
	c.PowerUW *= 1.11
	c.AreaUm2 += 8
	return c
}

// IAFNeuron returns the voltage-amplifier I&F neuron block (30 pF of
// capacitance dominates both power and area).
func IAFNeuron() Component {
	return Component{Name: "iaf-neuron", PowerUW: 1.5, AreaUm2: 30*capAreaUm2PerPF + 60}
}

// Driver returns the unsecured current-mirror driver: 200 nA from a
// 1 V supply plus the reference branch.
func Driver() Component {
	return Component{Name: "driver", PowerUW: 0.4, AreaUm2: 25}
}

// RobustDriver returns the §V-A regulated driver: +3% power (op-amp
// bias), negligible area next to the neuron capacitors.
func RobustDriver() Component {
	c := Driver()
	c.Name = "robust-driver"
	c.PowerUW *= 1.03
	c.AreaUm2 += 6
	return c
}

// Bandgap returns the shared bandgap reference of [24]: substantial
// area (it is 65% of a 200-neuron AH system, per §V-B1) and modest
// static power.
func Bandgap() Component {
	n := AHNeuron()
	return Component{
		Name:    "bandgap",
		PowerUW: 12,
		AreaUm2: 0.65 * 200 * n.AreaUm2,
	}
}

// System is a full SNN implementation inventory.
type System struct {
	Components []Component
}

// PowerUW returns total power.
func (s System) PowerUW() float64 {
	t := 0.0
	for _, c := range s.Components {
		t += c.PowerUW
	}
	return t
}

// AreaUm2 returns total area.
func (s System) AreaUm2() float64 {
	t := 0.0
	for _, c := range s.Components {
		t += c.AreaUm2
	}
	return t
}

// BaselineSystem builds the undefended system: nNeurons AH neurons,
// each with an input driver.
func BaselineSystem(nNeurons int) System {
	var s System
	for i := 0; i < nNeurons; i++ {
		s.Components = append(s.Components, AHNeuron(), Driver())
	}
	return s
}

// DefendedSystem builds a system with the selected defenses applied.
type DefenseSelection struct {
	RobustDrivers    bool
	UpsizedNeurons   bool
	ComparatorNeuron bool // mutually exclusive with UpsizedNeurons in practice
	SharedBandgap    bool
	DummyPerLayer    bool
	LayerSize        int // neurons per layer for dummy amortization
}

// DefendedSystem builds the component inventory for nNeurons under the
// given defense selection.
func DefendedSystem(nNeurons int, sel DefenseSelection) System {
	var s System
	neuron := AHNeuron
	if sel.UpsizedNeurons {
		neuron = AHNeuronUpsized
	}
	if sel.ComparatorNeuron {
		neuron = AHNeuronComparator
	}
	driver := Driver
	if sel.RobustDrivers {
		driver = RobustDriver
	}
	for i := 0; i < nNeurons; i++ {
		s.Components = append(s.Components, neuron(), driver())
	}
	if sel.SharedBandgap {
		s.Components = append(s.Components, Bandgap())
	}
	if sel.DummyPerLayer && sel.LayerSize > 0 {
		layers := (nNeurons + sel.LayerSize - 1) / sel.LayerSize
		for i := 0; i < layers; i++ {
			// One canary neuron plus its fixed-stimulus driver per layer.
			s.Components = append(s.Components, neuron(), driver())
		}
	}
	return s
}

// OverheadRow is one line of the defense-overhead table (experiment D1).
type OverheadRow struct {
	Defense string
	PowerPc float64
	AreaPc  float64
}

func (r OverheadRow) String() string {
	return fmt.Sprintf("%-28s power %+6.2f%%  area %+7.2f%%", r.Defense, r.PowerPc, r.AreaPc)
}

// OverheadTable computes the §V overhead summary for a system of
// nNeurons organized into layers of layerSize.
func OverheadTable(nNeurons, layerSize int) []OverheadRow {
	base := BaselineSystem(nNeurons)
	rows := []OverheadRow{}
	add := func(name string, sel DefenseSelection) {
		sys := DefendedSystem(nNeurons, sel)
		rows = append(rows, OverheadRow{
			Defense: name,
			PowerPc: 100 * (sys.PowerUW() - base.PowerUW()) / base.PowerUW(),
			AreaPc:  100 * (sys.AreaUm2() - base.AreaUm2()) / base.AreaUm2(),
		})
	}
	add("robust-current-driver", DefenseSelection{RobustDrivers: true})
	add("transistor-sizing-32x", DefenseSelection{UpsizedNeurons: true})
	add("comparator-neuron", DefenseSelection{ComparatorNeuron: true})
	add("shared-bandgap", DefenseSelection{SharedBandgap: true})
	add("dummy-neuron-detector", DefenseSelection{DummyPerLayer: true, LayerSize: layerSize})
	return rows
}
