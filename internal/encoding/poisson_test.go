package encoding

import (
	"math"
	"math/rand"
	"testing"

	"snnfi/internal/mnist"
)

func testImage() *mnist.Image {
	var img mnist.Image
	for i := range img.Pixels {
		switch {
		case i < 100:
			img.Pixels[i] = 255
		case i < 200:
			img.Pixels[i] = 128
		default:
			img.Pixels[i] = 0
		}
	}
	return &img
}

func TestProbabilitiesScale(t *testing.T) {
	enc := NewPoissonEncoder(1)
	p := enc.Probabilities(testImage())
	want := 128.0 / 1000 // saturated pixel at 128 Hz, 1 ms steps
	if math.Abs(p[0]-want) > 1e-12 {
		t.Fatalf("saturated pixel p = %v, want %v", p[0], want)
	}
	if math.Abs(p[150]-want*128/255) > 1e-12 {
		t.Fatalf("half pixel p = %v", p[150])
	}
	if p[300] != 0 {
		t.Fatalf("dark pixel p = %v, want 0", p[300])
	}
}

func TestEncodeRateProportionality(t *testing.T) {
	enc := NewPoissonEncoder(7)
	img := testImage()
	const steps = 4000
	train := enc.Encode(img, steps)
	counts := CountSpikes(train, len(img.Pixels))

	brightRate := avg(counts[:100])
	halfRate := avg(counts[100:200])
	darkRate := avg(counts[200:])
	if darkRate != 0 {
		t.Fatalf("dark pixels spiked: %v", darkRate)
	}
	wantBright := 0.128 * steps
	if math.Abs(brightRate-wantBright)/wantBright > 0.1 {
		t.Fatalf("bright rate %v, want ≈%v", brightRate, wantBright)
	}
	ratio := brightRate / halfRate
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("bright/half ratio %v, want ≈255/128", ratio)
	}
}

func TestEncodeDeterministicWithSeed(t *testing.T) {
	img := testImage()
	a := NewPoissonEncoder(5).Encode(img, 50)
	b := NewPoissonEncoder(5).Encode(img, 50)
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("step %d lengths differ", i)
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("step %d spike %d differs", i, j)
			}
		}
	}
}

func TestReseedRestoresStream(t *testing.T) {
	img := testImage()
	enc := NewPoissonEncoder(9)
	first := enc.Encode(img, 20)
	enc.Reseed(9)
	second := enc.Encode(img, 20)
	for i := range first {
		if len(first[i]) != len(second[i]) {
			t.Fatal("reseeded stream diverged")
		}
	}
}

func TestEncodeStepsCount(t *testing.T) {
	enc := NewPoissonEncoder(3)
	train := enc.Encode(testImage(), 37)
	if len(train) != 37 {
		t.Fatalf("got %d steps", len(train))
	}
}

func TestCountSpikesIndices(t *testing.T) {
	train := [][]int{{1, 2}, {2}, {}}
	counts := CountSpikes(train, 4)
	want := []int{0, 1, 2, 0}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts = %v", counts)
		}
	}
}

func avg(xs []int) float64 {
	s := 0
	for _, x := range xs {
		s += x
	}
	return float64(s) / float64(len(xs))
}

// TestStreamMatchesEncode pins the streaming Begin/EncodeStep path
// against the materialized Encode, under both samplers: for the same
// seed both must consume the random stream identically and produce
// bit-identical spike trains.
func TestStreamMatchesEncode(t *testing.T) {
	img := testImage()
	const steps = 300
	for _, mode := range []Sampling{SkipSampling, ReferenceSampling} {
		mat := NewPoissonEncoder(13)
		mat.Mode = mode
		train := mat.Encode(img, steps)
		stream := NewPoissonEncoder(13)
		stream.Mode = mode
		stream.Begin(img)
		for tt := 0; tt < steps; tt++ {
			got := stream.EncodeStep()
			want := train[tt]
			if len(got) != len(want) {
				t.Fatalf("mode %d step %d: %d spikes streamed, %d materialized", mode, tt, len(got), len(want))
			}
			for k := range got {
				if got[k] != want[k] {
					t.Fatalf("mode %d step %d spike %d: pixel %d streamed, %d materialized", mode, tt, k, got[k], want[k])
				}
			}
		}
	}
}

// TestStreamStepAllocationFree verifies EncodeStep allocates nothing
// once its buffers have warmed up. The skip-sampler's ring buckets warm
// over a full ring cycle (event capacity accumulates as gaps land), so
// the warmup covers more than ringSize steps; the test is deterministic
// for a fixed seed.
func TestStreamStepAllocationFree(t *testing.T) {
	enc := NewPoissonEncoder(3)
	img := testImage()
	enc.Begin(img)
	for i := 0; i < 600; i++ { // warm buffers over two-plus ring cycles
		enc.EncodeStep()
	}
	allocs := testing.AllocsPerRun(200, func() {
		enc.EncodeStep()
	})
	if allocs != 0 {
		t.Fatalf("EncodeStep allocates %.1f objects per step, want 0", allocs)
	}
}

// TestReferenceSamplingIsLegacyStream proves ReferenceSampling is
// selectable and reproduces the pre-v3 draw-per-pixel algorithm
// bit-exactly: one uniform per nonzero-probability pixel per step, in
// pixel order, spike iff U < p. The legacy algorithm is spelled out
// inline so a regression in either the mode switch or the reference
// path fails against first principles, not against itself.
func TestReferenceSamplingIsLegacyStream(t *testing.T) {
	img := testImage()
	const steps, seed = 200, 41
	enc := NewPoissonEncoder(seed)
	enc.Mode = ReferenceSampling
	got := enc.Encode(img, steps)

	rng := rand.New(rand.NewSource(seed))
	scale := 128.0 / 1000 / 255
	var idx []int
	var probs []float64
	for i, px := range img.Pixels {
		if p := float64(px) * scale; p > 0 {
			idx = append(idx, i)
			probs = append(probs, p)
		}
	}
	for tt := 0; tt < steps; tt++ {
		var want []int
		for k, p := range probs {
			if rng.Float64() < p {
				want = append(want, idx[k])
			}
		}
		if len(got[tt]) != len(want) {
			t.Fatalf("step %d: %d spikes, legacy draws %d", tt, len(got[tt]), len(want))
		}
		for j := range want {
			if got[tt][j] != want[j] {
				t.Fatalf("step %d spike %d: pixel %d, legacy %d", tt, j, got[tt][j], want[j])
			}
		}
	}
}

// TestSkipSamplingAscendingOrder: the skip-sampler's event ring gathers
// spikes scheduled from different past steps; every emitted step must
// still list pixels in strictly ascending order (the network kernels
// and the materialized/streamed bit-identity both rely on it).
func TestSkipSamplingAscendingOrder(t *testing.T) {
	enc := NewPoissonEncoder(17)
	enc.Begin(testImage())
	for tt := 0; tt < 2000; tt++ {
		step := enc.EncodeStep()
		for k := 1; k < len(step); k++ {
			if step[k] <= step[k-1] {
				t.Fatalf("step %d not ascending: %v", tt, step)
			}
		}
	}
}

// TestSkipSamplingCertainPixel: probability ≥ 1 (rate saturating the
// timestep) must spike every step under the skip-sampler — the
// invLnQ = 0 sentinel path.
func TestSkipSamplingCertainPixel(t *testing.T) {
	var img mnist.Image
	img.Pixels[0] = 255
	img.Pixels[1] = 10
	enc := NewPoissonEncoder(5)
	enc.MaxRate = 10000 // p = 255/255 · 10000/1000 = 10 ≥ 1 for pixel 0
	const steps = 500
	counts := CountSpikes(enc.Encode(&img, steps), len(img.Pixels))
	if counts[0] != steps {
		t.Fatalf("certain pixel spiked %d/%d steps", counts[0], steps)
	}
	if counts[1] == 0 || counts[1] == steps {
		t.Fatalf("sub-certain pixel count %d implausible", counts[1])
	}
}

// statImage spans the probability range the statistical-equivalence
// test needs: saturated (p=0.128), half, dim, and a near-silent class
// whose mean gap (~2000 steps) far exceeds the ring's skip horizon, so
// the deferral/resample path carries essentially all of its spikes.
func statImage() *mnist.Image {
	var img mnist.Image
	for i := range img.Pixels {
		switch {
		case i < 50:
			img.Pixels[i] = 255
		case i < 100:
			img.Pixels[i] = 128
		case i < 150:
			img.Pixels[i] = 16
		case i < 200:
			img.Pixels[i] = 1
		}
	}
	return &img
}

// TestSkipSamplingMatchesReferenceStatistics is the statistical
// contract behind the protocol-v3 encoder: over ≥10⁵ steps, the
// skip-sampler's per-pixel spike counts must match the Bernoulli
// law the reference sampler realizes — class-pooled means within 5σ of
// n·p, per-pixel counts within 6σ individually, and the across-pixel
// count variance consistent with binomial (the gap law collapses wrong
// variance long before it moves the mean). The reference sampler runs
// the same image as the measuring stick for the pooled means.
func TestSkipSamplingMatchesReferenceStatistics(t *testing.T) {
	if testing.Short() {
		t.Skip("10⁵-step distributional test")
	}
	img := statImage()
	const steps = 120000
	classes := []struct{ lo, hi int }{{0, 50}, {50, 100}, {100, 150}, {150, 200}}

	count := func(mode Sampling, seed int64) []int {
		enc := NewPoissonEncoder(seed)
		enc.Mode = mode
		enc.Begin(img)
		counts := make([]int, len(img.Pixels))
		for tt := 0; tt < steps; tt++ {
			for _, i := range enc.EncodeStep() {
				counts[i]++
			}
		}
		return counts
	}
	skip := count(SkipSampling, 101)
	ref := count(ReferenceSampling, 202)
	probs := NewPoissonEncoder(1).Probabilities(img)

	for _, c := range classes {
		p := probs[c.lo]
		n := float64(c.hi-c.lo) * steps // pooled Bernoulli trials per class
		mean, sd := n*p, math.Sqrt(n*p*(1-p))
		var skipN, refN int
		for i := c.lo; i < c.hi; i++ {
			skipN += skip[i]
			refN += ref[i]
		}
		if d := math.Abs(float64(skipN) - mean); d > 5*sd {
			t.Errorf("class p=%.5f: skip pooled count %d, want %.0f ± %.0f (5σ)", p, skipN, mean, 5*sd)
		}
		if d := math.Abs(float64(skipN) - float64(refN)); d > 7*sd {
			t.Errorf("class p=%.5f: skip %d vs reference %d differ beyond 7σ=%.0f", p, skipN, refN, 7*sd)
		}

		// Per-pixel means and across-pixel variance against binomial.
		pm, psd := float64(steps)*p, math.Sqrt(float64(steps)*p*(1-p))
		var sum, sumsq float64
		for i := c.lo; i < c.hi; i++ {
			x := float64(skip[i])
			if d := math.Abs(x - pm); d > 6*psd+1 {
				t.Errorf("pixel %d (p=%.5f): %d spikes, want %.1f ± %.1f (6σ)", i, p, skip[i], pm, 6*psd)
			}
			sum += x
			sumsq += x * x
		}
		m := float64(c.hi - c.lo)
		sampleVar := (sumsq - sum*sum/m) / (m - 1)
		wantVar := float64(steps) * p * (1 - p)
		// χ²₄₉-scale noise on a 50-pixel sample variance: ±60% is ~3σ.
		if sampleVar < 0.4*wantVar || sampleVar > 1.6*wantVar {
			t.Errorf("class p=%.5f: count variance %.1f, binomial predicts %.1f", p, sampleVar, wantVar)
		}
	}
	for i := 200; i < len(img.Pixels); i++ {
		if skip[i] != 0 {
			t.Fatalf("dark pixel %d spiked under skip-sampling", i)
		}
	}
}

// TestStreamRateProportionality is the rate property test for the
// streaming path: over many steps each pixel's spike count must track
// its per-step probability, and the streamed counts must agree exactly
// with CountSpikes over a materialized train from the same seed.
func TestStreamRateProportionality(t *testing.T) {
	img := testImage()
	const steps = 4000
	enc := NewPoissonEncoder(7)
	probs := enc.Probabilities(img)
	enc.Begin(img)
	counts := make([]int, len(img.Pixels))
	for tt := 0; tt < steps; tt++ {
		for _, i := range enc.EncodeStep() {
			counts[i]++
		}
	}
	for i, p := range probs {
		if p == 0 {
			if counts[i] != 0 {
				t.Fatalf("dark pixel %d spiked %d times", i, counts[i])
			}
			continue
		}
		mean := p * steps
		// Allow 5 standard deviations of Bernoulli noise.
		sd := math.Sqrt(p * (1 - p) * steps)
		if d := math.Abs(float64(counts[i]) - mean); d > 5*sd+1 {
			t.Fatalf("pixel %d: %d spikes over %d steps, want %.1f ± %.1f", i, counts[i], steps, mean, 5*sd)
		}
	}
	want := CountSpikes(NewPoissonEncoder(7).Encode(img, steps), len(img.Pixels))
	for i := range counts {
		if counts[i] != want[i] {
			t.Fatalf("pixel %d: streamed count %d != materialized count %d", i, counts[i], want[i])
		}
	}
}
