package encoding

import (
	"math"
	"testing"

	"snnfi/internal/mnist"
)

func testImage() *mnist.Image {
	var img mnist.Image
	for i := range img.Pixels {
		switch {
		case i < 100:
			img.Pixels[i] = 255
		case i < 200:
			img.Pixels[i] = 128
		default:
			img.Pixels[i] = 0
		}
	}
	return &img
}

func TestProbabilitiesScale(t *testing.T) {
	enc := NewPoissonEncoder(1)
	p := enc.Probabilities(testImage())
	want := 128.0 / 1000 // saturated pixel at 128 Hz, 1 ms steps
	if math.Abs(p[0]-want) > 1e-12 {
		t.Fatalf("saturated pixel p = %v, want %v", p[0], want)
	}
	if math.Abs(p[150]-want*128/255) > 1e-12 {
		t.Fatalf("half pixel p = %v", p[150])
	}
	if p[300] != 0 {
		t.Fatalf("dark pixel p = %v, want 0", p[300])
	}
}

func TestEncodeRateProportionality(t *testing.T) {
	enc := NewPoissonEncoder(7)
	img := testImage()
	const steps = 4000
	train := enc.Encode(img, steps)
	counts := CountSpikes(train, len(img.Pixels))

	brightRate := avg(counts[:100])
	halfRate := avg(counts[100:200])
	darkRate := avg(counts[200:])
	if darkRate != 0 {
		t.Fatalf("dark pixels spiked: %v", darkRate)
	}
	wantBright := 0.128 * steps
	if math.Abs(brightRate-wantBright)/wantBright > 0.1 {
		t.Fatalf("bright rate %v, want ≈%v", brightRate, wantBright)
	}
	ratio := brightRate / halfRate
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("bright/half ratio %v, want ≈255/128", ratio)
	}
}

func TestEncodeDeterministicWithSeed(t *testing.T) {
	img := testImage()
	a := NewPoissonEncoder(5).Encode(img, 50)
	b := NewPoissonEncoder(5).Encode(img, 50)
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("step %d lengths differ", i)
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("step %d spike %d differs", i, j)
			}
		}
	}
}

func TestReseedRestoresStream(t *testing.T) {
	img := testImage()
	enc := NewPoissonEncoder(9)
	first := enc.Encode(img, 20)
	enc.Reseed(9)
	second := enc.Encode(img, 20)
	for i := range first {
		if len(first[i]) != len(second[i]) {
			t.Fatal("reseeded stream diverged")
		}
	}
}

func TestEncodeStepsCount(t *testing.T) {
	enc := NewPoissonEncoder(3)
	train := enc.Encode(testImage(), 37)
	if len(train) != 37 {
		t.Fatalf("got %d steps", len(train))
	}
}

func TestCountSpikesIndices(t *testing.T) {
	train := [][]int{{1, 2}, {2}, {}}
	counts := CountSpikes(train, 4)
	want := []int{0, 1, 2, 0}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts = %v", counts)
		}
	}
}

func avg(xs []int) float64 {
	s := 0
	for _, x := range xs {
		s += x
	}
	return float64(s) / float64(len(xs))
}

// TestStreamMatchesEncode pins the streaming Begin/EncodeStep path
// against the materialized Encode: for the same seed both must consume
// the random stream identically and produce bit-identical spike trains.
func TestStreamMatchesEncode(t *testing.T) {
	img := testImage()
	const steps = 300
	mat := NewPoissonEncoder(13).Encode(img, steps)
	stream := NewPoissonEncoder(13)
	stream.Begin(img)
	for tt := 0; tt < steps; tt++ {
		got := stream.EncodeStep()
		want := mat[tt]
		if len(got) != len(want) {
			t.Fatalf("step %d: %d spikes streamed, %d materialized", tt, len(got), len(want))
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("step %d spike %d: pixel %d streamed, %d materialized", tt, k, got[k], want[k])
			}
		}
	}
}

// TestStreamStepAllocationFree verifies EncodeStep allocates nothing
// once its spike buffer has warmed up.
func TestStreamStepAllocationFree(t *testing.T) {
	enc := NewPoissonEncoder(3)
	img := testImage()
	enc.Begin(img)
	for i := 0; i < 50; i++ { // warm the buffer
		enc.EncodeStep()
	}
	allocs := testing.AllocsPerRun(200, func() {
		enc.EncodeStep()
	})
	if allocs != 0 {
		t.Fatalf("EncodeStep allocates %.1f objects per step, want 0", allocs)
	}
}

// TestStreamRateProportionality is the rate property test for the
// streaming path: over many steps each pixel's spike count must track
// its per-step probability, and the streamed counts must agree exactly
// with CountSpikes over a materialized train from the same seed.
func TestStreamRateProportionality(t *testing.T) {
	img := testImage()
	const steps = 4000
	enc := NewPoissonEncoder(7)
	probs := enc.Probabilities(img)
	enc.Begin(img)
	counts := make([]int, len(img.Pixels))
	for tt := 0; tt < steps; tt++ {
		for _, i := range enc.EncodeStep() {
			counts[i]++
		}
	}
	for i, p := range probs {
		if p == 0 {
			if counts[i] != 0 {
				t.Fatalf("dark pixel %d spiked %d times", i, counts[i])
			}
			continue
		}
		mean := p * steps
		// Allow 5 standard deviations of Bernoulli noise.
		sd := math.Sqrt(p * (1 - p) * steps)
		if d := math.Abs(float64(counts[i]) - mean); d > 5*sd+1 {
			t.Fatalf("pixel %d: %d spikes over %d steps, want %.1f ± %.1f", i, counts[i], steps, mean, 5*sd)
		}
	}
	want := CountSpikes(NewPoissonEncoder(7).Encode(img, steps), len(img.Pixels))
	for i := range counts {
		if counts[i] != want[i] {
			t.Fatalf("pixel %d: streamed count %d != materialized count %d", i, counts[i], want[i])
		}
	}
}
