// Package encoding converts images into spike trains. The attack
// experiments use BindsNET-compatible Poisson rate coding: each pixel
// becomes an independent Bernoulli spike process whose rate is
// proportional to intensity.
package encoding

import (
	"math/rand"

	"snnfi/internal/mnist"
)

// PoissonEncoder converts pixel intensities into Bernoulli spike
// probabilities per timestep: p = (pixel/255)·MaxRate·Dt, with MaxRate
// in Hz and Dt in milliseconds (BindsNET's convention with
// intensity=128).
type PoissonEncoder struct {
	MaxRate float64 // peak firing rate for a saturated pixel (Hz)
	Dt      float64 // timestep (ms)
	rng     *rand.Rand
	seed    int64

	// Streaming state (Begin/EncodeStep): the image's nonzero-probability
	// pixels and their probabilities, plus a reusable spike buffer, so
	// encoding one timestep allocates nothing. One image streams at a
	// time per encoder; Begin resets the state.
	idx   []int
	probs []float64
	buf   []int
}

// NewPoissonEncoder returns an encoder with the experiment defaults
// (128 Hz peak rate, 1 ms steps) and a deterministic stream.
func NewPoissonEncoder(seed int64) *PoissonEncoder {
	return &PoissonEncoder{MaxRate: 128, Dt: 1, rng: rand.New(rand.NewSource(seed)), seed: seed}
}

// Reseed resets the encoder's random stream, making spike trains
// reproducible across runs over the same images. The generator is
// reinitialized in place, so per-image reseeding (the snn engine's
// seeding contract) allocates nothing once the encoder exists.
func (e *PoissonEncoder) Reseed(seed int64) {
	if e.rng == nil {
		e.rng = rand.New(rand.NewSource(seed))
	} else {
		e.rng.Seed(seed)
	}
	e.seed = seed
}

// Seed returns the seed of the most recent NewPoissonEncoder/Reseed —
// the base from which per-image presentation seeds are derived.
func (e *PoissonEncoder) Seed() int64 { return e.seed }

// Probabilities returns the per-step spike probability of every pixel.
func (e *PoissonEncoder) Probabilities(img *mnist.Image) []float64 {
	p := make([]float64, len(img.Pixels))
	scale := e.MaxRate * e.Dt / 1000 / 255
	for i, px := range img.Pixels {
		p[i] = float64(px) * scale
	}
	return p
}

// Begin prepares streaming encoding of img: it precomputes the list of
// pixels with nonzero spike probability so each subsequent EncodeStep
// draws only for those. The random stream is consumed exactly as by
// Encode (one draw per nonzero-probability pixel per step, in pixel
// order), so streaming and materialized encoding are bit-identical for
// the same seed.
func (e *PoissonEncoder) Begin(img *mnist.Image) {
	scale := e.MaxRate * e.Dt / 1000 / 255
	e.idx = e.idx[:0]
	e.probs = e.probs[:0]
	for i, px := range img.Pixels {
		if p := float64(px) * scale; p > 0 {
			e.idx = append(e.idx, i)
			e.probs = append(e.probs, p)
		}
	}
}

// EncodeStep draws one timestep of the image installed by Begin and
// returns the indices of pixels that spiked. The returned slice is
// reused by the next call; copy it to retain. Encoding a step performs
// no allocation once the spike buffer has warmed up.
func (e *PoissonEncoder) EncodeStep() []int {
	e.buf = e.buf[:0]
	for k, p := range e.probs {
		if e.rng.Float64() < p {
			e.buf = append(e.buf, e.idx[k])
		}
	}
	return e.buf
}

// Encode produces a spike train of the given number of steps: for each
// step, the indices of pixels that spiked. The sparse representation is
// what the network's propagation kernel consumes directly. It is the
// materialized form of Begin/EncodeStep and produces bit-identical
// trains.
func (e *PoissonEncoder) Encode(img *mnist.Image, steps int) [][]int {
	e.Begin(img)
	train := make([][]int, steps)
	for t := 0; t < steps; t++ {
		if step := e.EncodeStep(); len(step) > 0 {
			train[t] = append(make([]int, 0, len(step)), step...)
		}
	}
	return train
}

// CountSpikes returns the total spike count per pixel over a train,
// useful for verifying rate proportionality.
func CountSpikes(train [][]int, n int) []int {
	counts := make([]int, n)
	for _, step := range train {
		for _, i := range step {
			counts[i]++
		}
	}
	return counts
}
