// Package encoding converts images into spike trains. The attack
// experiments use BindsNET-compatible Poisson rate coding: each pixel
// becomes an independent Bernoulli spike process whose rate is
// proportional to intensity.
//
// Two samplers produce that process (see Sampling): the default
// geometric skip-sampler draws one exponential variate per *spike*
// (sampling the gap to each pixel's next spike and skipping the quiet
// steps), while the reference sampler draws one uniform per nonzero
// pixel per *step*.
// Both realize exactly the same per-step Bernoulli distribution; they
// consume the random stream differently, which is why the sampler is
// part of the training protocol (snn.ProtocolVersion).
package encoding

import (
	"math"
	"math/bits"
	"math/rand"

	"snnfi/internal/mnist"
)

// Sampling selects how a PoissonEncoder draws spikes from the random
// stream.
type Sampling int

const (
	// SkipSampling, the default, samples each pixel's gap to its next
	// spike from the geometric distribution and skips the quiet steps:
	// one ziggurat exponential draw per spike (plus one per pixel at
	// Begin and one per deferral window), instead of one uniform per
	// nonzero pixel per step. This is the train-protocol-v3 RNG
	// contract.
	SkipSampling Sampling = iota
	// ReferenceSampling is the draw-per-pixel reference implementation
	// (the train-protocol-v2 contract): every nonzero-probability pixel
	// consumes one uniform every step. Statistically identical to
	// SkipSampling (see TestSkipSamplingMatchesReferenceStatistics);
	// kept selectable as the ground truth the skip-sampler is verified
	// against.
	ReferenceSampling
)

// Skip-sampler event ring: pending spike/deferral events are bucketed
// by the step they are due at, modulo ringSize. Gaps are scheduled at
// most skipHorizon steps ahead; a sampled gap of ≥ skipHorizon becomes
// a deferral event skipHorizon steps out, where the remaining gap is
// resampled — by the memorylessness of the geometric distribution the
// total gap keeps exactly the geometric law. The farthest schedule
// target from a step t is t+1+skipHorizon = t+255 < t+ringSize, so a
// bucket never receives events while it is being drained.
const (
	ringSize    = 256
	ringMask    = ringSize - 1
	skipHorizon = ringSize - 2
)

// PoissonEncoder converts pixel intensities into Bernoulli spike
// probabilities per timestep: p = (pixel/255)·MaxRate·Dt, with MaxRate
// in Hz and Dt in milliseconds (BindsNET's convention with
// intensity=128).
type PoissonEncoder struct {
	MaxRate float64 // peak firing rate for a saturated pixel (Hz)
	Dt      float64 // timestep (ms)
	// Mode selects the sampler; the zero value is SkipSampling. Must be
	// set before Begin (switching between Begin and EncodeStep would
	// desynchronize the streaming state).
	Mode Sampling

	rng  *rand.Rand
	seed int64

	// Streaming state (Begin/EncodeStep): the image's nonzero-probability
	// pixels and a reusable spike buffer, so encoding one timestep
	// allocates nothing. One image streams at a time per encoder; Begin
	// resets the state.
	idx   []int
	probs []float64 // reference sampler: per-slot spike probability
	buf   []int

	// Skip-sampler state: per-slot 1/ln(1/(1−p)) — the exponential-to-
	// geometric scale of drawGap; 0 marks p ≥ 1, a pixel that spikes
	// every step — the event ring, the step counter, and the per-step
	// drain bitmaps (one bit per active slot, plus the deferral flags)
	// used to emit a step's events in ascending pixel order without
	// sorting.
	invLnQ []float64
	ring   [ringSize][]int32
	step   int
	occ    []uint64
	dfr    []uint64
}

// NewPoissonEncoder returns an encoder with the experiment defaults
// (128 Hz peak rate, 1 ms steps, skip-sampling) and a deterministic
// stream.
func NewPoissonEncoder(seed int64) *PoissonEncoder {
	return &PoissonEncoder{MaxRate: 128, Dt: 1, rng: rand.New(rand.NewSource(seed)), seed: seed}
}

// Reseed resets the encoder's random stream, making spike trains
// reproducible across runs over the same images. The generator is
// reinitialized in place, so per-image reseeding (the snn engine's
// seeding contract) allocates nothing once the encoder exists.
func (e *PoissonEncoder) Reseed(seed int64) {
	if e.rng == nil {
		e.rng = rand.New(rand.NewSource(seed))
	} else {
		e.rng.Seed(seed)
	}
	e.seed = seed
}

// Seed returns the seed of the most recent NewPoissonEncoder/Reseed —
// the base from which per-image presentation seeds are derived.
func (e *PoissonEncoder) Seed() int64 { return e.seed }

// Probabilities returns the per-step spike probability of every pixel.
func (e *PoissonEncoder) Probabilities(img *mnist.Image) []float64 {
	p := make([]float64, len(img.Pixels))
	scale := e.MaxRate * e.Dt / 1000 / 255
	for i, px := range img.Pixels {
		p[i] = float64(px) * scale
	}
	return p
}

// Begin prepares streaming encoding of img: it precomputes the list of
// pixels with nonzero spike probability and, under SkipSampling, draws
// each pixel's first spike step. Under ReferenceSampling the random
// stream is consumed exactly as by the pre-v3 encoder (one draw per
// nonzero-probability pixel per step, in pixel order). Under either
// mode, streaming (Begin/EncodeStep) and materialized (Encode) paths
// are bit-identical for the same seed.
func (e *PoissonEncoder) Begin(img *mnist.Image) {
	scale := e.MaxRate * e.Dt / 1000 / 255
	e.idx = e.idx[:0]
	if e.Mode == ReferenceSampling {
		e.probs = e.probs[:0]
		for i, px := range img.Pixels {
			if p := float64(px) * scale; p > 0 {
				e.idx = append(e.idx, i)
				e.probs = append(e.probs, p)
			}
		}
		return
	}
	e.invLnQ = e.invLnQ[:0]
	for i := range e.ring {
		e.ring[i] = e.ring[i][:0]
	}
	e.step = 0
	for i, px := range img.Pixels {
		p := float64(px) * scale
		if p <= 0 {
			continue
		}
		slot := len(e.idx)
		e.idx = append(e.idx, i)
		inv := 0.0 // p ≥ 1: a certain spike every step, gap always 0
		if p < 1 {
			inv = -1 / math.Log1p(-p)
		}
		e.invLnQ = append(e.invLnQ, inv)
		// First candidate step is 0: the first spike lands g steps in.
		e.scheduleFrom(int32(slot), 0)
	}
	words := (len(e.idx) + 63) / 64
	if cap(e.occ) < words {
		e.occ = make([]uint64, words)
		e.dfr = make([]uint64, words)
	} else {
		e.occ = e.occ[:words]
		e.dfr = e.dfr[:words]
		for w := range e.occ {
			e.occ[w] = 0
			e.dfr[w] = 0
		}
	}
}

// drawGap samples the geometric gap (failures before the next spike)
// for a pixel with inv = 1/ln(1/(1−p)), clamped to the deferral
// sentinel: a return of skipHorizon means "no spike for skipHorizon
// steps, resample there". With E ~ Exp(1), floor(E·inv) is geometric
// on {0,1,…}: P(gap ≥ k) = P(E ≥ −k·ln(1−p)) = (1−p)^k — the same
// exact law as inverting a uniform through log1p, but drawn by the
// ziggurat (ExpFloat64), which costs a table lookup instead of a
// logarithm on almost every draw. inv = 0 (p ≥ 1) yields gap 0 — a
// certain spike — while still consuming one draw, keeping the stream
// advance uniform per event.
func (e *PoissonEncoder) drawGap(inv float64) int {
	fg := e.rng.ExpFloat64() * inv
	if !(fg < skipHorizon) { // catches extreme tail draws
		return skipHorizon
	}
	return int(fg)
}

// scheduleFrom draws the gap from candidate step pos and files the
// pixel's next event: a spike at pos+gap, or a deferral at
// pos+skipHorizon when the gap reaches the horizon.
func (e *PoissonEncoder) scheduleFrom(slot int32, pos int) {
	g := e.drawGap(e.invLnQ[slot])
	ev := slot << 1
	if g == skipHorizon {
		ev |= 1
	}
	b := (pos + g) & ringMask
	e.ring[b] = append(e.ring[b], ev)
}

// EncodeStep draws one timestep of the image installed by Begin and
// returns the indices of pixels that spiked, in ascending pixel order.
// The returned slice is reused by the next call; copy it to retain.
// Encoding a step performs no allocation once the buffers have warmed
// up.
func (e *PoissonEncoder) EncodeStep() []int {
	if e.Mode == ReferenceSampling {
		e.buf = e.buf[:0]
		for k, p := range e.probs {
			if e.rng.Float64() < p {
				e.buf = append(e.buf, e.idx[k])
			}
		}
		return e.buf
	}

	t := e.step
	bucket := e.ring[t&ringMask]
	e.buf = e.buf[:0]
	if len(bucket) > 0 {
		// Events accumulated from different source steps: scatter them
		// into the slot bitmaps, then drain in ascending bit order, so
		// spikes emit in ascending pixel order and RNG draws happen in a
		// canonical (pixel-order) sequence within the step. Each pixel
		// has at most one pending event, so slots never collide.
		occ, dfr := e.occ, e.dfr
		for _, ev := range bucket {
			slot := ev >> 1
			w, b := slot>>6, uint(slot&63)
			occ[w] |= 1 << b
			if ev&1 != 0 {
				dfr[w] |= 1 << b
			}
		}
		e.ring[t&ringMask] = bucket[:0]
		for w, bw := range occ {
			if bw == 0 {
				continue
			}
			occ[w] = 0
			dbits := dfr[w]
			dfr[w] = 0
			base := int32(w) << 6
			for bw != 0 {
				bz := bits.TrailingZeros64(bw)
				bw &= bw - 1
				slot := base + int32(bz)
				if dbits&(1<<uint(bz)) != 0 {
					// Deferral: the pixel has not spiked for skipHorizon
					// steps; resample the remaining gap from here. A
					// zero gap is a spike at this very step.
					g := e.drawGap(e.invLnQ[slot])
					if g > 0 {
						nev := slot << 1
						if g == skipHorizon {
							nev |= 1
						}
						b := (t + g) & ringMask
						e.ring[b] = append(e.ring[b], nev)
						continue
					}
				}
				e.buf = append(e.buf, e.idx[slot])
				e.scheduleFrom(slot, t+1)
			}
		}
	}
	e.step++
	return e.buf
}

// Encode produces a spike train of the given number of steps: for each
// step, the indices of pixels that spiked. The sparse representation is
// what the network's propagation kernel consumes directly. It is the
// materialized form of Begin/EncodeStep and produces bit-identical
// trains.
func (e *PoissonEncoder) Encode(img *mnist.Image, steps int) [][]int {
	e.Begin(img)
	train := make([][]int, steps)
	for t := 0; t < steps; t++ {
		if step := e.EncodeStep(); len(step) > 0 {
			train[t] = append(make([]int, 0, len(step)), step...)
		}
	}
	return train
}

// CountSpikes returns the total spike count per pixel over a train,
// useful for verifying rate proportionality.
func CountSpikes(train [][]int, n int) []int {
	counts := make([]int, n)
	for _, step := range train {
		for _, i := range step {
			counts[i]++
		}
	}
	return counts
}
