// Package encoding converts images into spike trains. The attack
// experiments use BindsNET-compatible Poisson rate coding: each pixel
// becomes an independent Bernoulli spike process whose rate is
// proportional to intensity.
package encoding

import (
	"math/rand"

	"snnfi/internal/mnist"
)

// PoissonEncoder converts pixel intensities into Bernoulli spike
// probabilities per timestep: p = (pixel/255)·MaxRate·Dt, with MaxRate
// in Hz and Dt in milliseconds (BindsNET's convention with
// intensity=128).
type PoissonEncoder struct {
	MaxRate float64 // peak firing rate for a saturated pixel (Hz)
	Dt      float64 // timestep (ms)
	rng     *rand.Rand
}

// NewPoissonEncoder returns an encoder with the experiment defaults
// (128 Hz peak rate, 1 ms steps) and a deterministic stream.
func NewPoissonEncoder(seed int64) *PoissonEncoder {
	return &PoissonEncoder{MaxRate: 128, Dt: 1, rng: rand.New(rand.NewSource(seed))}
}

// Reseed resets the encoder's random stream, making spike trains
// reproducible across runs over the same images.
func (e *PoissonEncoder) Reseed(seed int64) {
	e.rng = rand.New(rand.NewSource(seed))
}

// Probabilities returns the per-step spike probability of every pixel.
func (e *PoissonEncoder) Probabilities(img *mnist.Image) []float64 {
	p := make([]float64, len(img.Pixels))
	scale := e.MaxRate * e.Dt / 1000 / 255
	for i, px := range img.Pixels {
		p[i] = float64(px) * scale
	}
	return p
}

// Encode produces a spike train of the given number of steps: for each
// step, the indices of pixels that spiked. The sparse representation is
// what the network's propagation kernel consumes directly.
func (e *PoissonEncoder) Encode(img *mnist.Image, steps int) [][]int {
	probs := e.Probabilities(img)
	train := make([][]int, steps)
	for t := 0; t < steps; t++ {
		var active []int
		for i, p := range probs {
			if p > 0 && e.rng.Float64() < p {
				active = append(active, i)
			}
		}
		train[t] = active
	}
	return train
}

// CountSpikes returns the total spike count per pixel over a train,
// useful for verifying rate proportionality.
func CountSpikes(train [][]int, n int) []int {
	counts := make([]int, n)
	for _, step := range train {
		for _, i := range step {
			counts[i]++
		}
	}
	return counts
}
