package runner

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func indexJobs(n int, delay func(i int) time.Duration) []Job[int] {
	jobs := make([]Job[int], n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = Job[int]{
			Label: fmt.Sprintf("job-%d", i),
			Run: func() (int, error) {
				if delay != nil {
					time.Sleep(delay(i))
				}
				return i * i, nil
			},
		}
	}
	return jobs
}

func TestPoolOrderedResults(t *testing.T) {
	// Later jobs finish first (decreasing sleeps), yet collection is in
	// job order at every worker count.
	delay := func(i int) time.Duration { return time.Duration(8-i) * time.Millisecond }
	for _, workers := range []int{1, 3, 8} {
		p := &Pool[int]{Workers: workers}
		got, err := p.Run(indexJobs(8, delay))
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestPoolFirstErrorWins(t *testing.T) {
	// Two failing jobs: the reported error must be the lowest-indexed
	// one — what serial execution would have stopped on.
	boom2 := errors.New("boom-2")
	jobs := indexJobs(8, nil)
	jobs[2].Run = func() (int, error) { return 0, boom2 }
	jobs[5].Run = func() (int, error) { return 0, errors.New("boom-5") }
	for _, workers := range []int{1, 4} {
		p := &Pool[int]{Workers: workers}
		got, err := p.Run(jobs)
		if !errors.Is(err, boom2) {
			t.Fatalf("workers=%d: err = %v, want boom-2", workers, err)
		}
		if got != nil {
			t.Fatalf("workers=%d: results must be nil on error", workers)
		}
	}
}

func TestPoolOnResultOrderedPrefix(t *testing.T) {
	// OnResult sees exactly the jobs before the first failure, in order.
	jobs := indexJobs(8, func(i int) time.Duration { return time.Duration(8-i) * time.Millisecond })
	jobs[5].Run = func() (int, error) { return 0, errors.New("boom") }
	var emitted []int
	p := &Pool[int]{
		Workers: 4,
		OnResult: func(i int, v int, _ bool) error {
			emitted = append(emitted, i)
			return nil
		},
	}
	if _, err := p.Run(jobs); err == nil {
		t.Fatal("expected error")
	}
	want := []int{0, 1, 2, 3, 4}
	if len(emitted) != len(want) {
		t.Fatalf("emitted %v, want %v", emitted, want)
	}
	for i := range want {
		if emitted[i] != want[i] {
			t.Fatalf("emitted %v, want %v", emitted, want)
		}
	}
}

func TestPoolOnResultErrorAborts(t *testing.T) {
	sinkErr := errors.New("disk full")
	p := &Pool[int]{
		Workers:  2,
		OnResult: func(i int, v int, _ bool) error { return sinkErr },
	}
	if _, err := p.Run(indexJobs(4, nil)); !errors.Is(err, sinkErr) {
		t.Fatalf("err = %v, want the sink error", err)
	}
}

func TestPoolProgress(t *testing.T) {
	var mu sync.Mutex
	var dones []int
	p := &Pool[int]{
		Workers: 4,
		OnProgress: func(pr Progress) {
			mu.Lock()
			defer mu.Unlock()
			if pr.Total != 6 {
				t.Errorf("Total = %d, want 6", pr.Total)
			}
			dones = append(dones, pr.Done)
		},
	}
	if _, err := p.Run(indexJobs(6, nil)); err != nil {
		t.Fatal(err)
	}
	if len(dones) != 6 {
		t.Fatalf("got %d progress callbacks, want 6", len(dones))
	}
	for i, d := range dones {
		if d != i+1 {
			t.Fatalf("Done sequence %v must count 1..6", dones)
		}
	}
}

func TestPoolCacheAndSingleflight(t *testing.T) {
	// Eight jobs share one content key: with a cache attached, the
	// computation runs exactly once (singleflight collapses the batch)
	// and every job gets the same result.
	var runs atomic.Int64
	jobs := make([]Job[int], 8)
	for i := range jobs {
		jobs[i] = Job[int]{
			Label: "shared",
			Key:   "same-key",
			Run: func() (int, error) {
				runs.Add(1)
				time.Sleep(5 * time.Millisecond)
				return 7, nil
			},
		}
	}
	cache := NewMemoryCache[int]()
	p := &Pool[int]{Workers: 8, Cache: cache}
	got, err := p.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if n := runs.Load(); n != 1 {
		t.Fatalf("shared job ran %d times, want 1", n)
	}
	for i, v := range got {
		if v != 7 {
			t.Fatalf("result[%d] = %d, want 7", i, v)
		}
	}
	// A second batch is served entirely from the cache.
	runs.Store(0)
	if _, err := p.Run(jobs); err != nil {
		t.Fatal(err)
	}
	if n := runs.Load(); n != 0 {
		t.Fatalf("cached batch recomputed %d times", n)
	}
	if hits, _ := cache.Stats(); hits < 8 {
		t.Fatalf("cache hits = %d, want ≥8", hits)
	}
}

func TestPoolConcurrencySpeedup(t *testing.T) {
	// The acceptance bar for the subsystem: ≥4 workers must cut a
	// sweep's wall clock by ≥2× versus serial. Sleep-bound jobs make
	// this hold even on single-core machines (the CPU-bound analogue is
	// TestLayerGridParallelSpeedup in internal/core, which needs real
	// cores).
	const n, d = 8, 30 * time.Millisecond
	delay := func(int) time.Duration { return d }

	start := time.Now()
	if _, err := (&Pool[int]{Workers: 1}).Run(indexJobs(n, delay)); err != nil {
		t.Fatal(err)
	}
	serial := time.Since(start)

	start = time.Now()
	if _, err := (&Pool[int]{Workers: 4}).Run(indexJobs(n, delay)); err != nil {
		t.Fatal(err)
	}
	parallel := time.Since(start)

	if parallel > serial/2 {
		t.Fatalf("4 workers took %v, serial %v — want ≥2× speedup", parallel, serial)
	}
}

func TestPoolZeroJobsAndDefaults(t *testing.T) {
	p := &Pool[string]{}
	got, err := p.Run(nil)
	if err != nil || got != nil {
		t.Fatalf("empty batch: got %v, %v", got, err)
	}
	// Workers ≤ 0 falls back to GOMAXPROCS and still works.
	p = &Pool[string]{Workers: -3}
	res, err := p.Run([]Job[string]{{Run: func() (string, error) { return "ok", nil }}})
	if err != nil || len(res) != 1 || res[0] != "ok" {
		t.Fatalf("got %v, %v", res, err)
	}
}

func TestMemoryCacheNilSafe(t *testing.T) {
	var c *MemoryCache[int]
	if _, ok := c.Get("k"); ok {
		t.Fatal("nil cache must never hit")
	}
	c.Put("k", 1) // must not panic
	if c.Len() != 0 {
		t.Fatal("nil cache must be empty")
	}
	var zero MemoryCache[int]
	zero.Put("k", 5)
	if v, ok := zero.Get("k"); !ok || v != 5 {
		t.Fatal("zero-value cache must store values")
	}
}

func TestKeyOf(t *testing.T) {
	type spec struct {
		A float64
		B string
	}
	k1 := KeyOf(spec{1.5, "x"}, int64(42))
	k2 := KeyOf(spec{1.5, "x"}, int64(42))
	k3 := KeyOf(spec{1.5, "y"}, int64(42))
	k4 := KeyOf(spec{1.5, "x"}, int64(43))
	if k1 != k2 {
		t.Fatal("equal specs must hash equal")
	}
	if k1 == k3 || k1 == k4 {
		t.Fatal("differing specs must hash differently")
	}
	// Pointers hash by pointee, not by address.
	p1, p2 := &spec{2, "z"}, &spec{2, "z"}
	if KeyOf(p1) != KeyOf(p2) {
		t.Fatal("pointer specs must hash by content")
	}
}

func TestDeriveSeedStable(t *testing.T) {
	s1 := DeriveSeed(42, "attack-3", -20.0, 50.0)
	s2 := DeriveSeed(42, "attack-3", -20.0, 50.0)
	s3 := DeriveSeed(42, "attack-3", -20.0, 75.0)
	s4 := DeriveSeed(43, "attack-3", -20.0, 50.0)
	if s1 != s2 {
		t.Fatal("derivation must be deterministic")
	}
	if s1 == s3 || s1 == s4 {
		t.Fatal("different coordinates or bases must derive different seeds")
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	recs := []Record{
		{{"sweep", "grid"}, {"scale_pc", -20.0}, {"accuracy", 0.75}},
		{{"sweep", "grid"}, {"scale_pc", 20.0}, {"accuracy", 0.5}},
	}
	for _, r := range recs {
		if err := s.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	want := `{"sweep":"grid","scale_pc":-20,"accuracy":0.75}
{"sweep":"grid","scale_pc":20,"accuracy":0.5}
`
	if buf.String() != want {
		t.Fatalf("jsonl output:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestCSVSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewCSVSink(&buf)
	if err := s.Write(Record{{"a", 1.5}, {"b", "x"}, {"n", 3}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(Record{{"a", -0.25}, {"b", "y"}, {"n", 4}}); err != nil {
		t.Fatal(err)
	}
	// A record whose fields disagree with the header must be rejected.
	if err := s.Write(Record{{"a", 1.0}, {"wrong", "z"}, {"n", 5}}); err == nil {
		t.Fatal("mismatched field name must fail")
	}
	if err := s.Write(Record{{"a", 1.0}}); err == nil {
		t.Fatal("short record must fail")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{"a,b,n", "1.5,x,3", "-0.25,y,4", ""}, "\n")
	if buf.String() != want {
		t.Fatalf("csv output:\n%q\nwant:\n%q", buf.String(), want)
	}
}

// recordingExecutor proves the executor seam: it counts which job keys
// reached Execute, standing in for a remote dispatcher.
type recordingExecutor struct {
	mu   sync.Mutex
	keys []string
}

func (e *recordingExecutor) Execute(j Job[int]) (int, error) {
	e.mu.Lock()
	e.keys = append(e.keys, j.Key)
	e.mu.Unlock()
	return j.Run()
}

// TestPoolExecutorSeam: an injected Executor sees exactly the jobs the
// cache and the in-flight table could not serve — one Execute per
// distinct missed key — and results stay byte-identical to the local
// path. This is the remote-worker contract: a dispatcher never
// receives a key twice in one batch, and cached cells never leave the
// process.
func TestPoolExecutorSeam(t *testing.T) {
	cache := NewMemoryCache[int]()
	cache.Put("warm", 99)
	exec := &recordingExecutor{}
	pool := &Pool[int]{Workers: 4, Cache: cache, Executor: exec}

	jobs := []Job[int]{
		{Label: "a", Key: "warm", Run: func() (int, error) { t.Error("cached job must not run"); return 0, nil }},
		{Label: "b", Key: "cold", Run: func() (int, error) { return 7, nil }},
		{Label: "c", Key: "cold", Run: func() (int, error) { return 7, nil }},
		{Label: "d", Key: "", Run: func() (int, error) { return 3, nil }},
	}
	got, err := pool.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{99, 7, 7, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("results = %v, want %v", got, want)
		}
	}

	sort.Strings(exec.keys)
	// "cold" exactly once (singleflight), "" for the keyless job,
	// never "warm".
	if len(exec.keys) != 2 || exec.keys[0] != "" || exec.keys[1] != "cold" {
		t.Fatalf("executor saw keys %q, want [\"\" cold]", exec.keys)
	}

	// The default (nil Executor) path computes the same results.
	cache2 := NewMemoryCache[int]()
	cache2.Put("warm", 99)
	pool2 := &Pool[int]{Workers: 4, Cache: cache2}
	jobs[0].Run = func() (int, error) { t.Error("cached job must not run"); return 0, nil }
	got2, err := pool2.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != got2[i] {
			t.Fatalf("executor path diverged from local path: %v vs %v", got, got2)
		}
	}
}
