package runner

import (
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"
)

// ProgressLine renders a live one-line campaign status — completed
// cells, throughput, cache-hit rate, ETA and the current job label —
// redrawn in place with carriage returns. It consumes the same
// Progress stream the pool already emits, so attaching it changes
// nothing about what a campaign computes.
//
// A nil *ProgressLine accepts the full API as a no-op, so callers can
// construct one conditionally (NewProgressLine returns nil off a
// terminal) and wire it unconditionally.
type ProgressLine struct {
	mu       sync.Mutex
	w        io.Writer
	lastLen  int
	lastDraw time.Time
	done     int64
	hits     int64
	wrote    bool
}

// NewProgressLine returns a live progress renderer writing to f, or
// nil when disabled or when f is not a terminal — a redrawing line is
// for humans; logs and pipes keep their existing explicit streams.
func NewProgressLine(f *os.File, enabled bool) *ProgressLine {
	if !enabled || f == nil {
		return nil
	}
	if fi, err := f.Stat(); err != nil || fi.Mode()&os.ModeCharDevice == 0 {
		return nil
	}
	return &ProgressLine{w: f}
}

// Observe consumes one Progress event. Redraws are throttled to ~20/s
// except for the final event, which always renders.
func (l *ProgressLine) Observe(p Progress) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.done++
	if p.CacheHit {
		l.hits++
	}
	now := time.Now()
	final := p.Done == p.Total
	if !final && now.Sub(l.lastDraw) < 50*time.Millisecond {
		return
	}
	l.lastDraw = now

	var b strings.Builder
	fmt.Fprintf(&b, "%d/%d cells", p.Done, p.Total)
	if secs := p.Elapsed.Seconds(); secs > 0 {
		rate := float64(p.Done) / secs
		fmt.Fprintf(&b, " · %.1f/s", rate)
		if !final && rate > 0 {
			eta := time.Duration(float64(p.Total-p.Done)/rate) * time.Second
			fmt.Fprintf(&b, " · ETA %s", eta.Round(time.Second))
		}
	}
	if l.done > 0 {
		fmt.Fprintf(&b, " · hits %.0f%%", 100*float64(l.hits)/float64(l.done))
	}
	if p.Label != "" {
		fmt.Fprintf(&b, " · %s", p.Label)
	}
	line := b.String()
	const maxLine = 120
	if len(line) > maxLine {
		line = line[:maxLine-1] + "…"
	}
	pad := ""
	if n := l.lastLen - len(line); n > 0 {
		pad = strings.Repeat(" ", n)
	}
	fmt.Fprintf(l.w, "\r%s%s", line, pad)
	l.lastLen = len(line)
	l.wrote = true
}

// Finish terminates the redrawn line with a newline (if anything was
// drawn), so subsequent output starts clean. Safe to call on nil and
// more than once.
func (l *ProgressLine) Finish() {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.wrote {
		fmt.Fprintln(l.w)
		l.wrote = false
		l.lastLen = 0
	}
}

// ChainProgress composes progress observers into one callback; nil
// functions are skipped. Returns nil when every observer is nil, so
// pools see "no observer" instead of a useless indirection.
func ChainProgress(fns ...func(Progress)) func(Progress) {
	live := fns[:0:0]
	for _, fn := range fns {
		if fn != nil {
			live = append(live, fn)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return func(p Progress) {
		for _, fn := range live {
			fn(p)
		}
	}
}
