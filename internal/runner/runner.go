// Package runner executes fault-injection campaigns on a worker pool.
//
// A campaign (internal/core's sweeps over attack configurations) is a
// list of independent jobs: each job is built from an attack plan, the
// experiment configuration, and a deterministically derived seed, so a
// job's result depends only on its specification — never on wall-clock
// time, scheduling, or which worker happens to run it. The pool
// exploits that independence three ways:
//
//   - Parallelism. Jobs run on Workers goroutines (GOMAXPROCS by
//     default) while results are collected in job order, so output is
//     byte-identical to serial execution regardless of worker count.
//   - Caching. Jobs carry a content-address (see KeyOf) over their full
//     specification; a Cache returns previously computed results and an
//     in-flight singleflight collapses duplicate jobs within a batch,
//     so shared work (e.g. a campaign's attack-free baseline) is
//     computed exactly once.
//   - Streaming. OnResult observes the completed contiguous prefix in
//     job order (feeding JSONL/CSV sinks, see sink.go) and OnProgress
//     observes every completion as it happens.
//
// Error semantics match serial execution: the error returned is the one
// the lowest-indexed failing job produced, and OnResult never sees a
// result at or beyond the first failing index.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"snnfi/internal/obs"
)

// Job is one unit of campaign work.
type Job[T any] struct {
	// Label names the job in progress reports and error messages.
	Label string
	// Key is the content-address of the job's specification: a hash of
	// everything the result depends on (experiment config, attack plan,
	// seeds — see KeyOf). Jobs with equal keys must compute equal
	// results. An empty key disables caching and deduplication.
	Key string
	// Run computes the result. It must be safe to call concurrently
	// with other jobs' Run functions.
	Run func() (T, error)
}

// Progress reports one completed job. Callbacks are serialized but may
// arrive in any job order; Done is the number of jobs finished so far.
type Progress struct {
	Done  int
	Total int
	// Index is the completed job's position in the batch (the order
	// results are collected in), as opposed to Done's completion count.
	Index int
	Label string
	// CacheHit is true when the job's result was not computed by its
	// own Run call: it was served by the cache or by another job with
	// the same key (in-flight or already finished in this batch). The
	// accounting is deterministic — for K duplicate keys in a batch,
	// exactly one job computes and K−1 report CacheHit — regardless of
	// scheduling and of whether a Cache is attached.
	CacheHit bool
	// Elapsed is the time since the batch started, so observers can
	// derive rates and ETAs without their own clock.
	Elapsed time.Duration
}

// Pool runs batches of jobs on a fixed number of workers.
type Pool[T any] struct {
	// Workers is the pool width; ≤0 means runtime.GOMAXPROCS(0).
	Workers int
	// Cache, when non-nil, memoizes results by Job.Key.
	Cache Cache[T]
	// OnProgress, when non-nil, observes every job completion.
	OnProgress func(Progress)
	// OnResult, when non-nil, observes results strictly in job order
	// (the completed contiguous prefix, ending before the first failed
	// job). Returning an error aborts the batch.
	OnResult func(index int, v T, cacheHit bool) error
	// Obs, when non-nil, receives the pool's telemetry: per-job queue
	// and run duration histograms ("<name>.wait", "<name>.run"), job
	// and cache-hit counters ("<name>.jobs", "<name>.hits"), and
	// per-batch worker-count and utilization gauges ("<name>.workers",
	// "<name>.utilization", busy time over workers × wall). Telemetry
	// never affects results (it observes completions the pool already
	// serializes); a nil registry costs nothing.
	Obs *obs.Registry
	// Name prefixes the pool's metric names in Obs; empty means "pool".
	// Subsystems that own a pool set it so their phases stay separate
	// ("core.cells", "snn.eval", "neuron.sweep").
	Name string
	// Executor, when non-nil, computes the jobs the cache and the
	// in-flight table could not serve; nil means LocalExecutor (run the
	// job in the worker goroutine). The cache/singleflight layers sit
	// in front of it either way, so an executor sees each distinct
	// missed key exactly once per batch.
	Executor Executor[T]
}

// Executor is where a cache-missed job's computation happens. The
// pool owns scheduling, caching, in-flight deduplication and ordered
// collection; the executor owns only the compute, so local goroutines
// and remote workers are the same interface. LocalExecutor (the
// default) calls the job's Run in the worker goroutine; a remote
// executor instead dispatches the job — by its content address — to
// another process or host and returns the fetched result. Execute
// must be safe for concurrent use.
type Executor[T any] interface {
	Execute(j Job[T]) (T, error)
}

// LocalExecutor computes jobs in-process — the seam's identity
// element, and the executor every pool uses unless one is injected.
type LocalExecutor[T any] struct{}

// Execute implements Executor.
func (LocalExecutor[T]) Execute(j Job[T]) (T, error) { return j.Run() }

// flight tracks one computation of a cache key within a batch so
// duplicate jobs wait for the leader instead of recomputing. Entries
// are retained for the whole batch (never deleted), which makes
// duplicate-key accounting deterministic even without a Cache: a
// duplicate dispatched after its leader finished still finds the
// flight and reports a hit, instead of silently recomputing.
type flight[T any] struct {
	done chan struct{}
	v    T
	err  error
}

// Run executes the jobs and returns their results in job order. On
// failure it returns a nil slice and the first failing job's error —
// the same error serial execution would have stopped on, because the
// dispatcher hands out indices in order and stops at the first failure,
// so every job below the reported index has run to completion.
func (p *Pool[T]) Run(jobs []Job[T]) ([]T, error) {
	n := len(jobs)
	if n == 0 {
		return nil, nil
	}
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	results := make([]T, n)
	errs := make([]error, n)
	hits := make([]bool, n)
	done := make([]bool, n)

	var (
		mu       sync.Mutex // guards results/errs/hits/done and emission state
		nextEmit int
		emitErr  error
		finished int
	)
	flights := make(map[string]*flight[T])
	var flightMu sync.Mutex

	stop := make(chan struct{})
	var stopOnce sync.Once
	abort := func() { stopOnce.Do(func() { close(stop) }) }

	idx := make(chan int)
	go func() {
		defer close(idx)
		for i := 0; i < n; i++ {
			select {
			case idx <- i:
			case <-stop:
				return
			}
		}
	}()

	// Pool telemetry: instruments are resolved once per batch, and
	// every per-job method below is nil-safe, so a pool without a
	// registry pays only the time.Now calls Progress.Elapsed needs
	// anyway.
	batchStart := time.Now()
	var busyNs atomic.Int64
	name := p.Name
	if name == "" {
		name = "pool"
	}
	var (
		waitHist = p.Obs.Histogram(name + ".wait")
		runHist  = p.Obs.Histogram(name + ".run")
		jobsCnt  = p.Obs.Counter(name + ".jobs")
		hitsCnt  = p.Obs.Counter(name + ".hits")
	)

	var exec Executor[T] = p.Executor
	if exec == nil {
		exec = LocalExecutor[T]{}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				jobStart := time.Now()
				waitHist.Observe(jobStart.Sub(batchStart))
				v, hit, err := p.runOne(exec, jobs[i], flights, &flightMu)
				jobDur := time.Since(jobStart)
				busyNs.Add(int64(jobDur))
				runHist.Observe(jobDur)
				jobsCnt.Inc()
				if hit {
					hitsCnt.Inc()
				}

				mu.Lock()
				results[i], errs[i], hits[i], done[i] = v, err, hit, true
				finished++
				if err != nil {
					abort()
				}
				for nextEmit < n && done[nextEmit] && errs[nextEmit] == nil && emitErr == nil {
					if p.OnResult != nil {
						if e := p.OnResult(nextEmit, results[nextEmit], hits[nextEmit]); e != nil {
							emitErr = fmt.Errorf("runner: result sink at job %d (%s): %w",
								nextEmit, jobs[nextEmit].Label, e)
							abort()
							break
						}
					}
					nextEmit++
				}
				if p.OnProgress != nil {
					p.OnProgress(Progress{
						Done: finished, Total: n, Index: i,
						Label: jobs[i].Label, CacheHit: hit,
						Elapsed: time.Since(batchStart),
					})
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if p.Obs != nil {
		wall := time.Since(batchStart)
		p.Obs.Gauge(name + ".workers").Set(float64(workers))
		if wall > 0 {
			p.Obs.Gauge(name + ".utilization").Set(
				float64(busyNs.Load()) / (float64(workers) * float64(wall)))
		}
	}

	for i := range errs {
		if errs[i] != nil {
			return nil, errs[i]
		}
	}
	if emitErr != nil {
		return nil, emitErr
	}
	return results, nil
}

// runOne executes a single job through the cache and the in-flight
// deduplication table; exec is where the computation itself happens
// (local by default — see Executor).
func (p *Pool[T]) runOne(exec Executor[T], j Job[T], flights map[string]*flight[T], flightMu *sync.Mutex) (T, bool, error) {
	if j.Key == "" {
		v, err := exec.Execute(j)
		return v, false, err
	}
	if p.Cache != nil {
		if v, ok := p.Cache.Get(j.Key); ok {
			return v, true, nil
		}
	}
	flightMu.Lock()
	if f, ok := flights[j.Key]; ok {
		flightMu.Unlock()
		<-f.done
		if f.err != nil {
			var zero T
			return zero, false, f.err
		}
		return f.v, true, nil
	}
	// Recheck the cache before becoming leader: another Put (a previous
	// batch, a concurrent process sharing a disk cache) may have landed
	// between our lock-free Get above and taking flightMu.
	if p.Cache != nil {
		if v, ok := p.Cache.Get(j.Key); ok {
			flightMu.Unlock()
			return v, true, nil
		}
	}
	f := &flight[T]{done: make(chan struct{})}
	flights[j.Key] = f
	flightMu.Unlock()

	f.v, f.err = exec.Execute(j)
	if f.err == nil && p.Cache != nil {
		p.Cache.Put(j.Key, f.v)
	}
	close(f.done)
	return f.v, false, f.err
}
