package runner

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"snnfi/internal/obs"
)

// storeStub is a minimal in-memory implementation of the store
// protocol (the cmd/cached wire format), with per-route failure
// injection so the client's retry/backoff and degrade-to-miss paths
// can be driven deterministically.
type storeStub struct {
	mu    sync.Mutex
	cells map[string][]byte

	// failNext[method] forces that many 500s before the next success.
	failNext map[string]*atomic.Int64
	requests atomic.Int64
}

func newStoreStub() *storeStub {
	return &storeStub{
		cells: map[string][]byte{},
		failNext: map[string]*atomic.Int64{
			http.MethodGet: {}, http.MethodPut: {},
		},
	}
}

func (s *storeStub) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if f := s.failNext[r.Method]; f != nil && f.Load() > 0 {
		f.Add(-1)
		http.Error(w, "injected failure", http.StatusInternalServerError)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case r.Method == http.MethodGet && r.URL.Path == "/manifest/network":
		keys := make([]string, 0, len(s.cells))
		for k := range s.cells {
			keys = append(keys, k)
		}
		json.NewEncoder(w).Encode(keys)
	case r.Method == http.MethodGet:
		key := r.URL.Path[len("/cell/network/"):]
		data, ok := s.cells[key]
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Write(data)
	case r.Method == http.MethodPut:
		key := r.URL.Path[len("/cell/network/"):]
		data, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.cells[key] = data
		w.WriteHeader(http.StatusNoContent)
	default:
		http.NotFound(w, r)
	}
}

func newTestHTTPCache[T any](t *testing.T) (*HTTPCache[T], *storeStub) {
	t.Helper()
	stub := newStoreStub()
	srv := httptest.NewServer(stub)
	t.Cleanup(srv.Close)
	c := NewHTTPCache[T](srv.URL, "network")
	c.Backoff = time.Millisecond // keep retry tests fast
	return c, stub
}

func TestHTTPCacheRoundTrip(t *testing.T) {
	c, _ := newTestHTTPCache[cachedResult](t)

	if _, ok := c.Get("k1"); ok {
		t.Fatal("empty store must miss")
	}
	want := cachedResult{Name: "cell", Acc: 0.125}
	c.Put("k1", want)
	got, ok := c.Get("k1")
	if !ok || got != want {
		t.Fatalf("round trip = %+v, %v; want %+v", got, ok, want)
	}
	if h, m := c.Stats(); h != 1 || m != 1 {
		t.Fatalf("stats = %d hits/%d misses, want 1/1", h, m)
	}
	if c.Err() != nil {
		t.Fatalf("unexpected persistence error: %v", c.Err())
	}

	keys, err := c.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != "k1" {
		t.Fatalf("manifest = %v, want [k1]", keys)
	}
}

// TestHTTPCacheRetrySucceeds: transient 5xx responses are retried with
// backoff and the operation still succeeds within the attempt budget,
// counting one retry per extra attempt.
func TestHTTPCacheRetrySucceeds(t *testing.T) {
	c, stub := newTestHTTPCache[cachedResult](t)
	c.Put("k", cachedResult{Name: "v"})

	stub.failNext[http.MethodGet].Store(2) // 2 failures, 3rd attempt wins
	if _, ok := c.Get("k"); !ok {
		t.Fatal("get must survive transient failures")
	}
	if r := c.Retries(); r != 2 {
		t.Fatalf("retries = %d, want 2", r)
	}
	if e := c.Errors(); e != 0 {
		t.Fatalf("errors = %d, want 0 (the operation succeeded)", e)
	}

	stub.failNext[http.MethodPut].Store(1)
	c.Put("k2", cachedResult{Name: "v2"})
	if c.Err() != nil {
		t.Fatalf("put with one transient failure must recover, got %v", c.Err())
	}
	if _, ok := c.Get("k2"); !ok {
		t.Fatal("recovered put must be readable")
	}
}

// TestHTTPCacheDegradeToMiss: a store that stays down exhausts the
// bounded retries and degrades exactly like a damaged DiskCache —
// Get misses (recompute, never fail), Put is remembered via Err and
// the one-shot warning, and the campaign goes on.
func TestHTTPCacheDegradeToMiss(t *testing.T) {
	c, stub := newTestHTTPCache[cachedResult](t)
	c.MaxAttempts = 3
	c.Put("k", cachedResult{Name: "v"})

	stub.failNext[http.MethodGet].Store(1000)
	if _, ok := c.Get("k"); ok {
		t.Fatal("a down store must degrade to a miss")
	}
	if e := c.Errors(); e != 1 {
		t.Fatalf("errors = %d, want 1 failed operation", e)
	}
	if r := c.Retries(); r != 2 {
		t.Fatalf("retries = %d, want MaxAttempts-1 = 2", r)
	}
	if c.Err() != nil {
		t.Fatal("lookup failures must never set the persistence error")
	}

	var warned int
	c.OnFirstWriteError = func(error) { warned++ }
	stub.failNext[http.MethodPut].Store(1000)
	c.Put("k2", cachedResult{Name: "x"})
	c.Put("k3", cachedResult{Name: "y"})
	if c.Err() == nil {
		t.Fatal("exhausted puts must be remembered")
	}
	if warned != 1 {
		t.Fatalf("OnFirstWriteError fired %d times, want exactly 1", warned)
	}
}

// TestHTTPCacheCorruptDegradesToMiss mirrors the DiskCache contract:
// a cell that arrives but does not decode counts as an error and a
// miss, never a failure.
func TestHTTPCacheCorruptDegradesToMiss(t *testing.T) {
	c, stub := newTestHTTPCache[cachedResult](t)
	stub.mu.Lock()
	stub.cells["bad"] = []byte("{not json")
	stub.mu.Unlock()
	if _, ok := c.Get("bad"); ok {
		t.Fatal("corrupt cell must miss")
	}
	if e := c.Errors(); e != 1 {
		t.Fatalf("errors = %d, want 1", e)
	}
}

// TestHTTPCacheInstrument checks the registry exports the cache's own
// atomics (counters and the round-trip histogram).
func TestHTTPCacheInstrument(t *testing.T) {
	c, stub := newTestHTTPCache[cachedResult](t)
	reg := obs.NewRegistry()
	c.Instrument(reg, "cache.http")

	c.Put("k", cachedResult{Name: "v"})
	stub.failNext[http.MethodGet].Store(1)
	c.Get("k")
	c.Get("absent")

	snap := reg.Snapshot()
	h, m := c.Stats()
	if snap.Counters["cache.http.hits"] != h || h != 1 {
		t.Fatalf("hits: registry %d, stats %d, want 1", snap.Counters["cache.http.hits"], h)
	}
	if snap.Counters["cache.http.misses"] != m || m != 1 {
		t.Fatalf("misses: registry %d, stats %d, want 1", snap.Counters["cache.http.misses"], m)
	}
	if snap.Counters["cache.http.puts"] != 1 {
		t.Fatalf("puts = %d, want 1", snap.Counters["cache.http.puts"])
	}
	if snap.Counters["cache.http.retries"] != c.Retries() || c.Retries() != 1 {
		t.Fatalf("retries = %d, want 1", snap.Counters["cache.http.retries"])
	}
	rt := snap.Histograms["cache.http.rt"]
	// One put + one get with one retry + one miss = 4 round trips.
	if rt.Count != 4 {
		t.Fatalf("round-trip histogram count = %d, want 4", rt.Count)
	}
}

// TestHTTPCacheInChain: the fabric composition — memory over HTTP —
// promotes store hits into the process-local tier, so a warm campaign
// pays one round trip per cell, not one per lookup.
func TestHTTPCacheInChain(t *testing.T) {
	httpc, stub := newTestHTTPCache[cachedResult](t)
	mem := NewMemoryCache[cachedResult]()
	chain := NewChain[cachedResult](Cache[cachedResult](mem), httpc)

	// Another process wrote the cell.
	data, _ := json.Marshal(cachedResult{Name: "remote", Acc: 1})
	stub.mu.Lock()
	stub.cells["k"] = data
	stub.mu.Unlock()

	if v, ok := chain.Get("k"); !ok || v.Name != "remote" {
		t.Fatalf("store cell not served through the chain: %+v %v", v, ok)
	}
	before := stub.requests.Load()
	if _, ok := chain.Get("k"); !ok {
		t.Fatal("promoted cell must hit")
	}
	if after := stub.requests.Load(); after != before {
		t.Fatalf("promoted lookup still hit the store (%d -> %d requests)", before, after)
	}
	if p := chain.Promotions(1); p != 1 {
		t.Fatalf("promotions = %d, want 1", p)
	}
}
