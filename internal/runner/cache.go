package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"reflect"
	"sync"

	"snnfi/internal/obs"
)

// Cache memoizes job results by content-address. Implementations must
// be safe for concurrent use.
type Cache[T any] interface {
	Get(key string) (T, bool)
	Put(key string, v T)
}

// MemoryCache is an in-process Cache with hit/miss accounting. The
// zero value and a nil pointer are both usable (a nil cache never hits
// and drops every Put), so callers can pass caches around without
// nil-guarding.
type MemoryCache[T any] struct {
	mu sync.Mutex
	m  map[string]T

	// Accounting lives in obs counters so Instrument can publish the
	// very same atomics into a telemetry registry — Stats() stays a
	// thin reader and can never disagree with the exported values.
	hits   obs.Counter
	misses obs.Counter
	puts   obs.Counter
}

// NewMemoryCache returns an empty cache.
func NewMemoryCache[T any]() *MemoryCache[T] {
	return &MemoryCache[T]{m: make(map[string]T)}
}

// Get returns the cached value for key, if any.
func (c *MemoryCache[T]) Get(key string) (T, bool) {
	var zero T
	if c == nil {
		return zero, false
	}
	c.mu.Lock()
	v, ok := c.m[key]
	c.mu.Unlock()
	if ok {
		c.hits.Inc()
		return v, true
	}
	c.misses.Inc()
	return zero, false
}

// Put stores v under key, replacing any previous value.
func (c *MemoryCache[T]) Put(key string, v T) {
	if c == nil {
		return
	}
	c.puts.Inc()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = make(map[string]T)
	}
	c.m[key] = v
}

// Len reports how many results the cache holds.
func (c *MemoryCache[T]) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Stats reports lookup hits and misses since creation.
func (c *MemoryCache[T]) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Value(), c.misses.Value()
}

// Puts reports how many values have been stored since creation
// (including Tiered promotions into this tier).
func (c *MemoryCache[T]) Puts() int64 {
	if c == nil {
		return 0
	}
	return c.puts.Value()
}

// Instrument publishes the cache's counters into r under
// "<name>.hits", "<name>.misses" and "<name>.puts". The registered
// counters are the cache's own accounting atomics, so the registry
// and Stats always agree. Nil receiver or registry is a no-op.
func (c *MemoryCache[T]) Instrument(r *obs.Registry, name string) {
	if c == nil {
		return
	}
	r.RegisterCounter(name+".hits", &c.hits)
	r.RegisterCounter(name+".misses", &c.misses)
	r.RegisterCounter(name+".puts", &c.puts)
}

// KeyOf content-addresses a job specification: it hashes an
// address-free canonical rendering of each part — configs, plans,
// seeds — into a hex digest.
//
// Contract: parts must be plain data — bools, integers, floats,
// complex numbers, strings, and arrays, slices, maps, structs and
// pointers thereof. Pointers are followed (a nil pointer renders as
// nil), so two structurally equal specifications key identically
// regardless of allocation — across processes included. Map entries
// are hashed in sorted key order. Channels, funcs, unsafe pointers and
// uintptrs identify runtime objects rather than data and make KeyOf
// panic. (The previous %#v-based implementation silently keyed nested
// pointer fields on their hex address, breaking cache determinism
// across processes.)
func KeyOf(parts ...any) string {
	h := sha256.New()
	for _, p := range parts {
		writeCanonical(h, reflect.ValueOf(p), 0)
		h.Write([]byte{0x1f})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// DeriveSeed deterministically derives a child seed from a base seed
// and a set of discriminators (e.g. sweep coordinates), for campaigns
// whose jobs need distinct but replayable randomness. Discriminators
// are rendered through the same address-free canonical form KeyOf
// uses (the previous %#v rendering embedded the hex addresses of
// pointer fields, which made seeds vary run to run), so replaying a
// campaign — at any worker count, in any process — reproduces every
// job's seed exactly. The KeyOf data-only contract applies.
func DeriveSeed(base int64, parts ...any) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d\x1f", base)
	for _, p := range parts {
		writeCanonical(h, reflect.ValueOf(p), 0)
		h.Write([]byte{0x1f})
	}
	return int64(h.Sum64())
}
