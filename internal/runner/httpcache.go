package runner

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"snnfi/internal/obs"
)

// StoreProtocol names the shared content-store wire format the HTTP
// backend speaks (see internal/fabric for the server side):
//
//	GET  {base}/cell/{tier}/{key}   → 200 JSON cell | 404 miss
//	PUT  {base}/cell/{tier}/{key}   → 204 stored
//	GET  {base}/manifest/{tier}     → 200 JSON array of held keys
//
// Bump it when a route or body changes meaning; client and server both
// embed it so a version skew fails loudly at health-check time.
const StoreProtocol = "snnfi-store-v1"

// HTTPCache is a Cache backed by a shared content store served over
// HTTP (cmd/cached), the third backend next to MemoryCache and
// DiskCache and the one that makes multi-process campaigns share one
// result namespace: every worker writes cells through it, every
// coordinator and warm rerun reads them back at web latency.
//
// Error semantics deliberately match DiskCache: a lookup never fails a
// campaign. Transient transport errors and 5xx responses are retried
// with exponential backoff up to MaxAttempts; an exhausted Get
// degrades to a miss (the cell is recomputed — correctness never
// depends on the store), an exhausted Put is remembered (Err,
// OnFirstWriteError) but non-fatal, and a cell that arrives corrupt
// counts as an error and a miss. The worst a broken store can do is
// cost recomputation.
//
// Values round-trip through encoding/json exactly as DiskCache's do,
// so a campaign resumed through the store streams byte-identical
// records.
type HTTPCache[T any] struct {
	base string // "{store}/cell/{tier}", no trailing slash
	man  string // "{store}/manifest/{tier}"

	// Client is the HTTP client used for every request; nil uses a
	// dedicated client with a 30 s per-request timeout.
	Client *http.Client
	// MaxAttempts bounds each operation's tries (first attempt
	// included); ≤0 means 4.
	MaxAttempts int
	// Backoff is the delay before the first retry, doubling per retry;
	// ≤0 means 50 ms.
	Backoff time.Duration
	// OnFirstWriteError, when non-nil, is called exactly once — on the
	// first Put that exhausted its retries — mirroring DiskCache's
	// the-moment-resumability-degrades warning.
	OnFirstWriteError func(error)

	// Accounting lives in obs instruments (see MemoryCache): Instrument
	// publishes these same atomics under cache.http.* names.
	hits    obs.Counter
	misses  obs.Counter
	puts    obs.Counter
	retries obs.Counter
	errs    obs.Counter
	rt      obs.Histogram // per-attempt HTTP round-trip duration

	mu  sync.Mutex
	err error
}

// NewHTTPCache points a cache at one tier ("network", "circuit") of a
// store's cell namespace. base is the store root, e.g.
// "http://127.0.0.1:8475".
func NewHTTPCache[T any](base, tier string) *HTTPCache[T] {
	root := strings.TrimRight(base, "/")
	return &HTTPCache[T]{
		base: root + "/cell/" + tier,
		man:  root + "/manifest/" + tier,
	}
}

func (c *HTTPCache[T]) client() *http.Client {
	if c.Client != nil {
		return c.Client
	}
	return defaultStoreClient
}

// defaultStoreClient bounds every request: a hung store must degrade
// to a miss, not wedge the campaign.
var defaultStoreClient = &http.Client{Timeout: 30 * time.Second}

func (c *HTTPCache[T]) attempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 4
}

func (c *HTTPCache[T]) backoff() time.Duration {
	if c.Backoff > 0 {
		return c.Backoff
	}
	return 50 * time.Millisecond
}

// do runs one request with bounded retry + exponential backoff,
// timing every attempt into the round-trip histogram. Retryable
// outcomes are transport errors and 5xx responses; everything else
// (200, 404, 4xx) is returned to the caller. On exhaustion the last
// error (or a status error) is returned.
func (c *HTTPCache[T]) do(method, url string, body []byte) (*http.Response, error) {
	var lastErr error
	delay := c.backoff()
	for attempt := 0; attempt < c.attempts(); attempt++ {
		if attempt > 0 {
			c.retries.Inc()
			time.Sleep(delay)
			delay *= 2
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, url, rd)
		if err != nil {
			return nil, err // malformed URL: retrying cannot help
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		span := c.rt.Span()
		resp, err := c.client().Do(req)
		span.End()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode >= 500 {
			// Drain so the connection is reusable, then retry.
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			lastErr = fmt.Errorf("store %s %s: %s", method, url, resp.Status)
			continue
		}
		return resp, nil
	}
	return nil, lastErr
}

// Get fetches the cell for key. Any failure — exhausted retries, an
// unexpected status, a body that does not decode — degrades to a miss
// (counted in the errors counter); a plain 404 is an ordinary miss.
func (c *HTTPCache[T]) Get(key string) (T, bool) {
	var zero T
	if c == nil {
		return zero, false
	}
	resp, err := c.do(http.MethodGet, c.base+"/"+key, nil)
	if err != nil {
		c.errs.Inc()
		c.misses.Inc()
		return zero, false
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var v T
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			c.errs.Inc()
			c.misses.Inc()
			return zero, false
		}
		c.hits.Inc()
		return v, true
	case http.StatusNotFound:
		c.misses.Inc()
		return zero, false
	default:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		c.errs.Inc()
		c.misses.Inc()
		return zero, false
	}
}

// Put stores v under key. Exhausted retries and rejected writes are
// remembered (Err) and warned once but never fatal — a cell that
// fails to reach the store is recomputed by whoever needs it next.
func (c *HTTPCache[T]) Put(key string, v T) {
	if c == nil {
		return
	}
	c.puts.Inc()
	data, err := json.Marshal(v)
	if err != nil {
		c.setErr(err)
		return
	}
	resp, err := c.do(http.MethodPut, c.base+"/"+key, data)
	if err != nil {
		c.setErr(err)
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK &&
		resp.StatusCode != http.StatusCreated {
		c.setErr(fmt.Errorf("store PUT %s/%s: %s", c.base, key, resp.Status))
	}
}

// Manifest fetches the keys the store's tier currently holds, sorted
// by the server — the cross-process audit view AuditScenario consumes.
// Unlike Get/Put it returns its error: sharding decisions must not be
// made against a silently empty manifest.
func (c *HTTPCache[T]) Manifest() ([]string, error) {
	if c == nil {
		return nil, nil
	}
	resp, err := c.do(http.MethodGet, c.man, nil)
	if err != nil {
		return nil, fmt.Errorf("store manifest: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("store manifest: %s", resp.Status)
	}
	var keys []string
	if err := json.NewDecoder(resp.Body).Decode(&keys); err != nil {
		return nil, fmt.Errorf("store manifest: %w", err)
	}
	return keys, nil
}

// Err reports the first persistence failure, if any (see DiskCache.Err
// — the same surface, so cli.Session tracks both kinds of tier).
func (c *HTTPCache[T]) Err() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Stats reports lookup hits and misses since creation.
func (c *HTTPCache[T]) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Value(), c.misses.Value()
}

// Retries reports how many extra attempts backoff has spent.
func (c *HTTPCache[T]) Retries() int64 {
	if c == nil {
		return 0
	}
	return c.retries.Value()
}

// Errors reports how many operations finally failed after retries.
func (c *HTTPCache[T]) Errors() int64 {
	if c == nil {
		return 0
	}
	return c.errs.Value()
}

// Instrument publishes the cache's counters and round-trip histogram
// into r under "<name>.{hits,misses,puts,retries,errors}" and
// "<name>.rt" — the same atomics Stats/Retries/Errors read.
func (c *HTTPCache[T]) Instrument(r *obs.Registry, name string) {
	if c == nil {
		return
	}
	r.RegisterCounter(name+".hits", &c.hits)
	r.RegisterCounter(name+".misses", &c.misses)
	r.RegisterCounter(name+".puts", &c.puts)
	r.RegisterCounter(name+".retries", &c.retries)
	r.RegisterCounter(name+".errors", &c.errs)
	r.RegisterHistogram(name+".rt", &c.rt)
}

func (c *HTTPCache[T]) setErr(err error) {
	c.errs.Inc()
	c.mu.Lock()
	first := c.err == nil
	if first {
		c.err = err
	}
	warn := c.OnFirstWriteError
	c.mu.Unlock()
	if first && warn != nil {
		warn(err)
	}
}
