package runner

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
)

// Field is one named value of a result record. Records carry ordered
// fields (not maps) so sink output is deterministic.
type Field struct {
	Name  string
	Value any
}

// Record is one result row, e.g. one sweep point.
type Record []Field

// Sink consumes result records as a campaign streams them. Writes
// arrive in job order (the pool emits the completed prefix); Close
// flushes buffered output and closes the underlying writer when it is
// an io.Closer.
type Sink interface {
	Write(Record) error
	Close() error
}

// JSONLSink writes one JSON object per record, one record per line,
// preserving field order.
type JSONLSink struct {
	mu sync.Mutex
	w  *bufio.Writer
	c  io.Closer
}

// NewJSONLSink wraps w in a buffered JSON-lines sink.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Write emits rec as one JSON line.
func (s *JSONLSink) Write(rec Record) error {
	var b bytes.Buffer
	b.WriteByte('{')
	for i, f := range rec {
		if i > 0 {
			b.WriteByte(',')
		}
		name, err := json.Marshal(f.Name)
		if err != nil {
			return fmt.Errorf("runner: jsonl field %q: %w", f.Name, err)
		}
		val, err := json.Marshal(f.Value)
		if err != nil {
			return fmt.Errorf("runner: jsonl field %q: %w", f.Name, err)
		}
		b.Write(name)
		b.WriteByte(':')
		b.Write(val)
	}
	b.WriteString("}\n")
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.w.Write(b.Bytes())
	return err
}

// Close flushes the buffer and closes the underlying writer if it is
// closable.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Flush(); err != nil {
		return err
	}
	if s.c != nil {
		return s.c.Close()
	}
	return nil
}

// CSVSink writes records as CSV rows. The first record fixes the
// header (its field names, in order); later records must carry the
// same fields in the same order.
type CSVSink struct {
	mu     sync.Mutex
	cw     *csv.Writer
	c      io.Closer
	header []string
}

// NewCSVSink wraps w in a CSV sink.
func NewCSVSink(w io.Writer) *CSVSink {
	s := &CSVSink{cw: csv.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Write emits rec as one CSV row, writing the header first if this is
// the first record.
func (s *CSVSink) Write(rec Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.header == nil {
		s.header = make([]string, len(rec))
		for i, f := range rec {
			s.header[i] = f.Name
		}
		if err := s.cw.Write(s.header); err != nil {
			return err
		}
	}
	if len(rec) != len(s.header) {
		return fmt.Errorf("runner: csv record has %d fields, header has %d", len(rec), len(s.header))
	}
	row := make([]string, len(rec))
	for i, f := range rec {
		if f.Name != s.header[i] {
			return fmt.Errorf("runner: csv field %d is %q, header says %q", i, f.Name, s.header[i])
		}
		row[i] = formatValue(f.Value)
	}
	return s.cw.Write(row)
}

// Close flushes pending rows and closes the underlying writer if it is
// closable.
func (s *CSVSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cw.Flush()
	if err := s.cw.Error(); err != nil {
		return err
	}
	if s.c != nil {
		return s.c.Close()
	}
	return nil
}

// formatValue renders a field value for CSV: floats in shortest
// round-trip form, everything else via %v.
func formatValue(v any) string {
	switch x := v.(type) {
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case float32:
		return strconv.FormatFloat(float64(x), 'g', -1, 32)
	case string:
		return x
	default:
		return fmt.Sprintf("%v", v)
	}
}
