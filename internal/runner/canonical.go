package runner

import (
	"fmt"
	"io"
	"reflect"
	"sort"
	"strconv"
	"strings"
)

// maxCanonicalDepth bounds recursion through pointers so cyclic
// structures fail loudly instead of hanging.
const maxCanonicalDepth = 64

// writeCanonical renders v into w in a canonical, address-free form:
//
//   - pointers are followed (nil renders as "nil"), so two structurally
//     equal values hash equal regardless of where they are allocated —
//     unlike %#v, which prints the hex address of nested pointer fields;
//   - map entries are emitted in sorted rendered-key order, so the hash
//     does not depend on iteration order;
//   - floats render as exact hex float strings ('x'), so distinct values
//     are never conflated by decimal shortening;
//   - every node is prefixed with its type, so values of different
//     types cannot collide.
//
// Channels, funcs, unsafe pointers and uintptrs panic: they identify
// runtime objects, not data, and a key built from them could never be
// reproduced in another process.
func writeCanonical(w io.Writer, v reflect.Value, depth int) {
	if depth > maxCanonicalDepth {
		panic("runner: KeyOf: value nests deeper than 64 levels (cycle?)")
	}
	if !v.IsValid() {
		io.WriteString(w, "nil")
		return
	}
	t := v.Type()
	switch v.Kind() {
	case reflect.Bool:
		fmt.Fprintf(w, "%s(%t)", t, v.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		fmt.Fprintf(w, "%s(%d)", t, v.Int())
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		fmt.Fprintf(w, "%s(%d)", t, v.Uint())
	case reflect.Float32, reflect.Float64:
		fmt.Fprintf(w, "%s(%s)", t, strconv.FormatFloat(v.Float(), 'x', -1, 64))
	case reflect.Complex64, reflect.Complex128:
		c := v.Complex()
		fmt.Fprintf(w, "%s(%s,%s)", t,
			strconv.FormatFloat(real(c), 'x', -1, 64),
			strconv.FormatFloat(imag(c), 'x', -1, 64))
	case reflect.String:
		fmt.Fprintf(w, "%s(%q)", t, v.String())
	case reflect.Pointer:
		if v.IsNil() {
			fmt.Fprintf(w, "%s(nil)", t)
			return
		}
		fmt.Fprintf(w, "&")
		writeCanonical(w, v.Elem(), depth+1)
	case reflect.Interface:
		if v.IsNil() {
			io.WriteString(w, "nil")
			return
		}
		writeCanonical(w, v.Elem(), depth+1)
	case reflect.Slice:
		if v.IsNil() {
			fmt.Fprintf(w, "%s(nil)", t)
			return
		}
		fallthrough
	case reflect.Array:
		fmt.Fprintf(w, "%s[", t)
		for i := 0; i < v.Len(); i++ {
			if i > 0 {
				io.WriteString(w, ",")
			}
			writeCanonical(w, v.Index(i), depth+1)
		}
		io.WriteString(w, "]")
	case reflect.Map:
		if v.IsNil() {
			fmt.Fprintf(w, "%s(nil)", t)
			return
		}
		keys := v.MapKeys()
		rendered := make([]string, len(keys))
		for i, k := range keys {
			var kb strings.Builder
			writeCanonical(&kb, k, depth+1)
			rendered[i] = kb.String()
		}
		idx := make([]int, len(keys))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return rendered[idx[a]] < rendered[idx[b]] })
		fmt.Fprintf(w, "%s{", t)
		for n, i := range idx {
			if n > 0 {
				io.WriteString(w, ",")
			}
			io.WriteString(w, rendered[i])
			io.WriteString(w, ":")
			writeCanonical(w, v.MapIndex(keys[i]), depth+1)
		}
		io.WriteString(w, "}")
	case reflect.Struct:
		fmt.Fprintf(w, "%s{", t)
		for i := 0; i < v.NumField(); i++ {
			if i > 0 {
				io.WriteString(w, ",")
			}
			fmt.Fprintf(w, "%s:", t.Field(i).Name)
			writeCanonical(w, v.Field(i), depth+1)
		}
		io.WriteString(w, "}")
	default:
		// Chan, Func, UnsafePointer, Uintptr.
		panic(fmt.Sprintf("runner: KeyOf: cannot canonicalize %s (kind %s): identifies a runtime object, not data", t, v.Kind()))
	}
}
