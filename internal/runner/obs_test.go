package runner

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"snnfi/internal/obs"
)

// TestDedupHitAccountingWithoutCache pins the singleflight accounting
// contract: for K jobs sharing a key, exactly one computes and K−1
// report CacheHit — with no Cache attached and at worker count 1,
// where every duplicate is dispatched only after its leader finished.
// (Before flights were retained for the batch, this case silently
// recomputed every duplicate and reported zero hits.)
func TestDedupHitAccountingWithoutCache(t *testing.T) {
	const n = 8
	var runs atomic.Int64
	jobs := make([]Job[int], n)
	for i := range jobs {
		jobs[i] = Job[int]{
			Label: "shared",
			Key:   "dup-key",
			Run: func() (int, error) {
				runs.Add(1)
				return 7, nil
			},
		}
	}
	for _, workers := range []int{1, 4} {
		runs.Store(0)
		var mu sync.Mutex
		hits := 0
		p := &Pool[int]{
			Workers: workers,
			OnProgress: func(pr Progress) {
				mu.Lock()
				defer mu.Unlock()
				if pr.CacheHit {
					hits++
				}
			},
		}
		got, err := p.Run(jobs)
		if err != nil {
			t.Fatal(err)
		}
		if r := runs.Load(); r != 1 {
			t.Fatalf("workers=%d: duplicate key computed %d times, want 1", workers, r)
		}
		if hits != n-1 {
			t.Fatalf("workers=%d: %d cache hits reported, want %d", workers, hits, n-1)
		}
		for i, v := range got {
			if v != 7 {
				t.Fatalf("result[%d] = %d, want 7", i, v)
			}
		}
	}
}

// TestDedupLeaderErrorPropagates: waiters on a failed leader get the
// leader's error, not a stale value, and report no hit.
func TestDedupLeaderErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	jobs := make([]Job[int], 4)
	for i := range jobs {
		jobs[i] = Job[int]{Label: "bad", Key: "bad-key", Run: func() (int, error) { return 0, boom }}
	}
	hits := 0
	var mu sync.Mutex
	p := &Pool[int]{Workers: 1, OnProgress: func(pr Progress) {
		mu.Lock()
		defer mu.Unlock()
		if pr.CacheHit {
			hits++
		}
	}}
	if _, err := p.Run(jobs); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the leader's error", err)
	}
	if hits != 0 {
		t.Fatalf("failed duplicates reported %d hits, want 0", hits)
	}
}

func TestProgressIndexAndElapsed(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]bool{}
	p := &Pool[int]{
		Workers: 3,
		OnProgress: func(pr Progress) {
			mu.Lock()
			defer mu.Unlock()
			if pr.Elapsed < 0 {
				t.Errorf("Elapsed = %v, want ≥ 0", pr.Elapsed)
			}
			if pr.Index < 0 || pr.Index >= pr.Total {
				t.Errorf("Index = %d out of range [0,%d)", pr.Index, pr.Total)
			}
			seen[pr.Index] = true
		},
	}
	jobs := make([]Job[int], 6)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{Run: func() (int, error) {
			time.Sleep(time.Millisecond)
			return i, nil
		}}
	}
	if _, err := p.Run(jobs); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 6 {
		t.Fatalf("saw %d distinct indices, want 6 (each job reported once)", len(seen))
	}
}

func TestPoolTelemetry(t *testing.T) {
	reg := obs.NewRegistry()
	cache := NewMemoryCache[int]()
	cache.Put("k1", 41)
	jobs := []Job[int]{
		{Label: "hit", Key: "k1", Run: func() (int, error) { t.Error("cached job ran"); return 0, nil }},
		{Label: "miss", Key: "k2", Run: func() (int, error) {
			time.Sleep(2 * time.Millisecond)
			return 42, nil
		}},
	}
	p := &Pool[int]{Workers: 2, Cache: cache, Obs: reg, Name: "test.pool"}
	if _, err := p.Run(jobs); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("test.pool.jobs").Value(); got != 2 {
		t.Fatalf("jobs counter = %d, want 2", got)
	}
	if got := reg.Counter("test.pool.hits").Value(); got != 1 {
		t.Fatalf("hits counter = %d, want 1", got)
	}
	if got := reg.Histogram("test.pool.run").Count(); got != 2 {
		t.Fatalf("run histogram count = %d, want 2", got)
	}
	if got := reg.Histogram("test.pool.wait").Count(); got != 2 {
		t.Fatalf("wait histogram count = %d, want 2", got)
	}
	if got := reg.Gauge("test.pool.workers").Value(); got != 2 {
		t.Fatalf("workers gauge = %g, want 2", got)
	}
	util := reg.Gauge("test.pool.utilization").Value()
	if util <= 0 || util > 1 {
		t.Fatalf("utilization = %g, want (0,1]", util)
	}
	// The run histogram must account for the slow job.
	if s := reg.Histogram("test.pool.run").Summary(); s.MaxMs < 1 {
		t.Fatalf("run max = %gms, want ≥ 1ms", s.MaxMs)
	}
}

// TestTieredPromotionCounts pins the no-double-counting contract: a
// fast-miss/slow-hit lookup counts exactly one slow hit, one fast
// miss and one fast put (the promotion) — and the promoted entry then
// serves from the fast tier without touching the slow one again.
func TestTieredPromotionCounts(t *testing.T) {
	fast := NewMemoryCache[int]()
	slow, err := NewDiskCache[int](t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tiered := NewTiered[int](fast, slow)
	tiered.Put("k", 9) // 1 fast put, 1 slow put

	// Clear the fast tier to force promotion.
	fast2 := NewMemoryCache[int]()
	tiered = NewTiered[int](fast2, slow)
	if v, ok := tiered.Get("k"); !ok || v != 9 {
		t.Fatalf("get = %d,%v want 9,true", v, ok)
	}
	if h, m := slow.Stats(); h != 1 || m != 0 {
		t.Fatalf("slow stats = %d hits/%d misses, want exactly 1/0", h, m)
	}
	if h, m := fast2.Stats(); h != 0 || m != 1 {
		t.Fatalf("fast stats = %d hits/%d misses, want 0/1", h, m)
	}
	if p := fast2.Puts(); p != 1 {
		t.Fatalf("fast puts = %d, want exactly 1 (the promotion)", p)
	}
	if p := slow.Puts(); p != 1 {
		t.Fatalf("slow puts = %d, want 1 (no write-back on promotion)", p)
	}
	// Second lookup: fast tier serves, slow untouched.
	if _, ok := tiered.Get("k"); !ok {
		t.Fatal("promoted entry must hit")
	}
	if h, _ := slow.Stats(); h != 1 {
		t.Fatalf("slow hits = %d after promoted lookup, want still 1", h)
	}
	if h, _ := fast2.Stats(); h != 1 {
		t.Fatalf("fast hits = %d, want 1", h)
	}
}

// TestTieredRegistryMatchesStats hammers an instrumented tiered cache
// from many goroutines (run under -race in CI) and then requires the
// registry's exported counters to equal what Stats() reports — they
// are the same atomics, so any divergence is a wiring bug.
func TestTieredRegistryMatchesStats(t *testing.T) {
	reg := obs.NewRegistry()
	fast := NewMemoryCache[int]()
	slow, err := NewDiskCache[int](t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fast.Instrument(reg, "cache.fast")
	slow.Instrument(reg, "cache.slow")
	tiered := NewTiered[int](fast, slow)

	var wg sync.WaitGroup
	keys := []string{"a", "b", "c", "d"}
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := keys[(w+i)%len(keys)]
				if _, ok := tiered.Get(k); !ok {
					tiered.Put(k, i)
				}
			}
		}(w)
	}
	wg.Wait()

	snap := reg.Snapshot()
	fh, fm := fast.Stats()
	sh, sm := slow.Stats()
	checks := []struct {
		name string
		want int64
	}{
		{"cache.fast.hits", fh},
		{"cache.fast.misses", fm},
		{"cache.fast.puts", fast.Puts()},
		{"cache.slow.hits", sh},
		{"cache.slow.misses", sm},
		{"cache.slow.puts", slow.Puts()},
		{"cache.slow.corrupt", slow.Corrupt()},
		{"cache.slow.write_errors", slow.WriteErrors()},
	}
	for _, c := range checks {
		if got := snap.Counters[c.name]; got != c.want {
			t.Errorf("registry %s = %d, Stats says %d", c.name, got, c.want)
		}
	}
	// Sanity: every lookup is either a hit or a miss on each consulted
	// tier; fast sees all 1600 lookups.
	if fh+fm != 1600 {
		t.Fatalf("fast hits+misses = %d, want 1600", fh+fm)
	}
}

func TestDiskCacheCorruptCounter(t *testing.T) {
	dir := t.TempDir()
	c, err := NewDiskCache[int](dir)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("good", 1)
	if err := os.WriteFile(filepath.Join(dir, "bad.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("good"); !ok {
		t.Fatal("good entry must hit")
	}
	if _, ok := c.Get("bad"); ok {
		t.Fatal("corrupt entry must miss")
	}
	if _, ok := c.Get("absent"); ok {
		t.Fatal("absent entry must miss")
	}
	if got := c.Corrupt(); got != 1 {
		t.Fatalf("corrupt = %d, want 1 (absent entries are plain misses)", got)
	}
	if h, m := c.Stats(); h != 1 || m != 2 {
		t.Fatalf("stats = %d/%d, want 1 hit, 2 misses (corrupt counts as a miss)", h, m)
	}
}

func TestDiskCacheOnFirstWriteError(t *testing.T) {
	dir := t.TempDir()
	c, err := NewDiskCache[int](dir)
	if err != nil {
		t.Fatal(err)
	}
	var warned atomic.Int64
	c.OnFirstWriteError = func(err error) {
		if err == nil {
			t.Error("warning callback got nil error")
		}
		warned.Add(1)
	}
	// Make the directory unwritable so CreateTemp fails. Skip as root,
	// where permission bits don't bind.
	if os.Geteuid() == 0 {
		t.Skip("running as root; cannot provoke a write error via permissions")
	}
	if err := os.Chmod(dir, 0o500); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	c.Put("k", 1)
	c.Put("k2", 2)
	if warned.Load() != 1 {
		t.Fatalf("warning fired %d times over 2 failed puts, want exactly 1", warned.Load())
	}
	if c.Err() == nil {
		t.Fatal("Err must report the failure")
	}
	if c.WriteErrors() != 2 {
		t.Fatalf("write errors = %d, want 2", c.WriteErrors())
	}
}

func TestChainProgress(t *testing.T) {
	if ChainProgress(nil, nil) != nil {
		t.Fatal("all-nil chain must collapse to nil")
	}
	var a, b int
	fn := ChainProgress(func(Progress) { a++ }, nil, func(Progress) { b++ })
	fn(Progress{})
	if a != 1 || b != 1 {
		t.Fatalf("chain called a=%d b=%d, want 1/1", a, b)
	}
}

func TestProgressLineNilAndNonTTY(t *testing.T) {
	var l *ProgressLine
	l.Observe(Progress{Done: 1, Total: 2}) // must not panic
	l.Finish()
	f, err := os.CreateTemp(t.TempDir(), "notatty")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if NewProgressLine(f, true) != nil {
		t.Fatal("a regular file is not a terminal")
	}
	if NewProgressLine(nil, true) != nil {
		t.Fatal("nil file must disable the line")
	}
}
