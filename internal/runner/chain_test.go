package runner

import (
	"testing"

	"snnfi/internal/obs"
)

// TestChainThreeLevelPromotion pins the N-deep generalization of the
// old Tiered contract: a hit at the deepest level is promoted into
// every faster level (one Put each), deeper levels are never probed
// past the hit, and the promotion counters attribute the hit to the
// level that served it.
func TestChainThreeLevelPromotion(t *testing.T) {
	l0 := NewMemoryCache[int]()
	l1 := NewMemoryCache[int]()
	l2 := NewMemoryCache[int]()
	c := NewChain[int](l0, l1, l2)
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}

	// A deepest-only entry (another process wrote it through the shared
	// store) serves and promotes into both faster levels.
	l2.Put("cold", 7)
	if v, ok := c.Get("cold"); !ok || v != 7 {
		t.Fatalf("deep entry not served: %d %v", v, ok)
	}
	if v, ok := l0.Get("cold"); !ok || v != 7 {
		t.Fatal("deep hit not promoted to level 0")
	}
	if v, ok := l1.Get("cold"); !ok || v != 7 {
		t.Fatal("deep hit not promoted to level 1")
	}
	if p := c.Promotions(2); p != 1 {
		t.Fatalf("level-2 promotions = %d, want 1", p)
	}
	if p := c.Promotions(1); p != 0 {
		t.Fatalf("level-1 promotions = %d, want 0 (level 2 served)", p)
	}
	// Promotion cost exactly one Put per faster level, none downward.
	if p0, p1 := l0.Puts(), l1.Puts(); p0 != 1 || p1 != 1 {
		t.Fatalf("promotion puts = %d/%d, want exactly 1/1", p0, p1)
	}

	// The promoted entry now serves from the fastest level; deeper
	// levels see no more lookups.
	h1Before, m1Before := l1.Stats()
	if _, ok := c.Get("cold"); !ok {
		t.Fatal("promoted entry must hit")
	}
	if h1, m1 := l1.Stats(); h1 != h1Before || m1 != m1Before {
		t.Fatalf("level 1 probed after promotion: %d/%d -> %d/%d", h1Before, m1Before, h1, m1)
	}

	// A middle-level hit promotes only upward.
	l1.Put("mid", 3)
	if v, ok := c.Get("mid"); !ok || v != 3 {
		t.Fatalf("mid entry not served: %d %v", v, ok)
	}
	if _, ok := l0.Get("mid"); !ok {
		t.Fatal("mid hit not promoted to level 0")
	}
	if _, ok := l2.m["mid"]; ok {
		t.Fatal("promotion must never write downward")
	}
	if p := c.Promotions(1); p != 1 {
		t.Fatalf("level-1 promotions = %d, want 1", p)
	}

	// Write-through reaches every level.
	c.Put("k", 9)
	for i, l := range []*MemoryCache[int]{l0, l1, l2} {
		if v, ok := l.Get("k"); !ok || v != 9 {
			t.Fatalf("level %d missed write-through: %d %v", i, v, ok)
		}
	}

	// A full miss misses.
	if _, ok := c.Get("absent"); ok {
		t.Fatal("miss in all levels must miss")
	}
}

// TestChainDropsNilLevels: optional tiers are passed unconditionally;
// nil levels vanish instead of panicking at lookup time.
func TestChainDropsNilLevels(t *testing.T) {
	mem := NewMemoryCache[int]()
	c := NewChain[int](mem, nil, nil)
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1 after dropping nils", c.Len())
	}
	c.Put("k", 1)
	if v, ok := c.Get("k"); !ok || v != 1 {
		t.Fatalf("get = %d,%v", v, ok)
	}
}

// TestChainInstrument publishes the promotion counters and checks the
// registry exports the same atomics Promotions reads.
func TestChainInstrument(t *testing.T) {
	reg := obs.NewRegistry()
	l0, l1, l2 := NewMemoryCache[int](), NewMemoryCache[int](), NewMemoryCache[int]()
	c := NewChain[int](l0, l1, l2)
	c.Instrument(reg, "cache.test.chain")

	l2.Put("a", 1)
	l1.Put("b", 2)
	c.Get("a")
	c.Get("b")

	snap := reg.Snapshot()
	if got := snap.Counters["cache.test.chain.promote.l2"]; got != c.Promotions(2) || got != 1 {
		t.Fatalf("l2 promote counter = %d, Promotions = %d, want 1", got, c.Promotions(2))
	}
	if got := snap.Counters["cache.test.chain.promote.l1"]; got != c.Promotions(1) || got != 1 {
		t.Fatalf("l1 promote counter = %d, Promotions = %d, want 1", got, c.Promotions(1))
	}
	if _, ok := snap.Counters["cache.test.chain.promote.l0"]; ok {
		t.Fatal("the fastest level cannot be promoted from; no l0 counter expected")
	}
}
