package runner

import (
	"fmt"

	"snnfi/internal/obs"
)

// Chain composes any number of caches fastest-first, write-through:
// Get probes levels in order and promotes a deeper hit into every
// faster level; Put stores in all levels. The canonical compositions
// are memory→disk (the -cache-dir wiring, see NewTiered) and
// memory→disk→http (the campaign-fabric wiring, where the deepest
// level is a shared store every worker process writes through).
//
// Promotion accounting mirrors the member caches' Instrument pattern:
// each level below the fastest owns a counter of how many of its hits
// were promoted upward, published as "<name>.promote.l<i>". The
// no-double-counting contract of the old two-level Tiered holds at
// any depth: a lookup that hits level i costs exactly one hit at
// level i, one miss at each faster level, and one Put into each
// faster level (the promotions) — deeper levels are never probed.
type Chain[T any] struct {
	levels   []Cache[T]
	promotes []obs.Counter // promotes[i]: level-i hits promoted upward (index 0 unused)
}

// NewChain builds the write-through composition, fastest level first.
// Nil levels are dropped, so callers can pass optional tiers
// unconditionally; at least one level must remain.
func NewChain[T any](levels ...Cache[T]) *Chain[T] {
	kept := make([]Cache[T], 0, len(levels))
	for _, l := range levels {
		if l != nil {
			kept = append(kept, l)
		}
	}
	if len(kept) == 0 {
		panic("runner: NewChain needs at least one non-nil level")
	}
	return &Chain[T]{levels: kept, promotes: make([]obs.Counter, len(kept))}
}

// NewTiered builds the two-level composition — the fast-over-slow
// special case the -cache-dir wiring has always used.
func NewTiered[T any](fast, slow Cache[T]) *Chain[T] {
	return NewChain[T](fast, slow)
}

// Len reports the number of levels in the chain.
func (c *Chain[T]) Len() int { return len(c.levels) }

// Get implements Cache: first hit wins, and the hit is promoted into
// every faster level so the next lookup stops sooner.
func (c *Chain[T]) Get(key string) (T, bool) {
	for i, l := range c.levels {
		if v, ok := l.Get(key); ok {
			if i > 0 {
				c.promotes[i].Inc()
				for j := 0; j < i; j++ {
					c.levels[j].Put(key, v)
				}
			}
			return v, true
		}
	}
	var zero T
	return zero, false
}

// Put implements Cache: write-through to every level.
func (c *Chain[T]) Put(key string, v T) {
	for _, l := range c.levels {
		l.Put(key, v)
	}
}

// Promotions reports how many hits at level i (1-based from the first
// non-fastest level … len-1) were promoted into faster levels.
func (c *Chain[T]) Promotions(i int) int64 {
	if i <= 0 || i >= len(c.promotes) {
		return 0
	}
	return c.promotes[i].Value()
}

// Instrument publishes the per-level promotion counters into r under
// "<name>.promote.l<i>" for every level that can be promoted from
// (all but the fastest). The member caches instrument themselves —
// the chain only owns the promotion flow between them.
func (c *Chain[T]) Instrument(r *obs.Registry, name string) {
	if c == nil {
		return
	}
	for i := 1; i < len(c.promotes); i++ {
		r.RegisterCounter(fmt.Sprintf("%s.promote.l%d", name, i), &c.promotes[i])
	}
}
