package runner

import (
	"strings"
	"testing"
)

type inner struct {
	N int
}

type specWithPtr struct {
	Name string
	In   *inner
	Rate *float64
}

// TestKeyOfPointerFieldsKeyOnPointee: the documented contract — two
// structurally equal specs must key identically no matter where their
// pointer fields point. The old %#v implementation keyed nested
// pointers on their hex address, so equality held only within one
// allocation.
func TestKeyOfPointerFieldsKeyOnPointee(t *testing.T) {
	r1, r2 := 1.5, 1.5
	a := specWithPtr{Name: "x", In: &inner{N: 7}, Rate: &r1}
	b := specWithPtr{Name: "x", In: &inner{N: 7}, Rate: &r2}
	if KeyOf(a) != KeyOf(b) {
		t.Fatal("equal specs with distinct allocations must key equal")
	}

	c := specWithPtr{Name: "x", In: &inner{N: 8}, Rate: &r1}
	if KeyOf(a) == KeyOf(c) {
		t.Fatal("different pointee values must key differently")
	}

	d := specWithPtr{Name: "x", In: nil, Rate: &r1}
	if KeyOf(a) == KeyOf(d) {
		t.Fatal("nil pointer must key differently from a set one")
	}
	if KeyOf(d) != KeyOf(specWithPtr{Name: "x", Rate: &r2}) {
		t.Fatal("nil pointers must key equal")
	}
}

// TestKeyOfMapOrderIndependent: map iteration order must not leak into
// the key.
func TestKeyOfMapOrderIndependent(t *testing.T) {
	m1 := map[string]int{}
	m2 := map[string]int{}
	for i, k := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		m1[k] = i
	}
	for i := 7; i >= 0; i-- {
		m2[[]string{"a", "b", "c", "d", "e", "f", "g", "h"}[i]] = i
	}
	want := KeyOf(m1)
	for trial := 0; trial < 20; trial++ {
		if KeyOf(m2) != want {
			t.Fatal("map keys must hash order-independently")
		}
	}
}

// TestKeyOfDistinguishesTypesAndValues: type information is part of the
// key, and float values hash exactly.
func TestKeyOfDistinguishesTypesAndValues(t *testing.T) {
	if KeyOf(int32(1)) == KeyOf(int64(1)) {
		t.Fatal("same number, different type must key differently")
	}
	if KeyOf(1.0) == KeyOf(1.0+1e-15) {
		t.Fatal("nearby floats must not be conflated")
	}
	if KeyOf([]int(nil)) == KeyOf([]int{}) {
		t.Fatal("nil and empty slices are distinct specifications")
	}
}

// TestKeyOfPanicsOnRuntimeObjects: channels and funcs identify runtime
// objects, not data; keying them silently would reintroduce the
// address-determinism bug, so KeyOf must refuse loudly.
func TestKeyOfPanicsOnRuntimeObjects(t *testing.T) {
	for _, part := range []any{make(chan int), func() {}, struct{ F func() }{func() {}}} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("KeyOf(%T) must panic", part)
				}
				if !strings.Contains(r.(string), "cannot canonicalize") {
					t.Fatalf("unexpected panic %v", r)
				}
			}()
			KeyOf(part)
		}()
	}
}

// TestKeyOfStableAcrossCalls is the determinism floor: the same parts
// must key identically on every call (this is what the cache and the
// singleflight rely on).
func TestKeyOfStableAcrossCalls(t *testing.T) {
	parts := []any{"experiment-v1", specWithPtr{Name: "n", In: &inner{N: 3}}, int64(42), 3.25}
	want := KeyOf(parts...)
	for i := 0; i < 10; i++ {
		if KeyOf(parts...) != want {
			t.Fatal("KeyOf is not stable across calls")
		}
	}
}
