package runner

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
)

// cachedResult mimics a campaign result: nested pointer, floats that
// must round-trip exactly.
type cachedResult struct {
	Name  string
	Acc   float64
	Inner *cachedResult
}

func TestDiskCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, err := NewDiskCache[*cachedResult](dir)
	if err != nil {
		t.Fatal(err)
	}
	want := &cachedResult{Name: "attack", Acc: 0.1 + 0.2, Inner: &cachedResult{Name: "base", Acc: 1.0 / 3.0}}
	key := KeyOf("round-trip")
	if _, ok := c.Get(key); ok {
		t.Fatal("empty cache must miss")
	}
	c.Put(key, want)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(key)
	if !ok {
		t.Fatal("warm cache must hit")
	}
	if got.Name != want.Name || got.Acc != want.Acc || got.Inner.Acc != want.Inner.Acc {
		t.Fatalf("round trip mutated the value: %+v vs %+v", got, want)
	}

	// A second cache over the same directory is a fresh process: the
	// entry must still be there, bit-exact floats included.
	c2, err := NewDiskCache[*cachedResult](dir)
	if err != nil {
		t.Fatal(err)
	}
	got2, ok := c2.Get(key)
	if !ok {
		t.Fatal("cold-process open must hit the persisted entry")
	}
	if got2.Acc != want.Acc || got2.Inner.Acc != want.Inner.Acc {
		t.Fatalf("cross-process float drift: %v vs %v", got2, want)
	}
	hits, misses := c2.Stats()
	if hits != 1 || misses != 0 {
		t.Fatalf("stats = %d/%d, want 1 hit 0 misses", hits, misses)
	}
}

func TestDiskCacheCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := NewDiskCache[*cachedResult](dir)
	if err != nil {
		t.Fatal(err)
	}
	key := KeyOf("corrupt")
	c.Put(key, &cachedResult{Name: "x"})
	// Truncate the entry mid-JSON, as a crash mid-write outside the
	// rename protocol would.
	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("want one entry file, got %v (%v)", entries, err)
	}
	if err := os.WriteFile(entries[0], []byte(`{"Name":"x`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("corrupt entry must degrade to a miss, not a hit")
	}
}

// TestDiskCacheUnsafeKey: keys that are not well-formed digests are
// re-hashed rather than used as paths.
func TestDiskCacheUnsafeKey(t *testing.T) {
	dir := t.TempDir()
	c, err := NewDiskCache[string](dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"../escape", "a/b", "UPPER", "", "dot.dot"} {
		c.Put(key, "v-"+key)
		if got, ok := c.Get(key); !ok || got != "v-"+key {
			t.Fatalf("key %q did not round-trip (got %q, %v)", key, got, ok)
		}
	}
	// Nothing may have been written outside the cache directory.
	if _, err := os.Stat(filepath.Join(filepath.Dir(dir), "escape.json")); !os.IsNotExist(err) {
		t.Fatalf("unsafe key escaped the cache directory: %v", err)
	}
}

// TestDiskCacheConcurrentPut exercises the temp-file/rename protocol
// under -race: concurrent writers to the same and different keys, with
// readers interleaved, must never observe a partial entry.
func TestDiskCacheConcurrentPut(t *testing.T) {
	c, err := NewDiskCache[*cachedResult](t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const writers = 16
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				shared := KeyOf("shared", i)
				own := KeyOf("own", w, i)
				c.Put(shared, &cachedResult{Name: "shared", Acc: float64(i)})
				c.Put(own, &cachedResult{Name: fmt.Sprintf("w%d", w), Acc: float64(i)})
				if v, ok := c.Get(shared); ok && v.Name != "shared" {
					t.Errorf("partial entry observed: %+v", v)
				}
			}
		}(w)
	}
	wg.Wait()
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < 20; i++ {
			if v, ok := c.Get(KeyOf("own", w, i)); !ok || v.Acc != float64(i) {
				t.Fatalf("writer %d entry %d lost (%v, %v)", w, i, v, ok)
			}
		}
	}
}

func TestTieredWriteThroughAndPromotion(t *testing.T) {
	fast := NewMemoryCache[string]()
	slow := NewMemoryCache[string]()
	c := NewTiered[string](fast, slow)

	c.Put("k", "v")
	if _, ok := fast.Get("k"); !ok {
		t.Fatal("Put must write through to the fast tier")
	}
	if _, ok := slow.Get("k"); !ok {
		t.Fatal("Put must write through to the slow tier")
	}

	// A slow-only entry (written by another process) is served and
	// promoted.
	slow.Put("cold", "resume")
	if v, ok := c.Get("cold"); !ok || v != "resume" {
		t.Fatalf("slow-tier entry not served: %q %v", v, ok)
	}
	if v, ok := fast.Get("cold"); !ok || v != "resume" {
		t.Fatalf("slow-tier hit not promoted: %q %v", v, ok)
	}

	if _, ok := c.Get("absent"); ok {
		t.Fatal("miss in both tiers must miss")
	}
}

// TestDeriveSeedAddressFree: the canonical rendering makes seeds
// independent of where discriminators are allocated — two structurally
// equal pointer arguments derive the same seed in any process, which
// %#v (hex pointer addresses) did not guarantee.
func TestDeriveSeedAddressFree(t *testing.T) {
	type spec struct {
		Plan *cachedResult
		X    float64
	}
	a := spec{Plan: &cachedResult{Name: "p", Acc: 0.5}, X: 1}
	b := spec{Plan: &cachedResult{Name: "p", Acc: 0.5}, X: 1}
	if DeriveSeed(7, a) != DeriveSeed(7, b) {
		t.Fatal("structurally equal specs must derive equal seeds")
	}
	c := spec{Plan: &cachedResult{Name: "q", Acc: 0.5}, X: 1}
	if DeriveSeed(7, a) == DeriveSeed(7, c) {
		t.Fatal("distinct nested values must derive distinct seeds")
	}
}

func TestDiskCacheManifest(t *testing.T) {
	dir := t.TempDir()
	c, err := NewDiskCache[*cachedResult](dir)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := c.Manifest()
	if err != nil || len(keys) != 0 {
		t.Fatalf("empty cache manifest = %v, %v", keys, err)
	}
	// KeyOf digests keep their key as the filename stem; arbitrary keys
	// appear re-hashed (Manifest lists what the directory holds — the
	// digest-stable addressing the campaign audit relies on).
	kA, kB := KeyOf("cell-a"), KeyOf("cell-b")
	c.Put(kB, &cachedResult{Name: "b"})
	c.Put(kA, &cachedResult{Name: "a"})
	// Junk the manifest must ignore: a temp file mid-Put, a stray
	// non-entry file, a subdirectory.
	if err := os.WriteFile(filepath.Join(dir, ".put-12345"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("not an entry"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "sub.json"), 0o755); err != nil {
		t.Fatal(err)
	}
	keys, err = c.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	wantKeys := []string{kA, kB}
	sort.Strings(wantKeys)
	if len(keys) != 2 || keys[0] != wantKeys[0] || keys[1] != wantKeys[1] {
		t.Fatalf("manifest = %v, want sorted %v", keys, wantKeys)
	}
	// A nil cache (no -cache-dir) audits as empty, not as an error.
	var nilCache *DiskCache[*cachedResult]
	keys, err = nilCache.Manifest()
	if err != nil || keys != nil {
		t.Fatalf("nil cache manifest = %v, %v", keys, err)
	}
}
