package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"snnfi/internal/obs"
)

// DiskCache is a Cache backed by one JSON file per key, so results
// survive the process that computed them: a killed campaign resumed
// against the same directory recomputes only the missing entries.
//
// Values round-trip through encoding/json, which preserves float64
// exactly (shortest round-trip rendering), so a resumed campaign
// streams byte-identical records. The value type must therefore be
// JSON-codable: exported fields, no cycles.
//
// Writes are safe for concurrent writers — in one process and across
// processes — because Put writes to a private temp file and renames it
// into place (atomic on POSIX), so readers never observe a partial
// entry. A corrupt or unreadable entry degrades to a miss, never an
// error: the worst a damaged cache can do is cost a recomputation.
type DiskCache[T any] struct {
	dir string

	// OnFirstWriteError, when non-nil, is called exactly once — on the
	// first persistence failure — so a long campaign can warn the user
	// the moment resumability degrades instead of at exit. Set it
	// before the cache is used concurrently; Err still reports the
	// error at the end either way.
	OnFirstWriteError func(error)

	// Accounting lives in obs counters (see MemoryCache): Instrument
	// publishes these same atomics, Stats reads them.
	hits      obs.Counter
	misses    obs.Counter
	puts      obs.Counter
	corrupt   obs.Counter
	writeErrs obs.Counter

	mu  sync.Mutex
	err error
}

// NewDiskCache opens (creating if needed) a cache directory.
func NewDiskCache[T any](dir string) (*DiskCache[T], error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DiskCache[T]{dir: dir}, nil
}

// Dir returns the cache directory.
func (c *DiskCache[T]) Dir() string { return c.dir }

// path maps a key to its entry file. KeyOf digests are already safe
// filenames; anything else (uppercase, separators, overlong) is
// re-hashed so arbitrary keys can never escape the directory.
func (c *DiskCache[T]) path(key string) string {
	safe := key != "" && len(key) <= 128
	for i := 0; safe && i < len(key); i++ {
		ch := key[i]
		safe = ch == '-' || ch == '_' ||
			(ch >= '0' && ch <= '9') || (ch >= 'a' && ch <= 'z')
	}
	if !safe {
		sum := sha256.Sum256([]byte(key))
		key = hex.EncodeToString(sum[:])
	}
	return filepath.Join(c.dir, key+".json")
}

// Get loads the entry for key, if a well-formed one exists. A corrupt
// entry (the file read fine but did not decode) counts as both a
// corruption and a miss — hits+misses stays the lookup count while
// the corrupt counter flags the damage.
func (c *DiskCache[T]) Get(key string) (T, bool) {
	var v T
	if c == nil {
		return v, false
	}
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		var zero T
		c.misses.Inc()
		return zero, false
	}
	if json.Unmarshal(data, &v) != nil {
		var zero T
		c.corrupt.Inc()
		c.misses.Inc()
		return zero, false
	}
	c.hits.Inc()
	return v, true
}

// Put persists v under key via temp-file + rename, replacing any
// previous entry. Failures are remembered (see Err) but do not stop
// the campaign — a result that fails to persist is recomputed on
// resume, never lost silently mid-run.
func (c *DiskCache[T]) Put(key string, v T) {
	if c == nil {
		return
	}
	c.puts.Inc()
	data, err := json.Marshal(v)
	if err != nil {
		c.setErr(err)
		return
	}
	tmp, err := os.CreateTemp(c.dir, ".put-*")
	if err != nil {
		c.setErr(err)
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), c.path(key))
	}
	if werr != nil {
		os.Remove(tmp.Name())
		c.setErr(werr)
	}
}

// Err reports the first persistence failure, if any. Lookups never
// error (they degrade to misses); this surfaces write problems — a
// full or read-only disk — that would otherwise silently disable
// resumability.
func (c *DiskCache[T]) Err() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Manifest returns the keys of every entry currently held, sorted —
// the campaign-audit view of a cache directory. It lists entry files
// without decoding them, so a corrupt entry may appear here yet still
// degrade to a miss on Get; the manifest answers "what has been
// persisted", not "what is guaranteed well-formed". Keys that were
// re-hashed into safe filenames (see path) appear as their digest.
func (c *DiskCache[T]) Manifest() ([]string, error) {
	if c == nil {
		return nil, nil
	}
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return nil, err
	}
	var keys []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") || strings.HasPrefix(name, ".") {
			continue
		}
		keys = append(keys, strings.TrimSuffix(name, ".json"))
	}
	sort.Strings(keys)
	return keys, nil
}

// Stats reports lookup hits and misses since creation.
func (c *DiskCache[T]) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Value(), c.misses.Value()
}

// Corrupt reports how many lookups found an entry file that failed to
// decode (each also counted as a miss).
func (c *DiskCache[T]) Corrupt() int64 {
	if c == nil {
		return 0
	}
	return c.corrupt.Value()
}

// WriteErrors reports how many Puts failed to persist.
func (c *DiskCache[T]) WriteErrors() int64 {
	if c == nil {
		return 0
	}
	return c.writeErrs.Value()
}

// Puts reports how many values have been stored (attempted) since
// creation.
func (c *DiskCache[T]) Puts() int64 {
	if c == nil {
		return 0
	}
	return c.puts.Value()
}

// Instrument publishes the cache's counters into r under
// "<name>.hits", "<name>.misses", "<name>.puts", "<name>.corrupt" and
// "<name>.write_errors" — the same atomics Stats/Corrupt/WriteErrors
// read. Nil receiver or registry is a no-op.
func (c *DiskCache[T]) Instrument(r *obs.Registry, name string) {
	if c == nil {
		return
	}
	r.RegisterCounter(name+".hits", &c.hits)
	r.RegisterCounter(name+".misses", &c.misses)
	r.RegisterCounter(name+".puts", &c.puts)
	r.RegisterCounter(name+".corrupt", &c.corrupt)
	r.RegisterCounter(name+".write_errors", &c.writeErrs)
}

func (c *DiskCache[T]) setErr(err error) {
	c.writeErrs.Inc()
	c.mu.Lock()
	first := c.err == nil
	if first {
		c.err = err
	}
	warn := c.OnFirstWriteError
	c.mu.Unlock()
	if first && warn != nil {
		warn(err)
	}
}
