// Package tensor provides the small dense linear-algebra substrate used
// by the SNN simulator: float64 vectors and row-major matrices with the
// handful of operations spiking-network training needs (masked
// accumulation, outer-product updates, row/column reductions).
//
// It is deliberately minimal — no views, no broadcasting — so that every
// operation is obvious and allocation-free in the hot path.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Vector is a dense float64 vector.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Fill sets every element to v.
func (x Vector) Fill(v float64) {
	for i := range x {
		x[i] = v
	}
}

// Copy returns a deep copy of x.
func (x Vector) Copy() Vector {
	y := make(Vector, len(x))
	copy(y, x)
	return y
}

// Add adds y into x element-wise. Panics if lengths differ.
func (x Vector) Add(y Vector) {
	checkLen(len(x), len(y))
	for i := range x {
		x[i] += y[i]
	}
}

// Sub subtracts y from x element-wise.
func (x Vector) Sub(y Vector) {
	checkLen(len(x), len(y))
	for i := range x {
		x[i] -= y[i]
	}
}

// Scale multiplies every element by s.
func (x Vector) Scale(s float64) {
	for i := range x {
		x[i] *= s
	}
}

// AddScaled adds s*y into x.
func (x Vector) AddScaled(s float64, y Vector) {
	checkLen(len(x), len(y))
	for i := range x {
		x[i] += s * y[i]
	}
}

// Sum returns the sum of all elements.
func (x Vector) Sum() float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Max returns the maximum element and its index. For an empty vector it
// returns (-Inf, -1).
func (x Vector) Max() (float64, int) {
	best, idx := math.Inf(-1), -1
	for i, v := range x {
		if v > best {
			best, idx = v, i
		}
	}
	return best, idx
}

// Min returns the minimum element and its index. For an empty vector it
// returns (+Inf, -1).
func (x Vector) Min() (float64, int) {
	best, idx := math.Inf(1), -1
	for i, v := range x {
		if v < best {
			best, idx = v, i
		}
	}
	return best, idx
}

// Argmax returns the index of the largest element, breaking ties toward
// the lowest index. Returns -1 for an empty vector.
func (x Vector) Argmax() int {
	_, idx := x.Max()
	return idx
}

// Clamp limits every element to [lo, hi].
func (x Vector) Clamp(lo, hi float64) {
	for i, v := range x {
		if v < lo {
			x[i] = lo
		} else if v > hi {
			x[i] = hi
		}
	}
}

// Zero sets every element to 0.
func (x Vector) Zero() { x.Fill(0) }

// Dot returns the inner product of x and y.
func (x Vector) Dot(y Vector) float64 {
	checkLen(len(x), len(y))
	var s float64
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Copy returns a deep copy of m.
func (m *Matrix) Copy() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float64) { Vector(m.Data).Fill(v) }

// Scale multiplies every element by s.
func (m *Matrix) Scale(s float64) { Vector(m.Data).Scale(s) }

// Clamp limits every element to [lo, hi].
func (m *Matrix) Clamp(lo, hi float64) { Vector(m.Data).Clamp(lo, hi) }

// MulVec computes out = mᵀ·x when transpose is true (treating rows as
// inputs, columns as outputs, the synapse convention w[pre][post]) or
// out = m·x otherwise. out must have the correct length.
func (m *Matrix) MulVec(x, out Vector, transpose bool) {
	if transpose {
		checkLen(len(x), m.Rows)
		checkLen(len(out), m.Cols)
		out.Zero()
		for i := 0; i < m.Rows; i++ {
			xi := x[i]
			if xi == 0 {
				continue
			}
			row := m.Data[i*m.Cols : (i+1)*m.Cols]
			for j, w := range row {
				out[j] += xi * w
			}
		}
		return
	}
	checkLen(len(x), m.Cols)
	checkLen(len(out), m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, w := range row {
			s += w * x[j]
		}
		out[i] = s
	}
}

// AccumulateRows adds row i of m into out for every index i in active.
// This is the sparse forward-propagation kernel: active carries the
// indices of presynaptic neurons that spiked this step.
func (m *Matrix) AccumulateRows(active []int, out Vector) {
	checkLen(len(out), m.Cols)
	for _, i := range active {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, w := range row {
			out[j] += w
		}
	}
}

// ColSum returns the per-column sums of m.
func (m *Matrix) ColSum() Vector {
	s := NewVector(m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, w := range row {
			s[j] += w
		}
	}
	return s
}

// RowSum returns the per-row sums of m.
func (m *Matrix) RowSum() Vector {
	s := NewVector(m.Rows)
	for i := 0; i < m.Rows; i++ {
		s[i] = Vector(m.Data[i*m.Cols : (i+1)*m.Cols]).Sum()
	}
	return s
}

// NormalizeCols rescales each column so its sum equals target. Columns
// whose sum is zero are left untouched. This is the Diehl&Cook weight
// normalization applied to the input→excitatory connection.
func (m *Matrix) NormalizeCols(target float64) {
	sums := m.ColSum()
	for j := 0; j < m.Cols; j++ {
		if sums[j] == 0 {
			continue
		}
		f := target / sums[j]
		for i := 0; i < m.Rows; i++ {
			m.Data[i*m.Cols+j] *= f
		}
	}
}

// RandFill fills m with uniform values in [lo, hi) drawn from rng.
func (m *Matrix) RandFill(rng *rand.Rand, lo, hi float64) {
	for i := range m.Data {
		m.Data[i] = lo + rng.Float64()*(hi-lo)
	}
}

// Equal reports whether two matrices have the same shape and elements
// within tolerance tol.
func (m *Matrix) Equal(o *Matrix, tol float64) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(v-o.Data[i]) > tol {
			return false
		}
	}
	return true
}

func checkLen(a, b int) {
	if a != b {
		panic(fmt.Sprintf("tensor: length mismatch %d != %d", a, b))
	}
}
