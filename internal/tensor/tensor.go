// Package tensor provides the small dense linear-algebra substrate used
// by the SNN simulator: float64 vectors and row-major matrices with the
// handful of operations spiking-network training needs (masked
// accumulation, outer-product updates, row/column reductions).
//
// It is deliberately minimal — no views, no broadcasting — so that every
// operation is obvious and allocation-free in the hot path.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Vector is a dense float64 vector.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Fill sets every element to v.
func (x Vector) Fill(v float64) {
	for i := range x {
		x[i] = v
	}
}

// Copy returns a deep copy of x.
func (x Vector) Copy() Vector {
	y := make(Vector, len(x))
	copy(y, x)
	return y
}

// Add adds y into x element-wise. Panics if lengths differ.
func (x Vector) Add(y Vector) {
	checkLen(len(x), len(y))
	for i := range x {
		x[i] += y[i]
	}
}

// Sub subtracts y from x element-wise.
func (x Vector) Sub(y Vector) {
	checkLen(len(x), len(y))
	for i := range x {
		x[i] -= y[i]
	}
}

// Scale multiplies every element by s, four elements per iteration
// (independent per-element products, so the unroll is bit-identical to
// the scalar loop while exposing instruction-level parallelism).
func (x Vector) Scale(s float64) {
	i := 0
	for ; i+3 < len(x); i += 4 {
		x[i] *= s
		x[i+1] *= s
		x[i+2] *= s
		x[i+3] *= s
	}
	for ; i < len(x); i++ {
		x[i] *= s
	}
}

// DecayToward relaxes every element exponentially toward target:
// x[i] = target + (x[i]−target)·decay. This is the LIF membrane decay
// kernel; like Scale it processes four independent elements per
// iteration, bit-identical to the scalar form.
func (x Vector) DecayToward(target, decay float64) {
	i := 0
	for ; i+3 < len(x); i += 4 {
		x[i] = target + (x[i]-target)*decay
		x[i+1] = target + (x[i+1]-target)*decay
		x[i+2] = target + (x[i+2]-target)*decay
		x[i+3] = target + (x[i+3]-target)*decay
	}
	for ; i < len(x); i++ {
		x[i] = target + (x[i]-target)*decay
	}
}

// AddScaled adds s*y into x.
func (x Vector) AddScaled(s float64, y Vector) {
	checkLen(len(x), len(y))
	for i := range x {
		x[i] += s * y[i]
	}
}

// Sum returns the sum of all elements.
func (x Vector) Sum() float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Max returns the maximum element and its index. For an empty vector it
// returns (-Inf, -1).
func (x Vector) Max() (float64, int) {
	best, idx := math.Inf(-1), -1
	for i, v := range x {
		if v > best {
			best, idx = v, i
		}
	}
	return best, idx
}

// Min returns the minimum element and its index. For an empty vector it
// returns (+Inf, -1).
func (x Vector) Min() (float64, int) {
	best, idx := math.Inf(1), -1
	for i, v := range x {
		if v < best {
			best, idx = v, i
		}
	}
	return best, idx
}

// Argmax returns the index of the largest element, breaking ties toward
// the lowest index. Returns -1 for an empty vector.
func (x Vector) Argmax() int {
	_, idx := x.Max()
	return idx
}

// Clamp limits every element to [lo, hi].
func (x Vector) Clamp(lo, hi float64) {
	for i, v := range x {
		if v < lo {
			x[i] = lo
		} else if v > hi {
			x[i] = hi
		}
	}
}

// Zero sets every element to 0.
func (x Vector) Zero() { x.Fill(0) }

// ScatterScale multiplies the elements at idx by s, leaving the rest
// untouched. The sparse-trace decay kernel: when the nonzero support of
// x is tracked externally, decaying only the support is bit-identical
// to a dense Scale (zero times s is zero).
func (x Vector) ScatterScale(idx []int, s float64) {
	for _, i := range idx {
		x[i] *= s
	}
}

// ScatterAddScaledClamp performs x[i] = min(x[i]+s*src[i], hi) for each
// i in idx. This is one row of a sparse outer-product update — the STDP
// potentiation kernel applied to a contiguous (transposed) weight row
// over the active pre-trace indices.
func (x Vector) ScatterAddScaledClamp(idx []int, src Vector, s, hi float64) {
	for _, i := range idx {
		v := x[i] + s*src[i]
		if v > hi {
			v = hi
		}
		x[i] = v
	}
}

// ScatterSubScaledFloor performs x[i] = max(x[i]-s*src[i], 0) for each
// i in idx — the STDP depression kernel over the active post-trace
// indices.
func (x Vector) ScatterSubScaledFloor(idx []int, src Vector, s float64) {
	for _, i := range idx {
		v := x[i] - s*src[i]
		if v < 0 {
			v = 0
		}
		x[i] = v
	}
}

// Dot returns the inner product of x and y.
func (x Vector) Dot(y Vector) float64 {
	checkLen(len(x), len(y))
	var s float64
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Copy returns a deep copy of m.
func (m *Matrix) Copy() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float64) { Vector(m.Data).Fill(v) }

// Scale multiplies every element by s.
func (m *Matrix) Scale(s float64) { Vector(m.Data).Scale(s) }

// Clamp limits every element to [lo, hi].
func (m *Matrix) Clamp(lo, hi float64) { Vector(m.Data).Clamp(lo, hi) }

// MulVec computes out = mᵀ·x when transpose is true (treating rows as
// inputs, columns as outputs, the synapse convention w[pre][post]) or
// out = m·x otherwise. out must have the correct length.
func (m *Matrix) MulVec(x, out Vector, transpose bool) {
	if transpose {
		checkLen(len(x), m.Rows)
		checkLen(len(out), m.Cols)
		out.Zero()
		for i := 0; i < m.Rows; i++ {
			xi := x[i]
			if xi == 0 {
				continue
			}
			row := m.Data[i*m.Cols : (i+1)*m.Cols]
			for j, w := range row {
				out[j] += xi * w
			}
		}
		return
	}
	checkLen(len(x), m.Cols)
	checkLen(len(out), m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, w := range row {
			s += w * x[j]
		}
		out[i] = s
	}
}

// AccumulateRows adds row i of m into out for every index i in active.
// This is the sparse forward-propagation kernel: active carries the
// indices of presynaptic neurons that spiked this step.
func (m *Matrix) AccumulateRows(active []int, out Vector) {
	checkLen(len(out), m.Cols)
	for _, i := range active {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		o := out[:len(row)] // bounds-check elimination in the inner loop
		for j, w := range row {
			o[j] += w
		}
	}
}

// AccumulateRowsScaled adds s times row i of m into out for every index
// i in active — the forward-propagation kernel with a per-spike drive
// scale folded in, so callers avoid a second dense pass over out. Note
// the arithmetic differs from AccumulateRows-then-Scale at the ulp
// level (s distributes over the row sum).
func (m *Matrix) AccumulateRowsScaled(active []int, s float64, out Vector) {
	checkLen(len(out), m.Cols)
	for _, i := range active {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		o := out[:len(row)]
		for j, w := range row {
			o[j] += s * w
		}
	}
}

// SumRows overwrites out with the sum of the active rows of m (zeroing
// out when active is empty). It is bit-identical to Zero followed by
// AccumulateRows — the accumulation order is the same left-to-right row
// order — but saves the zeroing pass and batches four rows per sweep of
// out, quartering the load/store traffic on the accumulator.
func (m *Matrix) SumRows(active []int, out Vector) {
	checkLen(len(out), m.Cols)
	if len(active) == 0 {
		out.Zero()
		return
	}
	c := m.Cols
	o := out[:c]
	copy(o, m.Data[active[0]*c:active[0]*c+c])
	k := 1
	for ; k+3 < len(active); k += 4 {
		r1 := m.Data[active[k]*c : active[k]*c+c]
		r2 := m.Data[active[k+1]*c : active[k+1]*c+c]
		r3 := m.Data[active[k+2]*c : active[k+2]*c+c]
		r4 := m.Data[active[k+3]*c : active[k+3]*c+c]
		r1, r2, r3, r4 = r1[:len(o)], r2[:len(o)], r3[:len(o)], r4[:len(o)]
		for j := range o {
			o[j] = (((o[j] + r1[j]) + r2[j]) + r3[j]) + r4[j]
		}
	}
	for ; k < len(active); k++ {
		r := m.Data[active[k]*c : active[k]*c+c]
		r = r[:len(o)]
		for j := range o {
			o[j] += r[j]
		}
	}
}

// SumRowsScaled overwrites out with s times the sum of the active rows
// of m, scaling each row as it is accumulated (out[j] = Σ s·row[j]),
// with the same left-to-right order and 4-row batching as SumRows.
func (m *Matrix) SumRowsScaled(active []int, s float64, out Vector) {
	checkLen(len(out), m.Cols)
	if len(active) == 0 {
		out.Zero()
		return
	}
	c := m.Cols
	o := out[:c]
	r0 := m.Data[active[0]*c : active[0]*c+c]
	r0 = r0[:len(o)]
	for j := range o {
		o[j] = s * r0[j]
	}
	k := 1
	for ; k+3 < len(active); k += 4 {
		r1 := m.Data[active[k]*c : active[k]*c+c]
		r2 := m.Data[active[k+1]*c : active[k+1]*c+c]
		r3 := m.Data[active[k+2]*c : active[k+2]*c+c]
		r4 := m.Data[active[k+3]*c : active[k+3]*c+c]
		r1, r2, r3, r4 = r1[:len(o)], r2[:len(o)], r3[:len(o)], r4[:len(o)]
		for j := range o {
			o[j] = (((o[j] + s*r1[j]) + s*r2[j]) + s*r3[j]) + s*r4[j]
		}
	}
	for ; k < len(active); k++ {
		r := m.Data[active[k]*c : active[k]*c+c]
		r = r[:len(o)]
		for j := range o {
			o[j] += s * r[j]
		}
	}
}

// TransposeInto writes mᵀ into dst, which must be Cols×Rows. The copy
// is blocked for cache friendliness — this is the transpose-sync helper
// for code that maintains both layouts of one logical matrix.
func (m *Matrix) TransposeInto(dst *Matrix) {
	if dst.Rows != m.Cols || dst.Cols != m.Rows {
		panic(fmt.Sprintf("tensor: transpose shape mismatch: %dx%d into %dx%d",
			m.Rows, m.Cols, dst.Rows, dst.Cols))
	}
	const bs = 32
	for ii := 0; ii < m.Rows; ii += bs {
		iMax := ii + bs
		if iMax > m.Rows {
			iMax = m.Rows
		}
		for jj := 0; jj < m.Cols; jj += bs {
			jMax := jj + bs
			if jMax > m.Cols {
				jMax = m.Cols
			}
			for i := ii; i < iMax; i++ {
				row := m.Data[i*m.Cols : (i+1)*m.Cols]
				for j := jj; j < jMax; j++ {
					dst.Data[j*dst.Cols+i] = row[j]
				}
			}
		}
	}
}

// ColSum returns the per-column sums of m.
func (m *Matrix) ColSum() Vector {
	s := NewVector(m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, w := range row {
			s[j] += w
		}
	}
	return s
}

// RowSum returns the per-row sums of m.
func (m *Matrix) RowSum() Vector {
	s := NewVector(m.Rows)
	m.RowSumInto(s)
	return s
}

// RowSumInto writes the per-row sums of m into out (allocation-free
// form of RowSum).
func (m *Matrix) RowSumInto(out Vector) {
	checkLen(len(out), m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = Vector(m.Data[i*m.Cols : (i+1)*m.Cols]).Sum()
	}
}

// ScaleRows multiplies every element of row i by f[i].
func (m *Matrix) ScaleRows(f Vector) {
	checkLen(len(f), m.Rows)
	for i := 0; i < m.Rows; i++ {
		Vector(m.Data[i*m.Cols : (i+1)*m.Cols]).Scale(f[i])
	}
}

// ScaleCols multiplies every element of column j by f[j], in one
// contiguous row-major pass.
func (m *Matrix) ScaleCols(f Vector) {
	checkLen(len(f), m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		ff := f[:len(row)]
		for j := range row {
			row[j] *= ff[j]
		}
	}
}

// NormalizeCols rescales each column so its sum equals target. Columns
// whose sum is zero are left untouched. This is the Diehl&Cook weight
// normalization applied to the input→excitatory connection. The rescale
// runs as one contiguous row-major ScaleCols pass over a per-column
// factor vector (factor 1 for zero-sum columns) — bit-identical to the
// column-at-a-time strided form, since x·1 == x for every float
// including NaN and −0, but ~Rows× fewer cache lines touched.
func (m *Matrix) NormalizeCols(target float64) {
	f := m.ColSum()
	for j, s := range f {
		if s == 0 {
			f[j] = 1
		} else {
			f[j] = target / s
		}
	}
	m.ScaleCols(f)
}

// NormalizeColsSubset rescales only the listed columns so each sums to
// target, leaving every other column untouched; zero-sum columns in the
// list are also left untouched. Each column's sum accumulates over its
// elements in ascending row order — the same per-column order ColSum
// uses — so for a listed column the factor, and hence the rescaled
// values, are bit-identical to a full NormalizeCols. Columns are
// independent, so the result does not depend on the order of cols.
// This is the dirty-column form of Diehl&Cook normalization: between
// two normalizations STDP touches only the columns of neurons that
// spiked, so only those columns have drifted from target.
func (m *Matrix) NormalizeColsSubset(target float64, cols []int) {
	r, c := m.Rows, m.Cols
	for _, j := range cols {
		var s float64
		for i := 0; i < r; i++ {
			s += m.Data[i*c+j]
		}
		if s == 0 {
			continue
		}
		f := target / s
		for i := 0; i < r; i++ {
			m.Data[i*c+j] *= f
		}
	}
}

// NormalizeRows rescales each row so its sum equals target; zero-sum
// rows are left untouched. This is NormalizeCols moved to the
// transposed (output-major) layout, where both the reduction and the
// rescale are contiguous. For a matrix pair kept in transpose sync it
// computes bit-identical weights to NormalizeCols on the other layout:
// the row sum accumulates in the same element order as the column sum.
func (m *Matrix) NormalizeRows(target float64) {
	for i := 0; i < m.Rows; i++ {
		row := Vector(m.Data[i*m.Cols : (i+1)*m.Cols])
		s := row.Sum()
		if s == 0 {
			continue
		}
		row.Scale(target / s)
	}
}

// RandFill fills m with uniform values in [lo, hi) drawn from rng.
func (m *Matrix) RandFill(rng *rand.Rand, lo, hi float64) {
	for i := range m.Data {
		m.Data[i] = lo + rng.Float64()*(hi-lo)
	}
}

// Equal reports whether two matrices have the same shape and elements
// within tolerance tol.
func (m *Matrix) Equal(o *Matrix, tol float64) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(v-o.Data[i]) > tol {
			return false
		}
	}
	return true
}

func checkLen(a, b int) {
	if a != b {
		panic(fmt.Sprintf("tensor: length mismatch %d != %d", a, b))
	}
}
