package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVectorBasics(t *testing.T) {
	v := NewVector(4)
	v.Fill(2)
	if got := v.Sum(); got != 8 {
		t.Fatalf("Sum = %v, want 8", got)
	}
	v.Scale(0.5)
	if got := v.Sum(); got != 4 {
		t.Fatalf("after Scale, Sum = %v, want 4", got)
	}
	w := Vector{1, 2, 3, 4}
	v.Add(w)
	if v[3] != 5 {
		t.Fatalf("Add: got %v", v)
	}
	v.Sub(w)
	if v[3] != 1 {
		t.Fatalf("Sub: got %v", v)
	}
	v.AddScaled(2, w)
	if v[0] != 3 {
		t.Fatalf("AddScaled: got %v", v)
	}
}

func TestVectorMaxMinArgmax(t *testing.T) {
	v := Vector{3, -1, 7, 7, 2}
	mx, i := v.Max()
	if mx != 7 || i != 2 {
		t.Fatalf("Max = (%v, %d)", mx, i)
	}
	mn, j := v.Min()
	if mn != -1 || j != 1 {
		t.Fatalf("Min = (%v, %d)", mn, j)
	}
	if v.Argmax() != 2 {
		t.Fatalf("Argmax = %d", v.Argmax())
	}
	var empty Vector
	if empty.Argmax() != -1 {
		t.Fatal("empty Argmax should be -1")
	}
}

func TestVectorClamp(t *testing.T) {
	v := Vector{-2, 0.5, 3}
	v.Clamp(0, 1)
	want := Vector{0, 0.5, 1}
	for i := range v {
		if v[i] != want[i] {
			t.Fatalf("Clamp: got %v", v)
		}
	}
}

func TestVectorDot(t *testing.T) {
	a := Vector{1, 2, 3}
	b := Vector{4, 5, 6}
	if got := a.Dot(b); got != 32 {
		t.Fatalf("Dot = %v", got)
	}
}

func TestVectorCopyIndependent(t *testing.T) {
	a := Vector{1, 2}
	b := a.Copy()
	b[0] = 99
	if a[0] != 1 {
		t.Fatal("Copy must not alias")
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	a := Vector{1}
	a.Add(Vector{1, 2})
}

func TestMatrixAtSetRow(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatal("At/Set mismatch")
	}
	row := m.Row(1)
	row[0] = 7
	if m.At(1, 0) != 7 {
		t.Fatal("Row must alias storage")
	}
}

func TestMatrixMulVec(t *testing.T) {
	m := NewMatrix(2, 3)
	// [[1,2,3],[4,5,6]]
	for i, v := range []float64{1, 2, 3, 4, 5, 6} {
		m.Data[i] = v
	}
	out := NewVector(2)
	m.MulVec(Vector{1, 1, 1}, out, false)
	if out[0] != 6 || out[1] != 15 {
		t.Fatalf("MulVec = %v", out)
	}
	outT := NewVector(3)
	m.MulVec(Vector{1, 2}, outT, true)
	if outT[0] != 9 || outT[1] != 12 || outT[2] != 15 {
		t.Fatalf("MulVec transpose = %v", outT)
	}
}

func TestAccumulateRowsMatchesMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMatrix(10, 6)
	m.RandFill(rng, 0, 1)
	active := []int{1, 4, 7}
	x := NewVector(10)
	for _, i := range active {
		x[i] = 1
	}
	want := NewVector(6)
	m.MulVec(x, want, true)
	got := NewVector(6)
	m.AccumulateRows(active, got)
	for j := range want {
		if math.Abs(want[j]-got[j]) > 1e-12 {
			t.Fatalf("AccumulateRows[%d] = %v, want %v", j, got[j], want[j])
		}
	}
}

func TestNormalizeCols(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewMatrix(8, 4)
	m.RandFill(rng, 0.1, 1)
	m.NormalizeCols(2.5)
	sums := m.ColSum()
	for j, s := range sums {
		if math.Abs(s-2.5) > 1e-9 {
			t.Fatalf("column %d sum %v, want 2.5", j, s)
		}
	}
}

func TestNormalizeColsSkipsZeroColumns(t *testing.T) {
	m := NewMatrix(3, 2)
	m.Set(0, 0, 1)
	m.NormalizeCols(10)
	if m.At(0, 1) != 0 || m.At(1, 1) != 0 {
		t.Fatal("zero column must stay zero")
	}
	if m.At(0, 0) != 10 {
		t.Fatalf("nonzero column not normalized: %v", m.At(0, 0))
	}
}

func TestRowColSums(t *testing.T) {
	m := NewMatrix(2, 2)
	copy(m.Data, []float64{1, 2, 3, 4})
	rs := m.RowSum()
	cs := m.ColSum()
	if rs[0] != 3 || rs[1] != 7 || cs[0] != 4 || cs[1] != 6 {
		t.Fatalf("sums: rows %v cols %v", rs, cs)
	}
}

func TestMatrixEqual(t *testing.T) {
	a := NewMatrix(2, 2)
	b := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	b.Set(0, 0, 1.0000001)
	if !a.Equal(b, 1e-5) {
		t.Fatal("should be equal within tolerance")
	}
	if a.Equal(b, 1e-9) {
		t.Fatal("should differ at tight tolerance")
	}
	c := NewMatrix(2, 3)
	if a.Equal(c, 1) {
		t.Fatal("shape mismatch must not be equal")
	}
}

// Property: NormalizeCols is idempotent.
func TestNormalizeColsIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewMatrix(6, 5)
		m.RandFill(rng, 0.01, 1)
		m.NormalizeCols(3)
		before := m.Copy()
		m.NormalizeCols(3)
		return m.Equal(before, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Scale then Scale by inverse returns the original vector.
func TestScaleInverseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := NewVector(16)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		orig := v.Copy()
		v.Scale(3.5)
		v.Scale(1 / 3.5)
		for i := range v {
			if math.Abs(v[i]-orig[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Sum is linear — Sum(a+b) = Sum(a)+Sum(b).
func TestSumLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := NewVector(12), NewVector(12)
		for i := range a {
			a[i], b[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		sa, sb := a.Sum(), b.Sum()
		a.Add(b)
		return math.Abs(a.Sum()-(sa+sb)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// --- Layout-aware kernel tests (hot-path engine) ---

func randomMatrix(t *testing.T, rows, cols int, seed int64) *Matrix {
	t.Helper()
	m := NewMatrix(rows, cols)
	m.RandFill(rand.New(rand.NewSource(seed)), 0, 1)
	return m
}

// TestSumRowsMatchesAccumulate: SumRows must be bit-identical to
// Zero+AccumulateRows for every active-set size straddling its 4-row
// batching (0, 1, 4, 5, 9 rows), including repeated rows.
func TestSumRowsMatchesAccumulate(t *testing.T) {
	m := randomMatrix(t, 12, 37, 1)
	for _, active := range [][]int{
		{}, {3}, {0, 5, 7, 11}, {1, 2, 3, 4, 5}, {8, 3, 3, 0, 11, 6, 2, 9, 4},
	} {
		want := NewVector(m.Cols)
		want.Fill(99) // SumRows must overwrite, not accumulate
		got := want.Copy()
		want.Zero()
		m.AccumulateRows(active, want)
		m.SumRows(active, got)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("active %v col %d: SumRows %v != Zero+AccumulateRows %v", active, j, got[j], want[j])
			}
		}
	}
}

func TestAccumulateRowsScaled(t *testing.T) {
	m := randomMatrix(t, 6, 9, 2)
	active := []int{1, 4, 4}
	out := NewVector(m.Cols)
	m.AccumulateRowsScaled(active, 0.5, out)
	for j := 0; j < m.Cols; j++ {
		want := 0.5*m.At(1, j) + 0.5*m.At(4, j) + 0.5*m.At(4, j)
		if math.Abs(out[j]-want) > 1e-15 {
			t.Fatalf("col %d: got %v, want %v", j, out[j], want)
		}
	}
	// Scaled sum-rows overwrites.
	out.Fill(7)
	m.SumRowsScaled(active, 2, out)
	for j := 0; j < m.Cols; j++ {
		want := 2 * (m.At(1, j) + 2*m.At(4, j))
		if math.Abs(out[j]-want) > 1e-12 {
			t.Fatalf("SumRowsScaled col %d: got %v, want %v", j, out[j], want)
		}
	}
}

func TestTransposeInto(t *testing.T) {
	// Odd shape exercising the 32×32 blocking remainder.
	m := randomMatrix(t, 70, 33, 3)
	tr := NewMatrix(33, 70)
	m.TransposeInto(tr)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if tr.At(j, i) != m.At(i, j) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch must panic")
		}
	}()
	m.TransposeInto(NewMatrix(70, 33))
}

// TestNormalizeRowsMatchesNormalizeCols: normalizing rows of the
// transposed layout must be bit-identical to normalizing columns of the
// original (same element-order reduction, same per-element scaling).
func TestNormalizeRowsMatchesNormalizeCols(t *testing.T) {
	m := randomMatrix(t, 41, 13, 4)
	// A zero column exercises the skip path on both layouts.
	for i := 0; i < m.Rows; i++ {
		m.Set(i, 5, 0)
	}
	tr := NewMatrix(m.Cols, m.Rows)
	m.TransposeInto(tr)

	m.NormalizeCols(78.4)
	tr.NormalizeRows(78.4)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("layouts diverge at (%d,%d): %v vs %v", i, j, m.At(i, j), tr.At(j, i))
			}
		}
	}
}

func TestRowSumIntoScaleRowsScaleCols(t *testing.T) {
	m := randomMatrix(t, 5, 4, 5)
	sums := NewVector(5)
	m.RowSumInto(sums)
	for i := range sums {
		if math.Abs(sums[i]-m.Row(i).Sum()) > 1e-15 {
			t.Fatalf("row %d sum mismatch", i)
		}
	}
	orig := m.Copy()
	f := Vector{1, 2, 0.5, 3, 1}
	m.ScaleRows(f)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != orig.At(i, j)*f[i] {
				t.Fatalf("ScaleRows mismatch at (%d,%d)", i, j)
			}
		}
	}
	m = orig.Copy()
	g := Vector{2, 1, 0.25, 4}
	m.ScaleCols(g)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != orig.At(i, j)*g[j] {
				t.Fatalf("ScaleCols mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestScatterKernels(t *testing.T) {
	x := Vector{1, 2, 3, 4}
	x.ScatterScale([]int{0, 2}, 0.5)
	want := Vector{0.5, 2, 1.5, 4}
	for i := range want {
		if x[i] != want[i] {
			t.Fatalf("ScatterScale: got %v, want %v", x, want)
		}
	}

	w := Vector{0.9, 0.5, 0.1}
	src := Vector{1, 0.5, 1}
	w.ScatterAddScaledClamp([]int{0, 1}, src, 0.3, 1.0)
	if w[0] != 1.0 { // 0.9+0.3 clamps at 1
		t.Fatalf("clamp failed: %v", w[0])
	}
	if math.Abs(w[1]-0.65) > 1e-15 || w[2] != 0.1 {
		t.Fatalf("ScatterAddScaledClamp: got %v", w)
	}

	d := Vector{0.2, 0.05, 0.5}
	d.ScatterSubScaledFloor([]int{0, 1}, Vector{1, 1, 1}, 0.1)
	if math.Abs(d[0]-0.1) > 1e-15 || d[1] != 0 || d[2] != 0.5 {
		t.Fatalf("ScatterSubScaledFloor: got %v (floor at 0 expected for index 1)", d)
	}
}
