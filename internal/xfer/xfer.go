// Package xfer holds the circuit→network transfer maps: how a supply
// voltage excursion translates into corrupted SNN parameters (input
// spike amplitude, membrane threshold, time-to-spike).
//
// The curves are piecewise-linear interpolations anchored on the
// paper's reported HSPICE characterization endpoints (Figs. 5b, 5c, 6a,
// 6b, 6c, 9c and §V-B text). This mirrors the paper's own methodology:
// the circuit simulator produces the transfer curves once, and the
// network-scale attack experiments consume them. Our own spice-level
// characterization (internal/neuron) independently reproduces the
// shape and sign of every curve; the anchored values keep the
// network experiments commensurable with the published numbers.
package xfer

import (
	"fmt"
	"math"
	"sort"
)

// Curve is a piecewise-linear function through (X[i], Y[i]) with
// constant extrapolation beyond the ends.
type Curve struct {
	X, Y []float64
}

// NewCurve builds a curve, validating that X is strictly increasing and
// Y is strictly monotone (increasing or decreasing) when it has more
// than one point. Monotone Y is what makes Inverse well defined; every
// transfer map in this package is a bijection over its anchored range,
// and a non-monotone Y is a sign the anchors were entered wrong.
func NewCurve(x, y []float64) (Curve, error) {
	if len(x) != len(y) || len(x) == 0 {
		return Curve{}, fmt.Errorf("xfer: need equal non-empty X/Y, got %d/%d", len(x), len(y))
	}
	for i := 1; i < len(x); i++ {
		if x[i] <= x[i-1] {
			return Curve{}, fmt.Errorf("xfer: X must be strictly increasing at %d", i)
		}
	}
	if len(y) > 1 {
		increasing := y[1] > y[0]
		for i := 1; i < len(y); i++ {
			if y[i] == y[i-1] || (y[i] > y[i-1]) != increasing {
				return Curve{}, fmt.Errorf("xfer: Y must be strictly monotone, violated at %d", i)
			}
		}
	}
	return Curve{X: x, Y: y}, nil
}

func mustCurve(x, y []float64) Curve {
	c, err := NewCurve(x, y)
	if err != nil {
		panic(err)
	}
	return c
}

// At evaluates the curve at x.
func (c Curve) At(x float64) float64 {
	n := len(c.X)
	if n == 0 {
		return 0
	}
	if x <= c.X[0] {
		return c.Y[0]
	}
	if x >= c.X[n-1] {
		return c.Y[n-1]
	}
	i := sort.SearchFloat64s(c.X, x)
	f := (x - c.X[i-1]) / (c.X[i] - c.X[i-1])
	return c.Y[i-1] + f*(c.Y[i]-c.Y[i-1])
}

// Inverse evaluates x such that At(x) = y. The curve's Y must be
// strictly monotone (which NewCurve enforces); both orientations are
// supported — a decreasing curve (e.g. time-to-spike vs VDD) inverts
// just as an increasing one does. Out-of-range y clamps to the end
// whose Y value is nearest, matching At's constant extrapolation.
func (c Curve) Inverse(y float64) float64 {
	n := len(c.Y)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return c.X[0]
	}
	if c.Y[0] < c.Y[n-1] {
		// Increasing Y: bracket with an ascending binary search.
		if y <= c.Y[0] {
			return c.X[0]
		}
		if y >= c.Y[n-1] {
			return c.X[n-1]
		}
		i := sort.SearchFloat64s(c.Y, y)
		f := (y - c.Y[i-1]) / (c.Y[i] - c.Y[i-1])
		return c.X[i-1] + f*(c.X[i]-c.X[i-1])
	}
	// Decreasing Y: the clamps swap ends and the bracket predicate flips.
	if y >= c.Y[0] {
		return c.X[0]
	}
	if y <= c.Y[n-1] {
		return c.X[n-1]
	}
	i := sort.Search(n, func(k int) bool { return c.Y[k] <= y })
	f := (y - c.Y[i-1]) / (c.Y[i] - c.Y[i-1])
	return c.X[i-1] + f*(c.X[i]-c.X[i-1])
}

// NeuronKind selects which neuron circuit's characterization to use.
type NeuronKind int

// Neuron circuit flavors characterized in the paper.
const (
	AxonHillock NeuronKind = iota
	IAF
)

func (k NeuronKind) String() string {
	if k == IAF {
		return "iaf"
	}
	return "axon-hillock"
}

// KindByName parses a neuron-circuit name as written in declarative
// scenario/suite files: "ah" or "axon-hillock" for the Axon Hillock,
// "iaf" for the integrate-and-fire circuit.
func KindByName(name string) (NeuronKind, error) {
	switch name {
	case "ah", "axon-hillock":
		return AxonHillock, nil
	case "iaf":
		return IAF, nil
	default:
		return 0, fmt.Errorf("xfer: unknown neuron kind %q (want ah|axon-hillock|iaf)", name)
	}
}

// DriverAmplitudeRatio maps VDD (V) to the current-driver output spike
// amplitude as a fraction of nominal (Fig. 5b: 136 nA at 0.8 V, 200 nA
// at 1.0 V, 264 nA at 1.2 V, i.e. ∓32%).
func DriverAmplitudeRatio() Curve {
	return mustCurve(
		[]float64{0.8, 0.9, 1.0, 1.1, 1.2},
		[]float64{0.68, 0.84, 1.0, 1.16, 1.32},
	)
}

// ThresholdRatio maps VDD (V) to the membrane threshold as a fraction
// of nominal (Fig. 6a: AH −17.91%/+16.76%, I&F −18.01%/+17.14% across
// 0.8–1.2 V).
func ThresholdRatio(kind NeuronKind) Curve {
	if kind == IAF {
		return mustCurve(
			[]float64{0.8, 1.0, 1.2},
			[]float64{1 - 0.1801, 1.0, 1 + 0.1714},
		)
	}
	return mustCurve(
		[]float64{0.8, 1.0, 1.2},
		[]float64{1 - 0.1791, 1.0, 1 + 0.1676},
	)
}

// TimeToSpikeVsAmplitudeRatio maps input spike amplitude (A) to the
// time-to-spike as a fraction of nominal (Fig. 5c: AH +53.7% slower at
// 136 nA and −24.7% faster at 264 nA; I&F +14.5%/−6.7%).
func TimeToSpikeVsAmplitudeRatio(kind NeuronKind) Curve {
	if kind == IAF {
		return mustCurve(
			[]float64{136e-9, 200e-9, 264e-9},
			[]float64{1 + 0.145, 1.0, 1 - 0.067},
		)
	}
	return mustCurve(
		[]float64{136e-9, 200e-9, 264e-9},
		[]float64{1 + 0.537, 1.0, 1 - 0.247},
	)
}

// TimeToSpikeVsVDDRatio maps VDD (V) to time-to-spike as a fraction of
// nominal under threshold modulation only (Fig. 6b: AH −17.91% faster
// at 0.8 V, +16.76% slower at 1.2 V; Fig. 6c: I&F −17.05%/+23.53%).
func TimeToSpikeVsVDDRatio(kind NeuronKind) Curve {
	if kind == IAF {
		return mustCurve(
			[]float64{0.8, 1.0, 1.2},
			[]float64{1 - 0.1705, 1.0, 1 + 0.2353},
		)
	}
	return mustCurve(
		[]float64{0.8, 1.0, 1.2},
		[]float64{1 - 0.1791, 1.0, 1 + 0.1676},
	)
}

// SizingResidualShift returns the AH threshold shift (fractional, e.g.
// −0.0523 for −5.23%) remaining at supply vdd when the MP1 device is
// upsized by wlMultiple (Fig. 9c: the 32:1 device limits the 0.8 V
// shift to −5.23% versus −18.01% at baseline, and the 1.2 V shift to
// +3.2%). The shift interpolates linearly in VDD through zero at
// nominal and geometrically in the W/L multiple.
func SizingResidualShift(vdd, wlMultiple float64) float64 {
	if wlMultiple < 1 {
		wlMultiple = 1
	}
	// Endpoint shifts at the two supply extremes for W/L ×1 and ×32.
	low := mustCurve([]float64{0, 5}, []float64{-0.1801, -0.0523}) // log2(W/L) at VDD=0.8
	high := mustCurve([]float64{0, 5}, []float64{0.1714, 0.032})   // log2(W/L) at VDD=1.2
	l2 := math.Log2(wlMultiple)
	shiftLow := low.At(l2)
	shiftHigh := high.At(l2)
	vddCurve := mustCurve([]float64{0.8, 1.0, 1.2}, []float64{shiftLow, 0, shiftHigh})
	return vddCurve.At(vdd)
}

// BandgapResidualRatio returns the threshold ratio under the bandgap
// defense (§V-B1: ±0.56% output variation across the swept supply
// range), linear in the VDD excursion from nominal.
func BandgapResidualRatio(vdd float64) float64 {
	const residualPerVolt = 0.0056 / 0.15
	return 1 + residualPerVolt*(vdd-1.0)
}
