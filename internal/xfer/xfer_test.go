package xfer

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCurveInterpolation(t *testing.T) {
	c, err := NewCurve([]float64{0, 1, 2}, []float64{0, 10, 40})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, want float64 }{
		{-1, 0}, {0, 0}, {0.5, 5}, {1, 10}, {1.5, 25}, {2, 40}, {3, 40},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestCurveValidation(t *testing.T) {
	if _, err := NewCurve([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Fatal("non-increasing X must fail")
	}
	if _, err := NewCurve([]float64{0}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch must fail")
	}
	if _, err := NewCurve(nil, nil); err == nil {
		t.Fatal("empty curve must fail")
	}
	// Y must be strictly monotone in either orientation: a kink or a
	// flat segment makes Inverse ill defined.
	if _, err := NewCurve([]float64{0, 1, 2}, []float64{1, 3, 2}); err == nil {
		t.Fatal("non-monotone Y must fail")
	}
	if _, err := NewCurve([]float64{0, 1, 2}, []float64{3, 2, 2}); err == nil {
		t.Fatal("flat Y segment must fail")
	}
	if _, err := NewCurve([]float64{0, 1, 2}, []float64{3, 2, 1}); err != nil {
		t.Fatalf("strictly decreasing Y must be accepted: %v", err)
	}
}

func TestCurveInverseRoundTrip(t *testing.T) {
	c := ThresholdRatio(IAF)
	f := func(raw float64) bool {
		vdd := 0.8 + math.Mod(math.Abs(raw), 0.4)
		y := c.At(vdd)
		back := c.Inverse(y)
		return math.Abs(back-vdd) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// TestCurveInverseDecreasing pins the decreasing-orientation inverse:
// a time-to-spike-vs-VDD-style curve (falling Y) must round-trip just
// like an increasing one, which the old ascending-only binary search
// got silently wrong.
func TestCurveInverseDecreasing(t *testing.T) {
	// Shape of a time-to-spike vs amplitude curve: more drive, faster spike.
	c, err := NewCurve([]float64{0.8, 1.0, 1.2}, []float64{1.537, 1.0, 0.753})
	if err != nil {
		t.Fatal(err)
	}
	// Exact knots.
	for i := range c.X {
		if got := c.Inverse(c.Y[i]); math.Abs(got-c.X[i]) > 1e-12 {
			t.Fatalf("Inverse(%v) = %v, want knot %v", c.Y[i], got, c.X[i])
		}
	}
	// Interior round trips.
	f := func(raw float64) bool {
		x := 0.8 + math.Mod(math.Abs(raw), 0.4)
		return math.Abs(c.Inverse(c.At(x))-x) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
	// Out-of-range clamps mirror At's constant extrapolation: y above
	// the start clamps to the low-X end, y below the last to the high-X end.
	if got := c.Inverse(2.0); got != 0.8 {
		t.Fatalf("Inverse above range = %v, want 0.8", got)
	}
	if got := c.Inverse(0.1); got != 1.2 {
		t.Fatalf("Inverse below range = %v, want 1.2", got)
	}
	// Single-point curves degenerate to their only X.
	one, err := NewCurve([]float64{3}, []float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if got := one.Inverse(0); got != 3 {
		t.Fatalf("single-point Inverse = %v, want 3", got)
	}
}

func TestDriverAmplitudeRatioAnchors(t *testing.T) {
	c := DriverAmplitudeRatio()
	// Paper Fig. 5b: 136 nA at 0.8 V and 264 nA at 1.2 V of a 200 nA nominal.
	if got := c.At(0.8); math.Abs(got-0.68) > 1e-9 {
		t.Fatalf("ratio at 0.8 V = %v, want 0.68", got)
	}
	if got := c.At(1.0); got != 1 {
		t.Fatalf("ratio at nominal = %v, want 1", got)
	}
	if got := c.At(1.2); math.Abs(got-1.32) > 1e-9 {
		t.Fatalf("ratio at 1.2 V = %v, want 1.32", got)
	}
}

func TestThresholdRatioAnchors(t *testing.T) {
	ah := ThresholdRatio(AxonHillock)
	iaf := ThresholdRatio(IAF)
	if got := ah.At(0.8); math.Abs(got-(1-0.1791)) > 1e-9 {
		t.Fatalf("AH ratio at 0.8 = %v", got)
	}
	if got := iaf.At(1.2); math.Abs(got-(1+0.1714)) > 1e-9 {
		t.Fatalf("I&F ratio at 1.2 = %v", got)
	}
}

func TestTimeToSpikeCurvesDirection(t *testing.T) {
	for _, kind := range []NeuronKind{AxonHillock, IAF} {
		amp := TimeToSpikeVsAmplitudeRatio(kind)
		if !(amp.At(136e-9) > 1 && amp.At(264e-9) < 1) {
			t.Fatalf("%v: lower amplitude must slow, higher must speed", kind)
		}
		vdd := TimeToSpikeVsVDDRatio(kind)
		if !(vdd.At(0.8) < 1 && vdd.At(1.2) > 1) {
			t.Fatalf("%v: low VDD must fire faster", kind)
		}
	}
}

func TestCurvesMonotone(t *testing.T) {
	curves := map[string]Curve{
		"driver":  DriverAmplitudeRatio(),
		"thr-ah":  ThresholdRatio(AxonHillock),
		"thr-iaf": ThresholdRatio(IAF),
	}
	for name, c := range curves {
		prev := math.Inf(-1)
		for v := 0.8; v <= 1.2001; v += 0.01 {
			y := c.At(v)
			if y < prev {
				t.Fatalf("%s not monotone at %v", name, v)
			}
			prev = y
		}
	}
}

func TestSizingResidualShift(t *testing.T) {
	// Paper anchors: −18.01% at ×1, −5.23% at ×32 (VDD = 0.8).
	if got := SizingResidualShift(0.8, 1); math.Abs(got+0.1801) > 1e-9 {
		t.Fatalf("×1 shift = %v", got)
	}
	if got := SizingResidualShift(0.8, 32); math.Abs(got+0.0523) > 1e-9 {
		t.Fatalf("×32 shift = %v", got)
	}
	// Nominal supply: no shift regardless of sizing.
	if got := SizingResidualShift(1.0, 32); got != 0 {
		t.Fatalf("nominal shift = %v", got)
	}
	// 1.2 V anchors: +17.14% at ×1, +3.2% at ×32.
	if got := SizingResidualShift(1.2, 32); math.Abs(got-0.032) > 1e-9 {
		t.Fatalf("×32 at 1.2 V = %v", got)
	}
	// Upsizing monotonically shrinks the low-VDD shift magnitude.
	prev := math.Abs(SizingResidualShift(0.8, 1))
	for _, wl := range []float64{2, 4, 8, 16, 32} {
		cur := math.Abs(SizingResidualShift(0.8, wl))
		if cur >= prev {
			t.Fatalf("shift magnitude should shrink at ×%v: %v >= %v", wl, cur, prev)
		}
		prev = cur
	}
	// Below ×1 clamps to ×1.
	if SizingResidualShift(0.8, 0.5) != SizingResidualShift(0.8, 1) {
		t.Fatal("W/L below 1 should clamp")
	}
}

func TestBandgapResidualRatio(t *testing.T) {
	if got := BandgapResidualRatio(1.0); got != 1 {
		t.Fatalf("nominal residual = %v", got)
	}
	// ±0.56% anchor over a 150 mV excursion.
	dev := math.Abs(BandgapResidualRatio(0.85) - 1)
	if math.Abs(dev-0.0056) > 1e-9 {
		t.Fatalf("residual at 0.85 V = %v, want 0.0056", dev)
	}
	// Far smaller than the undefended ±18%.
	if d := math.Abs(BandgapResidualRatio(0.8) - 1); d > 0.01 {
		t.Fatalf("bandgap residual too large: %v", d)
	}
}

func TestNeuronKindString(t *testing.T) {
	if AxonHillock.String() != "axon-hillock" || IAF.String() != "iaf" {
		t.Fatal("NeuronKind strings changed")
	}
}
