package xfer

import "math"

// Band is one transfer-map value as a per-point distribution under
// process variation: Lo/Hi bracket the Mid (nominal) value at a chosen
// quantile pair, turning the single curves of Figs. 5b/6a into
// variation bands.
type Band struct {
	Lo, Mid, Hi float64
}

// NormalQuantile returns the standard-normal quantile z with
// P(Z ≤ z) = p (e.g. p=0.05 → −1.6449, p=0.5 → 0, p=0.95 → +1.6449).
func NormalQuantile(p float64) float64 {
	return math.Sqrt2 * math.Erfinv(2*p-1)
}

// Variation models device-mismatch spread on a transfer curve as a
// relative normal perturbation of its output: at quantile p the curve
// value scales by 1 + z(p)·RelSigma. RelSigma is the relative sigma
// σ/μ measured by the Monte-Carlo threshold characterization
// (neuron.Spread over MonteCarloThresholds samples), so the band the
// network tier consumes is anchored on the same mismatch statistics
// the circuit tier measured.
type Variation struct {
	RelSigma float64 // relative standard deviation (σ/μ) of the curve output
}

// RatioAt evaluates the curve at x shifted to the given quantile
// percentile (0–100): the p50 value is the nominal curve, p5/p95 are
// the band edges.
func (v Variation) RatioAt(c Curve, x, quantilePc float64) float64 {
	return c.At(x) * (1 + NormalQuantile(quantilePc/100)*v.RelSigma)
}

// BandAt evaluates the curve at x as a (loPc, 50, hiPc) band.
func (v Variation) BandAt(c Curve, x, loPc, hiPc float64) Band {
	return Band{
		Lo:  v.RatioAt(c, x, loPc),
		Mid: c.At(x),
		Hi:  v.RatioAt(c, x, hiPc),
	}
}

// Shift returns the whole curve moved to one quantile: every Y scaled
// by 1 + z·RelSigma. For the quantiles and sigmas in play (|z·σ/μ| ≪ 1)
// the scale factor is positive, so monotonicity — and therefore
// Inverse — is preserved; the shifted curve is what a per-cell
// transfer map samples from the band.
func (v Variation) Shift(c Curve, quantilePc float64) Curve {
	scale := 1 + NormalQuantile(quantilePc/100)*v.RelSigma
	y := make([]float64, len(c.Y))
	for i, yv := range c.Y {
		y[i] = yv * scale
	}
	return Curve{X: append([]float64(nil), c.X...), Y: y}
}
