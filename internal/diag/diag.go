// Package diag wires Go's standard profiling endpoints into the
// campaign commands: an optional pprof HTTP listener, a CPU profile,
// and a heap profile, all behind flags. It uses only net/http/pprof
// and runtime/pprof — no dependencies — and everything is off unless
// its flag is set, so the default invocation pays nothing.
package diag

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the profiling configuration of one command.
type Flags struct {
	PprofAddr  string
	CPUProfile string
	MemProfile string
}

// AddFlags registers -pprof, -cpuprofile and -memprofile on the
// default flag set. Call before flag.Parse.
func AddFlags() *Flags {
	return AddFlagsTo(flag.CommandLine)
}

// AddFlagsTo registers the profiling flags on an explicit flag set.
func AddFlagsTo(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.PprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile to this file at exit")
	return f
}

// Start activates whatever was requested and returns a stop function
// to defer: it ends the CPU profile and writes the heap profile. The
// pprof listener runs until the process exits (its lifetime is the
// debugging session, not the campaign). Errors that prevent a profile
// from being collected are returned immediately — a profiling run that
// silently profiles nothing wastes the whole campaign.
func (f *Flags) Start() (stop func() error, err error) {
	var cpuFile *os.File
	if f.CPUProfile != "" {
		cpuFile, err = os.Create(f.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("diag: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("diag: cpu profile: %w", err)
		}
	}
	if f.PprofAddr != "" {
		ln := f.PprofAddr
		go func() {
			if err := http.ListenAndServe(ln, nil); err != nil {
				fmt.Fprintf(os.Stderr, "diag: pprof listener %s: %v\n", ln, err)
			}
		}()
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if f.MemProfile != "" {
			mf, err := os.Create(f.MemProfile)
			if err != nil {
				return fmt.Errorf("diag: heap profile: %w", err)
			}
			defer mf.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(mf); err != nil {
				return fmt.Errorf("diag: heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
