package snn

// Minibatch STDP training engine (train-protocol-v3, TrainOptions.Batch
// > 1).
//
// The serial Diehl&Cook protocol is order-dependent: image i's STDP
// runs against the weights image i−1 left behind, so the learning pass
// cannot be parallelized without changing what is computed. Minibatch
// training changes it deliberately and deterministically: each group of
// Batch consecutive images is presented against the *same* frozen
// snapshot of the plastic parameters (weights and excitatory adaptive
// thresholds, normalized once at the start of the batch), each image's
// parameter updates are computed independently, and the per-image
// updates are merged in image order:
//
//	W      = clamp( W_frozen + Σ_i (W_i − W_frozen), 0, WMax )
//	Theta  = Theta_frozen + Σ_i (Theta_i − Theta_frozen)
//
// Independence is what buys parallelism: the batch's presentations run
// concurrently on a pool of worker clones, and because every image's
// delta depends only on (frozen parameters, image, its presentation
// seed ImageSeed(base, i)) — never on scheduling — and the merge folds
// deltas in image index order, the trained result is bit-identical at
// every worker count and completion order. Batch = 1 does not route
// here: the serial path applies updates in place, and floating point
// makes frozen + (trained − frozen) differ from trained in the last
// ulp, so the batch engine at width 1 would not reproduce it.
//
// A per-image weight delta is sparse: STDP only touches synapses whose
// pre and post traces are nonzero, i.e. rows in the image's final
// preActive support and columns in its final postActive support (both
// supersets of the touched set — depression writes inputSpikes ×
// postActive rows/cols and every spiked pixel enters preActive the same
// step; potentiation writes preActive × excSpikes and excSpikes joins
// postActive before the learn pass). Extraction walks that submatrix,
// records entries whose value moved, and restores them to the frozen
// values — returning the clone to the snapshot for its next image
// without a full-matrix copy. Theta moves densely (it decays every
// driven step), so its delta is a dense vector.

import (
	"fmt"
	"runtime"

	"snnfi/internal/encoding"
	"snnfi/internal/mnist"
	"snnfi/internal/runner"
	"snnfi/internal/tensor"
)

// trainDelta is one image's contribution to its minibatch.
type trainDelta struct {
	wIdx   []int32       // flattened W indices whose weight changed
	wDelta []float64     // matching (presented − frozen) differences
	dTheta tensor.Vector // dense excitatory theta delta
	cols   []int         // STDP-touched columns, for dirty normalization
}

// trainClone is one training worker's private network + encoder. Its
// plastic parameters track the master's batch snapshot: sync performs
// the full copy when the master has merged a batch since the clone last
// looked, and present restores the touched entries afterwards, so
// within a batch the clone stays on the snapshot without re-copying.
type trainClone struct {
	net     *DiehlCook
	enc     *encoding.PoissonEncoder
	version uint64 // master merge counter the clone's parameters mirror
}

// newTrainClone builds a worker clone of master: same configuration and
// fault hooks, own weight/state storage. Plastic parameters are synced
// separately (version 0 forces the first sync).
func newTrainClone(master *DiehlCook, enc *encoding.PoissonEncoder) (*trainClone, error) {
	cfg := master.Cfg
	exc, err := NewLIFGroup(master.Exc.Cfg)
	if err != nil {
		return nil, err
	}
	inh, err := NewLIFGroup(master.Inh.Cfg)
	if err != nil {
		return nil, err
	}
	copy(exc.ThreshScale, master.Exc.ThreshScale)
	copy(exc.InputGain, master.Exc.InputGain)
	copy(inh.ThreshScale, master.Inh.ThreshScale)
	copy(inh.InputGain, master.Inh.InputGain)
	n := &DiehlCook{
		Cfg:             cfg,
		W:               tensor.NewMatrix(cfg.NInput, cfg.NExc),
		Exc:             exc,
		Inh:             inh,
		InputDriveScale: master.InputDriveScale,
		preLastSpike:    make([]int, cfg.NInput),
		preSeen:         make([]bool, cfg.NInput),
		postSeen:        make([]bool, cfg.NExc),
		dirtySeen:       make([]bool, cfg.NExc),
		driveExc:        tensor.NewVector(cfg.NExc),
		driveInh:        tensor.NewVector(cfg.NInh),
	}
	ce := encoding.NewPoissonEncoder(0)
	ce.MaxRate, ce.Dt, ce.Mode = enc.MaxRate, enc.Dt, enc.Mode
	return &trainClone{net: n, enc: ce}, nil
}

// sync brings the clone's plastic parameters (weights, adaptive
// thresholds) up to the master's batch snapshot. The master is
// read-only for the duration of a batch, so concurrent syncs from
// several clones are safe.
func (c *trainClone) sync(master *DiehlCook, version uint64) {
	if c.version == version {
		return
	}
	copy(c.net.W.Data, master.W.Data)
	copy(c.net.Exc.Theta, master.Exc.Theta)
	copy(c.net.Inh.Theta, master.Inh.Theta)
	c.version = version
}

// present runs one learning presentation of img on the clone, extracts
// the parameter delta against the master's frozen snapshot, and
// restores the clone to the snapshot. The delta depends only on the
// snapshot, the image, and the seed.
func (c *trainClone) present(master *DiehlCook, img *mnist.Image, seed int64) trainDelta {
	c.enc.Reseed(seed)
	c.enc.Begin(img)
	n := c.net
	n.presentLearn(c.enc.EncodeStep)

	d := trainDelta{
		dTheta: make(tensor.Vector, len(n.Exc.Theta)),
		cols:   append([]int(nil), n.dirtyCols...),
	}
	mw, cw := master.W.Data, n.W.Data
	cols := n.W.Cols
	for _, i := range n.preActive {
		base := i * cols
		for _, j := range n.postActive {
			e := base + j
			if cw[e] != mw[e] {
				d.wIdx = append(d.wIdx, int32(e))
				d.wDelta = append(d.wDelta, cw[e]-mw[e])
				cw[e] = mw[e]
			}
		}
	}
	mt := master.Exc.Theta
	for j := range d.dTheta {
		d.dTheta[j] = n.Exc.Theta[j] - mt[j]
	}
	copy(n.Exc.Theta, mt)
	n.clearDirty()
	return d
}

// applyDeltas merges a batch's per-image deltas into the master in
// image order, clamps every touched weight to [0, WMax] (individual
// updates respect the bounds but their sum may not), and marks the
// touched columns dirty for the next batch's normalization.
func applyDeltas(n *DiehlCook, deltas []trainDelta) {
	wd := n.W.Data
	for _, d := range deltas {
		for k, e := range d.wIdx {
			wd[e] += d.wDelta[k]
		}
		n.Exc.Theta.Add(d.dTheta)
		for _, j := range d.cols {
			if !n.dirtySeen[j] {
				n.dirtySeen[j] = true
				n.dirtyCols = append(n.dirtyCols, j)
			}
		}
	}
	wmax := n.Cfg.WMax
	for _, d := range deltas {
		for _, e := range d.wIdx {
			if wd[e] < 0 {
				wd[e] = 0
			} else if wd[e] > wmax {
				wd[e] = wmax
			}
		}
	}
}

// trainMinibatch is the Batch > 1 learning pass of TrainWith: images
// are grouped into batches of opt.Batch, each batch is normalized,
// presented in parallel against the frozen parameters, and merged in
// image order. Results are bit-identical at every opt.Workers.
func trainMinibatch(n *DiehlCook, images []mnist.Image, enc *encoding.PoissonEncoder, opt TrainOptions) error {
	batch := opt.Batch
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > batch {
		workers = batch
	}
	clones := make(chan *trainClone, workers)
	for w := 0; w < workers; w++ {
		c, err := newTrainClone(n, enc)
		if err != nil {
			return err
		}
		clones <- c
	}

	base := enc.Seed()
	seeds := make([]int64, len(images))
	for i := range seeds {
		seeds[i] = ImageSeed(base, i)
	}

	pool := &runner.Pool[trainDelta]{Workers: workers, Obs: opt.Obs, Name: "snn.stdp"}
	version := uint64(1)
	for lo := 0; lo < len(images); lo += batch {
		lo, hi := lo, min(lo+batch, len(images))
		n.normalizeDirty()
		jobs := make([]runner.Job[trainDelta], 0, hi-lo)
		for i := lo; i < hi; i++ {
			i := i
			jobs = append(jobs, runner.Job[trainDelta]{
				Label: fmt.Sprintf("train image %d", i),
				Run: func() (trainDelta, error) {
					c := <-clones
					defer func() { clones <- c }()
					c.sync(n, version)
					return c.present(n, &images[i], seeds[i]), nil
				},
			})
		}
		deltas, err := pool.Run(jobs)
		if err != nil {
			return err
		}
		applyDeltas(n, deltas)
		version++
		if opt.OnProgress != nil {
			for i := lo; i < hi; i++ {
				opt.OnProgress(i+1, len(images))
			}
		}
	}
	return nil
}
