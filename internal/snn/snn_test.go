package snn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"snnfi/internal/encoding"
	"snnfi/internal/mnist"
	"snnfi/internal/tensor"
)

func excGroup(t *testing.T, n int) *LIFGroup {
	t.Helper()
	g, err := NewLIFGroup(ExcConfig(n))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestLIFConfigValidation(t *testing.T) {
	bad := ExcConfig(0)
	if _, err := NewLIFGroup(bad); err == nil {
		t.Fatal("N=0 must fail")
	}
	bad = ExcConfig(5)
	bad.Thresh = bad.Rest - 1
	if _, err := NewLIFGroup(bad); err == nil {
		t.Fatal("Thresh below Rest must fail")
	}
	bad = ExcConfig(5)
	bad.TCDecay = 0
	if _, err := NewLIFGroup(bad); err == nil {
		t.Fatal("zero TCDecay must fail")
	}
}

func TestLIFIntegratesAndFires(t *testing.T) {
	g := excGroup(t, 1)
	drive := tensor.Vector{3} // mV per step against a 13 mV threshold gap
	fired := false
	for step := 0; step < 50; step++ {
		if len(g.Step(drive)) > 0 {
			fired = true
			break
		}
	}
	if !fired {
		t.Fatal("neuron never fired under steady suprathreshold drive")
	}
	if g.V[0] != g.Cfg.Reset {
		t.Fatalf("post-spike potential %v, want reset %v", g.V[0], g.Cfg.Reset)
	}
}

func TestLIFStaysQuietWithoutDrive(t *testing.T) {
	g := excGroup(t, 3)
	for step := 0; step < 200; step++ {
		if len(g.Step(nil)) != 0 {
			t.Fatal("spontaneous spike with no drive")
		}
	}
}

func TestLIFRefractoryBlocksInput(t *testing.T) {
	g := excGroup(t, 1)
	drive := tensor.Vector{20}
	var spikes []int
	for step := 0; step < 12; step++ {
		spikes = append(spikes, len(g.Step(drive)))
	}
	// With Refrac=5 and overwhelming drive, spikes must be ≥5 steps apart.
	last := -10
	for i, s := range spikes {
		if s == 0 {
			continue
		}
		if i-last <= g.Cfg.Refrac {
			t.Fatalf("spikes %d steps apart, refractory is %d", i-last, g.Cfg.Refrac)
		}
		last = i
	}
}

func TestLIFThetaAdaptation(t *testing.T) {
	g := excGroup(t, 1)
	drive := tensor.Vector{20}
	for step := 0; step < 30; step++ {
		g.Step(drive)
	}
	if g.Theta[0] <= 0 {
		t.Fatal("theta should accumulate with spiking")
	}
	// Each spike adds exactly ThetaPlus (decay is negligible at 1e7 ms).
	spikes := math.Round(g.Theta[0] / g.Cfg.ThetaPlus)
	if spikes < 3 {
		t.Fatalf("implausible spike count from theta: %v", spikes)
	}
}

func TestLIFMembraneDecaysTowardRest(t *testing.T) {
	g := excGroup(t, 1)
	g.V[0] = g.Cfg.Rest + 10
	g.Step(nil)
	if g.V[0] >= g.Cfg.Rest+10 {
		t.Fatal("membrane should decay toward rest")
	}
	if g.V[0] <= g.Cfg.Rest {
		t.Fatal("membrane should not undershoot rest")
	}
}

func TestThreshScaleConvention(t *testing.T) {
	// The fault hook scales the threshold VALUE (negative voltage), so a
	// scale of 0.8 ("−20%" in the paper) RAISES the firing threshold.
	g := excGroup(t, 2)
	g.ThreshScale[1] = 0.8
	t0 := g.EffectiveThreshold(0)
	t1 := g.EffectiveThreshold(1)
	if !(t1 > t0) {
		t.Fatalf("scale 0.8 should raise the threshold: %v vs %v", t1, t0)
	}
	g.ThreshScale[1] = 1.2
	if !(g.EffectiveThreshold(1) < t0) {
		t.Fatal("scale 1.2 should lower the threshold")
	}
}

func TestInputGainScalesDrive(t *testing.T) {
	g := excGroup(t, 2)
	g.InputGain[0] = 0.5
	g.Step(tensor.Vector{4, 4})
	if !(g.V[0] < g.V[1]) {
		t.Fatalf("gain 0.5 should integrate less: %v vs %v", g.V[0], g.V[1])
	}
}

func TestGroupResetSemantics(t *testing.T) {
	g := excGroup(t, 1)
	drive := tensor.Vector{20}
	for i := 0; i < 20; i++ {
		g.Step(drive)
	}
	theta := g.Theta[0]
	g.Reset()
	if g.V[0] != g.Cfg.Rest {
		t.Fatal("Reset must restore rest potential")
	}
	if g.Theta[0] != theta {
		t.Fatal("Reset must keep learned theta")
	}
	g.HardReset()
	if g.Theta[0] != 0 {
		t.Fatal("HardReset must clear theta")
	}
}

func smallConfig() DiehlCookConfig {
	cfg := DefaultConfig()
	cfg.NExc, cfg.NInh = 20, 20
	cfg.Steps = 100
	return cfg
}

func TestDiehlCookConfigValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.NInh = 10
	if _, err := NewDiehlCook(cfg); err == nil {
		t.Fatal("NInh != NExc must fail")
	}
	cfg = smallConfig()
	cfg.Steps = 0
	if _, err := NewDiehlCook(cfg); err == nil {
		t.Fatal("zero steps must fail")
	}
	cfg = smallConfig()
	cfg.Norm = 0
	if _, err := NewDiehlCook(cfg); err == nil {
		t.Fatal("zero norm must fail")
	}
}

func TestWeightsNormalizedAtInit(t *testing.T) {
	n, err := NewDiehlCook(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	sums := n.W.ColSum()
	for j, s := range sums {
		if math.Abs(s-n.Cfg.Norm) > 1e-6 {
			t.Fatalf("column %d sum %v, want %v", j, s, n.Cfg.Norm)
		}
	}
}

func TestSTDPPotentiatesActiveSynapses(t *testing.T) {
	cfg := smallConfig()
	n, err := NewDiehlCook(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Drive pixel 0 hard every step; neuron weights for pixel 0 should
	// grow relative to a never-active pixel on neurons that spike.
	before := n.W.Row(0).Copy()
	active := []int{0, 1, 2, 3, 4, 5, 6, 7}
	for step := 0; step < 200; step++ {
		n.Step(active, true)
	}
	grew := false
	for j := range before {
		if n.W.At(0, j) > before[j]+1e-6 {
			grew = true
			break
		}
	}
	if !grew {
		t.Fatal("no potentiation on persistently active synapse")
	}
}

func TestSTDPWeightsStayBounded(t *testing.T) {
	cfg := smallConfig()
	n, err := NewDiehlCook(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for step := 0; step < 500; step++ {
		var active []int
		for i := 0; i < cfg.NInput; i++ {
			if rng.Float64() < 0.03 {
				active = append(active, i)
			}
		}
		n.Step(active, true)
	}
	for _, w := range n.W.Data {
		if w < 0 || w > cfg.WMax {
			t.Fatalf("weight %v escaped [0, %v]", w, cfg.WMax)
		}
	}
}

func TestLateralInhibitionSparsifiesActivity(t *testing.T) {
	// With inhibition disabled, many excitatory neurons fire; with the
	// Diehl&Cook lateral inhibition, activity must be sparser.
	run := func(wInh float64) float64 {
		cfg := smallConfig()
		cfg.WInhExc = wInh
		n, err := NewDiehlCook(cfg)
		if err != nil {
			t.Fatal(err)
		}
		images := mnist.Synthetic(5, 3)
		enc := encoding.NewPoissonEncoder(8)
		total := 0.0
		for i := range images {
			counts := n.RunImage(enc.Encode(&images[i], cfg.Steps), false)
			for _, c := range counts {
				if c > 0 {
					total++
				}
			}
		}
		return total / float64(len(images))
	}
	withInh := run(120)
	without := run(0)
	if withInh >= without {
		t.Fatalf("inhibition should reduce distinct active neurons: %v vs %v", withInh, without)
	}
}

func TestRunImageDeterministicGivenSeeds(t *testing.T) {
	cfg := smallConfig()
	images := mnist.Synthetic(3, 3)
	run := func() tensor.Vector {
		n, err := NewDiehlCook(cfg)
		if err != nil {
			t.Fatal(err)
		}
		enc := encoding.NewPoissonEncoder(8)
		var last tensor.Vector
		for i := range images {
			last = n.RunImage(enc.Encode(&images[i], cfg.Steps), true)
		}
		return last
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("identical seeds must give identical spike counts")
		}
	}
}

func TestTrainImprovesOverChance(t *testing.T) {
	cfg := smallConfig()
	cfg.NExc, cfg.NInh = 30, 30
	n, err := NewDiehlCook(cfg)
	if err != nil {
		t.Fatal(err)
	}
	images := mnist.Synthetic(200, 7)
	enc := encoding.NewPoissonEncoder(42)
	res, err := Train(n, images, enc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0.25 {
		t.Fatalf("training accuracy %.3f, want well above 10%% chance", res.Accuracy)
	}
}

func TestTrainRejectsEmptyInput(t *testing.T) {
	n, err := NewDiehlCook(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	enc := encoding.NewPoissonEncoder(1)
	if _, err := Train(n, nil, enc); err == nil {
		t.Fatal("empty training set must fail")
	}
	if _, err := Evaluate(n, nil, enc, nil); err == nil {
		t.Fatal("empty evaluation set must fail")
	}
}

func TestAssignLabelsAndClassify(t *testing.T) {
	// Two neurons: neuron 0 fires for class 3, neuron 1 for class 5.
	perImage := []tensor.Vector{
		{5, 0}, {4, 1}, // class 3
		{0, 6}, {1, 7}, // class 5
	}
	labels := []uint8{3, 3, 5, 5}
	as := AssignLabels(perImage, labels, 2)
	if as[0] != 3 || as[1] != 5 {
		t.Fatalf("assignments = %v", as)
	}
	if got := Classify(tensor.Vector{9, 1}, as); got != 3 {
		t.Fatalf("Classify = %d, want 3", got)
	}
	if got := Classify(tensor.Vector{0, 2}, as); got != 5 {
		t.Fatalf("Classify = %d, want 5", got)
	}
	if got := Classify(tensor.Vector{0, 0}, as); got != -1 {
		t.Fatalf("silent network should classify as -1, got %d", got)
	}
}

func TestAssignLabelsSilentNeuron(t *testing.T) {
	perImage := []tensor.Vector{{0, 3}}
	labels := []uint8{2}
	as := AssignLabels(perImage, labels, 2)
	if as[0] != -1 {
		t.Fatalf("silent neuron assignment = %d, want -1", as[0])
	}
}

// Property: theta accumulation equals ThetaPlus × spike count (up to
// the negligible decay), for random drive patterns.
func TestThetaAccountingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := NewLIFGroup(ExcConfig(1))
		if err != nil {
			return false
		}
		spikes := 0
		for step := 0; step < 100; step++ {
			d := tensor.Vector{rng.Float64() * 10}
			spikes += len(g.Step(d))
		}
		want := float64(spikes) * g.Cfg.ThetaPlus
		return math.Abs(g.Theta[0]-want) < 0.01*want+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: membrane potential never exceeds the maximum effective
// threshold before reset semantics kick in (spike ⇒ reset).
func TestSpikeImpliesResetProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := NewLIFGroup(InhConfig(4))
		if err != nil {
			return false
		}
		for step := 0; step < 200; step++ {
			d := tensor.NewVector(4)
			for i := range d {
				d[i] = rng.Float64() * 30
			}
			spiked := g.Step(d)
			for _, j := range spiked {
				if g.V[j] != g.Cfg.Reset {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
