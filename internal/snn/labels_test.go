package snn

// Deterministic tie-break tests for the labeling and classification
// rules: both resolve exact rate ties toward the lowest class index
// (strict > comparisons while scanning classes in ascending order), and
// both fall back to −1 when nothing qualifies. These semantics are
// load-bearing — sweep results must not depend on map order or float
// noise — so they are pinned here.

import (
	"testing"

	"snnfi/internal/tensor"
)

func TestAssignLabelsTieBreaksToLowestClass(t *testing.T) {
	// Two presentations, classes 3 and 7, identical counts for each
	// neuron: average rates tie exactly, so every active neuron must be
	// assigned the lower class, 3.
	perImage := []tensor.Vector{
		{4, 2, 0},
		{4, 2, 0},
	}
	labels := []uint8{3, 7}
	got := AssignLabels(perImage, labels, 3)
	want := []int{3, 3, -1}
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("neuron %d: got class %d, want %d (full: %v)", j, got[j], want[j], got)
		}
	}
}

func TestAssignLabelsNeverActiveNeuron(t *testing.T) {
	perImage := []tensor.Vector{{0, 5}, {0, 1}}
	labels := []uint8{2, 2}
	got := AssignLabels(perImage, labels, 2)
	if got[0] != -1 {
		t.Fatalf("silent neuron must get -1, got %d", got[0])
	}
	if got[1] != 2 {
		t.Fatalf("active neuron must get its class, got %d", got[1])
	}
}

func TestAssignLabelsUnevenClassCounts(t *testing.T) {
	// Class 1 shows up twice with count 3 each (average 3); class 0
	// once with count 4 (average 4): the average, not the sum, decides.
	perImage := []tensor.Vector{{4}, {3}, {3}}
	labels := []uint8{0, 1, 1}
	got := AssignLabels(perImage, labels, 1)
	if got[0] != 0 {
		t.Fatalf("expected class 0 (higher average rate), got %d", got[0])
	}
}

func TestClassifyTieBreaksToLowestClass(t *testing.T) {
	// Neurons 0 and 1 assigned to classes 2 and 5; equal counts tie the
	// per-class average rates, so the prediction must be class 2.
	counts := tensor.Vector{3, 3}
	assignments := []int{2, 5}
	if got := Classify(counts, assignments); got != 2 {
		t.Fatalf("tie must resolve to lowest class, got %d", got)
	}
}

func TestClassifySilentNetwork(t *testing.T) {
	// No spikes at all: no class can be preferred (strict > against the
	// initial 0 rate), so Classify reports -1.
	counts := tensor.Vector{0, 0}
	assignments := []int{1, 4}
	if got := Classify(counts, assignments); got != -1 {
		t.Fatalf("silent network must classify as -1, got %d", got)
	}
}

func TestClassifyIgnoresUnassignedNeurons(t *testing.T) {
	// Neuron 0 is unassigned (-1); its huge count must not leak into
	// any class average.
	counts := tensor.Vector{100, 2, 1}
	assignments := []int{-1, 6, 3}
	if got := Classify(counts, assignments); got != 6 {
		t.Fatalf("expected class 6, got %d", got)
	}
}

func TestClassifyAveragesWithinClass(t *testing.T) {
	// Class 0 has two assigned neurons with counts 2 and 4 (average 3);
	// class 1 one neuron with count 5: class 1 wins on average despite
	// the smaller total.
	counts := tensor.Vector{2, 4, 5}
	assignments := []int{0, 0, 1}
	if got := Classify(counts, assignments); got != 1 {
		t.Fatalf("expected class 1 (higher average), got %d", got)
	}
}
