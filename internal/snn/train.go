package snn

import (
	"fmt"

	"snnfi/internal/encoding"
	"snnfi/internal/mnist"
	"snnfi/internal/tensor"
)

// TrainResult summarizes a training run: per-neuron class assignments,
// classification accuracy over the presented images, and activity
// statistics useful for diagnosing attacks.
type TrainResult struct {
	Assignments []int   // neuron → class (−1 for never-active neurons)
	Accuracy    float64 // fraction of images classified correctly
	TotalSpikes float64 // total excitatory spikes over the run
	PerImage    []tensor.Vector
	Labels      []uint8
}

// Train presents the images once (the paper iterates training samples
// once), learning with STDP, then assigns each excitatory neuron the
// class for which it spiked most ("all activity" labeling) and scores
// classification accuracy over the same presentations — the paper's
// protocol: "all experiments are conducted on 1000 Poisson-encoded
// training images", with accuracy measured on those images.
func Train(n *DiehlCook, images []mnist.Image, enc *encoding.PoissonEncoder) (*TrainResult, error) {
	return TrainObserved(n, images, enc, nil)
}

// TrainObserved is Train with a per-presentation hook: beforeImage,
// when non-nil, runs before image i is encoded and presented.
// Fault-injection campaigns use it to corrupt network parameters
// mid-training (e.g. re-applying synaptic drift every N images)
// without duplicating the training/labeling/scoring loop.
func TrainObserved(n *DiehlCook, images []mnist.Image, enc *encoding.PoissonEncoder, beforeImage func(i int)) (*TrainResult, error) {
	if len(images) == 0 {
		return nil, fmt.Errorf("snn: no training images")
	}
	res := &TrainResult{
		PerImage: make([]tensor.Vector, 0, len(images)),
		Labels:   make([]uint8, 0, len(images)),
	}
	for i := range images {
		if beforeImage != nil {
			beforeImage(i)
		}
		enc.Begin(&images[i])
		counts := n.RunImageStream(enc.EncodeStep, true)
		res.TotalSpikes += counts.Sum()
		res.PerImage = append(res.PerImage, counts)
		res.Labels = append(res.Labels, images[i].Label)
	}
	res.Assignments = AssignLabels(res.PerImage, res.Labels, n.Cfg.NExc)
	correct := 0
	for i, counts := range res.PerImage {
		if Classify(counts, res.Assignments) == int(res.Labels[i]) {
			correct++
		}
	}
	res.Accuracy = float64(correct) / float64(len(images))
	return res, nil
}

// Evaluate presents images without learning and scores them against
// existing assignments.
func Evaluate(n *DiehlCook, images []mnist.Image, enc *encoding.PoissonEncoder, assignments []int) (float64, error) {
	if len(images) == 0 {
		return 0, fmt.Errorf("snn: no evaluation images")
	}
	correct := 0
	for i := range images {
		enc.Begin(&images[i])
		counts := n.RunImageStream(enc.EncodeStep, false)
		if Classify(counts, assignments) == int(images[i].Label) {
			correct++
		}
	}
	return float64(correct) / float64(len(images)), nil
}

// AssignLabels implements Diehl&Cook "all activity" neuron labeling:
// each neuron is assigned the class for which its average spike count
// (per presentation of that class) is highest. Neurons that never spike
// get −1.
func AssignLabels(perImage []tensor.Vector, labels []uint8, nNeurons int) []int {
	const nClasses = 10
	sums := tensor.NewMatrix(nClasses, nNeurons)
	classCount := make([]float64, nClasses)
	for i, counts := range perImage {
		c := int(labels[i])
		classCount[c]++
		row := sums.Row(c)
		row.Add(counts)
	}
	assignments := make([]int, nNeurons)
	for j := 0; j < nNeurons; j++ {
		bestClass, bestRate := -1, 0.0
		for c := 0; c < nClasses; c++ {
			if classCount[c] == 0 {
				continue
			}
			rate := sums.At(c, j) / classCount[c]
			if rate > bestRate {
				bestRate, bestClass = rate, c
			}
		}
		assignments[j] = bestClass
	}
	return assignments
}

// Classify predicts the class of one presentation from per-neuron spike
// counts: the class whose assigned neurons fired most on average.
// Returns −1 when nothing fired and no class can be preferred.
func Classify(counts tensor.Vector, assignments []int) int {
	const nClasses = 10
	var sum [nClasses]float64
	var num [nClasses]float64
	for j, c := range assignments {
		if c < 0 || j >= len(counts) {
			continue
		}
		sum[c] += counts[j]
		num[c]++
	}
	best, bestRate := -1, 0.0
	for c := 0; c < nClasses; c++ {
		if num[c] == 0 {
			continue
		}
		rate := sum[c] / num[c]
		if rate > bestRate {
			bestRate, best = rate, c
		}
	}
	return best
}
