package snn

import (
	"fmt"

	"snnfi/internal/encoding"
	"snnfi/internal/mnist"
	"snnfi/internal/obs"
	"snnfi/internal/tensor"
)

// ProtocolVersion names the training/evaluation semantics trained
// results depend on, and belongs in every cache key that stores them
// (core experiment fingerprints, cmd/snn-train's result cache). Bump
// it whenever a change alters what a trained result contains — v2 was
// the intra-cell engine's per-image seeding and frozen-network
// assignment pass; v3 is the training-pass engine: the geometric
// skip-sampling encoder (one RNG draw per spike instead of per pixel
// per step; encoding.SkipSampling), dirty-column homeostatic
// normalization (untouched columns keep their previous bits instead of
// rescaling by ≈1), and minibatch STDP (TrainOptions.Batch) — so stale
// caches miss instead of serving values computed under older
// semantics.
const ProtocolVersion = "train-protocol-v3"

// TrainResult summarizes a training run: per-neuron class assignments,
// classification accuracy over the presented images, and activity
// statistics useful for diagnosing attacks. PerImage, TotalSpikes,
// Assignments and Accuracy all come from the read-only assignment pass
// over the frozen trained network (see TrainWith).
type TrainResult struct {
	Assignments []int   // neuron → class (−1 for never-active neurons)
	Accuracy    float64 // fraction of images classified correctly
	TotalSpikes float64 // total excitatory spikes over the assignment pass
	PerImage    []tensor.Vector
	Labels      []uint8
}

// TrainOptions configures TrainWith beyond its data arguments.
type TrainOptions struct {
	// BeforeImage, when non-nil, runs before image i is encoded and
	// presented in the learning pass. Fault-injection campaigns use it
	// to corrupt network parameters mid-training (e.g. re-applying
	// synaptic drift every N images) without duplicating the
	// training/labeling/scoring loop.
	BeforeImage func(i int)
	// Batch is the STDP minibatch size. ≤1 (the default) is the serial
	// protocol: normalize, present, update, image by image. Batch > 1
	// presents each group of Batch consecutive images against the same
	// frozen weights and adaptive thresholds (normalized once per
	// batch), computes each image's weight and theta updates
	// independently — in parallel on the training pool — and merges
	// them in image order (see trainMinibatch). Different Batch values
	// are different training semantics and produce different results;
	// for a fixed Batch the result is bit-identical at every worker
	// count and scheduling order. Ignored (forced serial) when
	// BeforeImage is set: fault hooks mutate parameters mid-pass, which
	// has no coherent frozen-batch meaning.
	Batch int
	// Workers sizes the minibatch training pool (when Batch > 1) and
	// the read-only assignment pass; ≤0 uses all CPUs. Results are
	// bit-identical at every width.
	Workers int
	// Obs, when non-nil, records phase spans: "snn.stdp" (the serial
	// learning pass) and "snn.assign" (the parallel assignment pass),
	// plus the assignment pool's "snn.eval.*" metrics. Observation
	// only — trained results are identical with or without it.
	Obs *obs.Registry
	// OnProgress, when non-nil, observes each learning-pass image as
	// (done, total) — the serial counterpart of the pool's progress
	// stream, for live training status.
	OnProgress func(done, total int)
}

// Train presents the images once (the paper iterates training samples
// once), learning with STDP, then assigns each excitatory neuron the
// class for which it spiked most ("all activity" labeling) and scores
// classification accuracy over the same presentations — the paper's
// protocol: "all experiments are conducted on 1000 Poisson-encoded
// training images", with accuracy measured on those images.
func Train(n *DiehlCook, images []mnist.Image, enc *encoding.PoissonEncoder) (*TrainResult, error) {
	return TrainWith(n, images, enc, TrainOptions{})
}

// TrainWith runs the two-pass protocol of the intra-cell engine:
//
//  1. Learning pass, serial (STDP is order-dependent): each image is
//     presented with plasticity on, encoded from its per-image seed
//     ImageSeed(enc.Seed(), i).
//  2. Assignment pass, parallel: the same images are re-presented from
//     the same per-image seeds against the frozen trained parameters
//     (learn=false, theta folded into the effective thresholds), on
//     opt.Workers evaluation workers. The resulting counts drive
//     labeling and scoring, so the reported accuracy is a property of
//     the finished network rather than of its mid-training trajectory.
//
// The encoder supplies the base seed and rate configuration; its base
// seed is restored on return (the per-image reseeding is internal), so
// a subsequent Evaluate with the same encoder derives its presentation
// seeds from the original base.
func TrainWith(n *DiehlCook, images []mnist.Image, enc *encoding.PoissonEncoder, opt TrainOptions) (*TrainResult, error) {
	if len(images) == 0 {
		return nil, fmt.Errorf("snn: no training images")
	}
	base := enc.Seed()
	defer enc.Reseed(base)
	stdp := obs.Span(opt.Obs, "snn.stdp")
	switch {
	case opt.BeforeImage != nil:
		// Fault hooks may write W directly between presentations, which
		// the dirty-column tracking cannot see — keep the full
		// normalize-every-image protocol (and serial order, which a
		// mid-pass mutation implicitly depends on).
		for i := range images {
			opt.BeforeImage(i)
			enc.Reseed(ImageSeed(base, i))
			enc.Begin(&images[i])
			n.RunImageStream(enc.EncodeStep, true)
			if opt.OnProgress != nil {
				opt.OnProgress(i+1, len(images))
			}
		}
	case opt.Batch > 1:
		// One full normalization opens the pass: whatever wrote W since
		// the last normalization (fresh init, fault setup) predates the
		// dirty tracking.
		n.NormalizeWeights()
		if err := trainMinibatch(n, images, enc, opt); err != nil {
			return nil, err
		}
	default:
		n.NormalizeWeights()
		for i := range images {
			enc.Reseed(ImageSeed(base, i))
			enc.Begin(&images[i])
			n.TrainImageStream(enc.EncodeStep)
			if opt.OnProgress != nil {
				opt.OnProgress(i+1, len(images))
			}
		}
	}
	stdp.End()

	assign := obs.Span(opt.Obs, "snn.assign")
	counts, err := CountsParallel(n.Params(), images, EvalOptions{
		Workers: opt.Workers, Seed: base, MaxRate: enc.MaxRate, Dt: enc.Dt,
		Obs: opt.Obs,
	})
	assign.End()
	if err != nil {
		return nil, err
	}
	res := &TrainResult{
		PerImage: counts,
		Labels:   make([]uint8, 0, len(images)),
	}
	for i := range images {
		res.Labels = append(res.Labels, images[i].Label)
		res.TotalSpikes += counts[i].Sum()
	}
	res.Assignments = AssignLabels(res.PerImage, res.Labels, n.Cfg.NExc)
	correct := 0
	for i, c := range counts {
		if Classify(c, res.Assignments) == int(res.Labels[i]) {
			correct++
		}
	}
	res.Accuracy = float64(correct) / float64(len(images))
	return res, nil
}

// Evaluate presents images without learning and scores them against
// existing assignments. It is the serial entry point of the inference
// engine — the same kernel and per-image seeding as EvaluateParallel
// at width 1, so its result is bit-identical to any parallel run with
// the same base seed.
func Evaluate(n *DiehlCook, images []mnist.Image, enc *encoding.PoissonEncoder, assignments []int) (float64, error) {
	return EvaluateParallel(n.Params(), images, assignments, EvalOptions{
		Workers: 1, Seed: enc.Seed(), MaxRate: enc.MaxRate, Dt: enc.Dt,
	})
}

// AssignLabels implements Diehl&Cook "all activity" neuron labeling:
// each neuron is assigned the class for which its average spike count
// (per presentation of that class) is highest. Neurons that never spike
// get −1.
func AssignLabels(perImage []tensor.Vector, labels []uint8, nNeurons int) []int {
	const nClasses = 10
	sums := tensor.NewMatrix(nClasses, nNeurons)
	classCount := make([]float64, nClasses)
	for i, counts := range perImage {
		c := int(labels[i])
		classCount[c]++
		row := sums.Row(c)
		row.Add(counts)
	}
	assignments := make([]int, nNeurons)
	for j := 0; j < nNeurons; j++ {
		bestClass, bestRate := -1, 0.0
		for c := 0; c < nClasses; c++ {
			if classCount[c] == 0 {
				continue
			}
			rate := sums.At(c, j) / classCount[c]
			if rate > bestRate {
				bestRate, bestClass = rate, c
			}
		}
		assignments[j] = bestClass
	}
	return assignments
}

// Classify predicts the class of one presentation from per-neuron spike
// counts: the class whose assigned neurons fired most on average.
// Returns −1 when nothing fired and no class can be preferred.
func Classify(counts tensor.Vector, assignments []int) int {
	const nClasses = 10
	var sum [nClasses]float64
	var num [nClasses]float64
	for j, c := range assignments {
		if c < 0 || j >= len(counts) {
			continue
		}
		sum[c] += counts[j]
		num[c]++
	}
	best, bestRate := -1, 0.0
	for c := 0; c < nClasses; c++ {
		if num[c] == 0 {
			continue
		}
		rate := sum[c] / num[c]
		if rate > bestRate {
			bestRate, best = rate, c
		}
	}
	return best
}
