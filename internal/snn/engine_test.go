package snn

// Tests for the intra-cell parallel inference engine: the params/state
// split, the per-image seeding contract, worker-count bit-identity,
// workspace-pool hygiene, and the shared decay table's concurrent
// growth. The worker-determinism and decay-race tests here are the
// ones CI runs under -race.

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"snnfi/internal/encoding"
	"snnfi/internal/mnist"
	"snnfi/internal/tensor"
)

// trainedEngine trains a tiny network and returns its frozen view plus
// the images and base seed the cell used.
func trainedEngine(t *testing.T) (*Params, []mnist.Image, int64) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.NExc, cfg.NInh = 16, 16
	cfg.Steps = 60
	n, err := NewDiehlCook(cfg)
	if err != nil {
		t.Fatal(err)
	}
	images := mnist.Synthetic(40, 7)
	enc := encoding.NewPoissonEncoder(42)
	if _, err := Train(n, images, enc); err != nil {
		t.Fatal(err)
	}
	return n.Params(), images, 42
}

func sameCounts(t *testing.T, label string, got, want []tensor.Vector) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d count vectors, want %d", label, len(got), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("%s: image %d neuron %d: count %g, want %g", label, i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestEvaluateParallelBitIdentical is the engine's acceptance
// contract: counts and accuracy are bit-identical at 1, 2 and 4
// workers, and the serial Evaluate entry point agrees exactly.
func TestEvaluateParallelBitIdentical(t *testing.T) {
	p, images, seed := trainedEngine(t)
	assignments := make([]int, p.Exc.N)
	for j := range assignments {
		assignments[j] = j % 10
	}

	refCounts, err := CountsParallel(p, images, EvalOptions{Workers: 1, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	refAcc, err := EvaluateParallel(p, images, assignments, EvalOptions{Workers: 1, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4} {
		counts, err := CountsParallel(p, images, EvalOptions{Workers: w, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		sameCounts(t, "workers", counts, refCounts)
		acc, err := EvaluateParallel(p, images, assignments, EvalOptions{Workers: w, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if acc != refAcc {
			t.Fatalf("workers=%d: accuracy %v, want %v", w, acc, refAcc)
		}
	}

	// The serial Evaluate entry point is the same kernel at width 1:
	// freezing a network and evaluating in parallel must agree exactly
	// with Evaluate on that network.
	n, err := NewDiehlCook(p.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	acc1, err := Evaluate(n, images, encoding.NewPoissonEncoder(seed), assignments)
	if err != nil {
		t.Fatal(err)
	}
	acc2, err := EvaluateParallel(n.Params(), images, assignments, EvalOptions{Workers: 4, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if acc1 != acc2 {
		t.Fatalf("Evaluate %v != EvaluateParallel %v", acc1, acc2)
	}
}

// TestTrainWorkerCountInvariant: a whole training cell — learning pass
// (serial or minibatch) plus parallel assignment pass — produces
// bit-identical results at any worker count, for every batch size. The
// learning pass is covered through the trained weights and thresholds:
// if any STDP update or merge depended on scheduling, W or Theta would
// differ and so, in general, would every downstream count. Run under
// -race in CI, where the minibatch pool's clone-sync and delta-merge
// paths are exercised concurrently.
func TestTrainWorkerCountInvariant(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NExc, cfg.NInh = 16, 16
	cfg.Steps = 60
	images := mnist.Synthetic(30, 7)

	run := func(workers, batch int) (*TrainResult, *DiehlCook) {
		n, err := NewDiehlCook(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := TrainWith(n, images, encoding.NewPoissonEncoder(42),
			TrainOptions{Workers: workers, Batch: batch})
		if err != nil {
			t.Fatal(err)
		}
		return res, n
	}
	for _, batch := range []int{1, 2, 8} {
		ref, refNet := run(1, batch)
		for _, w := range []int{2, 4} {
			res, net := run(w, batch)
			if res.Accuracy != ref.Accuracy || res.TotalSpikes != ref.TotalSpikes {
				t.Fatalf("workers=%d batch=%d: accuracy/spikes %v/%v, want %v/%v",
					w, batch, res.Accuracy, res.TotalSpikes, ref.Accuracy, ref.TotalSpikes)
			}
			for j := range ref.Assignments {
				if res.Assignments[j] != ref.Assignments[j] {
					t.Fatalf("workers=%d batch=%d: assignment of neuron %d differs", w, batch, j)
				}
			}
			sameCounts(t, "train", res.PerImage, ref.PerImage)
			for e, want := range refNet.W.Data {
				if net.W.Data[e] != want {
					t.Fatalf("workers=%d batch=%d: trained weight %d differs: %g != %g",
						w, batch, e, net.W.Data[e], want)
				}
			}
			for j, want := range refNet.Exc.Theta {
				if net.Exc.Theta[j] != want {
					t.Fatalf("workers=%d batch=%d: trained theta %d differs", w, batch, j)
				}
			}
		}
	}
}

// TestTrainBatchSemantics pins the batch-size contract: Batch ≤ 1 and
// the zero value are the serial protocol (identical results), while a
// larger batch is a genuinely different — but internally deterministic
// — computation (images in one batch see frozen weights rather than
// each other's updates).
func TestTrainBatchSemantics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NExc, cfg.NInh = 16, 16
	cfg.Steps = 60
	images := mnist.Synthetic(24, 3)

	run := func(batch int) *DiehlCook {
		n, err := NewDiehlCook(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := TrainWith(n, images, encoding.NewPoissonEncoder(7),
			TrainOptions{Workers: 2, Batch: batch}); err != nil {
			t.Fatal(err)
		}
		return n
	}
	serial := run(0)
	one := run(1)
	for e := range serial.W.Data {
		if one.W.Data[e] != serial.W.Data[e] {
			t.Fatalf("Batch=1 diverged from Batch=0 at weight %d", e)
		}
	}
	batched := run(4)
	same := true
	for e := range serial.W.Data {
		if batched.W.Data[e] != serial.W.Data[e] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("Batch=4 produced bitwise-serial weights; frozen-batch semantics not in effect")
	}
}

// TestInferenceMatchesStepKernel anchors the frozen-parameter kernel
// against DiehlCook.Step(learn=false): with adaptation disabled
// (ThetaPlus = 0) a learn=false presentation through the training
// kernel IS frozen inference, so both paths must produce bit-identical
// spike counts for the same per-image seeds.
func TestInferenceMatchesStepKernel(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NExc, cfg.NInh = 20, 20
	cfg.Steps = 80
	cfg.RestSteps = 4
	n, err := NewDiehlCook(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Disable excitatory adaptation so theta stays identically zero in
	// the training kernel (the inference kernel freezes theta always).
	n.Exc.Cfg.ThetaPlus = 0
	// Exercise the fault hooks too: the frozen view must fold them in.
	n.Exc.ThreshScale.Fill(0.95)
	n.Inh.ThreshScale.Fill(1.05)
	n.Exc.InputGain.Fill(1.1)
	n.Exc.Reset()
	n.Inh.Reset()

	images := mnist.Synthetic(5, 3)
	const seed = 9
	p := n.Params()
	st := p.NewState()
	enc := encoding.NewPoissonEncoder(0)
	for i := range images {
		enc.Reseed(ImageSeed(seed, i))
		enc.Begin(&images[i])
		want := n.RunImageStream(enc.EncodeStep, false)

		got := p.presentImage(st, &images[i], ImageSeed(seed, i))
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("image %d neuron %d: inference %g, step kernel %g", i, j, got[j], want[j])
			}
		}
		if got.Sum() == 0 {
			t.Fatalf("image %d: silent presentation makes the comparison vacuous", i)
		}
	}
}

// TestParamsFreezeSemantics: EffThresh folds theta and the threshold
// hook at freeze time, and later hook mutations do not leak into an
// existing view.
func TestParamsFreezeSemantics(t *testing.T) {
	p, _, _ := trainedEngine(t)
	n, err := NewDiehlCook(p.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Exc.Theta[3] = 7.5
	n.Exc.ThreshScale[3] = 0.8
	view := n.Params()
	if got, want := view.Exc.EffThresh[3], n.Exc.EffectiveThreshold(3); got != want {
		t.Fatalf("EffThresh[3] = %v, want EffectiveThreshold %v", got, want)
	}
	before := view.Exc.EffThresh[3]
	n.Exc.ThreshScale[3] = 1.3
	n.Exc.Theta[3] = 0
	if view.Exc.EffThresh[3] != before {
		t.Fatal("mutating the network after freezing changed the view")
	}
}

// TestStatePoolObservationFree: a reused workspace must behave exactly
// like a fresh one — dirty a state thoroughly, seed the pool with it,
// and demand the pooled pass still matches fresh-state presentations.
func TestStatePoolObservationFree(t *testing.T) {
	p, images, seed := trainedEngine(t)

	// Fresh-state reference, bypassing the pool entirely.
	want := make([]tensor.Vector, len(images))
	for i := range images {
		st := p.NewState()
		want[i] = p.presentImage(st, &images[i], ImageSeed(seed, i)).Copy()
	}

	// Dirty a state against a different configuration and poison every
	// mutable field, then hand it to the pool.
	bigCfg := p.Cfg
	bigCfg.NExc, bigCfg.NInh = 33, 33
	bigNet, err := NewDiehlCook(bigCfg)
	if err != nil {
		t.Fatal(err)
	}
	bigP := bigNet.Params()
	dirty := bigP.NewState()
	bigP.presentImage(dirty, &images[0], 123) // leave real dynamics behind
	dirty.vExc.Fill(1e9)
	dirty.vInh.Fill(-1e9)
	for i := range dirty.refracExc {
		dirty.refracExc[i] = 99
	}
	dirty.prevExc = append(dirty.prevExc[:0], 0, 1, 2)
	dirty.prevInh = append(dirty.prevInh[:0], 3, 4)
	dirty.counts.Fill(5)
	workspacePool.Put(dirty)

	got, err := CountsParallel(p, images, EvalOptions{Workers: 1, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	sameCounts(t, "pooled", got, want)
}

// TestPreDecayTableConcurrentGrowth is the decay-table race
// regression: many goroutines growing and reading the shared table
// concurrently (as parallel campaign cells do) must always observe
// exact iterated-product values. Run under -race in CI.
func TestPreDecayTableConcurrentGrowth(t *testing.T) {
	want := make([]float64, 2048)
	want[0] = 1
	for i := 1; i < len(want); i++ {
		want[i] = want[i-1] * preTraceDecayPerMs
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 1; k < len(want); k += 7 + g {
				tab := preDecayTable(k)
				if len(tab) <= k {
					t.Errorf("table of len %d cannot cover %d", len(tab), k)
					return
				}
				if tab[k] != want[k] {
					t.Errorf("decayPow[%d] = %g, want %g", k, tab[k], want[k])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestPresentImageAllocationFree: once a workspace is warm, presenting
// an image allocates nothing — what keeps a full matrix's read-only
// phases allocation-flat.
func TestPresentImageAllocationFree(t *testing.T) {
	p, images, seed := trainedEngine(t)
	st := p.NewState()
	seed1 := ImageSeed(seed, 1)
	p.presentImage(st, &images[0], ImageSeed(seed, 0)) // warm buffers
	avg := testing.AllocsPerRun(50, func() {
		p.presentImage(st, &images[1], seed1)
	})
	if avg > 0.5 {
		t.Fatalf("presentImage allocates %.1f objects per image, want 0", avg)
	}
}

// TestImageSeedProperties: presentation seeds are deterministic,
// distinct across images, and independent of worker scheduling by
// construction (pure function of base and index).
func TestImageSeedProperties(t *testing.T) {
	seen := map[int64]int{}
	for i := 0; i < 500; i++ {
		s := ImageSeed(42, i)
		if s != ImageSeed(42, i) {
			t.Fatal("ImageSeed is not deterministic")
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("images %d and %d share seed %d", prev, i, s)
		}
		seen[s] = i
	}
	if ImageSeed(42, 0) == ImageSeed(43, 0) {
		t.Fatal("base seed does not discriminate")
	}
}

// TestEvaluateParallelSpeedup is the wall-clock bar: at 4 workers the
// evaluation pass must run ≥3× faster than serial on a ≥4-core
// machine (the images are independent, so near-linear scaling is
// expected). Timing tests are skipped in -short and on small hosts.
func TestEvaluateParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test skipped in -short mode")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("need ≥4 CPUs for a CPU-bound speedup, have %d", runtime.GOMAXPROCS(0))
	}
	cfg := DefaultConfig()
	cfg.NExc, cfg.NInh = 40, 40
	cfg.Steps = 150
	n, err := NewDiehlCook(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := n.Params()
	images := mnist.Synthetic(256, 3)
	assignments := make([]int, cfg.NExc)
	for j := range assignments {
		assignments[j] = j % 10
	}
	measure := func(workers int) time.Duration {
		start := time.Now()
		if _, err := EvaluateParallel(p, images, assignments, EvalOptions{Workers: workers, Seed: 42}); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	measure(4) // warm the pool and caches
	serial := measure(1)
	parallel := measure(4)
	if float64(serial)/float64(parallel) < 3 {
		t.Fatalf("4 workers took %v, serial took %v — want ≥3× speedup", parallel, serial)
	}
}

// TestTrainMinibatchParallelSpeedup is the learning pass's wall-clock
// bar: with Batch 8 on a ≥4-core machine, 4 workers must train ≥1.5×
// faster than the same minibatch protocol at width 1 (presentations
// within a batch are independent; the serial fraction is the per-batch
// sync + merge). Results are bit-identical either way
// (TestTrainWorkerCountInvariant); this only times them. Skipped in
// -short and on small hosts, like the other tiers' speedup tests.
func TestTrainMinibatchParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test skipped in -short mode")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("need ≥4 CPUs for a CPU-bound speedup, have %d", runtime.GOMAXPROCS(0))
	}
	cfg := DefaultConfig()
	cfg.NExc, cfg.NInh = 40, 40
	cfg.Steps = 150
	images := mnist.Synthetic(128, 3)
	measure := func(workers int) time.Duration {
		n, err := NewDiehlCook(cfg)
		if err != nil {
			t.Fatal(err)
		}
		enc := encoding.NewPoissonEncoder(42)
		start := time.Now()
		if _, err := TrainWith(n, images, enc, TrainOptions{Batch: 8, Workers: workers}); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	measure(4) // warm pools and decay tables
	serial := measure(1)
	parallel := measure(4)
	if float64(serial)/float64(parallel) < 1.5 {
		t.Fatalf("4 workers took %v, width 1 took %v — want ≥1.5× speedup", parallel, serial)
	}
}

// TestReseedReproducesStream: in-place reseeding replays exactly the
// stream a fresh encoder with that seed would produce (the engine
// reseeds one pooled encoder per image), and Seed tracks the reseed
// for the per-image derivation.
func TestReseedReproducesStream(t *testing.T) {
	images := mnist.Synthetic(1, 3)
	fresh := encoding.NewPoissonEncoder(77)
	fresh.Begin(&images[0])
	reused := encoding.NewPoissonEncoder(5)
	reused.Begin(&images[0])
	for step := 0; step < 10; step++ {
		reused.EncodeStep()
	}
	reused.Reseed(77)
	if reused.Seed() != 77 {
		t.Fatalf("Seed() = %d after Reseed(77)", reused.Seed())
	}
	reused.Begin(&images[0])
	for step := 0; step < 50; step++ {
		a, b := fresh.EncodeStep(), reused.EncodeStep()
		if len(a) != len(b) {
			t.Fatalf("step %d: %d vs %d spikes", step, len(a), len(b))
		}
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("step %d: spike %d differs", step, k)
			}
		}
	}
}
