package snn

// Intra-cell parallel inference engine (see DESIGN.md "Intra-cell
// inference engine").
//
// Training mutates a DiehlCook in place and is inherently serial — each
// presentation's STDP depends on the weights the previous one left
// behind. The read-only phases are not: the label-assignment pass after
// training and every Evaluate present images against *frozen*
// parameters, so images can run concurrently once two things hold:
//
//  1. Workers share parameters without sharing mutable state. Params is
//     the immutable view of a trained network (weights by reference,
//     effective thresholds and gains by copy); State is the cheap
//     per-worker scratch (membranes, refractory counters, drive and
//     spike buffers, a spike-count accumulator).
//  2. Each image's spike train depends only on the image, not on the
//     encoder position a serial loop happened to reach. Image i is
//     encoded from ImageSeed(base, i) — runner.DeriveSeed over the
//     cell's base seed and the image index — by parallel AND serial
//     paths alike, which is what makes counts and accuracy
//     bit-identical at any worker count.
//
// Frozen means frozen: a learn=false presentation updates no network
// parameter at all. In particular the adaptive thresholds theta do not
// accumulate or decay during inference (they are folded into
// Params.EffThresh once), matching BindsNET's learning-gated theta
// update — the previous serial Evaluate let theta drift across
// evaluation images, coupling image i's result to images < i.
//
// States and their encoders are recycled through a package-level
// sync.Pool across passes and campaign cells, so a full scenario
// matrix stays allocation-flat in its read-only phases.

import (
	"fmt"
	"runtime"
	"sync"

	"snnfi/internal/encoding"
	"snnfi/internal/mnist"
	"snnfi/internal/obs"
	"snnfi/internal/runner"
	"snnfi/internal/tensor"
)

// ImageSeed derives the presentation seed of image i from a cell's
// base encoder seed. Every presentation site — serial or parallel,
// training or inference — encodes image i from this seed, so a spike
// train depends only on (base, i), never on presentation order.
func ImageSeed(base int64, i int) int64 {
	return runner.DeriveSeed(base, "image", i)
}

// GroupParams is the frozen per-layer view: static LIF constants plus
// the per-neuron effective threshold and input gain with the adaptive
// threshold and fault hooks folded in.
type GroupParams struct {
	N      int
	Rest   float64
	Reset  float64
	Refrac int
	decay  float64

	// EffThresh[i] = (Thresh + Theta[i]) · ThreshScale[i], the firing
	// threshold inference compares against (LIFGroup.EffectiveThreshold
	// at freeze time).
	EffThresh tensor.Vector
	// Gain[i] multiplies neuron i's synaptic drive (the driver fault
	// hook, frozen).
	Gain tensor.Vector

	// restSafe: no neuron can fire from rest (EffThresh[i] > Rest for
	// all i), enabling the idle skip in the undriven step — the same
	// fast path LIFGroup.Step uses, valid for the same reason.
	restSafe bool
}

// freezeGroup snapshots a layer.
func freezeGroup(g *LIFGroup) GroupParams {
	cfg := g.Cfg
	gp := GroupParams{
		N: cfg.N, Rest: cfg.Rest, Reset: cfg.Reset, Refrac: cfg.Refrac,
		decay:     g.decay,
		EffThresh: tensor.NewVector(cfg.N),
		Gain:      g.InputGain.Copy(),
		restSafe:  true,
	}
	for i := 0; i < cfg.N; i++ {
		gp.EffThresh[i] = g.EffectiveThreshold(i)
		if gp.EffThresh[i] <= cfg.Rest {
			gp.restSafe = false
		}
	}
	return gp
}

// step advances one layer one timestep against per-worker state. It is
// the learn=false image of LIFGroup.Step with theta and traces frozen:
// same decay arithmetic, same refractory gating, same reset semantics,
// with the threshold comparison against the precomputed EffThresh. A
// nil drive takes the idle fast path (bit-identical to a zero drive).
func (g *GroupParams) step(v tensor.Vector, refrac []int, drive tensor.Vector, scratch []int) []int {
	scratch = scratch[:0]
	rest := g.Rest
	eff := g.EffThresh[:len(v)]

	if drive != nil {
		gain := g.Gain[:len(v)]
		drive = drive[:len(v)]
		// Same two-phase shape as LIFGroup.Step: a 4-wide membrane decay
		// pass, then the branchy refractory/drive/spike pass reading the
		// decayed potentials — bit-identical to the fused loop.
		v.DecayToward(rest, g.decay)
		for i := range v {
			if refrac[i] > 0 {
				refrac[i]--
				continue
			}
			x := v[i] + drive[i]*gain[i]
			if x >= eff[i] {
				scratch = append(scratch, i)
				x = g.Reset
				refrac[i] = g.Refrac
			}
			v[i] = x
		}
		return scratch
	}

	idleSkip := g.restSafe
	for i := range v {
		x := v[i]
		if idleSkip && x == rest && refrac[i] == 0 {
			continue
		}
		if x != rest {
			x = rest + (x-rest)*g.decay
		}
		if refrac[i] > 0 {
			refrac[i]--
			v[i] = x
			continue
		}
		if x >= eff[i] {
			scratch = append(scratch, i)
			x = g.Reset
			refrac[i] = g.Refrac
		}
		v[i] = x
	}
	return scratch
}

// Params is the immutable, shareable view of a trained DiehlCook
// network: any number of evaluation workers may present images against
// one Params concurrently, each with its own State. The weight matrix
// is shared by reference (inference never writes it); thresholds,
// gains and the drive scale are copied at freeze time, so reverting a
// fault plan after training does not retroactively change the view.
type Params struct {
	Cfg DiehlCookConfig

	// W is the trained input→exc weight matrix, shared read-only.
	W *tensor.Matrix

	// InputDriveScale is the frozen global driver corruption knob.
	InputDriveScale float64

	Exc GroupParams
	Inh GroupParams
}

// Params freezes the network's current parameters into a shareable
// inference view. The caller must not mutate the network's weights
// while the view is in use (layer hooks and theta may change freely —
// they were copied).
func (n *DiehlCook) Params() *Params {
	return &Params{
		Cfg:             n.Cfg,
		W:               n.W,
		InputDriveScale: n.InputDriveScale,
		Exc:             freezeGroup(n.Exc),
		Inh:             freezeGroup(n.Inh),
	}
}

// State is one evaluation worker's mutable scratch: everything a
// presentation touches that is not a parameter. States are cheap
// (a few vectors over the layer sizes), fully reset per image, and
// recycled through the package workspace pool.
type State struct {
	vExc, vInh           tensor.Vector
	refracExc, refracInh []int
	driveExc, driveInh   tensor.Vector
	prevExc, prevInh     []int
	spikeExc, spikeInh   []int
	counts               tensor.Vector
	enc                  *encoding.PoissonEncoder
}

// NewState allocates a worker state sized for p. Most callers should
// use the pooled acquire/release pair instead; NewState is the
// always-fresh path (and what the pool falls back to).
func (p *Params) NewState() *State {
	st := &State{enc: encoding.NewPoissonEncoder(0)}
	st.fit(p)
	return st
}

// fit (re)sizes the state for p, reusing slice capacity from previous
// configurations so pooled states migrate between cells without
// reallocating.
func (st *State) fit(p *Params) {
	st.vExc = resizeVec(st.vExc, p.Exc.N)
	st.vInh = resizeVec(st.vInh, p.Inh.N)
	st.driveExc = resizeVec(st.driveExc, p.Exc.N)
	st.driveInh = resizeVec(st.driveInh, p.Inh.N)
	st.counts = resizeVec(st.counts, p.Exc.N)
	st.refracExc = resizeInts(st.refracExc, p.Exc.N)
	st.refracInh = resizeInts(st.refracInh, p.Inh.N)
	if st.enc == nil {
		st.enc = encoding.NewPoissonEncoder(0)
	}
}

func resizeVec(v tensor.Vector, n int) tensor.Vector {
	if cap(v) < n {
		return tensor.NewVector(n)
	}
	return v[:n]
}

func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// reset clears all per-image dynamics, leaving no trace of whatever
// presentation — against whatever network — the state last served.
func (st *State) reset(p *Params) {
	st.vExc.Fill(p.Exc.Rest)
	st.vInh.Fill(p.Inh.Rest)
	for i := range st.refracExc {
		st.refracExc[i] = 0
	}
	for i := range st.refracInh {
		st.refracInh[i] = 0
	}
	st.prevExc = st.prevExc[:0]
	st.prevInh = st.prevInh[:0]
}

// workspacePool recycles States (with their embedded encoder
// workspaces) across evaluation passes and campaign cells. sync.Pool
// may drop entries under GC pressure — correctness never depends on a
// hit, only allocation volume does.
var workspacePool sync.Pool

// acquireState returns a ready state for p with its encoder configured
// (maxRate/dt of 0 select the encoder defaults, 128 Hz / 1 ms).
func acquireState(p *Params, maxRate, dt float64) *State {
	st, _ := workspacePool.Get().(*State)
	if st == nil {
		st = p.NewState()
	} else {
		st.fit(p)
	}
	if maxRate == 0 {
		maxRate = 128
	}
	if dt == 0 {
		dt = 1
	}
	st.enc.MaxRate, st.enc.Dt = maxRate, dt
	return st
}

func releaseState(st *State) { workspacePool.Put(st) }

// step advances the frozen network one timestep: feedforward drive
// plus delayed lateral inhibition onto the excitatory layer, delayed
// one-to-one excitation onto the inhibitory layer — the exact
// DiehlCook.Step dataflow minus plasticity and adaptation.
func (p *Params) step(st *State, inputSpikes []int) []int {
	if s := p.InputDriveScale; s != 1 {
		p.W.SumRowsScaled(inputSpikes, s, st.driveExc)
	} else {
		p.W.SumRows(inputSpikes, st.driveExc)
	}
	if k := len(st.prevInh); k > 0 {
		sub := float64(k) * p.Cfg.WInhExc
		d := st.driveExc
		for i := range d {
			d[i] -= sub
		}
		for _, j := range st.prevInh {
			d[j] += p.Cfg.WInhExc
		}
	}
	st.spikeExc = p.Exc.step(st.vExc, st.refracExc, st.driveExc, st.spikeExc)

	if len(st.prevExc) > 0 {
		st.driveInh.Zero()
		for _, j := range st.prevExc {
			st.driveInh[j] += p.Cfg.WExcInh
		}
		st.spikeInh = p.Inh.step(st.vInh, st.refracInh, st.driveInh, st.spikeInh)
	} else {
		st.spikeInh = p.Inh.step(st.vInh, st.refracInh, nil, st.spikeInh)
	}

	st.prevExc = append(st.prevExc[:0], st.spikeExc...)
	st.prevInh = append(st.prevInh[:0], st.spikeInh...)
	return st.spikeExc
}

// presentImage runs one full presentation (Steps driven + RestSteps
// quiet) of img under seed and returns st.counts, the per-neuron
// excitatory spike counts. The returned vector is st's accumulator —
// copy it to retain past the next presentation. Steady-state the call
// allocates nothing.
func (p *Params) presentImage(st *State, img *mnist.Image, seed int64) tensor.Vector {
	st.reset(p)
	st.enc.Reseed(seed)
	st.enc.Begin(img)
	st.counts.Zero()
	for t := 0; t < p.Cfg.Steps; t++ {
		for _, j := range p.step(st, st.enc.EncodeStep()) {
			st.counts[j]++
		}
	}
	for t := 0; t < p.Cfg.RestSteps; t++ {
		for _, j := range p.step(st, nil) {
			st.counts[j]++
		}
	}
	return st.counts
}

// EvalOptions configures a read-only presentation pass.
type EvalOptions struct {
	// Workers is the evaluation pool width; ≤0 uses all CPUs. Results
	// are bit-identical at every width.
	Workers int
	// Seed is the cell's base encoder seed; image i is presented from
	// ImageSeed(Seed, i).
	Seed int64
	// MaxRate and Dt configure the Poisson encoding; zero values select
	// the experiment defaults (128 Hz, 1 ms).
	MaxRate float64
	Dt      float64
	// Obs, when non-nil, receives the evaluation pool's telemetry under
	// "snn.eval.*" (per-shard run/wait histograms, job counters,
	// utilization). Purely observational: results are bit-identical
	// with or without it.
	Obs *obs.Registry
}

// evalShard is how many consecutive images one pool job presents. The
// shard size trades scheduling overhead against load balance; it does
// not affect results (each image is independently seeded).
const evalShard = 8

// shardJobs builds one runner job per contiguous image shard. run is
// called with a ready workspace, an image index and that image's
// presentation seed, and returns the image's contribution to the
// shard result. Seeds are derived once up front — DeriveSeed reflects
// over its discriminators, and hoisting it keeps the per-image loop
// allocation-free.
func shardJobs[T any](p *Params, images []mnist.Image, opt EvalOptions, run func(st *State, i int, seed int64) T) []runner.Job[[]T] {
	seeds := make([]int64, len(images))
	for i := range seeds {
		seeds[i] = ImageSeed(opt.Seed, i)
	}
	jobs := make([]runner.Job[[]T], 0, (len(images)+evalShard-1)/evalShard)
	for lo := 0; lo < len(images); lo += evalShard {
		lo, hi := lo, min(lo+evalShard, len(images))
		jobs = append(jobs, runner.Job[[]T]{
			Label: fmt.Sprintf("images[%d:%d]", lo, hi),
			Run: func() ([]T, error) {
				st := acquireState(p, opt.MaxRate, opt.Dt)
				defer releaseState(st)
				out := make([]T, hi-lo)
				for i := lo; i < hi; i++ {
					out[i-lo] = run(st, i, seeds[i])
				}
				return out, nil
			},
		})
	}
	return jobs
}

// runShards executes the shard jobs and flattens results back into
// image order.
func runShards[T any](opt EvalOptions, jobs []runner.Job[[]T], total int) ([]T, error) {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	pool := &runner.Pool[[]T]{Workers: workers, Obs: opt.Obs, Name: "snn.eval"}
	shards, err := pool.Run(jobs)
	if err != nil {
		return nil, err
	}
	out := make([]T, 0, total)
	for _, s := range shards {
		out = append(out, s...)
	}
	return out, nil
}

// CountsParallel presents every image read-only against p and returns
// the per-image excitatory spike counts, in image order — the parallel
// label-assignment kernel. Counts are bit-identical at any worker
// count (and to the serial path, which is the same kernel at width 1).
func CountsParallel(p *Params, images []mnist.Image, opt EvalOptions) ([]tensor.Vector, error) {
	jobs := shardJobs(p, images, opt, func(st *State, i int, seed int64) tensor.Vector {
		return p.presentImage(st, &images[i], seed).Copy()
	})
	return runShards(opt, jobs, len(images))
}

// EvaluateParallel presents every image read-only against p, classifies
// each with the given neuron→class assignments, and returns the
// fraction classified correctly. Unlike CountsParallel it keeps no
// per-image counts, so a full evaluation pass is allocation-flat.
func EvaluateParallel(p *Params, images []mnist.Image, assignments []int, opt EvalOptions) (float64, error) {
	if len(images) == 0 {
		return 0, fmt.Errorf("snn: no evaluation images")
	}
	jobs := shardJobs(p, images, opt, func(st *State, i int, seed int64) int {
		counts := p.presentImage(st, &images[i], seed)
		if Classify(counts, assignments) == int(images[i].Label) {
			return 1
		}
		return 0
	})
	correct, err := runShards(opt, jobs, len(images))
	if err != nil {
		return 0, err
	}
	total := 0
	for _, c := range correct {
		total += c
	}
	return float64(total) / float64(len(images)), nil
}
