package snn

// Equivalence tests pinning the sparse hot-path engine against the
// dense pre-optimization semantics. The reference implementation below
// reproduces the original update rules verbatim — dense per-step trace
// decay, dense STDP loops with nonzero-trace checks, the column-strided
// At/Set potentiation walk, unconditional LIF decays — and shares only
// the two deliberately reordered computations (the SumRows drive
// accumulation and the O(NExc) lateral inhibition; see EXPERIMENTS.md
// for their calibration record). Everything else must match the engine
// bit for bit: spike trains, weights, traces.
//
// The reference additionally maintains a transposed weight view through
// the tensor transpose-sync kernels, verifying that dual-layout
// STDP/normalization (TransposeInto, NormalizeRows, the scatter
// kernels) tracks the engine's weights exactly.

import (
	"testing"

	"snnfi/internal/encoding"
	"snnfi/internal/mnist"
	"snnfi/internal/tensor"
)

// refLIF is the pre-optimization LIF group loop: unconditional decays,
// no idle skipping, dense drive.
type refLIF struct {
	cfg     LIFConfig
	v       tensor.Vector
	theta   tensor.Vector
	trace   tensor.Vector
	refrac  []int
	tscale  tensor.Vector
	gain    tensor.Vector
	decay   float64
	thDecay float64
	trDecay float64
	scratch []int
}

func newRefLIF(t *testing.T, cfg LIFConfig) *refLIF {
	t.Helper()
	g, err := NewLIFGroup(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &refLIF{
		cfg: cfg, v: g.V.Copy(), theta: g.Theta.Copy(), trace: g.Trace.Copy(),
		refrac: make([]int, cfg.N), tscale: g.ThreshScale.Copy(), gain: g.InputGain.Copy(),
		decay: g.decay, thDecay: g.thetaDecay, trDecay: g.traceDecay,
	}
}

func (g *refLIF) reset() {
	g.v.Fill(g.cfg.Rest)
	g.trace.Zero()
	for i := range g.refrac {
		g.refrac[i] = 0
	}
}

func (g *refLIF) step(drive tensor.Vector) []int {
	cfg := g.cfg
	g.scratch = g.scratch[:0]
	for i := 0; i < cfg.N; i++ {
		g.v[i] = cfg.Rest + (g.v[i]-cfg.Rest)*g.decay
		g.trace[i] *= g.trDecay
		g.theta[i] *= g.thDecay
		if g.refrac[i] > 0 {
			g.refrac[i]--
			continue
		}
		g.v[i] += drive[i] * g.gain[i]
		if g.v[i] >= (cfg.Thresh+g.theta[i])*g.tscale[i] {
			g.scratch = append(g.scratch, i)
			g.v[i] = cfg.Reset
			g.refrac[i] = cfg.Refrac
			g.theta[i] += cfg.ThetaPlus
			g.trace[i] = 1
		}
	}
	return g.scratch
}

// refNet is the dense reference network. w is the input-major weight
// matrix; wt is its transposed view maintained through the tensor
// kernels.
type refNet struct {
	cfg      DiehlCookConfig
	w, wt    *tensor.Matrix
	exc, inh *refLIF
	preTrace tensor.Vector
	driveExc tensor.Vector
	driveInh tensor.Vector
	prevExc  []int
	prevInh  []int
}

func newRefNet(t *testing.T, cfg DiehlCookConfig) *refNet {
	t.Helper()
	// Clone the engine's initial weights so both start bit-identical.
	eng, err := NewDiehlCook(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := &refNet{
		cfg: cfg,
		w:   eng.W.Copy(), wt: tensor.NewMatrix(cfg.NExc, cfg.NInput),
		exc: newRefLIF(t, ExcConfig(cfg.NExc)), inh: newRefLIF(t, InhConfig(cfg.NInh)),
		preTrace: tensor.NewVector(cfg.NInput),
		driveExc: tensor.NewVector(cfg.NExc),
		driveInh: tensor.NewVector(cfg.NInh),
	}
	r.w.TransposeInto(r.wt)
	return r
}

func (r *refNet) normalize() {
	r.w.NormalizeCols(r.cfg.Norm)
	// The transposed layout normalizes by rows; both must stay in sync
	// bit for bit (checked by the test after every image).
	r.wt.NormalizeRows(r.cfg.Norm)
}

func (r *refNet) reset() {
	r.exc.reset()
	r.inh.reset()
	r.preTrace.Zero()
	r.prevExc = r.prevExc[:0]
	r.prevInh = r.prevInh[:0]
}

func (r *refNet) step(inputSpikes []int, learn bool) []int {
	cfg := &r.cfg
	// Shared-order drive accumulation and O(NExc) inhibition — the two
	// reordered summations, identical to the engine's.
	r.w.SumRows(inputSpikes, r.driveExc)
	if k := len(r.prevInh); k > 0 {
		sub := float64(k) * cfg.WInhExc
		for i := range r.driveExc {
			r.driveExc[i] -= sub
		}
		for _, j := range r.prevInh {
			r.driveExc[j] += cfg.WInhExc
		}
	}
	excSpikes := r.exc.step(r.driveExc)

	r.driveInh.Zero()
	for _, j := range r.prevExc {
		r.driveInh[j] += cfg.WExcInh
	}
	inhSpikes := r.inh.step(r.driveInh)

	// Dense pre-optimization STDP, mirrored into the transposed view.
	if learn {
		for _, i := range inputSpikes {
			row := r.w.Row(i)
			for j, tr := range r.exc.trace {
				if tr == 0 {
					continue
				}
				w := row[j] - cfg.NuPre*tr
				if w < 0 {
					w = 0
				}
				row[j] = w
				r.wt.Set(j, i, w)
			}
		}
		for _, j := range excSpikes {
			for i := 0; i < cfg.NInput; i++ {
				if tr := r.preTrace[i]; tr != 0 {
					w := r.w.At(i, j) + cfg.NuPost*tr
					if w > cfg.WMax {
						w = cfg.WMax
					}
					r.w.Set(i, j, w)
					r.wt.Set(j, i, w)
				}
			}
		}
	}

	// Dense per-step trace decay, then set on spike.
	r.preTrace.Scale(preTraceDecayPerMs)
	for _, i := range inputSpikes {
		r.preTrace[i] = 1
	}

	r.prevExc = append(r.prevExc[:0], excSpikes...)
	r.prevInh = append(r.prevInh[:0], inhSpikes...)
	return excSpikes
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestEngineMatchesDenseReference drives the sparse engine and the
// dense reference over identical spike trains and demands bit-identical
// spikes, traces and weights at every step, plus an exactly transposed
// weight view.
func TestEngineMatchesDenseReference(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NExc, cfg.NInh = 25, 25
	cfg.Steps = 100
	cfg.RestSteps = 5

	eng, err := NewDiehlCook(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := newRefNet(t, cfg)
	if !eng.W.Equal(ref.w, 0) {
		t.Fatal("initial weights differ")
	}

	images := mnist.Synthetic(3, 9)
	enc := encoding.NewPoissonEncoder(11)
	totalSpikes := 0
	for imgIdx := range images {
		train := enc.Encode(&images[imgIdx], cfg.Steps)

		eng.NormalizeWeights()
		eng.ResetState()
		ref.normalize()
		ref.reset()

		for st, spikes := range train {
			es := eng.Step(spikes, true)
			rs := ref.step(spikes, true)
			if !sameInts(es, rs) {
				t.Fatalf("img %d step %d: exc spikes diverge: engine %v, reference %v", imgIdx, st, es, rs)
			}
			totalSpikes += len(es)
			// Lazy pre-trace must equal the dense per-step decay.
			for _, i := range spikes {
				if got, want := eng.PreTrace(i), ref.preTrace[i]; got != want {
					t.Fatalf("img %d step %d: pre-trace of pixel %d: engine %g, reference %g", imgIdx, st, i, got, want)
				}
			}
		}
		for st := 0; st < cfg.RestSteps; st++ {
			es := eng.Step(nil, false)
			rs := ref.step(nil, false)
			if !sameInts(es, rs) {
				t.Fatalf("img %d rest step %d: exc spikes diverge: engine %v, reference %v", imgIdx, st, es, rs)
			}
		}

		if !eng.W.Equal(ref.w, 0) {
			t.Fatalf("img %d: weights diverge from dense reference", imgIdx)
		}
		for j := 0; j < cfg.NExc; j++ {
			for i := 0; i < cfg.NInput; i++ {
				if ref.wt.At(j, i) != ref.w.At(i, j) {
					t.Fatalf("img %d: transposed view out of sync at (%d,%d)", imgIdx, j, i)
				}
			}
		}
	}
	if totalSpikes == 0 {
		t.Fatal("equivalence run produced no excitatory spikes; the comparison is vacuous")
	}
}

// TestRunImageStreamMatchesMaterialized pins the streaming encoder path
// against Encode+RunImage: same seed, bit-identical spike counts and
// weights.
func TestRunImageStreamMatchesMaterialized(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NExc, cfg.NInh = 30, 30
	cfg.Steps = 120

	n1, err := NewDiehlCook(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := NewDiehlCook(cfg)
	if err != nil {
		t.Fatal(err)
	}
	images := mnist.Synthetic(4, 3)
	encA := encoding.NewPoissonEncoder(7)
	encB := encoding.NewPoissonEncoder(7)

	for i := range images {
		c1 := n1.RunImage(encA.Encode(&images[i], cfg.Steps), true)
		encB.Begin(&images[i])
		c2 := n2.RunImageStream(encB.EncodeStep, true)
		for j := range c1 {
			if c1[j] != c2[j] {
				t.Fatalf("img %d: spike counts diverge at neuron %d: %g vs %g", i, j, c1[j], c2[j])
			}
		}
	}
	if !n1.W.Equal(n2.W, 0) {
		t.Fatal("weights diverge between materialized and streaming paths")
	}
}
