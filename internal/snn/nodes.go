// Package snn implements the spiking-network substrate the attack
// experiments run on: leaky integrate-and-fire neuron groups with
// Diehl&Cook adaptive thresholds, trace-based STDP, and the 3-layer
// Diehl&Cook topology (input → excitatory → inhibitory) used for MNIST
// digit classification in the paper.
//
// Dynamics follow BindsNET's discretization (the library the paper
// used): exponential membrane decay toward rest, instantaneous synaptic
// injection with one-step delay, hard reset, per-step refractory
// counters, and exponentially decaying pre/post traces.
//
// Fault injection hooks are first-class: every neuron carries a
// threshold scale factor (power attacks modulate the circuit threshold)
// and an input gain (driver corruption modulates the membrane charge
// delivered per input spike).
package snn

import (
	"fmt"
	"math"

	"snnfi/internal/tensor"
)

// LIFConfig parametrizes a leaky integrate-and-fire group.
type LIFConfig struct {
	N int // neuron count

	Rest   float64 // resting potential (mV)
	Reset  float64 // post-spike reset potential (mV)
	Thresh float64 // firing threshold (mV)

	TCDecay float64 // membrane decay time constant (ms)
	Refrac  int     // refractory period (steps)

	// Adaptive threshold (Diehl&Cook excitatory neurons): each spike
	// raises the effective threshold by ThetaPlus; theta decays with
	// time constant ThetaDecayTC (ms; ~1e7 so it is effectively
	// persistent within a run). Zero ThetaPlus disables adaptation.
	ThetaPlus    float64
	ThetaDecayTC float64

	TraceTC float64 // post-synaptic trace time constant (ms)

	Dt float64 // timestep (ms)
}

// Validate reports configuration errors.
func (c LIFConfig) Validate() error {
	if c.N <= 0 {
		return fmt.Errorf("snn: LIF group needs N > 0, got %d", c.N)
	}
	if c.TCDecay <= 0 {
		return fmt.Errorf("snn: TCDecay must be positive, got %g", c.TCDecay)
	}
	if c.Thresh <= c.Rest {
		return fmt.Errorf("snn: Thresh (%g) must exceed Rest (%g)", c.Thresh, c.Rest)
	}
	if c.Dt <= 0 {
		return fmt.Errorf("snn: Dt must be positive, got %g", c.Dt)
	}
	return nil
}

// ExcConfig returns the Diehl&Cook excitatory-layer configuration
// (BindsNET DiehlAndCookNodes defaults).
func ExcConfig(n int) LIFConfig {
	return LIFConfig{
		N: n, Rest: -65, Reset: -60, Thresh: -52,
		TCDecay: 100, Refrac: 5,
		ThetaPlus: 0.1, ThetaDecayTC: 1e7,
		TraceTC: 20, Dt: 1,
	}
}

// InhConfig returns the Diehl&Cook inhibitory-layer configuration
// (BindsNET LIFNodes defaults for the inhibitory population).
func InhConfig(n int) LIFConfig {
	return LIFConfig{
		N: n, Rest: -60, Reset: -45, Thresh: -40,
		TCDecay: 10, Refrac: 2,
		TraceTC: 20, Dt: 1,
	}
}

// LIFGroup is a population of LIF neurons with fault-injection hooks.
type LIFGroup struct {
	Cfg LIFConfig

	V      tensor.Vector // membrane potentials (mV)
	Theta  tensor.Vector // adaptive threshold increments (mV)
	Trace  tensor.Vector // post-synaptic traces
	refrac []int         // remaining refractory steps

	// ThreshScale multiplies each neuron's threshold value (Thresh +
	// Theta, in membrane-voltage coordinates): the power-attack knob,
	// 1 = nominal. This is the paper's BindsNET convention — a "−20%
	// threshold change" multiplies the threshold tensor by 0.8. Because
	// Diehl&Cook thresholds are negative voltages, scaling the value
	// down *raises* the firing threshold relative to rest (the neuron
	// fires less readily), which is what makes the paper's −20% the
	// catastrophic direction for the inhibitory layer (inhibition falls
	// silent and winner-take-all learning collapses).
	ThreshScale tensor.Vector
	// InputGain multiplies each neuron's synaptic drive: the
	// driver-corruption knob. 1 = nominal.
	InputGain tensor.Vector

	decay      float64 // exp(−dt/tc)
	thetaDecay float64
	traceDecay float64

	spikeScratch []int
}

// NewLIFGroup allocates a group at rest with nominal fault hooks.
func NewLIFGroup(cfg LIFConfig) (*LIFGroup, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &LIFGroup{
		Cfg:         cfg,
		V:           tensor.NewVector(cfg.N),
		Theta:       tensor.NewVector(cfg.N),
		Trace:       tensor.NewVector(cfg.N),
		refrac:      make([]int, cfg.N),
		ThreshScale: tensor.NewVector(cfg.N),
		InputGain:   tensor.NewVector(cfg.N),
		decay:       math.Exp(-cfg.Dt / cfg.TCDecay),
	}
	if cfg.ThetaDecayTC > 0 {
		g.thetaDecay = math.Exp(-cfg.Dt / cfg.ThetaDecayTC)
	} else {
		g.thetaDecay = 1
	}
	if cfg.TraceTC > 0 {
		g.traceDecay = math.Exp(-cfg.Dt / cfg.TraceTC)
	} else {
		g.traceDecay = 1
	}
	g.V.Fill(cfg.Rest)
	g.ThreshScale.Fill(1)
	g.InputGain.Fill(1)
	return g, nil
}

// Reset restores membrane state (potentials, refractory counters,
// traces) without touching learned theta or fault hooks — the
// per-image reset of the training loop.
func (g *LIFGroup) Reset() {
	g.V.Fill(g.Cfg.Rest)
	g.Trace.Zero()
	for i := range g.refrac {
		g.refrac[i] = 0
	}
}

// HardReset additionally clears the adaptive thresholds (a fresh,
// untrained group).
func (g *LIFGroup) HardReset() {
	g.Reset()
	g.Theta.Zero()
}

// EffectiveThreshold returns the firing threshold of neuron i with the
// fault hook applied: (Thresh + Theta)·ThreshScale.
func (g *LIFGroup) EffectiveThreshold(i int) float64 {
	return (g.Cfg.Thresh + g.Theta[i]) * g.ThreshScale[i]
}

// Step advances the group one timestep with the given synaptic drive
// (mV per neuron) and returns the indices of neurons that spiked. The
// returned slice is reused across calls; copy it to retain.
func (g *LIFGroup) Step(drive tensor.Vector) []int {
	cfg := g.Cfg
	g.spikeScratch = g.spikeScratch[:0]
	for i := 0; i < cfg.N; i++ {
		// Membrane decay toward rest.
		g.V[i] = cfg.Rest + (g.V[i]-cfg.Rest)*g.decay
		// Trace and theta decay.
		g.Trace[i] *= g.traceDecay
		g.Theta[i] *= g.thetaDecay
		if g.refrac[i] > 0 {
			g.refrac[i]--
			continue
		}
		if drive != nil {
			g.V[i] += drive[i] * g.InputGain[i]
		}
		if g.V[i] >= g.EffectiveThreshold(i) {
			g.spikeScratch = append(g.spikeScratch, i)
			g.V[i] = cfg.Reset
			g.refrac[i] = cfg.Refrac
			g.Theta[i] += cfg.ThetaPlus
			g.Trace[i] = 1
		}
	}
	return g.spikeScratch
}
