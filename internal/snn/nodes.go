// Package snn implements the spiking-network substrate the attack
// experiments run on: leaky integrate-and-fire neuron groups with
// Diehl&Cook adaptive thresholds, trace-based STDP, and the 3-layer
// Diehl&Cook topology (input → excitatory → inhibitory) used for MNIST
// digit classification in the paper.
//
// Dynamics follow BindsNET's discretization (the library the paper
// used): exponential membrane decay toward rest, instantaneous synaptic
// injection with one-step delay, hard reset, per-step refractory
// counters, and exponentially decaying pre/post traces.
//
// Fault injection hooks are first-class: every neuron carries a
// threshold scale factor (power attacks modulate the circuit threshold)
// and an input gain (driver corruption modulates the membrane charge
// delivered per input spike).
package snn

import (
	"fmt"
	"math"

	"snnfi/internal/tensor"
)

// LIFConfig parametrizes a leaky integrate-and-fire group.
type LIFConfig struct {
	N int // neuron count

	Rest   float64 // resting potential (mV)
	Reset  float64 // post-spike reset potential (mV)
	Thresh float64 // firing threshold (mV)

	TCDecay float64 // membrane decay time constant (ms)
	Refrac  int     // refractory period (steps)

	// Adaptive threshold (Diehl&Cook excitatory neurons): each spike
	// raises the effective threshold by ThetaPlus; theta decays with
	// time constant ThetaDecayTC (ms; ~1e7 so it is effectively
	// persistent within a run). Zero ThetaPlus disables adaptation.
	ThetaPlus    float64
	ThetaDecayTC float64

	TraceTC float64 // post-synaptic trace time constant (ms)

	Dt float64 // timestep (ms)
}

// Validate reports configuration errors.
func (c LIFConfig) Validate() error {
	if c.N <= 0 {
		return fmt.Errorf("snn: LIF group needs N > 0, got %d", c.N)
	}
	if c.TCDecay <= 0 {
		return fmt.Errorf("snn: TCDecay must be positive, got %g", c.TCDecay)
	}
	if c.Thresh <= c.Rest {
		return fmt.Errorf("snn: Thresh (%g) must exceed Rest (%g)", c.Thresh, c.Rest)
	}
	if c.Dt <= 0 {
		return fmt.Errorf("snn: Dt must be positive, got %g", c.Dt)
	}
	return nil
}

// ExcConfig returns the Diehl&Cook excitatory-layer configuration
// (BindsNET DiehlAndCookNodes defaults).
func ExcConfig(n int) LIFConfig {
	return LIFConfig{
		N: n, Rest: -65, Reset: -60, Thresh: -52,
		TCDecay: 100, Refrac: 5,
		ThetaPlus: 0.1, ThetaDecayTC: 1e7,
		TraceTC: 20, Dt: 1,
	}
}

// InhConfig returns the Diehl&Cook inhibitory-layer configuration
// (BindsNET LIFNodes defaults for the inhibitory population).
// TraceTC is 0: nothing in the Diehl&Cook rule reads inhibitory
// traces — STDP runs only on input→exc — so they are not simulated
// (trace values have no effect on any spike, weight, or figure).
func InhConfig(n int) LIFConfig {
	return LIFConfig{
		N: n, Rest: -60, Reset: -45, Thresh: -40,
		TCDecay: 10, Refrac: 2,
		TraceTC: 0, Dt: 1,
	}
}

// LIFGroup is a population of LIF neurons with fault-injection hooks.
type LIFGroup struct {
	Cfg LIFConfig

	V      tensor.Vector // membrane potentials (mV)
	Theta  tensor.Vector // adaptive threshold increments (mV)
	Trace  tensor.Vector // post-synaptic traces
	refrac []int         // remaining refractory steps

	// ThreshScale multiplies each neuron's threshold value (Thresh +
	// Theta, in membrane-voltage coordinates): the power-attack knob,
	// 1 = nominal. This is the paper's BindsNET convention — a "−20%
	// threshold change" multiplies the threshold tensor by 0.8. Because
	// Diehl&Cook thresholds are negative voltages, scaling the value
	// down *raises* the firing threshold relative to rest (the neuron
	// fires less readily), which is what makes the paper's −20% the
	// catastrophic direction for the inhibitory layer (inhibition falls
	// silent and winner-take-all learning collapses).
	ThreshScale tensor.Vector
	// InputGain multiplies each neuron's synaptic drive: the
	// driver-corruption knob. 1 = nominal.
	InputGain tensor.Vector

	decay      float64 // exp(−dt/tc)
	thetaDecay float64
	traceDecay float64

	// restSafe, recomputed at each Reset, reports that no neuron can
	// fire from its resting potential whatever its (non-negative,
	// decaying) theta: Thresh·ThreshScale[i] > Rest for all i. It gates
	// the idle fast path in Step — neurons sitting exactly at their
	// fixed point (V at rest, zero trace/theta, no refractory count)
	// are skipped when there is no drive, which is bit-identical to
	// running their update (every decay is a no-op and no spike is
	// possible). ThreshScale changes take effect at the next Reset.
	restSafe bool

	spikeScratch []int

	// Sparse trace support: the neurons with nonzero Trace, in
	// first-spike order (a trace becomes nonzero only by spiking and
	// returns to zero only at Reset). The per-step trace decay walks
	// this list instead of the dense vector — bit-identical, since
	// decaying a zero trace is a no-op.
	traceActive []int
	traceSeen   []bool
}

// NewLIFGroup allocates a group at rest with nominal fault hooks.
func NewLIFGroup(cfg LIFConfig) (*LIFGroup, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &LIFGroup{
		Cfg:         cfg,
		V:           tensor.NewVector(cfg.N),
		Theta:       tensor.NewVector(cfg.N),
		Trace:       tensor.NewVector(cfg.N),
		refrac:      make([]int, cfg.N),
		ThreshScale: tensor.NewVector(cfg.N),
		InputGain:   tensor.NewVector(cfg.N),
		decay:       math.Exp(-cfg.Dt / cfg.TCDecay),
		traceSeen:   make([]bool, cfg.N),
	}
	if cfg.ThetaDecayTC > 0 {
		g.thetaDecay = math.Exp(-cfg.Dt / cfg.ThetaDecayTC)
	} else {
		g.thetaDecay = 1
	}
	if cfg.TraceTC > 0 {
		g.traceDecay = math.Exp(-cfg.Dt / cfg.TraceTC)
	} else {
		g.traceDecay = 1
	}
	g.V.Fill(cfg.Rest)
	g.ThreshScale.Fill(1)
	g.InputGain.Fill(1)
	g.restSafe = true // nominal hooks: Thresh > Rest is validated
	return g, nil
}

// Reset restores membrane state (potentials, refractory counters,
// traces) without touching learned theta or fault hooks — the
// per-image reset of the training loop.
func (g *LIFGroup) Reset() {
	g.V.Fill(g.Cfg.Rest)
	g.Trace.Zero()
	for _, i := range g.traceActive {
		g.traceSeen[i] = false
	}
	g.traceActive = g.traceActive[:0]
	for i := range g.refrac {
		g.refrac[i] = 0
	}
	g.restSafe = true
	for _, s := range g.ThreshScale {
		if g.Cfg.Thresh*s <= g.Cfg.Rest {
			g.restSafe = false
			break
		}
	}
}

// HardReset additionally clears the adaptive thresholds (a fresh,
// untrained group).
func (g *LIFGroup) HardReset() {
	g.Reset()
	g.Theta.Zero()
}

// EffectiveThreshold returns the firing threshold of neuron i with the
// fault hook applied: (Thresh + Theta)·ThreshScale.
func (g *LIFGroup) EffectiveThreshold(i int) float64 {
	return (g.Cfg.Thresh + g.Theta[i]) * g.ThreshScale[i]
}

// Step advances the group one timestep with the given synaptic drive
// (mV per neuron) and returns the indices of neurons that spiked. The
// returned slice is reused across calls; copy it to retain.
// A nil drive means "no synaptic input this step" and skips the dense
// drive pass — bit-identical to passing a zero vector.
//
// The driven loop is branch-light: decays run unconditionally (they are
// no-ops at the fixed point: rest + 0·decay = rest, 0·decay = 0), which
// avoids data-dependent branches over a mixed active/idle population.
// The undriven loop instead skips fully idle neurons (V at rest, zero
// trace and theta, no refractory count) outright — valid while restSafe
// holds, because such a neuron's update is the identity and it cannot
// reach threshold. Both forms compute bit-identical state.
func (g *LIFGroup) Step(drive tensor.Vector) []int {
	cfg := &g.Cfg
	g.spikeScratch = g.spikeScratch[:0]
	rest, thresh := cfg.Rest, cfg.Thresh
	V := g.V
	trace, theta := g.Trace[:len(V)], g.Theta[:len(V)]
	refrac := g.refrac[:len(V)]
	tscale := g.ThreshScale[:len(V)]

	// Trace decay walks the sparse nonzero support (bit-identical to the
	// dense pass: zero traces decay to zero), and decays that are the
	// identity multiplication (decay constant exactly 1 — e.g. the
	// inhibitory layer's disabled traces and theta) are skipped outright,
	// which is bit-identical since x·1 == x for every float.
	if g.traceDecay != 1 {
		trace.ScatterScale(g.traceActive, g.traceDecay)
	}

	if drive != nil {
		gain := g.InputGain[:len(V)]
		drive = drive[:len(V)]
		// Phase 1 — width-batched membrane decay. Each decay touches one
		// element independently, so hoisting it out of the per-neuron
		// branch logic into a 4-wide vector pass is bit-identical to the
		// fused loop (the spike phase below overwrites exactly the
		// elements the fused loop overwrote, reading the same decayed
		// values).
		V.DecayToward(rest, g.decay)
		// Phase 2 — branchy scalar pass: theta decay (fused here rather
		// than run as a separate dense pass — the same multiply on the
		// same element before any use of theta[i], so bit-identical),
		// refractory gating, drive injection, threshold test, spike
		// bookkeeping.
		thetaDecay := g.thetaDecay
		if thetaDecay != 1 {
			for i := range V {
				th := theta[i] * thetaDecay
				theta[i] = th
				if refrac[i] > 0 {
					refrac[i]--
					continue
				}
				v := V[i] + drive[i]*gain[i]
				if v >= (thresh+th)*tscale[i] {
					g.spikeScratch = append(g.spikeScratch, i)
					v = cfg.Reset
					refrac[i] = cfg.Refrac
					theta[i] = th + cfg.ThetaPlus
					g.setTrace(i)
				}
				V[i] = v
			}
			return g.spikeScratch
		}
		for i := range V {
			if refrac[i] > 0 {
				refrac[i]--
				continue
			}
			v := V[i] + drive[i]*gain[i]
			if v >= (thresh+theta[i])*tscale[i] {
				g.spikeScratch = append(g.spikeScratch, i)
				v = cfg.Reset
				refrac[i] = cfg.Refrac
				theta[i] += cfg.ThetaPlus
				g.setTrace(i)
			}
			V[i] = v
		}
		return g.spikeScratch
	}

	idleSkip := g.restSafe
	for i := range V {
		v := V[i]
		th := theta[i]
		if idleSkip && v == rest && th == 0 && refrac[i] == 0 {
			continue
		}
		if v != rest {
			v = rest + (v-rest)*g.decay
		}
		if th != 0 && g.thetaDecay != 1 {
			th *= g.thetaDecay
			theta[i] = th
		}
		if refrac[i] > 0 {
			refrac[i]--
			V[i] = v
			continue
		}
		if v >= (thresh+th)*tscale[i] {
			g.spikeScratch = append(g.spikeScratch, i)
			v = cfg.Reset
			refrac[i] = cfg.Refrac
			theta[i] = th + cfg.ThetaPlus
			g.setTrace(i)
		}
		V[i] = v
	}
	return g.spikeScratch
}

// setTrace records neuron i's spike in its trace (set to 1) and adds it
// to the sparse nonzero-trace support.
func (g *LIFGroup) setTrace(i int) {
	g.Trace[i] = 1
	if !g.traceSeen[i] {
		g.traceSeen[i] = true
		g.traceActive = append(g.traceActive, i)
	}
}
