package snn

import (
	"fmt"
	"math/rand"

	"snnfi/internal/tensor"
)

// DiehlCookConfig parametrizes the 3-layer Diehl&Cook network the paper
// attacks (Fig. 7a): Poisson input all-to-all onto an excitatory layer
// with STDP, excitatory 1-to-1 onto an inhibitory layer, and inhibitory
// all-to-all-but-self back onto the excitatory layer.
type DiehlCookConfig struct {
	NInput int // input dimensionality (784 for 28×28 digits)
	NExc   int // excitatory neurons (paper: 100)
	NInh   int // inhibitory neurons (paper: 100, equal to NExc)

	WMax    float64 // input→exc weight ceiling (BindsNET: 1.0)
	Norm    float64 // per-column weight normalization target (78.4)
	NuPre   float64 // pre-synaptic STDP rate (paper: 0.0004)
	NuPost  float64 // post-synaptic STDP rate (paper: 0.0002)
	WExcInh float64 // exc→inh one-to-one weight (22.5)
	WInhExc float64 // inh→exc lateral inhibition magnitude (120)

	Steps     int // stimulus presentation steps per image (ms at dt=1)
	RestSteps int // quiet steps after each image

	Seed int64 // weight-initialization seed
}

// DefaultConfig returns the experimental configuration: 100 excitatory
// + 100 inhibitory neurons, 250 ms presentations, BindsNET eth_mnist
// constants for the fixed weights.
//
// Learning rates follow BindsNET's library defaults nu = (1e-4, 1e-2)
// rather than the 0.0004/0.0002 quoted in the paper's text: under our
// discretization the quoted rates cannot bootstrap neuron
// specialization (winners rotate uniformly and never imprint), while
// the library defaults reproduce the paper's ~76% baseline. See
// EXPERIMENTS.md for the calibration record.
func DefaultConfig() DiehlCookConfig {
	return DiehlCookConfig{
		NInput: 784, NExc: 100, NInh: 100,
		WMax: 1.0, Norm: 78.4,
		NuPre: 0.0001, NuPost: 0.01,
		WExcInh: 22.5, WInhExc: 120,
		Steps: 250, RestSteps: 0,
		Seed: 1,
	}
}

// Validate reports configuration errors.
func (c DiehlCookConfig) Validate() error {
	if c.NInput <= 0 || c.NExc <= 0 || c.NInh <= 0 {
		return fmt.Errorf("snn: layer sizes must be positive: %d/%d/%d", c.NInput, c.NExc, c.NInh)
	}
	if c.NInh != c.NExc {
		return fmt.Errorf("snn: Diehl&Cook needs NInh == NExc (1-to-1 coupling), got %d != %d", c.NInh, c.NExc)
	}
	if c.Steps <= 0 {
		return fmt.Errorf("snn: Steps must be positive, got %d", c.Steps)
	}
	if c.WMax <= 0 || c.Norm <= 0 {
		return fmt.Errorf("snn: WMax and Norm must be positive")
	}
	return nil
}

// DiehlCook is the trainable network with fault-injection hooks exposed
// through its layers and the InputDriveScale knob.
type DiehlCook struct {
	Cfg DiehlCookConfig

	W   *tensor.Matrix // input→exc weights, NInput×NExc, STDP-plastic
	Exc *LIFGroup
	Inh *LIFGroup

	// InputDriveScale multiplies the input→exc drive per input spike —
	// the network-level image of driver spike-amplitude corruption
	// (Attack 1 / the driver component of Attack 5). Per-neuron
	// granularity lives in Exc.InputGain; this is the global knob.
	InputDriveScale float64

	preTrace tensor.Vector // input (pre-synaptic) traces

	// scratch
	driveExc tensor.Vector
	driveInh tensor.Vector
	prevExc  []int
	prevInh  []int
}

// NewDiehlCook builds a network with uniform random initial weights.
func NewDiehlCook(cfg DiehlCookConfig) (*DiehlCook, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	exc, err := NewLIFGroup(ExcConfig(cfg.NExc))
	if err != nil {
		return nil, err
	}
	inh, err := NewLIFGroup(InhConfig(cfg.NInh))
	if err != nil {
		return nil, err
	}
	n := &DiehlCook{
		Cfg:             cfg,
		W:               tensor.NewMatrix(cfg.NInput, cfg.NExc),
		Exc:             exc,
		Inh:             inh,
		InputDriveScale: 1,
		preTrace:        tensor.NewVector(cfg.NInput),
		driveExc:        tensor.NewVector(cfg.NExc),
		driveInh:        tensor.NewVector(cfg.NInh),
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n.W.RandFill(rng, 0, 0.3)
	n.NormalizeWeights()
	return n, nil
}

// NormalizeWeights rescales each excitatory neuron's afferent weights
// to sum to Cfg.Norm (Diehl&Cook homeostasis, applied once per sample).
func (n *DiehlCook) NormalizeWeights() { n.W.NormalizeCols(n.Cfg.Norm) }

// ResetState clears per-image dynamic state (membranes, traces,
// pending spikes) while keeping weights, theta, and fault hooks.
func (n *DiehlCook) ResetState() {
	n.Exc.Reset()
	n.Inh.Reset()
	n.preTrace.Zero()
	n.prevExc = n.prevExc[:0]
	n.prevInh = n.prevInh[:0]
}

// preTraceDecay is exp(−dt/20ms), matching the exc trace constant.
const preTraceDecayPerMs = 0.951229424500714 // exp(-1/20)

// Step advances the network one timestep given the indices of input
// pixels that spiked. When learn is true the input→exc weights are
// updated with the post-pre STDP rule. It returns the excitatory spike
// indices (valid until the next call).
func (n *DiehlCook) Step(inputSpikes []int, learn bool) []int {
	cfg := &n.Cfg

	// 1. Synaptic drive onto the excitatory layer: feedforward input
	// spikes (this step) plus lateral inhibition from last step's
	// inhibitory spikes (one-step synaptic delay, as in BindsNET).
	n.driveExc.Zero()
	n.W.AccumulateRows(inputSpikes, n.driveExc)
	if n.InputDriveScale != 1 {
		n.driveExc.Scale(n.InputDriveScale)
	}
	for _, j := range n.prevInh {
		for k := 0; k < cfg.NExc; k++ {
			if k != j {
				n.driveExc[k] -= cfg.WInhExc
			}
		}
	}

	// 2. Excitatory layer step.
	excSpikes := n.Exc.Step(n.driveExc)

	// 3. Inhibitory layer driven 1-to-1 by excitatory spikes from the
	// previous step.
	n.driveInh.Zero()
	for _, j := range n.prevExc {
		n.driveInh[j] += cfg.WExcInh
	}
	inhSpikes := n.Inh.Step(n.driveInh)

	// 4. STDP on input→exc (post-pre rule): a pre spike depresses by the
	// post trace; a post spike potentiates by the pre trace.
	if learn {
		for _, i := range inputSpikes {
			row := n.W.Row(i)
			for j, tr := range n.Exc.Trace {
				if tr == 0 {
					continue
				}
				w := row[j] - cfg.NuPre*tr
				if w < 0 {
					w = 0
				}
				row[j] = w
			}
		}
		for _, j := range excSpikes {
			for i := 0; i < cfg.NInput; i++ {
				if tr := n.preTrace[i]; tr != 0 {
					w := n.W.At(i, j) + cfg.NuPost*tr
					if w > cfg.WMax {
						w = cfg.WMax
					}
					n.W.Set(i, j, w)
				}
			}
		}
	}

	// 5. Pre-synaptic trace update (decay, then set on spike).
	n.preTrace.Scale(preTraceDecayPerMs)
	for _, i := range inputSpikes {
		n.preTrace[i] = 1
	}

	// 6. Remember this step's spikes for next step's delayed synapses.
	n.prevExc = append(n.prevExc[:0], excSpikes...)
	n.prevInh = append(n.prevInh[:0], inhSpikes...)
	return excSpikes
}

// RunImage presents one encoded spike train (from encoding.Encode),
// resetting state first, and returns the per-neuron excitatory spike
// counts. Weight normalization runs before the presentation when
// learning, as in the BindsNET training loop.
func (n *DiehlCook) RunImage(train [][]int, learn bool) tensor.Vector {
	if learn {
		n.NormalizeWeights()
	}
	n.ResetState()
	counts := tensor.NewVector(n.Cfg.NExc)
	for _, step := range train {
		for _, j := range n.Step(step, learn) {
			counts[j]++
		}
	}
	for t := 0; t < n.Cfg.RestSteps; t++ {
		for _, j := range n.Step(nil, false) {
			counts[j]++
		}
	}
	return counts
}
