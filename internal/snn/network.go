package snn

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"snnfi/internal/tensor"
)

// DiehlCookConfig parametrizes the 3-layer Diehl&Cook network the paper
// attacks (Fig. 7a): Poisson input all-to-all onto an excitatory layer
// with STDP, excitatory 1-to-1 onto an inhibitory layer, and inhibitory
// all-to-all-but-self back onto the excitatory layer.
type DiehlCookConfig struct {
	NInput int // input dimensionality (784 for 28×28 digits)
	NExc   int // excitatory neurons (paper: 100)
	NInh   int // inhibitory neurons (paper: 100, equal to NExc)

	WMax    float64 // input→exc weight ceiling (BindsNET: 1.0)
	Norm    float64 // per-column weight normalization target (78.4)
	NuPre   float64 // pre-synaptic STDP rate (paper: 0.0004)
	NuPost  float64 // post-synaptic STDP rate (paper: 0.0002)
	WExcInh float64 // exc→inh one-to-one weight (22.5)
	WInhExc float64 // inh→exc lateral inhibition magnitude (120)

	Steps     int // stimulus presentation steps per image (ms at dt=1)
	RestSteps int // quiet steps after each image

	Seed int64 // weight-initialization seed
}

// DefaultConfig returns the experimental configuration: 100 excitatory
// + 100 inhibitory neurons, 250 ms presentations, BindsNET eth_mnist
// constants for the fixed weights.
//
// Learning rates follow BindsNET's library defaults nu = (1e-4, 1e-2)
// rather than the 0.0004/0.0002 quoted in the paper's text: under our
// discretization the quoted rates cannot bootstrap neuron
// specialization (winners rotate uniformly and never imprint), while
// the library defaults reproduce the paper's ~76% baseline. See
// EXPERIMENTS.md for the calibration record.
func DefaultConfig() DiehlCookConfig {
	return DiehlCookConfig{
		NInput: 784, NExc: 100, NInh: 100,
		WMax: 1.0, Norm: 78.4,
		NuPre: 0.0001, NuPost: 0.01,
		WExcInh: 22.5, WInhExc: 120,
		Steps: 250, RestSteps: 0,
		Seed: 1,
	}
}

// Validate reports configuration errors.
func (c DiehlCookConfig) Validate() error {
	if c.NInput <= 0 || c.NExc <= 0 || c.NInh <= 0 {
		return fmt.Errorf("snn: layer sizes must be positive: %d/%d/%d", c.NInput, c.NExc, c.NInh)
	}
	if c.NInh != c.NExc {
		return fmt.Errorf("snn: Diehl&Cook needs NInh == NExc (1-to-1 coupling), got %d != %d", c.NInh, c.NExc)
	}
	if c.Steps <= 0 {
		return fmt.Errorf("snn: Steps must be positive, got %d", c.Steps)
	}
	if c.WMax <= 0 || c.Norm <= 0 {
		return fmt.Errorf("snn: WMax and Norm must be positive")
	}
	return nil
}

// DiehlCook is the trainable network with fault-injection hooks exposed
// through its layers and the InputDriveScale knob.
//
// The hot path is built around sparse supports (see DESIGN.md
// "Network-tier hot path"): the per-image sets of pixels and excitatory
// neurons with nonzero STDP traces are tracked as index lists, so the
// plasticity loops and trace updates touch only active synapses instead
// of walking full layers, and the pre-synaptic trace itself is lazily
// evaluated from each pixel's last spike time (bit-identical to the
// dense per-step decay).
type DiehlCook struct {
	Cfg DiehlCookConfig

	W   *tensor.Matrix // input→exc weights, NInput×NExc, STDP-plastic
	Exc *LIFGroup
	Inh *LIFGroup

	// InputDriveScale multiplies the input→exc drive per input spike —
	// the network-level image of driver spike-amplitude corruption
	// (Attack 1 / the driver component of Attack 5). Per-neuron
	// granularity lives in Exc.InputGain; this is the global knob.
	InputDriveScale float64

	// Sparse trace state, reset per image. A pixel's pre-synaptic trace
	// is 1 at its spike step and decays by preTraceDecayPerMs each
	// later step; instead of densely decaying a trace vector every
	// step, the network records each pixel's last spike step and reads
	// the trace as preDecayTable(d)[d] for d steps since — a table
	// built by the same iterated multiplication the dense decay would
	// perform (so values are bit-identical), shared by every network
	// in the process (see preDecayTable). preActive lists the pixels
	// with nonzero trace, in first-spike order; postActive likewise
	// lists excitatory neurons with nonzero post trace (the trace
	// itself lives densely in Exc.Trace — the excitatory support is
	// tiny under winner-take-all dynamics).
	preLastSpike []int
	preSeen      []bool
	preActive    []int
	postActive   []int
	postSeen     []bool
	stepT        int // steps since ResetState

	// Dirty-column tracking for incremental normalization: the weight
	// columns STDP has touched since the last normalization, i.e. the
	// columns that may no longer sum to Cfg.Norm. Every STDP update
	// (depression over postActive, potentiation over excSpikes) lands in
	// a column whose neuron spiked during a learning step of the current
	// or an earlier un-normalized image, and Step marks exactly those
	// columns. NOT maintained across direct writes to W.Data (extension
	// fault hooks) — those callers must use the full NormalizeWeights.
	dirtyCols []int
	dirtySeen []bool

	// scratch
	driveExc tensor.Vector
	driveInh tensor.Vector
	prevExc  []int
	prevInh  []int
}

// NewDiehlCook builds a network with uniform random initial weights.
func NewDiehlCook(cfg DiehlCookConfig) (*DiehlCook, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	exc, err := NewLIFGroup(ExcConfig(cfg.NExc))
	if err != nil {
		return nil, err
	}
	inh, err := NewLIFGroup(InhConfig(cfg.NInh))
	if err != nil {
		return nil, err
	}
	n := &DiehlCook{
		Cfg:             cfg,
		W:               tensor.NewMatrix(cfg.NInput, cfg.NExc),
		Exc:             exc,
		Inh:             inh,
		InputDriveScale: 1,
		preLastSpike:    make([]int, cfg.NInput),
		preSeen:         make([]bool, cfg.NInput),
		postSeen:        make([]bool, cfg.NExc),
		dirtySeen:       make([]bool, cfg.NExc),
		driveExc:        tensor.NewVector(cfg.NExc),
		driveInh:        tensor.NewVector(cfg.NInh),
	}
	preDecayTable(cfg.Steps + cfg.RestSteps) // pre-size for the presentation length
	rng := rand.New(rand.NewSource(cfg.Seed))
	n.W.RandFill(rng, 0, 0.3)
	n.NormalizeWeights()
	return n, nil
}

// The pre-synaptic trace decay table is shared by every network in the
// process: the decay constant is fixed, so decayPow[k] is the same
// value everywhere, and campaign cells training in parallel would
// otherwise each rebuild an identical table. Growth is copy-on-grow
// behind a mutex with atomic publication — readers loaded an old table
// keep a fully valid prefix, so concurrent lookups are race-free and
// never observe a partially built entry.
var (
	preDecayMu  sync.Mutex
	preDecayTab atomic.Pointer[[]float64]
)

// preDecayTable returns a decay table covering at least k steps
// (len > k), built by the same iterated multiplication a densely
// stored trace would undergo (decayPow[k] = decayPow[k-1]·decay,
// starting from 1) so values are bit-identical to dense decay.
func preDecayTable(k int) []float64 {
	if t := preDecayTab.Load(); t != nil && len(*t) > k {
		return *t
	}
	preDecayMu.Lock()
	defer preDecayMu.Unlock()
	old := preDecayTab.Load()
	if old != nil && len(*old) > k {
		return *old
	}
	var prev []float64
	if old != nil {
		prev = *old
	} else {
		prev = []float64{1}
	}
	// Copy into a fresh slice: appending in place could republish
	// memory a concurrent reader is still indexing.
	next := make([]float64, k+1)
	copy(next, prev)
	for i := len(prev); i <= k; i++ {
		next[i] = next[i-1] * preTraceDecayPerMs
	}
	preDecayTab.Store(&next)
	return next
}

// NormalizeWeights rescales each excitatory neuron's afferent weights
// to sum to Cfg.Norm (Diehl&Cook homeostasis, applied once per sample).
// The full-matrix pass is correct regardless of how the weights were
// modified (STDP, fault hooks, direct writes); TrainImageStream uses
// the incremental dirty-column form instead.
func (n *DiehlCook) NormalizeWeights() {
	n.W.NormalizeCols(n.Cfg.Norm)
	n.clearDirty()
}

// normalizeDirty renormalizes only the columns STDP has touched since
// the last normalization. Untouched columns still sum to (almost
// exactly) Cfg.Norm from their previous normalization and are left
// bit-for-bit alone, where a full pass would rescale them by a factor
// within one ulp of 1. This per-column skip is the train-protocol-v3
// normalization contract (see ProtocolVersion).
func (n *DiehlCook) normalizeDirty() {
	n.W.NormalizeColsSubset(n.Cfg.Norm, n.dirtyCols)
	n.clearDirty()
}

func (n *DiehlCook) clearDirty() {
	for _, j := range n.dirtyCols {
		n.dirtySeen[j] = false
	}
	n.dirtyCols = n.dirtyCols[:0]
}

// ResetState clears per-image dynamic state (membranes, traces,
// pending spikes, sparse trace supports) while keeping weights, theta,
// and fault hooks.
func (n *DiehlCook) ResetState() {
	n.Exc.Reset()
	n.Inh.Reset()
	for _, i := range n.preActive {
		n.preSeen[i] = false
	}
	n.preActive = n.preActive[:0]
	for _, j := range n.postActive {
		n.postSeen[j] = false
	}
	n.postActive = n.postActive[:0]
	n.prevExc = n.prevExc[:0]
	n.prevInh = n.prevInh[:0]
	n.stepT = 0
}

// preTraceDecay is exp(−dt/20ms), matching the exc trace constant.
const preTraceDecayPerMs = 0.951229424500714 // exp(-1/20)

// PreTrace returns the current pre-synaptic trace of pixel i: 0 if the
// pixel has not spiked since the last ResetState, else the decayed
// value of the 1 set at its most recent spike.
func (n *DiehlCook) PreTrace(i int) float64 {
	if !n.preSeen[i] {
		return 0
	}
	d := n.stepT - 1 - n.preLastSpike[i]
	return preDecayTable(d)[d]
}

// Step advances the network one timestep given the indices of input
// pixels that spiked. When learn is true the input→exc weights are
// updated with the post-pre STDP rule. It returns the excitatory spike
// indices (valid until the next call).
func (n *DiehlCook) Step(inputSpikes []int, learn bool) []int {
	cfg := &n.Cfg

	// 1. Synaptic drive onto the excitatory layer: feedforward input
	// spikes (this step) plus lateral inhibition from last step's
	// inhibitory spikes (one-step synaptic delay, as in BindsNET).
	if s := n.InputDriveScale; s != 1 {
		n.W.SumRowsScaled(inputSpikes, s, n.driveExc)
	} else {
		n.W.SumRows(inputSpikes, n.driveExc)
	}
	// Lateral inhibition in O(NExc): every neuron loses WInhExc per
	// previous-step inhibitory spike except the spiker's own partner,
	// so subtract the total once and add the self-coupling back. (The
	// summation order differs from the per-spike loop at the ulp level;
	// see the calibration record in EXPERIMENTS.md.)
	if k := len(n.prevInh); k > 0 {
		sub := float64(k) * cfg.WInhExc
		d := n.driveExc
		for i := range d {
			d[i] -= sub
		}
		for _, j := range n.prevInh {
			d[j] += cfg.WInhExc
		}
	}

	// 2. Excitatory layer step. Newly spiked neurons join the sparse
	// post-trace support before the STDP pass reads it (their trace was
	// just set to 1).
	excSpikes := n.Exc.Step(n.driveExc)
	for _, j := range excSpikes {
		if !n.postSeen[j] {
			n.postSeen[j] = true
			n.postActive = append(n.postActive, j)
		}
	}

	// 3. Inhibitory layer driven 1-to-1 by excitatory spikes from the
	// previous step. With no pending spikes the drive is identically
	// zero and the dense pass is skipped. (A sparse-drive merge-walk
	// was tried here and lost: decayed membranes never return exactly
	// to rest, so after the first winner-take-all volley most
	// inhibitory neurons are permanently off the idle fast path and
	// the branchy walk is slower than the 4-wide dense pass.)
	var inhSpikes []int
	if len(n.prevExc) > 0 {
		n.driveInh.Zero()
		for _, j := range n.prevExc {
			n.driveInh[j] += cfg.WExcInh
		}
		inhSpikes = n.Inh.Step(n.driveInh)
	} else {
		inhSpikes = n.Inh.Step(nil)
	}

	// 4. STDP on input→exc (post-pre rule): a pre spike depresses by
	// the post trace; a post spike potentiates by the pre trace. Both
	// loops walk the sparse supports — exactly the synapses whose
	// traces are nonzero — instead of full layers, with arithmetic
	// identical to the dense rule per touched weight. Depression
	// updates each spiked pixel's contiguous weight row; potentiation
	// walks the spiking neuron's column at the active pixels, reading
	// each pre trace from the decay table.
	if learn {
		// Mark the spikers' columns dirty for incremental normalization.
		// Every column the two STDP loops below will ever touch belongs
		// to a neuron in postActive, and postActive only grows via
		// excSpikes — so marking spikes at learning steps covers the
		// whole touched set by the time normalization runs.
		for _, j := range excSpikes {
			if !n.dirtySeen[j] {
				n.dirtySeen[j] = true
				n.dirtyCols = append(n.dirtyCols, j)
			}
		}
		if len(n.postActive) > 0 {
			nuPre := cfg.NuPre
			trace := n.Exc.Trace
			for _, i := range inputSpikes {
				row := n.W.Row(i)
				for _, j := range n.postActive {
					w := row[j] - nuPre*trace[j]
					if w < 0 {
						w = 0
					}
					row[j] = w
				}
			}
		}
		if len(excSpikes) > 0 {
			decayPow := preDecayTable(n.stepT)
			wd, cols := n.W.Data, n.W.Cols
			nuPost, wmax := cfg.NuPost, cfg.WMax
			for _, j := range excSpikes {
				for _, i := range n.preActive {
					tr := decayPow[n.stepT-1-n.preLastSpike[i]]
					w := wd[i*cols+j] + nuPost*tr
					if w > wmax {
						w = wmax
					}
					wd[i*cols+j] = w
				}
			}
		}
	}

	// 5. Pre-synaptic trace update: record this step as the pixels'
	// last spike time (the lazy image of "decay all traces, then set
	// spiked pixels to 1"), extending the support with first-time
	// spikers.
	for _, i := range inputSpikes {
		if !n.preSeen[i] {
			n.preSeen[i] = true
			n.preActive = append(n.preActive, i)
		}
		n.preLastSpike[i] = n.stepT
	}
	n.stepT++

	// 6. Remember this step's spikes for next step's delayed synapses.
	n.prevExc = append(n.prevExc[:0], excSpikes...)
	n.prevInh = append(n.prevInh[:0], inhSpikes...)
	return excSpikes
}

// RunImage presents one encoded spike train (from encoding.Encode),
// resetting state first, and returns the per-neuron excitatory spike
// counts. Weight normalization runs before the presentation when
// learning, as in the BindsNET training loop.
func (n *DiehlCook) RunImage(train [][]int, learn bool) tensor.Vector {
	if learn {
		n.NormalizeWeights()
	}
	n.ResetState()
	counts := tensor.NewVector(n.Cfg.NExc)
	for _, step := range train {
		for _, j := range n.Step(step, learn) {
			counts[j]++
		}
	}
	n.rest(counts)
	return counts
}

// RunImageStream presents one image of Cfg.Steps timesteps drawn from
// next — called once per step, e.g. encoding.PoissonEncoder.EncodeStep
// after Begin — so the full spike train is never materialized. For the
// same random stream it is bit-identical to Encode+RunImage.
func (n *DiehlCook) RunImageStream(next func() []int, learn bool) tensor.Vector {
	if learn {
		n.NormalizeWeights()
	}
	n.ResetState()
	counts := tensor.NewVector(n.Cfg.NExc)
	for t := 0; t < n.Cfg.Steps; t++ {
		for _, j := range n.Step(next(), learn) {
			counts[j]++
		}
	}
	n.rest(counts)
	return counts
}

// TrainImageStream presents one image of Cfg.Steps timesteps drawn
// from next with learning enabled — RunImageStream(next, true) with the
// per-image homeostatic normalization restricted to the weight columns
// STDP touched since the last normalization (see normalizeDirty). This
// is the training engine's fast path; it assumes nothing outside Step
// has written W since the last normalization, so callers that mutate
// weights directly (fault-injection hooks) must use RunImageStream,
// which performs the full normalization.
func (n *DiehlCook) TrainImageStream(next func() []int) tensor.Vector {
	n.normalizeDirty()
	return n.presentLearn(next)
}

// presentLearn is one learning presentation without the homeostatic
// normalization: ResetState, Cfg.Steps learning steps, rest. The
// normalization policy is the caller's — TrainImageStream normalizes
// the dirty columns first; the minibatch engine presents several
// images against one normalization.
func (n *DiehlCook) presentLearn(next func() []int) tensor.Vector {
	n.ResetState()
	counts := tensor.NewVector(n.Cfg.NExc)
	for t := 0; t < n.Cfg.Steps; t++ {
		for _, j := range n.Step(next(), true) {
			counts[j]++
		}
	}
	n.rest(counts)
	return counts
}

// rest runs the quiet post-presentation steps, accumulating any
// residual spikes into counts.
func (n *DiehlCook) rest(counts tensor.Vector) {
	for t := 0; t < n.Cfg.RestSteps; t++ {
		for _, j := range n.Step(nil, false) {
			counts[j]++
		}
	}
}
