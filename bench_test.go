package snnfi_test

// One benchmark per table/figure of the paper's evaluation, plus
// ablation benches for the design decisions called out in DESIGN.md.
//
// Network-scale benches run a reduced configuration (300 images, 40+40
// neurons, 150 ms presentations) so the full suite completes in a
// couple of minutes; cmd/figures runs the paper-scale campaign (1000
// images, 100+100 neurons, 250 ms). Each bench reports the reproduced
// headline number as a custom metric so `go test -bench` output doubles
// as a regression record of the reproduction.

import (
	"fmt"
	"math"
	"testing"

	"snnfi/internal/core"
	"snnfi/internal/defense"
	"snnfi/internal/encoding"
	"snnfi/internal/mnist"
	"snnfi/internal/neuron"
	"snnfi/internal/power"
	"snnfi/internal/runner"
	"snnfi/internal/snn"
	"snnfi/internal/spice"
	"snnfi/internal/tensor"
	"snnfi/internal/xfer"
)

func benchConfig() snn.DiehlCookConfig {
	cfg := snn.DefaultConfig()
	cfg.NExc, cfg.NInh = 40, 40
	cfg.Steps = 150
	return cfg
}

func benchExperiment(b *testing.B) *core.Experiment {
	b.Helper()
	e, err := core.NewExperiment("", 300, benchConfig())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := e.Baseline(); err != nil {
		b.Fatal(err)
	}
	return e
}

// resetCache forces the next iteration to retrain: without it the
// experiment's persistent result cache would turn every iteration
// after the first into a map lookup and the bench would stop
// measuring training cost. (BenchmarkRunner_CachedSweep measures the
// warm path deliberately.)
func resetCache(e *core.Experiment) {
	e.Cache = runner.NewMemoryCache[*core.Result]()
}

// --- Circuit-level figures ---

func BenchmarkFig3_AxonHillockWaveform(b *testing.B) {
	spikes := 0
	for i := 0; i < b.N; i++ {
		ah := neuron.NewAxonHillock()
		res, err := ah.Simulate(20e-6, 10e-9)
		if err != nil {
			b.Fatal(err)
		}
		spikes = spice.SpikeCount(res.Time, res.V("vout"), 0.5)
	}
	b.ReportMetric(float64(spikes), "spikes/20µs")
}

func BenchmarkFig4_IAFWaveform(b *testing.B) {
	var tts float64
	for i := 0; i < b.N; i++ {
		n := neuron.NewIAF()
		v, err := n.TimeToSpike(150e-6, 10e-9)
		if err != nil {
			b.Fatal(err)
		}
		tts = v
	}
	b.ReportMetric(tts*1e6, "tts_µs")
}

func BenchmarkFig5b_DriverAmplitudeVsVDD(b *testing.B) {
	var swing float64
	for i := 0; i < b.N; i++ {
		pts, err := neuron.DriverAmplitudeVsVDD([]float64{0.8, 1.0, 1.2})
		if err != nil {
			b.Fatal(err)
		}
		swing = neuron.PercentChange(pts[2].Y, pts[1].Y) // paper: +32%
	}
	b.ReportMetric(swing, "Δamp_pc@1.2V")
}

func BenchmarkFig5c_TimeToSpikeVsAmplitude(b *testing.B) {
	var slow float64
	for i := 0; i < b.N; i++ {
		pts, err := neuron.AHTimeToSpikeVsAmplitude([]float64{136e-9, 200e-9, 264e-9})
		if err != nil {
			b.Fatal(err)
		}
		slow = neuron.PercentChange(pts[0].Y, pts[1].Y) // paper: +53.7%
	}
	b.ReportMetric(slow, "Δtts_pc@136nA")
}

func BenchmarkFig6a_ThresholdVsVDD(b *testing.B) {
	var shift float64
	for i := 0; i < b.N; i++ {
		pts, err := neuron.AHThresholdVsVDD([]float64{0.8, 1.0, 1.2})
		if err != nil {
			b.Fatal(err)
		}
		shift = neuron.PercentChange(pts[0].Y, pts[1].Y) // paper: −17.91%
	}
	b.ReportMetric(shift, "Δthr_pc@0.8V")
}

func BenchmarkFig6b_AHTimeToSpikeVsVDD(b *testing.B) {
	var shift float64
	for i := 0; i < b.N; i++ {
		pts, err := neuron.AHTimeToSpikeVsVDD([]float64{0.8, 1.0, 1.2})
		if err != nil {
			b.Fatal(err)
		}
		shift = neuron.PercentChange(pts[0].Y, pts[1].Y) // paper: −17.91%
	}
	b.ReportMetric(shift, "Δtts_pc@0.8V")
}

func BenchmarkFig6c_IAFTimeToSpikeVsVDD(b *testing.B) {
	var shift float64
	for i := 0; i < b.N; i++ {
		pts, err := neuron.IAFTimeToSpikeVsVDD([]float64{0.8, 1.0, 1.2})
		if err != nil {
			b.Fatal(err)
		}
		shift = neuron.PercentChange(pts[2].Y, pts[1].Y) // paper: +23.53%
	}
	b.ReportMetric(shift, "Δtts_pc@1.2V")
}

// --- Network-level attack figures (reduced scale) ---

func BenchmarkFig7b_Attack1ThetaSweep(b *testing.B) {
	e := benchExperiment(b)
	b.ResetTimer()
	var worst float64
	for i := 0; i < b.N; i++ {
		resetCache(e)
		pts, err := e.Attack1Sweep([]float64{-20, 20})
		if err != nil {
			b.Fatal(err)
		}
		wp, _ := core.WorstCase(pts)
		worst = wp.Result.RelChangePc // paper: −1.5%
	}
	b.ReportMetric(worst, "worst_rel_pc")
}

func BenchmarkFig8a_Attack2ELGrid(b *testing.B) {
	e := benchExperiment(b)
	b.ResetTimer()
	var worst float64
	for i := 0; i < b.N; i++ {
		resetCache(e)
		pts, err := e.LayerGrid(core.Excitatory, []float64{-20}, []float64{50, 100})
		if err != nil {
			b.Fatal(err)
		}
		wp, _ := core.WorstCase(pts)
		worst = wp.Result.RelChangePc // paper: −7.32%
	}
	b.ReportMetric(worst, "worst_rel_pc")
}

func BenchmarkFig8b_Attack3ILGrid(b *testing.B) {
	e := benchExperiment(b)
	b.ResetTimer()
	var worst float64
	for i := 0; i < b.N; i++ {
		resetCache(e)
		pts, err := e.LayerGrid(core.Inhibitory, []float64{-20}, []float64{50, 100})
		if err != nil {
			b.Fatal(err)
		}
		wp, _ := core.WorstCase(pts)
		worst = wp.Result.RelChangePc // paper: −84.52%
	}
	b.ReportMetric(worst, "worst_rel_pc")
}

func BenchmarkFig8c_Attack4BothLayers(b *testing.B) {
	e := benchExperiment(b)
	b.ResetTimer()
	var worst float64
	for i := 0; i < b.N; i++ {
		resetCache(e)
		pts, err := e.Attack4Sweep([]float64{-20, 20})
		if err != nil {
			b.Fatal(err)
		}
		wp, _ := core.WorstCase(pts)
		worst = wp.Result.RelChangePc // paper: −85.65%
	}
	b.ReportMetric(worst, "worst_rel_pc")
}

func BenchmarkFig9a_Attack5VDDSweep(b *testing.B) {
	e := benchExperiment(b)
	b.ResetTimer()
	var worst float64
	for i := 0; i < b.N; i++ {
		resetCache(e)
		pts, err := e.Attack5Sweep([]float64{0.8, 1.2}, xfer.IAF)
		if err != nil {
			b.Fatal(err)
		}
		wp, _ := core.WorstCase(pts)
		worst = wp.Result.RelChangePc // paper: −84.93%
	}
	b.ReportMetric(worst, "worst_rel_pc")
}

// --- Defense figures ---

func BenchmarkFig9b_RobustDriver(b *testing.B) {
	var dev float64
	for i := 0; i < b.N; i++ {
		pts, err := neuron.RobustDriverAmplitudeVsVDD([]float64{0.8, 1.0, 1.2})
		if err != nil {
			b.Fatal(err)
		}
		dev = math.Max(
			math.Abs(neuron.PercentChange(pts[0].Y, pts[1].Y)),
			math.Abs(neuron.PercentChange(pts[2].Y, pts[1].Y)))
	}
	b.ReportMetric(dev, "max_dev_pc")
}

func BenchmarkFig9c_SizingDefense(b *testing.B) {
	e := benchExperiment(b)
	plan := core.NewAttack4(xfer.ThresholdRatio(xfer.AxonHillock).At(0.8))
	b.ResetTimer()
	var recovered float64
	for i := 0; i < b.N; i++ {
		resetCache(e)
		res, err := e.Run(defense.Sizing{WLMultiple: 32}.Harden(plan))
		if err != nil {
			b.Fatal(err)
		}
		recovered = res.RelChangePc // paper: −3.49%
	}
	b.ReportMetric(recovered, "defended_rel_pc")
}

func BenchmarkFig10a_ComparatorNeuron(b *testing.B) {
	var dev float64
	for i := 0; i < b.N; i++ {
		var thr [2]float64
		for j, vdd := range []float64{0.8, 1.0} {
			n := neuron.NewComparatorAH()
			n.VDD = vdd
			v, err := n.MeasuredThreshold(40e-6, 10e-9)
			if err != nil {
				b.Fatal(err)
			}
			thr[j] = v
		}
		dev = math.Abs(neuron.PercentChange(thr[0], thr[1])) // undefended: ~18%
	}
	b.ReportMetric(dev, "thr_dev_pc@0.8V")
}

func BenchmarkFig10c_DummyNeuronDetector(b *testing.B) {
	det := defense.NewDetector(xfer.AxonHillock)
	var dev float64
	for i := 0; i < b.N; i++ {
		sweep := det.DetectionSweep([]float64{0.8, 0.9, 1.0, 1.1, 1.2})
		dev = sweep[0].DeviationPc
	}
	b.ReportMetric(dev, "count_dev_pc@0.8V")
}

func BenchmarkD1_DefenseOverheads(b *testing.B) {
	var sizingPower float64
	for i := 0; i < b.N; i++ {
		rows := power.OverheadTable(200, 100)
		for _, r := range rows {
			if r.Defense == "transistor-sizing-32x" {
				sizingPower = r.PowerPc
			}
		}
	}
	b.ReportMetric(sizingPower, "sizing_power_pc")
}

func BenchmarkD2_BandgapDefense(b *testing.B) {
	e := benchExperiment(b)
	plan := core.NewAttack4(xfer.ThresholdRatio(xfer.IAF).At(0.8))
	b.ResetTimer()
	var recovered float64
	for i := 0; i < b.N; i++ {
		resetCache(e)
		res, err := e.Run(defense.BandgapThreshold{Kind: xfer.IAF}.Harden(plan))
		if err != nil {
			b.Fatal(err)
		}
		recovered = res.RelChangePc // paper: ~0%
	}
	b.ReportMetric(recovered, "defended_rel_pc")
}

// --- Ablation benches (DESIGN.md) ---

// BenchmarkAblation_SpiceVsXfer compares the spice-measured AH
// threshold shift at 0.8 V against the paper-anchored transfer map —
// the two-tier simulation design decision.
func BenchmarkAblation_SpiceVsXfer(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		pts, err := neuron.AHThresholdVsVDD([]float64{0.8, 1.0})
		if err != nil {
			b.Fatal(err)
		}
		spiceShift := neuron.PercentChange(pts[0].Y, pts[1].Y)
		anchorShift := 100 * (xfer.ThresholdRatio(xfer.AxonHillock).At(0.8) - 1)
		gap = math.Abs(spiceShift - anchorShift)
	}
	b.ReportMetric(gap, "spice_vs_paper_pp")
}

// BenchmarkAblation_Integrator compares backward Euler against
// trapezoidal on the same neuron transient.
func BenchmarkAblation_Integrator(b *testing.B) {
	for _, method := range []spice.Integrator{spice.BackwardEuler, spice.Trapezoidal} {
		b.Run(method.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ah := neuron.NewAxonHillock()
				c := ah.Build()
				if _, err := c.Tran(spice.TranOptions{Dt: 10e-9, Stop: 10e-6, UIC: true, Method: method}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_SparseVsDense compares the sparse spike-propagation
// kernel against dense matrix-vector multiplication at MNIST-scale
// activity (~3% input activity per step).
func BenchmarkAblation_SparseVsDense(b *testing.B) {
	const nIn, nOut = 784, 100
	m := tensor.NewMatrix(nIn, nOut)
	for i := range m.Data {
		m.Data[i] = 0.1
	}
	active := make([]int, 0, nIn/32)
	dense := tensor.NewVector(nIn)
	for i := 0; i < nIn; i += 32 {
		active = append(active, i)
		dense[i] = 1
	}
	out := tensor.NewVector(nOut)
	b.Run("sparse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out.Zero()
			m.AccumulateRows(active, out)
		}
	})
	b.Run("dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.MulVec(dense, out, true)
		}
	})
}

// --- Campaign runner benches ---

// BenchmarkRunner_LayerGridWorkers runs the Fig. 8b grid through the
// campaign pool at several widths. On a machine with ≥4 cores the
// workers=4 case should be ≥2× faster than workers=1 (training is
// embarrassingly parallel); results are identical at every width. The
// cache is replaced each iteration so every cell really retrains.
func BenchmarkRunner_LayerGridWorkers(b *testing.B) {
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			e := benchExperiment(b)
			e.Workers = w
			b.ResetTimer()
			var worst float64
			for i := 0; i < b.N; i++ {
				resetCache(e)
				pts, err := e.LayerGrid(core.Inhibitory, []float64{-20, 20}, []float64{25, 50, 75, 100})
				if err != nil {
					b.Fatal(err)
				}
				wp, _ := core.WorstCase(pts)
				worst = wp.Result.RelChangePc
			}
			b.ReportMetric(worst, "worst_rel_pc")
		})
	}
}

// BenchmarkRunner_CachedSweep measures a fully warm sweep: every cell
// is served from the content-addressed result cache, so this is the
// per-sweep overhead of the runner itself (job building, hashing,
// pool scheduling).
func BenchmarkRunner_CachedSweep(b *testing.B) {
	e := benchExperiment(b)
	sweep := func() error {
		_, err := e.LayerGrid(core.Inhibitory, []float64{-20, 20}, []float64{25, 50, 75, 100})
		return err
	}
	if err := sweep(); err != nil {
		b.Fatal(err)
	}
	before := e.TrainCount()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sweep(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if e.TrainCount() != before {
		b.Fatal("warm sweep must not retrain")
	}
}

// --- Circuit-tier characterization sweep benches ---

// BenchmarkCharacterize_DriverVsVDD runs the Fig. 5b driver sweep
// through the characterization pool at several widths. Points are
// independent circuit sims, so on a ≥4-core machine workers=4 should
// be ≥2× faster than workers=1; results are identical at every width
// (TestCharacterizerDeterministicAcrossWorkers). No cache: every
// iteration re-simulates all five points.
func BenchmarkCharacterize_DriverVsVDD(b *testing.B) {
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			ch := &neuron.Characterizer{Workers: w}
			var swing float64
			for i := 0; i < b.N; i++ {
				pts, err := ch.DriverAmplitudeVsVDD([]float64{0.8, 0.9, 1.0, 1.1, 1.2})
				if err != nil {
					b.Fatal(err)
				}
				swing = neuron.PercentChange(pts[4].Y, pts[2].Y) // paper: +32%
			}
			b.ReportMetric(swing, "Δamp_pc@1.2V")
		})
	}
}

// BenchmarkCharacterize_AHThresholdVsVDD runs the Fig. 6a AH threshold
// sweep (DC transfer analyses) through the pool.
func BenchmarkCharacterize_AHThresholdVsVDD(b *testing.B) {
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			ch := &neuron.Characterizer{Workers: w}
			var shift float64
			for i := 0; i < b.N; i++ {
				pts, err := ch.AHThresholdVsVDD([]float64{0.8, 0.9, 1.0, 1.1, 1.2})
				if err != nil {
					b.Fatal(err)
				}
				shift = neuron.PercentChange(pts[0].Y, pts[2].Y) // paper: −17.91%
			}
			b.ReportMetric(shift, "Δthr_pc@0.8V")
		})
	}
}

// BenchmarkMonteCarloThreshold compares the two process-variation
// engines on the same 32-sample mismatch distribution: the serial-port
// baseline (one fresh circuit and full 201-point linear scan per
// sample, single-stream RNG) against the pooled bisected probe (one
// reusable circuit per worker, ~8 warm-started solves per sample,
// per-sample derived seeds). Thresholds are bit-identical between the
// two per-sample methods (TestBisectionMatchesScan) and across worker
// counts (TestMonteCarloWorkerInvariance). No cache: every iteration
// re-solves all samples. The per-sample metric is the acceptance
// number — bisect should sit ≥10× below serial-scan.
func BenchmarkMonteCarloThreshold(b *testing.B) {
	mc := neuron.NewMonteCarlo(32)
	b.Run("serial-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mc.ThresholdSamples(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(b.Elapsed().Seconds()*1e9/float64(b.N*mc.N), "ns/sample")
	})
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("bisect/workers=%d", w), func(b *testing.B) {
			ch := &neuron.Characterizer{Workers: w}
			for i := 0; i < b.N; i++ {
				if _, err := ch.MonteCarloThresholds(mc); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(b.Elapsed().Seconds()*1e9/float64(b.N*mc.N), "ns/sample")
		})
	}
}

// BenchmarkCharacterize_CachedSweep measures a fully warm
// characterization sweep: every point is served from the
// content-addressed point cache, so this is the per-sweep overhead of
// the characterization pool itself (recipe hashing, job building,
// scheduling).
func BenchmarkCharacterize_CachedSweep(b *testing.B) {
	ch := neuron.NewCharacterizer()
	vdds := []float64{0.8, 0.9, 1.0, 1.1, 1.2}
	if _, err := ch.AHThresholdVsVDD(vdds); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ch.AHThresholdVsVDD(vdds); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Hot-path micro-benches (network tier) ---

// benchStepTrain measures one network timestep at paper scale
// (NInput=784, NExc=100) over a realistic Poisson spike workload.
func benchStepTrain(b *testing.B, learn bool) {
	cfg := snn.DefaultConfig()
	n, err := snn.NewDiehlCook(cfg)
	if err != nil {
		b.Fatal(err)
	}
	images := mnist.Synthetic(1, 3)
	enc := encoding.NewPoissonEncoder(8)
	train := enc.Encode(&images[0], cfg.Steps)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%len(train) == 0 {
			b.StopTimer()
			n.NormalizeWeights()
			n.ResetState()
			b.StartTimer()
		}
		n.Step(train[i%len(train)], learn)
	}
}

// BenchmarkStep_Train is the acceptance bench for the layout-aware
// kernels: one learning timestep of the Diehl&Cook hot loop.
func BenchmarkStep_Train(b *testing.B) { benchStepTrain(b, true) }

// BenchmarkStep_Infer is the same loop without plasticity (the
// evaluation path).
func BenchmarkStep_Infer(b *testing.B) { benchStepTrain(b, false) }

// --- Intra-cell inference engine benches ---

// BenchmarkEvaluate is the acceptance bench for the intra-cell
// parallel inference engine: a full read-only evaluation pass
// (64 images at the reduced network scale) against one frozen Params
// view, at several worker counts. Results are bit-identical at every
// width; on a ≥4-core machine workers=4 should be ≥3× faster than
// workers=1 (enforced by snn.TestEvaluateParallelSpeedup).
func BenchmarkEvaluate(b *testing.B) {
	cfg := benchConfig()
	n, err := snn.NewDiehlCook(cfg)
	if err != nil {
		b.Fatal(err)
	}
	p := n.Params()
	images := mnist.Synthetic(64, 3)
	assignments := make([]int, cfg.NExc)
	for j := range assignments {
		assignments[j] = j % 10
	}
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				acc, err = snn.EvaluateParallel(p, images, assignments, snn.EvalOptions{Workers: w, Seed: 42})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(images))*float64(b.N)/b.Elapsed().Seconds(), "images/s")
			_ = acc
		})
	}
}

// BenchmarkCountsParallel measures the label-assignment kernel (the
// counts-returning variant TrainWith's second pass runs).
func BenchmarkCountsParallel(b *testing.B) {
	cfg := benchConfig()
	n, err := snn.NewDiehlCook(cfg)
	if err != nil {
		b.Fatal(err)
	}
	p := n.Params()
	images := mnist.Synthetic(64, 3)
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := snn.CountsParallel(p, images, snn.EvalOptions{Workers: w, Seed: 42}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- End-to-end throughput benches ---

func BenchmarkTrainImage(b *testing.B) {
	cfg := snn.DefaultConfig()
	n, err := snn.NewDiehlCook(cfg)
	if err != nil {
		b.Fatal(err)
	}
	images := mnist.Synthetic(16, 3)
	enc := encoding.NewPoissonEncoder(8)
	trains := make([][][]int, len(images))
	for i := range images {
		trains[i] = enc.Encode(&images[i], cfg.Steps)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.RunImage(trains[i%len(trains)], true)
	}
}

// BenchmarkTrainImageStream measures the true per-image training cost
// at workers=1 — streaming skip-sampled encoding fused with the
// learning network run and dirty-column normalization, the serial
// path TrainWith executes per image.
func BenchmarkTrainImageStream(b *testing.B) {
	cfg := snn.DefaultConfig()
	n, err := snn.NewDiehlCook(cfg)
	if err != nil {
		b.Fatal(err)
	}
	images := mnist.Synthetic(16, 3)
	enc := encoding.NewPoissonEncoder(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Begin(&images[i%len(images)])
		n.TrainImageStream(enc.EncodeStep)
	}
}

// BenchmarkTrainMinibatch measures the minibatch learning pass end to
// end (TrainOptions.Batch > 1): per-image cost of training 16 images
// through the batched engine at several batch sizes and pool widths,
// including clone sync, delta extraction, and the in-order merge.
func BenchmarkTrainMinibatch(b *testing.B) {
	images := mnist.Synthetic(16, 3)
	for _, bw := range []struct{ batch, workers int }{
		{4, 1}, {4, 4}, {8, 4},
	} {
		b.Run(fmt.Sprintf("batch=%d/workers=%d", bw.batch, bw.workers), func(b *testing.B) {
			cfg := snn.DefaultConfig()
			n, err := snn.NewDiehlCook(cfg)
			if err != nil {
				b.Fatal(err)
			}
			enc := encoding.NewPoissonEncoder(8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := snn.TrainWith(n, images, enc, snn.TrainOptions{
					Batch: bw.batch, Workers: bw.workers,
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(images))*float64(b.N)/b.Elapsed().Seconds(), "images/s")
		})
	}
}

// BenchmarkEncode_Materialized measures the allocating Encode path: a
// full 250-step spike train materialized per image.
func BenchmarkEncode_Materialized(b *testing.B) {
	images := mnist.Synthetic(1, 3)
	enc := encoding.NewPoissonEncoder(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Encode(&images[0], 250)
	}
}

// BenchmarkEncode_Stream measures the streaming Begin/EncodeStep path
// the training loop uses: same spike train, no per-step allocation.
func BenchmarkEncode_Stream(b *testing.B) {
	images := mnist.Synthetic(1, 3)
	enc := encoding.NewPoissonEncoder(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Begin(&images[0])
		for t := 0; t < 250; t++ {
			enc.EncodeStep()
		}
	}
}

func BenchmarkSpiceTransientStep(b *testing.B) {
	// Cost of one µs of Axon Hillock circuit simulation.
	ah := neuron.NewAxonHillock()
	c := ah.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Tran(spice.TranOptions{Dt: 10e-9, Stop: 1e-6, UIC: true}); err != nil {
			b.Fatal(err)
		}
	}
}
